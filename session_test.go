package c4

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// jobSpec is a short interactive-job session used across the tests.
func jobSessionSpec(seed int64) SessionSpec {
	return SessionSpec{
		Seed: seed,
		Job:  &SessionJob{Model: "gpt22b", Provider: "c4p", Fault: "straggler", HorizonS: 120},
	}
}

func runSessionOnce(t *testing.T, spec SessionSpec) (map[string]float64, string, *bytes.Buffer) {
	t.Helper()
	var stream bytes.Buffer
	sess, err := NewSession(SessionOptions{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	w := NewTelemetryStreamWriter(&stream)
	sess.AttachSink(w)
	if err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return sess.Metrics(), sess.Summary(), &stream
}

func TestSessionJobDeterministic(t *testing.T) {
	m1, s1, b1 := runSessionOnce(t, jobSessionSpec(7))
	m2, s2, b2 := runSessionOnce(t, jobSessionSpec(7))
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("telemetry streams of identical specs diverged")
	}
	if b1.Len() == 0 {
		t.Fatal("job session produced no telemetry")
	}
	if s1 != s2 {
		t.Fatalf("summaries diverged: %q vs %q", s1, s2)
	}
	if len(m1) == 0 || m1["iterations"] <= 0 {
		t.Fatalf("metrics = %v, want iterations > 0", m1)
	}
	for k, v := range m1 {
		if m2[k] != v {
			t.Fatalf("metric %s diverged: %v vs %v", k, v, m2[k])
		}
	}
	// A different seed must actually change the run.
	_, _, b3 := runSessionOnce(t, jobSessionSpec(8))
	if bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSessionPlanMode(t *testing.T) {
	var log bytes.Buffer
	sess, err := NewSession(SessionOptions{
		Spec: SessionSpec{Seed: 1, Job: &SessionJob{
			Model: "gpt22b", Plan: "tp8/pp2/dp2/ga2", PlanIters: 2,
		}},
		Log: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := sess.Metrics()
	if m["iterations"] != 2 || m["avg_iter_s"] <= 0 || m["exposed_share"] < 0 {
		t.Fatalf("plan metrics = %v", m)
	}
	if !strings.Contains(log.String(), "avg iteration") {
		t.Fatalf("plan log missing breakdown:\n%s", log.String())
	}
}

func TestSessionTenancyMode(t *testing.T) {
	trace := []byte(`{"events": [
		{"at_s": 0, "name": "a", "nodes": 2, "duration_s": 10},
		{"at_s": 1, "name": "b", "nodes": 2, "duration_s": 10}
	]}`)
	sess, err := NewSession(SessionOptions{
		Spec: SessionSpec{Seed: 1, Tenancy: &SessionTenancy{Trace: trace, HorizonS: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := sess.Metrics()
	if m["admitted"] != 2 || m["completed"] != 2 {
		t.Fatalf("tenancy metrics = %v", m)
	}
}

func TestSessionScenarioMode(t *testing.T) {
	sess, err := NewSession(SessionOptions{
		Spec: SessionSpec{Seed: 1, Scenario: "nccltest"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := sess.Metrics()
	if m["sim_events"] <= 0 {
		t.Fatalf("scenario metrics = %v", m)
	}
	if _, shape := m["shape_failed"]; shape {
		t.Fatalf("nccltest shape failed: %s", sess.Summary())
	}
}

func TestSessionSpecValidation(t *testing.T) {
	bad := []SessionSpec{
		{},                                  // no mode
		{Scenario: "x", Job: &SessionJob{}}, // two modes
		{Scenario: "no-such-scenario"},
		{Job: &SessionJob{Model: "gpt9000"}},
		{Job: &SessionJob{Provider: "carrier-pigeon"}},
		{Job: &SessionJob{Placement: "diagonal"}},
		{Job: &SessionJob{Fault: "gremlin"}},
		{Job: &SessionJob{Plan: "qp4"}},
		{Job: &SessionJob{Plan: "pp8/dp8"}}, // 64 nodes > 16
		{Tenancy: &SessionTenancy{Trace: []byte("{")}},
		{Tenancy: &SessionTenancy{Trace: []byte(`{"events":[]}`), Policy: "diagonal"}},
	}
	for _, spec := range bad {
		if _, err := NewSession(SessionOptions{Spec: spec}); err == nil {
			t.Errorf("NewSession(%+v) accepted an invalid spec", spec)
		}
	}
}

func TestSessionRunsAtMostOnce(t *testing.T) {
	sess, err := NewSession(SessionOptions{Spec: SessionSpec{Seed: 1, Scenario: "nccltest"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(context.Background()); err == nil {
		t.Fatal("second Run succeeded")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}
}

func TestSessionCancellation(t *testing.T) {
	// Pre-cancelled context: the run must not start.
	sess, err := NewSession(SessionOptions{Spec: jobSessionSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sess.Run(ctx); err == nil {
		t.Fatal("Run with cancelled context succeeded")
	}
	sess.Close()

	// Mid-run cancellation: a long-horizon job must return promptly with
	// the context's error once cancelled.
	spec := jobSessionSpec(1)
	spec.Job.HorizonS = 1e9 // far beyond any test budget
	sess2, err := NewSession(SessionOptions{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sess2.Run(ctx2) }()
	time.Sleep(50 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled run returned nil")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}
