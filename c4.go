// Package c4 is a from-scratch Go reproduction of "Enhancing Large-Scale
// AI Training Efficiency: The C4 Solution for Real-Time Anomaly Detection
// and Communication Optimization" (Dong et al., Alibaba, HPCA 2025,
// arXiv:2406.04594).
//
// It contains the paper's two contributions and every substrate they run
// on, all simulated deterministically on a laptop:
//
//   - C4D — real-time fault detection: instrumented collective library
//     (accl), per-worker agents and a central master (c4d) that localize
//     hangs, slow connections/NICs and stragglers from transport timing,
//     plus the job steering service (steering) that isolates nodes and
//     restarts jobs from spares.
//   - C4P — cluster-scale traffic engineering (c4p): path probing, QP
//     placement across spines and bonded ports, and dynamic load balance
//     under link failures.
//   - Substrates: a discrete-event engine (sim), a dual-plane leaf/spine
//     Clos fabric (topo), a max-min-fair flow-level network simulator with
//     ECMP and CNP modeling (netsim), a hardware fault model (cluster),
//     and a distributed-training job model (job, workload).
//
// The harness package reproduces every table and figure of the paper's
// evaluation; see EXPERIMENTS.md for paper-vs-measured numbers. This
// package re-exports the main entry points so downstream users can build
// their own scenarios without spelunking the internal tree:
//
//	env, _ := c4.OpenEnv(c4.EnvOptions{Spec: c4.PaperTestbed()})
//	prov := env.NewProvider(c4.C4PStatic, 1)
//	comm, _ := c4.NewCommunicator(c4.CommConfig{
//	    Engine: env.Eng, Net: env.Net, Provider: prov,
//	}, []int{0, 2, 4, 6})
//	comm.AllReduce(256<<20, nil, func(r c4.CollResult) {
//	    fmt.Printf("busbw %.1f Gbps\n", r.BusGbps)
//	})
//	env.Eng.Run()
package c4

import (
	"context"
	"fmt"
	"io"

	"c4/internal/accl"
	"c4/internal/c4d"
	"c4/internal/c4p"
	"c4/internal/ckpt"
	"c4/internal/cluster"
	"c4/internal/harness"
	"c4/internal/job"
	"c4/internal/netsim"
	"c4/internal/plan"
	"c4/internal/rca"
	"c4/internal/scenario"
	"c4/internal/sched"
	"c4/internal/sim"
	"c4/internal/steering"
	"c4/internal/topo"
	"c4/internal/trace"
	"c4/internal/workload"
)

// Simulation core.
type (
	// Engine is the deterministic discrete-event simulator.
	Engine = sim.Engine
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Rand is the seeded random source all stochastic components use.
	Rand = sim.Rand
)

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewRand returns a deterministic random source.
func NewRand(seed int64) *Rand { return sim.NewRand(seed) }

// Re-exported time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
	Day         = sim.Day
)

// Fabric and network.
type (
	// ClusterSpec describes a fabric to build.
	ClusterSpec = topo.Spec
	// Topology is a built fabric.
	Topology = topo.Topology
	// Network is the flow-level fluid simulator.
	Network = netsim.Network
	// NetConfig tunes the network simulator, including the flow-class
	// kernel (Aggregate) and parallel component settle (SettleWorkers).
	NetConfig = netsim.Config
	// KernelStats counts the network kernel's deterministic work
	// (recomputes, link visits, flow visits).
	KernelStats = netsim.KernelStats
)

// PaperTestbed is the paper's Table II testbed (16 nodes × 8 H800 GPUs,
// dual-port 200 Gbps NICs, 1:1 fat-tree).
func PaperTestbed() ClusterSpec { return topo.PaperTestbed() }

// MultiJobTestbed is the fabric of Figs 10–13; spines=8 gives 1:1
// oversubscription, 4 gives 2:1.
func MultiJobTestbed(spines int) ClusterSpec { return topo.MultiJobTestbed(spines) }

// NewTopology builds a fabric.
func NewTopology(spec ClusterSpec) (*Topology, error) { return topo.New(spec) }

// NetworkOptions configures OpenNetwork. The options-struct constructors
// (OpenNetwork, OpenC4PMaster, OpenEnv, NewSession) are the package's
// construction API: call sites stay readable as knobs accrue, and new
// options never break existing callers.
type NetworkOptions struct {
	// Engine is the simulation clock (required).
	Engine *Engine
	// Topology is the fabric to simulate (required).
	Topology *Topology
	// Config tunes the simulator; nil means DefaultNetConfig().
	Config *NetConfig
}

// OpenNetwork creates the fluid network simulator.
func OpenNetwork(opts NetworkOptions) (*Network, error) {
	if opts.Engine == nil || opts.Topology == nil {
		return nil, errNeed("OpenNetwork", "Engine and Topology")
	}
	cfg := netsim.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	return netsim.New(opts.Engine, opts.Topology, cfg), nil
}

// NewNetwork creates the fluid network simulator.
//
// Deprecated: use OpenNetwork, which defaults the calibration and reads
// clearly at call sites.
func NewNetwork(eng *Engine, t *Topology, cfg NetConfig) *Network {
	return netsim.New(eng, t, cfg)
}

// DefaultNetConfig is the calibration used throughout the repository.
func DefaultNetConfig() NetConfig { return netsim.DefaultConfig() }

// Collective communication (ACCL).
type (
	// CommConfig wires a communicator to the fabric.
	CommConfig = accl.Config
	// Communicator executes collectives among nodes.
	Communicator = accl.Communicator
	// CollResult summarizes a completed collective.
	CollResult = accl.Result
	// PathProvider decides each QP's route.
	PathProvider = accl.PathProvider
	// StatsSink receives ACCL monitoring records.
	StatsSink = accl.StatsSink
	// StatsRecorder is an in-memory StatsSink.
	StatsRecorder = accl.Recorder
)

// NewCommunicator opens a communicator over the given nodes.
func NewCommunicator(cfg CommConfig, nodes []int) (*Communicator, error) {
	return accl.NewCommunicator(cfg, nodes)
}

// NewECMPProvider is the uncoordinated hashing baseline.
func NewECMPProvider(t *Topology, r *Rand) PathProvider {
	return accl.NewECMPProvider(t, r)
}

// C4P traffic engineering.
type (
	// C4PMaster is the cluster-scale traffic-engineering control plane.
	C4PMaster = c4p.Master
	// C4PMode selects the failure-response policy.
	C4PMode = c4p.Mode
)

// C4P failure-response policies.
const (
	// C4PStaticMode plans at connect time only.
	C4PStaticMode = c4p.Static
	// C4PDynamicMode adds reallocation and load balance on failures.
	C4PDynamicMode = c4p.Dynamic
)

// C4PMasterOptions configures OpenC4PMaster.
type C4PMasterOptions struct {
	// Topology is the fabric the master plans paths on (required).
	Topology *Topology
	// Mode is the failure-response policy; the zero value is
	// C4PStaticMode.
	Mode C4PMode
	// Rand seeds the master's tie-breaking; nil means NewRand(Seed).
	Rand *Rand
	// Seed is used only when Rand is nil.
	Seed int64
}

// OpenC4PMaster creates a C4P traffic-engineering master for the fabric.
func OpenC4PMaster(opts C4PMasterOptions) (*C4PMaster, error) {
	if opts.Topology == nil {
		return nil, errNeed("OpenC4PMaster", "Topology")
	}
	r := opts.Rand
	if r == nil {
		r = sim.NewRand(opts.Seed)
	}
	return c4p.NewMaster(opts.Topology, opts.Mode, r), nil
}

// NewC4PMaster creates a C4P master for the fabric.
//
// Deprecated: use OpenC4PMaster.
func NewC4PMaster(t *Topology, mode C4PMode, r *Rand) *C4PMaster {
	return c4p.NewMaster(t, mode, r)
}

// C4D fault detection.
type (
	// C4DConfig tunes the detectors.
	C4DConfig = c4d.Config
	// C4DMaster is the central analyzer.
	C4DMaster = c4d.Master
	// C4DFleet is the per-worker agent fleet (an accl.StatsSink).
	C4DFleet = c4d.Fleet
	// C4DEvent is one finding.
	C4DEvent = c4d.Event
	// Syndrome classifies a finding.
	Syndrome = c4d.Syndrome
)

// Syndromes of §III-A.
const (
	CommHang    = c4d.CommHang
	NonCommHang = c4d.NonCommHang
	CommSlow    = c4d.CommSlow
	NonCommSlow = c4d.NonCommSlow
)

// NewC4DMaster creates a C4D master.
func NewC4DMaster(cfg C4DConfig) *C4DMaster { return c4d.NewMaster(cfg) }

// NewC4DFleet creates the agent fleet and starts its reporting loop.
func NewC4DFleet(eng *Engine, m *C4DMaster) *C4DFleet { return c4d.NewFleet(eng, m) }

// Jobs, workloads and recovery.
type (
	// JobConfig wires a training job to the cluster.
	JobConfig = job.Config
	// Job is a running training job.
	Job = job.Job
	// JobReport summarizes a run.
	JobReport = job.Report
	// JobSpec is a training workload.
	JobSpec = workload.JobSpec
	// Model is an LLM configuration.
	Model = workload.Model
	// Parallelism is a TP/PP/DP/GA strategy.
	Parallelism = workload.Parallelism
	// Machines is the compute fleet plus backup pool.
	Machines = cluster.Cluster
	// Fault is an injected hardware/software event.
	Fault = cluster.Fault
	// FaultInjector draws Table-I-distributed fault arrivals.
	FaultInjector = cluster.Injector
	// SteeringService is the isolate-and-restart pipeline.
	SteeringService = steering.Service
)

// Paper models.
var (
	GPT22B   = workload.GPT22B
	GPT175B  = workload.GPT175B
	Llama7B  = workload.Llama7B
	Llama13B = workload.Llama13B
)

// NewJob opens a training job.
func NewJob(cfg JobConfig) (*Job, error) { return job.New(cfg) }

// Training-iteration planner (internal/plan): the compiler from a 3D
// parallelization strategy to a timed 1F1B micro-batch schedule.
type (
	// PlanOptions tunes gradient bucketing and comm/compute overlap.
	PlanOptions = plan.Options
	// Plan is a compiled training iteration.
	Plan = plan.Plan
)

// CompilePlan expands a job spec's strategy into an iteration schedule.
func CompilePlan(spec JobSpec, opts PlanOptions) (*Plan, error) { return plan.Compile(spec, opts) }

// ParseParallelism parses a strategy string like "tp8/pp4/dp2/ga8".
func ParseParallelism(s string) (Parallelism, error) { return workload.ParseParallelism(s) }

// NewMachines builds n machines with g GPUs each plus spares.
func NewMachines(n, g, spares int) *Machines { return cluster.NewCluster(n, g, spares) }

// NewSteeringService creates the recovery pipeline.
func NewSteeringService(cfg steering.Config) *SteeringService { return steering.NewService(cfg) }

// Operational subsystems around the core loop.
type (
	// CheckpointManager is the Gemini-style two-tier snapshot manager.
	CheckpointManager = ckpt.Manager
	// CheckpointConfig tunes checkpointing cadence and persistence.
	CheckpointConfig = ckpt.Config
	// RCAnalyzer is the background root-cause analysis service (Fig 4).
	RCAnalyzer = rca.Analyzer
	// Telemetry is one server/network-monitor observation for RCA.
	Telemetry = rca.Telemetry
	// Scheduler is the topology-aware node allocator (§III-B).
	Scheduler = sched.Scheduler
)

// NewCheckpointManager creates a checkpoint manager on the engine.
func NewCheckpointManager(eng *Engine, cfg CheckpointConfig) *CheckpointManager {
	return ckpt.NewManager(eng, cfg)
}

// NewRCAnalyzer creates a root-cause analyzer with the given correlation
// window (0 = default 5 minutes).
func NewRCAnalyzer(window Time) *RCAnalyzer { return rca.NewAnalyzer(window) }

// NewScheduler creates a topology-aware scheduler over the fabric.
func NewScheduler(t *Topology) *Scheduler { return sched.New(t) }

// Sim-time causal tracing (internal/trace): a deterministic span recorder
// across every simulation layer, exported as Chrome trace-event JSON
// (open in Perfetto) or reduced to critical-path profiles by cmd/c4trace.
type (
	// Tracer records sim-time spans; attach one to a Session with
	// AttachTracer, then export its Spans after Run.
	Tracer = trace.Tracer
	// TraceSpan is one recorded interval (or instant event).
	TraceSpan = trace.Span
	// TraceProfileRow is one kind's aggregate in a trace profile.
	TraceProfileRow = trace.ProfileRow
	// TracePathSeg is one segment of an extracted critical path.
	TracePathSeg = trace.PathSeg
)

// NewTracer creates an unbound tracer; Session.Run binds it to the run's
// engine so span IDs draw from the engine's own deterministic sequence.
func NewTracer() *Tracer { return trace.New() }

// WriteTrace exports spans as Chrome trace-event JSON.
func WriteTrace(w io.Writer, spans []*TraceSpan) error { return trace.WriteChrome(w, spans) }

// ReadTrace parses a trace previously written by WriteTrace.
func ReadTrace(r io.Reader) ([]*TraceSpan, error) { return trace.ParseChrome(r) }

// TraceProfile aggregates spans into per-kind self/total times.
func TraceProfile(spans []*TraceSpan) []TraceProfileRow { return trace.Profile(spans) }

// TraceCriticalPath extracts the chain of spans that determines root's
// duration.
func TraceCriticalPath(spans []*TraceSpan, root *TraceSpan) []TracePathSeg {
	return trace.CriticalPath(spans, root)
}

// Experiment harness: one runner per paper table/figure. Each result has
// String() and CheckShape().
type (
	// Env is one simulated cluster instance for experiments.
	Env = harness.Env
	// ProviderKind selects the path-control policy under test.
	ProviderKind = harness.ProviderKind
)

// Path-control policies compared in the evaluation.
const (
	BaselineECMP = harness.Baseline
	C4PStatic    = harness.C4PStatic
	C4PDynamic   = harness.C4PDynamic
)

// EnvOptions configures OpenEnv.
type EnvOptions struct {
	// Spec describes the fabric; the zero value means PaperTestbed().
	Spec ClusterSpec
	// Net tunes the network simulator; nil means DefaultNetConfig().
	Net *NetConfig
}

// OpenEnv builds an experiment environment — engine, fabric, network —
// reporting spec errors instead of panicking.
func OpenEnv(opts EnvOptions) (*Env, error) {
	spec := opts.Spec
	if spec.Nodes == 0 {
		spec = topo.PaperTestbed()
	}
	t, err := topo.New(spec)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	net, err := OpenNetwork(NetworkOptions{Engine: eng, Topology: t, Config: opts.Net})
	if err != nil {
		return nil, err
	}
	return &Env{Eng: eng, Topo: t, Net: net}, nil
}

// NewEnv builds an experiment environment, panicking on a bad spec.
//
// Deprecated: use OpenEnv, which reports spec errors and accepts a
// network calibration.
func NewEnv(spec ClusterSpec) *Env { return harness.NewEnv(spec) }

// errNeed reports a missing required option.
func errNeed(ctor, what string) error {
	return fmt.Errorf("c4: %s requires %s", ctor, what)
}

// Experiment runners (see EXPERIMENTS.md for the index).
var (
	RunTableI   = harness.RunTableI
	RunTableIII = harness.RunTableIII
	RunFig3     = harness.RunFig3
	RunFig9     = harness.RunFig9
	RunFig10    = harness.RunFig10
	RunFig11    = harness.RunFig11
	RunFig12    = harness.RunFig12
	RunFig13    = harness.RunFig13
	RunFig14    = harness.RunFig14
	RunPipeline = harness.RunPipeline
)

// Ablation studies (design-choice isolation; see DESIGN.md §6).
var (
	RunPlaneRuleAblation = harness.RunPlaneRuleAblation
	RunAlgoCrossover     = harness.RunAlgoCrossover
	RunCkptSweep         = harness.RunCkptSweep
	RunKappaSweep        = harness.RunKappaSweep
	RunQPSweep           = harness.RunQPSweep
)

// Scenario registry and parallel experiment runner. Every experiment above
// is also registered as a named scenario; downstream users can register
// their own workloads and run any selection concurrently, with results
// guaranteed byte-identical to a serial sweep.
type (
	// Scenario is one named, parameterized experiment.
	Scenario = scenario.Scenario
	// ScenarioCtx carries the seed and statistics of one execution.
	ScenarioCtx = scenario.Ctx
	// ScenarioResult is a printable, shape-checked experiment outcome.
	ScenarioResult = scenario.Result
	// ScenarioRunner executes scenario sets on a worker pool.
	ScenarioRunner = scenario.Runner
	// ScenarioReport is one scenario's outcome plus execution stats.
	ScenarioReport = scenario.Report
)

// RegisterScenario adds an experiment to the global registry.
func RegisterScenario(s Scenario) { scenario.Register(s) }

// Scenarios lists every registered scenario in registration order.
func Scenarios() []Scenario { return scenario.All() }

// GetScenario fetches a registered scenario by name.
func GetScenario(name string) (Scenario, bool) { return scenario.Get(name) }

// SelectScenarios resolves a comma-separated selection (globs allowed).
func SelectScenarios(selection string) ([]Scenario, error) { return scenario.Select(selection) }

// RunScenario executes one scenario with the given seed. ctx cancels a
// run between scenarios (nil means context.Background()).
func RunScenario(ctx context.Context, s Scenario, seed int64) ScenarioReport {
	return scenario.RunOne(ctx, s, seed)
}
