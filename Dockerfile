# Build and serve the C4 simulation daemon. The repository is pure Go
# with no external dependencies, so the runtime image is a static binary
# on scratch.
#
#   docker build -t c4serve .
#   docker run --rm -p 8080:8080 c4serve
#   curl -s localhost:8080/v1/sessions -d '{"seed": 1, "job": {"model": "gpt22b"}}'

FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/c4serve ./cmd/c4serve

# Self-test the exact binary environment before shipping it.
RUN CGO_ENABLED=0 go run ./cmd/c4serve -smoke

FROM scratch
COPY --from=build /out/c4serve /c4serve
EXPOSE 8080
ENTRYPOINT ["/c4serve"]
CMD ["-addr", ":8080"]
