package workload

import (
	"testing"

	"c4/internal/sim"
)

func TestModelByName(t *testing.T) {
	for name, want := range map[string]Model{
		"gpt22b": GPT22B, "GPT-22B": GPT22B, "gpt175b": GPT175B,
		"llama-7b": Llama7B, "Llama13B": Llama13B,
	} {
		got, ok := ModelByName(name)
		if !ok || got.Name != want.Name {
			t.Errorf("ModelByName(%q) = %v, %v; want %v", name, got.Name, ok, want.Name)
		}
	}
	if _, ok := ModelByName("gpt9000"); ok {
		t.Error("unknown model resolved")
	}
}

func TestTenantSpec(t *testing.T) {
	nodes := []int{3, 1, 7, 5}
	spec := TenantSpec("t", GPT22B, nodes, 200*sim.Millisecond)
	groups, err := spec.DPGroups()
	if err != nil {
		t.Fatalf("tenant spec invalid: %v", err)
	}
	if len(groups) != 1 || len(groups[0]) != 4 {
		t.Fatalf("pure-DP groups = %v", groups)
	}
	if spec.Par.TP != 8 || spec.Par.DP != 4 {
		t.Fatalf("parallelism = %v, want TP8/DP4", spec.Par)
	}
	nodes[0] = 99 // caller's slice must not alias the spec
	if spec.Nodes[0] == 99 {
		t.Fatal("TenantSpec aliased the caller's node slice")
	}
}

func TestGradBytesPerRank(t *testing.T) {
	cases := []struct {
		model Model
		par   Parallelism
		want  float64
	}{
		{GPT22B, Parallelism{TP: 8}, 22e9 * 2 / 8},
		{GPT175B, Parallelism{TP: 8, PP: 8}, 175e9 * 2 / 64},
		{Llama7B, Parallelism{}, 7e9 * 2},
		{Llama13B, Parallelism{DP: 16}, 13e9 * 2},
	}
	for _, c := range cases {
		if got := c.model.GradBytesPerRank(c.par); got != c.want {
			t.Fatalf("%s %v: grad bytes = %g, want %g", c.model.Name, c.par, got, c.want)
		}
	}
}

func TestDPGroupsPlacement(t *testing.T) {
	spec := JobSpec{
		Name: "g", Model: GPT175B,
		Par:   Parallelism{TP: 8, PP: 4, DP: 2},
		Nodes: []int{0, 1, 2, 3, 4, 5, 6, 7},
	}
	groups, err := spec.DPGroups()
	if err != nil {
		t.Fatal(err)
	}
	// Stage s of replica d sits on Nodes[d*PP+s].
	want := [][]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}
	for s := range want {
		for d := range want[s] {
			if groups[s][d] != want[s][d] {
				t.Fatalf("groups = %v, want %v", groups, want)
			}
		}
	}
	// Wrong node count is rejected.
	spec.Nodes = spec.Nodes[:3]
	if _, err := spec.DPGroups(); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
}

func TestIterComputeTimeIncludesBubble(t *testing.T) {
	spec := JobSpec{
		Par:                  Parallelism{PP: 8, GA: 16},
		ComputePerMicroBatch: 100 * sim.Millisecond,
	}
	// GA + (PP-1) micro-batch slots.
	if got := spec.IterComputeTime(); got != 23*100*sim.Millisecond {
		t.Fatalf("iter compute = %v, want 2.3s", got)
	}
}

func TestFig14JobsShape(t *testing.T) {
	nodes := make([]int, 16)
	for i := range nodes {
		nodes[i] = i
	}
	jobs := Fig14Jobs(nodes)
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	// Job1: one DP group of 16; Job3: 8 groups of 2 with GA=16.
	g1, err := jobs[0].DPGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != 1 || len(g1[0]) != 16 {
		t.Fatalf("job1 groups = %v", g1)
	}
	g3, err := jobs[2].DPGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(g3) != 8 || jobs[2].Par.GA != 16 {
		t.Fatalf("job3 shape wrong: %v GA=%d", g3, jobs[2].Par.GA)
	}
	if !jobs[1].Par.ZeRO {
		t.Fatal("job2 must be ZeRO")
	}
	// Every job fits the 16-node testbed.
	for _, j := range jobs {
		if len(j.Nodes) != 16 {
			t.Fatalf("%s nodes = %d", j.Name, len(j.Nodes))
		}
	}
}
