package workload

import (
	"sort"
	"strings"
	"testing"

	"c4/internal/sim"
)

func TestModelByName(t *testing.T) {
	for name, want := range map[string]Model{
		"gpt22b": GPT22B, "GPT-22B": GPT22B, "gpt175b": GPT175B,
		"llama-7b": Llama7B, "Llama13B": Llama13B,
	} {
		got, ok := ModelByName(name)
		if !ok || got.Name != want.Name {
			t.Errorf("ModelByName(%q) = %v, %v; want %v", name, got.Name, ok, want.Name)
		}
	}
	if _, ok := ModelByName("gpt9000"); ok {
		t.Error("unknown model resolved")
	}
}

func TestTenantSpec(t *testing.T) {
	nodes := []int{3, 1, 7, 5}
	spec := TenantSpec("t", GPT22B, nodes, 200*sim.Millisecond)
	groups, err := spec.DPGroups()
	if err != nil {
		t.Fatalf("tenant spec invalid: %v", err)
	}
	if len(groups) != 1 || len(groups[0]) != 4 {
		t.Fatalf("pure-DP groups = %v", groups)
	}
	if spec.Par.TP != 8 || spec.Par.DP != 4 {
		t.Fatalf("parallelism = %v, want TP8/DP4", spec.Par)
	}
	nodes[0] = 99 // caller's slice must not alias the spec
	if spec.Nodes[0] == 99 {
		t.Fatal("TenantSpec aliased the caller's node slice")
	}
}

func TestGradBytesPerRank(t *testing.T) {
	cases := []struct {
		model Model
		par   Parallelism
		want  float64
	}{
		{GPT22B, Parallelism{TP: 8}, 22e9 * 2 / 8},
		{GPT175B, Parallelism{TP: 8, PP: 8}, 175e9 * 2 / 64},
		{Llama7B, Parallelism{}, 7e9 * 2},
		{Llama13B, Parallelism{DP: 16}, 13e9 * 2},
	}
	for _, c := range cases {
		if got := c.model.GradBytesPerRank(c.par); got != c.want {
			t.Fatalf("%s %v: grad bytes = %g, want %g", c.model.Name, c.par, got, c.want)
		}
	}
}

func TestDPGroupsPlacement(t *testing.T) {
	spec := JobSpec{
		Name: "g", Model: GPT175B,
		Par:   Parallelism{TP: 8, PP: 4, DP: 2},
		Nodes: []int{0, 1, 2, 3, 4, 5, 6, 7},
	}
	groups, err := spec.DPGroups()
	if err != nil {
		t.Fatal(err)
	}
	// Stage s of replica d sits on Nodes[d*PP+s].
	want := [][]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}
	for s := range want {
		for d := range want[s] {
			if groups[s][d] != want[s][d] {
				t.Fatalf("groups = %v, want %v", groups, want)
			}
		}
	}
	// Wrong node count is rejected.
	spec.Nodes = spec.Nodes[:3]
	if _, err := spec.DPGroups(); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
}

func TestIterComputeTimeIncludesBubble(t *testing.T) {
	spec := JobSpec{
		Par:                  Parallelism{PP: 8, GA: 16},
		ComputePerMicroBatch: 100 * sim.Millisecond,
	}
	// GA + (PP-1) micro-batch slots.
	if got := spec.IterComputeTime(); got != 23*100*sim.Millisecond {
		t.Fatalf("iter compute = %v, want 2.3s", got)
	}
}

func TestFig14JobsShape(t *testing.T) {
	nodes := make([]int, 16)
	for i := range nodes {
		nodes[i] = i
	}
	jobs := Fig14Jobs(nodes)
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	// Job1: one DP group of 16; Job3: 8 groups of 2 with GA=16.
	g1, err := jobs[0].DPGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != 1 || len(g1[0]) != 16 {
		t.Fatalf("job1 groups = %v", g1)
	}
	g3, err := jobs[2].DPGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(g3) != 8 || jobs[2].Par.GA != 16 {
		t.Fatalf("job3 shape wrong: %v GA=%d", g3, jobs[2].Par.GA)
	}
	if !jobs[1].Par.ZeRO {
		t.Fatal("job2 must be ZeRO")
	}
	// Every job fits the 16-node testbed.
	for _, j := range jobs {
		if len(j.Nodes) != 16 {
			t.Fatalf("%s nodes = %d", j.Name, len(j.Nodes))
		}
	}
}

func TestModelNamesSortedAndResolvable(t *testing.T) {
	names := ModelNames()
	if len(names) != 4 {
		t.Fatalf("ModelNames = %v, want 4 entries", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ModelNames not sorted: %v", names)
	}
	for _, n := range names {
		if _, ok := ModelByName(n); !ok {
			t.Errorf("ModelNames entry %q does not resolve", n)
		}
	}
}

func TestNormalizeFillsZeroFields(t *testing.T) {
	p := Parallelism{}.Normalize()
	if p.TP != 1 || p.PP != 1 || p.DP != 1 || p.GA != 1 {
		t.Fatalf("Normalize(zero) = %+v, want all 1", p)
	}
	// Set fields survive, including ZeRO; negatives normalize to 1 too.
	p = Parallelism{TP: 8, PP: -3, DP: 4, ZeRO: true}.Normalize()
	if p.TP != 8 || p.PP != 1 || p.DP != 4 || p.GA != 1 || !p.ZeRO {
		t.Fatalf("Normalize = %+v", p)
	}
}

func TestDPGroupsNodeCountMismatchError(t *testing.T) {
	spec := JobSpec{
		Name:  "mismatch",
		Model: GPT22B,
		Par:   Parallelism{TP: 8, PP: 2, DP: 4},
		Nodes: []int{0, 1, 2}, // needs 8
	}
	_, err := spec.DPGroups()
	if err == nil {
		t.Fatal("DPGroups accepted a 3-node PP2xDP4 job")
	}
	for _, want := range []string{"mismatch", "3", "8"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q should name the job and both counts (missing %q)", err, want)
		}
	}
}

func TestGradBytesPerRankInvariantUnderDP(t *testing.T) {
	base := GPT175B.GradBytesPerRank(Parallelism{TP: 8, PP: 4, DP: 1})
	for _, dp := range []int{2, 4, 16} {
		if got := GPT175B.GradBytesPerRank(Parallelism{TP: 8, PP: 4, DP: dp}); got != base {
			t.Fatalf("DP=%d changed grad bytes: %g vs %g (DP replicates, never shards)", dp, got, base)
		}
	}
	// And the volume divides by exactly TP*PP.
	full := GPT175B.GradBytesPerRank(Parallelism{})
	if got := GPT175B.GradBytesPerRank(Parallelism{TP: 8, PP: 4}); got != full/32 {
		t.Fatalf("TP8xPP4 shard = %g, want params*bytes/32 = %g", got, full/32)
	}
}

func TestParseParallelism(t *testing.T) {
	cases := map[string]Parallelism{
		"tp8/pp4/dp2/ga8": {TP: 8, PP: 4, DP: 2, GA: 8},
		"TP8-DP16":        {TP: 8, PP: 1, DP: 16, GA: 1},
		"dp16xga2":        {TP: 1, PP: 1, DP: 16, GA: 2},
		"dp16,zero":       {TP: 1, PP: 1, DP: 16, GA: 1, ZeRO: true},
		"pp2/tp8/ga4/dp2": {TP: 8, PP: 2, DP: 2, GA: 4},
	}
	for in, want := range cases {
		got, err := ParseParallelism(in)
		if err != nil {
			t.Errorf("ParseParallelism(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseParallelism(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"", "qp4", "tp0", "tp-8", "tpfoo", "tp8/tp4"} {
		if p, err := ParseParallelism(bad); err == nil {
			t.Errorf("ParseParallelism(%q) accepted as %+v", bad, p)
		}
	}
}
