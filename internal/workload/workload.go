// Package workload defines the training workloads of the paper's
// evaluation (Table II): GPT and Llama models at the sizes used in Figs 3,
// 9, 10, 12 and 14, with the parallelization strategies (TP/PP/DP, ZeRO,
// gradient accumulation) that determine each job's communication:compute
// ratio — the knob that decides how much C4P can help (Fig 14's Job3
// lesson).
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"c4/internal/sim"
)

// Model is an LLM training configuration.
type Model struct {
	Name   string
	Params float64 // parameter count
	// BytesPerGrad is bytes per gradient element (2 for fp16/bf16).
	BytesPerGrad float64
}

// Paper models.
var (
	// GPT22B is the model behind Fig 3 and Fig 14's Job1.
	GPT22B = Model{Name: "GPT-22B", Params: 22e9, BytesPerGrad: 2}
	// GPT175B is the Table III job and Fig 14's Job3.
	GPT175B = Model{Name: "GPT-175B", Params: 175e9, BytesPerGrad: 2}
	// Llama7B is Fig 14's Job2.
	Llama7B = Model{Name: "Llama-7B", Params: 7e9, BytesPerGrad: 2}
	// Llama13B appears in the C4P benchmark list (Table II).
	Llama13B = Model{Name: "Llama-13B", Params: 13e9, BytesPerGrad: 2}
)

// modelsByName is the single source of truth for short model names; both
// ModelByName and ModelNames derive from it so CLI help, trace validation
// errors and the resolver can never disagree.
var modelsByName = map[string]Model{
	"gpt22b":   GPT22B,
	"gpt175b":  GPT175B,
	"llama7b":  Llama7B,
	"llama13b": Llama13B,
}

// ModelByName resolves a paper model by the short name used in arrival
// traces and CLI flags (case-insensitive, dashes optional).
func ModelByName(name string) (Model, bool) {
	m, ok := modelsByName[strings.ReplaceAll(strings.ToLower(name), "-", "")]
	return m, ok
}

// ModelNames returns the short names ModelByName accepts, sorted — the
// list CLI flag help and error messages print.
func ModelNames() []string {
	out := make([]string, 0, len(modelsByName))
	for name := range modelsByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TenantSpec builds the job a multi-tenant arrival describes: pure data
// parallelism across the assigned nodes with TP8 intra-node (the paper's
// placement — tensor parallelism never leaves the 8-GPU node), so every
// gradient sync crosses the fabric and contends with the other tenants.
func TenantSpec(name string, m Model, nodes []int, compute sim.Time) JobSpec {
	return JobSpec{
		Name:                 name,
		Model:                m,
		Par:                  Parallelism{TP: 8, DP: len(nodes), GA: 1},
		Nodes:                append([]int(nil), nodes...),
		ComputePerMicroBatch: compute,
		ComputeJitter:        0.02,
		SamplesPerIter:       float64(4 * len(nodes)),
	}
}

// Parallelism is a distributed-training strategy.
type Parallelism struct {
	TP   int  // tensor-parallel width (intra-node in all paper jobs)
	PP   int  // pipeline-parallel depth
	DP   int  // data-parallel replicas
	GA   int  // gradient-accumulation steps per optimizer step
	ZeRO bool // DeepSpeed ZeRO optimizer sharding (Job2)
}

func (p Parallelism) String() string {
	p = p.Normalize()
	z := ""
	if p.ZeRO {
		z = "+ZeRO"
	}
	return fmt.Sprintf("TP%d/PP%d/DP%d/GA%d%s", p.TP, p.PP, p.DP, p.GA, z)
}

// ParseParallelism parses a strategy string like "tp8/pp4/dp2/ga8":
// case-insensitive fields in any order, separated by '/', '-', 'x' or
// ','; omitted fields default to 1 (via Normalize), and "zero" marks
// DeepSpeed ZeRO sharding.
func ParseParallelism(s string) (Parallelism, error) {
	var p Parallelism
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return r == '/' || r == '-' || r == 'x' || r == ','
	})
	if len(fields) == 0 {
		return p, fmt.Errorf("workload: empty parallelism %q", s)
	}
	for _, f := range fields {
		if f == "zero" {
			p.ZeRO = true
			continue
		}
		var dst *int
		switch {
		case strings.HasPrefix(f, "tp"):
			dst = &p.TP
		case strings.HasPrefix(f, "pp"):
			dst = &p.PP
		case strings.HasPrefix(f, "dp"):
			dst = &p.DP
		case strings.HasPrefix(f, "ga"):
			dst = &p.GA
		default:
			return p, fmt.Errorf("workload: bad parallelism field %q in %q (want tp/pp/dp/ga<N> or zero)", f, s)
		}
		n, err := strconv.Atoi(f[2:])
		if err != nil || n <= 0 {
			return p, fmt.Errorf("workload: bad parallelism field %q in %q (want a positive count)", f, s)
		}
		if *dst != 0 {
			return p, fmt.Errorf("workload: duplicate parallelism field %q in %q", f, s)
		}
		*dst = n
	}
	return p.Normalize(), nil
}

// Normalize fills zero fields with 1.
func (p Parallelism) Normalize() Parallelism {
	if p.TP <= 0 {
		p.TP = 1
	}
	if p.PP <= 0 {
		p.PP = 1
	}
	if p.DP <= 0 {
		p.DP = 1
	}
	if p.GA <= 0 {
		p.GA = 1
	}
	return p
}

// GradBytesPerRank is the data-parallel synchronization volume per DP rank
// per optimizer step: the gradient shard held after TP/PP partitioning.
func (m Model) GradBytesPerRank(p Parallelism) float64 {
	p = p.Normalize()
	return m.Params * m.BytesPerGrad / float64(p.TP*p.PP)
}

// JobSpec is a complete training job for the simulator.
type JobSpec struct {
	Name  string
	Model Model
	Par   Parallelism
	// Nodes are the compute nodes assigned, in placement order: PP stages
	// are contiguous, DP replicas strided (TP stays inside a node, as on
	// the paper's 8-GPU H800 nodes).
	Nodes []int
	// ComputePerMicroBatch is one micro-batch's forward+backward time.
	ComputePerMicroBatch sim.Time
	// ComputeJitter is the per-node per-iteration relative noise.
	ComputeJitter float64
	// SamplesPerIter is the global batch size, for samples/sec reporting.
	SamplesPerIter float64
}

// DPGroups returns the node sets that perform gradient allreduce together:
// for each pipeline stage, the nodes holding that stage across DP replicas.
// With the paper's placement (TP intra-node), a job uses PP×DP nodes and
// stage s of replica d sits on Nodes[d*PP+s].
func (j JobSpec) DPGroups() ([][]int, error) {
	p := j.Par.Normalize()
	want := p.PP * p.DP
	if len(j.Nodes) != want {
		return nil, fmt.Errorf("workload: job %q has %d nodes, needs PP*DP = %d",
			j.Name, len(j.Nodes), want)
	}
	groups := make([][]int, p.PP)
	for s := 0; s < p.PP; s++ {
		for d := 0; d < p.DP; d++ {
			groups[s] = append(groups[s], j.Nodes[d*p.PP+s])
		}
	}
	return groups, nil
}

// IterComputeTime is the compute span of one optimizer step: GA
// micro-batches plus the pipeline bubble (PP-1 extra micro-batch slots).
func (j JobSpec) IterComputeTime() sim.Time {
	p := j.Par.Normalize()
	return sim.Time(p.GA+p.PP-1) * j.ComputePerMicroBatch
}

// Fig14Jobs returns the three real-life jobs of Fig 14 on a 16-node
// testbed. Compute times are calibrated so Job1 and Job2 spend ≳30% of an
// iteration communicating (the paper's precondition for visible gains)
// while Job3's GA=16 dilutes communication to a few percent.
func Fig14Jobs(nodes []int) []JobSpec {
	n16 := nodes[:16]
	return []JobSpec{
		{
			Name:  "Job1",
			Model: GPT22B,
			// Megatron, TP8 (intra-node) × DP16.
			Par:                  Parallelism{TP: 8, DP: 16, GA: 1},
			Nodes:                n16,
			ComputePerMicroBatch: 550 * sim.Millisecond,
			ComputeJitter:        0.02,
			SamplesPerIter:       64,
		},
		{
			Name:  "Job2",
			Model: Llama7B,
			// DeepSpeed ZeRO, pure DP over 16 nodes.
			Par:                  Parallelism{DP: 16, GA: 1, ZeRO: true},
			Nodes:                n16,
			ComputePerMicroBatch: 1400 * sim.Millisecond,
			ComputeJitter:        0.02,
			SamplesPerIter:       256,
		},
		{
			Name:  "Job3",
			Model: GPT175B,
			// Megatron, TP8 × PP8 × DP2, GA16.
			Par:                  Parallelism{TP: 8, PP: 8, DP: 2, GA: 16},
			Nodes:                n16,
			ComputePerMicroBatch: 300 * sim.Millisecond,
			ComputeJitter:        0.02,
			SamplesPerIter:       128,
		},
	}
}
