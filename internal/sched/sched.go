// Package sched implements the topology-aware scheduling the paper uses
// before traffic engineering even starts (§III-B): "we utilize
// topology-aware scheduling techniques to ensure that the two ranks
// needing to communicate are as close as possible within the network."
// Placing a job inside one leaf group makes its ring traffic stay under
// the leaves (zero spine hops); when a job must span groups, packing
// whole groups minimizes the number of ring edges that cross the spine
// layer — each crossing is an opportunity for collision.
package sched

import (
	"fmt"
	"sort"

	"c4/internal/sim"
	"c4/internal/topo"
)

// Policy selects how a multi-tenant scheduler maps a job onto leaf groups.
// Packed is the topology-aware placement of §III-B; Spread is the
// collision-prone worst case every paper benchmark uses as its baseline;
// Random models an unaware scheduler filling whatever happens to be free.
type Policy int

const (
	// PolicyPacked fills as few leaf groups as possible, fullest first, so
	// ring traffic avoids the spine layer where it can.
	PolicyPacked Policy = iota
	// PolicySpread stripes the job round-robin across leaf groups, so
	// every ring edge crosses the spine layer.
	PolicySpread
	// PolicyRandom picks uniformly among free nodes (seeded, so a given
	// trace replays identically).
	PolicyRandom
)

func (p Policy) String() string {
	switch p {
	case PolicyPacked:
		return "packed"
	case PolicySpread:
		return "spread"
	case PolicyRandom:
		return "random"
	}
	return "unknown"
}

// Policies lists every placement policy, in comparison order.
func Policies() []Policy { return []Policy{PolicyPacked, PolicySpread, PolicyRandom} }

// ParsePolicy resolves a policy name (as printed by String).
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown placement policy %q (have packed, spread, random)", s)
}

// Scheduler hands out nodes with leaf-group affinity.
type Scheduler struct {
	topo *topo.Topology
	used map[int]bool
}

// New creates a scheduler over the fabric's nodes.
func New(t *topo.Topology) *Scheduler {
	return &Scheduler{topo: t, used: make(map[int]bool)}
}

// Free reports the number of unallocated nodes.
func (s *Scheduler) Free() int {
	return s.topo.Spec.Nodes - len(s.used)
}

// groupsByFreeCapacity lists group indices ordered by free nodes
// descending (ties by index for determinism).
func (s *Scheduler) groupsByFreeCapacity() []int {
	spec := s.topo.Spec
	free := make([]int, spec.Groups())
	for n := 0; n < spec.Nodes; n++ {
		if !s.used[n] {
			free[s.topo.Group(n)]++
		}
	}
	idx := make([]int, len(free))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if free[idx[a]] != free[idx[b]] {
			return free[idx[a]] > free[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// Allocate picks m nodes packing as few leaf groups as possible, fullest
// groups first. The returned slice is in group-major order, which is also
// the ring order that minimizes spine crossings.
func (s *Scheduler) Allocate(m int) ([]int, error) {
	return s.AllocatePolicy(m, PolicyPacked, nil)
}

// AllocatePolicy picks m nodes under the given placement policy. The rand
// source is consumed only by PolicyRandom (nil falls back to a fixed seed,
// keeping even careless callers deterministic).
func (s *Scheduler) AllocatePolicy(m int, pol Policy, r *sim.Rand) ([]int, error) {
	if m <= 0 {
		return nil, fmt.Errorf("sched: allocate %d nodes", m)
	}
	if m > s.Free() {
		return nil, fmt.Errorf("sched: %d nodes requested, %d free", m, s.Free())
	}
	var out []int
	switch pol {
	case PolicySpread:
		out = s.pickSpread(m)
	case PolicyRandom:
		if r == nil {
			r = sim.NewRand(1)
		}
		out = s.pickRandom(m, r)
	default:
		out = s.pickPacked(m)
	}
	if len(out) != m {
		return nil, fmt.Errorf("sched: internal accounting error") // unreachable
	}
	for _, picked := range out {
		s.used[picked] = true
	}
	return out, nil
}

// pickPacked walks groups fullest-first, draining each before moving on.
func (s *Scheduler) pickPacked(m int) []int {
	var out []int
	for _, g := range s.groupsByFreeCapacity() {
		for _, n := range s.freeInGroup(g) {
			out = append(out, n)
			if len(out) == m {
				return out
			}
		}
	}
	return out
}

// pickSpread takes one node per group round-robin (groups ordered by free
// capacity descending), so consecutive ring members land in different
// groups and every ring edge crosses the spine layer.
func (s *Scheduler) pickSpread(m int) []int {
	free := make([][]int, 0, s.topo.Spec.Groups())
	for _, g := range s.groupsByFreeCapacity() {
		if nodes := s.freeInGroup(g); len(nodes) > 0 {
			free = append(free, nodes)
		}
	}
	var out []int
	for len(out) < m {
		advanced := false
		for i := range free {
			if len(free[i]) == 0 {
				continue
			}
			out = append(out, free[i][0])
			free[i] = free[i][1:]
			advanced = true
			if len(out) == m {
				return out
			}
		}
		if !advanced {
			return out
		}
	}
	return out
}

// pickRandom draws m distinct free nodes uniformly from the seeded source.
func (s *Scheduler) pickRandom(m int, r *sim.Rand) []int {
	var free []int
	for n := 0; n < s.topo.Spec.Nodes; n++ {
		if !s.used[n] {
			free = append(free, n)
		}
	}
	perm := r.Perm(len(free))
	out := make([]int, 0, m)
	for _, i := range perm[:m] {
		out = append(out, free[i])
	}
	return out
}

// freeInGroup lists the unallocated nodes of one leaf group, ascending.
func (s *Scheduler) freeInGroup(g int) []int {
	var out []int
	for n := g * s.topo.Spec.NodesPerGroup; n < (g+1)*s.topo.Spec.NodesPerGroup && n < s.topo.Spec.Nodes; n++ {
		if !s.used[n] {
			out = append(out, n)
		}
	}
	return out
}

// Release returns nodes to the pool.
func (s *Scheduler) Release(nodes []int) {
	for _, n := range nodes {
		delete(s.used, n)
	}
}

// RingOrder reorders nodes group-major so that ring edges cross the spine
// layer the minimum number of times (once per adjacent group pair, plus
// the wrap-around).
func RingOrder(t *topo.Topology, nodes []int) []int {
	out := append([]int(nil), nodes...)
	sort.Slice(out, func(i, j int) bool {
		gi, gj := t.Group(out[i]), t.Group(out[j])
		if gi != gj {
			return gi < gj
		}
		return out[i] < out[j]
	})
	return out
}

// CrossGroupEdges counts ring edges that leave a leaf group — the edges
// that traverse spines and can collide.
func CrossGroupEdges(t *topo.Topology, ring []int) int {
	if len(ring) < 2 {
		return 0
	}
	count := 0
	for i := range ring {
		a, b := ring[i], ring[(i+1)%len(ring)]
		if t.Group(a) != t.Group(b) {
			count++
		}
	}
	return count
}
