// Package sched implements the topology-aware scheduling the paper uses
// before traffic engineering even starts (§III-B): "we utilize
// topology-aware scheduling techniques to ensure that the two ranks
// needing to communicate are as close as possible within the network."
// Placing a job inside one leaf group makes its ring traffic stay under
// the leaves (zero spine hops); when a job must span groups, packing
// whole groups minimizes the number of ring edges that cross the spine
// layer — each crossing is an opportunity for collision.
package sched

import (
	"fmt"
	"sort"

	"c4/internal/topo"
)

// Scheduler hands out nodes with leaf-group affinity.
type Scheduler struct {
	topo *topo.Topology
	used map[int]bool
}

// New creates a scheduler over the fabric's nodes.
func New(t *topo.Topology) *Scheduler {
	return &Scheduler{topo: t, used: make(map[int]bool)}
}

// Free reports the number of unallocated nodes.
func (s *Scheduler) Free() int {
	return s.topo.Spec.Nodes - len(s.used)
}

// groupsByFreeCapacity lists group indices ordered by free nodes
// descending (ties by index for determinism).
func (s *Scheduler) groupsByFreeCapacity() []int {
	spec := s.topo.Spec
	free := make([]int, spec.Groups())
	for n := 0; n < spec.Nodes; n++ {
		if !s.used[n] {
			free[s.topo.Group(n)]++
		}
	}
	idx := make([]int, len(free))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if free[idx[a]] != free[idx[b]] {
			return free[idx[a]] > free[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// Allocate picks m nodes packing as few leaf groups as possible, fullest
// groups first. The returned slice is in group-major order, which is also
// the ring order that minimizes spine crossings.
func (s *Scheduler) Allocate(m int) ([]int, error) {
	if m <= 0 {
		return nil, fmt.Errorf("sched: allocate %d nodes", m)
	}
	if m > s.Free() {
		return nil, fmt.Errorf("sched: %d nodes requested, %d free", m, s.Free())
	}
	var out []int
	for _, g := range s.groupsByFreeCapacity() {
		for n := g * s.topo.Spec.NodesPerGroup; n < (g+1)*s.topo.Spec.NodesPerGroup && n < s.topo.Spec.Nodes; n++ {
			if s.used[n] {
				continue
			}
			out = append(out, n)
			if len(out) == m {
				for _, picked := range out {
					s.used[picked] = true
				}
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("sched: internal accounting error") // unreachable
}

// Release returns nodes to the pool.
func (s *Scheduler) Release(nodes []int) {
	for _, n := range nodes {
		delete(s.used, n)
	}
}

// RingOrder reorders nodes group-major so that ring edges cross the spine
// layer the minimum number of times (once per adjacent group pair, plus
// the wrap-around).
func RingOrder(t *topo.Topology, nodes []int) []int {
	out := append([]int(nil), nodes...)
	sort.Slice(out, func(i, j int) bool {
		gi, gj := t.Group(out[i]), t.Group(out[j])
		if gi != gj {
			return gi < gj
		}
		return out[i] < out[j]
	})
	return out
}

// CrossGroupEdges counts ring edges that leave a leaf group — the edges
// that traverse spines and can collide.
func CrossGroupEdges(t *topo.Topology, ring []int) int {
	if len(ring) < 2 {
		return 0
	}
	count := 0
	for i := range ring {
		a, b := ring[i], ring[(i+1)%len(ring)]
		if t.Group(a) != t.Group(b) {
			count++
		}
	}
	return count
}
