package sched

import (
	"testing"
	"testing/quick"

	"c4/internal/sim"
	"c4/internal/topo"
)

func testTopo() *topo.Topology {
	return topo.MustNew(topo.MultiJobTestbed(8)) // 16 nodes, 2 groups of 8
}

func TestAllocatePacksOneGroup(t *testing.T) {
	s := New(testTopo())
	nodes, err := s.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	g := s.topo.Group(nodes[0])
	for _, n := range nodes {
		if s.topo.Group(n) != g {
			t.Fatalf("allocation spans groups: %v", nodes)
		}
	}
	if CrossGroupEdges(s.topo, nodes) != 0 {
		t.Fatal("packed allocation should have zero spine-crossing ring edges")
	}
}

func TestAllocateSpanningMinimizesCrossings(t *testing.T) {
	s := New(testTopo())
	nodes, err := s.Allocate(12)
	if err != nil {
		t.Fatal(err)
	}
	ring := RingOrder(s.topo, nodes)
	// Two groups touched: exactly 2 crossing edges (boundary + wrap).
	if got := CrossGroupEdges(s.topo, ring); got != 2 {
		t.Fatalf("crossings = %d, want 2; ring %v", got, ring)
	}
	// Versus the naive interleaved order, which crosses on every edge.
	interleaved := []int{0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13}
	if got := CrossGroupEdges(s.topo, interleaved); got != 12 {
		t.Fatalf("interleaved crossings = %d, want 12", got)
	}
}

func TestAllocateTracksUsage(t *testing.T) {
	s := New(testTopo())
	a, err := s.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, n := range append(a, b...) {
		if seen[n] {
			t.Fatalf("node %d allocated twice", n)
		}
		seen[n] = true
	}
	if s.Free() != 0 {
		t.Fatalf("free = %d, want 0", s.Free())
	}
	if _, err := s.Allocate(1); err == nil {
		t.Fatal("over-allocation accepted")
	}
	s.Release(a)
	if s.Free() != 8 {
		t.Fatalf("free after release = %d", s.Free())
	}
}

func TestAllocateValidation(t *testing.T) {
	s := New(testTopo())
	if _, err := s.Allocate(0); err == nil {
		t.Fatal("zero allocation accepted")
	}
	if _, err := s.Allocate(17); err == nil {
		t.Fatal("oversized allocation accepted")
	}
}

func TestAllocatePrefersFullestGroups(t *testing.T) {
	s := New(testTopo())
	// Fragment group 0: take 5 nodes, leaving 3 free there and 8 in g1.
	frag, err := s.Allocate(5)
	if err != nil {
		t.Fatal(err)
	}
	_ = frag
	// An 8-node job must go entirely to group 1.
	nodes, err := s.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if s.topo.Group(n) != 1 {
			t.Fatalf("job not packed into the fullest group: %v", nodes)
		}
	}
}

func TestAllocatePolicySpread(t *testing.T) {
	s := New(testTopo())
	nodes, err := s.AllocatePolicy(4, PolicySpread, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin across the two groups: consecutive ring members must
	// alternate groups, so every ring edge crosses the spines.
	if got := CrossGroupEdges(s.topo, nodes); got != 4 {
		t.Fatalf("spread crossings = %d, want 4; nodes %v", got, nodes)
	}
	// Spread still honors usage accounting.
	if s.Free() != 12 {
		t.Fatalf("free = %d, want 12", s.Free())
	}
}

func TestAllocatePolicyRandomDeterministic(t *testing.T) {
	a := New(testTopo())
	b := New(testTopo())
	na, err := a.AllocatePolicy(6, PolicyRandom, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.AllocatePolicy(6, PolicyRandom, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("equal seeds diverged: %v vs %v", na, nb)
		}
	}
	seen := map[int]bool{}
	for _, n := range na {
		if seen[n] {
			t.Fatalf("node %d allocated twice: %v", n, na)
		}
		seen[n] = true
	}
}

func TestAllocatePolicyExhaustion(t *testing.T) {
	for _, pol := range Policies() {
		s := New(testTopo())
		got, err := s.AllocatePolicy(16, pol, sim.NewRand(1))
		if err != nil || len(got) != 16 {
			t.Fatalf("%v: full allocation failed: %v (%d nodes)", pol, err, len(got))
		}
		if _, err := s.AllocatePolicy(1, pol, sim.NewRand(1)); err == nil {
			t.Fatalf("%v: over-allocation accepted", pol)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, pol := range Policies() {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Property: RingOrder never increases (and packed orders minimize)
// cross-group edges relative to a random order of the same nodes.
func TestRingOrderMinimizesCrossingsProperty(t *testing.T) {
	tp := testTopo()
	f := func(seed int64, count uint8) bool {
		r := sim.NewRand(seed)
		m := int(count)%14 + 2
		perm := r.Perm(tp.Spec.Nodes)[:m]
		ordered := RingOrder(tp, perm)
		if CrossGroupEdges(tp, ordered) > CrossGroupEdges(tp, perm) {
			return false
		}
		// Group-major order crosses at most once per group touched (plus
		// wrap), i.e. ≤ number of distinct groups.
		groups := map[int]bool{}
		for _, n := range perm {
			groups[tp.Group(n)] = true
		}
		return CrossGroupEdges(tp, ordered) <= len(groups)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
