package faults

import (
	"fmt"
	"slices"
	"strings"

	"c4/internal/c4d"
	"c4/internal/metrics"
	"c4/internal/sim"
)

// Time-to-detect scoring: where score.go asks *whether* a detector found
// the injected faults (precision/recall), this file asks *how fast*. The
// fault-injection campaigns know the exact inject instant of every spec,
// so a detection stream — batch C4D events converted via
// c4d.Detections, or the streaming detector's native output — scores
// directly against ground truth as TimeToDetect (first attributable
// detection) and TimeToLocalize (first detection whose suspect set stays
// inside the fault's impact set, i.e. blames no innocent).

// FaultTiming is the detection-latency outcome for one relevant fault.
type FaultTiming struct {
	Spec     Spec
	Detected bool
	// TimeToDetect is first attributable detection minus fault start.
	TimeToDetect sim.Time
	Localized    bool
	// TimeToLocalize is the first detection with suspects ⊆ impact.
	TimeToLocalize sim.Time
}

// TTDReport scores a detection stream's latency against ground truth.
type TTDReport struct {
	Faults     []FaultTiming // one per relevant ground truth
	Detections int           // total detections scored
	// FalseAlarms counts detections attributable to no injected fault.
	FalseAlarms int
}

// matchesDetection mirrors GroundTruth.Matches for the streaming shape:
// the detection fires inside the fault's active window (plus grace) and
// names at least one impacted node as a suspect.
func (gt GroundTruth) matchesDetection(d c4d.Detection) bool {
	if !gt.Relevant() {
		return false
	}
	if d.At < gt.Spec.Start || d.At > gt.Spec.End()+Grace {
		return false
	}
	for _, s := range d.Suspects {
		if slices.Contains(gt.Impact, s) {
			return true
		}
	}
	return false
}

// localizes reports whether the detection blames only impacted nodes.
func (gt GroundTruth) localizes(d c4d.Detection) bool {
	if len(d.Suspects) == 0 {
		return false
	}
	for _, s := range d.Suspects {
		if !slices.Contains(gt.Impact, s) {
			return false
		}
	}
	return true
}

// ScoreTTD computes per-fault detection latency for a detection stream.
// Detections need not be time-sorted; the earliest match wins.
func ScoreTTD(dets []c4d.Detection, truths []GroundTruth) TTDReport {
	rep := TTDReport{Detections: len(dets)}
	type slot struct {
		timing FaultTiming
		truth  GroundTruth
	}
	var slots []slot
	for _, gt := range truths {
		if gt.Relevant() {
			slots = append(slots, slot{FaultTiming{Spec: gt.Spec}, gt})
		}
	}
	for _, d := range dets {
		matched := false
		for i := range slots {
			s := &slots[i]
			if !s.truth.matchesDetection(d) {
				continue
			}
			matched = true
			ttd := d.At - s.truth.Spec.Start
			if !s.timing.Detected || ttd < s.timing.TimeToDetect {
				s.timing.Detected = true
				s.timing.TimeToDetect = ttd
			}
			if s.truth.localizes(d) &&
				(!s.timing.Localized || ttd < s.timing.TimeToLocalize) {
				s.timing.Localized = true
				s.timing.TimeToLocalize = ttd
			}
		}
		if !matched {
			rep.FalseAlarms++
		}
	}
	for _, s := range slots {
		rep.Faults = append(rep.Faults, s.timing)
	}
	return rep
}

// DetectedCount reports how many relevant faults were detected at all.
func (r TTDReport) DetectedCount() int {
	n := 0
	for _, f := range r.Faults {
		if f.Detected {
			n++
		}
	}
	return n
}

// MeanTTDSeconds averages TimeToDetect over detected faults; 0 when
// nothing was detected (never NaN — these numbers feed c4bench -json).
func (r TTDReport) MeanTTDSeconds() float64 {
	var xs []float64
	for _, f := range r.Faults {
		if f.Detected {
			xs = append(xs, f.TimeToDetect.Seconds())
		}
	}
	return metrics.Mean(xs)
}

// MeanTTLSeconds averages TimeToLocalize over localized faults; 0 when
// nothing was localized.
func (r TTDReport) MeanTTLSeconds() float64 {
	var xs []float64
	for _, f := range r.Faults {
		if f.Localized {
			xs = append(xs, f.TimeToLocalize.Seconds())
		}
	}
	return metrics.Mean(xs)
}

func (r TTDReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d faults detected (mean TTD %.2fs, mean TTL %.2fs), %d false alarms\n",
		r.DetectedCount(), len(r.Faults), r.MeanTTDSeconds(), r.MeanTTLSeconds(), r.FalseAlarms)
	for _, f := range r.Faults {
		switch {
		case !f.Detected:
			fmt.Fprintf(&sb, "  %v: MISSED\n", f.Spec)
		case !f.Localized:
			fmt.Fprintf(&sb, "  %v: detected +%v (never localized)\n", f.Spec, f.TimeToDetect)
		default:
			fmt.Fprintf(&sb, "  %v: detected +%v, localized +%v\n",
				f.Spec, f.TimeToDetect, f.TimeToLocalize)
		}
	}
	return sb.String()
}
