package faults

import (
	"fmt"
	"strings"

	"c4/internal/sim"
)

// Default campaign timing: faults land after the job warms up and clear
// with enough horizon left to observe recovery.
const (
	campaignHorizon = 5 * sim.Minute
	faultStart      = 40 * sim.Second
	faultSpan       = 220 * sim.Second
)

// Campaigns returns every predefined campaign, in registration order.
// Each one is registered in the scenario registry as "campaign/<name>".
func Campaigns() []Campaign {
	return []Campaign{
		flapSweep(),
		degradeSweep(),
		outageSweep(),
		stragglerSweep(),
		mixedMonteCarlo(),
	}
}

// ByName resolves a campaign by its short name.
func ByName(name string) (Campaign, bool) {
	for _, c := range Campaigns() {
		if c.Name == name {
			return c, true
		}
	}
	return Campaign{}, false
}

// CampaignSelection maps a comma-separated list of short campaign names
// onto scenario-registry names: "flap-sweep,mixed" ->
// "campaign/flap-sweep,campaign/mixed", with "all" matching every
// campaign. Shared by the c4sim and c4bench -campaign flags.
func CampaignSelection(sel string) string {
	var out []string
	for _, term := range strings.Split(sel, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		if term == "all" {
			term = "*"
		}
		out = append(out, "campaign/"+term)
	}
	return strings.Join(out, ",")
}

// flapSweep sweeps link-flap duty cycle × fabric oversubscription ×
// placement. Spread placements route every ring edge over the spines, so a
// flapping uplink stalls pinned routes for its duty share of each period;
// packed single-leaf placements never touch the spine layer and must ride
// through untouched.
func flapSweep() Campaign {
	return Campaign{
		Name:        "flap-sweep",
		Description: "link-flap duty cycle x oversubscription x placement",
		Paper:       "flapping uplinks stall pinned routes; C4P steering routes around each down window",
		Horizon:     campaignHorizon,
		Gen: func(seed int64) []Trial {
			var trials []Trial
			for _, duty := range []float64{0.25, 0.5, 0.75} {
				for _, spines := range []int{8, 4} {
					for _, pl := range []Placement{Spread, Packed} {
						jobN := 16
						if pl == Packed {
							jobN = 8 // one full leaf group: no spine traffic
						}
						trials = append(trials, Trial{
							ID:   fmt.Sprintf("flap-d%02.0f-x%d-%s", duty*100, spines, pl),
							JobN: jobN, Spines: spines, Placement: pl,
							Specs: []Spec{{
								Kind: LinkFlap, Rail: 0, Plane: 0, Group: 0, Uplink: 1,
								Severity: duty, Period: 16 * sim.Second,
								Start: faultStart, Duration: faultSpan,
							}},
						})
					}
				}
			}
			return trials
		},
		Check: func(r *Result) error {
			agg := r.Aggregate()
			if agg.Recall() < 0.8 {
				return fmt.Errorf("flap-sweep: recall %.2f, want >=0.8", agg.Recall())
			}
			if agg.Precision() < 0.7 {
				return fmt.Errorf("flap-sweep: precision %.2f, want >=0.7", agg.Precision())
			}
			if d := r.GoodputDelta(); d < 0.3 {
				return fmt.Errorf("flap-sweep: steering goodput delta %+.2f, want >=+0.3", d)
			}
			// Packed single-leaf trials never cross the flapped uplink: the
			// fault must be irrelevant there and steering must not matter.
			for _, tr := range r.Trials {
				if tr.Score.Relevant == 0 {
					if d := tr.Delta(); d < -0.1 || d > 0.1 {
						return fmt.Errorf("flap-sweep: immune trial %s has delta %+.2f", tr.ID, d)
					}
				}
			}
			return nil
		},
	}
}

// degradeSweep sweeps partial-bandwidth faults: NIC renegotiation on a
// node and silent packet drop on one uplink. Severity controls whether the
// slowdown crosses C4D's kappa=2 detection threshold.
func degradeSweep() Campaign {
	return Campaign{
		Name:        "degrade-sweep",
		Description: "NIC bandwidth degradation and silent packet drop, severity sweep",
		Paper:       "slowdowns beyond kappa=2 are localized to the NIC/link; milder ones sail under",
		Horizon:     campaignHorizon,
		Gen: func(seed int64) []Trial {
			var trials []Trial
			for _, sev := range []float64{0.5, 0.75, 0.9} {
				for _, pl := range []Placement{Spread, Packed} {
					jobN := 16
					if pl == Packed {
						jobN = 8
					}
					trials = append(trials, Trial{
						ID:   fmt.Sprintf("nic-s%02.0f-%s", sev*100, pl),
						JobN: jobN, Spines: 8, Placement: pl,
						Specs: []Spec{{
							Kind: NICDegrade, Rail: 0, Node: 5,
							Severity: sev, Start: faultStart, Duration: faultSpan,
						}},
					})
				}
			}
			for _, loss := range []float64{0.3, 0.6, 0.9} {
				trials = append(trials, Trial{
					ID:   fmt.Sprintf("drop-l%02.0f-spread", loss*100),
					JobN: 16, Spines: 8, Placement: Spread,
					Specs: []Spec{{
						Kind: PacketDrop, Rail: 0, Plane: 0, Group: 0, Uplink: 3,
						Severity: loss, Start: faultStart, Duration: faultSpan,
					}},
				})
			}
			return trials
		},
		Check: func(r *Result) error {
			agg := r.Aggregate()
			if agg.Precision() < 0.7 {
				return fmt.Errorf("degrade-sweep: precision %.2f, want >=0.7", agg.Precision())
			}
			// Severe faults must be caught even if mild ones sail under kappa.
			hi := 0
			for _, tr := range r.Trials {
				if tr.Score.Relevant > 0 && tr.Score.Detected == tr.Score.Relevant &&
					(tr.ID == "nic-s90-spread" || tr.ID == "nic-s90-packed" || tr.ID == "drop-l90-spread") {
					hi++
				}
			}
			if hi < 3 {
				return fmt.Errorf("degrade-sweep: only %d/3 severe trials fully detected", hi)
			}
			return nil
		},
	}
}

// outageSweep takes spines out — singly, overlapping on the same spine
// (a fault injected into an already-failed switch), overlapping across two
// spines, and at two fabric scales.
func outageSweep() Campaign {
	outage := func(spine int, start, span sim.Time) Spec {
		return Spec{Kind: SpineOutage, Rail: 0, Spine: spine, Start: start, Duration: span}
	}
	return Campaign{
		Name:        "outage-sweep",
		Description: "spine outages: single, overlapping, double, across fabric scales",
		Paper:       "a dead spine stalls pinned routes for minutes; dynamic re-placement hides it",
		Horizon:     campaignHorizon,
		Gen: func(seed int64) []Trial {
			return []Trial{
				{ID: "outage-x8-spread", JobN: 16, Spines: 8, Placement: Spread,
					Specs: []Spec{outage(1, faultStart, 120*sim.Second)}},
				{ID: "outage-x4-spread", JobN: 16, Spines: 4, Placement: Spread,
					Specs: []Spec{outage(1, faultStart, 120*sim.Second)}},
				// A second outage lands on the already-failed spine: the link
				// must stay down until both clear.
				{ID: "outage-refail", JobN: 16, Spines: 8, Placement: Spread,
					Specs: []Spec{
						outage(1, faultStart, 120*sim.Second),
						outage(1, faultStart+60*sim.Second, 120*sim.Second),
					}},
				{ID: "outage-two-spines", JobN: 16, Spines: 8, Placement: Spread,
					Specs: []Spec{
						outage(1, faultStart, 120*sim.Second),
						outage(3, faultStart+60*sim.Second, 120*sim.Second),
					}},
				{ID: "outage-job8", JobN: 8, Spines: 8, Placement: Spread,
					Specs: []Spec{outage(1, faultStart, 120*sim.Second)}},
				{ID: "outage-job32", JobN: 32, Spines: 8, Placement: Spread,
					Specs: []Spec{outage(1, faultStart, 120*sim.Second)}},
			}
		},
		Check: func(r *Result) error {
			agg := r.Aggregate()
			if agg.Recall() < 0.9 {
				return fmt.Errorf("outage-sweep: recall %.2f, want >=0.9", agg.Recall())
			}
			if d := r.GoodputDelta(); d < 0.2 {
				return fmt.Errorf("outage-sweep: steering goodput delta %+.2f, want >=+0.2", d)
			}
			return nil
		},
	}
}

// stragglerSweep slows one node's compute. The network is blameless, so
// C4D must localize via receiver-driven wait chains, and recovery needs
// node replacement (C4P rerouting cannot help).
func stragglerSweep() Campaign {
	return Campaign{
		Name:        "straggler-sweep",
		Description: "straggler compute severity x placement",
		Paper:       "wait-chain aggregation names the slow node; only replacement restores goodput",
		Horizon:     campaignHorizon,
		Gen: func(seed int64) []Trial {
			var trials []Trial
			for _, sev := range []float64{0.4, 0.7, 1.0} {
				for _, pl := range []Placement{Spread, Packed} {
					jobN := 16
					victim := 6
					if pl == Packed {
						jobN = 8
						victim = 3
					}
					trials = append(trials, Trial{
						ID:   fmt.Sprintf("straggler-s%02.0f-%s", sev*100, pl),
						JobN: jobN, Spines: 8, Placement: pl,
						Specs: []Spec{{
							Kind: Straggler, Node: victim,
							Severity: sev, Start: faultStart, Duration: faultSpan,
						}},
					})
				}
			}
			return trials
		},
		Check: func(r *Result) error {
			agg := r.Aggregate()
			if agg.Recall() < 0.8 {
				return fmt.Errorf("straggler-sweep: recall %.2f, want >=0.8", agg.Recall())
			}
			if d := r.GoodputDelta(); d < 0.05 {
				return fmt.Errorf("straggler-sweep: steering goodput delta %+.2f, want >=+0.05", d)
			}
			return nil
		},
	}
}

// DefaultMixedTrials is the historical sample count of campaign/mixed:
// the registry scenario and its bench baseline keep running 8 trials,
// while manifests override the count through Campaign.Trials.
const DefaultMixedTrials = 8

// mixedMonteCarlo draws random fault cocktails — kind, victim, severity,
// timing — from the trial seed: the Monte-Carlo sweep over the full model,
// including overlapping faults of different kinds on shared components.
// The generator is prefix-stable in the trial count: one RNG stream draws
// trials in order, so requesting more trials only appends.
func mixedMonteCarlo() Campaign {
	c := Campaign{
		Name:          "mixed",
		Description:   "Monte-Carlo cocktails of 2-3 random overlapping faults per trial",
		Paper:         "diagnosis and steering hold up under compound fault patterns",
		Horizon:       campaignHorizon,
		DefaultTrials: DefaultMixedTrials,
		GenN: func(seed int64, trials int) []Trial {
			r := sim.NewRand(seed*31 + 7)
			out := make([]Trial, 0, trials)
			for i := 0; i < trials; i++ {
				n := 2 + r.Intn(2)
				specs := make([]Spec, 0, n)
				for k := 0; k < n; k++ {
					start := sim.Time(30+r.Intn(91)) * sim.Second
					span := sim.Time(60+r.Intn(121)) * sim.Second
					switch Kind(r.Intn(5)) {
					case LinkFlap:
						specs = append(specs, Spec{
							Kind: LinkFlap, Rail: 0, Plane: 0, Group: r.Intn(2), Uplink: r.Intn(8),
							Severity: 0.25 + 0.5*r.Float64(),
							Period:   sim.Time(8+r.Intn(17)) * sim.Second,
							Start:    start, Duration: span,
						})
					case NICDegrade:
						specs = append(specs, Spec{
							Kind: NICDegrade, Rail: 0, Node: r.Intn(16),
							Severity: 0.4 + 0.5*r.Float64(), Start: start, Duration: span,
						})
					case SpineOutage:
						specs = append(specs, Spec{
							Kind: SpineOutage, Rail: 0, Spine: r.Intn(8),
							Start: start, Duration: span,
						})
					case Straggler:
						specs = append(specs, Spec{
							Kind: Straggler, Node: r.Intn(16),
							Severity: 0.3 + 0.7*r.Float64(), Start: start, Duration: span,
						})
					case PacketDrop:
						specs = append(specs, Spec{
							Kind: PacketDrop, Rail: 0, Plane: 0, Group: r.Intn(2), Uplink: r.Intn(8),
							Severity: 0.3 + 0.6*r.Float64(), Start: start, Duration: span,
						})
					}
				}
				out = append(out, Trial{
					ID:   fmt.Sprintf("mix-%02d", i),
					JobN: 16, Spines: 8, Placement: Spread, Specs: specs,
				})
			}
			return out
		},
		Check: func(r *Result) error {
			agg := r.Aggregate()
			if agg.Precision() < 0.6 {
				return fmt.Errorf("mixed: precision %.2f, want >=0.6", agg.Precision())
			}
			if agg.Detected == 0 {
				return fmt.Errorf("mixed: nothing detected across %d relevant faults", agg.Relevant)
			}
			if d := r.GoodputDelta(); d < 0 {
				return fmt.Errorf("mixed: steering goodput delta %+.2f, want >=0", d)
			}
			return nil
		},
	}
	c.Gen = func(seed int64) []Trial { return c.GenN(seed, c.DefaultTrials) }
	return c
}
