package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strings"

	"c4/internal/accl"
	"c4/internal/c4d"
	"c4/internal/c4p"
	"c4/internal/cluster"
	"c4/internal/job"
	"c4/internal/metrics"
	"c4/internal/netsim"
	"c4/internal/rca"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/steering"
	"c4/internal/topo"
	"c4/internal/workload"
)

// Placement selects how a trial's job nodes map onto leaf groups.
type Placement int

const (
	// Spread interleaves the job across leaf groups so every ring edge
	// crosses the spine layer (the collision-prone worst case).
	Spread Placement = iota
	// Packed fills one leaf group sequentially so traffic stays under the
	// leaves (the topology-aware placement of §III-B).
	Packed
)

func (p Placement) String() string {
	if p == Packed {
		return "packed"
	}
	return "spread"
}

// Trial is one generated experiment: a topology scale, a placement, and a
// fault schedule.
type Trial struct {
	ID        string
	JobN      int // job size in nodes (TP=8 within each node)
	Spines    int // spine count: 8 = 1:1 fabric, 4 = 2:1 oversubscription
	Placement Placement
	Specs     []Spec
}

// TrialResult is one trial's measurements across both arms.
type TrialResult struct {
	ID     string `json:"id"`
	Faults int    `json:"faults"`
	// Score is the base arm's diagnosis confusion counts; precision,
	// recall and RCA accuracy derive from it.
	Score Score `json:"score"`

	// Goodput is in training samples per second of virtual time; Base is
	// the pinned-routes arm, Steered the C4P dynamic + job steering arm.
	BaseGoodput    float64 `json:"base_goodput"`
	SteeredGoodput float64 `json:"steered_goodput"`
	BaseIters      int     `json:"base_iters"`
	SteeredIters   int     `json:"steered_iters"`

	// Events counts simulation events fired across both arms' engines.
	Events uint64 `json:"events"`
}

// Delta is the relative goodput gain of steering over the pinned baseline.
func (tr TrialResult) Delta() float64 {
	if tr.BaseGoodput <= 0 {
		return 0
	}
	return tr.SteeredGoodput/tr.BaseGoodput - 1
}

// Campaign is a named sweep: a deterministic trial generator plus a shape
// check over the aggregated result.
type Campaign struct {
	Name        string
	Description string
	// Paper states the qualitative claim the sweep probes, for the
	// experiments table.
	Paper   string
	Horizon sim.Time
	// Gen produces the trial grid for a root seed. It must be
	// deterministic in the seed.
	Gen func(seed int64) []Trial
	// GenN produces a trial list of a requested size for campaigns whose
	// grid is sampled rather than enumerated (nil for fixed grid sweeps).
	// It must be prefix-stable: GenN(seed, n)[:m] == GenN(seed, m) for
	// m <= n, so a manifest scaling a campaign up only appends trials.
	GenN func(seed int64, trials int) []Trial
	// DefaultTrials is the sample count Gen draws when GenN is set; it
	// preserves the historical trial count for registry runs and bench
	// baselines while manifests request 10k+.
	DefaultTrials int
	// Check validates campaign-specific claims on the aggregate result
	// (optional; generic sanity checks always run).
	Check func(*Result) error
}

// Trials produces the campaign's trial list, overriding the sample count
// when n > 0. Fixed-grid campaigns reject a count override: their trial
// list is the enumerated sweep, not a sample size.
func (c Campaign) Trials(seed int64, n int) ([]Trial, error) {
	if n <= 0 {
		return c.Gen(seed), nil
	}
	if c.GenN == nil {
		return nil, fmt.Errorf("faults: campaign %s is a fixed grid of %d trials; it does not take a trial-count override",
			c.Name, len(c.Gen(seed)))
	}
	return c.GenN(seed, n), nil
}

// Result is the aggregated campaign report. It implements
// scenario.Result (String + CheckShape) and scenario.EventCounter.
type Result struct {
	Name    string
	Seed    int64
	Horizon sim.Time
	Trials  []TrialResult

	check func(*Result) error
}

// Fired implements scenario.EventCounter: total simulation events across
// every trial's engines.
func (r *Result) Fired() uint64 {
	var n uint64
	for _, tr := range r.Trials {
		n += tr.Events
	}
	return n
}

// Aggregate sums the per-trial scores.
func (r *Result) Aggregate() Score {
	var sc Score
	for _, tr := range r.Trials {
		sc = sc.Add(tr.Score)
	}
	return sc
}

// GoodputDelta is the aggregate steering gain over the trials where the
// injected faults could impact the job; irrelevant-fault trials (fabric
// faults under packed placement) would only dilute it.
func (r *Result) GoodputDelta() float64 {
	var base, steered float64
	for _, tr := range r.Trials {
		if tr.Score.Relevant == 0 {
			continue
		}
		base += tr.BaseGoodput
		steered += tr.SteeredGoodput
	}
	if base <= 0 {
		return 0
	}
	return steered/base - 1
}

// String renders the campaign report as a table plus the aggregate line.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign %s — %d trials, horizon %v, seed %d\n",
		r.Name, len(r.Trials), r.Horizon, r.Seed)
	rows := make([][]string, 0, len(r.Trials))
	for _, tr := range r.Trials {
		rca := "-"
		if tr.Score.RCAEvents > 0 {
			rca = fmt.Sprintf("%.2f", tr.Score.RCAAccuracy())
		}
		rows = append(rows, []string{
			tr.ID,
			fmt.Sprintf("%d/%d", tr.Score.Relevant, tr.Faults),
			fmt.Sprintf("%.2f", tr.Score.Precision()),
			fmt.Sprintf("%.2f", tr.Score.Recall()),
			rca,
			fmt.Sprintf("%.1f", tr.BaseGoodput),
			fmt.Sprintf("%.1f", tr.SteeredGoodput),
			fmt.Sprintf("%+.1f%%", tr.Delta()*100),
		})
	}
	sb.WriteString(metrics.Table(
		[]string{"trial", "rel", "P", "R", "rca", "pinned", "steered", "delta"}, rows))
	agg := r.Aggregate()
	fmt.Fprintf(&sb, "aggregate: precision %.2f, recall %.2f, rca %.2f, steering goodput %+.1f%%\n",
		agg.Precision(), agg.Recall(), agg.RCAAccuracy(), r.GoodputDelta()*100)
	return sb.String()
}

// CheckShape validates the generic campaign invariants plus the
// campaign-specific Check.
func (r *Result) CheckShape() error {
	if len(r.Trials) == 0 {
		return fmt.Errorf("campaign %s: no trials ran", r.Name)
	}
	for _, tr := range r.Trials {
		if tr.BaseIters <= 0 || tr.SteeredIters <= 0 {
			return fmt.Errorf("campaign %s: trial %s made no progress (base %d, steered %d iters)",
				r.Name, tr.ID, tr.BaseIters, tr.SteeredIters)
		}
	}
	if r.check != nil {
		return r.check(r)
	}
	return nil
}

// Metrics returns the aggregate numbers tracked by the bench-regression
// guard.
func (r *Result) Metrics() map[string]float64 {
	agg := r.Aggregate()
	return map[string]float64{
		"precision":     agg.Precision(),
		"recall":        agg.Recall(),
		"rca_accuracy":  agg.RCAAccuracy(),
		"goodput_delta": r.GoodputDelta(),
	}
}

// jsonReport is the serialized campaign report shape.
type jsonReport struct {
	Name      string             `json:"name"`
	Seed      int64              `json:"seed"`
	HorizonS  float64            `json:"horizon_s"`
	Aggregate map[string]float64 `json:"aggregate"`
	Trials    []TrialResult      `json:"trials"`
}

// WriteJSON emits the machine-readable campaign report.
func (r *Result) WriteJSON(w io.Writer) error {
	rep := jsonReport{
		Name: r.Name, Seed: r.Seed, HorizonS: r.Horizon.Seconds(),
		Aggregate: r.Metrics(), Trials: r.Trials,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RunScenario executes the campaign under a scenario context, tracking its
// event total; it is the registry entry point. The context's worker bound
// propagates to the trial pool, so a `-workers 1` sweep is fully serial.
func (c Campaign) RunScenario(ctx *scenario.Ctx) scenario.Result {
	res := c.Run(ctx.Seed, ctx.Workers)
	ctx.Track(res)
	return res
}

// Run executes the campaign's trials on a bounded worker pool (workers<=0
// means GOMAXPROCS). Every trial derives its own seed from the root seed
// and builds isolated engines, so a parallel sweep is byte-identical to a
// serial one.
func (c Campaign) Run(seed int64, workers int) *Result {
	trials := c.Gen(seed)
	res := &Result{Name: c.Name, Seed: seed, Horizon: c.Horizon, check: c.Check}
	res.Trials = make([]TrialResult, len(trials))
	// Panics inside a trial happen on pool goroutines, outside the
	// scenario runner's per-scenario guard; capture them per trial and
	// re-raise the first (by trial order, for determinism) on the
	// caller's goroutine, where RunOne's recover turns it into a failed
	// report instead of a process crash.
	panics := make([]any, len(trials))
	scenario.ForEach(len(trials), workers, func(i int) {
		defer func() { panics[i] = recover() }()
		res.Trials[i] = RunTrial(trials[i], TrialSeed(seed, i), c.Horizon)
	})
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("campaign %s trial %s: %v", c.Name, trials[i].ID, p))
		}
	}
	return res
}

// TrialSeed derives the root seed for trial i of a campaign run from the
// campaign seed; trials must not share RNG streams or equal-seeded trials
// would correlate. External drivers (the sharded manifest runner) use the
// same derivation so a shard executing trial i reproduces the exact bytes
// an in-process campaign run would.
func TrialSeed(seed int64, i int) int64 { return seed + int64(i+1)*1_000_003 }

// RunTrial executes one trial's two arms and scores them.
func RunTrial(tr Trial, seed int64, horizon sim.Time) TrialResult {
	base := runArm(tr, seed, horizon, false)
	steered := runArm(tr, seed, horizon, true)
	out := TrialResult{
		ID: tr.ID, Faults: len(tr.Specs), Score: base.score,
		BaseIters: base.iters, SteeredIters: steered.iters,
		Events: base.fired + steered.fired,
	}
	out.BaseGoodput = metrics.Ratio(float64(base.iters)*samplesPerIter, horizon.Seconds())
	out.SteeredGoodput = metrics.Ratio(float64(steered.iters)*samplesPerIter, horizon.Seconds())
	return out
}

const samplesPerIter = 64

// arm is the outcome of one variant run.
type arm struct {
	iters int
	fired uint64
	score Score
}

// layout maps a trial onto fabric and job node sets. The fabric always
// provisions one extra group's worth of backup nodes after the primaries.
type layoutInfo struct {
	fabricNodes int
	primaries   int
	spares      int
	jobNodes    []int
}

const nodesPerGroup = 8 // MultiJobTestbed group width
const spareNodes = 4

func layout(tr Trial) layoutInfo {
	var nodes []int
	switch tr.Placement {
	case Packed:
		for i := 0; i < tr.JobN; i++ {
			nodes = append(nodes, i)
		}
	default:
		// Interleave across G groups (at least two) so every ring edge
		// crosses the spine layer.
		g := (tr.JobN + nodesPerGroup - 1) / nodesPerGroup
		if g < 2 {
			g = 2
		}
		for i := 0; i < tr.JobN; i++ {
			nodes = append(nodes, (i%g)*nodesPerGroup+i/g)
		}
	}
	maxNode := 0
	for _, n := range nodes {
		if n > maxNode {
			maxNode = n
		}
	}
	primaries := ((maxNode + nodesPerGroup) / nodesPerGroup) * nodesPerGroup
	return layoutInfo{
		fabricNodes: primaries + spareNodes,
		primaries:   primaries,
		spares:      spareNodes,
		jobNodes:    nodes,
	}
}

// PinnedProvider wraps a path provider and disables its fault response:
// Repair hands back the existing assignment unchanged, so flows stay
// pinned to their planned routes and simply stall until the fault clears.
// It is the "no steering" arm of every campaign.
type PinnedProvider struct{ accl.PathProvider }

// Repair implements accl.PathProvider without repairing anything.
func (p PinnedProvider) Repair(req accl.ConnRequest, old *accl.Assignment) (*accl.Assignment, error) {
	if old != nil {
		return old, nil
	}
	return p.PathProvider.Connect(req)
}

// steerable reports whether a finding should trigger node replacement:
// node-scoped verdicts only — a single slow connection could as well be a
// fabric link, which C4P's dynamic mode already routes around.
func steerable(ev c4d.Event) bool { return ev.Scope != c4d.ScopeConnection }

// runArm executes one variant of a trial. The steered arm runs C4P in
// dynamic mode with adaptive QP weights and a steering service replacing
// blamed nodes from the backup pool; the base arm pins routes and lets
// the faults land. C4D monitors both; diagnosis is scored on the base arm,
// where the syndromes are unmasked.
func runArm(tr Trial, seed int64, horizon sim.Time, steered bool) arm {
	lay := layout(tr)
	spec := topo.MultiJobTestbed(tr.Spines)
	spec.Nodes = lay.fabricNodes
	eng := sim.NewEngine()
	t := topo.MustNew(spec)
	net := netsim.New(eng, t, netsim.DefaultConfig())

	// Both arms open the same QP count so the measured delta isolates the
	// fault response — dynamic re-placement, completion-time-driven QP
	// re-weighting, and node replacement — rather than a QP-fanout
	// difference (ablation-qp shows QP count alone moves goodput).
	const qps = 4
	var prov accl.PathProvider
	adaptive := false
	if steered {
		prov = c4p.NewMaster(t, c4p.Dynamic, sim.NewRand(seed))
		adaptive = true
	} else {
		prov = PinnedProvider{c4p.NewMaster(t, c4p.Static, sim.NewRand(seed))}
	}

	master := c4d.NewMaster(c4d.Config{})
	fleet := c4d.NewFleet(eng, master)

	j, err := job.New(job.Config{
		Engine: eng, Net: net, Provider: prov, Sink: fleet,
		Rails: []int{0}, Rand: sim.NewRand(seed + 1),
		QPsPerConn: qps, AdaptiveWeights: adaptive,
		Spec: workload.JobSpec{
			Name:                 tr.ID,
			Model:                workload.GPT22B,
			Par:                  workload.Parallelism{TP: 8, DP: tr.JobN, GA: 1},
			Nodes:                lay.jobNodes,
			ComputePerMicroBatch: 550 * sim.Millisecond,
			ComputeJitter:        0.02,
			SamplesPerIter:       samplesPerIter,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("faults: trial %s: %v", tr.ID, err))
	}

	inj := NewInjector(eng, net, t)
	inj.SetStraggler = j.SetStraggler

	var events []c4d.Event
	var analyzer *rca.Analyzer
	if steered {
		cl := cluster.NewCluster(lay.primaries, spec.GPUsPerNode, lay.spares)
		svc := steering.NewService(steering.Config{
			Engine: eng, Cluster: cl,
			IsolationDelay: 10 * sim.Second,
			RestartDelay:   60 * sim.Second,
			Isolate:        func(int) { j.Stop() },
			Restart: func(node, repl int) {
				// Best-effort replace: the blamed node may already have
				// been swapped out by an earlier recovery, in which case
				// ReplaceNode fails and the job resumes with its current
				// membership (the fault, if still live, re-triggers C4D).
				_ = j.ReplaceNode(node, repl)
				if !j.Running() {
					j.Run(1<<30, nil)
				}
			},
		})
		master.Subscribe(func(ev c4d.Event) {
			if steerable(ev) && slices.Contains(j.Nodes(), ev.Node) {
				svc.Handle(ev)
			}
		})
	} else {
		analyzer = rca.NewAnalyzer(0)
		inj.OnTelemetry = analyzer.Observe
		master.Subscribe(func(ev c4d.Event) { events = append(events, ev) })
	}

	for _, s := range tr.Specs {
		if err := inj.Arm(s); err != nil {
			panic(fmt.Sprintf("faults: trial %s: %v", tr.ID, err))
		}
	}

	j.Run(1<<30, nil)
	eng.RunUntil(horizon)
	fleet.Stop()

	a := arm{iters: len(j.IterTimes()), fired: eng.Fired()}
	if !steered {
		a.score = ScoreEvents(events, inj.Truth(lay.jobNodes), analyzer)
	}
	return a
}
