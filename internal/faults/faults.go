// Package faults is the fault-injection campaign engine of the C4
// reproduction. It provides a composable, seed-deterministic fault model —
// link flap with duty cycle, NIC bandwidth degradation, spine/switch
// outage, straggler compute, silent packet drop — that injects timed
// events into any netsim/topo instance, plus a campaign runner that sweeps
// fault type × severity × topology scale × placement as generated
// scenarios.
//
// Each campaign trial runs the same fault schedule twice: once with C4P
// dynamic steering responding to the faults, once with routes pinned (no
// fault response), and scores C4D's diagnosis precision/recall against the
// injected ground truth plus the goodput delta steering buys. Where the
// harness package reproduces the paper's ~15 fixed experiments, this
// package generates hundreds.
package faults

import (
	"fmt"
	"slices"
	"sort"

	"c4/internal/netsim"
	"c4/internal/rca"
	"c4/internal/sim"
	"c4/internal/topo"
	"c4/internal/trace"
)

// Kind is one fault archetype of the model.
type Kind int

// The five fault archetypes.
const (
	// LinkFlap periodically kills and revives both directions of one leaf
	// uplink cable. Severity is the duty cycle: the fraction of each
	// Period the link spends down.
	LinkFlap Kind = iota
	// NICDegrade renegotiates a node's NIC to a lower rate: every port
	// link of (Node, Rail) loses a Severity fraction of its capacity.
	NICDegrade
	// SpineOutage takes a whole spine switch out: every leaf-up and
	// spine-down link touching (Rail, Spine) goes down for the duration.
	SpineOutage
	// Straggler slows a node's compute by Severity seconds per iteration
	// (a thermally throttled or otherwise degraded GPU).
	Straggler
	// PacketDrop silently discards a Severity fraction of packets on one
	// leaf uplink. The link stays up at full capacity — no link-state
	// monitor sees it; only transport statistics can.
	PacketDrop
)

func (k Kind) String() string {
	switch k {
	case LinkFlap:
		return "link-flap"
	case NICDegrade:
		return "nic-degrade"
	case SpineOutage:
		return "spine-outage"
	case Straggler:
		return "straggler"
	case PacketDrop:
		return "packet-drop"
	}
	return "unknown"
}

// Spec is one parameterized fault instance. Target fields are used
// per-kind: Node for NICDegrade/Straggler, (Plane, Group, Uplink) for
// LinkFlap/PacketDrop, Spine for SpineOutage; Rail applies to all fabric
// faults.
type Spec struct {
	Kind   Kind
	Node   int
	Rail   int
	Plane  int
	Group  int
	Uplink int
	Spine  int
	// Severity is the fault magnitude: duty cycle (LinkFlap), capacity
	// fraction lost (NICDegrade), loss fraction (PacketDrop), or extra
	// seconds of compute per iteration (Straggler). Ignored by SpineOutage.
	Severity float64
	Start    sim.Time
	Duration sim.Time
	// Period is the flap cycle length (LinkFlap only).
	Period sim.Time
}

// End reports when the fault clears.
func (s Spec) End() sim.Time { return s.Start + s.Duration }

func (s Spec) String() string {
	switch s.Kind {
	case LinkFlap:
		return fmt.Sprintf("%v r%d/p%d/g%d/up%d duty=%.2f period=%v [%v..%v]",
			s.Kind, s.Rail, s.Plane, s.Group, s.Uplink, s.Severity, s.Period, s.Start, s.End())
	case PacketDrop:
		return fmt.Sprintf("%v r%d/p%d/g%d/up%d loss=%.2f [%v..%v]",
			s.Kind, s.Rail, s.Plane, s.Group, s.Uplink, s.Severity, s.Start, s.End())
	case SpineOutage:
		return fmt.Sprintf("%v r%d/spine%d [%v..%v]", s.Kind, s.Rail, s.Spine, s.Start, s.End())
	case Straggler:
		return fmt.Sprintf("%v n%d +%.1fs/iter [%v..%v]", s.Kind, s.Node, s.Severity, s.Start, s.End())
	}
	return fmt.Sprintf("%v n%d sev=%.2f [%v..%v]", s.Kind, s.Node, s.Severity, s.Start, s.End())
}

// Validate reports a descriptive error for an inconsistent spec.
func (s Spec) Validate(t *topo.Topology) error {
	spec := t.Spec
	if s.Start < 0 || s.Duration <= 0 {
		return fmt.Errorf("faults: %v has empty window [%v..%v]", s.Kind, s.Start, s.End())
	}
	switch s.Kind {
	case LinkFlap:
		if s.Severity <= 0 || s.Severity >= 1 {
			return fmt.Errorf("faults: flap duty %v outside (0,1)", s.Severity)
		}
		if s.Period <= 0 {
			return fmt.Errorf("faults: flap with no period")
		}
		fallthrough
	case PacketDrop:
		if s.Kind == PacketDrop && (s.Severity <= 0 || s.Severity >= 1) {
			return fmt.Errorf("faults: loss fraction %v outside (0,1)", s.Severity)
		}
		if s.Plane < 0 || s.Plane >= topo.Planes || s.Group < 0 || s.Group >= spec.Groups() {
			return fmt.Errorf("faults: no leaf (rail %d, plane %d, group %d)", s.Rail, s.Plane, s.Group)
		}
		if s.Uplink < 0 || s.Uplink >= spec.Spines {
			return fmt.Errorf("faults: uplink %d outside [0,%d)", s.Uplink, spec.Spines)
		}
	case NICDegrade:
		if s.Severity <= 0 || s.Severity >= 1 {
			return fmt.Errorf("faults: degrade fraction %v outside (0,1)", s.Severity)
		}
		if s.Node < 0 || s.Node >= spec.Nodes {
			return fmt.Errorf("faults: node %d outside fabric", s.Node)
		}
	case SpineOutage:
		if s.Spine < 0 || s.Spine >= spec.Spines {
			return fmt.Errorf("faults: spine %d outside [0,%d)", s.Spine, spec.Spines)
		}
	case Straggler:
		if s.Severity <= 0 || s.Severity > 10 {
			return fmt.Errorf("faults: straggler delay %vs outside (0,10]", s.Severity)
		}
		if s.Node < 0 || s.Node >= spec.Nodes {
			return fmt.Errorf("faults: node %d outside fabric", s.Node)
		}
	default:
		return fmt.Errorf("faults: unknown kind %d", int(s.Kind))
	}
	if s.Rail < 0 || s.Rail >= spec.Rails {
		return fmt.Errorf("faults: rail %d outside fabric", s.Rail)
	}
	return nil
}

// Links resolves the fabric links the fault manipulates (none for
// Straggler).
func (s Spec) Links(t *topo.Topology) []*topo.Link {
	switch s.Kind {
	case LinkFlap:
		leaf := t.LeafAt(s.Rail, s.Plane, s.Group)
		return []*topo.Link{leaf.Ups[s.Uplink], leaf.Downs[s.Uplink]}
	case PacketDrop:
		leaf := t.LeafAt(s.Rail, s.Plane, s.Group)
		return []*topo.Link{leaf.Ups[s.Uplink]}
	case NICDegrade:
		var out []*topo.Link
		for p := 0; p < topo.Planes; p++ {
			port := t.PortAt(s.Node, s.Rail, p)
			out = append(out, port.Up, port.Down)
		}
		return out
	case SpineOutage:
		return t.SpineLinks(s.Rail, s.Spine)
	}
	return nil
}

// telemetry is the hardware-monitor signal the fault's onset produces, or
// nil for silent faults (PacketDrop is invisible to every monitor).
func (s Spec) telemetry() *rca.Telemetry {
	switch s.Kind {
	case LinkFlap, SpineOutage:
		return &rca.Telemetry{Kind: rca.TelemetryLinkFlap, Node: -1}
	case NICDegrade:
		return &rca.Telemetry{Kind: rca.TelemetryNICDown, Node: s.Node}
	case Straggler:
		return &rca.Telemetry{Kind: rca.TelemetryThermal, Node: s.Node}
	}
	return nil
}

// Injector arms fault specs onto a live simulation. Overlapping faults
// compose: a link stays down until every outage holding it down has
// cleared (reference counting), and concurrent capacity degradations or
// loss fractions multiply.
type Injector struct {
	Eng  *sim.Engine
	Net  *netsim.Network
	Topo *topo.Topology
	// SetStraggler applies (or, with extra=0, clears) a per-iteration
	// compute delay on a node; required only to arm Straggler specs.
	SetStraggler func(node int, extra sim.Time)
	// OnTelemetry, when set, receives the hardware-monitor signal each
	// non-silent fault emits at onset (feeds the RCA service).
	OnTelemetry func(rca.Telemetry)

	armed    []Spec
	baseGbps map[int]float64
	downRefs map[int]int
	degrades map[int][]float64
	losses   map[int][]float64
}

// NewInjector creates an injector for the environment.
func NewInjector(eng *sim.Engine, net *netsim.Network, t *topo.Topology) *Injector {
	return &Injector{
		Eng: eng, Net: net, Topo: t,
		baseGbps: map[int]float64{},
		downRefs: map[int]int{},
		degrades: map[int][]float64{},
		losses:   map[int][]float64{},
	}
}

// Armed returns every spec armed so far, in arming order.
func (in *Injector) Armed() []Spec { return append([]Spec(nil), in.armed...) }

// Arm validates the spec and schedules its timed events on the engine.
func (in *Injector) Arm(s Spec) error {
	if err := s.Validate(in.Topo); err != nil {
		return err
	}
	if s.Kind == Straggler && in.SetStraggler == nil {
		return fmt.Errorf("faults: straggler armed without a SetStraggler hook")
	}
	links := s.Links(in.Topo)
	end := s.End()
	// The fault-window span opens before the onset events scheduled below
	// (same instant, earlier sequence), so everything the fault causes can
	// nest under it; the "fault" mark is how c4d parents its detection
	// spans without a package dependency. With overlapping faults the mark
	// holds the most recently opened window — the best single attribution
	// guess a detector could make too.
	if tr := in.Net.Trace; tr.Enabled() {
		var fsp *trace.Span
		in.Eng.Schedule(s.Start, func() {
			fsp = tr.Start(nil, "fault", s.Kind.String()).Annotate("spec", s.String())
			tr.SetMark("fault", fsp)
		})
		in.Eng.Schedule(end, func() {
			fsp.FinishAt(in.Eng.Now())
			if tr.Mark("fault") == fsp {
				tr.SetMark("fault", nil)
			}
		})
	}
	switch s.Kind {
	case LinkFlap:
		downSpan := sim.Time(float64(s.Period) * s.Severity)
		for at := s.Start; at < end; at += s.Period {
			at := at
			upAt := at + downSpan
			if upAt > end {
				upAt = end
			}
			in.Eng.Schedule(at, func() {
				for _, l := range links {
					in.down(l)
				}
			})
			in.Eng.Schedule(upAt, func() {
				for _, l := range links {
					in.up(l)
				}
			})
		}
	case SpineOutage:
		in.Eng.Schedule(s.Start, func() {
			for _, l := range links {
				in.down(l)
			}
		})
		in.Eng.Schedule(end, func() {
			for _, l := range links {
				in.up(l)
			}
		})
	case NICDegrade:
		in.Eng.Schedule(s.Start, func() {
			for _, l := range links {
				in.degrade(l, s.Severity)
			}
		})
		in.Eng.Schedule(end, func() {
			for _, l := range links {
				in.undegrade(l, s.Severity)
			}
		})
	case PacketDrop:
		in.Eng.Schedule(s.Start, func() {
			for _, l := range links {
				in.addLoss(l, s.Severity)
			}
		})
		in.Eng.Schedule(end, func() {
			for _, l := range links {
				in.removeLoss(l, s.Severity)
			}
		})
	case Straggler:
		in.Eng.Schedule(s.Start, func() {
			in.SetStraggler(s.Node, sim.FromSeconds(s.Severity))
		})
		in.Eng.Schedule(end, func() {
			in.SetStraggler(s.Node, 0)
		})
	}
	if tel := s.telemetry(); tel != nil && in.OnTelemetry != nil {
		tel := *tel
		in.Eng.Schedule(s.Start, func() {
			tel.Time = in.Eng.Now()
			in.OnTelemetry(tel)
		})
	}
	in.armed = append(in.armed, s)
	return nil
}

// Truth computes the injected ground truth against a job's node set: each
// armed spec plus the job nodes it can impact (empty when the fault cannot
// touch the job's traffic — e.g. a fabric fault under a single-leaf
// placement, which never crosses the spine layer).
func (in *Injector) Truth(jobNodes []int) []GroundTruth {
	out := make([]GroundTruth, 0, len(in.armed))
	for _, s := range in.armed {
		out = append(out, makeTruth(s, in.Topo, jobNodes))
	}
	return out
}

// down marks one outage holding the link down; the first one fails it.
func (in *Injector) down(l *topo.Link) {
	in.downRefs[l.ID]++
	if in.downRefs[l.ID] == 1 {
		in.Net.SetLinkUp(l, false)
	}
}

// up releases one outage; the link recovers when the last clears.
func (in *Injector) up(l *topo.Link) {
	if in.downRefs[l.ID] == 0 {
		return
	}
	in.downRefs[l.ID]--
	if in.downRefs[l.ID] == 0 {
		in.Net.SetLinkUp(l, true)
	}
}

func (in *Injector) degrade(l *topo.Link, frac float64) {
	if _, ok := in.baseGbps[l.ID]; !ok {
		in.baseGbps[l.ID] = l.Gbps
	}
	in.degrades[l.ID] = append(in.degrades[l.ID], frac)
	in.applyCapacity(l)
}

func (in *Injector) undegrade(l *topo.Link, frac float64) {
	fr := in.degrades[l.ID]
	for i, f := range fr {
		if f == frac {
			in.degrades[l.ID] = append(fr[:i], fr[i+1:]...)
			break
		}
	}
	in.applyCapacity(l)
}

func (in *Injector) applyCapacity(l *topo.Link) {
	g := in.baseGbps[l.ID]
	for _, f := range in.degrades[l.ID] {
		g *= 1 - f
	}
	in.Net.SetLinkCapacity(l, g)
}

func (in *Injector) addLoss(l *topo.Link, frac float64) {
	in.losses[l.ID] = append(in.losses[l.ID], frac)
	in.applyLoss(l)
}

func (in *Injector) removeLoss(l *topo.Link, frac float64) {
	fr := in.losses[l.ID]
	for i, f := range fr {
		if f == frac {
			in.losses[l.ID] = append(fr[:i], fr[i+1:]...)
			break
		}
	}
	in.applyLoss(l)
}

func (in *Injector) applyLoss(l *topo.Link) {
	keep := 1.0
	for _, f := range in.losses[l.ID] {
		keep *= 1 - f
	}
	in.Net.SetLinkLoss(l, 1-keep)
}

func sortedCopy(xs []int) []int {
	cp := slices.Clone(xs)
	sort.Ints(cp)
	return cp
}
