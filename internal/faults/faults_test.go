package faults

import (
	"testing"

	"c4/internal/netsim"
	"c4/internal/rca"
	"c4/internal/sim"
	"c4/internal/topo"
)

func testRig() (*sim.Engine, *netsim.Network, *topo.Topology) {
	eng := sim.NewEngine()
	t := topo.MustNew(topo.MultiJobTestbed(8))
	return eng, netsim.New(eng, t, netsim.DefaultConfig()), t
}

func TestSpecValidate(t *testing.T) {
	_, _, top := testRig()
	bad := []Spec{
		{Kind: LinkFlap, Severity: 0.5, Start: 0, Duration: sim.Minute},           // no period
		{Kind: LinkFlap, Severity: 1.5, Period: sim.Second, Duration: sim.Minute}, // duty >= 1
		{Kind: LinkFlap, Severity: 0.5, Period: sim.Second, Duration: 0},          // empty window
		{Kind: LinkFlap, Severity: 0.5, Period: sim.Second, Duration: sim.Minute, Uplink: 99},
		{Kind: NICDegrade, Severity: 0.5, Duration: sim.Minute, Node: 999},
		{Kind: NICDegrade, Severity: 0, Duration: sim.Minute, Node: 1},
		{Kind: SpineOutage, Duration: sim.Minute, Spine: 8},
		{Kind: Straggler, Severity: 99, Duration: sim.Minute, Node: 1},
		{Kind: PacketDrop, Severity: 1.0, Duration: sim.Minute},
		{Kind: Kind(99), Severity: 0.5, Duration: sim.Minute},
	}
	for _, s := range bad {
		if err := s.Validate(top); err == nil {
			t.Errorf("spec %+v validated, want error", s)
		}
	}
	good := Spec{Kind: SpineOutage, Rail: 0, Spine: 3, Start: sim.Second, Duration: sim.Minute}
	if err := good.Validate(top); err != nil {
		t.Errorf("spec %v rejected: %v", good, err)
	}
}

func TestFlapDutyCycle(t *testing.T) {
	eng, net, top := testRig()
	inj := NewInjector(eng, net, top)
	leaf := top.LeafAt(0, 0, 0)
	up, down := leaf.Ups[2], leaf.Downs[2]
	err := inj.Arm(Spec{
		Kind: LinkFlap, Rail: 0, Plane: 0, Group: 0, Uplink: 2,
		Severity: 0.5, Period: 10 * sim.Second,
		Start: 10 * sim.Second, Duration: 30 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Down in [10,15) and [20,25) and [30,35); up otherwise.
	probes := map[sim.Time]bool{
		5 * sim.Second:  true,
		12 * sim.Second: false,
		17 * sim.Second: true,
		22 * sim.Second: false,
		27 * sim.Second: true,
		32 * sim.Second: false,
		42 * sim.Second: true,
	}
	for at, wantUp := range probes {
		at, wantUp := at, wantUp
		eng.Schedule(at, func() {
			if up.Up() != wantUp || down.Up() != wantUp {
				t.Errorf("at %v: link up=%v/%v, want %v", at, up.Up(), down.Up(), wantUp)
			}
		})
	}
	eng.RunUntil(sim.Minute)
}

// TestOverlappingOutagesOnOneLink proves the composability contract: a
// fault injected into an already-failed spine holds its links down until
// both outages clear, with no mid-overlap revival.
func TestOverlappingOutagesOnOneLink(t *testing.T) {
	eng, net, top := testRig()
	inj := NewInjector(eng, net, top)
	for _, s := range []Spec{
		{Kind: SpineOutage, Rail: 0, Spine: 1, Start: 10 * sim.Second, Duration: 40 * sim.Second},
		{Kind: SpineOutage, Rail: 0, Spine: 1, Start: 30 * sim.Second, Duration: 40 * sim.Second},
	} {
		if err := inj.Arm(s); err != nil {
			t.Fatal(err)
		}
	}
	link := top.LeafAt(0, 0, 0).Ups[1]
	probes := map[sim.Time]bool{
		5 * sim.Second:  true,
		20 * sim.Second: false,
		40 * sim.Second: false,
		// First outage ended at 50; the second still holds the spine down.
		55 * sim.Second: false,
		// Both cleared at 70.
		75 * sim.Second: true,
	}
	for at, wantUp := range probes {
		at, wantUp := at, wantUp
		eng.Schedule(at, func() {
			if link.Up() != wantUp {
				t.Errorf("at %v: link up=%v, want %v", at, link.Up(), wantUp)
			}
		})
	}
	eng.RunUntil(2 * sim.Minute)
	if !link.Up() {
		t.Fatal("link still down after both outages cleared")
	}
}

// TestFlapDuringOutage overlaps two different fault kinds on one link: the
// flap's up-edges inside the outage window must not revive the link.
func TestFlapDuringOutage(t *testing.T) {
	eng, net, top := testRig()
	inj := NewInjector(eng, net, top)
	for _, s := range []Spec{
		{Kind: SpineOutage, Rail: 0, Spine: 2, Start: 10 * sim.Second, Duration: 60 * sim.Second},
		{Kind: LinkFlap, Rail: 0, Plane: 0, Group: 0, Uplink: 2,
			Severity: 0.5, Period: 10 * sim.Second, Start: 20 * sim.Second, Duration: 30 * sim.Second},
	} {
		if err := inj.Arm(s); err != nil {
			t.Fatal(err)
		}
	}
	link := top.LeafAt(0, 0, 0).Ups[2]
	// The flap would be up at t=27 (down [20,25)), but the outage holds.
	for _, at := range []sim.Time{27 * sim.Second, 37 * sim.Second, 55 * sim.Second} {
		at := at
		eng.Schedule(at, func() {
			if link.Up() {
				t.Errorf("at %v: link revived inside outage window", at)
			}
		})
	}
	eng.Schedule(75*sim.Second, func() {
		if !link.Up() {
			t.Error("link down after outage and flap both ended")
		}
	})
	eng.RunUntil(2 * sim.Minute)
}

func TestDegradeComposition(t *testing.T) {
	eng, net, top := testRig()
	inj := NewInjector(eng, net, top)
	for _, s := range []Spec{
		{Kind: NICDegrade, Rail: 0, Node: 3, Severity: 0.5, Start: 10 * sim.Second, Duration: 40 * sim.Second},
		{Kind: NICDegrade, Rail: 0, Node: 3, Severity: 0.2, Start: 30 * sim.Second, Duration: 40 * sim.Second},
	} {
		if err := inj.Arm(s); err != nil {
			t.Fatal(err)
		}
	}
	port := top.PortAt(3, 0, 0)
	base := port.Up.Gbps
	check := func(at sim.Time, want float64) {
		eng.Schedule(at, func() {
			if got := port.Up.Gbps; !almost(got, want) {
				t.Errorf("at %v: capacity %.1f, want %.1f", at, got, want)
			}
		})
	}
	check(5*sim.Second, base)
	check(20*sim.Second, base*0.5)
	check(40*sim.Second, base*0.5*0.8)
	check(60*sim.Second, base*0.8)
	check(80*sim.Second, base)
	eng.RunUntil(2 * sim.Minute)
}

func TestLossComposition(t *testing.T) {
	eng, net, top := testRig()
	inj := NewInjector(eng, net, top)
	for _, s := range []Spec{
		{Kind: PacketDrop, Rail: 0, Plane: 0, Group: 0, Uplink: 4, Severity: 0.5,
			Start: 10 * sim.Second, Duration: 30 * sim.Second},
		{Kind: PacketDrop, Rail: 0, Plane: 0, Group: 0, Uplink: 4, Severity: 0.4,
			Start: 20 * sim.Second, Duration: 30 * sim.Second},
	} {
		if err := inj.Arm(s); err != nil {
			t.Fatal(err)
		}
	}
	link := top.LeafAt(0, 0, 0).Ups[4]
	check := func(at sim.Time, want float64) {
		eng.Schedule(at, func() {
			if got := net.LinkLoss(link); !almost(got, want) {
				t.Errorf("at %v: loss %.2f, want %.2f", at, got, want)
			}
		})
	}
	check(5*sim.Second, 0)
	check(15*sim.Second, 0.5)
	check(30*sim.Second, 1-0.5*0.6) // compounded: 0.7
	check(45*sim.Second, 0.4)
	check(55*sim.Second, 0)
	eng.RunUntil(2 * sim.Minute)
}

func TestStragglerNeedsHook(t *testing.T) {
	eng, net, top := testRig()
	inj := NewInjector(eng, net, top)
	err := inj.Arm(Spec{Kind: Straggler, Node: 1, Severity: 0.5, Duration: sim.Minute})
	if err == nil {
		t.Fatal("straggler armed without hook")
	}
	applied := map[int]sim.Time{}
	inj.SetStraggler = func(node int, extra sim.Time) { applied[node] = extra }
	if err := inj.Arm(Spec{Kind: Straggler, Node: 1, Severity: 0.5,
		Start: sim.Second, Duration: sim.Minute}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(30 * sim.Second)
	if applied[1] != 500*sim.Millisecond {
		t.Fatalf("straggler delay %v, want 500ms", applied[1])
	}
	eng.RunUntil(2 * sim.Minute)
	if applied[1] != 0 {
		t.Fatalf("straggler delay %v after window, want cleared", applied[1])
	}
}

func TestTelemetrySignals(t *testing.T) {
	eng, net, top := testRig()
	inj := NewInjector(eng, net, top)
	inj.SetStraggler = func(int, sim.Time) {}
	var got []rca.Telemetry
	inj.OnTelemetry = func(tel rca.Telemetry) { got = append(got, tel) }
	specs := []Spec{
		{Kind: LinkFlap, Severity: 0.5, Period: 5 * sim.Second, Duration: 20 * sim.Second},
		{Kind: NICDegrade, Node: 2, Severity: 0.5, Duration: 20 * sim.Second},
		{Kind: Straggler, Node: 4, Severity: 0.5, Duration: 20 * sim.Second},
		// Silent: no monitor signal.
		{Kind: PacketDrop, Severity: 0.5, Duration: 20 * sim.Second},
	}
	for _, s := range specs {
		s.Start = sim.Second
		if err := inj.Arm(s); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Minute)
	want := []rca.TelemetryKind{rca.TelemetryLinkFlap, rca.TelemetryNICDown, rca.TelemetryThermal}
	if len(got) != len(want) {
		t.Fatalf("got %d telemetry signals, want %d (%v)", len(got), len(want), got)
	}
	for i, tel := range got {
		if tel.Kind != want[i] {
			t.Errorf("signal %d: %v, want %v", i, tel.Kind, want[i])
		}
	}
	if len(inj.Armed()) != len(specs) {
		t.Fatalf("Armed() reports %d specs, want %d", len(inj.Armed()), len(specs))
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
