package faults

import (
	"bytes"
	"encoding/json"
	"testing"

	"c4/internal/sim"
)

// miniCampaign is a short two-trial campaign small enough for the race
// detector: one fabric fault, one compute fault, 8-node jobs.
func miniCampaign() Campaign {
	return Campaign{
		Name:        "mini",
		Description: "test campaign",
		Horizon:     90 * sim.Second,
		Gen: func(seed int64) []Trial {
			return []Trial{
				{ID: "mini-flap", JobN: 8, Spines: 8, Placement: Spread,
					Specs: []Spec{{
						Kind: LinkFlap, Rail: 0, Plane: 0, Group: 0, Uplink: 1,
						Severity: 0.5, Period: 10 * sim.Second,
						Start: 15 * sim.Second, Duration: 50 * sim.Second,
					}}},
				{ID: "mini-straggler", JobN: 8, Spines: 8, Placement: Packed,
					Specs: []Spec{{
						Kind: Straggler, Node: 3, Severity: 0.8,
						Start: 15 * sim.Second, Duration: 60 * sim.Second,
					}}},
			}
		},
	}
}

// TestSerialMatchesParallel is the campaign-runner replay contract: the
// same seed must produce a byte-identical report whether trials run on one
// worker or many (run with -race to also prove the pool shares no state).
func TestSerialMatchesParallel(t *testing.T) {
	c := miniCampaign()
	serial := c.Run(7, 1)
	parallel := c.Run(7, 4)
	if s, p := serial.String(), parallel.String(); s != p {
		t.Fatalf("parallel campaign diverged from serial:\nserial:\n%s\nparallel:\n%s", s, p)
	}
	if serial.Fired() == 0 {
		t.Fatal("campaign fired no events")
	}
}

func TestSameSeedByteIdentical(t *testing.T) {
	c := miniCampaign()
	a, b := c.Run(3, 0), c.Run(3, 0)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\nvs:\n%s", a, b)
	}
	var aj, bj bytes.Buffer
	if err := a.WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	if aj.String() != bj.String() {
		t.Fatal("same seed produced different JSON reports")
	}
	// And the JSON must round-trip as valid JSON.
	var parsed map[string]any
	if err := json.Unmarshal(aj.Bytes(), &parsed); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if parsed["name"] != "mini" {
		t.Fatalf("JSON name = %v", parsed["name"])
	}
}

func TestDifferentSeedsVary(t *testing.T) {
	c := miniCampaign()
	a, b := c.Run(3, 0), c.Run(4, 0)
	if a.String() == b.String() {
		t.Fatal("different seeds produced identical campaign reports")
	}
}

func TestMiniCampaignMeasuresSomething(t *testing.T) {
	res := miniCampaign().Run(1, 0)
	if err := res.CheckShape(); err != nil {
		t.Fatalf("shape: %v\n%s", err, res)
	}
	for _, tr := range res.Trials {
		if tr.BaseGoodput <= 0 || tr.SteeredGoodput <= 0 {
			t.Fatalf("trial %s has zero goodput:\n%s", tr.ID, res)
		}
	}
	// The flap trial crosses the spine layer: it must be relevant, and the
	// pinned arm must suffer relative to the steered arm.
	flap := res.Trials[0]
	if flap.Score.Relevant != 1 {
		t.Fatalf("flap trial relevant=%d, want 1", flap.Score.Relevant)
	}
	if flap.Delta() <= 0 {
		t.Fatalf("flap trial delta %+.2f, want steering to win:\n%s", flap.Delta(), res)
	}
	m := res.Metrics()
	for _, key := range []string{"precision", "recall", "rca_accuracy", "goodput_delta"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("Metrics() missing %q", key)
		}
	}
}

func TestLayouts(t *testing.T) {
	cases := []struct {
		tr        Trial
		wantNodes []int
		primaries int
	}{
		{Trial{JobN: 8, Placement: Packed}, []int{0, 1, 2, 3, 4, 5, 6, 7}, 8},
		{Trial{JobN: 8, Placement: Spread}, []int{0, 8, 1, 9, 2, 10, 3, 11}, 16},
		{Trial{JobN: 16, Placement: Spread}, []int{0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15}, 16},
	}
	for _, c := range cases {
		lay := layout(c.tr)
		if lay.primaries != c.primaries {
			t.Errorf("%d/%v: primaries %d, want %d", c.tr.JobN, c.tr.Placement, lay.primaries, c.primaries)
		}
		if lay.fabricNodes != c.primaries+spareNodes {
			t.Errorf("%d/%v: fabric %d, want %d", c.tr.JobN, c.tr.Placement, lay.fabricNodes, c.primaries+spareNodes)
		}
		if len(lay.jobNodes) != len(c.wantNodes) {
			t.Fatalf("%d/%v: nodes %v", c.tr.JobN, c.tr.Placement, lay.jobNodes)
		}
		for i, n := range c.wantNodes {
			if lay.jobNodes[i] != n {
				t.Fatalf("%d/%v: nodes %v, want %v", c.tr.JobN, c.tr.Placement, lay.jobNodes, c.wantNodes)
			}
		}
	}
	// 32-node spread interleaves four groups.
	lay := layout(Trial{JobN: 32, Placement: Spread})
	if lay.primaries != 32 || lay.jobNodes[1] != 8 || lay.jobNodes[2] != 16 || lay.jobNodes[3] != 24 {
		t.Fatalf("32-node layout: %+v", lay)
	}
}

func TestCampaignRegistryDefinitions(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Campaigns() {
		if c.Name == "" || c.Description == "" || c.Paper == "" {
			t.Errorf("campaign %q missing metadata", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate campaign %q", c.Name)
		}
		seen[c.Name] = true
		if c.Gen == nil || c.Horizon <= 0 {
			t.Errorf("campaign %q has no generator or horizon", c.Name)
		}
		// Generators must be deterministic and produce valid trials.
		a, b := c.Gen(1), c.Gen(1)
		if len(a) == 0 || len(a) != len(b) {
			t.Errorf("campaign %q generator unstable: %d vs %d trials", c.Name, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || len(a[i].Specs) != len(b[i].Specs) {
				t.Errorf("campaign %q trial %d differs across equal seeds", c.Name, i)
			}
		}
	}
	for _, name := range []string{"flap-sweep", "degrade-sweep", "outage-sweep", "straggler-sweep", "mixed"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("campaign %q not defined", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName found a campaign that does not exist")
	}
}

func TestCampaignSelection(t *testing.T) {
	cases := map[string]string{
		"flap-sweep":       "campaign/flap-sweep",
		"all":              "campaign/*",
		"flap-sweep,mixed": "campaign/flap-sweep,campaign/mixed",
		" mixed , all ":    "campaign/mixed,campaign/*",
	}
	for in, want := range cases {
		if got := CampaignSelection(in); got != want {
			t.Errorf("CampaignSelection(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMixedTrialSpecsValid arms every generated mixed-campaign spec on a
// real fabric: random draws must always produce valid targets.
func TestMixedTrialSpecsValid(t *testing.T) {
	c, _ := ByName("mixed")
	for _, seed := range []int64{1, 2, 99} {
		for _, tr := range c.Gen(seed) {
			eng, net, top := testRig()
			inj := NewInjector(eng, net, top)
			inj.SetStraggler = func(int, sim.Time) {}
			for _, s := range tr.Specs {
				if err := inj.Arm(s); err != nil {
					t.Fatalf("seed %d trial %s: %v", seed, tr.ID, err)
				}
			}
			eng.RunUntil(10 * sim.Minute)
			// Every link must be restored once all faults cleared.
			for _, l := range top.Links {
				if !l.Up() {
					t.Fatalf("seed %d trial %s: link %s left down", seed, tr.ID, l.Name)
				}
				if net.LinkLoss(l) != 0 {
					t.Fatalf("seed %d trial %s: link %s left lossy", seed, tr.ID, l.Name)
				}
			}
		}
	}
}

// TestTrialsKnob pins the trial-count override: sampled families scale
// up prefix-stably (the first k trials of a larger draw are the default
// draw, so existing baselines never move), fixed grids refuse the knob.
func TestTrialsKnob(t *testing.T) {
	mixed, _ := ByName("mixed")
	if mixed.GenN == nil || mixed.DefaultTrials != DefaultMixedTrials {
		t.Fatalf("mixed: GenN=%v DefaultTrials=%d, want sampled family with default %d",
			mixed.GenN != nil, mixed.DefaultTrials, DefaultMixedTrials)
	}
	def := mixed.Gen(3)
	if len(def) != DefaultMixedTrials {
		t.Fatalf("mixed default draw: %d trials, want %d", len(def), DefaultMixedTrials)
	}
	big, err := mixed.Trials(3, 20)
	if err != nil {
		t.Fatalf("Trials(3, 20): %v", err)
	}
	if len(big) != 20 {
		t.Fatalf("Trials(3, 20): %d trials", len(big))
	}
	for i, tr := range def {
		if big[i].ID != tr.ID || len(big[i].Specs) != len(tr.Specs) {
			t.Fatalf("trial %d not prefix-stable: %q vs %q", i, big[i].ID, tr.ID)
		}
		for j := range tr.Specs {
			if big[i].Specs[j] != tr.Specs[j] {
				t.Fatalf("trial %d spec %d drifted under a larger draw", i, j)
			}
		}
	}
	if same, err := mixed.Trials(3, 0); err != nil || len(same) != DefaultMixedTrials {
		t.Fatalf("Trials(3, 0) = %d trials, err %v; want the default draw", len(same), err)
	}

	fixed, _ := ByName("flap-sweep")
	if _, err := fixed.Trials(1, 9); err == nil {
		t.Fatal("fixed-grid family accepted a trial-count override")
	}
	if grid, err := fixed.Trials(1, 0); err != nil || len(grid) != len(fixed.Gen(1)) {
		t.Fatalf("fixed-grid Trials(1, 0) = %d trials, err %v", len(grid), err)
	}
}
