package faults

import (
	"testing"

	"c4/internal/c4d"
	"c4/internal/sim"
	"c4/internal/topo"
)

func TestImpactSets(t *testing.T) {
	top := topo.MustNew(topo.MultiJobTestbed(8))
	spread := []int{0, 8, 1, 9}
	packed := []int{0, 1, 2, 3}
	flap := Spec{Kind: LinkFlap, Group: 0, Uplink: 1, Severity: 0.5,
		Period: sim.Second, Duration: sim.Minute}

	if gt := makeTruth(flap, top, spread); len(gt.Impact) != len(spread) {
		t.Fatalf("spread fabric impact = %v, want all job nodes", gt.Impact)
	}
	if gt := makeTruth(flap, top, packed); gt.Relevant() {
		t.Fatalf("packed single-group job impacted by fabric fault: %v", gt.Impact)
	}
	nic := Spec{Kind: NICDegrade, Node: 9, Severity: 0.5, Duration: sim.Minute}
	if gt := makeTruth(nic, top, spread); len(gt.Impact) != 1 || gt.Impact[0] != 9 {
		t.Fatalf("NIC impact = %v, want [9]", gt.Impact)
	}
	if gt := makeTruth(nic, top, packed); gt.Relevant() {
		t.Fatalf("NIC fault on non-member impacted the job: %v", gt.Impact)
	}
}

func TestScoreEvents(t *testing.T) {
	top := topo.MustNew(topo.MultiJobTestbed(8))
	nodes := []int{0, 8, 1, 9}
	truths := []GroundTruth{
		makeTruth(Spec{Kind: NICDegrade, Node: 8, Severity: 0.5,
			Start: 10 * sim.Second, Duration: 60 * sim.Second}, top, nodes),
		// Irrelevant: fabric fault, but we pretend a packed job by using a
		// single-group node list.
		makeTruth(Spec{Kind: SpineOutage, Spine: 1,
			Start: 10 * sim.Second, Duration: 60 * sim.Second}, top, []int{0, 1}),
	}
	events := []c4d.Event{
		// TP: blames the victim inside the window.
		{Time: 30 * sim.Second, Syndrome: c4d.CommSlow, Scope: c4d.ScopeNodeTx, Node: 8, Peer: -1},
		// TP: connection verdict with the victim as peer.
		{Time: 40 * sim.Second, Syndrome: c4d.CommSlow, Scope: c4d.ScopeConnection, Node: 0, Peer: 8},
		// FP: wrong node.
		{Time: 45 * sim.Second, Syndrome: c4d.CommSlow, Scope: c4d.ScopeNodeRx, Node: 1, Peer: -1},
		// FP: right node, but long after the window + grace.
		{Time: 10 * sim.Minute, Syndrome: c4d.CommSlow, Scope: c4d.ScopeNodeTx, Node: 8, Peer: -1},
	}
	sc := ScoreEvents(events, truths, nil)
	if sc.TP != 2 || sc.FP != 2 {
		t.Fatalf("TP/FP = %d/%d, want 2/2", sc.TP, sc.FP)
	}
	if sc.Relevant != 1 || sc.Detected != 1 {
		t.Fatalf("relevant/detected = %d/%d, want 1/1", sc.Relevant, sc.Detected)
	}
	if sc.Precision() != 0.5 || sc.Recall() != 1 {
		t.Fatalf("P/R = %.2f/%.2f, want 0.50/1.00", sc.Precision(), sc.Recall())
	}
}

func TestScoreEdgeCases(t *testing.T) {
	var empty Score
	if empty.Precision() != 1 || empty.Recall() != 1 || empty.RCAAccuracy() != 1 {
		t.Fatal("empty score should report perfect precision/recall/rca")
	}
	sum := Score{TP: 1, FP: 1, Events: 2}.Add(Score{TP: 2, Events: 2, Relevant: 3, Detected: 2})
	if sum.TP != 3 || sum.FP != 1 || sum.Events != 4 || sum.Relevant != 3 || sum.Detected != 2 {
		t.Fatalf("Add gave %+v", sum)
	}
}

func TestExpectedCauses(t *testing.T) {
	for _, k := range []Kind{LinkFlap, NICDegrade, SpineOutage, Straggler, PacketDrop} {
		if len(k.ExpectedCauses()) == 0 {
			t.Errorf("%v has no expected causes", k)
		}
		if k.String() == "unknown" {
			t.Errorf("kind %d has no label", int(k))
		}
	}
}
