package faults

import (
	"slices"

	"c4/internal/c4d"
	"c4/internal/cluster"
	"c4/internal/rca"
	"c4/internal/sim"
	"c4/internal/topo"
)

// Grace is how long after a fault clears its C4D findings still count as
// true positives: detection latency (reporting interval + hang timeout)
// plus the dedup window can delay a finding past the fault's end.
const Grace = 90 * sim.Second

// GroundTruth is one injected fault plus the job nodes it can impact.
// An empty Impact means the fault cannot touch the job's traffic — a
// fabric fault under a placement that never crosses the spine layer — so
// it neither counts toward recall nor excuses findings as true positives.
type GroundTruth struct {
	Spec   Spec
	Impact []int // sorted
}

// makeTruth computes the impact set. Node-local faults impact exactly the
// victim (when it is in the job). Fabric faults impact the whole job when
// its placement spans more than one leaf group: a stalled spine path stalls
// the BSP iteration for everyone, and C4D may localize any endpoint of the
// affected connections.
func makeTruth(s Spec, t *topo.Topology, jobNodes []int) GroundTruth {
	gt := GroundTruth{Spec: s}
	switch s.Kind {
	case NICDegrade, Straggler:
		for _, n := range jobNodes {
			if n == s.Node {
				gt.Impact = []int{s.Node}
				break
			}
		}
	case LinkFlap, PacketDrop, SpineOutage:
		groups := map[int]bool{}
		for _, n := range jobNodes {
			groups[t.Group(n)] = true
		}
		if len(groups) > 1 {
			gt.Impact = sortedCopy(jobNodes)
		}
	}
	return gt
}

// Relevant reports whether the fault can impact the job at all.
func (gt GroundTruth) Relevant() bool { return len(gt.Impact) > 0 }

// Matches reports whether a C4D finding is attributable to this fault:
// it fires inside the fault's active window (plus grace) and blames an
// impacted node (for connection-scope findings, either endpoint).
func (gt GroundTruth) Matches(ev c4d.Event) bool {
	if !gt.Relevant() {
		return false
	}
	if ev.Time < gt.Spec.Start || ev.Time > gt.Spec.End()+Grace {
		return false
	}
	if slices.Contains(gt.Impact, ev.Node) {
		return true
	}
	return ev.Scope == c4d.ScopeConnection && slices.Contains(gt.Impact, ev.Peer)
}

// ExpectedCauses returns the RCA root-cause kinds considered a correct
// classification for this fault archetype.
func (k Kind) ExpectedCauses() []cluster.FaultKind {
	switch k {
	case Straggler:
		// Compute-side degradation: the crash-cause taxonomy's GPU-side
		// entries.
		return []cluster.FaultKind{cluster.FaultCUDAError, cluster.FaultECCNVLink}
	default:
		// Fabric- and NIC-side faults surface as transport-level causes.
		return []cluster.FaultKind{
			cluster.FaultACKTimeout, cluster.FaultNCCLTimeout, cluster.FaultNetworkOther,
		}
	}
}

// Score aggregates a diagnosis campaign's confusion counts. It is
// serialized as-is into campaign JSON reports; the derived ratios
// (Precision, Recall, RCAAccuracy) are methods so report and rendering
// can never drift apart.
type Score struct {
	// Events is the number of C4D findings emitted.
	Events int `json:"events"`
	// TP counts findings attributable to an injected fault; FP the rest.
	TP int `json:"tp"`
	FP int `json:"fp"`
	// Relevant counts injected faults that could impact the job; Detected
	// those with at least one attributable finding.
	Relevant int `json:"relevant"`
	Detected int `json:"detected"`
	// RCAEvents counts true-positive findings classified by the RCA
	// service; RCAHits those whose top-ranked cause matches the injected
	// fault's archetype.
	RCAEvents int `json:"rca_events"`
	RCAHits   int `json:"rca_hits"`
}

// Precision is TP/(TP+FP); 1.0 when no findings were emitted.
func (s Score) Precision() float64 {
	if s.Events == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.Events)
}

// Recall is Detected/Relevant; 1.0 when no relevant fault was injected.
func (s Score) Recall() float64 {
	if s.Relevant == 0 {
		return 1
	}
	return float64(s.Detected) / float64(s.Relevant)
}

// RCAAccuracy is RCAHits/RCAEvents; 1.0 when nothing was classified.
func (s Score) RCAAccuracy() float64 {
	if s.RCAEvents == 0 {
		return 1
	}
	return float64(s.RCAHits) / float64(s.RCAEvents)
}

// Add accumulates another score (for campaign-level aggregation).
func (s Score) Add(o Score) Score {
	return Score{
		Events: s.Events + o.Events, TP: s.TP + o.TP, FP: s.FP + o.FP,
		Relevant: s.Relevant + o.Relevant, Detected: s.Detected + o.Detected,
		RCAEvents: s.RCAEvents + o.RCAEvents, RCAHits: s.RCAHits + o.RCAHits,
	}
}

// ScoreEvents scores a finding stream against the injected ground truth.
// When an analyzer is supplied, each true-positive finding is additionally
// classified and checked against the matched fault's expected causes.
func ScoreEvents(events []c4d.Event, truths []GroundTruth, analyzer *rca.Analyzer) Score {
	sc := Score{Events: len(events)}
	detected := make([]bool, len(truths))
	for _, ev := range events {
		var matched []int
		for i, gt := range truths {
			if gt.Matches(ev) {
				matched = append(matched, i)
				detected[i] = true
			}
		}
		if len(matched) == 0 {
			sc.FP++
			continue
		}
		sc.TP++
		if analyzer == nil {
			continue
		}
		sc.RCAEvents++
		top := analyzer.Classify(ev).Top().Kind
		for _, i := range matched {
			if slices.Contains(truths[i].Spec.Kind.ExpectedCauses(), top) {
				sc.RCAHits++
				break
			}
		}
	}
	for i, gt := range truths {
		if !gt.Relevant() {
			continue
		}
		sc.Relevant++
		if detected[i] {
			sc.Detected++
		}
	}
	return sc
}
