package faults

import (
	"slices"
	"testing"

	"c4/internal/c4d"
	"c4/internal/c4p"
	"c4/internal/ckpt"
	"c4/internal/cluster"
	"c4/internal/job"
	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/steering"
	"c4/internal/topo"
	"c4/internal/workload"
)

// TestTrialRecoversThroughCkptAndSteering is the end-to-end recovery
// pipeline over a campaign-style trial: an injected straggler is detected
// by C4D, the steering service isolates the node and swaps in a spare,
// and the restart resumes from the checkpoint manager's newest surviving
// snapshot with bounded lost work — the paper's full detect -> diagnose ->
// isolate -> restore loop on one engine.
func TestTrialRecoversThroughCkptAndSteering(t *testing.T) {
	spec := topo.MultiJobTestbed(8)
	spec.Nodes = 12 // 8 primaries + 4 spares
	eng := sim.NewEngine()
	tp := topo.MustNew(spec)
	net := netsim.New(eng, tp, netsim.DefaultConfig())

	// MinWait sits well above jitter noise (tens of ms per window) and
	// well below the injected straggler's signal (~2 s per iteration), so
	// the only steering trigger is the real fault.
	master := c4d.NewMaster(c4d.Config{MinWait: 500 * sim.Millisecond})
	fleet := c4d.NewFleet(eng, master)
	jobNodes := []int{0, 1, 2, 3}
	j, err := job.New(job.Config{
		Engine: eng, Net: net,
		Provider: c4p.NewMaster(tp, c4p.Dynamic, sim.NewRand(1)),
		Sink:     fleet,
		Rails:    []int{0}, Rand: sim.NewRand(2),
		QPsPerConn: 4, AdaptiveWeights: true,
		Spec: workload.JobSpec{
			Name:                 "recovery-e2e",
			Model:                workload.GPT22B,
			Par:                  workload.Parallelism{TP: 8, DP: 4, GA: 1},
			Nodes:                jobNodes,
			ComputePerMicroBatch: 550 * sim.Millisecond,
			ComputeJitter:        0.02,
			SamplesPerIter:       64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoints every 5 iterations, replicated on the victim and a ring
	// peer so the snapshot survives the victim's isolation.
	const victim = 2
	mgr := ckpt.NewManager(eng, ckpt.Config{
		Interval: 5, SaveStall: 0, PersistEvery: 0, Replicas: 2,
	})
	itersDone := 0
	j.OnIteration(func(i int, _ sim.Time) {
		itersDone = i + 1
		mgr.OnIteration(itersDone, []int{victim, 3})
	})

	var restoredIter, lostAtRestart, itersAtRestart int
	cl := cluster.NewCluster(8, spec.GPUsPerNode, 4)
	svc := steering.NewService(steering.Config{
		Engine: eng, Cluster: cl,
		IsolationDelay: 10 * sim.Second,
		RestartDelay:   30 * sim.Second,
		Isolate:        func(int) { j.Stop() },
		Restart: func(node, repl int) {
			snap, ok := mgr.Restore(node)
			if !ok {
				t.Errorf("no snapshot survived losing node %d", node)
				return
			}
			restoredIter = snap.Iteration
			lostAtRestart = mgr.LostIterations(itersDone, node)
			itersAtRestart = itersDone
			if err := j.ReplaceNode(node, repl); err != nil {
				t.Errorf("replace %d -> %d: %v", node, repl, err)
				return
			}
			if !j.Running() {
				j.Run(1<<30, nil)
			}
		},
	})
	master.Subscribe(func(ev c4d.Event) {
		if ev.Scope != c4d.ScopeConnection && slices.Contains(j.Nodes(), ev.Node) {
			svc.Handle(ev)
		}
	})

	inj := NewInjector(eng, net, tp)
	inj.SetStraggler = j.SetStraggler
	if err := inj.Arm(Spec{
		Kind: Straggler, Node: victim, Severity: 2,
		Start: 20 * sim.Second, Duration: 3 * sim.Minute,
	}); err != nil {
		t.Fatal(err)
	}

	j.Run(1<<30, nil)
	eng.RunUntil(4 * sim.Minute)
	fleet.Stop()

	// C4D must have blamed the victim.
	blamed := false
	for _, ev := range master.Events() {
		if ev.Syndrome == c4d.NonCommSlow && ev.Node == victim {
			blamed = true
		}
	}
	if !blamed {
		t.Fatalf("straggler never diagnosed; events: %v", master.Events())
	}
	// Steering must have swapped the victim for a spare.
	acts := svc.Actions()
	if len(acts) == 0 {
		t.Fatal("steering took no action")
	}
	swapped := false
	for _, a := range acts {
		if a.Node == victim && a.Replacement >= 8 {
			swapped = true
		}
	}
	if !swapped {
		t.Fatalf("actions %v never replaced victim %d with a spare (>= 8)", acts, victim)
	}
	if slices.Contains(j.Nodes(), victim) {
		t.Fatalf("victim still in the job: %v", j.Nodes())
	}
	// The restart restored a real snapshot with bounded lost work.
	if restoredIter == 0 {
		t.Fatal("restart never restored a snapshot")
	}
	if lostAtRestart >= mgr.Config().Interval {
		t.Fatalf("lost %d iterations, checkpoint interval %d should bound it",
			lostAtRestart, mgr.Config().Interval)
	}
	// And the job made real progress after the restart.
	if itersDone <= itersAtRestart {
		t.Fatalf("no progress after restart: %d then, %d at horizon", itersAtRestart, itersDone)
	}
}
