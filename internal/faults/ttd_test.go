package faults

import (
	"strings"
	"testing"

	"c4/internal/c4d"
	"c4/internal/sim"
)

func ttdTruth(node int, start, dur sim.Time, impact []int) GroundTruth {
	return GroundTruth{
		Spec:   Spec{Kind: NICDegrade, Node: node, Severity: 0.5, Start: start, Duration: dur},
		Impact: impact,
	}
}

func TestScoreTTDBasics(t *testing.T) {
	truths := []GroundTruth{
		ttdTruth(3, 10*sim.Second, 40*sim.Second, []int{3}),
		ttdTruth(9, 10*sim.Second, 40*sim.Second, nil), // irrelevant: no impact
	}
	dets := []c4d.Detection{
		// Early but blames an innocent alongside the victim: detects, does
		// not localize.
		{At: 12 * sim.Second, Syndrome: c4d.CommSlow, Suspects: []int{3, 5}},
		// Later but precise: sets TimeToLocalize.
		{At: 20 * sim.Second, Syndrome: c4d.CommSlow, Suspects: []int{3}},
		// Unrelated: false alarm.
		{At: 25 * sim.Second, Syndrome: c4d.NonCommSlow, Suspects: []int{7}},
		// Outside the window + grace: false alarm.
		{At: 200 * sim.Second, Syndrome: c4d.CommSlow, Suspects: []int{3}},
	}
	rep := ScoreTTD(dets, truths)
	if len(rep.Faults) != 1 {
		t.Fatalf("relevant faults = %d, want 1 (irrelevant truths excluded)", len(rep.Faults))
	}
	f := rep.Faults[0]
	if !f.Detected || f.TimeToDetect != 2*sim.Second {
		t.Fatalf("TTD = %+v, want detected at +2s", f)
	}
	if !f.Localized || f.TimeToLocalize != 10*sim.Second {
		t.Fatalf("TTL = %+v, want localized at +10s", f)
	}
	if rep.FalseAlarms != 2 {
		t.Fatalf("false alarms = %d, want 2", rep.FalseAlarms)
	}
	if rep.MeanTTDSeconds() != 2 || rep.MeanTTLSeconds() != 10 {
		t.Fatalf("means = %.1f/%.1f, want 2/10", rep.MeanTTDSeconds(), rep.MeanTTLSeconds())
	}
	out := rep.String()
	if !strings.Contains(out, "1/1 faults detected") || !strings.Contains(out, "2 false alarms") {
		t.Fatalf("rendering = %q", out)
	}
}

func TestScoreTTDMissedFaultAndEmptyStream(t *testing.T) {
	truths := []GroundTruth{ttdTruth(3, 10*sim.Second, 40*sim.Second, []int{3})}
	rep := ScoreTTD(nil, truths)
	if rep.DetectedCount() != 0 || rep.FalseAlarms != 0 {
		t.Fatalf("empty stream scored %+v", rep)
	}
	// Guard: means over zero detections must be 0, not NaN.
	if rep.MeanTTDSeconds() != 0 || rep.MeanTTLSeconds() != 0 {
		t.Fatalf("means on empty stream = %v/%v", rep.MeanTTDSeconds(), rep.MeanTTLSeconds())
	}
	if !strings.Contains(rep.String(), "MISSED") {
		t.Fatalf("missed fault not rendered: %q", rep.String())
	}
}

func TestScoreTTDEarliestDetectionWins(t *testing.T) {
	truths := []GroundTruth{ttdTruth(3, 10*sim.Second, 40*sim.Second, []int{3})}
	dets := []c4d.Detection{
		{At: 30 * sim.Second, Suspects: []int{3}},
		{At: 11 * sim.Second, Suspects: []int{3}}, // out of order, earlier
	}
	rep := ScoreTTD(dets, truths)
	if rep.Faults[0].TimeToDetect != sim.Second {
		t.Fatalf("TTD = %v, want 1s (earliest match)", rep.Faults[0].TimeToDetect)
	}
	// A detection with no suspects can never localize.
	rep = ScoreTTD([]c4d.Detection{{At: 11 * sim.Second, Suspects: nil}}, truths)
	if rep.FalseAlarms != 1 || rep.Faults[0].Detected {
		t.Fatalf("suspect-free detection scored %+v", rep)
	}
}
