package c4d

import (
	"fmt"
	"sort"

	"c4/internal/accl"
	"c4/internal/sim"
	"c4/internal/trace"
)

// Config tunes the master's detectors.
type Config struct {
	// ReportInterval is the agent reporting period — the quantum of
	// detection latency. The paper's deployment detects in "tens of
	// seconds"; the default is 5 s.
	ReportInterval sim.Time
	// HangTimeout is how long a collective may make no progress before the
	// hang detectors fire. Default 30 s (vs the 30 *minutes* of the
	// PyTorch elastic-agent baseline the paper complains about).
	HangTimeout sim.Time
	// Kappa is the slowdown multiple considered anomalous. Default 2.
	Kappa float64
	// RowColFrac is the fraction of a matrix row/column that must be
	// anomalous to blame a NIC side instead of a connection. Default 0.6.
	RowColFrac float64
	// WaitKappa is how many times the runner-up a straggler's waited-on
	// time must exceed. Default 3.
	WaitKappa float64
	// MinWait is the absolute waited-on floor per window. Default 50 ms.
	MinWait sim.Time
	// DedupInterval suppresses repeated identical findings. Default 60 s.
	DedupInterval sim.Time
	// SmoothingWindows is the number of reporting windows the straggler
	// detector averages over, smoothing random load variation (the EP
	// extension discussed in §V). Default 3.
	SmoothingWindows int

	// Trace, when enabled, records each finding as an instant "detect"
	// span parented under the tracer's current "fault" mark — the causal
	// fault-window → detection link — and republishes it as the "detect"
	// mark for steering to parent its actions under. Optional.
	Trace *trace.Tracer
}

// DefaultConfig returns the tuning used across the repository.
func DefaultConfig() Config {
	return Config{
		ReportInterval:   5 * sim.Second,
		HangTimeout:      30 * sim.Second,
		Kappa:            2,
		RowColFrac:       0.6,
		WaitKappa:        3,
		MinWait:          50 * sim.Millisecond,
		DedupInterval:    60 * sim.Second,
		SmoothingWindows: 3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ReportInterval <= 0 {
		c.ReportInterval = d.ReportInterval
	}
	if c.HangTimeout <= 0 {
		c.HangTimeout = d.HangTimeout
	}
	if c.Kappa <= 0 {
		c.Kappa = d.Kappa
	}
	if c.RowColFrac <= 0 {
		c.RowColFrac = d.RowColFrac
	}
	if c.WaitKappa <= 0 {
		c.WaitKappa = d.WaitKappa
	}
	if c.MinWait <= 0 {
		c.MinWait = d.MinWait
	}
	if c.DedupInterval <= 0 {
		c.DedupInterval = d.DedupInterval
	}
	if c.SmoothingWindows <= 0 {
		c.SmoothingWindows = d.SmoothingWindows
	}
	return c
}

type pairAgg struct {
	bytes float64
	dur   sim.Time
}

type commState struct {
	nodes []int

	// seen flips once any record lands for this communicator; it is what
	// Active() (and hence the fleet's empty-pass skip) keys on.
	seen bool

	// Hang tracking.
	arriveSeq   map[int]int      // node -> highest seq with an observed kernel launch
	completeSeq map[int]int      // node -> highest completed seq
	seqFirstArr map[int]sim.Time // seq -> first arrival time across nodes
	lastMsgAt   sim.Time         // last transport progress in this comm

	// Per-operation transport evidence (persists across windows: a hang is
	// detected long after the healthy edges of the stalled op completed).
	opTx map[int]map[int]bool // seq -> nodes with tx progress in that op
	opRx map[int]map[int]bool // seq -> nodes with rx progress in that op

	// Window accumulators (reset each analysis pass).
	pairs  map[[2]int]*pairAgg
	txSeen map[int]bool
	rxSeen map[int]bool
	waits  map[int]sim.Time // node -> time peers spent waiting on it (window)

	// Smoothed waited-on totals for the straggler detector.
	waitHist map[int][]sim.Time
}

// Master is the central C4D analyzer.
type Master struct {
	cfg      Config
	comms    map[int]*commState
	handlers []func(Event)
	events   []Event
	lastFire map[string]sim.Time

	// Work accounting: full-recompute analysis passes and delay-matrix
	// cells visited across them. The telemetry scale sweep compares these
	// against the streaming detector's O(1)-per-record updates.
	passes     int
	cellVisits int
}

// NewMaster creates a master with the given (defaulted) config.
func NewMaster(cfg Config) *Master {
	return &Master{
		cfg:      cfg.withDefaults(),
		comms:    make(map[int]*commState),
		lastFire: make(map[string]sim.Time),
	}
}

// Config returns the master's effective configuration.
func (m *Master) Config() Config { return m.cfg }

// Subscribe registers a handler for findings (the job steering service).
func (m *Master) Subscribe(h func(Event)) { m.handlers = append(m.handlers, h) }

// Events returns every finding emitted so far.
func (m *Master) Events() []Event { return append([]Event(nil), m.events...) }

// RegisterComm tells the master about a communicator's membership.
func (m *Master) RegisterComm(ci accl.CommInfo) {
	m.comms[ci.Comm] = &commState{
		nodes:       append([]int(nil), ci.Nodes...),
		arriveSeq:   make(map[int]int),
		completeSeq: make(map[int]int),
		seqFirstArr: make(map[int]sim.Time),
		opTx:        make(map[int]map[int]bool),
		opRx:        make(map[int]map[int]bool),
		pairs:       make(map[[2]int]*pairAgg),
		txSeen:      make(map[int]bool),
		rxSeen:      make(map[int]bool),
		waits:       make(map[int]sim.Time),
		waitHist:    make(map[int][]sim.Time),
	}
}

// UnregisterComm drops a closed communicator's state: a torn-down
// communicator can no longer hang.
func (m *Master) UnregisterComm(comm int) {
	delete(m.comms, comm)
}

// Active implements Detector: true while any registered communicator has
// ever produced a record. A silent-but-seen communicator may be hanging —
// its timeout detectors must keep running on records ingested windows ago
// — whereas a deployment that never saw a record cannot ripen into any
// finding, so analysis passes over it are pure waste.
func (m *Master) Active() bool {
	for _, cs := range m.comms {
		if cs.seen {
			return true
		}
	}
	return false
}

// AnalyzePasses reports how many full analysis passes have run.
func (m *Master) AnalyzePasses() int { return m.passes }

// MatrixCellVisits reports how many delay-matrix cells the comm-slow
// detector has recomputed across all passes — the batch analyzer's work
// metric, which grows with fleet size per pass where the streaming
// detector pays O(1) per record.
func (m *Master) MatrixCellVisits() int { return m.cellVisits }

// Ingest absorbs one agent report into the per-communicator state.
func (m *Master) Ingest(r Report) {
	for _, ev := range r.Colls {
		cs := m.comms[ev.Comm]
		if cs == nil {
			continue
		}
		cs.seen = true
		switch ev.Phase {
		case accl.PhaseArrive:
			if ev.Seq > cs.arriveSeq[ev.Node] {
				cs.arriveSeq[ev.Node] = ev.Seq
			}
			if t, ok := cs.seqFirstArr[ev.Seq]; !ok || ev.Time < t {
				cs.seqFirstArr[ev.Seq] = ev.Time
			}
		case accl.PhaseComplete:
			if ev.Seq > cs.completeSeq[ev.Node] {
				cs.completeSeq[ev.Node] = ev.Seq
			}
		}
	}
	for _, ev := range r.Messages {
		cs := m.comms[ev.Comm]
		if cs == nil {
			continue
		}
		cs.seen = true
		key := [2]int{ev.SrcNode, ev.DstNode}
		agg := cs.pairs[key]
		if agg == nil {
			agg = &pairAgg{}
			cs.pairs[key] = agg
		}
		agg.bytes += ev.Bytes
		agg.dur += ev.Duration()
		cs.txSeen[ev.SrcNode] = true
		cs.rxSeen[ev.DstNode] = true
		if cs.opTx[ev.Seq] == nil {
			cs.opTx[ev.Seq] = make(map[int]bool)
			cs.opRx[ev.Seq] = make(map[int]bool)
		}
		cs.opTx[ev.Seq][ev.SrcNode] = true
		cs.opRx[ev.Seq][ev.DstNode] = true
		// Bound memory: evidence for long-finished operations is useless.
		for seq := range cs.opTx {
			if seq < ev.Seq-8 {
				delete(cs.opTx, seq)
				delete(cs.opRx, seq)
			}
		}
		if ev.End > cs.lastMsgAt {
			cs.lastMsgAt = ev.End
		}
	}
	for _, ev := range r.Waits {
		cs := m.comms[ev.Comm]
		if cs == nil {
			continue
		}
		cs.seen = true
		cs.waits[ev.On] += ev.Dur
	}
}

// Analyze runs all detectors over the just-ingested window and resets the
// window accumulators.
func (m *Master) Analyze(now sim.Time) {
	m.passes++
	ids := make([]int, 0, len(m.comms))
	for id := range m.comms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		cs := m.comms[id]
		m.detectHangs(now, id, cs)
		m.detectCommSlow(now, id, cs)
		m.detectStraggler(now, id, cs)
		// Reset window accumulators.
		cs.pairs = make(map[[2]int]*pairAgg)
		cs.txSeen = make(map[int]bool)
		cs.rxSeen = make(map[int]bool)
		cs.waits = make(map[int]sim.Time)
	}
}

func (m *Master) emit(e Event) {
	key := fmt.Sprintf("%d/%v/%v/%d/%d", e.Comm, e.Syndrome, e.Scope, e.Node, e.Peer)
	if last, ok := m.lastFire[key]; ok && e.Time-last < m.cfg.DedupInterval {
		return
	}
	m.lastFire[key] = e.Time
	m.events = append(m.events, e)
	if tr := m.cfg.Trace; tr.Enabled() {
		sp := tr.Event(tr.Mark("fault"), "detect", e.Syndrome.String())
		sp.Annotate("scope", e.Scope.String())
		sp.Annotate("node", fmt.Sprintf("%d", e.Node))
		tr.SetMark("detect", sp)
	}
	for _, h := range m.handlers {
		h(e)
	}
}

// detectHangs finds workers that never entered an operation their peers
// entered (non-comm hang) and operations whose transport stopped making
// progress (comm hang), localizing the node with neither tx nor rx
// progress.
func (m *Master) detectHangs(now sim.Time, comm int, cs *commState) {
	maxArr := 0
	for _, n := range cs.nodes {
		if s := cs.arriveSeq[n]; s > maxArr {
			maxArr = s
		}
	}
	if maxArr == 0 {
		return
	}
	firstArr := cs.seqFirstArr[maxArr]
	age := now - firstArr

	// Non-communication hang: a peer is missing from op maxArr.
	if age >= m.cfg.HangTimeout {
		for _, n := range cs.nodes {
			if cs.arriveSeq[n] < maxArr {
				m.emit(Event{
					Time: now, Comm: comm, Syndrome: NonCommHang, Scope: ScopeNode,
					Node: n, Peer: -1, Severity: age.Seconds(),
					Detail: fmt.Sprintf("no kernel launch for op %d (peers launched %v ago)", maxArr, age),
				})
			}
		}
	}

	// Communication hang: everyone entered op maxArr, nobody finished it,
	// and the transport has been silent for HangTimeout.
	allArrived := true
	anyCompleted := false
	for _, n := range cs.nodes {
		if cs.arriveSeq[n] < maxArr {
			allArrived = false
		}
		if cs.completeSeq[n] >= maxArr {
			anyCompleted = true
		}
	}
	if !allArrived || anyCompleted {
		return
	}
	lastProgress := cs.lastMsgAt
	if firstArr > lastProgress {
		lastProgress = firstArr
	}
	if now-lastProgress < m.cfg.HangTimeout {
		return
	}
	// Localize: nodes with neither transmit nor receive progress within
	// the stalled operation while peers progressed. Per-op evidence is
	// essential — the healthy edges of the stalled op typically completed
	// several reporting windows before the timeout fires.
	tx, rx := cs.opTx[maxArr], cs.opRx[maxArr]
	anyTraffic := len(tx) > 0 || len(rx) > 0
	var blamed []int
	for _, n := range cs.nodes {
		if !tx[n] && !rx[n] {
			blamed = append(blamed, n)
		}
	}
	if !anyTraffic || len(blamed) == 0 || len(blamed) == len(cs.nodes) {
		// No discriminating evidence this window: report the hang against
		// the communicator's first member so steering still reacts, with
		// scope widened in the detail string.
		m.emit(Event{
			Time: now, Comm: comm, Syndrome: CommHang, Scope: ScopeNode,
			Node: cs.nodes[0], Peer: -1, Severity: (now - lastProgress).Seconds(),
			Detail: fmt.Sprintf("op %d stalled %v; no single-node syndrome", maxArr, now-lastProgress),
		})
		return
	}
	for _, n := range blamed {
		m.emit(Event{
			Time: now, Comm: comm, Syndrome: CommHang, Scope: ScopeNode,
			Node: n, Peer: -1, Severity: (now - lastProgress).Seconds(),
			Detail: fmt.Sprintf("op %d stalled %v; node has no tx/rx progress", maxArr, now-lastProgress),
		})
	}
}

// detectCommSlow builds the Fig 7 delay matrix from the window's transport
// records and localizes slow cells, rows and columns.
func (m *Master) detectCommSlow(now sim.Time, comm int, cs *commState) {
	m.cellVisits += len(cs.pairs)
	if len(cs.pairs) < 2 {
		return
	}
	bw := make(map[[2]int]float64, len(cs.pairs))
	for key, agg := range cs.pairs {
		if agg.dur <= 0 {
			continue
		}
		bw[key] = agg.bytes * 8 / agg.dur.Seconds()
	}
	for _, f := range AnalyzeDelayMatrix(bw, m.cfg.Kappa, m.cfg.RowColFrac) {
		ev := Event{
			Time: now, Comm: comm, Syndrome: CommSlow, Scope: f.Scope,
			Severity: f.Slowdown, Peer: -1,
		}
		switch f.Scope {
		case ScopeNodeTx:
			ev.Node = f.Src
			ev.Detail = "matrix row slow: source NIC/node Tx degraded"
		case ScopeNodeRx:
			ev.Node = f.Dst
			ev.Detail = "matrix column slow: destination NIC/node Rx degraded"
		default:
			ev.Node, ev.Peer = f.Src, f.Dst
			ev.Detail = "single connection slow"
		}
		m.emit(ev)
	}
}

// detectStraggler aggregates receiver-driven wait chains: the node peers
// spend by far the most time waiting on is compute- or input-bound
// (non-communication slow). Totals are smoothed over SmoothingWindows
// reporting periods to absorb random variation (§V's EP discussion).
func (m *Master) detectStraggler(now sim.Time, comm int, cs *commState) {
	for _, n := range cs.nodes {
		hist := append(cs.waitHist[n], cs.waits[n])
		if len(hist) > m.cfg.SmoothingWindows {
			hist = hist[len(hist)-m.cfg.SmoothingWindows:]
		}
		cs.waitHist[n] = hist
	}
	var top, second sim.Time
	topNode := -1
	for _, n := range cs.nodes {
		var sum sim.Time
		for _, w := range cs.waitHist[n] {
			sum += w
		}
		avg := sum / sim.Time(len(cs.waitHist[n]))
		if avg > top {
			second = top
			top, topNode = avg, n
		} else if avg > second {
			second = avg
		}
	}
	if topNode < 0 || top < m.cfg.MinWait {
		return
	}
	if second > 0 && float64(top) < m.cfg.WaitKappa*float64(second) {
		return
	}
	m.emit(Event{
		Time: now, Comm: comm, Syndrome: NonCommSlow, Scope: ScopeNode,
		Node: topNode, Peer: -1,
		Severity: top.Seconds() / m.cfg.ReportInterval.Seconds(),
		Detail:   fmt.Sprintf("peers waited %v on this node per window", top),
	})
}
