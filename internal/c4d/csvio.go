package c4d

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"c4/internal/accl"
	"c4/internal/metrics"
	"c4/internal/sim"
)

// This file implements the stats files of the paper's Fig 5 — the
// comm-stats / coll-stats / conn-stats / rank-stats CSV time series each
// C4a agent writes — and the offline "C4 Analyzer" that replays them
// through the same detectors the online master uses. Production keeps
// these files for post-mortems; here they also make the analyzer testable
// against golden data.

// WriteConnStats emits transport-layer records (conn-stats.csv).
func WriteConnStats(w io.Writer, msgs []accl.MsgEvent) error {
	cw := metrics.NewCSVWriter(w,
		"comm", "seq", "src_node", "dst_node", "rail", "plane",
		"sport", "qpn", "bytes", "start_ns", "end_ns")
	for _, m := range msgs {
		err := cw.Write(m.Comm, m.Seq, m.SrcNode, m.DstNode, m.Rail, m.Plane,
			int(m.Sport), m.QPN, m.Bytes, int64(m.Start), int64(m.End))
		if err != nil {
			return err
		}
	}
	return cw.Flush()
}

// ReadConnStats parses conn-stats.csv.
func ReadConnStats(r io.Reader) ([]accl.MsgEvent, error) {
	rows, err := readCSV(r, 11)
	if err != nil {
		return nil, fmt.Errorf("conn-stats: %w", err)
	}
	out := make([]accl.MsgEvent, 0, len(rows))
	for _, f := range rows {
		ev := accl.MsgEvent{
			Comm: f.i(0), Seq: f.i(1), SrcNode: f.i(2), DstNode: f.i(3),
			Rail: f.i(4), Plane: f.i(5), Sport: uint16(f.i(6)), QPN: f.i(7),
			Bytes: f.f(8), Start: sim.Time(f.i64(9)), End: sim.Time(f.i64(10)),
		}
		if f.err != nil {
			return nil, fmt.Errorf("conn-stats row: %w", f.err)
		}
		out = append(out, ev)
	}
	return out, nil
}

// WriteCollStats emits operation-layer records (coll-stats.csv).
func WriteCollStats(w io.Writer, colls []accl.CollEvent) error {
	cw := metrics.NewCSVWriter(w,
		"comm", "seq", "node", "op", "algo", "bytes", "phase", "t_ns")
	for _, c := range colls {
		err := cw.Write(c.Comm, c.Seq, c.Node, string(c.Op), c.Algo,
			c.Bytes, int(c.Phase), int64(c.Time))
		if err != nil {
			return err
		}
	}
	return cw.Flush()
}

// ReadCollStats parses coll-stats.csv.
func ReadCollStats(r io.Reader) ([]accl.CollEvent, error) {
	rows, err := readCSV(r, 8)
	if err != nil {
		return nil, fmt.Errorf("coll-stats: %w", err)
	}
	out := make([]accl.CollEvent, 0, len(rows))
	for _, f := range rows {
		ev := accl.CollEvent{
			Comm: f.i(0), Seq: f.i(1), Node: f.i(2),
			Op: accl.OpType(f.s(3)), Algo: f.s(4), Bytes: f.f(5),
			Phase: accl.CollPhase(f.i(6)), Time: sim.Time(f.i64(7)),
		}
		if f.err != nil {
			return nil, fmt.Errorf("coll-stats row: %w", f.err)
		}
		out = append(out, ev)
	}
	return out, nil
}

// WriteRankStats emits receiver-driven wait records (rank-stats.csv).
func WriteRankStats(w io.Writer, waits []accl.WaitEvent) error {
	cw := metrics.NewCSVWriter(w, "comm", "seq", "waiter", "on", "dur_ns", "t_ns")
	for _, wt := range waits {
		if err := cw.Write(wt.Comm, wt.Seq, wt.Waiter, wt.On, int64(wt.Dur), int64(wt.Time)); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// ReadRankStats parses rank-stats.csv.
func ReadRankStats(r io.Reader) ([]accl.WaitEvent, error) {
	rows, err := readCSV(r, 6)
	if err != nil {
		return nil, fmt.Errorf("rank-stats: %w", err)
	}
	out := make([]accl.WaitEvent, 0, len(rows))
	for _, f := range rows {
		ev := accl.WaitEvent{
			Comm: f.i(0), Seq: f.i(1), Waiter: f.i(2), On: f.i(3),
			Dur: sim.Time(f.i64(4)), Time: sim.Time(f.i64(5)),
		}
		if f.err != nil {
			return nil, fmt.Errorf("rank-stats row: %w", f.err)
		}
		out = append(out, ev)
	}
	return out, nil
}

// WriteCommStats emits communicator membership (comm-stats.csv).
func WriteCommStats(w io.Writer, comms []accl.CommInfo) error {
	cw := metrics.NewCSVWriter(w, "comm", "rank", "node")
	for _, ci := range comms {
		for rank, node := range ci.Nodes {
			if err := cw.Write(ci.Comm, rank, node); err != nil {
				return err
			}
		}
	}
	return cw.Flush()
}

// ReadCommStats parses comm-stats.csv.
func ReadCommStats(r io.Reader) ([]accl.CommInfo, error) {
	rows, err := readCSV(r, 3)
	if err != nil {
		return nil, fmt.Errorf("comm-stats: %w", err)
	}
	byComm := map[int][]int{}
	var order []int
	for _, f := range rows {
		comm := f.i(0)
		node := f.i(2)
		if f.err != nil {
			return nil, fmt.Errorf("comm-stats row: %w", f.err)
		}
		if _, ok := byComm[comm]; !ok {
			order = append(order, comm)
		}
		byComm[comm] = append(byComm[comm], node)
	}
	out := make([]accl.CommInfo, 0, len(order))
	for _, c := range order {
		out = append(out, accl.CommInfo{Comm: c, Nodes: byComm[c]})
	}
	return out, nil
}

// fields wraps one CSV row with typed accessors that latch the first error.
type fields struct {
	cells []string
	err   error
}

func (f *fields) s(i int) string { return f.cells[i] }

func (f *fields) i(i int) int {
	v, err := strconv.Atoi(f.cells[i])
	if err != nil && f.err == nil {
		f.err = err
	}
	return v
}

func (f *fields) i64(i int) int64 {
	v, err := strconv.ParseInt(f.cells[i], 10, 64)
	if err != nil && f.err == nil {
		f.err = err
	}
	return v
}

func (f *fields) f(i int) float64 {
	v, err := strconv.ParseFloat(f.cells[i], 64)
	if err != nil && f.err == nil {
		f.err = err
	}
	return v
}

func readCSV(r io.Reader, want int) ([]*fields, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = want
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	out := make([]*fields, 0, len(recs)-1)
	for _, rec := range recs[1:] { // skip header
		out = append(out, &fields{cells: rec})
	}
	return out, nil
}

// OfflineFinding is one windowed analyzer result.
type OfflineFinding struct {
	WindowStart sim.Time
	WindowEnd   sim.Time
	Comm        int
	Finding     MatrixFinding
}

// AnalyzeOffline replays conn-stats records through the comm-slow
// localizer in fixed windows — the paper's "C4 Analyzer" box in Fig 5,
// used for post-mortems on archived stats.
func AnalyzeOffline(msgs []accl.MsgEvent, window sim.Time, kappa, rowColFrac float64) []OfflineFinding {
	if len(msgs) == 0 || window <= 0 {
		return nil
	}
	var maxEnd sim.Time
	for _, m := range msgs {
		if m.End > maxEnd {
			maxEnd = m.End
		}
	}
	var out []OfflineFinding
	for start := sim.Time(0); start < maxEnd; start += window {
		end := start + window
		// Per communicator, aggregate bandwidth per pair in the window.
		byComm := map[int]map[[2]int]*pairAgg{}
		for _, m := range msgs {
			if m.End < start || m.End >= end {
				continue
			}
			pairs := byComm[m.Comm]
			if pairs == nil {
				pairs = map[[2]int]*pairAgg{}
				byComm[m.Comm] = pairs
			}
			key := [2]int{m.SrcNode, m.DstNode}
			agg := pairs[key]
			if agg == nil {
				agg = &pairAgg{}
				pairs[key] = agg
			}
			agg.bytes += m.Bytes
			agg.dur += m.Duration()
		}
		comms := make([]int, 0, len(byComm))
		for c := range byComm {
			comms = append(comms, c)
		}
		sort.Ints(comms)
		for _, c := range comms {
			bw := map[[2]int]float64{}
			for key, agg := range byComm[c] {
				if agg.dur > 0 {
					bw[key] = agg.bytes * 8 / agg.dur.Seconds()
				}
			}
			for _, f := range AnalyzeDelayMatrix(bw, kappa, rowColFrac) {
				out = append(out, OfflineFinding{
					WindowStart: start, WindowEnd: end, Comm: c, Finding: f,
				})
			}
		}
	}
	return out
}
