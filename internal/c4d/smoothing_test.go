package c4d

import (
	"testing"

	"c4/internal/accl"
	"c4/internal/sim"
)

// The paper's §V discusses extending C4D to Expert Parallelism, where load
// imbalance among workers is *expected* and random, "which can be
// mitigated by averaging collected data over a predefined period to smooth
// out random variations and highlight systemic issues." These tests
// exercise that smoothing: random per-iteration arrival noise must not be
// blamed, while a persistent straggler still is.

// runEPLikeLoad drives a BSP loop where every iteration a different random
// node is slow (EP-style routing imbalance), optionally plus one node that
// is *always* slow.
func runEPLikeLoad(t *testing.T, cfg Config, systemicNode int, until sim.Time) *Master {
	t.Helper()
	r := newRig(t, cfg)
	noise := sim.NewRand(99)
	const compute = 100 * sim.Millisecond
	const spike = 150 * sim.Millisecond
	var iterate func()
	iterate = func() {
		now := r.eng.Now()
		arr := make([]sim.Time, len(r.nodes))
		lucky := r.nodes[noise.Intn(len(r.nodes))]
		for i, n := range r.nodes {
			arr[i] = now + compute
			if n == lucky {
				arr[i] += spike // random EP hot expert this iteration
			}
			if n == systemicNode {
				arr[i] += spike // persistent straggler
			}
		}
		r.comm.AllReduce(64<<20, arr, func(accl.Result) { iterate() })
	}
	iterate()
	r.eng.RunUntil(until)
	return r.master
}

func TestSmoothingSuppressesRandomEPImbalance(t *testing.T) {
	master := runEPLikeLoad(t, Config{SmoothingWindows: 4}, -1, 3*sim.Minute)
	for _, ev := range master.Events() {
		if ev.Syndrome == NonCommSlow {
			t.Fatalf("random per-iteration imbalance blamed as straggler: %v", ev)
		}
	}
}

func TestSmoothingStillCatchesSystemicStraggler(t *testing.T) {
	master := runEPLikeLoad(t, Config{SmoothingWindows: 4}, 6, 3*sim.Minute)
	found := false
	for _, ev := range master.Events() {
		if ev.Syndrome == NonCommSlow {
			if ev.Node != 6 {
				t.Fatalf("wrong straggler blamed under EP noise: %v", ev)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("systemic straggler escaped under EP noise")
	}
}
