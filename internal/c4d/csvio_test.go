package c4d

import (
	"strings"
	"testing"
	"testing/quick"

	"c4/internal/accl"
	"c4/internal/sim"
)

func sampleMsgs() []accl.MsgEvent {
	return []accl.MsgEvent{
		{Comm: 1, Seq: 3, SrcNode: 0, DstNode: 2, Rail: 1, Plane: 0,
			Sport: 4242, QPN: 1001, Bytes: 1 << 20,
			Start: 100 * sim.Millisecond, End: 150 * sim.Millisecond},
		{Comm: 1, Seq: 3, SrcNode: 2, DstNode: 4, Rail: 1, Plane: 1,
			Sport: 17, QPN: 1002, Bytes: 2 << 20,
			Start: 100 * sim.Millisecond, End: 250 * sim.Millisecond},
	}
}

func TestConnStatsRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteConnStats(&b, sampleMsgs()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConnStats(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := sampleMsgs()
	if len(got) != len(want) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCollStatsRoundTrip(t *testing.T) {
	colls := []accl.CollEvent{
		{Comm: 2, Seq: 7, Node: 4, Op: accl.OpAllReduce, Algo: "ring",
			Bytes: 64 << 20, Phase: accl.PhaseArrive, Time: sim.Second},
		{Comm: 2, Seq: 7, Node: 4, Op: accl.OpAllReduce, Algo: "ring",
			Bytes: 64 << 20, Phase: accl.PhaseComplete, Time: 2 * sim.Second},
	}
	var b strings.Builder
	if err := WriteCollStats(&b, colls); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollStats(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range colls {
		if got[i] != colls[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], colls[i])
		}
	}
}

func TestRankStatsRoundTrip(t *testing.T) {
	waits := []accl.WaitEvent{
		{Comm: 1, Seq: 9, Waiter: 2, On: 4, Dur: 300 * sim.Millisecond, Time: 5 * sim.Second},
	}
	var b strings.Builder
	if err := WriteRankStats(&b, waits); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRankStats(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != waits[0] {
		t.Fatalf("row = %+v", got[0])
	}
}

func TestCommStatsRoundTrip(t *testing.T) {
	comms := []accl.CommInfo{
		{Comm: 1, Nodes: []int{0, 2, 4}},
		{Comm: 2, Nodes: []int{1, 3}},
	}
	var b strings.Builder
	if err := WriteCommStats(&b, comms); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCommStats(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Comm != 1 || len(got[0].Nodes) != 3 || got[1].Nodes[1] != 3 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	if _, err := ReadConnStats(strings.NewReader("comm,seq\n1,2\n")); err == nil {
		t.Fatal("short rows accepted")
	}
	bad := "comm,seq,src_node,dst_node,rail,plane,sport,qpn,bytes,start_ns,end_ns\nx,0,0,0,0,0,0,0,0,0,0\n"
	if _, err := ReadConnStats(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric cell accepted")
	}
	if got, err := ReadConnStats(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Fatalf("empty file: %v %v", got, err)
	}
}

func TestAnalyzeOfflineFindsInjectedRow(t *testing.T) {
	// Synthesize two windows of full-mesh traffic: healthy in the first,
	// node 3's Tx degraded 4x in the second.
	var msgs []accl.MsgEvent
	nodes := []int{0, 1, 2, 3, 4, 5}
	emit := func(window int, slowSrc int) {
		base := sim.Time(window) * 10 * sim.Second
		for _, s := range nodes {
			for _, d := range nodes {
				if s == d {
					continue
				}
				dur := 100 * sim.Millisecond
				if s == slowSrc {
					dur *= 4
				}
				msgs = append(msgs, accl.MsgEvent{
					Comm: 1, Seq: window, SrcNode: s, DstNode: d,
					Bytes: 1 << 24, Start: base, End: base + dur,
				})
			}
		}
	}
	emit(0, -1)
	emit(1, 3)
	findings := AnalyzeOffline(msgs, 10*sim.Second, 2, 0.6)
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly 1", findings)
	}
	f := findings[0]
	if f.WindowStart != 10*sim.Second {
		t.Fatalf("finding in wrong window: %+v", f)
	}
	if f.Finding.Scope != ScopeNodeTx || f.Finding.Src != 3 {
		t.Fatalf("finding = %+v, want node-tx 3", f.Finding)
	}
}

func TestAnalyzeOfflineEmpty(t *testing.T) {
	if got := AnalyzeOffline(nil, sim.Second, 2, 0.6); got != nil {
		t.Fatalf("empty input: %+v", got)
	}
	if got := AnalyzeOffline(sampleMsgs(), 0, 2, 0.6); got != nil {
		t.Fatalf("zero window: %+v", got)
	}
}

// Property: conn-stats round trip is exact for arbitrary event fields.
func TestConnStatsRoundTripProperty(t *testing.T) {
	f := func(comm, seq uint8, src, dst uint8, bytes uint32, startMs, durMs uint16) bool {
		ev := accl.MsgEvent{
			Comm: int(comm), Seq: int(seq), SrcNode: int(src), DstNode: int(dst),
			Bytes: float64(bytes),
			Start: sim.Time(startMs) * sim.Millisecond,
			End:   sim.Time(startMs)*sim.Millisecond + sim.Time(durMs)*sim.Millisecond,
		}
		var b strings.Builder
		if err := WriteConnStats(&b, []accl.MsgEvent{ev}); err != nil {
			return false
		}
		got, err := ReadConnStats(strings.NewReader(b.String()))
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0] == ev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
