package c4d

import (
	"sort"

	"c4/internal/accl"
	"c4/internal/sim"
)

// Agent is a C4a agent: it runs beside one worker, buffers the ACCL
// monitoring records that worker produces, and ships them to the master on
// every reporting tick (paper Fig 5). Transport records are collected on
// the sending side, where the QP counters live.
type Agent struct {
	Node int

	msgs  []accl.MsgEvent
	colls []accl.CollEvent
	waits []accl.WaitEvent
}

// Report is one agent->master batch.
type Report struct {
	Node     int
	Messages []accl.MsgEvent
	Colls    []accl.CollEvent
	Waits    []accl.WaitEvent
}

func (a *Agent) flush() Report {
	r := Report{Node: a.Node, Messages: a.msgs, Colls: a.colls, Waits: a.waits}
	a.msgs, a.colls, a.waits = nil, nil, nil
	return r
}

// Fleet fans ACCL monitoring records out to per-node agents and drives the
// periodic reporting loop. It implements accl.StatsSink, so it plugs
// directly into a Communicator's Config.Sink.
type Fleet struct {
	det      Detector
	interval sim.Time
	agents   map[int]*Agent
	eng      *sim.Engine
	ticker   *sim.Event
	skipped  int
}

// NewFleet creates the agent fleet reporting to the batch master and
// starts the reporting ticker.
func NewFleet(eng *sim.Engine, master *Master) *Fleet {
	return NewFleetDetector(eng, master, master.cfg.ReportInterval)
}

// NewFleetDetector creates a fleet reporting to any Detector on the given
// interval (<= 0 falls back to the default reporting interval).
func NewFleetDetector(eng *sim.Engine, det Detector, interval sim.Time) *Fleet {
	if interval <= 0 {
		interval = DefaultConfig().ReportInterval
	}
	f := &Fleet{det: det, interval: interval, agents: make(map[int]*Agent), eng: eng}
	f.scheduleTick()
	return f
}

func (f *Fleet) scheduleTick() {
	f.ticker = f.eng.After(f.interval, func() {
		f.reportAll()
		f.scheduleTick()
	})
}

// SkippedPasses reports how many reporting ticks were elided because every
// agent was empty and the detector held no ripening evidence.
func (f *Fleet) SkippedPasses() int { return f.skipped }

// Stop halts the reporting loop.
func (f *Fleet) Stop() {
	if f.ticker != nil {
		f.ticker.Cancel()
	}
}

func (f *Fleet) agent(node int) *Agent {
	a := f.agents[node]
	if a == nil {
		a = &Agent{Node: node}
		f.agents[node] = a
	}
	return a
}

// reportAll flushes every agent to the master in deterministic order, then
// triggers one analysis pass. A tick where every agent flushed zero
// records AND the detector holds no evidence that could ripen (Active is
// false) is skipped outright: before the job's first collective and after
// its communicators close, a full Analyze pass per tick is pure overhead.
// A hang produces no records either, but its communicator was seen before
// falling silent, so Active stays true and the timeout detectors keep
// running.
func (f *Fleet) reportAll() {
	nodes := make([]int, 0, len(f.agents))
	records := 0
	for n, a := range f.agents {
		nodes = append(nodes, n)
		records += len(a.msgs) + len(a.colls) + len(a.waits)
	}
	if records == 0 && !f.det.Active() {
		f.skipped++
		return
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		f.det.Ingest(f.agents[n].flush())
	}
	f.det.Analyze(f.eng.Now())
}

// OnCommCreate implements accl.StatsSink.
func (f *Fleet) OnCommCreate(ci accl.CommInfo) {
	for _, n := range ci.Nodes {
		f.agent(n) // ensure agents exist for all members
	}
	f.det.RegisterComm(ci)
}

// OnCommClose implements accl.StatsSink.
func (f *Fleet) OnCommClose(comm int) {
	f.det.UnregisterComm(comm)
}

// OnCollective implements accl.StatsSink.
func (f *Fleet) OnCollective(ev accl.CollEvent) {
	a := f.agent(ev.Node)
	a.colls = append(a.colls, ev)
}

// OnMessage implements accl.StatsSink.
func (f *Fleet) OnMessage(ev accl.MsgEvent) {
	a := f.agent(ev.SrcNode)
	a.msgs = append(a.msgs, ev)
}

// OnWait implements accl.StatsSink.
func (f *Fleet) OnWait(ev accl.WaitEvent) {
	a := f.agent(ev.Waiter)
	a.waits = append(a.waits, ev)
}
