package c4d

import (
	"sort"

	"c4/internal/accl"
	"c4/internal/sim"
)

// Agent is a C4a agent: it runs beside one worker, buffers the ACCL
// monitoring records that worker produces, and ships them to the master on
// every reporting tick (paper Fig 5). Transport records are collected on
// the sending side, where the QP counters live.
type Agent struct {
	Node int

	msgs  []accl.MsgEvent
	colls []accl.CollEvent
	waits []accl.WaitEvent
}

// Report is one agent->master batch.
type Report struct {
	Node     int
	Messages []accl.MsgEvent
	Colls    []accl.CollEvent
	Waits    []accl.WaitEvent
}

func (a *Agent) flush() Report {
	r := Report{Node: a.Node, Messages: a.msgs, Colls: a.colls, Waits: a.waits}
	a.msgs, a.colls, a.waits = nil, nil, nil
	return r
}

// Fleet fans ACCL monitoring records out to per-node agents and drives the
// periodic reporting loop. It implements accl.StatsSink, so it plugs
// directly into a Communicator's Config.Sink.
type Fleet struct {
	Master *Master
	agents map[int]*Agent
	eng    *sim.Engine
	ticker *sim.Event
}

// NewFleet creates the agent fleet and starts the reporting ticker.
func NewFleet(eng *sim.Engine, master *Master) *Fleet {
	f := &Fleet{Master: master, agents: make(map[int]*Agent), eng: eng}
	f.scheduleTick()
	return f
}

func (f *Fleet) scheduleTick() {
	f.ticker = f.eng.After(f.Master.cfg.ReportInterval, func() {
		f.reportAll()
		f.scheduleTick()
	})
}

// Stop halts the reporting loop.
func (f *Fleet) Stop() {
	if f.ticker != nil {
		f.ticker.Cancel()
	}
}

func (f *Fleet) agent(node int) *Agent {
	a := f.agents[node]
	if a == nil {
		a = &Agent{Node: node}
		f.agents[node] = a
	}
	return a
}

// reportAll flushes every agent to the master in deterministic order, then
// triggers one analysis pass.
func (f *Fleet) reportAll() {
	nodes := make([]int, 0, len(f.agents))
	for n := range f.agents {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		f.Master.Ingest(f.agents[n].flush())
	}
	f.Master.Analyze(f.eng.Now())
}

// OnCommCreate implements accl.StatsSink.
func (f *Fleet) OnCommCreate(ci accl.CommInfo) {
	for _, n := range ci.Nodes {
		f.agent(n) // ensure agents exist for all members
	}
	f.Master.RegisterComm(ci)
}

// OnCommClose implements accl.StatsSink.
func (f *Fleet) OnCommClose(comm int) {
	f.Master.UnregisterComm(comm)
}

// OnCollective implements accl.StatsSink.
func (f *Fleet) OnCollective(ev accl.CollEvent) {
	a := f.agent(ev.Node)
	a.colls = append(a.colls, ev)
}

// OnMessage implements accl.StatsSink.
func (f *Fleet) OnMessage(ev accl.MsgEvent) {
	a := f.agent(ev.SrcNode)
	a.msgs = append(a.msgs, ev)
}

// OnWait implements accl.StatsSink.
func (f *Fleet) OnWait(ev accl.WaitEvent) {
	a := f.agent(ev.Waiter)
	a.waits = append(a.waits, ev)
}
