// Package c4d implements the C4D (C4 Diagnose) subsystem of the paper
// (§III-A): per-worker C4 agents collect ACCL's runtime statistics and ship
// them to a central master, which detects the four production syndromes —
// communication hang, non-communication hang, communication slow, and
// non-communication slow — and localizes the faulty component so the job
// steering service can isolate it and restart the job within seconds
// instead of the hours-to-days of manual diagnosis the paper reports.
package c4d

import (
	"fmt"

	"c4/internal/sim"
)

// Syndrome classifies a detected anomaly.
type Syndrome int

// The four syndromes of §III-A.
const (
	// CommHang: workers entered a collective but transport progress
	// stopped (dead NIC, dead link, peer process killed mid-operation).
	CommHang Syndrome = iota
	// NonCommHang: a worker never entered a collective its peers entered
	// (crashed process, stuck data loader, CUDA error before the kernel).
	NonCommHang
	// CommSlow: transport-level transfer times are abnormally long for a
	// connection, a source NIC (matrix row) or a destination NIC (column).
	CommSlow
	// NonCommSlow: a worker repeatedly arrives late at collectives,
	// stalling the receiver-driven ring behind it (slow GPU, data loader,
	// CPU contention).
	NonCommSlow
)

func (s Syndrome) String() string {
	switch s {
	case CommHang:
		return "comm-hang"
	case NonCommHang:
		return "non-comm-hang"
	case CommSlow:
		return "comm-slow"
	case NonCommSlow:
		return "non-comm-slow"
	}
	return "unknown"
}

// Scope says which component a finding localizes to.
type Scope int

// Localization scopes, in decreasing specificity.
const (
	// ScopeConnection blames a single (src,dst) connection — one link.
	ScopeConnection Scope = iota
	// ScopeNodeTx blames a node's transmit side (matrix row).
	ScopeNodeTx
	// ScopeNodeRx blames a node's receive side (matrix column).
	ScopeNodeRx
	// ScopeNode blames a whole node (hangs, stragglers).
	ScopeNode
)

func (s Scope) String() string {
	switch s {
	case ScopeConnection:
		return "connection"
	case ScopeNodeTx:
		return "node-tx"
	case ScopeNodeRx:
		return "node-rx"
	case ScopeNode:
		return "node"
	}
	return "unknown"
}

// Event is one C4D finding, delivered to the job steering service.
type Event struct {
	Time     sim.Time
	Comm     int
	Syndrome Syndrome
	Scope    Scope
	// Node is the blamed node (always set; for ScopeConnection it is the
	// source end, with Peer the destination).
	Node int
	Peer int // -1 unless ScopeConnection
	// Severity is a unitless badness factor (e.g. slowdown multiple).
	Severity float64
	Detail   string
}

func (e Event) String() string {
	if e.Scope == ScopeConnection {
		return fmt.Sprintf("[%v] %v %v n%d->n%d x%.1f (%s)",
			e.Time, e.Syndrome, e.Scope, e.Node, e.Peer, e.Severity, e.Detail)
	}
	return fmt.Sprintf("[%v] %v %v n%d x%.1f (%s)",
		e.Time, e.Syndrome, e.Scope, e.Node, e.Severity, e.Detail)
}
