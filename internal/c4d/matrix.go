package c4d

import (
	"sort"

	"c4/internal/metrics"
)

// The communication-slow localizer implements the paper's Fig 7: transfer
// performance between worker pairs forms a matrix (rows = sources, columns
// = destinations); a single slow cell indicates a specific connection, a
// slow row a source-side (Tx) problem, and a slow column a destination-side
// (Rx) problem.

// MatrixFinding is one localized slowness.
type MatrixFinding struct {
	Scope Scope // ScopeConnection, ScopeNodeTx or ScopeNodeRx
	Src   int   // source node (-1 for pure-Rx findings)
	Dst   int   // destination node (-1 for pure-Tx findings)
	// Slowdown is how many times worse than the healthy median.
	Slowdown float64
}

// AnalyzeDelayMatrix localizes slow components from per-pair throughput.
// bw maps (src,dst) to mean observed bandwidth over the analysis window
// (any consistent unit). kappa is the slowdown multiple considered
// anomalous (the paper's deployment flags multi-fold degradations; 2.0 is
// used throughout this repo). rowColFrac is the fraction of a row/column
// that must be anomalous to blame the whole NIC side rather than single
// connections (0.6 works well and tolerates missing cells).
func AnalyzeDelayMatrix(bw map[[2]int]float64, kappa, rowColFrac float64) []MatrixFinding {
	if len(bw) == 0 {
		return nil
	}
	// Healthy baseline: median bandwidth across all pairs. MAD-robust so a
	// handful of broken cells cannot drag the baseline down.
	all := make([]float64, 0, len(bw))
	for _, v := range bw {
		//c4vet:allow mapiterfloat consumed only by Median, which copies and sorts; any permutation yields the same value
		all = append(all, v)
	}
	med := metrics.Median(all)
	if med <= 0 {
		return nil
	}

	type cell struct {
		src, dst int
		slow     float64
	}
	// Iterate cells in (src, dst) order: map iteration order is randomized,
	// and the float accumulation below must not depend on it — equal inputs
	// must yield bit-identical findings (the replay tests assert this).
	keys := make([][2]int, 0, len(bw))
	for key := range bw {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	var anomalous []cell
	rowCells := map[int]int{} // src -> total observed cells
	colCells := map[int]int{}
	rowBad := map[int][]cell{}
	colBad := map[int][]cell{}
	for _, key := range keys {
		v := bw[key]
		src, dst := key[0], key[1]
		rowCells[src]++
		colCells[dst]++
		slow := kappa * 2 // treat zero-bandwidth as hard-slow
		if v > 0 {
			slow = med / v
		}
		if slow >= kappa {
			c := cell{src, dst, slow}
			anomalous = append(anomalous, c)
			rowBad[src] = append(rowBad[src], c)
			colBad[dst] = append(colBad[dst], c)
		}
	}
	if len(anomalous) == 0 {
		return nil
	}

	var out []MatrixFinding
	claimed := map[[2]int]bool{}

	// Rows and columns first (most specific aggregate evidence), larger
	// coverage first, deterministic order.
	type side struct {
		node  int
		cells []cell
		frac  float64
		isRow bool
	}
	var sides []side
	for src, cells := range rowBad {
		frac := float64(len(cells)) / float64(rowCells[src])
		sides = append(sides, side{src, cells, frac, true})
	}
	for dst, cells := range colBad {
		frac := float64(len(cells)) / float64(colCells[dst])
		sides = append(sides, side{dst, cells, frac, false})
	}
	sort.Slice(sides, func(i, j int) bool {
		if sides[i].frac != sides[j].frac {
			return sides[i].frac > sides[j].frac
		}
		if sides[i].isRow != sides[j].isRow {
			return sides[i].isRow
		}
		return sides[i].node < sides[j].node
	})
	// A row/column verdict needs corroborating breadth: with fewer than
	// three observed cells on a side (e.g. ring traffic, where each node
	// has exactly one outgoing connection), a "whole row slow" claim is
	// indistinguishable from a single bad connection, so the finding stays
	// at connection scope.
	const minLineCells = 3
	for _, s := range sides {
		if s.frac < rowColFrac || len(s.cells) < minLineCells {
			continue
		}
		// Skip if most of this side's cells were already claimed by an
		// earlier (stronger) finding.
		fresh := 0
		var slowSum float64
		for _, c := range s.cells {
			if !claimed[[2]int{c.src, c.dst}] {
				fresh++
				slowSum += c.slow
			}
		}
		if fresh == 0 || float64(fresh) < rowColFrac*float64(len(s.cells)) {
			continue
		}
		for _, c := range s.cells {
			claimed[[2]int{c.src, c.dst}] = true
		}
		f := MatrixFinding{Slowdown: slowSum / float64(fresh)}
		if s.isRow {
			f.Scope, f.Src, f.Dst = ScopeNodeTx, s.node, -1
		} else {
			f.Scope, f.Src, f.Dst = ScopeNodeRx, -1, s.node
		}
		out = append(out, f)
	}

	// Remaining anomalous cells are individual connection findings.
	sort.Slice(anomalous, func(i, j int) bool {
		if anomalous[i].src != anomalous[j].src {
			return anomalous[i].src < anomalous[j].src
		}
		return anomalous[i].dst < anomalous[j].dst
	})
	for _, c := range anomalous {
		if claimed[[2]int{c.src, c.dst}] {
			continue
		}
		out = append(out, MatrixFinding{
			Scope: ScopeConnection, Src: c.src, Dst: c.dst, Slowdown: c.slow,
		})
	}
	return out
}
