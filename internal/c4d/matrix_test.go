package c4d

import (
	"testing"
	"testing/quick"

	"c4/internal/sim"
)

// buildMatrix creates a healthy full-mesh bandwidth matrix over n nodes at
// `base` Gbps, then applies overrides.
func buildMatrix(n int, base float64, slow map[[2]int]float64) map[[2]int]float64 {
	bw := map[[2]int]float64{}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			bw[[2]int{s, d}] = base
		}
	}
	for k, v := range slow {
		bw[k] = v
	}
	return bw
}

func TestMatrixSingleCell(t *testing.T) {
	// Fig 7 left: one large entry -> a specific connection bottleneck.
	bw := buildMatrix(8, 360, map[[2]int]float64{{3, 4}: 90})
	got := AnalyzeDelayMatrix(bw, 2, 0.6)
	if len(got) != 1 {
		t.Fatalf("findings = %+v, want exactly 1", got)
	}
	f := got[0]
	if f.Scope != ScopeConnection || f.Src != 3 || f.Dst != 4 {
		t.Fatalf("finding = %+v, want connection 3->4", f)
	}
	if f.Slowdown < 3.5 || f.Slowdown > 4.5 {
		t.Fatalf("slowdown = %v, want ≈4", f.Slowdown)
	}
}

func TestMatrixRowSlow(t *testing.T) {
	// Fig 7 middle: a whole row -> the source's Tx side.
	slow := map[[2]int]float64{}
	for d := 0; d < 8; d++ {
		if d != 3 {
			slow[[2]int{3, d}] = 100
		}
	}
	bw := buildMatrix(8, 360, slow)
	got := AnalyzeDelayMatrix(bw, 2, 0.6)
	if len(got) != 1 {
		t.Fatalf("findings = %+v, want exactly 1", got)
	}
	if got[0].Scope != ScopeNodeTx || got[0].Src != 3 {
		t.Fatalf("finding = %+v, want node-tx 3", got[0])
	}
}

func TestMatrixColumnSlow(t *testing.T) {
	// Fig 7 right: a whole column -> the destination's Rx side.
	slow := map[[2]int]float64{}
	for s := 0; s < 8; s++ {
		if s != 5 {
			slow[[2]int{s, 5}] = 100
		}
	}
	bw := buildMatrix(8, 360, slow)
	got := AnalyzeDelayMatrix(bw, 2, 0.6)
	if len(got) != 1 {
		t.Fatalf("findings = %+v, want exactly 1", got)
	}
	if got[0].Scope != ScopeNodeRx || got[0].Dst != 5 {
		t.Fatalf("finding = %+v, want node-rx 5", got[0])
	}
}

func TestMatrixRowAndCell(t *testing.T) {
	slow := map[[2]int]float64{}
	for d := 0; d < 8; d++ {
		if d != 2 {
			slow[[2]int{2, d}] = 100
		}
	}
	slow[[2]int{6, 7}] = 50
	bw := buildMatrix(8, 360, slow)
	got := AnalyzeDelayMatrix(bw, 2, 0.6)
	if len(got) != 2 {
		t.Fatalf("findings = %+v, want 2", got)
	}
	var haveRow, haveCell bool
	for _, f := range got {
		switch f.Scope {
		case ScopeNodeTx:
			haveRow = f.Src == 2
		case ScopeConnection:
			haveCell = f.Src == 6 && f.Dst == 7
		}
	}
	if !haveRow || !haveCell {
		t.Fatalf("findings = %+v, want row(2) and cell(6->7)", got)
	}
}

func TestMatrixHealthyIsQuiet(t *testing.T) {
	bw := buildMatrix(8, 360, nil)
	if got := AnalyzeDelayMatrix(bw, 2, 0.6); len(got) != 0 {
		t.Fatalf("healthy matrix produced findings: %+v", got)
	}
	// Mild jitter below kappa stays quiet too.
	bw[[2]int{1, 2}] = 250
	if got := AnalyzeDelayMatrix(bw, 2, 0.6); len(got) != 0 {
		t.Fatalf("sub-threshold jitter produced findings: %+v", got)
	}
}

func TestMatrixZeroBandwidthCell(t *testing.T) {
	bw := buildMatrix(4, 360, map[[2]int]float64{{0, 1}: 0})
	got := AnalyzeDelayMatrix(bw, 2, 0.6)
	if len(got) != 1 || got[0].Scope != ScopeConnection {
		t.Fatalf("findings = %+v, want one connection", got)
	}
}

func TestMatrixEmptyAndDegenerate(t *testing.T) {
	if got := AnalyzeDelayMatrix(nil, 2, 0.6); got != nil {
		t.Fatalf("empty matrix: %+v", got)
	}
	if got := AnalyzeDelayMatrix(map[[2]int]float64{{0, 1}: 0}, 2, 0.6); got != nil {
		t.Fatalf("all-zero matrix should be unanalyzable, got %+v", got)
	}
}

// Property: relabeling nodes permutes findings but preserves their
// structure (the analyzer has no positional bias).
func TestMatrixPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := sim.NewRand(seed)
		n := 6
		victim := r.Intn(n)
		slow := map[[2]int]float64{}
		for d := 0; d < n; d++ {
			if d != victim {
				slow[[2]int{victim, d}] = 80
			}
		}
		bw := buildMatrix(n, 360, slow)
		got := AnalyzeDelayMatrix(bw, 2, 0.6)
		if len(got) != 1 || got[0].Scope != ScopeNodeTx || got[0].Src != victim {
			return false
		}
		// Permute labels and re-check.
		perm := r.Perm(n)
		pbw := map[[2]int]float64{}
		for k, v := range bw {
			pbw[[2]int{perm[k[0]], perm[k[1]]}] = v
		}
		pg := AnalyzeDelayMatrix(pbw, 2, 0.6)
		return len(pg) == 1 && pg[0].Scope == ScopeNodeTx && pg[0].Src == perm[victim]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling all bandwidths uniformly produces no findings (the
// detector is relative, not absolute).
func TestMatrixScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := sim.NewRand(seed)
		scale := 0.1 + 10*r.Float64()
		bw := buildMatrix(6, 360*scale, nil)
		return len(AnalyzeDelayMatrix(bw, 2, 0.6)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
