package c4d

import (
	"testing"

	"c4/internal/accl"
	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
)

// plannedProvider gives each QP a dedicated same-plane spine so healthy
// runs have zero collision noise (tests then inject specific anomalies).
type plannedProvider struct {
	topo *topo.Topology
	next int
}

func (p *plannedProvider) Connect(req accl.ConnRequest) (*accl.Assignment, error) {
	plane := req.QPIndex % topo.Planes
	if p.topo.Group(req.SrcNode) == p.topo.Group(req.DstNode) {
		path, err := p.topo.PathFor(req.SrcNode, req.DstNode, req.Rail, plane, -1, plane)
		if err != nil {
			return nil, err
		}
		return &accl.Assignment{Path: path}, nil
	}
	spine := p.next % p.topo.Spec.Spines
	p.next++
	path, err := p.topo.PathFor(req.SrcNode, req.DstNode, req.Rail, plane, spine, plane)
	if err != nil {
		return nil, err
	}
	return &accl.Assignment{Path: path, Sport: uint16(spine)}, nil
}

func (p *plannedProvider) Repair(req accl.ConnRequest, old *accl.Assignment) (*accl.Assignment, error) {
	return p.Connect(req)
}

func (p *plannedProvider) Release(*accl.Assignment) {}

// rig is a miniature training job: 4 nodes, iterative compute+allreduce,
// with per-node compute delays and a C4D fleet watching.
type rig struct {
	eng    *sim.Engine
	topo   *topo.Topology
	net    *netsim.Network
	comm   *accl.Communicator
	master *Master
	fleet  *Fleet
	nodes  []int

	computeExtra map[int]sim.Time // per-node straggler injection
	iterations   int
	stopped      bool
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	tp := topo.MustNew(topo.PaperTestbed())
	net := netsim.New(eng, tp, netsim.DefaultConfig())
	master := NewMaster(cfg)
	fleet := NewFleet(eng, master)
	nodes := []int{0, 2, 4, 6}
	comm, err := accl.NewCommunicator(accl.Config{
		Engine: eng, Net: net, Provider: &plannedProvider{topo: tp},
		Sink: fleet, Rand: sim.NewRand(5),
	}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		eng: eng, topo: tp, net: net, comm: comm,
		master: master, fleet: fleet, nodes: nodes,
		computeExtra: map[int]sim.Time{},
	}
}

// run starts the BSP iteration loop: 100 ms compute (plus per-node extra),
// then a 64 MiB allreduce, then the next iteration.
func (r *rig) run(until sim.Time) {
	const compute = 100 * sim.Millisecond
	const size = 64 << 20
	var iterate func()
	iterate = func() {
		if r.stopped {
			return
		}
		now := r.eng.Now()
		arr := make([]sim.Time, len(r.nodes))
		for i, n := range r.nodes {
			arr[i] = now + compute + r.computeExtra[n]
		}
		r.comm.AllReduce(size, arr, func(accl.Result) {
			r.iterations++
			iterate()
		})
	}
	iterate()
	r.eng.RunUntil(until)
}

func findEvent(events []Event, syn Syndrome, node int) *Event {
	for i := range events {
		if events[i].Syndrome == syn && events[i].Node == node {
			return &events[i]
		}
	}
	return nil
}

func TestHealthyRunProducesNoEvents(t *testing.T) {
	r := newRig(t, Config{})
	r.run(2 * sim.Minute)
	if r.iterations < 100 {
		t.Fatalf("only %d iterations completed", r.iterations)
	}
	if evs := r.master.Events(); len(evs) != 0 {
		t.Fatalf("healthy run produced events: %v", evs)
	}
}

func TestDetectNonCommHang(t *testing.T) {
	r := newRig(t, Config{})
	var faultAt sim.Time
	r.eng.Schedule(20*sim.Second, func() {
		faultAt = r.eng.Now()
		r.comm.SetCrashed(4, true)
	})
	r.run(3 * sim.Minute)
	ev := findEvent(r.master.Events(), NonCommHang, 4)
	if ev == nil {
		t.Fatalf("crashed node not detected; events: %v", r.master.Events())
	}
	latency := ev.Time - faultAt
	if latency > 90*sim.Second {
		t.Fatalf("detection latency %v, want tens of seconds", latency)
	}
	// No other node may be blamed for a hang.
	for _, e := range r.master.Events() {
		if (e.Syndrome == NonCommHang || e.Syndrome == CommHang) && e.Node != 4 {
			t.Fatalf("innocent node blamed: %v", e)
		}
	}
}

func TestDetectCommHangOnNICBlackout(t *testing.T) {
	r := newRig(t, Config{})
	var faultAt sim.Time
	r.eng.Schedule(20*sim.Second, func() {
		faultAt = r.eng.Now()
		// Node 4 loses both physical ports on rail 0: flows stall, the
		// operation hangs mid-flight.
		for plane := 0; plane < topo.Planes; plane++ {
			port := r.topo.PortAt(4, 0, plane)
			r.net.SetLinkUp(port.Up, false)
			r.net.SetLinkUp(port.Down, false)
		}
	})
	r.run(3 * sim.Minute)
	ev := findEvent(r.master.Events(), CommHang, 4)
	if ev == nil {
		t.Fatalf("NIC blackout not localized; events: %v", r.master.Events())
	}
	if ev.Time-faultAt > 2*sim.Minute {
		t.Fatalf("detection latency %v too high", ev.Time-faultAt)
	}
}

func TestDetectNonCommSlowStraggler(t *testing.T) {
	r := newRig(t, Config{})
	r.eng.Schedule(15*sim.Second, func() {
		r.computeExtra[6] = 150 * sim.Millisecond // node 6 becomes 2.5x slower
	})
	r.run(2 * sim.Minute)
	ev := findEvent(r.master.Events(), NonCommSlow, 6)
	if ev == nil {
		t.Fatalf("straggler not detected; events: %v", r.master.Events())
	}
	for _, e := range r.master.Events() {
		if e.Syndrome == NonCommSlow && e.Node != 6 {
			t.Fatalf("innocent node blamed as straggler: %v", e)
		}
	}
}

func TestDetectCommSlowRxDegrade(t *testing.T) {
	r := newRig(t, Config{})
	r.eng.Schedule(15*sim.Second, func() {
		// Node 2's receive side degrades to 1/8 on both planes.
		for plane := 0; plane < topo.Planes; plane++ {
			r.net.SetLinkCapacity(r.topo.PortAt(2, 0, plane).Down, 25)
		}
	})
	r.run(2 * sim.Minute)
	// Ring traffic has exactly one connection into node 2 (0->2), so the
	// honest localization is that connection; a row/column verdict needs a
	// fuller matrix (see TestMatrixColumnSlow).
	var hit *Event
	for _, e := range r.master.Events() {
		if e.Syndrome == CommSlow && (e.Node == 2 || e.Peer == 2) {
			e := e
			hit = &e
		}
	}
	if hit == nil {
		t.Fatalf("rx degrade not detected; events: %v", r.master.Events())
	}
	if hit.Scope == ScopeConnection && !(hit.Node == 0 && hit.Peer == 2) {
		t.Fatalf("wrong connection blamed: %v", hit)
	}
	for _, e := range r.master.Events() {
		if e.Syndrome == CommSlow && e.Node != 0 && e.Node != 2 && e.Peer != 2 {
			t.Fatalf("unrelated component blamed: %v", e)
		}
	}
}

func TestDetectCommSlowTxDegrade(t *testing.T) {
	r := newRig(t, Config{})
	r.eng.Schedule(15*sim.Second, func() {
		for plane := 0; plane < topo.Planes; plane++ {
			r.net.SetLinkCapacity(r.topo.PortAt(6, 0, plane).Up, 25)
		}
	})
	r.run(2 * sim.Minute)
	// The only connection out of node 6 is 6->0: a connection-scope
	// finding with source 6 is the correct localization.
	var hit *Event
	for _, e := range r.master.Events() {
		if e.Syndrome == CommSlow && e.Node == 6 {
			e := e
			hit = &e
		}
	}
	if hit == nil {
		t.Fatalf("tx degrade not detected; events: %v", r.master.Events())
	}
	if hit.Scope == ScopeConnection && hit.Peer != 0 {
		t.Fatalf("wrong connection blamed: %v", hit)
	}
}

func TestEventDeduplication(t *testing.T) {
	r := newRig(t, Config{DedupInterval: sim.Hour})
	r.eng.Schedule(15*sim.Second, func() { r.comm.SetCrashed(4, true) })
	r.run(5 * sim.Minute)
	count := 0
	for _, e := range r.master.Events() {
		if e.Syndrome == NonCommHang && e.Node == 4 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("hang reported %d times despite dedup, want 1", count)
	}
}

func TestMasterConfigDefaults(t *testing.T) {
	m := NewMaster(Config{})
	cfg := m.Config()
	if cfg.ReportInterval <= 0 || cfg.HangTimeout <= 0 || cfg.Kappa <= 0 ||
		cfg.RowColFrac <= 0 || cfg.WaitKappa <= 0 || cfg.MinWait <= 0 ||
		cfg.DedupInterval <= 0 || cfg.SmoothingWindows <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// countingDetector wraps a Master, counting interface calls, to pin the
// fleet's skip behavior without peeking at master internals.
type countingDetector struct {
	*Master
	ingests, analyzes int
}

func (c *countingDetector) Ingest(r Report)      { c.ingests++; c.Master.Ingest(r) }
func (c *countingDetector) Analyze(now sim.Time) { c.analyzes++; c.Master.Analyze(now) }

// TestFleetSkipsEmptyPasses is the regression test for the batch hot-path
// fix: a fleet whose agents flushed zero records and whose detector never
// saw any evidence must not run a full analysis pass every tick.
func TestFleetSkipsEmptyPasses(t *testing.T) {
	eng := sim.NewEngine()
	det := &countingDetector{Master: NewMaster(Config{})}
	fleet := NewFleetDetector(eng, det, 0)
	// Register a communicator but never run traffic: the idle head of a
	// deployment (job not started yet).
	fleet.OnCommCreate(accl.CommInfo{Comm: 1, Nodes: []int{0, 1}})
	eng.RunFor(60 * sim.Second)
	if det.analyzes != 0 || det.ingests != 0 {
		t.Fatalf("idle fleet ran %d analyzes / %d ingests, want 0/0", det.analyzes, det.ingests)
	}
	if fleet.SkippedPasses() == 0 {
		t.Fatal("no passes recorded as skipped")
	}
	fleet.Stop()
}

// TestFleetKeepsAnalyzingThroughSilence proves the skip cannot mask a
// hang: once a communicator has been seen, silent ticks still analyze, so
// the hang-timeout detectors fire exactly as before the optimization.
func TestFleetKeepsAnalyzingThroughSilence(t *testing.T) {
	r := newRig(t, Config{})
	r.eng.Schedule(20*sim.Second, func() { r.comm.SetCrashed(4, true) })
	r.run(3 * sim.Minute)
	if ev := findEvent(r.master.Events(), NonCommHang, 4); ev == nil {
		t.Fatalf("hang not detected with empty-pass skip in place; events: %v", r.master.Events())
	}
	if r.master.AnalyzePasses() == 0 {
		t.Fatal("no analysis passes ran")
	}
}

// TestFleetSkipResumesAfterClose covers the idle tail: closing the last
// communicator drops its state, so post-job ticks skip again.
func TestFleetSkipResumesAfterClose(t *testing.T) {
	r := newRig(t, Config{})
	r.run(30 * sim.Second)
	if r.master.AnalyzePasses() == 0 {
		t.Fatal("active run analyzed nothing")
	}
	r.stopped = true
	r.comm.Close()
	// The next tick may still drain records buffered before the close;
	// let it pass, then the deployment must go quiet.
	r.eng.RunFor(6 * sim.Second)
	passes := r.master.AnalyzePasses()
	before := r.fleet.SkippedPasses()
	r.eng.RunFor(60 * sim.Second)
	if r.master.AnalyzePasses() != passes {
		t.Fatalf("closed deployment still analyzing: %d -> %d passes", passes, r.master.AnalyzePasses())
	}
	if r.fleet.SkippedPasses() <= before {
		t.Fatal("post-close ticks not skipped")
	}
}

func TestEventDetectionConversion(t *testing.T) {
	conn := Event{Time: 3 * sim.Second, Comm: 7, Syndrome: CommSlow,
		Scope: ScopeConnection, Node: 1, Peer: 4, Severity: 2.5}
	d := conn.Detection()
	if d.At != conn.Time || d.Comm != 7 || len(d.Suspects) != 2 ||
		d.Suspects[0] != 1 || d.Suspects[1] != 4 {
		t.Fatalf("connection conversion = %+v", d)
	}
	node := Event{Syndrome: NonCommHang, Scope: ScopeNode, Node: 9, Peer: -1}
	if d := node.Detection(); len(d.Suspects) != 1 || d.Suspects[0] != 9 {
		t.Fatalf("node conversion = %+v", d)
	}
	if got := Detections([]Event{conn, node}); len(got) != 2 {
		t.Fatalf("Detections = %v", got)
	}
	if (Detection{Syndrome: CommHang, Suspects: []int{3}}).String() == "" {
		t.Fatal("empty Detection rendering")
	}
}

func TestSubscribeDeliversEvents(t *testing.T) {
	r := newRig(t, Config{})
	var got []Event
	r.master.Subscribe(func(e Event) { got = append(got, e) })
	r.eng.Schedule(10*sim.Second, func() { r.comm.SetCrashed(2, true) })
	r.run(2 * sim.Minute)
	if len(got) == 0 {
		t.Fatal("subscriber received nothing")
	}
	if got[0].Node != 2 {
		t.Fatalf("blamed node %d, want 2", got[0].Node)
	}
}
