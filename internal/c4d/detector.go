package c4d

import (
	"fmt"

	"c4/internal/accl"
	"c4/internal/sim"
)

// Detection is one finding expressed in the streaming vocabulary: the
// instant the threshold crossed, the syndrome, and the set of suspect
// nodes. Where Event is the batch master's per-window verdict (its Time is
// quantized to the reporting tick), a Detection carries the exact firing
// instant, which is what time-to-detect scoring measures.
type Detection struct {
	At       sim.Time
	Comm     int
	Syndrome Syndrome
	Suspects []int
	// Severity is a unitless badness factor (slowdown multiple, stall age
	// in seconds), mirroring Event.Severity.
	Severity float64
	Detail   string
}

func (d Detection) String() string {
	return fmt.Sprintf("[%v] %v suspects %v x%.1f (%s)",
		d.At, d.Syndrome, d.Suspects, d.Severity, d.Detail)
}

// Detection converts a batch finding to the streaming shape: the blamed
// node, plus the peer for connection-scope findings. It lets one scorer
// compare batch and online arms on equal terms.
func (e Event) Detection() Detection {
	suspects := []int{e.Node}
	if e.Scope == ScopeConnection && e.Peer >= 0 {
		suspects = append(suspects, e.Peer)
	}
	return Detection{
		At: e.Time, Comm: e.Comm, Syndrome: e.Syndrome,
		Suspects: suspects, Severity: e.Severity, Detail: e.Detail,
	}
}

// Detections converts a batch event stream wholesale.
func Detections(events []Event) []Detection {
	out := make([]Detection, len(events))
	for i, e := range events {
		out[i] = e.Detection()
	}
	return out
}

// Detector is the analysis half of a C4D deployment, extracted so the
// reporting fleet can drive either the batch master (windowed Analyze
// passes) or a test double, and so callers can reason about both the
// batch and the streaming analyzers through one vocabulary.
type Detector interface {
	// RegisterComm and UnregisterComm track communicator membership.
	RegisterComm(accl.CommInfo)
	UnregisterComm(comm int)
	// Ingest absorbs one agent report into detector state.
	Ingest(Report)
	// Analyze runs the detectors over everything ingested since the last
	// pass.
	Analyze(now sim.Time)
	// Active reports whether the detector holds evidence that could still
	// ripen into a finding without any further records — the guard that
	// lets the fleet skip analysis passes over a fully idle deployment
	// while a silent (hanging) job still gets its timeout checks.
	Active() bool
}
