package analysis

import (
	"fmt"
	"sort"
)

// RunAnalyzers applies each analyzer to each package (packages must be
// in dependency order, as Load returns them — the deprecated-use
// analyzer accumulates declarations across packages), applies the
// //c4vet:allow suppression layer, and returns the surviving findings
// sorted by position. An error means an analyzer or the driver itself
// failed, not that findings exist.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		all = append(all, applyDirectives(diags, collectDirectives(pkg, known))...)
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all, nil
}
