package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TimeConfuse flags explicit conversions between sim.Time and
// time.Duration inside internal/* simulation packages. Both types are
// int64 nanoseconds, so the compiler happily converts one into the
// other — but sim.Time is an absolute virtual-clock instant and
// time.Duration a relative span, and a bare conversion silently turns
// one into the other (scheduling an event "at 5s" instead of "5s from
// now", or reporting an instant as an elapsed time). The sanctioned
// bridges carry the intent: (sim.Time).Duration() for the outbound
// direction and sim.FromDuration for the inbound one, both defined in
// internal/sim — which is exactly why that package is exempt here.
var TimeConfuse = &Analyzer{
	Name: "timeconfuse",
	Doc:  "bare sim.Time <-> time.Duration conversions; use (sim.Time).Duration() / sim.FromDuration so instant-vs-span intent stays visible",
	Run:  runTimeConfuse,
}

func runTimeConfuse(pass *Pass) error {
	path := pass.Pkg.Path()
	if !isInternalPkg(path) || strings.HasSuffix(path, "internal/sim") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			// A CallExpr whose Fun denotes a type is a conversion.
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			target := tv.Type
			operand := pass.TypesInfo.Types[call.Args[0]].Type
			if operand == nil {
				return true
			}
			switch {
			case isDurationType(target) && isSimTime(operand):
				pass.Reportf(call.Pos(),
					"time.Duration(...) of a sim.Time reinterprets a virtual-clock instant as a span; use (sim.Time).Duration() to make the bridge explicit")
			case isSimTime(target) && isDurationType(operand):
				pass.Reportf(call.Pos(),
					"sim.Time(...) of a time.Duration reinterprets a span as a virtual-clock instant; use sim.FromDuration to make the bridge explicit")
			}
			return true
		})
	}
	return nil
}

// isSimTime reports whether t is the sim virtual-clock type: a named
// type Time declared in an internal/sim package.
func isSimTime(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/sim")
}

// isDurationType reports whether t is package time's Duration.
func isDurationType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}
