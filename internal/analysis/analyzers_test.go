package analysis_test

import (
	"testing"

	"c4/internal/analysis"
	"c4/internal/analysis/analysistest"
)

// The fixture suite: every custom analyzer proves both that it still
// fires (the acceptance criterion — each fixture contains live hits) and
// that a //c4vet:allow with a reason silences it.

func TestMapIterFloat(t *testing.T) {
	analysistest.Run(t, analysis.MapIterFloat, "c4/internal/fixture", "mapiterfloat.go")
}

// TestMapIterFloatCatchesSteeringRegression pins the acceptance
// criterion that reintroducing the PR 4 map-order accumulation in
// steering.Breakdown.DiagnosisTotal fails lint: the fixture is that
// function's pre-fix body, so if this shape stops firing, `make lint`
// has lost the guard.
func TestMapIterFloatCatchesSteeringRegression(t *testing.T) {
	analysistest.Run(t, analysis.MapIterFloat, "c4/internal/steering", "steering_regress.go")
}

func TestWallClock(t *testing.T) {
	analysistest.Run(t, analysis.WallClock, "c4/internal/fixture", "wallclock.go")
}

func TestWallClockExemptsCommandPackages(t *testing.T) {
	analysistest.Run(t, analysis.WallClock, "c4/cmd/fixture", "wallclock_exempt.go")
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, analysis.GlobalRand, "c4/internal/fixture", "globalrand.go")
}

func TestGlobalRandExemptsSimPackage(t *testing.T) {
	analysistest.Run(t, analysis.GlobalRand, "c4/internal/sim", "globalrand_sim.go")
}

func TestTimeConfuse(t *testing.T) {
	analysistest.RunWithDeps(t, analysis.TimeConfuse, "c4/internal/fixture",
		[]analysistest.Dep{{Path: "c4/internal/sim", Files: []string{"simdep/sim.go"}}},
		"timeconfuse.go")
}

func TestTimeConfuseExemptsSimPackage(t *testing.T) {
	analysistest.Run(t, analysis.TimeConfuse, "c4/internal/sim", "timeconfuse_sim.go")
}

func TestSinkErr(t *testing.T) {
	analysistest.Run(t, analysis.SinkErr, "c4/internal/fixture", "sinkerr.go")
}

func TestCtxLeak(t *testing.T) {
	analysistest.Run(t, analysis.CtxLeak, "c4/internal/fixture", "ctxleak.go")
}

func TestDeprecated(t *testing.T) {
	analysistest.Run(t, analysis.Deprecated(), "c4/internal/fixture", "deprecated.go")
}
