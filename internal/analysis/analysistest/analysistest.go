// Package analysistest runs a single analyzer over fixture files and
// checks its findings against // want annotations, mirroring (a useful
// subset of) golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line states its expected findings with one or more quoted
// regular expressions:
//
//	sum += v // want `order-sensitive` `second finding on this line`
//
// Both `raw` and "interpreted" quoting work. Every finding must match a
// want on its line and every want must be matched, including findings
// from the //c4vet:allow directive layer (pseudo-analyzer "allow"), so
// fixtures can prove both the hit path and the suppression path.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"c4/internal/analysis"
)

// Run checks the analyzer against the named fixture files (paths
// relative to the test's testdata directory), type-checked together as
// one package under pkgPath. Path-gated analyzers (wallclock,
// globalrand) key off pkgPath, so fixtures choose it to opt in or out.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string, fixtures ...string) {
	t.Helper()
	RunWithDeps(t, a, pkgPath, nil, fixtures...)
}

// Dep is one dependency fixture package for RunWithDeps: fixture files
// type-checked under their own import path so the package under test can
// import them. Listed deps may import earlier ones.
type Dep struct {
	Path  string
	Files []string
}

// RunWithDeps is Run with dependency fixture packages, for analyzers
// whose triggers are typed against another package's declarations (e.g.
// timeconfuse keying off sim.Time). Only the package under test is
// analyzed and only its fixtures carry // want annotations.
func RunWithDeps(t *testing.T, a *analysis.Analyzer, pkgPath string, deps []Dep, fixtures ...string) {
	t.Helper()
	fset := token.NewFileSet()
	readFixtures := func(names []string) []analysis.FixtureFile {
		var srcs []analysis.FixtureFile
		for _, fx := range names {
			path := filepath.Join("testdata", fx)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			srcs = append(srcs, analysis.FixtureFile{Name: path, Src: string(data)})
		}
		return srcs
	}
	var fpkgs []analysis.FixturePkg
	for _, d := range deps {
		fpkgs = append(fpkgs, analysis.FixturePkg{Path: d.Path, Files: readFixtures(d.Files)})
	}
	srcs := readFixtures(fixtures)
	fpkgs = append(fpkgs, analysis.FixturePkg{Path: pkgPath, Files: srcs})
	checked, err := analysis.CheckFixtureModule(fset, fpkgs)
	if err != nil {
		t.Fatalf("type-checking fixtures for %s: %v", pkgPath, err)
	}
	// Only the package under test is analyzed; deps exist for its types.
	pkgs := checked[len(checked)-1:]
	var wants []*want
	for _, s := range srcs {
		ws, err := parseWants(s.Name, s.Src)
		if err != nil {
			t.Fatalf("parsing want annotations: %v", err)
		}
		wants = append(wants, ws...)
	}

	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts // want annotations line by line. Each quoted
// token after "want" is one expected-finding regexp.
func parseWants(file, src string) ([]*want, error) {
	var out []*want
	for i, line := range strings.Split(src, "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, pat := range splitQuoted(m[1]) {
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, err
			}
			out = append(out, &want{file: file, line: i + 1, re: re})
		}
	}
	return out, nil
}

// splitQuoted parses a sequence of back- or double-quoted strings.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote honoring escapes, then Unquote.
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return out
			}
			if q, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, q)
			}
			s = s[end+1:]
		default:
			return out
		}
	}
}
