package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Deprecated returns the deprecated-use analyzer: any reference to a
// declaration whose doc comment carries a standard "Deprecated:"
// paragraph is flagged, so new call sites of retired APIs (the PR 7
// positional constructors c4.NewEnv/NewNetwork/NewC4PMaster) fail CI
// instead of accreting. The analyzer accumulates deprecated declarations
// as packages are analyzed; because the driver visits packages in
// dependency order, a package's deprecations are always registered
// before its dependents are checked. Each driver run needs a fresh
// instance, hence the constructor.
func Deprecated() *Analyzer {
	registry := map[types.Object]string{}
	a := &Analyzer{
		Name: "deprecated",
		Doc:  "references to declarations documented as Deprecated:",
	}
	a.Run = func(pass *Pass) error {
		spans := registerDeprecated(pass, registry)
		inDeprecatedDecl := func(p token.Pos) bool {
			for _, s := range spans {
				if s.lo <= p && p < s.hi {
					return true
				}
			}
			return false
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				note, isDep := registry[pass.TypesInfo.Uses[id]]
				if !isDep {
					return true
				}
				// References from inside another deprecated
				// declaration are fine: the retired APIs may
				// lean on each other until deleted together.
				if inDeprecatedDecl(id.Pos()) {
					return true
				}
				pass.Reportf(id.Pos(), "use of deprecated %s: %s", id.Name, note)
				return true
			})
		}
		return nil
	}
	return a
}

type posSpan struct{ lo, hi token.Pos }

// registerDeprecated records this package's Deprecated: declarations in
// the registry and returns their source spans.
func registerDeprecated(pass *Pass, registry map[types.Object]string) []posSpan {
	var spans []posSpan
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if note, ok := deprecationNote(d.Doc); ok {
					if obj := pass.TypesInfo.Defs[d.Name]; obj != nil {
						registry[obj] = note
						spans = append(spans, posSpan{d.Pos(), d.End()})
					}
				}
			case *ast.GenDecl:
				declNote, declDep := deprecationNote(d.Doc)
				for _, sp := range d.Specs {
					note, dep := declNote, declDep
					var names []*ast.Ident
					switch sp := sp.(type) {
					case *ast.TypeSpec:
						if n, ok := deprecationNote(sp.Doc); ok {
							note, dep = n, true
						}
						names = []*ast.Ident{sp.Name}
					case *ast.ValueSpec:
						if n, ok := deprecationNote(sp.Doc); ok {
							note, dep = n, true
						}
						names = sp.Names
					}
					if !dep {
						continue
					}
					for _, name := range names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							registry[obj] = note
						}
					}
					spans = append(spans, posSpan{d.Pos(), d.End()})
				}
			}
		}
	}
	return spans
}

// deprecationNote extracts the first line of a doc comment's
// "Deprecated:" paragraph, following the godoc convention that the
// marker starts a line.
func deprecationNote(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}
