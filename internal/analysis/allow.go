package analysis

import (
	"go/token"
	"strings"
)

// Suppression directives. A finding is silenced by a comment of the form
//
//	//c4vet:allow <analyzer> <reason...>
//
// placed either at the end of the offending line or on its own line
// immediately above. The reason is mandatory: an allow without one is
// itself a finding, as is one naming an unknown analyzer or one that
// suppresses nothing. Directive findings are reported under the
// pseudo-analyzer name "allow" and cannot themselves be suppressed —
// the escape hatch must stay auditable.

// AllowName is the pseudo-analyzer name used for directive diagnostics.
const AllowName = "allow"

const allowPrefix = "//c4vet:allow"

type directive struct {
	pos    token.Position
	name   string // analyzer being suppressed
	reason string
	bad    string // non-empty: the directive itself is malformed
	used   bool
}

// collectDirectives scans one package's comments for allow directives.
// known maps valid analyzer names; malformed directives come back with
// bad set.
func collectDirectives(pkg *Package, known map[string]bool) []*directive {
	var out []*directive
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				d := &directive{pos: pkg.Fset.Position(c.Pos())}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //c4vet:allowXyz token, not ours
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "allow directive names no analyzer (format: //c4vet:allow <analyzer> <reason>)"
				case !known[fields[0]]:
					d.name = fields[0]
					d.bad = "allow directive names unknown analyzer " + quoted(fields[0])
				case len(fields) == 1:
					d.name = fields[0]
					d.bad = "allow directive for " + quoted(fields[0]) + " has no reason; suppressions must say why"
				default:
					d.name = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func quoted(s string) string { return `"` + s + `"` }

// applyDirectives filters diags through the package's directives: a
// well-formed directive suppresses same-named findings on its own line
// (end-of-line placement), or — only when its own line has none — on the
// line below (standalone comment above the finding). A directive never
// covers both lines, so an end-of-line allow cannot leak onto the next
// statement. It returns the surviving findings plus one finding per
// malformed or unused directive.
func applyDirectives(diags []Diagnostic, dirs []*directive) []Diagnostic {
	matches := func(d *directive, diag Diagnostic, line int) bool {
		return d.bad == "" && d.name == diag.Analyzer &&
			d.pos.Filename == diag.Pos.Filename && line == diag.Pos.Line
	}
	suppressed := make([]bool, len(diags))
	for _, d := range dirs {
		for i, diag := range diags {
			if matches(d, diag, d.pos.Line) {
				d.used = true
				suppressed[i] = true
			}
		}
	}
	for _, d := range dirs {
		if d.used {
			continue
		}
		// One directive can cover several findings on the line below
		// (e.g. two rand calls in one expression) but never both its
		// own line and the next.
		for i, diag := range diags {
			if matches(d, diag, d.pos.Line+1) {
				suppressed[i] = true
				d.used = true
			}
		}
	}
	var out []Diagnostic
	for i, diag := range diags {
		if !suppressed[i] {
			out = append(out, diag)
		}
	}
	for _, d := range dirs {
		switch {
		case d.bad != "":
			out = append(out, Diagnostic{Analyzer: AllowName, Pos: d.pos, Message: d.bad})
		case !d.used:
			out = append(out, Diagnostic{Analyzer: AllowName, Pos: d.pos,
				Message: "allow directive for " + quoted(d.name) + " suppresses nothing; delete it"})
		}
	}
	return out
}
