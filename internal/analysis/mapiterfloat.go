package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIterFloat flags order-sensitive accumulation inside `range` over a
// map. Go randomizes map iteration order per run, so any fold whose
// result depends on visit order breaks byte-identical replay: float
// addition and multiplication are not associative under rounding, string
// concatenation is order-dependent, and an appended slice inherits the
// iteration order unless it is sorted afterwards. This exact bug shipped
// twice — c4d.AnalyzeDelayMatrix (PR 1) and
// steering.Breakdown.DiagnosisTotal (PR 4) — each found by hand via a
// replay mismatch.
//
// Deterministic folds are not flagged: integer accumulation (exact, so
// commutative), writes keyed by the iteration key (each key visited
// once), accumulators declared inside the loop body, and appends whose
// target is sorted later in the same function.
var MapIterFloat = &Analyzer{
	Name: "mapiterfloat",
	Doc:  "order-sensitive accumulation (float/string fold, unsorted append) inside range over a map",
	Run:  runMapIterFloat,
}

func runMapIterFloat(pass *Pass) error {
	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			return
		}
		enclosing := enclosingFuncBody(stack)
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			checkMapRangeAssign(pass, rs, enclosing, st)
			return true
		})
	})
	return nil
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, enclosing ast.Node, st *ast.AssignStmt) {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := st.Lhs[0]
		if root := accumulatorRoot(pass, rs, lhs); root != nil {
			switch {
			case isFloat(pass.TypesInfo.TypeOf(lhs)):
				pass.Reportf(st.Pos(),
					"float %s on %q inside range over map folds in randomized iteration order; iterate sorted keys (replay invariant, cf. the c4d/steering map-order bugs)",
					st.Tok, root.Name)
			case st.Tok == token.ADD_ASSIGN && isString(pass.TypesInfo.TypeOf(lhs)):
				pass.Reportf(st.Pos(),
					"string += on %q inside range over map concatenates in randomized iteration order; iterate sorted keys",
					root.Name)
			}
		}
	case token.ASSIGN:
		for i, lhs := range st.Lhs {
			if i >= len(st.Rhs) {
				break
			}
			checkMapRangePlainAssign(pass, rs, enclosing, st, lhs, st.Rhs[i])
		}
	}
}

// checkMapRangePlainAssign handles the `x = x + v` spelling of a fold
// and `x = append(x, ...)`.
func checkMapRangePlainAssign(pass *Pass, rs *ast.RangeStmt, enclosing ast.Node, st *ast.AssignStmt, lhs, rhs ast.Expr) {
	root := accumulatorRoot(pass, rs, lhs)
	if root == nil {
		return
	}
	obj := pass.TypesInfo.ObjectOf(root)

	if call, ok := rhs.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
				return
			}
			if sortedAfter(pass, enclosing, rs, obj) {
				return
			}
			pass.Reportf(st.Pos(),
				"append to %q inside range over map builds a slice in randomized iteration order and it is never sorted afterwards; sort it or iterate sorted keys",
				root.Name)
			return
		}
	}

	if bin, ok := rhs.(*ast.BinaryExpr); ok {
		if bin.Op != token.ADD && bin.Op != token.MUL && bin.Op != token.SUB && bin.Op != token.QUO {
			return
		}
		if !refersTo(pass, bin.X, obj) && !refersTo(pass, bin.Y, obj) {
			return
		}
		switch {
		case isFloat(pass.TypesInfo.TypeOf(lhs)):
			pass.Reportf(st.Pos(),
				"float %s = %s %s ... inside range over map folds in randomized iteration order; iterate sorted keys",
				root.Name, root.Name, bin.Op)
		case bin.Op == token.ADD && isString(pass.TypesInfo.TypeOf(lhs)):
			pass.Reportf(st.Pos(),
				"string %s = %s + ... inside range over map concatenates in randomized iteration order; iterate sorted keys",
				root.Name, root.Name)
		}
	}
}

// accumulatorRoot returns the base identifier of lhs when it names an
// order-sensitive accumulator: declared outside the range statement and
// not a per-key write (an index expression keyed by the loop's own key
// variable touches each element once, so order cannot matter).
func accumulatorRoot(pass *Pass, rs *ast.RangeStmt, lhs ast.Expr) *ast.Ident {
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if id, ok := ix.Index.(*ast.Ident); ok {
			if key, ok := rs.Key.(*ast.Ident); ok &&
				pass.TypesInfo.ObjectOf(id) == pass.TypesInfo.ObjectOf(key) &&
				pass.TypesInfo.ObjectOf(id) != nil {
				return nil
			}
		}
	}
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return nil
	}
	if rs.Pos() <= obj.Pos() && obj.Pos() < rs.End() {
		return nil // declared inside the loop: reset every iteration
	}
	return root
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call after the range statement within the same enclosing function — in
// which case the iteration-ordered append is made deterministic before
// anyone observes it.
func sortedAfter(pass *Pass, enclosing ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	if enclosing == nil || obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		f := funcObj(pass.TypesInfo, call.Fun)
		if f == nil || f.Pkg() == nil {
			return true
		}
		pkg := f.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && pass.TypesInfo.ObjectOf(root) == obj {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// refersTo reports whether e's base identifier resolves to obj.
func refersTo(pass *Pass, e ast.Expr, obj types.Object) bool {
	root := rootIdent(e)
	return root != nil && obj != nil && pass.TypesInfo.ObjectOf(root) == obj
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration in the stack, or nil at package scope.
func enclosingFuncBody(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if n, okn := t.(*types.Named); okn {
			b, ok = n.Underlying().(*types.Basic)
		}
	}
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if n, okn := t.(*types.Named); okn {
			b, ok = n.Underlying().(*types.Basic)
		}
	}
	return ok && b.Info()&types.IsString != 0
}
