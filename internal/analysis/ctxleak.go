package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLeak flags context.Background()/context.TODO() calls in functions
// that already have a Context available — a Context parameter anywhere
// in the enclosing function stack, or an *http.Request (whose
// r.Context() carries the server's cancellation). PR 7 threaded Context
// through the runner/executor layers precisely so cancellation reaches
// the engine's event loop; a fresh Background() severs that chain and
// the work it guards becomes uncancellable.
//
// The nil-default idiom is not flagged: an assignment guarded by
// `if ctx == nil` substitutes Background for an absent caller context
// rather than discarding a live one. Deliberate detachment — e.g. the
// serve daemon's session runs, which must outlive the HTTP request that
// started them — carries a //c4vet:allow with the reason.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "context.Background()/TODO() in code that already has a Context in scope",
	Run:  runCtxLeak,
}

func runCtxLeak(pass *Pass) error {
	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		f := funcObj(pass.TypesInfo, call.Fun)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" {
			return
		}
		if f.Name() != "Background" && f.Name() != "TODO" {
			return
		}
		source := ctxInScope(pass, stack)
		if source == "" {
			return
		}
		if isNilCtxFallback(pass, stack) {
			return
		}
		pass.Reportf(call.Pos(),
			"context.%s() in a function that already has a Context (%s); derive from it so cancellation propagates, or //c4vet:allow ctxleak with the detach reason",
			f.Name(), source)
	})
	return nil
}

// ctxInScope reports how the enclosing function stack can reach a live
// Context: "" if it cannot, otherwise a description of the source.
// Closures see their parents' parameters, so every enclosing function
// literal and declaration is considered.
func ctxInScope(pass *Pass, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		for _, field := range ft.Params.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if isContextType(t) {
				return "param " + fieldName(field)
			}
			if isHTTPRequestPtr(t) {
				return fieldName(field) + ".Context()"
			}
		}
	}
	return ""
}

// isNilCtxFallback reports whether the call sits inside an
// `if <ctx> == nil { ... }` guard for a Context-typed variable.
func isNilCtxFallback(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifst, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		bin, ok := ifst.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.EQL {
			continue
		}
		x, y := bin.X, bin.Y
		if isNilIdent(pass, x) {
			x, y = y, x
		}
		if !isNilIdent(pass, y) {
			continue
		}
		if id, ok := x.(*ast.Ident); ok && isContextType(pass.TypesInfo.TypeOf(id)) {
			return true
		}
	}
	return false
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

func fieldName(f *ast.Field) string {
	if len(f.Names) > 0 {
		return f.Names[0].Name
	}
	return "_"
}
