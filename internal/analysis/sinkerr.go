package analysis

import (
	"go/ast"
	"go/types"
)

// sinkErrMethods are the telemetry-plumbing method shapes whose error
// results must not be dropped: a swallowed error here silently truncates
// a record stream that downstream triage assumes is complete. This is
// the PR 7 StreamWriter bug — its encoder errors vanished and replay
// diverged from the live run with no signal.
var sinkErrMethods = map[string]bool{
	"Flush":        true,
	"EncodeRecord": true,
	"Sink":         true,
}

// SinkErr flags statements that discard the error result of a
// Flush/EncodeRecord/Sink-shaped call: a bare call statement, defer, go,
// or an assignment to blanks only. Methods that return no error (e.g.
// csv.Writer.Flush, http.Flusher.Flush) are not flagged.
var SinkErr = &Analyzer{
	Name: "sinkerr",
	Doc:  "discarded error results from Flush/EncodeRecord/Sink-shaped telemetry methods",
	Run:  runSinkErr,
}

func runSinkErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 && allBlank(st.Lhs) {
					call, _ = st.Rhs[0].(*ast.CallExpr)
				}
			}
			if call == nil {
				return true
			}
			f := funcObj(pass.TypesInfo, call.Fun)
			if f == nil || !sinkErrMethods[f.Name()] {
				return true
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				return true
			}
			if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s discarded; a dropped telemetry error silently truncates the stream — check it or sticky-propagate (PR 7 StreamWriter bug)",
				qualifiedName(f))
			return true
		})
	}
	return nil
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// qualifiedName renders receiver.Method or pkg.Func for diagnostics.
func qualifiedName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), types.RelativeTo(f.Pkg())) + "." + f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}
