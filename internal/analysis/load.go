package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Files []*ast.File
	Fset  *token.FileSet
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load discovers the packages matching the patterns (relative to dir,
// "./..." by default), parses their non-test Go files and type-checks
// them in dependency order. Test files are not loaded: the invariants
// c4vet guards are about simulation code, and `go vet` already covers
// the test variants for the stock checks.
//
// Imports between loaded packages resolve to the loaded results; all
// other imports (the standard library) are type-checked from source via
// go/importer, which works offline. Cgo is disabled for that importer so
// packages like net resolve to their pure-Go form.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(listed)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// The source importer reads build.Default; with cgo off, cgo-using
	// stdlib packages fall back to their portable implementations,
	// which is all type checking needs.
	build.Default.CgoEnabled = false
	base := importer.ForCompiler(fset, "source", nil)
	imp := &moduleImporter{loaded: map[string]*types.Package{}, fallback: base}

	var pkgs []*Package
	for _, lp := range order {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", filepath.Join(lp.Dir, name), err)
			}
			files = append(files, f)
		}
		pkg, err := checkFiles(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
		}
		pkg.Dir = lp.Dir
		pkg.Name = lp.Name
		imp.loaded[lp.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkFiles type-checks one package's parsed files under the given
// import path. The path is significant: path-gated analyzers (wallclock,
// globalrand) key off it, which is also how test fixtures opt in.
func checkFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%d type errors, first: %v", len(typeErrs), typeErrs[0])
	}
	return &Package{Path: path, Files: files, Fset: fset, Types: tpkg, Info: info}, nil
}

// FixtureFile is one in-memory source file for CheckFixtureFiles.
type FixtureFile struct {
	Name string
	Src  string
}

// CheckFixtureFiles parses and type-checks in-memory fixture files as
// one package under the given import path; the analysistest helper and
// driver tests use it to build packages without a module on disk.
// Imports resolve from source (stdlib only).
func CheckFixtureFiles(fset *token.FileSet, path string, fixtures []FixtureFile) (*Package, error) {
	return CheckFixtureFilesWithDeps(fset, path, fixtures, nil)
}

// FixturePkg is one fixture package of a multi-package fixture module.
type FixturePkg struct {
	Path  string
	Files []FixtureFile
}

// CheckFixtureModule type-checks fixture packages in dependency order
// with one shared importer, so a stdlib package referenced by several of
// them resolves to the one *types.Package (two importer instances would
// each load their own "time", and types from one are not assignable to
// the other's). Later packages may import earlier ones.
func CheckFixtureModule(fset *token.FileSet, fpkgs []FixturePkg) ([]*Package, error) {
	build.Default.CgoEnabled = false
	imp := &moduleImporter{loaded: map[string]*types.Package{}, fallback: importer.ForCompiler(fset, "source", nil)}
	var out []*Package
	for _, fp := range fpkgs {
		var files []*ast.File
		for _, fx := range fp.Files {
			f, err := parser.ParseFile(fset, fx.Name, fx.Src, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := checkFiles(fset, fp.Path, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", fp.Path, err)
		}
		imp.loaded[fp.Path] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// CheckFixtureFilesWithDeps is CheckFixtureFiles with imports of the
// given already-checked packages resolving to those results, so tests
// can build multi-package fixtures (e.g. cross-package deprecation).
func CheckFixtureFilesWithDeps(fset *token.FileSet, path string, fixtures []FixtureFile, deps []*Package) (*Package, error) {
	var files []*ast.File
	for _, fx := range fixtures {
		f, err := parser.ParseFile(fset, fx.Name, fx.Src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	build.Default.CgoEnabled = false
	imp := &moduleImporter{loaded: map[string]*types.Package{}, fallback: importer.ForCompiler(fset, "source", nil)}
	for _, d := range deps {
		imp.loaded[d.Path] = d.Types
	}
	return checkFiles(fset, path, files, imp)
}

// moduleImporter resolves imports of already-loaded module packages and
// falls back to the source importer for everything else.
type moduleImporter struct {
	loaded   map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p := m.loaded[path]; p != nil {
		return p, nil
	}
	return m.fallback.Import(path)
}

func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkgs = append(pkgs, &lp)
	}
	return pkgs, nil
}

// topoSort orders packages dependencies-first, considering only edges
// between listed packages (external edges resolve via the importer).
// The traversal is alphabetical at every level, so the load order — and
// therefore diagnostic order — is deterministic.
func topoSort(pkgs []*listedPkg) ([]*listedPkg, error) {
	byPath := make(map[string]*listedPkg, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	paths := make([]string, 0, len(pkgs))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*listedPkg
	var visit func(path string) error
	visit = func(path string) error {
		p := byPath[path]
		if p == nil || state[path] == done {
			return nil
		}
		if state[path] == visiting {
			return fmt.Errorf("import cycle through %s", path)
		}
		state[path] = visiting
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, p)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}
