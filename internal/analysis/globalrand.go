package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GlobalRand flags math/rand use outside internal/sim's seeded wrapper.
// The process-global source (rand.Intn, rand.Float64, ...) is shared
// mutable state: two goroutines — or two scenarios on the parallel
// runner — interleave draws differently run to run, which is exactly the
// process-global counter bug class fixed in PR 1. Constructing private
// sources (rand.New, rand.NewSource) outside the wrapper is flagged too:
// sim.Rand is where seeding, forking and the distribution helpers live,
// and a bare rand.Rand bypasses the seed-derivation discipline that
// makes replay byte-identical.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "math/rand use outside internal/sim's seeded sim.Rand wrapper",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/sim") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			f, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || f.Pkg() == nil {
				return true
			}
			if p := f.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				pass.Reportf(id.Pos(),
					"math/rand method %s outside internal/sim; route randomness through sim.Rand so streams stay seeded and fork-isolated",
					f.Name())
			} else {
				pass.Reportf(id.Pos(),
					"math/rand.%s outside internal/sim draws from an unseeded or process-global source; use sim.NewRand / (*sim.Rand).Fork (replay invariant)",
					f.Name())
			}
			return true
		})
	}
	return nil
}
