package analysis_test

import (
	"go/token"
	"strings"
	"testing"

	"c4/internal/analysis"
)

// runOn type-checks one in-memory file under path and runs the given
// analyzers through the full driver (suppression layer included).
func runOn(t *testing.T, path, src string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := analysis.CheckFixtureFiles(fset, path, []analysis.FixtureFile{{Name: "src.go", Src: src}})
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return diags
}

func messages(diags []analysis.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Directive hygiene: the escape hatch itself is linted. A reason is
// mandatory, the analyzer name must exist, and a directive that
// suppresses nothing is reported so stale allows cannot accumulate.

func TestAllowDirectiveWithoutReason(t *testing.T) {
	diags := runOn(t, "c4/internal/x", `package x

import "time"

func f() {
	//c4vet:allow wallclock
	_ = time.Now()
}
`, analysis.WallClock)
	out := messages(diags)
	if !strings.Contains(out, `has no reason`) {
		t.Fatalf("want a no-reason directive finding, got:\n%s", out)
	}
	// The reasonless directive must NOT suppress: the wallclock finding
	// survives alongside the directive finding.
	if !strings.Contains(out, "time.Now") {
		t.Fatalf("reasonless directive suppressed the finding:\n%s", out)
	}
}

func TestAllowDirectiveUnknownAnalyzer(t *testing.T) {
	diags := runOn(t, "c4/internal/x", `package x

func f() {
	//c4vet:allow nosuchpass because reasons
	_ = 1
}
`, analysis.WallClock)
	out := messages(diags)
	if !strings.Contains(out, `unknown analyzer "nosuchpass"`) {
		t.Fatalf("want unknown-analyzer finding, got:\n%s", out)
	}
}

func TestAllowDirectiveUnused(t *testing.T) {
	diags := runOn(t, "c4/internal/x", `package x

func f() {
	//c4vet:allow wallclock nothing here actually reads the clock
	_ = 1
}
`, analysis.WallClock)
	out := messages(diags)
	if !strings.Contains(out, `suppresses nothing; delete it`) {
		t.Fatalf("want unused-directive finding, got:\n%s", out)
	}
}

func TestAllowDirectiveEndOfLine(t *testing.T) {
	diags := runOn(t, "c4/internal/x", `package x

import "time"

func f() {
	_ = time.Now() //c4vet:allow wallclock end-of-line placement works too
}
`, analysis.WallClock)
	if len(diags) != 0 {
		t.Fatalf("want clean, got:\n%s", messages(diags))
	}
}

func TestAllowDirectiveDoesNotLeakAcrossLines(t *testing.T) {
	diags := runOn(t, "c4/internal/x", `package x

import "time"

func f() {
	_ = time.Now() //c4vet:allow wallclock only this line
	_ = time.Now()
}
`, analysis.WallClock)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("want exactly the second Now flagged, got:\n%s", messages(diags))
	}
}

// Cross-package deprecation: a dependent package referencing a
// deprecated declaration from its dependency is flagged, which is the
// real c4.NewEnv/NewNetwork/NewC4PMaster scenario.
func TestDeprecatedAcrossPackages(t *testing.T) {
	fset := token.NewFileSet()
	dep, err := analysis.CheckFixtureFiles(fset, "c4/internal/old", []analysis.FixtureFile{{
		Name: "old.go",
		Src: `package old

// New builds a thing.
//
// Deprecated: use Open.
func New() int { return 0 }

// Open is the supported constructor.
func Open() int { return 0 }
`,
	}})
	if err != nil {
		t.Fatalf("type-checking dep: %v", err)
	}
	// Type-check the dependent against the already-checked dependency.
	user, err := analysis.CheckFixtureFilesWithDeps(fset, "c4/internal/user", []analysis.FixtureFile{{
		Name: "user.go",
		Src: `package user

import "c4/internal/old"

func f() int { return old.New() + old.Open() }
`,
	}}, []*analysis.Package{dep})
	if err != nil {
		t.Fatalf("type-checking user: %v", err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{dep, user}, []*analysis.Analyzer{analysis.Deprecated()})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	out := messages(diags)
	if !strings.Contains(out, "use of deprecated New: use Open.") {
		t.Fatalf("want cross-package deprecation finding, got:\n%s", out)
	}
	if strings.Contains(out, "deprecated Open") {
		t.Fatalf("non-deprecated sibling flagged:\n%s", out)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 finding, got:\n%s", out)
	}
}

// Diagnostics come back sorted by position regardless of analyzer
// registration order, so c4vet output is stable.
func TestDiagnosticsSorted(t *testing.T) {
	diags := runOn(t, "c4/internal/x", `package x

import (
	"math/rand"
	"time"
)

func f() {
	_ = rand.Intn(3)
	_ = time.Now()
	_ = rand.Float64()
}
`, analysis.WallClock, analysis.GlobalRand)
	if len(diags) != 3 {
		t.Fatalf("want 3 findings, got:\n%s", messages(diags))
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Line < diags[i-1].Pos.Line {
			t.Fatalf("findings out of order:\n%s", messages(diags))
		}
	}
}
