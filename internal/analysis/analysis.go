// Package analysis is the c4vet static-analysis suite: a small,
// self-contained analyzer framework plus the analyzers that encode this
// repository's determinism and correctness invariants (see README.md
// "Static analysis"). The core contract being guarded is byte-identical
// replay — serial, parallel, one-shot and served runs of the same seed
// must produce the same bytes — and every analyzer here corresponds to a
// bug class that has actually shipped and been fixed by hand before.
//
// The Analyzer/Pass/Diagnostic shape deliberately mirrors
// golang.org/x/tools/go/analysis so the suite can migrate onto the
// upstream framework (multichecker, unitchecker, go vet -vettool) once
// that dependency is vendorable. This build environment is offline with
// an empty module cache, so the loader and driver here are stdlib-only:
// `go list` for package discovery, go/parser + go/types for syntax and
// type information, and a source importer for dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named static check. Run inspects a single package via
// the Pass and reports findings through it; a non-nil error aborts the
// whole c4vet run (reserved for internal failures, not findings).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //c4vet:allow suppression directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and
	// the bug class that motivated it.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass carries the per-package inputs an analyzer works from, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full c4vet analyzer suite. The deprecated-use analyzer
// accumulates cross-package state, so each call returns a fresh instance
// set; a driver run must use one All() result end to end.
func All() []*Analyzer {
	return []*Analyzer{
		MapIterFloat,
		WallClock,
		GlobalRand,
		SinkErr,
		CtxLeak,
		TimeConfuse,
		Deprecated(),
	}
}

// walkStack traverses every node of every file, invoking fn with the
// node and the stack of its ancestors (stack[len-1] == n). It is the
// shared traversal for analyzers that need enclosing-scope context.
func walkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			fn(n, stack)
			return true
		})
	}
}

// funcObj resolves an expression to the *types.Func it refers to (via a
// selector or bare identifier), or nil.
func funcObj(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// rootIdent unwraps selectors, indexing and derefs down to the base
// identifier of an assignable expression (s.total -> s, m[k] -> m),
// returning nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
