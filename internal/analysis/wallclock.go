package analysis

import (
	"go/ast"
	"strings"
)

// wallClockFuncs are the package time entry points that read or schedule
// against the host's wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"After": true, "AfterFunc": true,
}

// WallClock flags wall-clock access inside internal/* simulation
// packages, where the only legal clock is sim.Engine virtual time: a
// wall-clock read threads host timing into simulation state and breaks
// byte-identical replay. Command packages (cmd/*) and the public facade
// are exempt — reporting real elapsed time at the edge is fine — and the
// one intentional in-simulation use, scenario.Runner's wall-time report,
// carries a //c4vet:allow with its reason.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "time.Now/Since/Sleep/Ticker use inside internal simulation packages, where only sim.Engine time is deterministic",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) error {
	if !isInternalPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := funcObj(pass.TypesInfo, sel)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" || !wallClockFuncs[f.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock inside a simulation package; use sim.Engine virtual time (replay invariant)",
				f.Name())
			return true
		})
	}
	return nil
}

// isInternalPkg reports whether the import path lies under an internal/
// tree — the simulation core, as opposed to cmd/* entry points.
func isInternalPkg(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}
