package fixture

import "time"

func clocks() time.Duration {
	start := time.Now()              // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond)     // want `time.Sleep reads the wall clock`
	t := time.NewTicker(time.Second) // want `time.NewTicker reads the wall clock`
	t.Stop()
	d := time.Since(start) // want `time.Since reads the wall clock`
	//c4vet:allow wallclock fixture: documents the suppression path
	_ = time.Now()
	_ = time.Time{} // type reference, not a clock read: no finding
	return d
}
