package fixture

type writer struct{}

func (writer) Flush() error        { return nil }
func (writer) EncodeRecord() error { return nil }
func (writer) Sink() error         { return nil }

type voidFlusher struct{}

func (voidFlusher) Flush() {}

func discards(w writer, v voidFlusher) error {
	w.Flush()            // want `error result of writer.Flush discarded`
	_ = w.EncodeRecord() // want `error result of writer.EncodeRecord discarded`
	defer w.Sink()       // want `error result of writer.Sink discarded`
	go w.Flush()         // want `error result of writer.Flush discarded`
	v.Flush()            // returns no error: no finding
	//c4vet:allow sinkerr fixture: documents the suppression path
	w.Flush()
	err := w.Flush() // checked: no finding
	return err
}
