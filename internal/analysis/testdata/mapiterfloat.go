package fixture

import "sort"

func folds(m map[string]float64) (float64, int) {
	var sum float64
	var n int
	for _, v := range m {
		sum += v // want `float \+= on "sum" inside range over map`
		n++      // int accumulation is exact and commutative: no finding
	}
	for _, v := range m {
		sum = sum + v // want `float sum = sum \+ ... inside range over map`
	}
	for _, v := range m {
		scaled := v * 2 // declared inside the loop: no finding
		_ = scaled
	}
	total := 0.0
	for _, v := range m {
		//c4vet:allow mapiterfloat fixture: documents the suppression path
		total += v
	}
	return sum + total, n
}

func product(m map[string]float64) float64 {
	acc := 1.0
	for _, v := range m {
		acc *= v // want `float \*= on "acc" inside range over map`
	}
	return acc
}

func concat(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v // want `string \+= on "s" inside range over map`
	}
	return s
}

func appends(m map[string]int) ([]string, []string) {
	var unsorted []string
	for k := range m {
		unsorted = append(unsorted, k) // want `append to "unsorted" inside range over map`
	}
	var sortedLater []string
	for k := range m {
		sortedLater = append(sortedLater, k) // sorted below: no finding
	}
	sort.Strings(sortedLater)
	return unsorted, sortedLater
}

func perKey(src map[int]float64, dst map[int]float64) {
	for k, v := range src {
		dst[k] += v // keyed by the loop key, each visited once: no finding
	}
	for k, v := range src {
		dst[k/2] += v // want `float \+= on "dst" inside range over map`
	}
}

type agg struct{ total float64 }

func fields(m map[string]float64) agg {
	var a agg
	for _, v := range m {
		a.total += v // want `float \+= on "a" inside range over map`
	}
	return a
}

func sliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // slices iterate in index order: no finding
	}
	return sum
}
