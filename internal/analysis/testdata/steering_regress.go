package fixture

// The pre-PR 4 shape of steering.Breakdown.DiagnosisTotal, verbatim but
// for names: a float fold over the Diagnosis map in iteration order. Its
// result lands in the bench baseline, which must regenerate
// byte-identically — reintroducing this shape must fail `make lint`.

type faultKind int

type breakdown struct {
	Diagnosis map[faultKind]float64
}

func (b breakdown) diagnosisTotal() float64 {
	var s float64
	for _, v := range b.Diagnosis {
		s += v // want `float \+= on "s" inside range over map`
	}
	return s
}
