package fixture

import "math/rand"

func draws() float64 {
	x := rand.Float64()              // want `math/rand.Float64 outside internal/sim`
	n := rand.Intn(10)               // want `math/rand.Intn outside internal/sim`
	r := rand.New(rand.NewSource(1)) // want `math/rand.New outside internal/sim` `math/rand.NewSource outside internal/sim`
	y := r.Float64()                 // want `math/rand method Float64 outside internal/sim`
	//c4vet:allow globalrand fixture: documents the suppression path
	z := rand.Float64()
	return x + float64(n) + y + z
}
