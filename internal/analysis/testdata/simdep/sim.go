// Package sim is the timeconfuse dependency fixture: the shape of the
// real internal/sim clock API — the named instant type plus the two
// sanctioned bridges — type-checked under the c4/internal/sim import
// path so fixtures can trigger (and avoid) cross-type conversions.
package sim

import "time"

// Time is a virtual-clock instant in nanoseconds since simulation start.
type Time int64

// Second is one virtual second.
const Second Time = 1e9

// Duration bridges a virtual instant to a wall span explicitly.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration bridges a wall span to a virtual instant explicitly.
func FromDuration(d time.Duration) Time { return Time(d) }
