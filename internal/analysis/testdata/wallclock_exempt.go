package fixture

import "time"

// Checked under a cmd/* import path: reporting real elapsed time at the
// edge is legitimate, so none of these produce findings.

func edgeTiming() time.Duration {
	start := time.Now()
	return time.Since(start)
}
