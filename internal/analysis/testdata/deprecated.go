package fixture

// NewThing builds a Thing.
//
// Deprecated: use OpenThing.
func NewThing() int { return 0 }

// OldDefault is the legacy calibration.
//
// Deprecated: use Default.
const OldDefault = 1

// Legacy is the old option struct.
//
// Deprecated: use Options.
type Legacy struct{}

// NewLegacyThing chains deprecated APIs; calls between retired
// declarations are fine until they are deleted together.
//
// Deprecated: use OpenThing.
func NewLegacyThing() int { return NewThing() }

// OpenThing is the supported constructor.
func OpenThing() int { return 0 }

func caller() int {
	v := NewThing() // want `use of deprecated NewThing: use OpenThing.`
	v += OldDefault // want `use of deprecated OldDefault: use Default.`
	var l Legacy    // want `use of deprecated Legacy: use Options.`
	_ = l
	//c4vet:allow deprecated fixture: documents the suppression path
	v += NewThing()
	return v + OpenThing()
}
