package sim

import "time"

// Checked under the internal/sim import path: the bridges themselves
// live here, so bare conversions between the clock types are the
// implementation, not a confusion.

// Time mirrors the real virtual-clock type.
type Time int64

// Duration is the outbound bridge; its body is exactly the conversion
// the analyzer flags everywhere else.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration is the inbound bridge.
func FromDuration(d time.Duration) Time { return Time(d) }
