package fixture

import (
	"time"

	"c4/internal/sim"
)

// Deadline reinterprets an absolute virtual instant as a span.
func Deadline(at sim.Time) time.Duration {
	return time.Duration(at) // want `time.Duration\(\.\.\.\) of a sim.Time`
}

// Horizon reinterprets a span as an absolute virtual instant.
func Horizon(d time.Duration) sim.Time {
	return sim.Time(d) // want `sim.Time\(\.\.\.\) of a time.Duration`
}

// Nested conversions are findings at each confused layer.
func RoundTrip(at sim.Time) sim.Time {
	return sim.Time(time.Duration(at)) // want `sim.Time\(\.\.\.\) of a time.Duration` `time.Duration\(\.\.\.\) of a sim.Time`
}

// Bridged uses the sanctioned conversions: no findings.
func Bridged(at sim.Time, d time.Duration) (time.Duration, sim.Time) {
	return at.Duration(), sim.FromDuration(d)
}

// Raw conversions through the shared underlying type are out of scope:
// the analyzer keys on the two named types, not on int64.
func Raw(at sim.Time) int64 { return int64(at) }

// Suppressed documents the allow path.
func Suppressed(d time.Duration) sim.Time {
	//c4vet:allow timeconfuse fixture: documents the suppression path
	return sim.Time(d)
}
