package fixture

import "math/rand"

// Checked under the internal/sim import path: this is the seeded
// wrapper's home, where constructing rand sources is the whole point.

func newSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
