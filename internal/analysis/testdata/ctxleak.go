package fixture

import (
	"context"
	"net/http"
)

func hasCtx(ctx context.Context) {
	_ = context.Background() // want `context.Background\(\) in a function that already has a Context \(param ctx\)`
	_ = context.TODO()       // want `context.TODO\(\) in a function that already has a Context \(param ctx\)`
	if ctx == nil {
		ctx = context.Background() // nil-default idiom: no finding
	}
	_ = ctx
}

func hasReq(w http.ResponseWriter, r *http.Request) {
	//c4vet:allow ctxleak fixture: documents the suppression path
	_ = context.Background()
	_ = context.TODO() // want `already has a Context \(r.Context\(\)\)`
	_ = w
	_ = r
}

func noCtx() context.Context {
	return context.Background() // nothing in scope: no finding
}

func closure(ctx context.Context) func() {
	return func() {
		_ = context.Background() // want `already has a Context \(param ctx\)`
	}
}
