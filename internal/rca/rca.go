// Package rca implements the background root-cause analysis service of
// the paper's Fig 4: while the steering service isolates and restarts
// immediately ("deferring in-depth root cause analysis to offline
// processing", §II-C), this service correlates the C4D finding with
// server-monitor and network-monitor telemetry and produces a ranked
// root-cause report for the repair queue.
//
// The classifier is Bayesian at heart: Table I's measured cause mix gives
// the prior; the syndrome reshapes it (a non-communication hang cannot be
// a switch failure); and hardware telemetry observed on the blamed
// component within the correlation window multiplies in strong evidence
// (an ECC counter spike all but confirms an ECC/NVLink root cause).
package rca

import (
	"fmt"
	"sort"
	"strings"

	"c4/internal/c4d"
	"c4/internal/cluster"
	"c4/internal/sim"
)

// TelemetryKind is one class of hardware-monitor signal (Fig 4's "Server
// Monitor" and "Network Monitor" feeds).
type TelemetryKind int

// Telemetry signals.
const (
	// TelemetryXidError is a GPU driver Xid event (CUDA-level fault).
	TelemetryXidError TelemetryKind = iota
	// TelemetryECCCount is a GPU memory ECC counter increase.
	TelemetryECCCount
	// TelemetryNVLinkReplay is an NVLink CRC/replay counter increase.
	TelemetryNVLinkReplay
	// TelemetryNICDown reports a NIC port losing carrier.
	TelemetryNICDown
	// TelemetryLinkFlap reports a fabric link flapping.
	TelemetryLinkFlap
	// TelemetryPCIeDowngrade reports a PCIe width/speed downgrade.
	TelemetryPCIeDowngrade
	// TelemetryThermal reports GPU thermal throttling (DVFS).
	TelemetryThermal
)

func (k TelemetryKind) String() string {
	switch k {
	case TelemetryXidError:
		return "xid-error"
	case TelemetryECCCount:
		return "ecc-count"
	case TelemetryNVLinkReplay:
		return "nvlink-replay"
	case TelemetryNICDown:
		return "nic-down"
	case TelemetryLinkFlap:
		return "link-flap"
	case TelemetryPCIeDowngrade:
		return "pcie-downgrade"
	case TelemetryThermal:
		return "thermal-throttle"
	}
	return "unknown"
}

// Telemetry is one monitor observation.
type Telemetry struct {
	Time sim.Time
	Kind TelemetryKind
	Node int // -1 for fabric-side signals
}

// Cause is one ranked hypothesis.
type Cause struct {
	Kind       cluster.FaultKind
	Confidence float64 // normalized to sum 1 across the report
	Evidence   []string
}

// Report is the analyzer's output for one C4D finding.
type Report struct {
	Event  c4d.Event
	Causes []Cause
}

// Top returns the most likely cause.
func (r Report) Top() Cause {
	if len(r.Causes) == 0 {
		return Cause{Kind: cluster.FaultNetworkOther}
	}
	return r.Causes[0]
}

func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "RCA for %v:\n", r.Event)
	for _, c := range r.Causes {
		fmt.Fprintf(&sb, "  %5.1f%%  %v", c.Confidence*100, c.Kind)
		if len(c.Evidence) > 0 {
			fmt.Fprintf(&sb, "  [%s]", strings.Join(c.Evidence, "; "))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Analyzer accumulates telemetry and classifies C4D findings.
type Analyzer struct {
	// Window is how far back telemetry correlates with a finding.
	Window sim.Time

	telemetry []Telemetry
}

// NewAnalyzer creates an analyzer with the given correlation window
// (default 5 minutes).
func NewAnalyzer(window sim.Time) *Analyzer {
	if window <= 0 {
		window = 5 * sim.Minute
	}
	return &Analyzer{Window: window}
}

// Observe records one telemetry event.
func (a *Analyzer) Observe(t Telemetry) {
	a.telemetry = append(a.telemetry, t)
}

// syndromePrior reshapes Table I's cause mix by what the syndrome can
// physically be.
func syndromePrior(s c4d.Syndrome) map[cluster.FaultKind]float64 {
	base := map[cluster.FaultKind]float64{}
	for _, row := range cluster.TableIMix() {
		base[row.Kind] = row.Weight
	}
	switch s {
	case c4d.NonCommHang:
		// The worker never launched its kernel: a compute-side problem.
		base[cluster.FaultACKTimeout] *= 0.1
		base[cluster.FaultNetworkOther] *= 0.1
	case c4d.CommHang:
		// Transport stopped: network-side or a dying GPU mid-transfer.
		base[cluster.FaultCUDAError] *= 0.3
	case c4d.CommSlow:
		// Degradation, not death: NIC/link quality problems dominate.
		base[cluster.FaultCUDAError] *= 0.05
		base[cluster.FaultECCNVLink] *= 0.3
	case c4d.NonCommSlow:
		// Straggling compute: GPU-side.
		base[cluster.FaultACKTimeout] *= 0.05
		base[cluster.FaultNetworkOther] *= 0.05
		base[cluster.FaultNCCLTimeout] *= 0.2
	}
	return base
}

// likelihood multiplies in hardware evidence observed on the blamed
// component inside the window.
func likelihood(kind cluster.FaultKind, hits map[TelemetryKind]int) (float64, []string) {
	mult := 1.0
	var ev []string
	boost := func(tk TelemetryKind, factor float64) {
		if n := hits[tk]; n > 0 {
			mult *= factor * float64(n)
			ev = append(ev, fmt.Sprintf("%v x%d", tk, n))
		}
	}
	switch kind {
	case cluster.FaultCUDAError:
		boost(TelemetryXidError, 8)
		boost(TelemetryThermal, 2)
	case cluster.FaultECCNVLink:
		boost(TelemetryECCCount, 8)
		boost(TelemetryNVLinkReplay, 8)
	case cluster.FaultNCCLTimeout:
		boost(TelemetryThermal, 2)
		boost(TelemetryPCIeDowngrade, 3)
	case cluster.FaultACKTimeout:
		boost(TelemetryNICDown, 8)
		boost(TelemetryLinkFlap, 4)
	case cluster.FaultNetworkOther:
		boost(TelemetryLinkFlap, 6)
		boost(TelemetryNICDown, 3)
	}
	return mult, ev
}

// Classify produces the ranked report for one finding.
func (a *Analyzer) Classify(ev c4d.Event) Report {
	hits := map[TelemetryKind]int{}
	for _, t := range a.telemetry {
		if t.Time > ev.Time || ev.Time-t.Time > a.Window {
			continue
		}
		if t.Node >= 0 && t.Node != ev.Node && t.Node != ev.Peer {
			continue
		}
		hits[t.Kind]++
	}
	prior := syndromePrior(ev.Syndrome)
	// Fold the normalizer over sorted kinds: float addition is not
	// associative under rounding, so accumulating in randomized map
	// order would make Confidence differ in the last ulp between
	// replays of the same run (the c4d/steering map-order bug class).
	kinds := make([]cluster.FaultKind, 0, len(prior))
	for kind := range prior {
		kinds = append(kinds, kind)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var causes []Cause
	var total float64
	for _, kind := range kinds {
		mult, evidence := likelihood(kind, hits)
		score := prior[kind] * mult
		causes = append(causes, Cause{Kind: kind, Confidence: score, Evidence: evidence})
		total += score
	}
	for i := range causes {
		if total > 0 {
			causes[i].Confidence /= total
		}
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].Confidence != causes[j].Confidence {
			return causes[i].Confidence > causes[j].Confidence
		}
		return causes[i].Kind < causes[j].Kind
	})
	return Report{Event: ev, Causes: causes}
}

// Prune drops telemetry older than the window before `now`, bounding
// memory for long-running services.
func (a *Analyzer) Prune(now sim.Time) {
	kept := a.telemetry[:0]
	for _, t := range a.telemetry {
		if now-t.Time <= a.Window {
			kept = append(kept, t)
		}
	}
	a.telemetry = kept
}
