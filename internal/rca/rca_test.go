package rca

import (
	"strings"
	"testing"

	"c4/internal/c4d"
	"c4/internal/cluster"
	"c4/internal/sim"
)

func hangEvent(node int) c4d.Event {
	return c4d.Event{
		Time: 10 * sim.Minute, Syndrome: c4d.NonCommHang,
		Scope: c4d.ScopeNode, Node: node, Peer: -1,
	}
}

func TestECCTelemetryDominates(t *testing.T) {
	a := NewAnalyzer(0)
	a.Observe(Telemetry{Time: 9 * sim.Minute, Kind: TelemetryECCCount, Node: 4})
	rep := a.Classify(hangEvent(4))
	if rep.Top().Kind != cluster.FaultECCNVLink {
		t.Fatalf("top cause = %v, want ECC/NVLink\n%s", rep.Top().Kind, rep)
	}
	if rep.Top().Confidence < 0.5 {
		t.Fatalf("confidence = %.2f, want strong", rep.Top().Confidence)
	}
	if len(rep.Top().Evidence) == 0 {
		t.Fatal("missing evidence trail")
	}
}

func TestXidTelemetryImpliesCUDA(t *testing.T) {
	a := NewAnalyzer(0)
	a.Observe(Telemetry{Time: 9 * sim.Minute, Kind: TelemetryXidError, Node: 2})
	rep := a.Classify(hangEvent(2))
	if rep.Top().Kind != cluster.FaultCUDAError {
		t.Fatalf("top cause = %v, want CUDA\n%s", rep.Top().Kind, rep)
	}
}

func TestTelemetryOnOtherNodeIgnored(t *testing.T) {
	a := NewAnalyzer(0)
	a.Observe(Telemetry{Time: 9 * sim.Minute, Kind: TelemetryECCCount, Node: 7})
	rep := a.Classify(hangEvent(4))
	// Without correlated evidence, the prior rules: for a non-comm hang
	// that is ECC/NVLink (largest weight among compute-side causes).
	for _, c := range rep.Causes {
		if len(c.Evidence) != 0 {
			t.Fatalf("evidence leaked from unrelated node: %v", c)
		}
	}
}

func TestStaleTelemetryIgnored(t *testing.T) {
	a := NewAnalyzer(2 * sim.Minute)
	a.Observe(Telemetry{Time: 1 * sim.Minute, Kind: TelemetryECCCount, Node: 4})
	rep := a.Classify(hangEvent(4)) // event at 10 min, window 2 min
	for _, c := range rep.Causes {
		if len(c.Evidence) != 0 {
			t.Fatalf("stale telemetry correlated: %v", c)
		}
	}
	// Future telemetry must not correlate either.
	a.Observe(Telemetry{Time: 11 * sim.Minute, Kind: TelemetryXidError, Node: 4})
	rep = a.Classify(hangEvent(4))
	for _, c := range rep.Causes {
		if len(c.Evidence) != 0 {
			t.Fatalf("future telemetry correlated: %v", c)
		}
	}
}

func TestSyndromeShapesPrior(t *testing.T) {
	a := NewAnalyzer(0)
	slow := a.Classify(c4d.Event{
		Time: sim.Minute, Syndrome: c4d.CommSlow,
		Scope: c4d.ScopeConnection, Node: 1, Peer: 2,
	})
	// A comm-slow with no telemetry should not blame CUDA.
	if slow.Top().Kind == cluster.FaultCUDAError {
		t.Fatalf("comm-slow blamed CUDA:\n%s", slow)
	}
	straggler := a.Classify(c4d.Event{
		Time: sim.Minute, Syndrome: c4d.NonCommSlow,
		Scope: c4d.ScopeNode, Node: 1, Peer: -1,
	})
	if k := straggler.Top().Kind; k == cluster.FaultACKTimeout || k == cluster.FaultNetworkOther {
		t.Fatalf("straggler blamed the network:\n%s", straggler)
	}
}

func TestConfidencesNormalized(t *testing.T) {
	a := NewAnalyzer(0)
	a.Observe(Telemetry{Time: 9 * sim.Minute, Kind: TelemetryLinkFlap, Node: -1})
	rep := a.Classify(c4d.Event{
		Time: 10 * sim.Minute, Syndrome: c4d.CommHang,
		Scope: c4d.ScopeNode, Node: 3, Peer: -1,
	})
	var sum float64
	for _, c := range rep.Causes {
		if c.Confidence < 0 {
			t.Fatalf("negative confidence: %v", c)
		}
		sum += c.Confidence
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("confidences sum to %v", sum)
	}
	// Fabric-side telemetry (Node -1)... is keyed to no node, so it must
	// correlate with any finding.
	found := false
	for _, c := range rep.Causes {
		if len(c.Evidence) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("fabric telemetry did not correlate")
	}
}

func TestPrune(t *testing.T) {
	a := NewAnalyzer(sim.Minute)
	for i := 0; i < 10; i++ {
		a.Observe(Telemetry{Time: sim.Time(i) * sim.Minute, Kind: TelemetryThermal, Node: 0})
	}
	a.Prune(10 * sim.Minute)
	if got := len(a.telemetry); got != 1 {
		t.Fatalf("kept %d telemetry records, want 1 (the 9m one)", got)
	}
}

func TestReportRendering(t *testing.T) {
	a := NewAnalyzer(0)
	rep := a.Classify(hangEvent(1))
	out := rep.String()
	if !strings.Contains(out, "%") || !strings.Contains(out, "RCA") {
		t.Fatalf("rendering: %q", out)
	}
	empty := Report{}
	if empty.Top().Kind != cluster.FaultNetworkOther {
		t.Fatal("empty report should default to network-other")
	}
	for k := TelemetryKind(0); k <= TelemetryThermal; k++ {
		if k.String() == "unknown" {
			t.Fatalf("telemetry kind %d unlabeled", k)
		}
	}
}

// TestClassifyReplayIdentical pins the determinism fix found by c4vet's
// mapiterfloat analyzer: Classify used to fold its normalizer over a map
// in randomized iteration order, so Confidence values could differ in
// the last ulp between replays of the same inputs (float addition is not
// associative under rounding). Equal inputs must yield bit-identical
// reports, run after run.
func TestClassifyReplayIdentical(t *testing.T) {
	classify := func() Report {
		a := NewAnalyzer(0)
		a.Observe(Telemetry{Time: 9 * sim.Minute, Kind: TelemetryECCCount, Node: 4})
		a.Observe(Telemetry{Time: 9 * sim.Minute, Kind: TelemetryThermal, Node: 4})
		a.Observe(Telemetry{Time: 9 * sim.Minute, Kind: TelemetryLinkFlap, Node: -1})
		return a.Classify(hangEvent(4))
	}
	want := classify()
	for i := 0; i < 100; i++ {
		got := classify()
		if len(got.Causes) != len(want.Causes) {
			t.Fatalf("run %d: %d causes, want %d", i, len(got.Causes), len(want.Causes))
		}
		for j := range got.Causes {
			g, w := got.Causes[j], want.Causes[j]
			if g.Kind != w.Kind || g.Confidence != w.Confidence {
				t.Fatalf("run %d cause %d: (%v, %v) != (%v, %v): map-order float fold is back",
					i, j, g.Kind, g.Confidence, w.Kind, w.Confidence)
			}
		}
	}
}
