package steering

import (
	"math"
	"testing"

	"c4/internal/c4d"
	"c4/internal/cluster"
	"c4/internal/sim"
)

// averageBreakdown runs the availability model across seeds to shrink
// Monte-Carlo noise to table precision.
func averageBreakdown(t *testing.T, regime Regime, seeds int) Breakdown {
	t.Helper()
	agg := Breakdown{Regime: regime.Name, Diagnosis: map[cluster.FaultKind]float64{}}
	for s := 0; s < seeds; s++ {
		b := SimulateAvailability(AvailabilityConfig{
			Rand:   sim.NewRand(int64(1000 + s)),
			Nodes:  300, // 2400 GPUs, the Table III job
			Regime: regime,
		})
		agg.Faults += b.Faults
		agg.PostCkpt += b.PostCkpt
		agg.Detection += b.Detection
		agg.Reinit += b.Reinit
		for k, v := range b.Diagnosis {
			agg.Diagnosis[k] += v
		}
	}
	n := float64(seeds)
	agg.PostCkpt /= n
	agg.Detection /= n
	agg.Reinit /= n
	for k := range agg.Diagnosis {
		agg.Diagnosis[k] /= n
	}
	return agg
}

func TestManualRegimeMatchesTableIIIJune(t *testing.T) {
	b := averageBreakdown(t, ManualRegime(), 20)
	total := b.Total()
	// Paper: 31.19% total error-induced downtime in June 2023.
	if total < 0.24 || total > 0.40 {
		t.Fatalf("June total downtime = %.2f%%, want ≈31%%", total*100)
	}
	// Diagnosis & isolation dominates (paper: 19.65% of 31.19%).
	if b.DiagnosisTotal() < b.PostCkpt || b.DiagnosisTotal() < b.Detection {
		t.Fatalf("diagnosis %.2f%% should dominate (post-ckpt %.2f%%, detection %.2f%%)",
			b.DiagnosisTotal()*100, b.PostCkpt*100, b.Detection*100)
	}
	// Post-checkpoint is the second contributor.
	if b.PostCkpt < b.Detection {
		t.Fatalf("post-ckpt %.2f%% should exceed detection %.2f%%", b.PostCkpt*100, b.Detection*100)
	}
	// GPU-related causes are about 2/3 of diagnosis time (paper: 12.53%
	// of 19.65%).
	gpu := b.Diagnosis[cluster.FaultECCNVLink] + b.Diagnosis[cluster.FaultCUDAError]
	if frac := gpu / b.DiagnosisTotal(); frac < 0.45 || frac > 0.85 {
		t.Fatalf("GPU share of diagnosis = %.2f, want ≈2/3", frac)
	}
}

func TestC4DRegimeMatchesTableIIIDecember(t *testing.T) {
	b := averageBreakdown(t, C4DRegime(), 20)
	total := b.Total()
	// Paper: 1.16% total in December 2023.
	if total < 0.005 || total > 0.025 {
		t.Fatalf("December total downtime = %.2f%%, want ≈1.2%%", total*100)
	}
}

func TestC4DReductionFactor(t *testing.T) {
	jun := averageBreakdown(t, ManualRegime(), 20).Total()
	dec := averageBreakdown(t, C4DRegime(), 20).Total()
	factor := jun / dec
	// Paper: ~30x reduction (31.19% -> 1.16% ≈ 27x).
	if factor < 15 || factor > 45 {
		t.Fatalf("downtime reduction = %.1fx, want ≈30x", factor)
	}
}

func TestCrashTableMatchesTableI(t *testing.T) {
	// Average over several months to shrink sampling noise.
	var rows map[cluster.FaultKind]float64
	total := 0
	rows = map[cluster.FaultKind]float64{}
	tab := SimulateCrashCauses(sim.NewRand(4), 512, 12*30*sim.Day)
	total = tab.Total
	for _, r := range tab.Rows {
		rows[r.RootCause] = r.Proportion
	}
	if total < 300 {
		t.Fatalf("only %d crashes sampled", total)
	}
	want := map[cluster.FaultKind]float64{
		cluster.FaultCUDAError:    0.125,
		cluster.FaultECCNVLink:    0.275,
		cluster.FaultNCCLTimeout:  0.20,
		cluster.FaultACKTimeout:   0.275,
		cluster.FaultNetworkOther: 0.125,
	}
	for k, w := range want {
		if math.Abs(rows[k]-w) > 0.05 {
			t.Fatalf("%v proportion = %.3f, want %.3f", k, rows[k], w)
		}
	}
	if lf := tab.LocalFraction(); math.Abs(lf-0.825) > 0.05 {
		t.Fatalf("local fraction = %.3f, want 0.825", lf)
	}
	// Most causes surface as the same unhelpful "NCCL Error".
	nccl := 0.0
	for _, r := range tab.Rows {
		if r.UserView == "NCCL Error" {
			nccl += r.Proportion
		}
	}
	if nccl < 0.8 {
		t.Fatalf("NCCL-error share = %.2f, want ≥0.8", nccl)
	}
}

func TestServicePipeline(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.NewCluster(4, 8, 2)
	var isolated, restartedOld, restartedNew int
	isolated, restartedOld, restartedNew = -1, -1, -1
	svc := NewService(Config{
		Engine:         eng,
		Cluster:        cl,
		IsolationDelay: 30 * sim.Second,
		RestartDelay:   2 * sim.Minute,
		Isolate:        func(n int) { isolated = n },
		Restart:        func(old, repl int) { restartedOld, restartedNew = old, repl },
	})
	ev := c4d.Event{Time: 0, Syndrome: c4d.NonCommHang, Scope: c4d.ScopeNode, Node: 2}
	eng.After(0, func() { svc.Handle(ev) })
	eng.Run()
	if isolated != 2 {
		t.Fatalf("isolated = %d", isolated)
	}
	if restartedOld != 2 || restartedNew != 4 {
		t.Fatalf("restart = (%d,%d), want (2,4)", restartedOld, restartedNew)
	}
	if !cl.Machines[2].Isolated {
		t.Fatal("cluster state not updated")
	}
	acts := svc.Actions()
	if len(acts) != 1 {
		t.Fatalf("actions = %d", len(acts))
	}
	if acts[0].RestartAt != 30*sim.Second+2*sim.Minute {
		t.Fatalf("restart at %v", acts[0].RestartAt)
	}
	if acts[0].String() == "" {
		t.Fatal("empty action string")
	}
}

func TestServiceCoalescesConcurrentFindings(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.NewCluster(4, 8, 2)
	svc := NewService(Config{Engine: eng, Cluster: cl})
	eng.After(0, func() {
		svc.Handle(c4d.Event{Syndrome: c4d.CommHang, Node: 1})
		svc.Handle(c4d.Event{Syndrome: c4d.CommHang, Node: 1}) // duplicate burst
	})
	eng.Run()
	if got := len(svc.Actions()); got != 1 {
		t.Fatalf("actions = %d, want 1 (coalesced)", got)
	}
}

func TestServiceEmptySparePool(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.NewCluster(2, 8, 0)
	var repl int
	svc := NewService(Config{
		Engine: eng, Cluster: cl,
		Restart: func(_, r int) { repl = r },
	})
	eng.After(0, func() { svc.Handle(c4d.Event{Node: 1}) })
	eng.Run()
	if repl != 1 {
		t.Fatalf("replacement = %d, want in-place restart (1)", repl)
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{
		PostCkpt: 0.01, Detection: 0.02, Reinit: 0.005,
		Diagnosis: map[cluster.FaultKind]float64{
			cluster.FaultCUDAError: 0.03,
			cluster.FaultECCNVLink: 0.04,
		},
	}
	if math.Abs(b.DiagnosisTotal()-0.07) > 1e-12 {
		t.Fatalf("diag total = %v", b.DiagnosisTotal())
	}
	if math.Abs(b.Total()-0.105) > 1e-12 {
		t.Fatalf("total = %v", b.Total())
	}
	causes := b.Causes()
	if len(causes) != 2 || causes[0] != cluster.FaultCUDAError {
		t.Fatalf("causes = %v", causes)
	}
}
