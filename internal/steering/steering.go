// Package steering implements the job steering service of the paper's
// Fig 4: it receives C4D findings, isolates the blamed node (drawing a
// replacement from the backup pool the paper provisions at 64 spare GPUs
// per 1024), and restarts the job from the last checkpoint. It also
// contains the month-scale availability model that reproduces Table I and
// Table III.
package steering

import (
	"fmt"

	"c4/internal/c4d"
	"c4/internal/cluster"
	"c4/internal/sim"
	"c4/internal/trace"
)

// Action is one recovery performed by the service.
type Action struct {
	Time        sim.Time
	Event       c4d.Event
	Node        int
	Replacement int
	RestartAt   sim.Time
}

// Config tunes the live steering pipeline.
type Config struct {
	Engine  *sim.Engine
	Cluster *cluster.Cluster
	// IsolationDelay is the time to drain and fence the node.
	IsolationDelay sim.Time
	// RestartDelay is scheduler + process re-launch + re-init time.
	RestartDelay sim.Time
	// Isolate is invoked when the service fences a node (the job should
	// stop). Restart is invoked when the job may resume with the
	// replacement node (or the same node if no spare was available).
	Isolate func(node int)
	Restart func(node, replacement int)

	// Trace, when enabled, records each recovery as a "steer" span from
	// the triggering finding to the restart instant, parented under the
	// detection that caused it (the tracer's "detect" mark, falling back
	// to the open "fault" window). Optional.
	Trace *trace.Tracer
}

// Service is the live recovery pipeline driven by C4D events.
type Service struct {
	cfg     Config
	actions []Action
	busy    bool
}

// NewService creates the pipeline; subscribe its Handle method to a C4D
// master.
func NewService(cfg Config) *Service {
	if cfg.IsolationDelay <= 0 {
		cfg.IsolationDelay = 30 * sim.Second
	}
	if cfg.RestartDelay <= 0 {
		cfg.RestartDelay = 3 * sim.Minute
	}
	return &Service{cfg: cfg}
}

// Actions returns the recovery log.
func (s *Service) Actions() []Action { return append([]Action(nil), s.actions...) }

// Handle processes one C4D finding: isolate, replace, restart. Findings
// arriving while a recovery is in flight are coalesced (the restart already
// fixes the job).
func (s *Service) Handle(ev c4d.Event) {
	if s.busy {
		return
	}
	s.busy = true
	now := s.cfg.Engine.Now()
	var sp *trace.Span
	if tr := s.cfg.Trace; tr.Enabled() {
		parent := tr.Mark("detect")
		if parent == nil {
			parent = tr.Mark("fault")
		}
		sp = tr.Start(parent, "steer", ev.Syndrome.String())
		sp.Annotate("node", fmt.Sprintf("%d", ev.Node))
	}
	if s.cfg.Isolate != nil {
		s.cfg.Isolate(ev.Node)
	}
	act := Action{Time: now, Event: ev, Node: ev.Node}
	s.cfg.Engine.After(s.cfg.IsolationDelay, func() {
		repl := s.cfg.Cluster.Isolate(ev.Node)
		if repl < 0 {
			repl = ev.Node // pool empty: restart in place after repair
		}
		act.Replacement = repl
		s.cfg.Engine.After(s.cfg.RestartDelay, func() {
			act.RestartAt = s.cfg.Engine.Now()
			sp.Annotate("replacement", fmt.Sprintf("%d", repl))
			sp.FinishAt(act.RestartAt)
			s.actions = append(s.actions, act)
			s.busy = false
			if s.cfg.Restart != nil {
				s.cfg.Restart(ev.Node, repl)
			}
		})
	})
}

func (a Action) String() string {
	return fmt.Sprintf("isolated n%d -> n%d (%v), restarted at %v",
		a.Node, a.Replacement, a.Event.Syndrome, a.RestartAt)
}
