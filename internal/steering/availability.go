package steering

import (
	"sort"

	"c4/internal/cluster"
	"c4/internal/sim"
)

// This file contains the month-scale availability model behind Table I and
// Table III. Running a 2400-GPU job iteration-by-iteration for a virtual
// month is wasteful — error handling is a renewal process — so the model
// Monte-Carlos fault arrivals (cluster.Injector, Table I rates) and sums
// per-fault recovery costs drawn from a Regime: the operational profile
// before C4D (June 2023: elastic-agent hang timeouts, manual diagnosis,
// infrequent checkpoints) or after (December 2023: C4D detection in tens
// of seconds, automatic isolation, 10-minute checkpoints).

// Regime is an operational recovery profile.
type Regime struct {
	Name string
	// CrashesPerMonthPer4096 scales the fault process (the paper's fleet
	// hardening cut the error rate 3.33x between June and December).
	CrashesPerMonthPer4096 float64
	// Detection draws the time from fault to the operator/system knowing
	// the job is stuck.
	Detection func(r *sim.Rand, k cluster.FaultKind) sim.Time
	// Diagnosis draws the time to find and fence the faulty component.
	Diagnosis func(r *sim.Rand, k cluster.FaultKind) sim.Time
	// Reinit draws the job restart/re-initialization time.
	Reinit func(r *sim.Rand) sim.Time
	// CkptInterval is the checkpoint period; on a crash the work since the
	// last checkpoint is lost (post-checkpoint cost).
	CkptInterval sim.Time
}

// ManualRegime models June 2023: no C4D. Detection waits for humans or the
// PyTorch elastic-agent 30-minute timeout; diagnosis is manual log
// archaeology taking hours (per-cause means chosen to match Table III's
// June breakdown); checkpoints are infrequent.
func ManualRegime() Regime {
	return Regime{
		Name: "Jun-2023 (manual)",
		// Calibrated so the 2400-GPU Table III job experiences ≈40
		// crashes/month, the rate the paper's representative job showed;
		// error rates in the newly deployed cluster were not simply
		// fleet-proportional.
		CrashesPerMonthPer4096: 68,
		Detection: func(r *sim.Rand, _ cluster.FaultKind) sim.Time {
			// Users notice stalls somewhere between quickly and the full
			// elastic-agent timeout; mean ≈ 37 min.
			return sim.FromSeconds(r.Normal(37*60, 12*60))
		},
		Diagnosis: func(r *sim.Rand, k cluster.FaultKind) sim.Time {
			var meanMin float64
			switch k {
			case cluster.FaultECCNVLink:
				meanMin = 330 // ~5.5 h
			case cluster.FaultCUDAError:
				meanMin = 360 // ~6 h
			case cluster.FaultNCCLTimeout:
				meanMin = 160
			case cluster.FaultACKTimeout:
				meanMin = 70
			default:
				meanMin = 200
			}
			return sim.FromSeconds(r.Normal(meanMin*60, meanMin*25))
		},
		Reinit: func(r *sim.Rand) sim.Time {
			return sim.FromSeconds(r.Normal(390, 90)) // ≈6.5 min
		},
		CkptInterval: 160 * sim.Minute,
	}
}

// C4DRegime models December 2023: C4D detects within its reporting window
// plus hang timeout, the steering service isolates and restarts
// automatically in minutes, checkpoints land every 10 minutes, and the
// hardened fleet fails 3.33x less often.
func C4DRegime() Regime {
	return Regime{
		Name:                   "Dec-2023 (C4D)",
		CrashesPerMonthPer4096: 68 / 3.33,
		Detection: func(r *sim.Rand, _ cluster.FaultKind) sim.Time {
			// Agent reporting interval + hang-timeout confirmation.
			return sim.FromSeconds(r.Normal(100, 30))
		},
		Diagnosis: func(r *sim.Rand, k cluster.FaultKind) sim.Time {
			// Localization is seconds; the minutes are scheduler fencing,
			// replacement allocation and rank re-wiring.
			return sim.FromSeconds(r.Normal(26*60, 8*60))
		},
		Reinit: func(r *sim.Rand) sim.Time {
			return sim.FromSeconds(r.Normal(330, 60)) // ≈5.5 min
		},
		CkptInterval: 10 * sim.Minute,
	}
}

// Breakdown is Table III's structure: per-phase downtime as fractions of
// total wall time, with diagnosis split by root cause.
type Breakdown struct {
	Regime    string
	Span      sim.Time
	Faults    int
	PostCkpt  float64
	Detection float64
	Diagnosis map[cluster.FaultKind]float64
	Reinit    float64
}

// DiagnosisTotal sums the per-cause diagnosis fractions in stable cause
// order: map-range float accumulation would make the total flip its last
// ulp between runs, and this number lands verbatim in the bench baseline,
// which must regenerate byte-identically.
func (b Breakdown) DiagnosisTotal() float64 {
	var s float64
	for _, k := range b.Causes() {
		s += b.Diagnosis[k]
	}
	return s
}

// Total is the full error-induced downtime fraction.
func (b Breakdown) Total() float64 {
	return b.PostCkpt + b.Detection + b.DiagnosisTotal() + b.Reinit
}

// Causes returns the diagnosis causes in stable order.
func (b Breakdown) Causes() []cluster.FaultKind {
	out := make([]cluster.FaultKind, 0, len(b.Diagnosis))
	for k := range b.Diagnosis {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AvailabilityConfig parameterizes the month simulation.
type AvailabilityConfig struct {
	Rand   *sim.Rand
	Nodes  int // job size in nodes (paper: 300 nodes = 2400 GPUs)
	GPUs   int // GPUs per node
	Span   sim.Time
	Regime Regime
}

// SimulateAvailability Monte-Carlos fault arrivals over the span and
// accumulates per-phase downtime.
func SimulateAvailability(cfg AvailabilityConfig) Breakdown {
	if cfg.Rand == nil {
		cfg.Rand = sim.NewRand(23)
	}
	if cfg.Span <= 0 {
		cfg.Span = 30 * sim.Day
	}
	if cfg.GPUs <= 0 {
		cfg.GPUs = 8
	}
	inj := cluster.NewInjector(cluster.InjectorConfig{
		Rand:                   cfg.Rand.Fork(),
		Nodes:                  cfg.Nodes,
		GPUsPerNode:            cfg.GPUs,
		CrashesPerMonthPer4096: cfg.Regime.CrashesPerMonthPer4096,
	})
	b := Breakdown{
		Regime:    cfg.Regime.Name,
		Span:      cfg.Span,
		Diagnosis: make(map[cluster.FaultKind]float64),
	}
	r := cfg.Rand
	span := float64(cfg.Span)
	var lastCkpt sim.Time
	for _, f := range inj.SampleWindow(cfg.Span) {
		b.Faults++
		// Work lost since the last checkpoint before the crash. A fault
		// arriving while the previous recovery is still in flight loses no
		// additional checkpointed work.
		sinceCkpt := sim.Time(0)
		if f.Time > lastCkpt {
			sinceCkpt = (f.Time - lastCkpt) % cfg.Regime.CkptInterval
		}
		b.PostCkpt += float64(sinceCkpt) / span
		det := cfg.Regime.Detection(r, f.Kind)
		b.Detection += float64(det) / span
		diag := cfg.Regime.Diagnosis(r, f.Kind)
		b.Diagnosis[f.Kind] += float64(diag) / span
		re := cfg.Regime.Reinit(r)
		b.Reinit += float64(re) / span
		lastCkpt = f.Time + det + diag + re
	}
	return b
}

// CrashTable is Table I's structure: per-cause counts, proportions,
// user-visible symptom and locality.
type CrashTable struct {
	Total int
	Rows  []CrashRow
}

// CrashRow is one Table I row.
type CrashRow struct {
	UserView   string
	RootCause  cluster.FaultKind
	Count      int
	Proportion float64
	LocalFrac  float64
}

// SimulateCrashCauses reproduces Table I: it runs the fault process for
// the span and tabulates what the user saw versus the root cause.
func SimulateCrashCauses(rand *sim.Rand, nodes int, span sim.Time) CrashTable {
	if rand == nil {
		rand = sim.NewRand(29)
	}
	inj := cluster.NewInjector(cluster.InjectorConfig{
		Rand: rand, Nodes: nodes, GPUsPerNode: 8, CrashesPerMonthPer4096: 40,
	})
	counts := map[cluster.FaultKind]int{}
	local := map[cluster.FaultKind]int{}
	total := 0
	for _, f := range inj.SampleWindow(span) {
		counts[f.Kind]++
		if f.Local {
			local[f.Kind]++
		}
		total++
	}
	t := CrashTable{Total: total}
	kinds := []cluster.FaultKind{
		cluster.FaultCUDAError, cluster.FaultECCNVLink,
		cluster.FaultNCCLTimeout, cluster.FaultACKTimeout,
		cluster.FaultNetworkOther,
	}
	for _, k := range kinds {
		c := counts[k]
		row := CrashRow{UserView: k.UserView(), RootCause: k, Count: c}
		if total > 0 {
			row.Proportion = float64(c) / float64(total)
		}
		if c > 0 {
			row.LocalFrac = float64(local[k]) / float64(c)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// LocalFraction reports the overall share of crashes confined to a node.
func (t CrashTable) LocalFraction() float64 {
	if t.Total == 0 {
		return 0
	}
	var loc float64
	for _, r := range t.Rows {
		loc += r.LocalFrac * float64(r.Count)
	}
	return loc / float64(t.Total)
}
