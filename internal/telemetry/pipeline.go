package telemetry

import (
	"sort"

	"c4/internal/accl"
	"c4/internal/sim"
)

// PipelineConfig tunes the collection side of the streaming pipeline.
type PipelineConfig struct {
	// BufCap is each node collector's ring capacity. Default 4096.
	BufCap int
	// DrainInterval is the collector drain cadence. Zero means streaming:
	// collectors drain at the end of the simulation instant that filled
	// them, so the detector sees a record at its event time. A positive
	// cadence batches records (cheaper, higher time-to-detect, and with
	// small rings a drop risk) — the knob the online/cadence-sweep
	// scenario sweeps.
	DrainInterval sim.Time
}

// Sink receives the merged event-time-ordered record stream. Sinks are
// pluggable: the online detector, the JSONL StreamWriter, the serving
// plane's SSE broadcast hub and test recorders all implement it and can
// be attached side by side on one Pipeline. A sink that can fail mid-
// stream (a writer) should additionally expose Err() so callers can
// terminate a broken stream instead of silently dropping records.
type Sink interface {
	Observe(Record)
}

// Consumer is the historical name for Sink.
type Consumer = Sink

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record)

// Observe implements Sink.
func (f SinkFunc) Observe(r Record) { f(r) }

// ConsumerFunc is the historical name for SinkFunc.
type ConsumerFunc = SinkFunc

// Pipeline is the streaming telemetry collection plane. It implements
// accl.StatsSink: data-plane records (collectives, messages, waits) land
// in the producing node's bounded ring collector and reach the consumers
// on the drain cadence, merged across nodes in deterministic event-time
// order; control-plane records (communicator create/close) bypass the
// rings so consumers always know memberships before data arrives.
type Pipeline struct {
	cfg  PipelineConfig
	eng  *sim.Engine
	cons []Consumer

	collectors map[int]*Collector
	nodes      []int // sorted keys of collectors

	pending bool
	ticker  *sim.Event
	stopped bool

	drains  uint64
	records uint64
	scratch []Record
}

// NewPipeline creates a pipeline feeding the given consumers (typically
// an OnlineDetector and/or a StreamWriter) and starts the drain cadence.
func NewPipeline(eng *sim.Engine, cfg PipelineConfig, consumers ...Consumer) *Pipeline {
	if cfg.BufCap <= 0 {
		cfg.BufCap = 4096
	}
	p := &Pipeline{cfg: cfg, eng: eng, collectors: map[int]*Collector{}}
	for _, c := range consumers {
		if c != nil {
			p.cons = append(p.cons, c)
		}
	}
	if cfg.DrainInterval > 0 {
		p.scheduleTick()
	}
	return p
}

func (p *Pipeline) scheduleTick() {
	p.ticker = p.eng.After(p.cfg.DrainInterval, func() {
		p.drain()
		p.scheduleTick()
	})
}

// Stop halts the drain cadence after flushing what is buffered.
func (p *Pipeline) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.drain()
	if p.ticker != nil {
		p.ticker.Cancel()
		p.ticker = nil
	}
}

// Drains reports how many drain passes ran — the collection-overhead
// metric of the cadence sweep.
func (p *Pipeline) Drains() uint64 { return p.drains }

// Records reports how many records reached the consumers.
func (p *Pipeline) Records() uint64 { return p.records }

// Dropped totals ring-overwrite losses across collectors.
func (p *Pipeline) Dropped() uint64 {
	var n uint64
	for _, c := range p.collectors {
		n += c.Dropped()
	}
	return n
}

func (p *Pipeline) collector(node int) *Collector {
	c := p.collectors[node]
	if c == nil {
		c = NewCollector(node, p.cfg.BufCap)
		p.collectors[node] = c
		p.nodes = append(p.nodes, node)
		sort.Ints(p.nodes)
	}
	return c
}

// push buffers a data-plane record and, in streaming mode, arms the
// end-of-instant drain.
func (p *Pipeline) push(rec Record) {
	if p.stopped {
		return
	}
	p.collector(rec.Node).Push(rec)
	if p.cfg.DrainInterval == 0 && !p.pending {
		p.pending = true
		p.eng.After(0, func() {
			p.pending = false
			p.drain()
		})
	}
}

// drain empties every collector, merges the batch by event time and hands
// it to the consumers.
func (p *Pipeline) drain() {
	p.drains++
	batch := p.scratch[:0]
	for _, n := range p.nodes {
		batch = p.collectors[n].Drain(batch)
	}
	batch = MergeByTime(batch)
	for _, rec := range batch {
		p.records++
		for _, c := range p.cons {
			c.Observe(rec)
		}
	}
	p.scratch = batch[:0]
}

// deliver hands a control-plane record straight to the consumers.
func (p *Pipeline) deliver(rec Record) {
	if p.stopped {
		return
	}
	p.records++
	for _, c := range p.cons {
		c.Observe(rec)
	}
}

// OnCommCreate implements accl.StatsSink.
func (p *Pipeline) OnCommCreate(ci accl.CommInfo) {
	for _, n := range ci.Nodes {
		p.collector(n) // provision collectors for all members
	}
	p.deliver(Record{
		Time: p.eng.Now(), Node: -1, Kind: KindCommCreate,
		Comm: ci.Comm, Nodes: append([]int(nil), ci.Nodes...),
	})
}

// OnCommClose implements accl.StatsSink. Buffered records of the closing
// communicator drain first so consumers never see data after the close.
func (p *Pipeline) OnCommClose(comm int) {
	p.drain()
	p.deliver(Record{Time: p.eng.Now(), Node: -1, Kind: KindCommClose, Comm: comm})
}

// OnCollective implements accl.StatsSink.
func (p *Pipeline) OnCollective(ev accl.CollEvent) { p.push(RecordOfColl(ev)) }

// OnMessage implements accl.StatsSink.
func (p *Pipeline) OnMessage(ev accl.MsgEvent) { p.push(RecordOfMsg(ev)) }

// OnWait implements accl.StatsSink.
func (p *Pipeline) OnWait(ev accl.WaitEvent) { p.push(RecordOfWait(ev)) }
