// The online/* scenario family: streaming telemetry racing batch C4D on
// identical fault schedules. Each run attaches both pipelines to one job
// through a single accl.Fanout sink, so the two detectors see byte-equal
// record streams and the measured difference is purely analysis latency
// and analysis cost. Every engine and RNG derives from the Ctx seed, so
// the parallel runner reproduces a serial sweep byte for byte.
package telemetry

import (
	"fmt"
	"strings"

	"c4/internal/accl"
	"c4/internal/c4d"
	"c4/internal/c4p"
	"c4/internal/faults"
	"c4/internal/job"
	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
	"c4/internal/workload"

	"c4/internal/netsim"
)

// raceConfig is one online-vs-batch trial.
type raceConfig struct {
	jobN    int
	spines  int
	horizon sim.Time
	seed    int64
	specs   []faults.Spec
	drain   sim.Time // pipeline drain cadence (0 = streaming)
	bufCap  int
}

// raceOutcome collects both arms' verdicts plus work accounting.
type raceOutcome struct {
	batch  []c4d.Event
	online []c4d.Detection
	truths []faults.GroundTruth

	fired   uint64
	iters   int
	records uint64
	drops   uint64
	drains  uint64

	batchPasses   int
	batchCells    int
	onlineUpdates uint64
}

// spreadNodes interleaves jobN nodes across the testbed's two leaf groups
// so every ring edge crosses the spine layer (the fault-visible worst
// case, matching the campaigns' spread placement).
func spreadNodes(jobN int) []int {
	nodes := make([]int, jobN)
	for i := range nodes {
		nodes[i] = (i%2)*8 + i/2
	}
	return nodes
}

// runRace executes one trial: a single job, one fault schedule, both
// detectors fed from one fan-out instrumentation point.
func runRace(cfg raceConfig) raceOutcome {
	spec := topo.MultiJobTestbed(cfg.spines)
	spec.Nodes = 16
	eng := sim.NewEngine()
	t := topo.MustNew(spec)
	net := netsim.New(eng, t, netsim.DefaultConfig())

	// Pinned static routes in both arms: the syndromes must stay unmasked
	// (no rerouting or node replacement) so detection latency is the only
	// difference under measurement.
	prov := faults.PinnedProvider{PathProvider: c4p.NewMaster(t, c4p.Static, sim.NewRand(cfg.seed))}

	master := c4d.NewMaster(c4d.Config{})
	fleet := c4d.NewFleet(eng, master)
	det := NewOnlineDetector(eng, DetectorConfig{})
	pipe := NewPipeline(eng, PipelineConfig{BufCap: cfg.bufCap, DrainInterval: cfg.drain}, det)

	jobNodes := spreadNodes(cfg.jobN)
	j, err := job.New(job.Config{
		Engine: eng, Net: net, Provider: prov,
		Sink:  accl.Fanout(fleet, pipe),
		Rails: []int{0}, Rand: sim.NewRand(cfg.seed + 1),
		QPsPerConn: 4,
		Spec: workload.JobSpec{
			Name:                 "online-race",
			Model:                workload.GPT22B,
			Par:                  workload.Parallelism{TP: 8, DP: cfg.jobN, GA: 1},
			Nodes:                jobNodes,
			ComputePerMicroBatch: 550 * sim.Millisecond,
			ComputeJitter:        0.02,
			SamplesPerIter:       64,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("telemetry: race job: %v", err))
	}

	inj := faults.NewInjector(eng, net, t)
	inj.SetStraggler = j.SetStraggler
	for _, s := range cfg.specs {
		if err := inj.Arm(s); err != nil {
			panic(fmt.Sprintf("telemetry: race fault: %v", err))
		}
	}

	j.Run(1<<30, nil)
	eng.RunUntil(cfg.horizon)
	fleet.Stop()
	pipe.Stop()
	det.Stop()

	passes := master.AnalyzePasses()
	return raceOutcome{
		batch:  master.Events(),
		online: det.Detections(),
		truths: inj.Truth(jobNodes),
		fired:  eng.Fired(), iters: len(j.IterTimes()),
		records: pipe.Records(), drops: pipe.Dropped(), drains: pipe.Drains(),
		batchPasses: passes, batchCells: master.MatrixCellVisits(),
		onlineUpdates: det.Updates(),
	}
}

// ---------------------------------------------------------------------------
// online/detection-latency

// latencyTrial is one fault kind's timing comparison.
type latencyTrial struct {
	Kind string
	// Detected flags and first-detection latencies per arm.
	BatchDetected, OnlineDetected bool
	BatchTTD, OnlineTTD           sim.Time
	BatchFalseAlarms              int
	OnlineFalseAlarms             int
	Fired                         uint64
}

// Speedup is the batch TTD over the online TTD (how many times faster the
// streaming detector fired); 0 when either arm missed.
func (tr latencyTrial) Speedup() float64 {
	if !tr.BatchDetected || !tr.OnlineDetected || tr.OnlineTTD <= 0 {
		return 0
	}
	return float64(tr.BatchTTD) / float64(tr.OnlineTTD)
}

// DetectionLatencyResult compares time-to-detect across fault kinds.
type DetectionLatencyResult struct {
	Trials []latencyTrial
}

// Fired implements scenario.EventCounter.
func (r *DetectionLatencyResult) Fired() uint64 {
	var n uint64
	for _, tr := range r.Trials {
		n += tr.Fired
	}
	return n
}

// latencyFault builds the trial's fault schedule for a kind.
func latencyFault(kind string, victim int) faults.Spec {
	const start, dur = 20 * sim.Second, 50 * sim.Second
	switch kind {
	case "nic-degrade":
		return faults.Spec{Kind: faults.NICDegrade, Node: victim, Rail: 0,
			Severity: 0.75, Start: start, Duration: dur}
	case "straggler":
		return faults.Spec{Kind: faults.Straggler, Node: victim,
			Severity: 0.5, Start: start, Duration: dur}
	case "spine-outage":
		return faults.Spec{Kind: faults.SpineOutage, Rail: 0, Spine: 0,
			Start: start, Duration: dur}
	}
	panic("telemetry: unknown latency trial kind " + kind)
}

// RunDetectionLatency races the two detectors over three fault
// archetypes: a bandwidth degradation (comm-slow), a compute straggler
// (non-comm-slow) and a spine outage under pinned routes (comm-hang).
func RunDetectionLatency(ctx *scenario.Ctx) *DetectionLatencyResult {
	kinds := []string{"nic-degrade", "straggler", "spine-outage"}
	res := &DetectionLatencyResult{Trials: make([]latencyTrial, len(kinds))}
	scenario.ForEach(len(kinds), ctx.Workers, func(i int) {
		kind := kinds[i]
		const victim = 8 // in-job node (group 1, first slot)
		out := runRace(raceConfig{
			jobN: 8, spines: 8, horizon: 100 * sim.Second,
			seed:  ctx.Seed + int64(i)*7919,
			specs: []faults.Spec{latencyFault(kind, victim)},
		})
		batchRep := faults.ScoreTTD(c4d.Detections(out.batch), out.truths)
		onlineRep := faults.ScoreTTD(out.online, out.truths)
		tr := latencyTrial{Kind: kind, Fired: out.fired,
			BatchFalseAlarms:  batchRep.FalseAlarms,
			OnlineFalseAlarms: onlineRep.FalseAlarms,
		}
		if len(batchRep.Faults) == 1 && batchRep.Faults[0].Detected {
			tr.BatchDetected = true
			tr.BatchTTD = batchRep.Faults[0].TimeToDetect
		}
		if len(onlineRep.Faults) == 1 && onlineRep.Faults[0].Detected {
			tr.OnlineDetected = true
			tr.OnlineTTD = onlineRep.Faults[0].TimeToDetect
		}
		res.Trials[i] = tr
	})
	ctx.Track(res)
	return res
}

func (r *DetectionLatencyResult) String() string {
	var sb strings.Builder
	sb.WriteString("online/detection-latency — streaming vs batch C4D, same fault, same records\n")
	rows := make([][]string, len(r.Trials))
	for i, tr := range r.Trials {
		fmtTTD := func(ok bool, d sim.Time) string {
			if !ok {
				return "missed"
			}
			return fmt.Sprintf("%.3fs", d.Seconds())
		}
		rows[i] = []string{
			tr.Kind,
			fmtTTD(tr.BatchDetected, tr.BatchTTD),
			fmtTTD(tr.OnlineDetected, tr.OnlineTTD),
			fmt.Sprintf("%.1fx", tr.Speedup()),
			fmt.Sprint(tr.BatchFalseAlarms),
			fmt.Sprint(tr.OnlineFalseAlarms),
		}
	}
	sb.WriteString(metrics.Table(
		[]string{"fault", "batch TTD", "online TTD", "speedup", "fp(batch)", "fp(online)"}, rows))
	return sb.String()
}

// CheckShape asserts the subsystem's reason to exist: for every fault
// kind, both arms detect, and the streaming detector's time-to-detect
// strictly beats the batch master's.
func (r *DetectionLatencyResult) CheckShape() error {
	if len(r.Trials) == 0 {
		return fmt.Errorf("detection-latency: no trials")
	}
	for _, tr := range r.Trials {
		if !tr.BatchDetected {
			return fmt.Errorf("detection-latency: %s missed by batch C4D", tr.Kind)
		}
		if !tr.OnlineDetected {
			return fmt.Errorf("detection-latency: %s missed by the online detector", tr.Kind)
		}
		if tr.OnlineTTD >= tr.BatchTTD {
			return fmt.Errorf("detection-latency: %s online TTD %v not strictly better than batch %v",
				tr.Kind, tr.OnlineTTD, tr.BatchTTD)
		}
	}
	return nil
}

// Metrics feeds the bench-regression guard.
func (r *DetectionLatencyResult) Metrics() map[string]float64 {
	out := map[string]float64{}
	for _, tr := range r.Trials {
		out["batch_ttd_s_"+tr.Kind] = tr.BatchTTD.Seconds()
		out["online_ttd_s_"+tr.Kind] = tr.OnlineTTD.Seconds()
		out["online_fp_"+tr.Kind] = float64(tr.OnlineFalseAlarms)
	}
	return out
}

// ---------------------------------------------------------------------------
// online/cadence-sweep

// cadenceArm is one drain-cadence configuration's measurements.
type cadenceArm struct {
	Drain    sim.Time
	Detected bool
	TTD      sim.Time
	Drains   uint64
	Records  uint64
	Drops    uint64
	Fired    uint64
}

// CadenceSweepResult trades collection cadence against time-to-detect.
type CadenceSweepResult struct {
	Arms []cadenceArm
}

// Fired implements scenario.EventCounter.
func (r *CadenceSweepResult) Fired() uint64 {
	var n uint64
	for _, a := range r.Arms {
		n += a.Fired
	}
	return n
}

// RunCadenceSweep runs the same NIC-degrade fault under increasingly
// coarse collector drain cadences: TTD grows toward the batch quantum
// while drain overhead falls.
func RunCadenceSweep(ctx *scenario.Ctx) *CadenceSweepResult {
	cadences := []sim.Time{0, 500 * sim.Millisecond, 2 * sim.Second, 5 * sim.Second}
	res := &CadenceSweepResult{Arms: make([]cadenceArm, len(cadences))}
	scenario.ForEach(len(cadences), ctx.Workers, func(i int) {
		out := runRace(raceConfig{
			jobN: 8, spines: 8, horizon: 100 * sim.Second,
			seed:  ctx.Seed, // same workload in every arm: only the cadence moves
			specs: []faults.Spec{latencyFault("nic-degrade", 8)},
			drain: cadences[i],
		})
		rep := faults.ScoreTTD(out.online, out.truths)
		arm := cadenceArm{Drain: cadences[i], Drains: out.drains,
			Records: out.records, Drops: out.drops, Fired: out.fired}
		if len(rep.Faults) == 1 && rep.Faults[0].Detected {
			arm.Detected = true
			arm.TTD = rep.Faults[0].TimeToDetect
		}
		res.Arms[i] = arm
	})
	ctx.Track(res)
	return res
}

func (r *CadenceSweepResult) String() string {
	var sb strings.Builder
	sb.WriteString("online/cadence-sweep — drain cadence vs time-to-detect (NIC degrade at 20s)\n")
	rows := make([][]string, len(r.Arms))
	for i, a := range r.Arms {
		cadence := "streaming"
		if a.Drain > 0 {
			cadence = a.Drain.String()
		}
		ttd := "missed"
		if a.Detected {
			ttd = fmt.Sprintf("%.3fs", a.TTD.Seconds())
		}
		rows[i] = []string{
			cadence, ttd, fmt.Sprint(a.Drains), fmt.Sprint(a.Records), fmt.Sprint(a.Drops),
		}
	}
	sb.WriteString(metrics.Table([]string{"cadence", "TTD", "drains", "records", "drops"}, rows))
	return sb.String()
}

// CheckShape asserts the tradeoff's direction: every cadence still
// detects, TTD never improves as the cadence coarsens, drain overhead
// strictly falls, and the default ring never drops.
func (r *CadenceSweepResult) CheckShape() error {
	for i, a := range r.Arms {
		if !a.Detected {
			return fmt.Errorf("cadence-sweep: arm %v missed the fault", a.Drain)
		}
		if a.Drops != 0 {
			return fmt.Errorf("cadence-sweep: arm %v dropped %d records with the default ring", a.Drain, a.Drops)
		}
		if i == 0 {
			continue
		}
		if a.TTD < r.Arms[i-1].TTD {
			return fmt.Errorf("cadence-sweep: TTD improved from %v to %v as cadence coarsened (%v -> %v)",
				r.Arms[i-1].TTD, a.TTD, r.Arms[i-1].Drain, a.Drain)
		}
		if a.Drains >= r.Arms[i-1].Drains {
			return fmt.Errorf("cadence-sweep: drains did not fall (%d -> %d) from %v to %v",
				r.Arms[i-1].Drains, a.Drains, r.Arms[i-1].Drain, a.Drain)
		}
	}
	return nil
}

// Metrics feeds the bench-regression guard.
func (r *CadenceSweepResult) Metrics() map[string]float64 {
	out := map[string]float64{}
	for _, a := range r.Arms {
		key := "streaming"
		if a.Drain > 0 {
			key = fmt.Sprintf("%.1fs", a.Drain.Seconds())
		}
		out["ttd_s_"+key] = a.TTD.Seconds()
		out["drains_"+key] = float64(a.Drains)
	}
	return out
}

// ---------------------------------------------------------------------------
// online/scale-sweep

// scalePoint is one fleet size's work accounting.
type scalePoint struct {
	JobN          int
	BatchPasses   int
	BatchCells    int
	Records       uint64
	OnlineUpdates uint64
	Fired         uint64
}

// BatchCellsPerPass is the batch master's per-pass recompute cost.
func (p scalePoint) BatchCellsPerPass() float64 {
	if p.BatchPasses == 0 {
		return 0
	}
	return float64(p.BatchCells) / float64(p.BatchPasses)
}

// OnlinePerRecord is the streaming cost per record in elementary state
// updates (records plus loop iterations on the per-record path). It must
// stay a small flat constant as the fleet grows — a per-record member
// scan would make it track fleet size.
func (p scalePoint) OnlinePerRecord() float64 {
	return metrics.Ratio(float64(p.OnlineUpdates), float64(p.Records))
}

// ScaleSweepResult benchmarks incremental ingest against full recompute
// as the fleet grows.
type ScaleSweepResult struct {
	Points []scalePoint
}

// Fired implements scenario.EventCounter.
func (r *ScaleSweepResult) Fired() uint64 {
	var n uint64
	for _, p := range r.Points {
		n += p.Fired
	}
	return n
}

// RunScaleSweep runs healthy jobs of growing size with both detectors
// attached and compares work: the batch master revisits every delay-
// matrix cell each pass (cost grows with fleet size), the streaming
// detector performs exactly one update per record at every scale.
func RunScaleSweep(ctx *scenario.Ctx) *ScaleSweepResult {
	sizes := []int{2, 4, 8}
	res := &ScaleSweepResult{Points: make([]scalePoint, len(sizes))}
	scenario.ForEach(len(sizes), ctx.Workers, func(i int) {
		out := runRace(raceConfig{
			jobN: sizes[i], spines: 8, horizon: 40 * sim.Second,
			seed: ctx.Seed + int64(sizes[i]),
		})
		res.Points[i] = scalePoint{
			JobN: sizes[i], BatchPasses: out.batchPasses, BatchCells: out.batchCells,
			Records: out.records, OnlineUpdates: out.onlineUpdates, Fired: out.fired,
		}
	})
	ctx.Track(res)
	return res
}

func (r *ScaleSweepResult) String() string {
	var sb strings.Builder
	sb.WriteString("online/scale-sweep — batch full recompute vs streaming incremental ingest\n")
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprint(p.JobN),
			fmt.Sprint(p.BatchPasses),
			fmt.Sprintf("%.1f", p.BatchCellsPerPass()),
			fmt.Sprint(p.Records),
			fmt.Sprintf("%.2f", p.OnlinePerRecord()),
		}
	}
	sb.WriteString(metrics.Table(
		[]string{"nodes", "batch passes", "cells/pass", "records", "online ops/record"}, rows))
	return sb.String()
}

// CheckShape asserts the asymptotic claim: per-pass batch cost grows
// strictly with fleet size while the streaming cost per record stays a
// small flat constant — bounded absolutely, and not growing from the
// smallest fleet to the largest (a reintroduced per-record member scan
// would trip either bound).
func (r *ScaleSweepResult) CheckShape() error {
	const maxPerRecord = 10.0
	for i, p := range r.Points {
		if p.BatchPasses == 0 || p.Records == 0 {
			return fmt.Errorf("scale-sweep: %d nodes did no work (passes %d, records %d)",
				p.JobN, p.BatchPasses, p.Records)
		}
		if c := p.OnlinePerRecord(); c < 1 || c > maxPerRecord {
			return fmt.Errorf("scale-sweep: %d nodes: online cost %.2f ops/record outside [1, %.0f]",
				p.JobN, c, maxPerRecord)
		}
		if c0 := r.Points[0].OnlinePerRecord(); p.OnlinePerRecord() > c0*1.15 {
			return fmt.Errorf("scale-sweep: online cost grew with fleet size (%.2f at %d nodes vs %.2f at %d): ingest is no longer O(1)/record",
				p.OnlinePerRecord(), p.JobN, c0, r.Points[0].JobN)
		}
		if i > 0 && p.BatchCellsPerPass() <= r.Points[i-1].BatchCellsPerPass() {
			return fmt.Errorf("scale-sweep: batch cells/pass did not grow (%d nodes %.1f -> %d nodes %.1f)",
				r.Points[i-1].JobN, r.Points[i-1].BatchCellsPerPass(), p.JobN, p.BatchCellsPerPass())
		}
	}
	return nil
}

// Metrics feeds the bench-regression guard.
func (r *ScaleSweepResult) Metrics() map[string]float64 {
	out := map[string]float64{}
	for _, p := range r.Points {
		out[fmt.Sprintf("batch_cells_per_pass_%dn", p.JobN)] = p.BatchCellsPerPass()
		out[fmt.Sprintf("records_%dn", p.JobN)] = float64(p.Records)
		out[fmt.Sprintf("online_ops_per_record_%dn", p.JobN)] = p.OnlinePerRecord()
	}
	return out
}
