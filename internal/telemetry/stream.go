package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"c4/internal/accl"
	"c4/internal/sim"
)

// The JSONL stream format: one record per line, nanosecond-integer
// timestamps for exact round-tripping (replay must be bit-identical to
// the live run). Field reference — documented in README.md:
//
//	t_ns   event time (virtual ns)            all kinds
//	kind   comm-create|comm-close|coll|msg|wait
//	node   collecting node (-1 = control)      all kinds
//	comm   communicator id                     all kinds
//	nodes  membership                          comm-create
//	seq    operation sequence number           coll, msg, wait
//	op     collective op, phase arrive|complete  coll
//	bytes  payload bytes                       coll, msg
//	src/dst, rail/plane/sport/qpn, start_ns/end_ns   msg
//	waiter/on, dur_ns                          wait

// wireRecord is the JSONL line shape.
type wireRecord struct {
	TNs  int64  `json:"t_ns"`
	Kind string `json:"kind"`
	Node int    `json:"node"`
	Comm int    `json:"comm"`

	Nodes []int `json:"nodes,omitempty"`

	Seq   int     `json:"seq,omitempty"`
	Op    string  `json:"op,omitempty"`
	Phase string  `json:"phase,omitempty"`
	Algo  string  `json:"algo,omitempty"`
	Bytes float64 `json:"bytes,omitempty"`

	Src     int    `json:"src,omitempty"`
	Dst     int    `json:"dst,omitempty"`
	Rail    int    `json:"rail,omitempty"`
	Plane   int    `json:"plane,omitempty"`
	Sport   uint16 `json:"sport,omitempty"`
	QPN     int    `json:"qpn,omitempty"`
	StartNs int64  `json:"start_ns,omitempty"`
	EndNs   int64  `json:"end_ns,omitempty"`

	Waiter int   `json:"waiter,omitempty"`
	On     int   `json:"on,omitempty"`
	DurNs  int64 `json:"dur_ns,omitempty"`
}

func toWire(r Record) wireRecord {
	w := wireRecord{TNs: int64(r.Time), Kind: r.Kind.String(), Node: r.Node, Comm: r.Comm}
	switch r.Kind {
	case KindCommCreate:
		w.Nodes = r.Nodes
	case KindColl:
		ev := r.Coll
		w.Seq, w.Op, w.Algo, w.Bytes = ev.Seq, string(ev.Op), ev.Algo, ev.Bytes
		if ev.Phase == accl.PhaseComplete {
			w.Phase = "complete"
		} else {
			w.Phase = "arrive"
		}
	case KindMsg:
		ev := r.Msg
		w.Seq, w.Bytes = ev.Seq, ev.Bytes
		w.Src, w.Dst = ev.SrcNode, ev.DstNode
		w.Rail, w.Plane, w.Sport, w.QPN = ev.Rail, ev.Plane, ev.Sport, ev.QPN
		w.StartNs, w.EndNs = int64(ev.Start), int64(ev.End)
	case KindWait:
		ev := r.Wait
		w.Seq, w.Waiter, w.On, w.DurNs = ev.Seq, ev.Waiter, ev.On, int64(ev.Dur)
	}
	return w
}

func fromWire(w wireRecord) (Record, error) {
	rec := Record{Time: sim.Time(w.TNs), Node: w.Node, Comm: w.Comm}
	switch w.Kind {
	case "comm-create":
		rec.Kind = KindCommCreate
		rec.Nodes = w.Nodes
	case "comm-close":
		rec.Kind = KindCommClose
	case "coll":
		rec.Kind = KindColl
		phase := accl.PhaseArrive
		if w.Phase == "complete" {
			phase = accl.PhaseComplete
		}
		rec.Coll = &accl.CollEvent{
			Time: sim.Time(w.TNs), Comm: w.Comm, Seq: w.Seq, Node: w.Node,
			Op: accl.OpType(w.Op), Algo: w.Algo, Bytes: w.Bytes, Phase: phase,
		}
	case "msg":
		rec.Kind = KindMsg
		rec.Msg = &accl.MsgEvent{
			Comm: w.Comm, Seq: w.Seq, SrcNode: w.Src, DstNode: w.Dst,
			Rail: w.Rail, Plane: w.Plane, Sport: w.Sport, QPN: w.QPN,
			Bytes: w.Bytes, Start: sim.Time(w.StartNs), End: sim.Time(w.EndNs),
		}
	case "wait":
		rec.Kind = KindWait
		rec.Wait = &accl.WaitEvent{
			Time: sim.Time(w.TNs), Comm: w.Comm, Seq: w.Seq,
			Waiter: w.Waiter, On: w.On, Dur: sim.Time(w.DurNs),
		}
	default:
		return Record{}, fmt.Errorf("telemetry: unknown record kind %q", w.Kind)
	}
	return rec, nil
}

// EncodeRecord serializes one record as a JSONL line (trailing newline
// included), byte-identical to the lines a StreamWriter emits. The
// serving plane uses it to frame individual records into SSE events
// without re-implementing the wire format.
func EncodeRecord(r Record) ([]byte, error) {
	b, err := json.Marshal(toWire(r))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// StreamWriter serializes the record stream as JSONL. It implements
// Sink, so it plugs into a Pipeline beside the online detector.
type StreamWriter struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewStreamWriter wraps a writer.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{w: bufio.NewWriter(w)}
}

// Observe implements Sink. The first encode or write error sticks —
// further records are dropped — and is reported by both Err and Flush,
// so a streaming caller can notice a broken writer mid-run and terminate
// the stream instead of silently losing the rest of it.
func (s *StreamWriter) Observe(r Record) {
	if s.err != nil {
		return
	}
	line, err := EncodeRecord(r)
	if err == nil {
		_, err = s.w.Write(line)
	}
	if err != nil {
		s.err = err
		return
	}
	s.n++
}

// Written reports how many records were serialized.
func (s *StreamWriter) Written() uint64 { return s.n }

// Err reports the first encode or write error encountered, without
// flushing. It is the cheap liveness probe for long-lived streams: nil
// means every Observe so far was serialized (possibly still buffered).
func (s *StreamWriter) Err() error { return s.err }

// Flush drains the buffer and returns the first error encountered.
func (s *StreamWriter) Flush() error {
	if s.err != nil {
		return s.err
	}
	if err := s.w.Flush(); err != nil {
		s.err = err
	}
	return s.err
}

// ReadStream parses a JSONL telemetry stream. Blank lines are skipped; a
// malformed line fails with its line number.
func ReadStream(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var w wireRecord
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, fmt.Errorf("telemetry: stream line %d: %w", line, err)
		}
		rec, err := fromWire(w)
		if err != nil {
			return nil, fmt.Errorf("telemetry: stream line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading stream: %w", err)
	}
	return out, nil
}

// Replay drives a recorded stream through a fresh OnlineDetector,
// advancing a private engine to each record's event time so hang alarms
// fire exactly as they would have live — offline triage is bit-identical
// to the live run. tail extends the clock past the last record, letting
// timeout verdicts about the stream's silent end ripen (0 = stop at the
// last record: an ended capture is not a hang).
func Replay(records []Record, cfg DetectorConfig, tail sim.Time) *OnlineDetector {
	eng := sim.NewEngine()
	det := NewOnlineDetector(eng, cfg)
	for _, rec := range records {
		if rec.Time > eng.Now() {
			eng.RunUntil(rec.Time)
		}
		det.Observe(rec)
	}
	if tail > 0 {
		eng.RunFor(tail)
	}
	det.Stop()
	return det
}
