package telemetry

import (
	"fmt"
	"testing"

	"c4/internal/c4d"
)

// The incremental-vs-full-recompute benchmark behind online/scale-sweep:
// one streaming DelayMatrix update per record versus one batch
// AnalyzeDelayMatrix pass over a same-sized window. Run via `make bench`.

// ringPairs enumerates an n-node ring's (src,dst) edges.
func ringPairs(n int) [][2]int {
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		out[i] = [2]int{i, (i + 1) % n}
	}
	return out
}

func BenchmarkIncrementalObserve(b *testing.B) {
	for _, nodes := range []int{8, 32, 128} {
		pairs := ringPairs(nodes)
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			m := NewDelayMatrix(0.4)
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				m.Observe(p[0], p[1], 100)
			}
		})
	}
}

func BenchmarkBatchAnalyzePass(b *testing.B) {
	for _, nodes := range []int{8, 32, 128} {
		bw := map[[2]int]float64{}
		for _, p := range ringPairs(nodes) {
			bw[p] = 100
		}
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c4d.AnalyzeDelayMatrix(bw, 2, 0.6)
			}
		})
	}
}
