package telemetry

import (
	"fmt"
	"sort"

	"c4/internal/accl"
	"c4/internal/c4d"
	"c4/internal/sim"
)

// DetectorConfig tunes the online detector. Thresholds deliberately mirror
// c4d.Config so the two arms disagree only in *when* they can fire, never
// in *what* they consider anomalous.
type DetectorConfig struct {
	// HangTimeout is how long a collective may make no progress before the
	// hang alarms fire. Default 30 s.
	HangTimeout sim.Time
	// Kappa is the slowdown multiple considered anomalous. Default 2.
	Kappa float64
	// WaitKappa is how many times the runner-up the top straggler's
	// decayed waited-on time must exceed. Default 3.
	WaitKappa float64
	// MinWait is the decayed waited-on floor. Default 50 ms.
	MinWait sim.Time
	// WaitTau is the straggler accumulator's decay constant — the
	// streaming analogue of the batch reporting window. Default 5 s.
	WaitTau sim.Time
	// DedupInterval suppresses repeated identical detections. Default 60 s.
	DedupInterval sim.Time
	// Alpha is the bandwidth EWMA smoothing factor. Default 0.4.
	Alpha float64
	// MinPairObs is how many observations a pair needs before it can be
	// judged slow. Default 3.
	MinPairObs int
	// MinTotalObs is the global warmup before any slowness verdict.
	// Default 24.
	MinTotalObs int
	// MinLineObs is the distinct-peer breadth a row/column verdict needs
	// (below it, slowness stays at connection scope, matching the batch
	// analyzer's minLineCells). Default 3.
	MinLineObs int
}

// DefaultDetectorConfig returns the tuning used across the repository.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		HangTimeout:   30 * sim.Second,
		Kappa:         2,
		WaitKappa:     3,
		MinWait:       50 * sim.Millisecond,
		WaitTau:       5 * sim.Second,
		DedupInterval: 60 * sim.Second,
		Alpha:         0.4,
		MinPairObs:    3,
		MinTotalObs:   24,
		MinLineObs:    3,
	}
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	d := DefaultDetectorConfig()
	if c.HangTimeout <= 0 {
		c.HangTimeout = d.HangTimeout
	}
	if c.Kappa <= 0 {
		c.Kappa = d.Kappa
	}
	if c.WaitKappa <= 0 {
		c.WaitKappa = d.WaitKappa
	}
	if c.MinWait <= 0 {
		c.MinWait = d.MinWait
	}
	if c.WaitTau <= 0 {
		c.WaitTau = d.WaitTau
	}
	if c.DedupInterval <= 0 {
		c.DedupInterval = d.DedupInterval
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = d.Alpha
	}
	if c.MinPairObs <= 0 {
		c.MinPairObs = d.MinPairObs
	}
	if c.MinTotalObs <= 0 {
		c.MinTotalObs = d.MinTotalObs
	}
	if c.MinLineObs <= 0 {
		c.MinLineObs = d.MinLineObs
	}
	return c
}

// commWatch is the per-communicator incremental state.
type commWatch struct {
	comm  int
	nodes []int

	arriveSeq    map[int]int
	completeSeq  map[int]int
	seqFirstArr  map[int]sim.Time
	lastProgress sim.Time

	// Incrementally maintained view of the newest operation (seq maxArr):
	// how many members have arrived at it and whether anyone completed
	// it. These make hangDeadline O(1) per record; the full member scans
	// run only when an alarm actually fires.
	maxArr       int
	arrivedAtMax int
	completedMax bool

	opTx map[int]map[int]bool
	opRx map[int]map[int]bool

	matrix *DelayMatrix
	waits  map[int]*DecayAccum

	alarm   *sim.Event
	alarmAt sim.Time
}

// OnlineDetector turns the merged record stream into Detections the
// moment a threshold crosses. Slowness fires inside the Observe call that
// pushed an aggregate over the line; hangs — which are the *absence* of
// records — fire from engine alarms armed at the exact instant the
// timeout can first be satisfied. Either way, detection latency is set by
// the evidence, not by a reporting tick.
type OnlineDetector struct {
	cfg DetectorConfig
	eng *sim.Engine

	comms      map[int]*commWatch
	detections []c4d.Detection
	handlers   []func(c4d.Detection)
	lastFire   map[string]sim.Time
	updates    uint64
}

// NewOnlineDetector creates a detector bound to the engine (needed for
// hang alarms).
func NewOnlineDetector(eng *sim.Engine, cfg DetectorConfig) *OnlineDetector {
	return &OnlineDetector{
		cfg:      cfg.withDefaults(),
		eng:      eng,
		comms:    map[int]*commWatch{},
		lastFire: map[string]sim.Time{},
	}
}

// Config returns the effective configuration.
func (d *OnlineDetector) Config() DetectorConfig { return d.cfg }

// Subscribe registers a handler invoked on every new detection.
func (d *OnlineDetector) Subscribe(h func(c4d.Detection)) {
	d.handlers = append(d.handlers, h)
}

// Detections returns every detection fired so far.
func (d *OnlineDetector) Detections() []c4d.Detection {
	return append([]c4d.Detection(nil), d.detections...)
}

// Updates reports the total elementary state-update operations performed:
// one per record plus one per loop iteration taken on the per-record
// path. It is the streaming work metric the scale sweep compares against
// the batch master's MatrixCellVisits — and because loop iterations
// count, a regression that reintroduces a per-record member scan shows
// up as updates-per-record growing with fleet size.
func (d *OnlineDetector) Updates() uint64 { return d.updates }

// Stop cancels all pending hang alarms (end of simulation).
func (d *OnlineDetector) Stop() {
	for _, w := range d.comms {
		if w.alarm != nil {
			w.alarm.Cancel()
			w.alarm = nil
		}
	}
}

// Observe folds one stream record into the incremental state and fires
// any detection it completes.
func (d *OnlineDetector) Observe(rec Record) {
	d.updates++
	switch rec.Kind {
	case KindCommCreate:
		d.comms[rec.Comm] = &commWatch{
			comm:        rec.Comm,
			nodes:       append([]int(nil), rec.Nodes...),
			arriveSeq:   map[int]int{},
			completeSeq: map[int]int{},
			seqFirstArr: map[int]sim.Time{},
			opTx:        map[int]map[int]bool{},
			opRx:        map[int]map[int]bool{},
			matrix:      NewDelayMatrix(d.cfg.Alpha),
			waits:       map[int]*DecayAccum{},
		}
	case KindCommClose:
		if w := d.comms[rec.Comm]; w != nil {
			if w.alarm != nil {
				w.alarm.Cancel()
			}
			delete(d.comms, rec.Comm)
		}
	case KindColl:
		if w := d.comms[rec.Comm]; w != nil && rec.Coll != nil {
			d.observeColl(w, *rec.Coll)
		}
	case KindMsg:
		if w := d.comms[rec.Comm]; w != nil && rec.Msg != nil {
			d.observeMsg(w, *rec.Msg)
		}
	case KindWait:
		if w := d.comms[rec.Comm]; w != nil && rec.Wait != nil {
			d.observeWait(w, *rec.Wait)
		}
	}
}

func (d *OnlineDetector) emit(det c4d.Detection) {
	key := fmt.Sprintf("%d/%v/%v", det.Comm, det.Syndrome, det.Suspects)
	if last, ok := d.lastFire[key]; ok && det.At-last < d.cfg.DedupInterval {
		return
	}
	d.lastFire[key] = det.At
	d.detections = append(d.detections, det)
	for _, h := range d.handlers {
		h(det)
	}
}

func (d *OnlineDetector) observeColl(w *commWatch, ev accl.CollEvent) {
	switch ev.Phase {
	case accl.PhaseArrive:
		if old := w.arriveSeq[ev.Node]; ev.Seq > old {
			w.arriveSeq[ev.Node] = ev.Seq
			switch {
			case ev.Seq > w.maxArr:
				// A new newest operation: this node is its first member,
				// and nothing can have completed it yet (completion
				// implies arrival).
				w.maxArr = ev.Seq
				w.arrivedAtMax = 1
				w.completedMax = false
				// Bound memory: first-arrival times of long-finished
				// operations are useless (same window as opTx/opRx).
				for seq := range w.seqFirstArr {
					d.updates++
					if seq < w.maxArr-8 {
						delete(w.seqFirstArr, seq)
					}
				}
			case ev.Seq == w.maxArr && old < w.maxArr:
				w.arrivedAtMax++
			}
		}
		if t, ok := w.seqFirstArr[ev.Seq]; !ok || ev.Time < t {
			w.seqFirstArr[ev.Seq] = ev.Time
		}
	case accl.PhaseComplete:
		if ev.Seq > w.completeSeq[ev.Node] {
			w.completeSeq[ev.Node] = ev.Seq
		}
		if ev.Seq >= w.maxArr {
			w.completedMax = true
		}
	}
	d.rearmHangAlarm(w)
}

func (d *OnlineDetector) observeMsg(w *commWatch, ev accl.MsgEvent) {
	if ev.End > w.lastProgress {
		w.lastProgress = ev.End
	}
	if w.opTx[ev.Seq] == nil {
		w.opTx[ev.Seq] = map[int]bool{}
		w.opRx[ev.Seq] = map[int]bool{}
	}
	w.opTx[ev.Seq][ev.SrcNode] = true
	w.opRx[ev.Seq][ev.DstNode] = true
	for seq := range w.opTx {
		d.updates++
		if seq < ev.Seq-8 {
			delete(w.opTx, seq)
			delete(w.opRx, seq)
		}
	}
	if dur := ev.Duration(); dur > 0 {
		bw := ev.Bytes * 8 / dur.Seconds() / 1e9 // Gbps
		w.matrix.Observe(ev.SrcNode, ev.DstNode, bw)
		d.checkCommSlow(w, ev.SrcNode, ev.DstNode)
	}
	d.rearmHangAlarm(w)
}

func (d *OnlineDetector) observeWait(w *commWatch, ev accl.WaitEvent) {
	acc := w.waits[ev.On]
	if acc == nil {
		acc = &DecayAccum{Tau: d.cfg.WaitTau}
		w.waits[ev.On] = acc
	}
	acc.Add(ev.Time, ev.Dur.Seconds())
	// O(1) precheck: the member scan can only produce a verdict when the
	// node this record updated clears the absolute floor, which healthy
	// jitter-level waits never do. The verdict itself is stamped at the
	// delivery instant — under a batched drain cadence the detector
	// cannot claim to have known before the drain.
	now := d.eng.Now()
	if acc.ValueAt(now) < d.cfg.MinWait.Seconds() {
		return
	}
	d.checkStraggler(w, now)
}

// checkCommSlow judges the pair (and its row/column) the record just
// updated against the sketch's healthy median.
func (d *OnlineDetector) checkCommSlow(w *commWatch, src, dst int) {
	if w.matrix.sketch.Count() < uint64(d.cfg.MinTotalObs) {
		return
	}
	med := w.matrix.Median()
	if med <= 0 {
		return
	}
	now := d.eng.Now()
	threshold := med / d.cfg.Kappa

	// Row/column verdicts first (broader evidence), mirroring the batch
	// analyzer's preference, but only with enough distinct peers to tell
	// a NIC side from a single bad cable.
	if v, n, dsts := w.matrix.Row(src); dsts >= d.cfg.MinLineObs &&
		n >= d.cfg.MinPairObs*d.cfg.MinLineObs && v > 0 && v < threshold {
		d.emit(c4d.Detection{
			At: now, Comm: w.comm, Syndrome: c4d.CommSlow, Suspects: []int{src},
			Severity: med / v, Detail: "streaming matrix row slow: source Tx degraded",
		})
		return
	}
	if v, n, srcs := w.matrix.Col(dst); srcs >= d.cfg.MinLineObs &&
		n >= d.cfg.MinPairObs*d.cfg.MinLineObs && v > 0 && v < threshold {
		d.emit(c4d.Detection{
			At: now, Comm: w.comm, Syndrome: c4d.CommSlow, Suspects: []int{dst},
			Severity: med / v, Detail: "streaming matrix column slow: destination Rx degraded",
		})
		return
	}
	if v, n := w.matrix.Pair(src, dst); n >= d.cfg.MinPairObs && v > 0 && v < threshold {
		d.emit(c4d.Detection{
			At: now, Comm: w.comm, Syndrome: c4d.CommSlow, Suspects: []int{src, dst},
			Severity: med / v, Detail: "streaming connection slow",
		})
	}
}

// checkStraggler compares decayed waited-on time across members.
func (d *OnlineDetector) checkStraggler(w *commWatch, now sim.Time) {
	var top, second float64
	topNode := -1
	nodes := make([]int, 0, len(w.waits))
	for n := range w.waits {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		d.updates++
		v := w.waits[n].ValueAt(now)
		if v > top {
			second = top
			top, topNode = v, n
		} else if v > second {
			second = v
		}
	}
	if topNode < 0 || top < d.cfg.MinWait.Seconds() {
		return
	}
	if second > 0 && top < d.cfg.WaitKappa*second {
		return
	}
	d.emit(c4d.Detection{
		At: now, Comm: w.comm, Syndrome: c4d.NonCommSlow, Suspects: []int{topNode},
		Severity: top / d.cfg.WaitTau.Seconds(),
		Detail:   fmt.Sprintf("peers' decayed wait on this node %.3fs", top),
	})
}

// hangDeadline computes the earliest instant a hang verdict could become
// true given current evidence, or 0 when none applies. O(1): it reads
// the incrementally maintained newest-op counters, never scanning the
// membership — this runs on every data record.
func (w *commWatch) hangDeadline(timeout sim.Time) sim.Time {
	if w.maxArr == 0 {
		return 0
	}
	firstArr := w.seqFirstArr[w.maxArr]
	switch {
	case w.arrivedAtMax < len(w.nodes):
		// A peer is missing from op maxArr: non-comm hang ripens at
		// firstArr + timeout.
		return firstArr + timeout
	case !w.completedMax:
		// Everyone entered, nobody finished: comm hang ripens timeout
		// after the last transport progress.
		last := w.lastProgress
		if firstArr > last {
			last = firstArr
		}
		return last + timeout
	}
	return 0
}

// rearmHangAlarm (re)schedules the comm's alarm at the current deadline.
func (d *OnlineDetector) rearmHangAlarm(w *commWatch) {
	deadline := w.hangDeadline(d.cfg.HangTimeout)
	if deadline == 0 {
		if w.alarm != nil {
			w.alarm.Cancel()
			w.alarm = nil
		}
		return
	}
	if w.alarm != nil && !w.alarm.Cancelled() && w.alarmAt == deadline {
		return
	}
	at := deadline
	if now := d.eng.Now(); at < now {
		at = now
	}
	w.alarmAt = deadline
	// Move the queued alarm in place; falls back to a fresh event when the
	// old one already fired or was cancelled. Reschedule assigns a fresh
	// sequence number, so the firing order matches cancel-and-recreate.
	if d.eng.Reschedule(w.alarm, at) {
		return
	}
	w.alarm = d.eng.Schedule(at, func() { d.hangAlarm(w) })
}

// hangAlarm re-evaluates the hang conditions at the exact deadline.
func (d *OnlineDetector) hangAlarm(w *commWatch) {
	w.alarm = nil
	if d.comms[w.comm] != w {
		return // closed and replaced
	}
	now := d.eng.Now()
	maxArr := w.maxArr
	if maxArr == 0 {
		return
	}
	firstArr := w.seqFirstArr[maxArr]
	age := now - firstArr

	allArrived := w.arrivedAtMax >= len(w.nodes)
	switch {
	case !allArrived && age >= d.cfg.HangTimeout:
		// Alarms are rare; the member scan to name the missing peers is
		// fine here.
		var missing []int
		for _, n := range w.nodes {
			if w.arriveSeq[n] < maxArr {
				missing = append(missing, n)
			}
		}
		d.emit(c4d.Detection{
			At: now, Comm: w.comm, Syndrome: c4d.NonCommHang, Suspects: missing,
			Severity: age.Seconds(),
			Detail:   fmt.Sprintf("no kernel launch for op %d (peers launched %v ago)", maxArr, age),
		})
	case allArrived && !w.completedMax:
		last := w.lastProgress
		if firstArr > last {
			last = firstArr
		}
		if now-last < d.cfg.HangTimeout {
			break
		}
		tx, rx := w.opTx[maxArr], w.opRx[maxArr]
		var blamed []int
		for _, n := range w.nodes {
			if !tx[n] && !rx[n] {
				blamed = append(blamed, n)
			}
		}
		if len(tx) == 0 && len(rx) == 0 || len(blamed) == 0 || len(blamed) == len(w.nodes) {
			blamed = w.nodes[:1] // no discriminating evidence: same fallback as batch
		}
		d.emit(c4d.Detection{
			At: now, Comm: w.comm, Syndrome: c4d.CommHang, Suspects: blamed,
			Severity: (now - last).Seconds(),
			Detail:   fmt.Sprintf("op %d transport silent for %v", maxArr, now-last),
		})
	}
	// Keep watching: a persistent hang re-fires after dedup expires, and a
	// hang that develops later still has its alarm armed.
	w.alarmAt = now + d.cfg.HangTimeout
	w.alarm = d.eng.Schedule(w.alarmAt, func() { d.hangAlarm(w) })
}
