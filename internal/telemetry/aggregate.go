package telemetry

import (
	"math"

	"c4/internal/sim"
)

// Incremental aggregates: every structure here updates in O(1) per record,
// which is what makes the streaming detector's per-record cost independent
// of fleet size where the batch master's per-pass cost is not.

// EWMA is an exponentially weighted moving average. The first observation
// seeds the average directly so warmup is unbiased.
type EWMA struct {
	// Alpha is the smoothing factor in (0,1]: the weight of each new
	// observation. Higher reacts faster, lower smooths harder.
	Alpha float64

	v float64
	n int
}

// Observe folds one observation in.
func (e *EWMA) Observe(x float64) {
	if e.n == 0 {
		e.v = x
	} else {
		e.v = e.Alpha*x + (1-e.Alpha)*e.v
	}
	e.n++
}

// Value reports the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Count reports how many observations were folded in.
func (e *EWMA) Count() int { return e.n }

// DecayAccum is an event-time-decayed accumulator: Add folds in a value
// at an instant, exponentially fading everything older with time constant
// Tau. It turns a stream of (time, duration) wait records into a rolling
// "recent waited-on time" without windowing — the streaming counterpart of
// the batch master's per-window wait totals.
type DecayAccum struct {
	Tau sim.Time

	v    float64
	last sim.Time
}

func (d *DecayAccum) decayTo(t sim.Time) {
	if t <= d.last || d.v == 0 {
		if t > d.last {
			d.last = t
		}
		return
	}
	dt := float64(t-d.last) / float64(d.Tau)
	d.v *= math.Exp(-dt)
	d.last = t
}

// Add folds in a value observed at instant t.
func (d *DecayAccum) Add(t sim.Time, x float64) {
	d.decayTo(t)
	d.v += x
}

// ValueAt reports the decayed accumulation as of instant t.
func (d *DecayAccum) ValueAt(t sim.Time) float64 {
	if t <= d.last {
		return d.v
	}
	return d.v * math.Exp(-float64(t-d.last)/float64(d.Tau))
}

// QuantileSketch is a fixed-bin streaming quantile estimator:
// observations land in log-spaced bins over [Lo, Hi], inserts are O(1),
// and quantile queries interpolate within the winning bin. Accuracy is
// bounded by the bin width (a constant relative error), which is exactly
// what the online detector needs: a stable healthy-median estimate to
// threshold slowdowns against, at O(1) per record instead of the batch
// analyzer's sort-the-window Median.
type QuantileSketch struct {
	lo, hi  float64
	logLo   float64
	logStep float64
	counts  []uint64
	total   uint64
}

// NewQuantileSketch creates a sketch over (lo, hi] with the given bin
// count. Observations at or below lo land in the first bin; above hi in
// the last.
func NewQuantileSketch(lo, hi float64, bins int) *QuantileSketch {
	if bins < 2 {
		bins = 2
	}
	if lo <= 0 {
		lo = 1e-9
	}
	if hi <= lo {
		hi = lo * 2
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	return &QuantileSketch{
		lo: lo, hi: hi,
		logLo:   logLo,
		logStep: (logHi - logLo) / float64(bins),
		counts:  make([]uint64, bins),
	}
}

func (q *QuantileSketch) bin(v float64) int {
	if v <= q.lo {
		return 0
	}
	b := int((math.Log(v) - q.logLo) / q.logStep)
	if b >= len(q.counts) {
		b = len(q.counts) - 1
	}
	return b
}

// Observe inserts one observation.
func (q *QuantileSketch) Observe(v float64) {
	q.counts[q.bin(v)]++
	q.total++
}

// Count reports the number of observations.
func (q *QuantileSketch) Count() uint64 { return q.total }

// Quantile estimates the p-quantile (p in [0,1]); 0 before any
// observation. The estimate is the geometric midpoint of the bin holding
// the p-th observation.
func (q *QuantileSketch) Quantile(p float64) float64 {
	if q.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(q.total-1))
	var cum uint64
	for i, c := range q.counts {
		cum += c
		if cum > rank {
			return math.Exp(q.logLo + (float64(i)+0.5)*q.logStep)
		}
	}
	return q.hi
}

// DelayMatrix is the streaming Fig 7 delay matrix: per-pair, per-row
// (source NIC) and per-column (destination NIC) bandwidth EWMAs plus a
// quantile sketch of all observations for the healthy-median baseline.
// One Observe is a constant number of EWMA/sketch updates regardless of
// fleet size — the hot-path contrast with c4d.AnalyzeDelayMatrix, which
// revisits every cell of the window on every pass.
type DelayMatrix struct {
	alpha  float64
	pairs  map[[2]int]*EWMA
	rows   map[int]*EWMA
	cols   map[int]*EWMA
	rowDst map[int]map[int]bool // src -> distinct destinations seen
	colSrc map[int]map[int]bool
	sketch *QuantileSketch

	updates uint64
}

// NewDelayMatrix creates a matrix with the given EWMA smoothing factor.
// The sketch spans 0.01..10000 of whatever bandwidth unit Observe is fed
// (Gbps throughout this repository).
func NewDelayMatrix(alpha float64) *DelayMatrix {
	return &DelayMatrix{
		alpha:  alpha,
		pairs:  map[[2]int]*EWMA{},
		rows:   map[int]*EWMA{},
		cols:   map[int]*EWMA{},
		rowDst: map[int]map[int]bool{},
		colSrc: map[int]map[int]bool{},
		sketch: NewQuantileSketch(0.01, 10000, 256),
	}
}

func (m *DelayMatrix) ewma(mp map[int]*EWMA, k int) *EWMA {
	e := mp[k]
	if e == nil {
		e = &EWMA{Alpha: m.alpha}
		mp[k] = e
	}
	return e
}

// Observe folds in one transfer's bandwidth.
func (m *DelayMatrix) Observe(src, dst int, bw float64) {
	key := [2]int{src, dst}
	p := m.pairs[key]
	if p == nil {
		p = &EWMA{Alpha: m.alpha}
		m.pairs[key] = p
	}
	p.Observe(bw)
	m.ewma(m.rows, src).Observe(bw)
	m.ewma(m.cols, dst).Observe(bw)
	if m.rowDst[src] == nil {
		m.rowDst[src] = map[int]bool{}
	}
	m.rowDst[src][dst] = true
	if m.colSrc[dst] == nil {
		m.colSrc[dst] = map[int]bool{}
	}
	m.colSrc[dst][src] = true
	m.sketch.Observe(bw)
	m.updates++
}

// Updates reports the total O(1) update operations performed.
func (m *DelayMatrix) Updates() uint64 { return m.updates }

// Median estimates the healthy baseline bandwidth across all transfers.
func (m *DelayMatrix) Median() float64 { return m.sketch.Quantile(0.5) }

// Pair returns a pair's smoothed bandwidth and observation count.
func (m *DelayMatrix) Pair(src, dst int) (float64, int) {
	p := m.pairs[[2]int{src, dst}]
	if p == nil {
		return 0, 0
	}
	return p.Value(), p.Count()
}

// Row returns a source node's smoothed transmit bandwidth, observation
// count, and how many distinct destinations contributed.
func (m *DelayMatrix) Row(src int) (float64, int, int) {
	e := m.rows[src]
	if e == nil {
		return 0, 0, 0
	}
	return e.Value(), e.Count(), len(m.rowDst[src])
}

// Col returns a destination node's smoothed receive bandwidth,
// observation count, and distinct contributing sources.
func (m *DelayMatrix) Col(dst int) (float64, int, int) {
	e := m.cols[dst]
	if e == nil {
		return 0, 0, 0
	}
	return e.Value(), e.Count(), len(m.colSrc[dst])
}
