// Package telemetry is the streaming counterpart of the batch C4D
// pipeline: where the agent fleet buffers a full reporting window and the
// master recomputes every detector over it from scratch (detection latency
// quantized to the tick, per-pass cost growing with fleet size), this
// package ingests ACCL monitoring records as they happen through bounded
// per-node ring collectors, merges them in deterministic event-time order,
// folds them into incremental aggregates (EWMA, fixed-bin streaming
// quantile sketch, O(1)-per-record delay-matrix updates) and lets an
// online detector fire the instant a threshold crosses — sub-tick
// time-to-detect instead of waiting for the next Analyze pass.
//
// The same record stream serializes to a JSONL format (stream.go) that
// cmd/c4watch replays offline for post-hoc triage, and the online/*
// scenario family (scenarios.go) races the streaming detector against
// batch C4D on identical fault schedules, scoring TimeToDetect against
// the fault-injection ground truth.
package telemetry

import (
	"fmt"

	"c4/internal/accl"
	"c4/internal/sim"
)

// Kind labels a stream record.
type Kind uint8

// The five record kinds, mirroring accl.StatsSink's methods.
const (
	// KindCommCreate announces a communicator and its membership.
	KindCommCreate Kind = iota
	// KindCommClose retires a communicator.
	KindCommClose
	// KindColl is an operation-layer record (kernel arrive/complete).
	KindColl
	// KindMsg is a transport-layer record (message completion).
	KindMsg
	// KindWait is a receiver-driven blocking record.
	KindWait
)

func (k Kind) String() string {
	switch k {
	case KindCommCreate:
		return "comm-create"
	case KindCommClose:
		return "comm-close"
	case KindColl:
		return "coll"
	case KindMsg:
		return "msg"
	case KindWait:
		return "wait"
	}
	return "unknown"
}

// Record is one telemetry stream element: an ACCL monitoring record
// stamped with its event time and the node whose collector captured it.
// Exactly one payload pointer is set, matching Kind.
type Record struct {
	Time sim.Time
	Node int // collection point; -1 for communicator control records
	Kind Kind
	Comm int

	Nodes []int // KindCommCreate: membership
	Coll  *accl.CollEvent
	Msg   *accl.MsgEvent
	Wait  *accl.WaitEvent
}

func (r Record) String() string {
	return fmt.Sprintf("[%v] %v n%d comm %d", r.Time, r.Kind, r.Node, r.Comm)
}

// RecordOfColl wraps an operation record; its event time is the record's.
func RecordOfColl(ev accl.CollEvent) Record {
	cp := ev
	return Record{Time: ev.Time, Node: ev.Node, Kind: KindColl, Comm: ev.Comm, Coll: &cp}
}

// RecordOfMsg wraps a transport record, collected on the sending side
// (where the QP counters live) at message completion.
func RecordOfMsg(ev accl.MsgEvent) Record {
	cp := ev
	return Record{Time: ev.End, Node: ev.SrcNode, Kind: KindMsg, Comm: ev.Comm, Msg: &cp}
}

// RecordOfWait wraps a blocking record, collected on the waiting side.
func RecordOfWait(ev accl.WaitEvent) Record {
	cp := ev
	return Record{Time: ev.Time, Node: ev.Waiter, Kind: KindWait, Comm: ev.Comm, Wait: &cp}
}
