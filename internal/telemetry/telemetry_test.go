package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"c4/internal/accl"
	"c4/internal/sim"
)

func TestCollectorRingDropsOldest(t *testing.T) {
	c := NewCollector(3, 4)
	for i := 0; i < 6; i++ {
		c.Push(Record{Time: sim.Time(i), Node: 3, Kind: KindMsg})
	}
	if c.Len() != 4 || c.Pushed() != 6 || c.Dropped() != 2 {
		t.Fatalf("len=%d pushed=%d dropped=%d, want 4/6/2", c.Len(), c.Pushed(), c.Dropped())
	}
	got := c.Drain(nil)
	if len(got) != 4 {
		t.Fatalf("drained %d records", len(got))
	}
	for i, rec := range got {
		if rec.Time != sim.Time(i+2) {
			t.Fatalf("record %d has time %v, want %v (oldest two dropped)", i, rec.Time, sim.Time(i+2))
		}
	}
	if c.Len() != 0 {
		t.Fatal("drain did not empty the ring")
	}
	// Reuse after drain keeps working.
	c.Push(Record{Time: 99})
	if got := c.Drain(nil); len(got) != 1 || got[0].Time != 99 {
		t.Fatalf("post-drain push lost: %v", got)
	}
}

func TestMergeByTimeDeterministicOrder(t *testing.T) {
	mk := func(tm sim.Time, node, seq int) Record {
		return Record{Time: tm, Node: node, Kind: KindColl,
			Coll: &accl.CollEvent{Seq: seq}}
	}
	// Two nodes drained in node order, interleaved times with a tie at 5.
	batch := []Record{
		mk(1, 0, 1), mk(5, 0, 2), mk(9, 0, 3), // node 0
		mk(2, 1, 1), mk(5, 1, 2), // node 1
	}
	merged := MergeByTime(append([]Record(nil), batch...))
	var order []int
	for _, r := range merged {
		order = append(order, r.Node)
	}
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merge order = %v, want %v", order, want)
		}
	}
	// Ties break by node; within a node, push order is preserved.
	if merged[1].Time != 2 || merged[2].Time != 5 || merged[2].Node != 0 {
		t.Fatalf("tie-break wrong: %v", merged)
	}
}

func TestEWMAWarmupAndSmoothing(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("fresh EWMA not zero")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first observation must seed directly, got %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d", e.Count())
	}
}

func TestDecayAccumFades(t *testing.T) {
	d := DecayAccum{Tau: sim.Second}
	d.Add(0, 1.0)
	if got := d.ValueAt(0); got != 1.0 {
		t.Fatalf("value at add time = %v", got)
	}
	if got := d.ValueAt(sim.Second); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("one tau later = %v, want e^-1", got)
	}
	// Adding later decays the old mass first.
	d.Add(sim.Second, 1.0)
	want := 1 + math.Exp(-1)
	if got := d.ValueAt(sim.Second); math.Abs(got-want) > 1e-12 {
		t.Fatalf("accumulated = %v, want %v", got, want)
	}
	// Queries never mutate: asking about the past returns current mass.
	if got := d.ValueAt(0); got != d.ValueAt(sim.Second) {
		t.Fatalf("past query mutated or diverged: %v", got)
	}
}

func TestQuantileSketchMedian(t *testing.T) {
	q := NewQuantileSketch(0.1, 1000, 256)
	if q.Quantile(0.5) != 0 {
		t.Fatal("empty sketch must report 0")
	}
	for i := 0; i < 1000; i++ {
		q.Observe(100) // tight cluster
	}
	med := q.Quantile(0.5)
	if med < 90 || med > 110 {
		t.Fatalf("median of constant-100 stream = %v", med)
	}
	// A minority of outliers must not drag the median.
	for i := 0; i < 100; i++ {
		q.Observe(1)
	}
	med = q.Quantile(0.5)
	if med < 90 || med > 110 {
		t.Fatalf("median with 9%% outliers = %v", med)
	}
	if q.Count() != 1100 {
		t.Fatalf("count = %d", q.Count())
	}
	// Extremes clamp to the range.
	q.Observe(0)   // below lo -> first bin
	q.Observe(1e9) // above hi -> last bin
	if got := q.Quantile(0); got <= 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := q.Quantile(1); got > 1000*1.1 {
		t.Fatalf("q1 = %v beyond range", got)
	}
}

func TestDelayMatrixIncrementalUpdates(t *testing.T) {
	m := NewDelayMatrix(0.5)
	// 4-node all-to-all at 100, with pair (1,2) at 25 (4x slow).
	for round := 0; round < 10; round++ {
		for s := 0; s < 4; s++ {
			for d := 0; d < 4; d++ {
				if s == d {
					continue
				}
				bw := 100.0
				if s == 1 && d == 2 {
					bw = 25
				}
				m.Observe(s, d, bw)
			}
		}
	}
	if v, n := m.Pair(1, 2); n != 10 || math.Abs(v-25) > 1e-9 {
		t.Fatalf("pair(1,2) = %v/%d", v, n)
	}
	med := m.Median()
	if med < 80 || med > 120 {
		t.Fatalf("median = %v, want ≈100", med)
	}
	if v, _, dsts := m.Row(1); dsts != 3 || v >= 100 || v <= 25 {
		t.Fatalf("row(1) = %v with %d dsts", v, dsts)
	}
	if _, _, srcs := m.Col(2); srcs != 3 {
		t.Fatalf("col(2) sources = %d", srcs)
	}
	if m.Updates() != 120 {
		t.Fatalf("updates = %d, want 120 (one per record)", m.Updates())
	}
	if v, n := m.Pair(9, 9); v != 0 || n != 0 {
		t.Fatal("unknown pair not zero")
	}
	if v, n, d := m.Row(9); v != 0 || n != 0 || d != 0 {
		t.Fatal("unknown row not zero")
	}
	if v, n, s := m.Col(9); v != 0 || n != 0 || s != 0 {
		t.Fatal("unknown col not zero")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	records := []Record{
		{Time: 0, Node: -1, Kind: KindCommCreate, Comm: 1, Nodes: []int{0, 2}},
		RecordOfColl(accl.CollEvent{Time: 5, Comm: 1, Seq: 1, Node: 0,
			Op: accl.OpAllReduce, Algo: "ring", Bytes: 1 << 20, Phase: accl.PhaseArrive}),
		RecordOfColl(accl.CollEvent{Time: 9, Comm: 1, Seq: 1, Node: 0,
			Op: accl.OpAllReduce, Phase: accl.PhaseComplete}),
		RecordOfMsg(accl.MsgEvent{Comm: 1, Seq: 1, SrcNode: 0, DstNode: 2,
			Rail: 0, Plane: 1, Sport: 77, QPN: 5, Bytes: 512, Start: 6, End: 8}),
		RecordOfWait(accl.WaitEvent{Time: 7, Comm: 1, Seq: 1, Waiter: 2, On: 0, Dur: 3}),
		{Time: 10, Node: -1, Kind: KindCommClose, Comm: 1},
	}
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	for _, r := range records {
		w.Observe(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != uint64(len(records)) {
		t.Fatalf("written = %d", w.Written())
	}
	got, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("round-trip count %d != %d", len(got), len(records))
	}
	for i := range records {
		a, b := records[i], got[i]
		if a.Time != b.Time || a.Kind != b.Kind || a.Node != b.Node || a.Comm != b.Comm {
			t.Fatalf("record %d header diverged: %+v vs %+v", i, a, b)
		}
		switch a.Kind {
		case KindMsg:
			if *a.Msg != *b.Msg {
				t.Fatalf("msg diverged: %+v vs %+v", *a.Msg, *b.Msg)
			}
		case KindColl:
			if *a.Coll != *b.Coll {
				t.Fatalf("coll diverged: %+v vs %+v", *a.Coll, *b.Coll)
			}
		case KindWait:
			if *a.Wait != *b.Wait {
				t.Fatalf("wait diverged: %+v vs %+v", *a.Wait, *b.Wait)
			}
		}
	}
	if !strings.Contains(records[3].String(), "msg") {
		t.Fatal("record rendering missing kind")
	}
}

func TestReadStreamRejectsGarbage(t *testing.T) {
	if _, err := ReadStream(strings.NewReader("{\"t_ns\":1,\"kind\":\"nope\"}\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ReadStream(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if recs, err := ReadStream(strings.NewReader("\n\n")); err != nil || len(recs) != 0 {
		t.Fatalf("blank lines: %v, %v", recs, err)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCommCreate: "comm-create", KindCommClose: "comm-close",
		KindColl: "coll", KindMsg: "msg", KindWait: "wait", Kind(99): "unknown",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

// failAfterWriter fails every write once n bytes have been accepted — the
// disk-full / broken-pipe model for the stream-error regression tests.
type failAfterWriter struct {
	n       int
	written int
	err     error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		w.err = errWriterBroken
		return 0, w.err
	}
	w.written += len(p)
	return len(p), nil
}

var errWriterBroken = fmt.Errorf("telemetry test: writer broken")

func TestStreamWriterSurfacesWriteErrors(t *testing.T) {
	// Regression: Observe used to swallow encoder errors, so a broken
	// writer silently dropped every subsequent record. The first failure
	// must stick and surface through both Err and Flush.
	sw := NewStreamWriter(&failAfterWriter{n: 8 << 10})
	rec := Record{Time: 5, Node: 1, Comm: 2, Kind: KindMsg,
		Msg: &accl.MsgEvent{Comm: 2, Seq: 9, SrcNode: 1, DstNode: 3, Bytes: 1 << 20}}
	var broken uint64
	for i := 0; i < 1000; i++ {
		sw.Observe(rec)
		if sw.Err() != nil {
			broken = sw.Written()
			break
		}
	}
	if sw.Err() == nil {
		t.Fatal("writer broke after 8KiB but Err() stayed nil for 1000 records")
	}
	if got := sw.Flush(); got != sw.Err() {
		t.Fatalf("Flush() = %v, want the sticky Err() %v", got, sw.Err())
	}
	// Further records are dropped, not counted as serialized.
	sw.Observe(rec)
	if sw.Written() != broken {
		t.Fatalf("Written() advanced after the error: %d -> %d", broken, sw.Written())
	}
}

func TestStreamWriterFlushSurfacesBufferedError(t *testing.T) {
	// A failure smaller than the bufio buffer only shows up when the
	// buffer drains: Flush must latch it into Err.
	sw := NewStreamWriter(&failAfterWriter{n: 0})
	sw.Observe(Record{Time: 1, Node: 0, Kind: KindCommClose, Comm: 1})
	if sw.Err() != nil {
		t.Fatal("error before any flush — buffered write should succeed")
	}
	if sw.Flush() == nil {
		t.Fatal("Flush() = nil on a writer that accepts nothing")
	}
	if sw.Err() == nil {
		t.Fatal("Flush error did not stick in Err()")
	}
}

func TestEncodeRecordMatchesStreamWriter(t *testing.T) {
	rec := Record{Time: 7, Node: 2, Comm: 3, Kind: KindWait,
		Wait: &accl.WaitEvent{Time: 7, Comm: 3, Seq: 4, Waiter: 2, On: 5, Dur: 11}}
	line, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	sw.Observe(rec)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, buf.Bytes()) {
		t.Fatalf("EncodeRecord %q != StreamWriter line %q", line, buf.Bytes())
	}
	// And the line round-trips through the stream reader.
	recs, err := ReadStream(bytes.NewReader(line))
	if err != nil || len(recs) != 1 || recs[0].Wait.Dur != 11 {
		t.Fatalf("round trip: recs=%v err=%v", recs, err)
	}
}
