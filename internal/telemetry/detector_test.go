package telemetry

import (
	"bytes"
	"testing"

	"c4/internal/accl"
	"c4/internal/c4d"
	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
)

// plannedProvider mirrors the c4d test provider: dedicated same-plane
// spines per QP so healthy runs have zero collision noise.
type plannedProvider struct {
	topo *topo.Topology
	next int
}

func (p *plannedProvider) Connect(req accl.ConnRequest) (*accl.Assignment, error) {
	plane := req.QPIndex % topo.Planes
	if p.topo.Group(req.SrcNode) == p.topo.Group(req.DstNode) {
		path, err := p.topo.PathFor(req.SrcNode, req.DstNode, req.Rail, plane, -1, plane)
		if err != nil {
			return nil, err
		}
		return &accl.Assignment{Path: path}, nil
	}
	spine := p.next % p.topo.Spec.Spines
	p.next++
	path, err := p.topo.PathFor(req.SrcNode, req.DstNode, req.Rail, plane, spine, plane)
	if err != nil {
		return nil, err
	}
	return &accl.Assignment{Path: path, Sport: uint16(spine)}, nil
}

func (p *plannedProvider) Repair(req accl.ConnRequest, old *accl.Assignment) (*accl.Assignment, error) {
	return p.Connect(req)
}

func (p *plannedProvider) Release(*accl.Assignment) {}

// rig is a miniature training job watched by the streaming pipeline: 4
// nodes, iterative compute + allreduce, with injectable per-node compute
// delays, exactly the c4d test workload so the two detectors are
// comparable.
type rig struct {
	eng  *sim.Engine
	topo *topo.Topology
	net  *netsim.Network
	comm *accl.Communicator
	det  *OnlineDetector
	pipe *Pipeline

	nodes        []int
	computeExtra map[int]sim.Time
	iterations   int
	stopped      bool
}

func newRig(t *testing.T, dcfg DetectorConfig, pcfg PipelineConfig, extra ...Consumer) *rig {
	t.Helper()
	eng := sim.NewEngine()
	tp := topo.MustNew(topo.PaperTestbed())
	net := netsim.New(eng, tp, netsim.DefaultConfig())
	det := NewOnlineDetector(eng, dcfg)
	pipe := NewPipeline(eng, pcfg, append([]Consumer{det}, extra...)...)
	nodes := []int{0, 2, 4, 6}
	comm, err := accl.NewCommunicator(accl.Config{
		Engine: eng, Net: net, Provider: &plannedProvider{topo: tp},
		Sink: pipe, Rand: sim.NewRand(5),
	}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		eng: eng, topo: tp, net: net, comm: comm, det: det, pipe: pipe,
		nodes: nodes, computeExtra: map[int]sim.Time{},
	}
}

func (r *rig) run(until sim.Time) {
	const compute = 100 * sim.Millisecond
	const size = 64 << 20
	var iterate func()
	iterate = func() {
		if r.stopped {
			return
		}
		now := r.eng.Now()
		arr := make([]sim.Time, len(r.nodes))
		for i, n := range r.nodes {
			arr[i] = now + compute + r.computeExtra[n]
		}
		r.comm.AllReduce(size, arr, func(accl.Result) {
			r.iterations++
			iterate()
		})
	}
	iterate()
	r.eng.RunUntil(until)
}

func findDetection(dets []c4d.Detection, syn c4d.Syndrome, node int) *c4d.Detection {
	for i := range dets {
		for _, s := range dets[i].Suspects {
			if dets[i].Syndrome == syn && s == node {
				return &dets[i]
			}
		}
	}
	return nil
}

func TestOnlineHealthyRunIsQuiet(t *testing.T) {
	r := newRig(t, DetectorConfig{}, PipelineConfig{})
	r.run(2 * sim.Minute)
	if r.iterations < 100 {
		t.Fatalf("only %d iterations completed", r.iterations)
	}
	if dets := r.det.Detections(); len(dets) != 0 {
		t.Fatalf("healthy run produced detections: %v", dets)
	}
	if r.pipe.Dropped() != 0 {
		t.Fatalf("default ring dropped %d records", r.pipe.Dropped())
	}
	if r.pipe.Records() == 0 || r.det.Updates() == 0 {
		t.Fatal("pipeline carried no records")
	}
}

func TestOnlineDetectsCommSlowBeforeNextTick(t *testing.T) {
	r := newRig(t, DetectorConfig{}, PipelineConfig{})
	var faultAt sim.Time
	r.eng.Schedule(15*sim.Second, func() {
		faultAt = r.eng.Now()
		// Node 2's receive side degrades to 1/8 on both planes.
		for plane := 0; plane < topo.Planes; plane++ {
			r.net.SetLinkCapacity(r.topo.PortAt(2, 0, plane).Down, 25)
		}
	})
	r.run(2 * sim.Minute)
	det := findDetection(r.det.Detections(), c4d.CommSlow, 2)
	if det == nil {
		t.Fatalf("rx degrade not detected; detections: %v", r.det.Detections())
	}
	// The whole point: detection within a couple of slow transfers, far
	// inside the 5 s batch reporting interval.
	if latency := det.At - faultAt; latency > 5*sim.Second {
		t.Fatalf("streaming detection took %v, want sub-tick", latency)
	}
}

func TestOnlineDetectsStraggler(t *testing.T) {
	r := newRig(t, DetectorConfig{}, PipelineConfig{})
	var faultAt sim.Time
	r.eng.Schedule(15*sim.Second, func() {
		faultAt = r.eng.Now()
		r.computeExtra[6] = 150 * sim.Millisecond
	})
	r.run(2 * sim.Minute)
	det := findDetection(r.det.Detections(), c4d.NonCommSlow, 6)
	if det == nil {
		t.Fatalf("straggler not detected; detections: %v", r.det.Detections())
	}
	if det.At-faultAt > 10*sim.Second {
		t.Fatalf("straggler detection took %v", det.At-faultAt)
	}
	for _, d := range r.det.Detections() {
		if d.Syndrome == c4d.NonCommSlow && d.Suspects[0] != 6 {
			t.Fatalf("innocent node blamed as straggler: %v", d)
		}
	}
}

func TestOnlineDetectsCommHangAtExactTimeout(t *testing.T) {
	r := newRig(t, DetectorConfig{}, PipelineConfig{})
	var faultAt sim.Time
	r.eng.Schedule(20*sim.Second, func() {
		faultAt = r.eng.Now()
		for plane := 0; plane < topo.Planes; plane++ {
			port := r.topo.PortAt(4, 0, plane)
			r.net.SetLinkUp(port.Up, false)
			r.net.SetLinkUp(port.Down, false)
		}
	})
	r.run(3 * sim.Minute)
	det := findDetection(r.det.Detections(), c4d.CommHang, 4)
	if det == nil {
		t.Fatalf("NIC blackout not detected; detections: %v", r.det.Detections())
	}
	// The alarm fires exactly HangTimeout after the last transport
	// progress — never later than fault + timeout + one iteration.
	timeout := r.det.Config().HangTimeout
	if det.At < faultAt+timeout || det.At > faultAt+timeout+2*sim.Second {
		t.Fatalf("hang fired at %v (fault %v, timeout %v): not threshold-exact",
			det.At, faultAt, timeout)
	}
}

func TestOnlineDetectsNonCommHang(t *testing.T) {
	r := newRig(t, DetectorConfig{}, PipelineConfig{})
	var faultAt sim.Time
	r.eng.Schedule(20*sim.Second, func() {
		faultAt = r.eng.Now()
		r.comm.SetCrashed(4, true)
	})
	r.run(3 * sim.Minute)
	det := findDetection(r.det.Detections(), c4d.NonCommHang, 4)
	if det == nil {
		t.Fatalf("crashed node not detected; detections: %v", r.det.Detections())
	}
	if len(det.Suspects) != 1 || det.Suspects[0] != 4 {
		t.Fatalf("suspects = %v, want [4]", det.Suspects)
	}
	if det.At-faultAt > 40*sim.Second {
		t.Fatalf("non-comm hang detection took %v", det.At-faultAt)
	}
}

func TestCadenceDelaysDetection(t *testing.T) {
	// The same fault under a 5 s drain cadence is detected strictly later
	// than under streaming drains — the TTD-vs-overhead tradeoff the
	// cadence sweep measures.
	run := func(cadence sim.Time) (sim.Time, uint64) {
		r := newRig(t, DetectorConfig{}, PipelineConfig{DrainInterval: cadence})
		r.eng.Schedule(15*sim.Second, func() {
			for plane := 0; plane < topo.Planes; plane++ {
				r.net.SetLinkCapacity(r.topo.PortAt(2, 0, plane).Down, 25)
			}
		})
		r.run(90 * sim.Second)
		det := findDetection(r.det.Detections(), c4d.CommSlow, 2)
		if det == nil {
			t.Fatalf("cadence %v: fault missed", cadence)
		}
		return det.At - 15*sim.Second, r.pipe.Drains()
	}
	ttdStream, drainsStream := run(0)
	ttdBatch, drainsBatch := run(5 * sim.Second)
	if ttdStream >= ttdBatch {
		t.Fatalf("streaming TTD %v not better than 5s-cadence TTD %v", ttdStream, ttdBatch)
	}
	if drainsBatch >= drainsStream {
		t.Fatalf("coarse cadence ran more drains (%d) than streaming (%d)", drainsBatch, drainsStream)
	}
}

func TestTinyRingDropsAreCounted(t *testing.T) {
	r := newRig(t, DetectorConfig{}, PipelineConfig{BufCap: 2, DrainInterval: 10 * sim.Second})
	r.run(time30)
	if r.pipe.Dropped() == 0 {
		t.Fatal("2-slot rings under a 10s cadence must drop")
	}
}

const time30 = 30 * sim.Second

func TestReplayMatchesLiveDetections(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	r := newRig(t, DetectorConfig{}, PipelineConfig{}, w)
	r.eng.Schedule(15*sim.Second, func() {
		for plane := 0; plane < topo.Planes; plane++ {
			r.net.SetLinkCapacity(r.topo.PortAt(2, 0, plane).Down, 25)
		}
	})
	r.run(time30)
	r.pipe.Stop()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := Replay(records, DetectorConfig{}, 0)
	live, offline := r.det.Detections(), replayed.Detections()
	if len(live) == 0 {
		t.Fatal("live run detected nothing")
	}
	if len(live) != len(offline) {
		t.Fatalf("replay diverged: %d live vs %d offline detections\nlive: %v\noffline: %v",
			len(live), len(offline), live, offline)
	}
	for i := range live {
		if live[i].At != offline[i].At || live[i].Syndrome != offline[i].Syndrome {
			t.Fatalf("detection %d diverged: %v vs %v", i, live[i], offline[i])
		}
	}
}

func TestOnlineDetectorWorkIsPerRecord(t *testing.T) {
	r := newRig(t, DetectorConfig{}, PipelineConfig{})
	r.run(time30)
	// Per-record cost (state updates + loop iterations) must be a small
	// constant — the O(1) ingest property the scale sweep benchmarks
	// against the batch master's per-pass recompute.
	if r.det.Updates() < r.pipe.Records() {
		t.Fatalf("updates %d < records %d: records unaccounted", r.det.Updates(), r.pipe.Records())
	}
	perRecord := float64(r.det.Updates()) / float64(r.pipe.Records())
	if perRecord > 10 {
		t.Fatalf("%.2f update ops per record, want a small constant", perRecord)
	}
}
