package telemetry

import "sort"

// Collector is one node's bounded telemetry buffer: a fixed-capacity ring
// that absorbs records between drains. When the producer outruns the
// drain cadence the oldest records are overwritten and counted as drops —
// the backpressure-free semantics of a real per-host telemetry daemon,
// where monitoring must never stall the training job it watches.
type Collector struct {
	Node int

	buf     []Record
	head    int // index of the oldest buffered record
	n       int // buffered count
	pushed  uint64
	dropped uint64
}

// NewCollector creates a collector with the given ring capacity
// (minimum 1).
func NewCollector(node, capacity int) *Collector {
	if capacity < 1 {
		capacity = 1
	}
	return &Collector{Node: node, buf: make([]Record, capacity)}
}

// Push buffers one record, overwriting (and counting as dropped) the
// oldest when the ring is full.
func (c *Collector) Push(r Record) {
	c.pushed++
	if c.n == len(c.buf) {
		// Overwrite the oldest.
		c.buf[c.head] = r
		c.head = (c.head + 1) % len(c.buf)
		c.dropped++
		return
	}
	c.buf[(c.head+c.n)%len(c.buf)] = r
	c.n++
}

// Len reports the buffered record count.
func (c *Collector) Len() int { return c.n }

// Pushed reports how many records were ever offered.
func (c *Collector) Pushed() uint64 { return c.pushed }

// Dropped reports how many records were lost to ring overwrites.
func (c *Collector) Dropped() uint64 { return c.dropped }

// Drain appends the buffered records to dst in push (= event-time) order
// and empties the ring.
func (c *Collector) Drain(dst []Record) []Record {
	for i := 0; i < c.n; i++ {
		dst = append(dst, c.buf[(c.head+i)%len(c.buf)])
	}
	c.head, c.n = 0, 0
	return dst
}

// MergeByTime orders a batch of records drained from several collectors
// into one deterministic event-time stream: ascending Time, ties broken
// by collecting Node, then by each collector's push order. Every
// collector drains in push order and the simulation clock is monotonic,
// so the stable sort reduces to an interleave — records from one node
// never reorder relative to each other.
func MergeByTime(records []Record) []Record {
	sort.SliceStable(records, func(i, j int) bool {
		if records[i].Time != records[j].Time {
			return records[i].Time < records[j].Time
		}
		return records[i].Node < records[j].Node
	})
	return records
}
