package job

import (
	"testing"

	"c4/internal/accl"
	"c4/internal/c4p"
	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
	"c4/internal/workload"
)

type rig struct {
	eng  *sim.Engine
	topo *topo.Topology
	net  *netsim.Network
}

func newRig() *rig {
	eng := sim.NewEngine()
	// Paper testbed plus one spare leaf group (2 backup nodes), so node
	// replacement has somewhere to go.
	spec := topo.PaperTestbed()
	spec.Nodes = 18
	tp := topo.MustNew(spec)
	return &rig{eng: eng, topo: tp, net: netsim.New(eng, tp, netsim.DefaultConfig())}
}

func (r *rig) provider() accl.PathProvider {
	return c4p.NewMaster(r.topo, c4p.Static, sim.NewRand(1))
}

func nodes16() []int {
	out := make([]int, 16)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestJob1RunsAndReports(t *testing.T) {
	r := newRig()
	spec := workload.Fig14Jobs(nodes16())[0]
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: spec, Rand: sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	j.Run(10, func(rp Report) { rep = rp })
	r.eng.Run()
	if rep.Iters != 10 {
		t.Fatalf("iters = %d", rep.Iters)
	}
	if rep.SamplesPerSec <= 0 {
		t.Fatalf("samples/sec = %v", rep.SamplesPerSec)
	}
	// Iteration must exceed pure compute (there is real communication).
	if rep.AvgIter <= spec.IterComputeTime() {
		t.Fatalf("avg iter %v not above compute %v", rep.AvgIter, spec.IterComputeTime())
	}
	// And communication should be a meaningful share (paper: >30% for
	// Job1) but not dominate absurdly.
	commFrac := 1 - float64(spec.IterComputeTime())/float64(rep.AvgIter)
	if commFrac < 0.15 || commFrac > 0.6 {
		t.Fatalf("comm fraction = %.2f, want ≈0.3", commFrac)
	}
}

func TestJob2ZeROPath(t *testing.T) {
	r := newRig()
	spec := workload.Fig14Jobs(nodes16())[1]
	if !spec.Par.ZeRO {
		t.Fatal("Job2 must be ZeRO")
	}
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: spec, Rand: sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	j.Run(5, func(rp Report) { rep = rp })
	r.eng.Run()
	if rep.Iters != 5 || rep.SamplesPerSec <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestJob3PipelineGroupsAndLowCommShare(t *testing.T) {
	r := newRig()
	spec := workload.Fig14Jobs(nodes16())[2]
	groups, err := spec.DPGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 8 {
		t.Fatalf("PP groups = %d, want 8", len(groups))
	}
	for s, g := range groups {
		if len(g) != 2 || g[0] != s || g[1] != s+8 {
			t.Fatalf("group %d = %v, want [%d %d]", s, g, s, s+8)
		}
	}
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: spec, Rand: sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	j.Run(3, func(rp Report) { rep = rp })
	r.eng.Run()
	commFrac := 1 - float64(spec.IterComputeTime())/float64(rep.AvgIter)
	if commFrac > 0.12 {
		t.Fatalf("Job3 comm fraction = %.2f, want small (GA=16)", commFrac)
	}
}

func TestStragglerSlowsIterations(t *testing.T) {
	r := newRig()
	spec := workload.Fig14Jobs(nodes16())[0]
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: spec, Rand: sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var base Report
	j.Run(5, func(rp Report) { base = rp })
	r.eng.Run()

	r2 := newRig()
	j2, err := New(Config{
		Engine: r2.eng, Net: r2.net, Provider: c4p.NewMaster(r2.topo, c4p.Static, sim.NewRand(1)),
		Rails: []int{0}, Spec: spec, Rand: sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	j2.SetStraggler(7, 400*sim.Millisecond)
	var slow Report
	j2.Run(5, func(rp Report) { slow = rp })
	r2.eng.Run()
	if slow.AvgIter < base.AvgIter+300*sim.Millisecond {
		t.Fatalf("straggler iter %v vs base %v: BSP should absorb the full delay",
			slow.AvgIter, base.AvgIter)
	}
}

func TestCrashHangsAndReplaceNodeRecovers(t *testing.T) {
	r := newRig()
	spec := workload.Fig14Jobs(nodes16())[0]
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: spec, Rand: sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	j.Run(50, func(Report) { done = true })
	r.eng.After(2*sim.Second, func() { j.SetCrashed(3, true) })
	r.eng.RunUntil(2 * sim.Minute)
	if done {
		t.Fatal("job finished despite crashed node")
	}
	// Steering-style recovery: stop, replace 3 with spare node 16, rerun.
	j.Stop()
	// Drain pending collective callbacks before rebuilding.
	r.eng.RunFor(sim.Second)
	if err := j.ReplaceNode(3, 16); err != nil {
		t.Fatal(err)
	}
	recovered := false
	j.Run(5, func(Report) { recovered = true })
	r.eng.RunUntil(10 * sim.Minute)
	if !recovered {
		t.Fatal("job did not recover after node replacement")
	}
	for _, n := range j.Nodes() {
		if n == 3 {
			t.Fatal("failed node still assigned")
		}
	}
}

func TestReplaceNodeValidation(t *testing.T) {
	r := newRig()
	spec := workload.Fig14Jobs(nodes16())[0]
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: spec, Rand: sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.ReplaceNode(99, 16); err == nil {
		t.Fatal("replacing an absent node should fail")
	}
	j.Run(1, nil)
	if err := j.ReplaceNode(0, 16); err == nil {
		t.Fatal("replacing while running should fail")
	}
	r.eng.Run()
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing dependencies accepted")
	}
	r := newRig()
	spec := workload.JobSpec{
		Name: "bad", Model: workload.GPT22B,
		Par:   workload.Parallelism{DP: 4},
		Nodes: []int{0, 1}, // wrong count
	}
	if _, err := New(Config{Engine: r.eng, Net: r.net, Provider: r.provider(), Spec: spec}); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
}

func TestOnIterationCallback(t *testing.T) {
	r := newRig()
	spec := workload.Fig14Jobs(nodes16())[0]
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: spec, Rand: sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var iters []int
	j.OnIteration(func(i int, d sim.Time) {
		iters = append(iters, i)
		if d <= 0 {
			t.Fatalf("iteration %d duration %v", i, d)
		}
	})
	j.Run(4, nil)
	r.eng.Run()
	if len(iters) != 4 || iters[3] != 3 {
		t.Fatalf("iteration callbacks = %v", iters)
	}
	if got := len(j.IterTimes()); got != 4 {
		t.Fatalf("IterTimes = %d", got)
	}
}

func TestWorkloadHelpers(t *testing.T) {
	p := workload.Parallelism{}.Normalize()
	if p.TP != 1 || p.PP != 1 || p.DP != 1 || p.GA != 1 {
		t.Fatalf("normalize = %+v", p)
	}
	if workload.GPT22B.GradBytesPerRank(workload.Parallelism{TP: 8}) != 22e9*2/8 {
		t.Fatal("grad bytes wrong")
	}
	s := workload.Parallelism{TP: 8, DP: 16, GA: 1}.String()
	if s != "TP8/PP1/DP16/GA1" {
		t.Fatalf("string = %q", s)
	}
	z := workload.Parallelism{DP: 2, ZeRO: true}.String()
	if z != "TP1/PP1/DP2/GA1+ZeRO" {
		t.Fatalf("string = %q", z)
	}
}
