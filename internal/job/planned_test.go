package job

import (
	"testing"

	"c4/internal/plan"
	"c4/internal/sim"
	"c4/internal/workload"
)

// pipeSpec is a PP2xDP2 GA4 job on 4 nodes: the smallest strategy that
// exercises every planned-path mechanism (pipeline p2p, bucketing, the
// 1F1B bubble) on the real fabric.
func pipeSpec() workload.JobSpec {
	return workload.JobSpec{
		Name:                 "pipe",
		Model:                workload.GPT22B,
		Par:                  workload.Parallelism{TP: 8, PP: 2, DP: 2, GA: 4},
		Nodes:                []int{0, 1, 2, 3},
		ComputePerMicroBatch: 200 * sim.Millisecond,
		ComputeJitter:        0.02,
		SamplesPerIter:       32,
	}
}

func runPipe(t *testing.T, opts plan.Options, iters int, mutate func(*Job)) Report {
	t.Helper()
	r := newRig()
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: pipeSpec(), Rand: sim.NewRand(2),
		Plan: opts, QPsPerConn: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(j)
	}
	var rep Report
	j.Run(iters, func(rp Report) { rep = rp })
	r.eng.Run()
	if rep.Iters != iters {
		t.Fatalf("iters = %d, want %d", rep.Iters, iters)
	}
	return rep
}

func TestPlannedBreakdownAccounting(t *testing.T) {
	rep := runPipe(t, plan.Options{}, 4, nil)
	if rep.AvgCompute <= 0 || rep.AvgBubble <= 0 || rep.AvgExposed <= 0 {
		t.Fatalf("breakdown = compute %v, bubble %v, exposed %v; want all positive",
			rep.AvgCompute, rep.AvgBubble, rep.AvgExposed)
	}
	sum := rep.AvgCompute + rep.AvgBubble + rep.AvgExposed
	if diff := sum - rep.AvgIter; diff > sim.Millisecond || diff < -sim.Millisecond {
		t.Fatalf("breakdown sums to %v, avg iter %v", sum, rep.AvgIter)
	}
	// The bubble must cover at least (PP-1) = 1 nominal micro-batch slot.
	if rep.AvgBubble < 150*sim.Millisecond {
		t.Fatalf("bubble = %v, want >= one micro-batch slot", rep.AvgBubble)
	}
	if share := rep.ExposedShare(); share <= 0 || share >= 1 {
		t.Fatalf("exposed share = %v", share)
	}
}

func TestPlannedOverlapReducesExposedComm(t *testing.T) {
	bucket := workload.GPT22B.GradBytesPerRank(workload.Parallelism{TP: 8, PP: 2}) / 8
	off := runPipe(t, plan.Options{BucketBytes: bucket}, 4, nil)
	on := runPipe(t, plan.Options{BucketBytes: bucket, Overlap: true}, 4, nil)
	if on.AvgExposed >= off.AvgExposed {
		t.Fatalf("exposed(on) = %v, want < exposed(off) = %v", on.AvgExposed, off.AvgExposed)
	}
	if on.SamplesPerSec <= off.SamplesPerSec {
		t.Fatalf("samples/s on = %.1f, want > off = %.1f", on.SamplesPerSec, off.SamplesPerSec)
	}
}

func TestPlannedStragglerSlowsIterations(t *testing.T) {
	base := runPipe(t, plan.Options{}, 3, nil)
	slow := runPipe(t, plan.Options{}, 3, func(j *Job) {
		j.SetStraggler(1, 400*sim.Millisecond)
	})
	if slow.AvgIter < base.AvgIter+300*sim.Millisecond {
		t.Fatalf("straggler iter %v vs base %v: the pipeline should absorb the delay",
			slow.AvgIter, base.AvgIter)
	}
}

func TestPlannedCrashHangsPipeline(t *testing.T) {
	r := newRig()
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: pipeSpec(), Rand: sim.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	j.Run(100, func(Report) { done = true })
	r.eng.After(time500ms, func() { j.SetCrashed(1, true) })
	r.eng.RunUntil(sim.Minute)
	if done {
		t.Fatal("pipeline job finished despite a crashed stage")
	}
	// Recovery through the steering path: replace the stage node.
	j.Stop()
	r.eng.RunFor(sim.Second)
	if err := j.ReplaceNode(1, 16); err != nil {
		t.Fatal(err)
	}
	recovered := false
	j.Run(2, func(Report) { recovered = true })
	r.eng.RunUntil(10 * sim.Minute)
	if !recovered {
		t.Fatal("pipeline job did not recover after node replacement")
	}
}

const time500ms = 500 * sim.Millisecond

func TestPlannedMatchesBubbleFormulaWithoutJitter(t *testing.T) {
	// Zero jitter, DP=1 (no gradient sync): iteration must land close to
	// the textbook (GA + PP - 1) slots plus activation-transfer time.
	r := newRig()
	spec := workload.JobSpec{
		Name:                 "pure-pipe",
		Model:                workload.GPT22B,
		Par:                  workload.Parallelism{TP: 8, PP: 4, GA: 8},
		Nodes:                []int{0, 1, 2, 3},
		ComputePerMicroBatch: 200 * sim.Millisecond,
		SamplesPerIter:       32,
	}
	j, err := New(Config{
		Engine: r.eng, Net: r.net, Provider: r.provider(),
		Rails: []int{0}, Spec: spec, Rand: sim.NewRand(2), QPsPerConn: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	j.Run(2, func(rp Report) { rep = rp })
	r.eng.Run()
	ideal := sim.Time(8+4-1) * 200 * sim.Millisecond
	if rep.AvgIter < ideal {
		t.Fatalf("avg iter %v below the 1F1B lower bound %v", rep.AvgIter, ideal)
	}
	if rep.AvgIter > ideal+ideal/2 {
		t.Fatalf("avg iter %v far above the 1F1B bound %v: activations should mostly overlap",
			rep.AvgIter, ideal)
	}
	if rep.AvgExposed != 0 {
		t.Fatalf("exposed = %v, want 0 with DP=1", rep.AvgExposed)
	}
}
