// Package job runs simulated distributed-training jobs over the ACCL
// collective layer. Every job's iteration is compiled by internal/plan
// into a micro-batch schedule: pure data-parallel GA=1 jobs collapse to
// the fused compute-then-allreduce step (the historical lump-sum model,
// preserved bit-for-bit), while pipeline-parallel or gradient-accumulated
// strategies execute the full 1F1B DAG — per-stage forward/backward
// slots, stage-to-stage activation/gradient SendRecv traffic, and
// bucketed, optionally overlapped DP gradient synchronization — with
// per-node jitter, injectable stragglers, and node replacement. This is
// the workload generator behind Figs 3 and 14, the plan/* strategy
// sweeps, and the live C4D→steering pipeline.
package job

import (
	"context"
	"fmt"

	"c4/internal/accl"
	"c4/internal/netsim"
	"c4/internal/plan"
	"c4/internal/sim"
	"c4/internal/trace"
	"c4/internal/workload"
)

// Config wires a job to the simulated cluster.
type Config struct {
	Engine   *sim.Engine
	Net      *netsim.Network
	Provider accl.PathProvider
	Sink     accl.StatsSink // may be nil
	Rails    []int
	Rand     *sim.Rand
	Spec     workload.JobSpec
	// Context cancels planned-schedule execution cooperatively: once it
	// is cancelled, in-flight iterations stop scheduling work and the
	// engine queue drains. nil means never cancelled.
	Context context.Context
	// Plan tunes the compiled iteration schedule: gradient bucket size,
	// comm/compute overlap, activation volume. The zero value compiles
	// pure-DP GA=1 jobs to the fused single-allreduce step.
	Plan plan.Options
	// Stepwise selects chunked collectives (needed when a C4D fleet wants
	// per-step transport records).
	Stepwise bool
	// AdaptiveWeights enables ACCL's path re-weighting (C4P dynamic mode).
	AdaptiveWeights bool
	// QPsPerConn sets the QP count per connection (default 2, one per
	// physical port; production CCLs open several per port).
	QPsPerConn int
}

// Report summarizes a completed run.
type Report struct {
	Iters         int
	TotalTime     sim.Time
	AvgIter       sim.Time
	SamplesPerSec float64
	IterTimes     []sim.Time

	// The average iteration's breakdown, AvgIter ≈ AvgCompute + AvgBubble
	// + AvgExposed: busiest-node compute, pipeline idle before compute
	// finished (warmup/drain plus activation-transfer stalls), and the
	// tail only gradient synchronization occupies — the exposed
	// communication whose share decides how much path steering can help.
	AvgCompute sim.Time
	AvgBubble  sim.Time
	AvgExposed sim.Time
}

// ExposedShare is the exposed-communication fraction of the average
// iteration, the paper's Fig 14 precondition knob.
func (r Report) ExposedShare() float64 {
	if r.AvgIter <= 0 {
		return 0
	}
	return float64(r.AvgExposed) / float64(r.AvgIter)
}

// Job is a running training job.
type Job struct {
	cfg    Config
	plan   *plan.Plan
	nodes  []int
	groups [][]int
	comms  []*accl.Communicator
	// pairComms[d*(PP-1)+s] carries the pipeline point-to-point traffic
	// between stages s and s+1 of replica d (empty when PP == 1).
	pairComms []*accl.Communicator
	// commEpoch counts openComms calls; an abandoned plan iteration (the
	// job was stopped and its comms rebuilt by ReplaceNode mid-schedule)
	// still has compute-end events queued, and the epoch check stops them
	// from launching transfers on the rebuilt communicators.
	commEpoch int
	rand      *sim.Rand

	stragglers map[int]sim.Time
	running    bool
	itersLeft  int
	iterStart  sim.Time
	runStart   sim.Time
	iterTimes  []sim.Time
	busySum    sim.Time
	bubbleSum  sim.Time
	exposedSum sim.Time
	onDone     func(Report)
	onIter     func(int, sim.Time)
	iterSpan   *trace.Span // current iteration's trace span; nil when off
}

// tracer returns the simulation's tracer via the network, the single
// wiring point shared with accl and netsim.
func (j *Job) tracer() *trace.Tracer { return j.cfg.Net.Trace }

// New validates the spec, compiles its iteration plan, and opens the
// job's communicators: one per pipeline stage's DP group, plus one per
// adjacent-stage pair when the plan carries pipeline traffic.
func New(cfg Config) (*Job, error) {
	if cfg.Engine == nil || cfg.Net == nil || cfg.Provider == nil {
		return nil, fmt.Errorf("job: Engine, Net and Provider are required")
	}
	if cfg.Rand == nil {
		cfg.Rand = sim.NewRand(17)
	}
	groups, err := cfg.Spec.DPGroups()
	if err != nil {
		return nil, err
	}
	p, err := plan.Compile(cfg.Spec, cfg.Plan)
	if err != nil {
		return nil, err
	}
	j := &Job{
		cfg:        cfg,
		plan:       p,
		nodes:      append([]int(nil), cfg.Spec.Nodes...),
		groups:     groups,
		rand:       cfg.Rand.Fork(),
		stragglers: make(map[int]sim.Time),
	}
	if err := j.openComms(); err != nil {
		return nil, err
	}
	return j, nil
}

// Plan exposes the compiled iteration schedule.
func (j *Job) Plan() *plan.Plan { return j.plan }

func (j *Job) newComm(nodes []int) (*accl.Communicator, error) {
	return accl.NewCommunicator(accl.Config{
		Engine: j.cfg.Engine, Net: j.cfg.Net, Provider: j.cfg.Provider,
		Sink: j.cfg.Sink, Rails: j.cfg.Rails, Rand: j.rand,
		Stepwise: j.cfg.Stepwise, AdaptiveWeights: j.cfg.AdaptiveWeights,
		QPsPerConn: j.cfg.QPsPerConn,
	}, nodes)
}

func (j *Job) openComms() error {
	for _, c := range j.allComms() {
		c.Close()
	}
	j.comms = j.comms[:0]
	j.pairComms = j.pairComms[:0]
	j.commEpoch++
	for _, g := range j.groups {
		if len(g) < 2 {
			j.comms = append(j.comms, nil) // DP=1: nothing to synchronize
			continue
		}
		c, err := j.newComm(g)
		if err != nil {
			return err
		}
		j.comms = append(j.comms, c)
	}
	// Pipeline cuts: a dedicated pair communicator per adjacent-stage
	// boundary of every replica, the NCCL p2p idiom.
	pp := j.plan.PP
	for d := 0; d < j.plan.DP; d++ {
		for s := 0; s < pp-1; s++ {
			c, err := j.newComm([]int{j.nodes[d*pp+s], j.nodes[d*pp+s+1]})
			if err != nil {
				return err
			}
			j.pairComms = append(j.pairComms, c)
		}
	}
	return nil
}

// allComms enumerates every open communicator (DP groups, then pairs).
func (j *Job) allComms() []*accl.Communicator {
	out := make([]*accl.Communicator, 0, len(j.comms)+len(j.pairComms))
	for _, c := range j.comms {
		if c != nil {
			out = append(out, c)
		}
	}
	return append(out, j.pairComms...)
}

// Nodes returns the job's current node assignment.
func (j *Job) Nodes() []int { return append([]int(nil), j.nodes...) }

// SetStraggler adds a fixed per-iteration compute delay to a node
// (non-communication-slow injection).
func (j *Job) SetStraggler(node int, extra sim.Time) { j.stragglers[node] = extra }

// SetCrashed marks a node crashed in every communicator: it stops arriving
// at collectives and the job hangs, exactly like a dead worker process.
func (j *Job) SetCrashed(node int, crashed bool) {
	for _, c := range j.allComms() {
		c.SetCrashed(node, crashed)
	}
}

// OnIteration registers a per-iteration callback (iter index, duration).
func (j *Job) OnIteration(f func(int, sim.Time)) { j.onIter = f }

// IterTimes returns completed iteration durations.
func (j *Job) IterTimes() []sim.Time { return append([]sim.Time(nil), j.iterTimes...) }

// Run executes `iters` iterations, then reports. A job hangs forever if a
// member crashes mid-run (BSP semantics); Stop or ReplaceNode unblocks it.
func (j *Job) Run(iters int, onDone func(Report)) {
	if j.running {
		panic("job: Run while already running")
	}
	j.running = true
	j.itersLeft = iters
	j.onDone = onDone
	j.runStart = j.cfg.Engine.Now()
	j.iterate()
}

// Stop halts the job once the in-flight iteration completes.
func (j *Job) Stop() { j.running = false }

// Running reports whether the job loop is active.
func (j *Job) Running() bool { return j.running }

// iterate runs one optimizer step according to the compiled plan: the
// fused compute-then-sync path for degenerate (pure-DP GA=1) schedules,
// the 1F1B micro-batch DAG for everything else.
func (j *Job) iterate() {
	if !j.running || j.itersLeft <= 0 {
		j.finish()
		return
	}
	j.iterStart = j.cfg.Engine.Now()
	j.iterSpan = nil
	if tr := j.tracer(); tr.Enabled() {
		j.iterSpan = tr.Start(nil, "iter", fmt.Sprintf("iter-%d", len(j.iterTimes)))
	}
	if j.plan.Degenerate {
		j.iterateFused()
	} else {
		j.iteratePlanned()
	}
}

// completeIter records a finished iteration's duration and breakdown,
// then starts the next one.
func (j *Job) completeIter(dur, busy, bubble, exposed sim.Time) {
	j.iterSpan.FinishAt(j.iterStart + dur)
	j.iterTimes = append(j.iterTimes, dur)
	j.busySum += busy
	j.bubbleSum += bubble
	j.exposedSum += exposed
	j.itersLeft--
	if j.onIter != nil {
		j.onIter(len(j.iterTimes)-1, dur)
	}
	j.iterate()
}

// iterateFused is the degenerate schedule's step: one lump of compute
// with per-node jitter, then the whole gradient synchronized at once per
// DP group. This is the pre-plan model, preserved byte for byte — every
// RNG draw and engine event fires in the historical order.
func (j *Job) iterateFused() {
	base := j.cfg.Spec.IterComputeTime()

	pending := 0
	var lastEnd sim.Time
	var maxArrive sim.Time
	groupDone := func(end sim.Time) {
		if end > lastEnd {
			lastEnd = end
		}
		pending--
		if pending > 0 {
			return
		}
		dur := lastEnd - j.iterStart
		busy := maxArrive - j.iterStart
		exposed := dur - busy
		if exposed < 0 {
			exposed = 0
		}
		j.completeIter(dur, busy, 0, exposed)
	}

	bytes := j.cfg.Spec.Model.GradBytesPerRank(j.cfg.Spec.Par)
	anyComm := false
	// Collective ops launched below parent under the iteration span; the
	// ZeRO second phase launches from a completion callback, where the
	// scope stack is long gone, so it captures the span explicitly.
	isp := j.iterSpan
	restoreScope := j.tracer().Scope(isp)
	defer restoreScope()
	for gi, g := range j.groups {
		arr := make([]sim.Time, len(g))
		for i, n := range g {
			c := sim.Time(float64(base) * (1 + j.cfg.Spec.ComputeJitter*j.rand.NormFloat64()))
			if c < 0 {
				c = 0
			}
			arr[i] = j.iterStart + c + j.stragglers[n]
			if arr[i] > maxArrive {
				maxArrive = arr[i]
			}
		}
		comm := j.comms[gi]
		if comm == nil {
			continue
		}
		anyComm = true
		pending++
		if j.cfg.Spec.Par.ZeRO {
			// DeepSpeed ZeRO: reduce-scatter gradients, then allgather
			// updated parameters — same total volume as allreduce, two
			// dependent phases.
			comm.ReduceScatter(bytes, arr, func(accl.Result) {
				restore := j.tracer().Scope(isp)
				comm.AllGather(bytes, nil, func(r accl.Result) {
					groupDone(r.End)
				})
				restore()
			})
		} else {
			comm.AllReduce(bytes, arr, func(r accl.Result) {
				groupDone(r.End)
			})
		}
	}
	if !anyComm {
		// Single-replica job: the iteration is pure compute.
		j.cfg.Engine.Schedule(maxArrive, func() { groupDone(maxArrive) })
		pending++
	}
}

// iteratePlanned executes one iteration of the compiled 1F1B schedule:
// the plan executor drives compute slots and hands transfers back here,
// where they ride the pair communicators (pipeline p2p) and the DP group
// communicators (bucketed gradient sync).
func (j *Job) iteratePlanned() {
	p := j.plan
	tm := plan.IterTiming{
		Scale: make([][]float64, p.DP),
		Extra: make([][]sim.Time, p.DP),
	}
	slots := sim.Time(2 * p.GA)
	for d := 0; d < p.DP; d++ {
		tm.Scale[d] = make([]float64, p.PP)
		tm.Extra[d] = make([]sim.Time, p.PP)
		for s := 0; s < p.PP; s++ {
			node := j.nodes[d*p.PP+s]
			sc := 1 + j.cfg.Spec.ComputeJitter*j.rand.NormFloat64()
			if sc < 0 {
				sc = 0
			}
			tm.Scale[d][s] = sc
			// The straggler's per-iteration penalty, spread across the
			// node's 2*GA compute slots.
			tm.Extra[d][s] = j.stragglers[node] / slots
		}
	}
	epoch := j.commEpoch
	fab := plan.Fabric{
		Engine: j.cfg.Engine,
		Trace:  j.tracer(),
		Span:   j.iterSpan,
		P2P: func(replica, from, to int, bytes float64, ready sim.Time, done func(sim.Time)) {
			if j.commEpoch == epoch {
				j.p2p(replica, from, to, bytes, ready, done)
			}
		},
		DPSync: func(stage int, bytes float64, arrivals []sim.Time, done func(sim.Time)) {
			if j.commEpoch == epoch {
				j.dpSync(stage, bytes, arrivals, done)
			}
		},
	}
	p.ExecIter(j.cfg.Context, fab, tm, func(st plan.IterStats) {
		if j.commEpoch != epoch {
			return // abandoned iteration: comms were rebuilt underneath it
		}
		j.completeIter(st.IterTime(), st.MaxBusy, st.Bubble, st.Exposed)
	})
}

// p2p ships a pipeline tensor between adjacent stages of one replica.
func (j *Job) p2p(replica, from, to int, bytes float64, ready sim.Time, done func(sim.Time)) {
	cut := from
	src, dst := 0, 1
	if to < from {
		cut = to
		src, dst = 1, 0
	}
	c := j.pairComms[replica*(j.plan.PP-1)+cut]
	c.SendRecv(src, dst, bytes, ready, func(r accl.Result) { done(r.End) })
}

// dpSync synchronizes one gradient bucket of a stage across DP replicas.
func (j *Job) dpSync(stage int, bytes float64, arrivals []sim.Time, done func(sim.Time)) {
	comm := j.comms[stage]
	if comm == nil {
		// DP=1: nothing to synchronize; the bucket is "done" when ready.
		at := j.cfg.Engine.Now()
		for _, a := range arrivals {
			if a > at {
				at = a
			}
		}
		j.cfg.Engine.Schedule(at, func() { done(at) })
		return
	}
	if j.cfg.Spec.Par.ZeRO {
		// The allgather launches from a completion callback, after the
		// executor's dpsync scope has unwound; re-establish it explicitly.
		parent := j.tracer().Current()
		comm.ReduceScatter(bytes, arrivals, func(accl.Result) {
			restore := j.tracer().Scope(parent)
			comm.AllGather(bytes, nil, func(r accl.Result) { done(r.End) })
			restore()
		})
		return
	}
	comm.AllReduce(bytes, arrivals, func(r accl.Result) { done(r.End) })
}

func (j *Job) finish() {
	j.running = false
	if j.onDone == nil {
		return
	}
	rep := Report{
		Iters:     len(j.iterTimes),
		TotalTime: j.cfg.Engine.Now() - j.runStart,
		IterTimes: append([]sim.Time(nil), j.iterTimes...),
	}
	if rep.Iters > 0 {
		var sum sim.Time
		for _, t := range j.iterTimes {
			sum += t
		}
		n := sim.Time(rep.Iters)
		rep.AvgIter = sum / n
		rep.AvgCompute = j.busySum / n
		rep.AvgBubble = j.bubbleSum / n
		rep.AvgExposed = j.exposedSum / n
		if rep.AvgIter > 0 {
			rep.SamplesPerSec = j.cfg.Spec.SamplesPerIter / rep.AvgIter.Seconds()
		}
	}
	cb := j.onDone
	j.onDone = nil
	cb(rep)
}

// ReplaceNode swaps a (failed, isolated) node for a replacement and
// reopens the affected communicators — the steering service's restart
// path. The job must be stopped.
func (j *Job) ReplaceNode(old, repl int) error {
	if j.running {
		return fmt.Errorf("job: replace node while running")
	}
	found := false
	for i, n := range j.nodes {
		if n == old {
			j.nodes[i] = repl
			found = true
		}
	}
	if !found {
		return fmt.Errorf("job: node %d not in job", old)
	}
	for gi, g := range j.groups {
		for i, n := range g {
			if n == old {
				j.groups[gi][i] = repl
			}
		}
	}
	delete(j.stragglers, old)
	return j.openComms()
}

// Close releases all communicators.
func (j *Job) Close() {
	for _, c := range j.allComms() {
		c.Close()
	}
}
