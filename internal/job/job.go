// Package job runs simulated distributed-training jobs over the ACCL
// collective layer: BSP iterations of compute followed by data-parallel
// gradient synchronization, with per-node jitter, injectable stragglers,
// and node replacement — the workload generator behind Figs 3 and 14 and
// the live C4D→steering pipeline.
package job

import (
	"fmt"

	"c4/internal/accl"
	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/workload"
)

// Config wires a job to the simulated cluster.
type Config struct {
	Engine   *sim.Engine
	Net      *netsim.Network
	Provider accl.PathProvider
	Sink     accl.StatsSink // may be nil
	Rails    []int
	Rand     *sim.Rand
	Spec     workload.JobSpec
	// Stepwise selects chunked collectives (needed when a C4D fleet wants
	// per-step transport records).
	Stepwise bool
	// AdaptiveWeights enables ACCL's path re-weighting (C4P dynamic mode).
	AdaptiveWeights bool
	// QPsPerConn sets the QP count per connection (default 2, one per
	// physical port; production CCLs open several per port).
	QPsPerConn int
}

// Report summarizes a completed run.
type Report struct {
	Iters         int
	TotalTime     sim.Time
	AvgIter       sim.Time
	SamplesPerSec float64
	IterTimes     []sim.Time
}

// Job is a running training job.
type Job struct {
	cfg    Config
	nodes  []int
	groups [][]int
	comms  []*accl.Communicator
	rand   *sim.Rand

	stragglers map[int]sim.Time
	running    bool
	itersLeft  int
	iterStart  sim.Time
	runStart   sim.Time
	iterTimes  []sim.Time
	onDone     func(Report)
	onIter     func(int, sim.Time)
}

// New validates the spec and opens the job's communicators (one per
// pipeline stage's DP group).
func New(cfg Config) (*Job, error) {
	if cfg.Engine == nil || cfg.Net == nil || cfg.Provider == nil {
		return nil, fmt.Errorf("job: Engine, Net and Provider are required")
	}
	if cfg.Rand == nil {
		cfg.Rand = sim.NewRand(17)
	}
	groups, err := cfg.Spec.DPGroups()
	if err != nil {
		return nil, err
	}
	j := &Job{
		cfg:        cfg,
		nodes:      append([]int(nil), cfg.Spec.Nodes...),
		groups:     groups,
		rand:       cfg.Rand.Fork(),
		stragglers: make(map[int]sim.Time),
	}
	if err := j.openComms(); err != nil {
		return nil, err
	}
	return j, nil
}

func (j *Job) openComms() error {
	for _, c := range j.comms {
		c.Close()
	}
	j.comms = j.comms[:0]
	for _, g := range j.groups {
		if len(g) < 2 {
			j.comms = append(j.comms, nil) // DP=1: nothing to synchronize
			continue
		}
		c, err := accl.NewCommunicator(accl.Config{
			Engine: j.cfg.Engine, Net: j.cfg.Net, Provider: j.cfg.Provider,
			Sink: j.cfg.Sink, Rails: j.cfg.Rails, Rand: j.rand,
			Stepwise: j.cfg.Stepwise, AdaptiveWeights: j.cfg.AdaptiveWeights,
			QPsPerConn: j.cfg.QPsPerConn,
		}, g)
		if err != nil {
			return err
		}
		j.comms = append(j.comms, c)
	}
	return nil
}

// Nodes returns the job's current node assignment.
func (j *Job) Nodes() []int { return append([]int(nil), j.nodes...) }

// SetStraggler adds a fixed per-iteration compute delay to a node
// (non-communication-slow injection).
func (j *Job) SetStraggler(node int, extra sim.Time) { j.stragglers[node] = extra }

// SetCrashed marks a node crashed in every communicator: it stops arriving
// at collectives and the job hangs, exactly like a dead worker process.
func (j *Job) SetCrashed(node int, crashed bool) {
	for _, c := range j.comms {
		if c != nil {
			c.SetCrashed(node, crashed)
		}
	}
}

// OnIteration registers a per-iteration callback (iter index, duration).
func (j *Job) OnIteration(f func(int, sim.Time)) { j.onIter = f }

// IterTimes returns completed iteration durations.
func (j *Job) IterTimes() []sim.Time { return append([]sim.Time(nil), j.iterTimes...) }

// Run executes `iters` iterations, then reports. A job hangs forever if a
// member crashes mid-run (BSP semantics); Stop or ReplaceNode unblocks it.
func (j *Job) Run(iters int, onDone func(Report)) {
	if j.running {
		panic("job: Run while already running")
	}
	j.running = true
	j.itersLeft = iters
	j.onDone = onDone
	j.runStart = j.cfg.Engine.Now()
	j.iterate()
}

// Stop halts the job after the current collective completes.
func (j *Job) Stop() { j.running = false }

// Running reports whether the job loop is active.
func (j *Job) Running() bool { return j.running }

// iterate runs one optimizer step: compute (GA micro-batches + pipeline
// bubble) with per-node jitter, then gradient sync per DP group.
func (j *Job) iterate() {
	if !j.running || j.itersLeft <= 0 {
		j.finish()
		return
	}
	j.iterStart = j.cfg.Engine.Now()
	base := j.cfg.Spec.IterComputeTime()

	pending := 0
	var lastEnd sim.Time
	groupDone := func(end sim.Time) {
		if end > lastEnd {
			lastEnd = end
		}
		pending--
		if pending > 0 {
			return
		}
		dur := lastEnd - j.iterStart
		j.iterTimes = append(j.iterTimes, dur)
		j.itersLeft--
		if j.onIter != nil {
			j.onIter(len(j.iterTimes)-1, dur)
		}
		j.iterate()
	}

	bytes := j.cfg.Spec.Model.GradBytesPerRank(j.cfg.Spec.Par)
	anyComm := false
	var maxArrive sim.Time
	for gi, g := range j.groups {
		arr := make([]sim.Time, len(g))
		for i, n := range g {
			c := sim.Time(float64(base) * (1 + j.cfg.Spec.ComputeJitter*j.rand.NormFloat64()))
			if c < 0 {
				c = 0
			}
			arr[i] = j.iterStart + c + j.stragglers[n]
			if arr[i] > maxArrive {
				maxArrive = arr[i]
			}
		}
		comm := j.comms[gi]
		if comm == nil {
			continue
		}
		anyComm = true
		pending++
		if j.cfg.Spec.Par.ZeRO {
			// DeepSpeed ZeRO: reduce-scatter gradients, then allgather
			// updated parameters — same total volume as allreduce, two
			// dependent phases.
			comm.ReduceScatter(bytes, arr, func(accl.Result) {
				comm.AllGather(bytes, nil, func(r accl.Result) {
					groupDone(r.End)
				})
			})
		} else {
			comm.AllReduce(bytes, arr, func(r accl.Result) {
				groupDone(r.End)
			})
		}
	}
	if !anyComm {
		// Single-replica job: the iteration is pure compute.
		j.cfg.Engine.Schedule(maxArrive, func() { groupDone(maxArrive) })
		pending++
	}
}

func (j *Job) finish() {
	j.running = false
	if j.onDone == nil {
		return
	}
	rep := Report{
		Iters:     len(j.iterTimes),
		TotalTime: j.cfg.Engine.Now() - j.runStart,
		IterTimes: append([]sim.Time(nil), j.iterTimes...),
	}
	if rep.Iters > 0 {
		var sum sim.Time
		for _, t := range j.iterTimes {
			sum += t
		}
		rep.AvgIter = sum / sim.Time(rep.Iters)
		if rep.AvgIter > 0 {
			rep.SamplesPerSec = j.cfg.Spec.SamplesPerIter / rep.AvgIter.Seconds()
		}
	}
	cb := j.onDone
	j.onDone = nil
	cb(rep)
}

// ReplaceNode swaps a (failed, isolated) node for a replacement and
// reopens the affected communicators — the steering service's restart
// path. The job must be stopped.
func (j *Job) ReplaceNode(old, repl int) error {
	if j.running {
		return fmt.Errorf("job: replace node while running")
	}
	found := false
	for i, n := range j.nodes {
		if n == old {
			j.nodes[i] = repl
			found = true
		}
	}
	if !found {
		return fmt.Errorf("job: node %d not in job", old)
	}
	for gi, g := range j.groups {
		for i, n := range g {
			if n == old {
				j.groups[gi][i] = repl
			}
		}
	}
	delete(j.stragglers, old)
	return j.openComms()
}

// Close releases all communicators.
func (j *Job) Close() {
	for _, c := range j.comms {
		if c != nil {
			c.Close()
		}
	}
}
