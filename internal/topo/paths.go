package topo

import "fmt"

// Path is a concrete route from one node's NIC to another node's NIC on a
// single rail. It fixes the source plane (physical tx port), the spine (nil
// when both endpoints share a leaf), and the destination plane (physical rx
// port). The Links slice includes the per-node NVLink injection/delivery
// resources so that intra-node fabric capacity bounds achievable bandwidth
// exactly like on the paper's H800 testbed.
type Path struct {
	SrcPort *Port
	DstPort *Port
	Spine   *Spine  // nil for same-leaf paths
	Links   []*Link // ordered src->dst, including NVLink endpoints
}

// SameLeaf reports whether the path stays under one leaf switch.
func (p *Path) SameLeaf() bool { return p.Spine == nil }

// CrossPlane reports whether the path enters on one plane and exits on the
// other — the pattern C4P forbids to keep the two bonded ports balanced.
func (p *Path) CrossPlane() bool { return p.SrcPort.Plane != p.DstPort.Plane }

// Up reports whether every link on the path is currently healthy.
func (p *Path) Up() bool {
	for _, l := range p.Links {
		if !l.Up() {
			return false
		}
	}
	return true
}

func (p *Path) String() string {
	if p.Spine == nil {
		return fmt.Sprintf("%s=>%s (same-leaf)", p.SrcPort.Name(), p.DstPort.Name())
	}
	return fmt.Sprintf("%s=>%s via %s", p.SrcPort.Name(), p.DstPort.Name(), p.Spine.Name())
}

// PathsBetween enumerates every route from srcNode's NIC to dstNode's NIC on
// the given rail: all (srcPlane, spine, dstPlane) combinations, plus the
// direct same-leaf route per plane when the nodes share a leaf group.
// Failed links are not filtered; callers decide how to treat them (the
// baseline ECMP hasher does not know about failures, C4P's prober does).
func (t *Topology) PathsBetween(srcNode, dstNode, rail int) []*Path {
	if srcNode == dstNode {
		return nil
	}
	var paths []*Path
	sameGroup := t.Group(srcNode) == t.Group(dstNode)
	for sp := 0; sp < Planes; sp++ {
		src := t.PortAt(srcNode, rail, sp)
		if sameGroup {
			// Same leaf: the only in-plane route is down the shared leaf.
			dst := t.PortAt(dstNode, rail, sp)
			paths = append(paths, t.assemble(src, dst, nil))
		}
		for dp := 0; dp < Planes; dp++ {
			dst := t.PortAt(dstNode, rail, dp)
			for s := 0; s < t.Spec.Spines; s++ {
				paths = append(paths, t.assemble(src, dst, t.SpineAt(rail, s)))
			}
		}
	}
	return paths
}

// assemble materializes the link chain for a route.
func (t *Topology) assemble(src, dst *Port, spine *Spine) *Path {
	p := &Path{SrcPort: src, DstPort: dst, Spine: spine}
	p.Links = append(p.Links, t.NVLinkTx[src.Node], src.Up)
	if spine == nil {
		if src.Leaf != dst.Leaf {
			panic("topo: same-leaf path between different leaves")
		}
	} else {
		p.Links = append(p.Links, src.Leaf.Ups[spine.Index], dst.Leaf.Downs[spine.Index])
	}
	p.Links = append(p.Links, dst.Down, t.NVLinkRx[dst.Node])
	return p
}

// PathFor returns the specific route for the given plane/spine choice; it is
// what C4P's allocator uses once it has decided where a QP should go. A
// negative spine index selects the same-leaf route (valid only when the two
// nodes share a leaf group and srcPlane == dstPlane).
func (t *Topology) PathFor(srcNode, dstNode, rail, srcPlane, spine, dstPlane int) (*Path, error) {
	if srcNode == dstNode {
		return nil, fmt.Errorf("topo: path from node %d to itself", srcNode)
	}
	src := t.PortAt(srcNode, rail, srcPlane)
	dst := t.PortAt(dstNode, rail, dstPlane)
	if spine < 0 {
		if src.Leaf != dst.Leaf {
			return nil, fmt.Errorf("topo: nodes %d and %d do not share leaf %s",
				srcNode, dstNode, src.Leaf.Name())
		}
		return t.assemble(src, dst, nil), nil
	}
	if spine >= t.Spec.Spines {
		return nil, fmt.Errorf("topo: spine %d out of range [0,%d)", spine, t.Spec.Spines)
	}
	return t.assemble(src, dst, t.SpineAt(rail, spine)), nil
}

// IntraNodePath returns the route between two GPUs on one node: pure NVLink.
func (t *Topology) IntraNodePath(node int) *Path {
	return &Path{Links: []*Link{t.NVLinkTx[node], t.NVLinkRx[node]}}
}
