// Package topo models the physical fabric of an AI training cluster: compute
// nodes with GPUs and dual-port RDMA NICs, and a dual-plane leaf/spine Clos
// network like the one described in §II-D of the C4 paper (HPCA'25).
//
// Conventions:
//
//   - A node has Rails NICs; NIC r is "rail r". Rails are independent
//     subnetworks (rail-optimized fabric): NIC r of one node only ever talks
//     to NIC r of another node.
//   - Each NIC has two physical ports. Port 0 attaches to the left plane
//     (plane 0) leaf of its rail, port 1 to the right plane (plane 1) leaf.
//     The two ports are bonded into one logical 2×PortGbps port.
//   - Nodes are partitioned into leaf groups of NodesPerGroup nodes. Each
//     (rail, plane, group) triple has one leaf switch. Every leaf of a rail
//     connects to every spine of that rail, so cross-plane paths exist (a
//     flow entering on plane 0 can descend to a destination port on plane 1)
//     exactly as in the paper, where C4P must actively forbid them.
//   - All links are unidirectional; a full-duplex cable is two Links.
package topo

import "fmt"

// Spec describes a cluster fabric to build.
type Spec struct {
	Nodes         int     // number of compute nodes
	GPUsPerNode   int     // GPUs per node (8 on the paper's testbed)
	Rails         int     // NICs per node; each NIC is one rail
	NodesPerGroup int     // nodes attached to one leaf (per rail/plane)
	Spines        int     // spine switches per rail (shared by both planes)
	PortGbps      float64 // bandwidth of one physical NIC port / fabric link
	NVLinkGbps    float64 // per-node intra-node fabric injection ceiling
}

// PaperTestbed returns the configuration of the paper's controlled testbed
// (Table II): 16 nodes × 8 H800 GPUs, 8 dual-port 200 Gbps NICs per node,
// fat-tree with 1:1 oversubscription, and the ~362 Gbps NVLink-fabric
// ceiling the paper reports for bus bandwidth.
func PaperTestbed() Spec {
	return Spec{
		Nodes:         16,
		GPUsPerNode:   8,
		Rails:         8,
		NodesPerGroup: 2,
		Spines:        8,
		PortGbps:      200,
		NVLinkGbps:    362,
	}
}

// MultiJobTestbed returns the fabric used for the multi-tenant experiments
// (Figs 10–13): the same 16 nodes arranged as two leaf groups of 8, so the
// eight 2-node jobs of Fig 10 can each span "distinct groups of leaf
// switches" and every leaf has 8 uplinks — making the paper's "1 link
// error among the 8 uplinks → ideal 7/8" arithmetic hold. spines=8 gives
// the 1:1 oversubscription fabric; spines=4 the 2:1 variant of Fig 10b.
func MultiJobTestbed(spines int) Spec {
	s := PaperTestbed()
	s.NodesPerGroup = 8
	s.Spines = spines
	return s
}

// Validate reports a descriptive error for inconsistent specs.
func (s Spec) Validate() error {
	switch {
	case s.Nodes <= 0:
		return fmt.Errorf("topo: Nodes = %d, must be positive", s.Nodes)
	case s.GPUsPerNode <= 0:
		return fmt.Errorf("topo: GPUsPerNode = %d, must be positive", s.GPUsPerNode)
	case s.Rails <= 0:
		return fmt.Errorf("topo: Rails = %d, must be positive", s.Rails)
	case s.NodesPerGroup <= 0:
		return fmt.Errorf("topo: NodesPerGroup = %d, must be positive", s.NodesPerGroup)
	case s.Spines <= 0:
		return fmt.Errorf("topo: Spines = %d, must be positive", s.Spines)
	case s.PortGbps <= 0:
		return fmt.Errorf("topo: PortGbps = %v, must be positive", s.PortGbps)
	case s.NVLinkGbps <= 0:
		return fmt.Errorf("topo: NVLinkGbps = %v, must be positive", s.NVLinkGbps)
	}
	return nil
}

// Groups reports the number of leaf groups the nodes are partitioned into.
func (s Spec) Groups() int {
	return (s.Nodes + s.NodesPerGroup - 1) / s.NodesPerGroup
}

// TotalGPUs reports the GPU count of the cluster.
func (s Spec) TotalGPUs() int { return s.Nodes * s.GPUsPerNode }

// Planes is the number of network planes (physical ports per NIC).
const Planes = 2

// LinkKind classifies a unidirectional link.
type LinkKind int

const (
	// LinkNodeUp carries traffic from a node port up to its leaf.
	LinkNodeUp LinkKind = iota
	// LinkNodeDown carries traffic from a leaf down to a node port.
	LinkNodeDown
	// LinkLeafUp carries traffic from a leaf up to a spine.
	LinkLeafUp
	// LinkSpineDown carries traffic from a spine down to a leaf.
	LinkSpineDown
	// LinkNVLinkTx models a node's intra-node fabric injection capacity
	// (data leaving GPU memory toward the NICs).
	LinkNVLinkTx
	// LinkNVLinkRx models a node's intra-node fabric delivery capacity.
	LinkNVLinkRx
)

func (k LinkKind) String() string {
	switch k {
	case LinkNodeUp:
		return "node-up"
	case LinkNodeDown:
		return "node-down"
	case LinkLeafUp:
		return "leaf-up"
	case LinkSpineDown:
		return "spine-down"
	case LinkNVLinkTx:
		return "nvlink-tx"
	case LinkNVLinkRx:
		return "nvlink-rx"
	}
	return "unknown"
}

// Link is one unidirectional network resource.
type Link struct {
	ID   int
	Kind LinkKind
	Gbps float64 // capacity
	Name string

	// Endpoints, by kind:
	//   node-up/node-down: Port and Leaf set
	//   leaf-up/spine-down: Leaf and Spine set
	//   nvlink-*: NodeID set
	Port   *Port
	Leaf   *Leaf
	Spine  *Spine
	NodeID int

	up bool
}

// Up reports whether the link is healthy.
func (l *Link) Up() bool { return l.up }

// SetUp marks the link healthy or failed.
func (l *Link) SetUp(up bool) { l.up = up }

func (l *Link) String() string { return l.Name }

// Port is one physical NIC port on a node.
type Port struct {
	Node  int // node index
	Rail  int // NIC index on the node
	Plane int // 0 = left, 1 = right
	Leaf  *Leaf
	Up    *Link // port -> leaf
	Down  *Link // leaf -> port
}

// Name returns a stable human-readable identifier.
func (p *Port) Name() string {
	return fmt.Sprintf("n%d/nic%d/p%d", p.Node, p.Rail, p.Plane)
}

// Leaf is a leaf (ToR) switch serving one (rail, plane, group) triple.
type Leaf struct {
	Rail, Plane, Group int
	Ups                []*Link // leaf -> spine, indexed by spine
	Downs              []*Link // spine -> leaf, indexed by spine
	Ports              []*Port // node ports attached to this leaf
}

// Name returns a stable human-readable identifier.
func (l *Leaf) Name() string {
	return fmt.Sprintf("leaf-r%d-p%d-g%d", l.Rail, l.Plane, l.Group)
}

// Spine is a spine switch serving one rail.
type Spine struct {
	Rail, Index int
}

// Name returns a stable human-readable identifier.
func (s *Spine) Name() string { return fmt.Sprintf("spine-r%d-%d", s.Rail, s.Index) }

// Topology is a fully built fabric.
type Topology struct {
	Spec   Spec
	Links  []*Link
	Ports  [][][]*Port // [node][rail][plane]
	Leaves []*Leaf
	Spines []*Spine

	// NVLinkTx/NVLinkRx are per-node fabric injection/delivery links.
	NVLinkTx []*Link
	NVLinkRx []*Link

	leafIndex map[[3]int]*Leaf // (rail, plane, group) -> leaf
}

// New builds the fabric for the given spec.
func New(spec Spec) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{
		Spec:      spec,
		leafIndex: make(map[[3]int]*Leaf),
	}
	groups := spec.Groups()

	newLink := func(kind LinkKind, gbps float64, name string) *Link {
		l := &Link{ID: len(t.Links), Kind: kind, Gbps: gbps, Name: name, up: true}
		t.Links = append(t.Links, l)
		return l
	}

	// Spines: one pool per rail, shared across both planes.
	for r := 0; r < spec.Rails; r++ {
		for s := 0; s < spec.Spines; s++ {
			t.Spines = append(t.Spines, &Spine{Rail: r, Index: s})
		}
	}

	// Leaves and leaf<->spine links.
	for r := 0; r < spec.Rails; r++ {
		for p := 0; p < Planes; p++ {
			for g := 0; g < groups; g++ {
				leaf := &Leaf{Rail: r, Plane: p, Group: g}
				for s := 0; s < spec.Spines; s++ {
					sp := t.SpineAt(r, s)
					up := newLink(LinkLeafUp, spec.PortGbps,
						fmt.Sprintf("%s->%s", leaf.Name(), sp.Name()))
					up.Leaf, up.Spine = leaf, sp
					down := newLink(LinkSpineDown, spec.PortGbps,
						fmt.Sprintf("%s->%s", sp.Name(), leaf.Name()))
					down.Leaf, down.Spine = leaf, sp
					leaf.Ups = append(leaf.Ups, up)
					leaf.Downs = append(leaf.Downs, down)
				}
				t.Leaves = append(t.Leaves, leaf)
				t.leafIndex[[3]int{r, p, g}] = leaf
			}
		}
	}

	// Nodes: ports, port<->leaf links, NVLink injection links.
	t.Ports = make([][][]*Port, spec.Nodes)
	for n := 0; n < spec.Nodes; n++ {
		g := n / spec.NodesPerGroup
		t.Ports[n] = make([][]*Port, spec.Rails)
		for r := 0; r < spec.Rails; r++ {
			t.Ports[n][r] = make([]*Port, Planes)
			for p := 0; p < Planes; p++ {
				leaf := t.leafIndex[[3]int{r, p, g}]
				port := &Port{Node: n, Rail: r, Plane: p, Leaf: leaf}
				up := newLink(LinkNodeUp, spec.PortGbps,
					fmt.Sprintf("%s->%s", port.Name(), leaf.Name()))
				up.Port, up.Leaf = port, leaf
				down := newLink(LinkNodeDown, spec.PortGbps,
					fmt.Sprintf("%s->%s", leaf.Name(), port.Name()))
				down.Port, down.Leaf = port, leaf
				port.Up, port.Down = up, down
				leaf.Ports = append(leaf.Ports, port)
				t.Ports[n][r][p] = port
			}
		}
		tx := newLink(LinkNVLinkTx, spec.NVLinkGbps, fmt.Sprintf("n%d/nvlink-tx", n))
		tx.NodeID = n
		rx := newLink(LinkNVLinkRx, spec.NVLinkGbps, fmt.Sprintf("n%d/nvlink-rx", n))
		rx.NodeID = n
		t.NVLinkTx = append(t.NVLinkTx, tx)
		t.NVLinkRx = append(t.NVLinkRx, rx)
	}
	return t, nil
}

// MustNew builds the fabric or panics; for tests and examples.
func MustNew(spec Spec) *Topology {
	t, err := New(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// SpineAt returns the spine at (rail, index).
func (t *Topology) SpineAt(rail, index int) *Spine {
	return t.Spines[rail*t.Spec.Spines+index]
}

// SpineLinks returns every fabric link touching the spine at (rail, index):
// the leaf-up and spine-down links of all leaves on that rail, across both
// planes. It is the blast radius of a spine/switch outage.
func (t *Topology) SpineLinks(rail, index int) []*Link {
	var out []*Link
	for _, leaf := range t.Leaves {
		if leaf.Rail != rail {
			continue
		}
		out = append(out, leaf.Ups[index], leaf.Downs[index])
	}
	return out
}

// LeafAt returns the leaf serving (rail, plane, group).
func (t *Topology) LeafAt(rail, plane, group int) *Leaf {
	return t.leafIndex[[3]int{rail, plane, group}]
}

// PortAt returns the port for (node, rail, plane).
func (t *Topology) PortAt(node, rail, plane int) *Port {
	return t.Ports[node][rail][plane]
}

// Group reports the leaf group a node belongs to.
func (t *Topology) Group(node int) int { return node / t.Spec.NodesPerGroup }
