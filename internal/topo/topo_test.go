package topo

import (
	"testing"
	"testing/quick"
)

func TestPaperTestbedShape(t *testing.T) {
	spec := PaperTestbed()
	top := MustNew(spec)
	if got := spec.TotalGPUs(); got != 128 {
		t.Fatalf("TotalGPUs = %d, want 128", got)
	}
	if got := spec.Groups(); got != 8 {
		t.Fatalf("Groups = %d, want 8", got)
	}
	wantLeaves := spec.Rails * Planes * spec.Groups()
	if len(top.Leaves) != wantLeaves {
		t.Fatalf("leaves = %d, want %d", len(top.Leaves), wantLeaves)
	}
	wantSpines := spec.Rails * spec.Spines
	if len(top.Spines) != wantSpines {
		t.Fatalf("spines = %d, want %d", len(top.Spines), wantSpines)
	}
	// Every leaf has one uplink per spine of its rail.
	for _, leaf := range top.Leaves {
		if len(leaf.Ups) != spec.Spines || len(leaf.Downs) != spec.Spines {
			t.Fatalf("leaf %s uplinks = %d/%d", leaf.Name(), len(leaf.Ups), len(leaf.Downs))
		}
		if len(leaf.Ports) != spec.NodesPerGroup {
			t.Fatalf("leaf %s ports = %d, want %d", leaf.Name(), len(leaf.Ports), spec.NodesPerGroup)
		}
	}
	if len(top.NVLinkTx) != spec.Nodes || len(top.NVLinkRx) != spec.Nodes {
		t.Fatal("missing NVLink links")
	}
}

func TestValidate(t *testing.T) {
	good := PaperTestbed()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{},
		{Nodes: 1},
		{Nodes: 2, GPUsPerNode: 8, Rails: 1, NodesPerGroup: 2, Spines: 0, PortGbps: 200, NVLinkGbps: 300},
		{Nodes: 2, GPUsPerNode: 8, Rails: 1, NodesPerGroup: 2, Spines: 1, PortGbps: -1, NVLinkGbps: 300},
		{Nodes: 2, GPUsPerNode: 8, Rails: 1, NodesPerGroup: 2, Spines: 1, PortGbps: 200, NVLinkGbps: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if _, err := New(Spec{}); err == nil {
		t.Error("New accepted an invalid spec")
	}
}

func TestPortWiring(t *testing.T) {
	top := MustNew(PaperTestbed())
	for n := 0; n < top.Spec.Nodes; n++ {
		for r := 0; r < top.Spec.Rails; r++ {
			for p := 0; p < Planes; p++ {
				port := top.PortAt(n, r, p)
				if port.Node != n || port.Rail != r || port.Plane != p {
					t.Fatalf("port identity mismatch at (%d,%d,%d)", n, r, p)
				}
				if port.Leaf != top.LeafAt(r, p, top.Group(n)) {
					t.Fatalf("port %s wired to wrong leaf %s", port.Name(), port.Leaf.Name())
				}
				if port.Up.Kind != LinkNodeUp || port.Down.Kind != LinkNodeDown {
					t.Fatalf("port %s link kinds wrong", port.Name())
				}
			}
		}
	}
}

func TestPathsBetweenCrossGroup(t *testing.T) {
	top := MustNew(PaperTestbed())
	// Nodes 0 and 2 are in different groups (2 nodes per group).
	paths := top.PathsBetween(0, 2, 3)
	want := Planes * Planes * top.Spec.Spines
	if len(paths) != want {
		t.Fatalf("paths = %d, want %d", len(paths), want)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		if p.SameLeaf() {
			t.Fatalf("cross-group path claims same leaf: %v", p)
		}
		if p.SrcPort.Node != 0 || p.DstPort.Node != 2 {
			t.Fatalf("endpoint mismatch: %v", p)
		}
		if p.SrcPort.Rail != 3 || p.DstPort.Rail != 3 {
			t.Fatalf("rail mismatch: %v", p)
		}
		if !p.Up() {
			t.Fatalf("fresh path reports down: %v", p)
		}
		// src NVLink, port up, leaf up, spine down, port down, dst NVLink
		if len(p.Links) != 6 {
			t.Fatalf("link count = %d, want 6: %v", len(p.Links), p)
		}
		if seen[p.String()] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[p.String()] = true
	}
}

func TestPathsBetweenSameGroup(t *testing.T) {
	top := MustNew(PaperTestbed())
	// Nodes 0 and 1 share a leaf group.
	paths := top.PathsBetween(0, 1, 0)
	want := Planes*Planes*top.Spec.Spines + Planes // spine routes + same-leaf per plane
	if len(paths) != want {
		t.Fatalf("paths = %d, want %d", len(paths), want)
	}
	sameLeaf := 0
	for _, p := range paths {
		if p.SameLeaf() {
			sameLeaf++
			if p.CrossPlane() {
				t.Fatalf("same-leaf path cannot cross planes: %v", p)
			}
			if len(p.Links) != 4 {
				t.Fatalf("same-leaf link count = %d, want 4", len(p.Links))
			}
		}
	}
	if sameLeaf != Planes {
		t.Fatalf("same-leaf paths = %d, want %d", sameLeaf, Planes)
	}
}

func TestPathsBetweenSelfAndPathFor(t *testing.T) {
	top := MustNew(PaperTestbed())
	if got := top.PathsBetween(3, 3, 0); got != nil {
		t.Fatalf("self paths = %v, want nil", got)
	}
	if _, err := top.PathFor(1, 1, 0, 0, 0, 0); err == nil {
		t.Fatal("PathFor to self should fail")
	}
	if _, err := top.PathFor(0, 2, 0, 0, -1, 0); err == nil {
		t.Fatal("same-leaf route between different groups should fail")
	}
	if _, err := top.PathFor(0, 2, 0, 0, 99, 0); err == nil {
		t.Fatal("out-of-range spine should fail")
	}
	p, err := top.PathFor(0, 1, 0, 1, -1, 1)
	if err != nil {
		t.Fatalf("PathFor same-leaf: %v", err)
	}
	if !p.SameLeaf() {
		t.Fatal("expected same-leaf path")
	}
	p, err = top.PathFor(0, 5, 2, 0, 4, 1)
	if err != nil {
		t.Fatalf("PathFor: %v", err)
	}
	if p.Spine.Index != 4 || !p.CrossPlane() {
		t.Fatalf("PathFor selection wrong: %v", p)
	}
}

func TestLinkFailurePropagatesToPath(t *testing.T) {
	top := MustNew(PaperTestbed())
	p, err := top.PathFor(0, 2, 0, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	up := p.SrcPort.Leaf.Ups[3]
	up.SetUp(false)
	if p.Up() {
		t.Fatal("path should be down after its uplink failed")
	}
	up.SetUp(true)
	if !p.Up() {
		t.Fatal("path should recover")
	}
}

func TestIntraNodePath(t *testing.T) {
	top := MustNew(PaperTestbed())
	p := top.IntraNodePath(7)
	if len(p.Links) != 2 {
		t.Fatalf("intra-node links = %d, want 2", len(p.Links))
	}
	if p.Links[0].Kind != LinkNVLinkTx || p.Links[1].Kind != LinkNVLinkRx {
		t.Fatal("intra-node path must be NVLink only")
	}
}

// Property: for any valid small spec, every cross-group path starts and ends
// at the requested endpoints and uses only links of the expected kinds in
// the expected order.
func TestPathStructureProperty(t *testing.T) {
	f := func(nodesRaw, railsRaw, spinesRaw uint8) bool {
		nodes := int(nodesRaw%6) + 2 // 2..7
		rails := int(railsRaw%3) + 1 // 1..3
		spines := int(spinesRaw%4) + 1
		spec := Spec{
			Nodes: nodes, GPUsPerNode: 8, Rails: rails,
			NodesPerGroup: 1, Spines: spines, PortGbps: 200, NVLinkGbps: 362,
		}
		top, err := New(spec)
		if err != nil {
			return false
		}
		kindOrder := []LinkKind{LinkNVLinkTx, LinkNodeUp, LinkLeafUp, LinkSpineDown, LinkNodeDown, LinkNVLinkRx}
		for r := 0; r < rails; r++ {
			for _, p := range top.PathsBetween(0, nodes-1, r) {
				if len(p.Links) != len(kindOrder) {
					return false
				}
				for i, l := range p.Links {
					if l.Kind != kindOrder[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpineLinks(t *testing.T) {
	top := MustNew(MultiJobTestbed(8))
	spec := top.Spec
	links := top.SpineLinks(0, 3)
	// Every leaf of rail 0 (both planes, all groups) contributes its up and
	// down link to spine 3.
	wantLeaves := Planes * spec.Groups()
	if len(links) != 2*wantLeaves {
		t.Fatalf("SpineLinks returned %d links, want %d", len(links), 2*wantLeaves)
	}
	sp := top.SpineAt(0, 3)
	seen := map[int]bool{}
	for _, l := range links {
		if l.Spine != sp {
			t.Fatalf("link %s does not touch %s", l.Name, sp.Name())
		}
		if l.Kind != LinkLeafUp && l.Kind != LinkSpineDown {
			t.Fatalf("link %s has kind %v", l.Name, l.Kind)
		}
		if seen[l.ID] {
			t.Fatalf("link %s returned twice", l.Name)
		}
		seen[l.ID] = true
	}
	// Other rails' spines are untouched.
	for _, l := range top.SpineLinks(1, 0) {
		if l.Spine.Rail != 1 {
			t.Fatalf("rail 1 spine links include rail %d", l.Spine.Rail)
		}
	}
}
