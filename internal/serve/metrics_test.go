package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"c4"
	"c4/internal/telemetry"
)

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	return rec.Body.String()
}

// metricValue extracts one sample (with exact label string) from an
// exposition body.
func metricValue(t *testing.T, body, series string) string {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("series %q not found in:\n%s", series, body)
	}
	return m[1]
}

func TestMetricsExposition(t *testing.T) {
	s := New(Config{MaxSessions: 2, MaxRunning: 1})
	h := s.Handler()

	body := scrape(t, h)
	if got := metricValue(t, body, "c4serve_sessions_created_total"); got != "0" {
		t.Fatalf("created_total = %s, want 0", got)
	}

	// Create two sessions; a third admission must evict a finished one or
	// reject. Both are still "created", so the third is a table_full reject.
	spec := []byte(`{"seed": 1, "scenario": "fig3"}`)
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/sessions", bytes.NewReader(spec)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/sessions", bytes.NewReader(spec)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap create = %d, want 503", rec.Code)
	}

	body = scrape(t, h)
	if got := metricValue(t, body, "c4serve_sessions_created_total"); got != "2" {
		t.Fatalf("created_total = %s, want 2", got)
	}
	if got := metricValue(t, body, `c4serve_admission_rejected_total{reason="table_full"}`); got != "1" {
		t.Fatalf("table_full rejects = %s, want 1", got)
	}
	if got := metricValue(t, body, `c4serve_sessions{state="created"}`); got != "2" {
		t.Fatalf("created gauge = %s, want 2", got)
	}

	// Two scrapes of unchanged state must be byte-identical (the format
	// promises fixed ordering).
	if again := scrape(t, h); again != body {
		t.Fatalf("scrape not deterministic:\n%s\nvs\n%s", body, again)
	}

	// The ops mux serves the same exposition plus pprof.
	ops := s.OpsHandler()
	if opsBody := scrape(t, ops); opsBody != body {
		t.Fatalf("ops /metrics differs from api /metrics")
	}
	prec := httptest.NewRecorder()
	ops.ServeHTTP(prec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if prec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline = %d", prec.Code)
	}
}

func TestHubDroppedAndSubscriberStats(t *testing.T) {
	// A tiny budget drops every line after the first; stats and status
	// must report the drop count, and /metrics must keep counting after
	// the hub retires.
	s := New(Config{})
	rec0 := telemetry.Record{Kind: telemetry.KindCommCreate, Node: -1, Nodes: []int{0, 1}}
	line, err := telemetry.EncodeRecord(rec0)
	if err != nil {
		t.Fatal(err)
	}
	h := newHub(len(line)) // budget = exactly one line
	for i := 0; i < 3; i++ {
		h.Observe(rec0)
	}
	records, dropped, subs, truncated := h.stats()
	if records != 1 || dropped != 2 || !truncated || subs != 0 {
		t.Fatalf("stats = (records %d, dropped %d, subs %d, trunc %t), want (1, 2, 0, true)",
			records, dropped, subs, truncated)
	}
	un := h.subscribe()
	if _, _, subs, _ := h.stats(); subs != 1 {
		t.Fatalf("subscribers = %d, want 1", subs)
	}
	un()
	if _, _, subs, _ := h.stats(); subs != 0 {
		t.Fatalf("subscribers after unsubscribe = %d, want 0", subs)
	}

	sess, err := c4.NewSession(c4.SessionOptions{Spec: c4.SessionSpec{Seed: 1, Scenario: "fig3"}})
	if err != nil {
		t.Fatal(err)
	}
	e := &session{id: "s000001", sess: sess, hub: h, state: StateDone}
	s.sessions[e.id] = e
	st := s.status(e)
	if st.Dropped != 2 || !st.Truncated {
		t.Fatalf("status dropped = %d truncated = %t, want 2 true", st.Dropped, st.Truncated)
	}
	body := scrape(t, s.Handler())
	if got := metricValue(t, body, "c4serve_sse_dropped_total"); got != "2" {
		t.Fatalf("sse_dropped_total = %s, want 2", got)
	}

	// Retire the session: the total must not go backwards.
	s.mu.Lock()
	s.retireLocked(e)
	delete(s.sessions, e.id)
	s.mu.Unlock()
	body = scrape(t, s.Handler())
	if got := metricValue(t, body, "c4serve_sse_dropped_total"); got != "2" {
		t.Fatalf("sse_dropped_total after retire = %s, want 2", got)
	}
}

func TestAccessLogMiddleware(t *testing.T) {
	var logBuf bytes.Buffer
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("middleware must forward http.Flusher")
		}
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "short and stout")
	})
	h := AccessLog(&logBuf, inner)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sessions", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
	if id := rec.Header().Get("X-Request-ID"); id != "r000001" {
		t.Fatalf("X-Request-ID = %q, want r000001", id)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if id := rec.Header().Get("X-Request-ID"); id != "r000002" {
		t.Fatalf("second X-Request-ID = %q, want r000002", id)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("log lines = %d, want 2: %q", len(lines), logBuf.String())
	}
	for _, want := range []string{"id=r000001", "method=GET", "path=/v1/sessions", "status=418", "bytes=15"} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("log line %q missing %q", lines[0], want)
		}
	}
}
