// Package serve is the simulation-as-a-service plane: an HTTP/JSON
// session API over the shared c4.Session lifecycle. The daemon
// (cmd/c4serve) mounts Server on a listener; every endpoint manipulates
// one bounded table of isolated sessions, so N clients can create, run,
// stream and tear down simulations concurrently while each session's
// metrics and telemetry stay byte-identical to a one-shot c4sim run of
// the same spec and seed.
//
// Endpoints:
//
//	POST   /v1/sessions             create a session from a JSON spec
//	GET    /v1/sessions             list sessions
//	GET    /v1/sessions/{id}        status + metrics
//	POST   /v1/sessions/{id}/run    start the run (async)
//	GET    /v1/sessions/{id}/stream live telemetry as SSE (JSONL payloads)
//	DELETE /v1/sessions/{id}        cancel if running, then remove
//	GET    /healthz                 liveness probe
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"c4"
)

// Config bounds the serving plane.
type Config struct {
	// MaxSessions caps the session table; creating past the cap evicts
	// the least-recently-touched finished session, and answers 503 when
	// every entry is still created/running. Default 32.
	MaxSessions int
	// MaxRunning caps concurrently running sessions; starts past the cap
	// answer 429. Default 8.
	MaxRunning int
	// RunTimeout cancels any single run after this wall-clock duration
	// (0 = no timeout).
	RunTimeout time.Duration
	// StreamLimit is the per-session telemetry retention budget in bytes;
	// past it records are dropped and the stream marked truncated.
	// Default 64 MiB.
	StreamLimit int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 32
	}
	if c.MaxRunning <= 0 {
		c.MaxRunning = 8
	}
	if c.StreamLimit <= 0 {
		c.StreamLimit = 64 << 20
	}
	return c
}

// Session lifecycle states, as reported by the API.
const (
	StateCreated   = "created"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// session is one table entry.
type session struct {
	id    string
	spec  c4.SessionSpec
	sess  *c4.Session
	hub   *hub
	state string
	err   string

	cancel context.CancelFunc
	done   chan struct{} // closed when the run goroutine exits
	touch  uint64        // eviction order (monotonic, not wall clock)
}

// counters is the Prometheus-exposed operational state, guarded by
// Server.mu except sseBytes, which streaming handlers bump outside the
// lock. Gauges (per-state session counts, live subscribers) are computed
// at scrape time from the table itself so they can never drift.
type counters struct {
	created  uint64
	evicted  uint64
	rejected map[string]uint64 // admission refusals by reason
	runs     map[string]uint64 // finished runs by outcome state
	// retiredDropped accumulates the dropped-line counts of hubs whose
	// sessions were evicted or deleted, so the totals survive removal.
	retiredDropped uint64
	sseBytes       atomic.Uint64
}

// Admission-rejection reasons and the metric's fixed label order.
var rejectReasons = []string{"conflict", "draining", "run_cap", "table_full"}

// Server is the session table plus its HTTP surface.
type Server struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	clock    uint64 // touch counter
	running  int
	draining bool
	ctrs     counters
	wg       sync.WaitGroup
}

// New creates a Server.
func New(cfg Config) *Server {
	return &Server{
		cfg:      cfg.withDefaults(),
		sessions: map[string]*session{},
		ctrs: counters{
			rejected: map[string]uint64{},
			runs:     map[string]uint64{},
		},
	}
}

// reject counts an admission refusal and answers it. Callers hold s.mu.
func (s *Server) rejectLocked(w http.ResponseWriter, reason string, code int, format string, args ...any) {
	s.ctrs.rejected[reason]++
	fail(w, code, format, args...)
}

// Handler mounts the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/sessions/{id}/run", s.handleRun)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// OpsHandler mounts the operational endpoints kept off the public API
// mux — runtime profiling and a second /metrics — so exposing pprof is
// an explicit opt-in (`c4serve -ops`) rather than a side effect of
// serving sessions.
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics renders the Prometheus text exposition format with the
// standard library only: every series is written in a fixed order with
// fixed label sets, so two scrapes of the same state are byte-identical.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	created, evicted := s.ctrs.created, s.ctrs.evicted
	rejected := make(map[string]uint64, len(rejectReasons))
	for _, reason := range rejectReasons {
		rejected[reason] = s.ctrs.rejected[reason]
	}
	runs := map[string]uint64{}
	for _, outcome := range []string{StateDone, StateFailed, StateCancelled} {
		runs[outcome] = s.ctrs.runs[outcome]
	}
	states := map[string]int{}
	var subs int
	dropped := s.ctrs.retiredDropped
	for _, e := range s.sessions {
		states[e.state]++
		_, d, su, _ := e.hub.stats()
		dropped += uint64(d)
		subs += su
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP c4serve_sessions_created_total Sessions admitted to the table.\n")
	p("# TYPE c4serve_sessions_created_total counter\n")
	p("c4serve_sessions_created_total %d\n", created)
	p("# HELP c4serve_sessions_evicted_total Finished sessions evicted to admit new ones.\n")
	p("# TYPE c4serve_sessions_evicted_total counter\n")
	p("c4serve_sessions_evicted_total %d\n", evicted)
	p("# HELP c4serve_admission_rejected_total Requests refused by admission control.\n")
	p("# TYPE c4serve_admission_rejected_total counter\n")
	for _, reason := range rejectReasons {
		p("c4serve_admission_rejected_total{reason=%q} %d\n", reason, rejected[reason])
	}
	p("# HELP c4serve_runs_total Finished session runs by outcome.\n")
	p("# TYPE c4serve_runs_total counter\n")
	for _, outcome := range []string{StateCancelled, StateDone, StateFailed} {
		p("c4serve_runs_total{outcome=%q} %d\n", outcome, runs[outcome])
	}
	p("# HELP c4serve_sessions Sessions currently in the table by state.\n")
	p("# TYPE c4serve_sessions gauge\n")
	for _, state := range []string{StateCancelled, StateCreated, StateDone, StateFailed, StateRunning} {
		p("c4serve_sessions{state=%q} %d\n", state, states[state])
	}
	p("# HELP c4serve_sse_subscribers Telemetry stream subscribers currently connected.\n")
	p("# TYPE c4serve_sse_subscribers gauge\n")
	p("c4serve_sse_subscribers %d\n", subs)
	p("# HELP c4serve_sse_bytes_total Telemetry bytes written to SSE subscribers.\n")
	p("# TYPE c4serve_sse_bytes_total counter\n")
	p("c4serve_sse_bytes_total %d\n", s.ctrs.sseBytes.Load())
	p("# HELP c4serve_sse_dropped_total Telemetry lines dropped by per-session retention budgets.\n")
	p("# TYPE c4serve_sse_dropped_total counter\n")
	p("c4serve_sse_dropped_total %d\n", dropped)
}

// Status is the JSON rendering of one session.
type Status struct {
	ID      string             `json:"id"`
	State   string             `json:"state"`
	Error   string             `json:"error,omitempty"`
	Summary string             `json:"summary,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Records counts retained telemetry records; Dropped the lines the
	// retention budget discarded; Truncated reports whether anything was
	// dropped at all. Subscribers counts the SSE streams currently
	// attached.
	Records     int  `json:"records"`
	Dropped     int  `json:"dropped,omitempty"`
	Subscribers int  `json:"subscribers,omitempty"`
	Truncated   bool `json:"truncated,omitempty"`
}

func (s *Server) status(e *session) Status {
	records, dropped, subscribers, truncated := e.hub.stats()
	return Status{
		ID: e.id, State: e.state, Error: e.err,
		Summary: e.sess.Summary(), Metrics: e.sess.Metrics(),
		Records: records, Dropped: dropped,
		Subscribers: subscribers, Truncated: truncated,
	}
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func fail(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleCreate admits a new session: parse and validate the spec (the
// whole spec — a bad model name fails here, not mid-run), evict the
// stalest finished entry if the table is full, and park the session in
// state created with its stream hub already attached.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec c4.SessionSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fail(w, http.StatusBadRequest, "decoding session spec: %v", err)
		return
	}
	sess, err := c4.NewSession(c4.SessionOptions{Spec: spec})
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	h := newHub(s.cfg.StreamLimit)
	sess.AttachSink(h)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejectLocked(w, "draining", http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions && !s.evictLocked() {
		s.rejectLocked(w, "table_full", http.StatusServiceUnavailable,
			"session table full (%d) and nothing evictable; delete or finish sessions", s.cfg.MaxSessions)
		return
	}
	s.ctrs.created++
	s.nextID++
	e := &session{
		id:    fmt.Sprintf("s%06d", s.nextID),
		spec:  spec,
		sess:  sess,
		hub:   h,
		state: StateCreated,
		done:  make(chan struct{}),
	}
	s.touchLocked(e)
	s.sessions[e.id] = e
	writeJSON(w, http.StatusCreated, s.status(e))
}

// evictLocked removes the least-recently-touched terminal session.
// Created and running sessions are never evicted — callers own their
// teardown — so a table of 32 still-pending sessions refuses admission
// rather than cancelling someone's work.
func (s *Server) evictLocked() bool {
	var victim *session
	for _, e := range s.sessions {
		switch e.state {
		case StateDone, StateFailed, StateCancelled:
			if victim == nil || e.touch < victim.touch {
				victim = e
			}
		}
	}
	if victim == nil {
		return false
	}
	victim.hub.Close()
	victim.sess.Close()
	s.retireLocked(victim)
	delete(s.sessions, victim.id)
	s.ctrs.evicted++
	return true
}

// retireLocked folds a departing session's drop count into the totals so
// /metrics counters never go backwards when entries leave the table.
func (s *Server) retireLocked(e *session) {
	_, dropped, _, _ := e.hub.stats()
	s.ctrs.retiredDropped += uint64(dropped)
}

// touchLocked stamps e as most recently used.
func (s *Server) touchLocked(e *session) {
	s.clock++
	e.touch = s.clock
}

// get fetches and LRU-touches a session.
func (s *Server) get(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.sessions[id]
	if ok {
		s.touchLocked(e)
	}
	return e, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]Status, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, s.status(e))
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": entries})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("id"))
	if !ok {
		fail(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	st := s.status(e)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleRun starts the session's run on its own goroutine under a
// cancellable (and optionally deadlined) context, subject to the
// concurrent-run admission cap.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("id"))
	if !ok {
		fail(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	if s.draining {
		s.rejectLocked(w, "draining", http.StatusServiceUnavailable, "server is shutting down")
		s.mu.Unlock()
		return
	}
	if e.state != StateCreated {
		s.rejectLocked(w, "conflict", http.StatusConflict, "session %s is %s; sessions run at most once", e.id, e.state)
		s.mu.Unlock()
		return
	}
	if s.running >= s.cfg.MaxRunning {
		s.rejectLocked(w, "run_cap", http.StatusTooManyRequests,
			"%d sessions already running (cap %d); retry after one finishes", s.cfg.MaxRunning, s.cfg.MaxRunning)
		s.mu.Unlock()
		return
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if s.cfg.RunTimeout > 0 {
		//c4vet:allow ctxleak session runs deliberately outlive the POST that starts them; DELETE and Shutdown cancel via e.cancel
		ctx, cancel = context.WithTimeout(context.Background(), s.cfg.RunTimeout)
	} else {
		//c4vet:allow ctxleak same detach as above for the no-timeout configuration
		ctx, cancel = context.WithCancel(context.Background())
	}
	e.state = StateRunning
	e.cancel = cancel
	s.running++
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		err := e.sess.Run(ctx)
		cancel()
		e.hub.Close()
		s.mu.Lock()
		s.running--
		switch {
		case err == nil:
			e.state = StateDone
		case errors.Is(err, context.Canceled):
			e.state = StateCancelled
			e.err = err.Error()
		default:
			e.state = StateFailed
			e.err = err.Error()
		}
		s.ctrs.runs[e.state]++
		s.mu.Unlock()
		close(e.done)
	}()

	s.mu.Lock()
	st := s.status(e)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}

// handleStream serves the session's telemetry as Server-Sent Events: one
// `data:` event per JSONL record (payload byte-identical to the c4sim
// -telemetry-out line), replayed from the first record and followed live,
// closing with an `event: end` carrying the record count. Subscribing to
// a session that never runs blocks until it runs or is deleted.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("id"))
	if !ok {
		fail(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		fail(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	unsubscribe := e.hub.subscribe()
	defer unsubscribe()
	var sent uint64
	defer func() { s.ctrs.sseBytes.Add(sent) }()

	at := 0
	for {
		lines, next, done, wake := e.hub.next(at)
		for _, line := range lines {
			// line carries its trailing newline; SSE data frames must not,
			// so trim it and close the event with the blank line.
			n, _ := fmt.Fprintf(w, "data: %s\n\n", line[:len(line)-1])
			sent += uint64(n)
		}
		if len(lines) > 0 {
			fl.Flush()
		}
		at = next
		if done {
			records, dropped, _, truncated := e.hub.stats()
			n, _ := fmt.Fprintf(w, "event: end\ndata: {\"records\": %d, \"dropped\": %d, \"truncated\": %t}\n\n",
				records, dropped, truncated)
			sent += uint64(n)
			fl.Flush()
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleDelete cancels the session if it is running, waits for the run
// goroutine to unwind, and removes the entry.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("id"))
	if !ok {
		fail(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	running := e.state == StateRunning
	cancel := e.cancel
	s.mu.Unlock()
	if running && cancel != nil {
		cancel()
		select {
		case <-e.done:
		case <-r.Context().Done():
			fail(w, http.StatusGatewayTimeout, "session %s did not stop before the client gave up", e.id)
			return
		}
	}
	s.mu.Lock()
	e.hub.Close()
	e.sess.Close()
	s.retireLocked(e)
	delete(s.sessions, e.id)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// Shutdown drains the server: new creates and runs are refused
// immediately, in-flight runs get until ctx expires to finish, then are
// cancelled and awaited. Always returns with every run goroutine stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() { s.wg.Wait(); close(finished) }()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, e := range s.sessions {
		if e.cancel != nil {
			e.cancel()
		}
	}
	s.mu.Unlock()
	<-finished
	return ctx.Err()
}
