package serve

import (
	"sync"

	"c4/internal/telemetry"
)

// hub is the per-session telemetry broadcast buffer. It implements
// telemetry.Sink on the session's run goroutine, retaining every encoded
// JSONL line (up to a byte budget) so a subscriber that connects late —
// or reconnects — replays the stream from the first record and then
// follows the live tail. Appends wake blocked subscribers by closing the
// current wake channel; subscribers never see a torn line because lines
// are immutable once appended.
type hub struct {
	mu        sync.Mutex
	lines     [][]byte
	bytes     int
	limit     int
	dropped   int // lines past the byte budget
	subs      int // subscribers currently streaming
	truncated bool
	closed    bool
	wake      chan struct{}
}

func newHub(limit int) *hub {
	return &hub{limit: limit, wake: make(chan struct{})}
}

// Observe implements telemetry.Sink. Records past the byte budget are
// dropped and the stream is marked truncated — a bounded session table
// must not let one chatty session exhaust the process.
func (h *hub) Observe(r telemetry.Record) {
	line, err := telemetry.EncodeRecord(r)
	if err != nil {
		return // a record that cannot encode is dropped, not fatal
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if h.limit > 0 && h.bytes+len(line) > h.limit {
		h.truncated = true
		h.dropped++
		return
	}
	h.lines = append(h.lines, line)
	h.bytes += len(line)
	h.notify()
}

// Close marks the stream complete; subscribers drain the buffer and stop.
// Safe to call more than once.
func (h *hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	h.notify()
}

// notify wakes blocked subscribers. Callers hold h.mu.
func (h *hub) notify() {
	close(h.wake)
	h.wake = make(chan struct{})
}

// next returns the lines appended since index from, the new index, whether
// the stream has completed, and a channel that closes on the next append.
// A subscriber loops: write lines, and when done && len(lines) == 0, stop;
// otherwise wait on wake.
func (h *hub) next(from int) (lines [][]byte, to int, done bool, wake <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from > len(h.lines) {
		from = len(h.lines)
	}
	return h.lines[from:], len(h.lines), h.closed, h.wake
}

// subscribe registers a streaming subscriber; the returned func
// deregisters it.
func (h *hub) subscribe() func() {
	h.mu.Lock()
	h.subs++
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		h.subs--
		h.mu.Unlock()
	}
}

// stats reports the retained record count, the lines the byte budget
// dropped, the subscribers currently attached, and whether the stream
// was truncated.
func (h *hub) stats() (records, dropped, subscribers int, truncated bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.lines), h.dropped, h.subs, h.truncated
}
