package serve

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// AccessLog wraps an HTTP handler with structured access logging: every
// request gets a process-unique ID (echoed back as X-Request-ID so a
// client error report names the exact server-side log line), and
// completion emits one logfmt line with method, path, status, response
// bytes and wall-clock latency. SSE responses stream through unchanged —
// the wrapper forwards http.Flusher — and log on disconnect like any
// other request.
func AccessLog(log io.Writer, next http.Handler) http.Handler {
	var seq atomic.Uint64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("r%06d", seq.Add(1))
		w.Header().Set("X-Request-ID", id)
		rec := &logResponse{ResponseWriter: w}
		//c4vet:allow wallclock request latency is operator-facing edge measurement; no simulation state depends on it
		start := time.Now()
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		fmt.Fprintf(log, "id=%s method=%s path=%s status=%d bytes=%d dur=%s\n",
			id, r.Method, r.URL.Path, status, rec.bytes,
			time.Since(start).Round(time.Microsecond)) //c4vet:allow wallclock pairs with the start stamp above
	})
}

// logResponse records the status and byte count of one response. It
// must keep implementing http.Flusher, or wrapping the mux would silently
// break SSE streaming.
type logResponse struct {
	http.ResponseWriter
	status int
	bytes  uint64
}

func (l *logResponse) WriteHeader(code int) {
	if l.status == 0 {
		l.status = code
	}
	l.ResponseWriter.WriteHeader(code)
}

func (l *logResponse) Write(p []byte) (int, error) {
	n, err := l.ResponseWriter.Write(p)
	l.bytes += uint64(n)
	return n, err
}

// Flush forwards to the underlying writer so handleStream's flusher
// check still succeeds behind the middleware.
func (l *logResponse) Flush() {
	if fl, ok := l.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}
