package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"c4"
)

// client is a minimal typed wrapper over the API for tests.
type client struct {
	t    *testing.T
	base string
	hc   *http.Client
}

func newTestServer(t *testing.T, cfg Config) (*client, *Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &client{t: t, base: ts.URL, hc: ts.Client()}, srv
}

func (c *client) do(method, path string, body any) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, data
}

func (c *client) create(spec c4.SessionSpec) Status {
	c.t.Helper()
	code, body := c.do("POST", "/v1/sessions", spec)
	if code != http.StatusCreated {
		c.t.Fatalf("create: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

func (c *client) run(id string) Status {
	c.t.Helper()
	code, body := c.do("POST", "/v1/sessions/"+id+"/run", nil)
	if code != http.StatusAccepted {
		c.t.Fatalf("run %s: %d %s", id, code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

func (c *client) status(id string) Status {
	c.t.Helper()
	code, body := c.do("GET", "/v1/sessions/"+id, nil)
	if code != http.StatusOK {
		c.t.Fatalf("status %s: %d %s", id, code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

// waitDone polls until the session leaves the running/created states.
func (c *client) waitDone(id string) Status {
	c.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := c.status(id)
		if st.State != StateRunning && st.State != StateCreated {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatalf("session %s did not finish", id)
	return Status{}
}

// stream subscribes to the SSE endpoint and returns the concatenated
// JSONL payload (reconstructing each line's trailing newline) plus the
// end event's JSON.
func (c *client) stream(id string) (jsonl []byte, end string) {
	c.t.Helper()
	resp, err := c.hc.Get(c.base + "/v1/sessions/" + id + "/stream")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		c.t.Fatalf("stream %s: %d %s", id, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		c.t.Fatalf("stream content type %q", ct)
	}
	var buf bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	ended := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: end":
			ended = true
		case strings.HasPrefix(line, "data: "):
			if ended {
				return buf.Bytes(), strings.TrimPrefix(line, "data: ")
			}
			buf.WriteString(strings.TrimPrefix(line, "data: "))
			buf.WriteByte('\n')
		}
	}
	c.t.Fatalf("stream %s closed without end event: %v", id, sc.Err())
	return nil, ""
}

func jobSpec(seed int64) c4.SessionSpec {
	return c4.SessionSpec{
		Seed: seed,
		Job:  &c4.SessionJob{Model: "gpt22b", Fault: "straggler", HorizonS: 120},
	}
}

// oneShot runs the same spec directly through c4.Session with a
// StreamWriter — the c4sim -telemetry-out path — for comparison.
func oneShot(t *testing.T, spec c4.SessionSpec) (map[string]float64, []byte) {
	t.Helper()
	var buf bytes.Buffer
	sess, err := c4.NewSession(c4.SessionOptions{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	w := c4.NewTelemetryStreamWriter(&buf)
	sess.AttachSink(w)
	if err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return sess.Metrics(), buf.Bytes()
}

// TestSessionLifecycle drives one session create -> run -> stream ->
// status -> delete over real HTTP and checks the streamed telemetry is
// byte-identical to a one-shot run of the same spec.
func TestSessionLifecycle(t *testing.T) {
	cl, _ := newTestServer(t, Config{})
	st := cl.create(jobSpec(3))
	if st.State != StateCreated {
		t.Fatalf("created state = %s", st.State)
	}
	cl.run(st.ID)
	jsonl, end := cl.stream(st.ID) // follows live, returns at end event
	final := cl.waitDone(st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if final.Metrics["iterations"] <= 0 {
		t.Fatalf("metrics = %v", final.Metrics)
	}
	if !strings.Contains(end, fmt.Sprintf(`"records": %d`, final.Records)) {
		t.Fatalf("end event %q does not match %d records", end, final.Records)
	}

	wantMetrics, wantStream := oneShot(t, jobSpec(3))
	if !bytes.Equal(jsonl, wantStream) {
		t.Fatalf("served stream differs from one-shot run (%d vs %d bytes)", len(jsonl), len(wantStream))
	}
	for k, v := range wantMetrics {
		if final.Metrics[k] != v {
			t.Fatalf("metric %s: served %v, one-shot %v", k, final.Metrics[k], v)
		}
	}

	if code, _ := cl.do("DELETE", "/v1/sessions/"+st.ID, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := cl.do("GET", "/v1/sessions/"+st.ID, nil); code != http.StatusNotFound {
		t.Fatalf("status after delete: %d", code)
	}
}

// TestConcurrentSessionsByteIdentical runs 8 sessions concurrently (two
// seeds × four replicas) and checks every replica's stream matches its
// seed's one-shot reference — session isolation under load.
func TestConcurrentSessionsByteIdentical(t *testing.T) {
	cl, _ := newTestServer(t, Config{MaxRunning: 8})
	want := map[int64][]byte{}
	for _, seed := range []int64{1, 2} {
		_, stream := oneShot(t, jobSpec(seed))
		want[seed] = stream
	}

	type result struct {
		seed  int64
		jsonl []byte
	}
	results := make(chan result, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		seed := int64(1 + i%2)
		st := cl.create(jobSpec(seed))
		cl.run(st.ID)
		wg.Add(1)
		go func(id string, seed int64) {
			defer wg.Done()
			jsonl, _ := cl.stream(id)
			results <- result{seed, jsonl}
		}(st.ID, seed)
	}
	wg.Wait()
	close(results)
	n := 0
	for r := range results {
		n++
		if !bytes.Equal(r.jsonl, want[r.seed]) {
			t.Fatalf("concurrent session (seed %d) stream diverged from one-shot", r.seed)
		}
	}
	if n != 8 {
		t.Fatalf("got %d streams, want 8", n)
	}
}

// TestAdmissionControl checks both caps: the running cap answers 429,
// and a full table of unevictable sessions answers 503 (while a table
// with finished sessions evicts and admits).
func TestAdmissionControl(t *testing.T) {
	cl, _ := newTestServer(t, Config{MaxSessions: 2, MaxRunning: 1})

	// Fill the table with two created (unevictable) sessions.
	a := cl.create(jobSpec(1))
	b := cl.create(jobSpec(2))
	if code, body := cl.do("POST", "/v1/sessions", jobSpec(3)); code != http.StatusServiceUnavailable {
		t.Fatalf("create over cap: %d %s", code, body)
	}

	// Start one; the second start must bounce off the running cap.
	cl.run(a.ID)
	if code, body := cl.do("POST", "/v1/sessions/"+b.ID+"/run", nil); code != http.StatusTooManyRequests {
		t.Fatalf("run over cap: %d %s", code, body)
	}
	if st := cl.waitDone(a.ID); st.State != StateDone {
		t.Fatalf("first session: %s (%s)", st.State, st.Error)
	}

	// a is terminal now: the next create evicts it and is admitted.
	c := cl.create(jobSpec(4))
	if code, _ := cl.do("GET", "/v1/sessions/"+a.ID, nil); code != http.StatusNotFound {
		t.Fatalf("evicted session still present: %d", code)
	}
	if code, _ := cl.do("GET", "/v1/sessions/"+c.ID, nil); code != http.StatusOK {
		t.Fatalf("admitted session missing: %d", code)
	}

	// Invalid specs are rejected at the door.
	if code, _ := cl.do("POST", "/v1/sessions",
		c4.SessionSpec{Job: &c4.SessionJob{Model: "gpt9000"}}); code != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", code)
	}
	if code, _ := cl.do("POST", "/v1/sessions/"+b.ID+"/run", nil); code != http.StatusAccepted {
		t.Fatal("second session should start once the cap frees")
	}
	cl.waitDone(b.ID)
}

// TestDeleteCancelsRunningSession checks DELETE on a mid-run session
// cancels it cooperatively and removes it.
func TestDeleteCancelsRunningSession(t *testing.T) {
	cl, srv := newTestServer(t, Config{})
	spec := jobSpec(1)
	spec.Job.HorizonS = 1e9 // would run far beyond the test budget
	st := cl.create(spec)
	cl.run(st.ID)
	time.Sleep(30 * time.Millisecond) // let the run get going
	start := time.Now()
	if code, body := cl.do("DELETE", "/v1/sessions/"+st.ID, nil); code != http.StatusNoContent {
		t.Fatalf("delete running: %d %s", code, body)
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("cancellation took %v", took)
	}
	if code, _ := cl.do("GET", "/v1/sessions/"+st.ID, nil); code != http.StatusNotFound {
		t.Fatal("deleted session still present")
	}
	// The run goroutine must be gone: Shutdown returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after delete: %v", err)
	}
}

// TestShutdownDrains checks graceful shutdown waits for an in-flight run
// and then refuses new work.
func TestShutdownDrains(t *testing.T) {
	cl, srv := newTestServer(t, Config{})
	st := cl.create(jobSpec(1))
	cl.run(st.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := cl.status(st.ID).State; got != StateDone {
		t.Fatalf("state after drain = %s", got)
	}
	if code, _ := cl.do("POST", "/v1/sessions", jobSpec(2)); code != http.StatusServiceUnavailable {
		t.Fatal("create after shutdown should be refused")
	}
}

func TestStreamLimitTruncates(t *testing.T) {
	cl, _ := newTestServer(t, Config{StreamLimit: 4096})
	st := cl.create(jobSpec(1))
	cl.run(st.ID)
	final := cl.waitDone(st.ID)
	if !final.Truncated {
		t.Fatalf("4 KiB budget should truncate a job stream: %+v", final)
	}
	_, end := cl.stream(st.ID)
	if !strings.Contains(end, `"truncated": true`) {
		t.Fatalf("end event %q should flag truncation", end)
	}
}
