package harness

import (
	"fmt"
	"strings"

	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
)

// Fig13Variant is the switch-side view of one Fig 12 run: per-uplink
// bandwidth on the leaf that loses a link.
type Fig13Variant struct {
	Mode  string
	Ports []*metrics.Series // Gbps per 2s window, one series per uplink
	// PostImbalance is the max/mean bandwidth ratio across surviving
	// uplinks after the failure settles — 1.0 is perfect balance; static
	// rehash leaves some survivors dark and others overloaded.
	PostImbalance float64
}

// Fig13Result bundles both variants.
type Fig13Result struct {
	FailAt    sim.Time
	FailIndex int
	Static    Fig13Variant
	Dynamic   Fig13Variant
}

// RunFig13 re-runs the Fig 12 experiments while sampling the affected
// leaf's uplink counters, reproducing the paper's switch-port bandwidth
// comparison: without dynamic load balance the orphaned traffic piles onto
// a few ports; with it the load spreads across all surviving uplinks.
func RunFig13(seed int64) Fig13Result { return runFig13(scenario.NewCtx(seed)) }

func runFig13(ctx *scenario.Ctx) Fig13Result {
	seed := ctx.Seed
	const (
		failAt   = 30 * sim.Second
		horizon  = 90 * sim.Second
		interval = 2 * sim.Second
		failIdx  = 2
	)
	run := func(kind ProviderKind, qps int, adaptive bool, label string) Fig13Variant {
		e := newEnv(ctx, topo.MultiJobTestbed(8))
		benches := runConcurrentJobs(e, kind, seed, horizon, qps, adaptive)
		leaf := e.Topo.LeafAt(0, 0, 0)
		e.Eng.Schedule(failAt, func() {
			e.Net.SetLinkUp(leaf.Ups[failIdx], false)
			e.Net.SetLinkUp(leaf.Downs[failIdx], false)
			for _, b := range benches {
				b.Comm.RefreshPaths(func(p *topo.Path) bool {
					return p.Spine != nil && (p.SrcPort.Leaf == leaf || p.DstPort.Leaf == leaf)
				})
			}
		})
		v := Fig13Variant{Mode: label}
		last := make([]float64, len(leaf.Ups))
		for range leaf.Ups {
			v.Ports = append(v.Ports, &metrics.Series{Name: "uplink"})
		}
		var sample func()
		sample = func() {
			now := e.Eng.Now()
			for i, up := range leaf.Ups {
				bits := e.Net.CarriedBits(up)
				gbps := (bits - last[i]) / interval.Seconds() / 1e9
				last[i] = bits
				v.Ports[i].Add(now.Seconds(), gbps)
			}
			if now < horizon {
				e.Eng.After(interval, sample)
			}
		}
		e.Eng.After(interval, sample)
		e.Eng.RunUntil(horizon)

		// Balance across surviving links in the settled post-failure span.
		lo, hi := (failAt + 10*sim.Second).Seconds(), horizon.Seconds()
		var maxBW, sum float64
		count := 0
		for i, s := range v.Ports {
			if i == failIdx {
				continue
			}
			var vals []float64
			for _, p := range s.Window(lo, hi) {
				vals = append(vals, p.V)
			}
			m := metrics.Mean(vals)
			if m > maxBW {
				maxBW = m
			}
			sum += m
			count++
		}
		if sum > 0 {
			v.PostImbalance = maxBW / (sum / float64(count))
		}
		return v
	}
	return Fig13Result{
		FailAt:    failAt,
		FailIndex: failIdx,
		Static:    run(C4PStatic, 2, false, "static traffic engineering"),
		Dynamic:   run(C4PDynamic, 8, true, "dynamic load balance"),
	}
}

// String renders the settled per-port bandwidths.
func (r Fig13Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 13 — leaf uplink bandwidth (Gbps), link %d killed at %v\n", r.FailIndex, r.FailAt)
	for _, v := range []Fig13Variant{r.Static, r.Dynamic} {
		fmt.Fprintf(&sb, "%s (post-failure max/mean across survivors: %.2f)\n", v.Mode, v.PostImbalance)
		labels := make([]string, len(v.Ports))
		vals := make([]float64, len(v.Ports))
		for i, s := range v.Ports {
			labels[i] = fmt.Sprintf("uplink%d", i)
			vals[i] = s.Last()
		}
		sb.WriteString(metrics.Bars(labels, vals, 40))
	}
	return sb.String()
}

// CheckShape validates the paper's claim: the failed port goes dark in
// both runs; dynamic load balance spreads traffic far more evenly across
// the survivors than static rehash.
func (r Fig13Result) CheckShape() error {
	for _, v := range []Fig13Variant{r.Static, r.Dynamic} {
		if last := v.Ports[r.FailIndex].Last(); last > 1 {
			return fmt.Errorf("fig13 %s: failed uplink still carries %.1f Gbps", v.Mode, last)
		}
	}
	if r.Dynamic.PostImbalance > 1.3 {
		return fmt.Errorf("fig13: dynamic survivors imbalanced %.2fx, want ≈1", r.Dynamic.PostImbalance)
	}
	if r.Static.PostImbalance < 1.4 {
		return fmt.Errorf("fig13: static imbalance %.2f, want concentration (>1.4)", r.Static.PostImbalance)
	}
	if r.Static.PostImbalance < r.Dynamic.PostImbalance {
		return fmt.Errorf("fig13: static (%.2f) should be less balanced than dynamic (%.2f)",
			r.Static.PostImbalance, r.Dynamic.PostImbalance)
	}
	return nil
}
