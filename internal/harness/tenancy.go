package harness

import (
	"fmt"

	"c4/internal/scenario"
	"c4/internal/tenancy"
)

// This file registers the multi-tenant cluster experiments under
// "tenancy/<name>": trace-driven sweeps where several training jobs share
// one fabric (internal/tenancy), probing the half of the paper's claim the
// single-job figures cannot — that C4P's path steering pays off exactly
// when concurrent jobs collide on leaf/spine links (§II-D), and that
// topology-aware placement (§III-B) decides how much collision there is to
// avoid. Their aggregate numbers feed the bench-regression guard.

// registerTenancy is invoked from the main registration init (register.go)
// so the tenancy family lists after the paper experiments and campaigns.
func registerTenancy() {
	reg := scenario.Register

	reg(scenario.Scenario{
		Name: "tenancy/collision-sweep", Group: "tenancy",
		Description: "concurrent 4-node jobs x steering arm on the shared 2:1 fabric",
		Paper:       "steering pays off when jobs share the fabric; ECMP collisions compound with job count",
		Params:      map[string]string{"jobs": "1,2,4", "spines": "4", "placement": "spread"},
		Run:         func(c *scenario.Ctx) scenario.Result { return tenancy.RunCollisionSweep(c) },
		Summarize: func(r scenario.Result) string {
			s := r.(*tenancy.CollisionSweepResult)
			last := len(s.JobCounts) - 1
			return fmt.Sprintf("C4P %+.1f%% over ECMP at %d jobs", s.Gain(last)*100, s.JobCounts[last])
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(*tenancy.CollisionSweepResult).Metrics()
		},
	})
	reg(scenario.Scenario{
		Name: "tenancy/churn", Group: "tenancy",
		Description: "Poisson job arrivals/departures with FIFO queueing on the 1:1 fabric",
		Paper:       "multi-tenant clusters run under constant churn; admission and departure must not corrupt survivors",
		Params:      map[string]string{"arrivals": "poisson", "placement": "packed", "arm": "c4p"},
		Run:         func(c *scenario.Ctx) scenario.Result { return tenancy.RunChurn(c) },
		Summarize: func(r scenario.Result) string {
			s := r.(*tenancy.ChurnResult)
			return fmt.Sprintf("%d admitted, %d departed, Jain %.3f", s.Admitted, s.Completed, s.Jain)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(*tenancy.ChurnResult).Metrics()
		},
	})
	reg(scenario.Scenario{
		Name: "tenancy/placement-compare", Group: "tenancy",
		Description: "packed vs spread vs random placement for 3 concurrent jobs, pinned ECMP, 2:1 fabric",
		Paper:       "topology-aware scheduling keeps ring traffic under the leaves (§III-B)",
		Params:      map[string]string{"jobs": "3", "spines": "4", "arm": "ecmp"},
		Run:         func(c *scenario.Ctx) scenario.Result { return tenancy.RunPlacementCompare(c) },
		Summarize: func(r scenario.Result) string {
			s := r.(*tenancy.PlacementCompareResult)
			return fmt.Sprintf("packed %.1f vs spread %.1f samples/s", s.Runs[0].AggGoodput, s.Runs[1].AggGoodput)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(*tenancy.PlacementCompareResult).Metrics()
		},
	})
}
