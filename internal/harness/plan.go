package harness

import (
	"fmt"
	"sort"
	"strings"

	"c4/internal/job"
	"c4/internal/metrics"
	"c4/internal/plan"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
	"c4/internal/workload"
)

// This file implements and registers the plan/* scenario family: the
// training-iteration compiler (internal/plan) swept over parallelization
// strategies on the simulated fabric. The sweeps probe the paper's Fig 14
// precondition from the traffic side — C4P's goodput gain over ECMP
// tracks the exposed-communication share the strategy leaves on the
// fabric — and the comm/compute-overlap machinery (gradient bucketing)
// that decides how much of the DP volume is exposed at all. Their
// aggregate numbers feed the bench-regression guard.

// PlanArm is one (strategy, provider) measurement: throughput plus the
// compiled schedule's iteration breakdown.
type PlanArm struct {
	SamplesPerSec float64
	AvgIter       sim.Time
	AvgCompute    sim.Time
	AvgBubble     sim.Time
	AvgExposed    sim.Time
	ExposedShare  float64
	Fired         uint64
}

// planSpec builds a sweep workload: the model at TP8 with the given
// pipeline/data split over the testbed, spread placement so ring and
// pipeline edges cross the spine layer.
func planSpec(m workload.Model, par workload.Parallelism, ga int, cpmb sim.Time) workload.JobSpec {
	par.TP, par.GA = 8, ga
	par = par.Normalize()
	return workload.JobSpec{
		Name:                 fmt.Sprintf("plan-%s", par),
		Model:                m,
		Par:                  par,
		Nodes:                InterleavedNodes(par.PP * par.DP),
		ComputePerMicroBatch: cpmb,
		ComputeJitter:        0.02,
		SamplesPerIter:       64,
	}
}

// runPlanJob executes one job under one provider and returns its arm.
func runPlanJob(kind ProviderKind, spec workload.JobSpec, opts plan.Options, seed int64, iters int) PlanArm {
	e := NewEnv(topo.MultiJobTestbed(8))
	j, err := job.New(job.Config{
		Engine: e.Eng, Net: e.Net,
		Provider: e.NewProvider(kind, seed),
		Rails:    []int{0},
		Spec:     spec,
		Plan:     opts,
		Rand:     sim.NewRand(seed),
		// Several QPs per port, as in Fig 14: hash collisions smooth out
		// and the ECMP baseline degrades realistically, not catastrophically.
		QPsPerConn: 8,
	})
	if err != nil {
		panic(fmt.Sprintf("plan scenario: %v", err))
	}
	var rep job.Report
	j.Run(iters, func(r job.Report) { rep = r })
	e.Eng.Run()
	return PlanArm{
		SamplesPerSec: rep.SamplesPerSec,
		AvgIter:       rep.AvgIter,
		AvgCompute:    rep.AvgCompute,
		AvgBubble:     rep.AvgBubble,
		AvgExposed:    rep.AvgExposed,
		ExposedShare:  rep.ExposedShare(),
		Fired:         e.Eng.Fired(),
	}
}

// ---------------------------------------------------------------------------
// plan/strategy-sweep

// PlanStrategySweep compares ECMP and C4P across DP×PP splits of a fixed
// 16-node world: PP1/DP16 leaves the largest gradient volume exposed,
// PP8/DP2 dilutes it behind 8 stages — the Fig 14 spectrum as one sweep.
type PlanStrategySweep struct {
	Strategies []workload.Parallelism
	ECMP       []PlanArm
	C4P        []PlanArm
}

// Fired implements scenario.EventCounter.
func (r *PlanStrategySweep) Fired() uint64 {
	var n uint64
	for i := range r.ECMP {
		n += r.ECMP[i].Fired + r.C4P[i].Fired
	}
	return n
}

// Delta is C4P's goodput gain over ECMP for strategy i.
func (r *PlanStrategySweep) Delta(i int) float64 {
	return metrics.Ratio(r.C4P[i].SamplesPerSec, r.ECMP[i].SamplesPerSec) - 1
}

// RunPlanStrategySweep executes the sweep (both arms per strategy).
func RunPlanStrategySweep(ctx *scenario.Ctx) *PlanStrategySweep {
	res := &PlanStrategySweep{}
	for _, pp := range []int{1, 2, 4, 8} {
		res.Strategies = append(res.Strategies, workload.Parallelism{TP: 8, PP: pp, DP: 16 / pp, GA: 8})
	}
	res.ECMP = make([]PlanArm, len(res.Strategies))
	res.C4P = make([]PlanArm, len(res.Strategies))
	type cell struct {
		kind ProviderKind
		out  *PlanArm
		spec workload.JobSpec
		seed int64
	}
	var cells []cell
	for i, par := range res.Strategies {
		// 70 ms micro-batches: one optimizer step's compute is Fig 14
		// Job1's 550 ms, but split over GA=8, so the pure-DP end of the
		// sweep leaves a Job1-like ≈30% of the iteration exposed while
		// the PP8 end dilutes it to a few percent.
		spec := planSpec(workload.GPT22B, par, par.GA, 70*sim.Millisecond)
		cells = append(cells,
			cell{Baseline, &res.ECMP[i], spec, ctx.Seed + int64(par.PP)*13},
			cell{C4PStatic, &res.C4P[i], spec, ctx.Seed + int64(par.PP)*13})
	}
	scenario.ForEach(len(cells), ctx.Workers, func(i int) {
		c := cells[i]
		*c.out = runPlanJob(c.kind, c.spec, plan.Options{}, c.seed, 5)
	})
	ctx.Track(res)
	return res
}

func (r *PlanStrategySweep) String() string {
	var sb strings.Builder
	sb.WriteString("plan/strategy-sweep — GPT-22B, 16 nodes, DP×PP split, GA8, overlap off\n")
	rows := make([][]string, len(r.Strategies))
	for i, par := range r.Strategies {
		rows[i] = []string{
			par.String(),
			fmt.Sprintf("%.1f", r.ECMP[i].SamplesPerSec),
			fmt.Sprintf("%.1f", r.C4P[i].SamplesPerSec),
			pct(r.Delta(i)),
			fmt.Sprintf("%.1f%%", r.ECMP[i].ExposedShare*100),
			fmt.Sprintf("%.2fs", r.C4P[i].AvgBubble.Seconds()),
		}
	}
	sb.WriteString(metrics.Table(
		[]string{"strategy", "ecmp", "c4p", "delta", "exposed(ecmp)", "bubble(c4p)"}, rows))
	return sb.String()
}

// CheckShape asserts the paper's precondition as measured by the
// compiler: the exposed-communication share shrinks as PP takes over,
// and C4P's goodput delta over ECMP grows with that share — traffic
// engineering pays exactly where communication is exposed.
func (r *PlanStrategySweep) CheckShape() error {
	n := len(r.Strategies)
	for i := range r.Strategies {
		for _, arm := range [2]PlanArm{r.ECMP[i], r.C4P[i]} {
			if arm.SamplesPerSec <= 0 {
				return fmt.Errorf("strategy-sweep: %v made no progress", r.Strategies[i])
			}
		}
	}
	// Share falls monotonically from the pure-DP end to the deep-PP end.
	for i := 1; i < n; i++ {
		if r.ECMP[i].ExposedShare >= r.ECMP[i-1].ExposedShare {
			return fmt.Errorf("strategy-sweep: exposed share %v (%.1f%%) not below %v (%.1f%%)",
				r.Strategies[i], r.ECMP[i].ExposedShare*100,
				r.Strategies[i-1], r.ECMP[i-1].ExposedShare*100)
		}
	}
	// The C4P-over-ECMP delta grows monotonically with exposed share
	// (tiny slack for collision luck at the near-zero-comm end).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return r.ECMP[idx[a]].ExposedShare < r.ECMP[idx[b]].ExposedShare
	})
	const slack = 0.02
	for k := 1; k < n; k++ {
		lo, hi := idx[k-1], idx[k]
		if r.Delta(hi) < r.Delta(lo)-slack {
			return fmt.Errorf("strategy-sweep: delta %s at share %.1f%% below delta %s at share %.1f%%",
				pct(r.Delta(hi)), r.ECMP[hi].ExposedShare*100,
				pct(r.Delta(lo)), r.ECMP[lo].ExposedShare*100)
		}
	}
	top, bottom := idx[n-1], idx[0]
	if r.Delta(top) < r.Delta(bottom)+0.05 {
		return fmt.Errorf("strategy-sweep: delta spans %s -> %s, want meaningful growth with share",
			pct(r.Delta(bottom)), pct(r.Delta(top)))
	}
	// Deeper pipelines must show a bigger bubble.
	if r.C4P[n-1].AvgBubble <= r.C4P[0].AvgBubble {
		return fmt.Errorf("strategy-sweep: bubble %v at PP8 not above %v at PP1",
			r.C4P[n-1].AvgBubble, r.C4P[0].AvgBubble)
	}
	return nil
}

// Metrics feeds the bench-regression guard.
func (r *PlanStrategySweep) Metrics() map[string]float64 {
	out := map[string]float64{}
	for i, par := range r.Strategies {
		key := fmt.Sprintf("pp%d", par.PP)
		out["ecmp_sps_"+key] = r.ECMP[i].SamplesPerSec
		out["c4p_sps_"+key] = r.C4P[i].SamplesPerSec
		out["share_"+key] = r.ECMP[i].ExposedShare
	}
	return out
}

// ---------------------------------------------------------------------------
// plan/bucket-sweep

// PlanBucketSweep measures the overlap benefit curve: the same strategy
// with the DP gradient cut into ever-smaller buckets, each launched as
// the final backward pass produces it.
type PlanBucketSweep struct {
	BucketsMiB []float64 // 0 = single bucket
	Arms       []PlanArm
}

// Fired implements scenario.EventCounter.
func (r *PlanBucketSweep) Fired() uint64 {
	var n uint64
	for _, a := range r.Arms {
		n += a.Fired
	}
	return n
}

// RunPlanBucketSweep executes the sweep on the C4P arm (planned paths,
// so the curve is the overlap mechanism alone, not collision luck).
func RunPlanBucketSweep(ctx *scenario.Ctx) *PlanBucketSweep {
	res := &PlanBucketSweep{BucketsMiB: []float64{0, 2048, 512, 128}}
	res.Arms = make([]PlanArm, len(res.BucketsMiB))
	// GPT-175B gradients against 550 ms micro-batches: the per-stage sync
	// takes roughly twice a backward slot, so only part of it can ever
	// hide — the bucket size decides how much, which is the curve.
	spec := planSpec(workload.GPT175B, workload.Parallelism{PP: 2, DP: 4}, 4, 550*sim.Millisecond)
	scenario.ForEach(len(res.BucketsMiB), ctx.Workers, func(i int) {
		res.Arms[i] = runPlanJob(C4PStatic, spec, plan.Options{
			Overlap:     true,
			BucketBytes: res.BucketsMiB[i] * (1 << 20),
		}, ctx.Seed, 5)
	})
	ctx.Track(res)
	return res
}

func (r *PlanBucketSweep) String() string {
	var sb strings.Builder
	sb.WriteString("plan/bucket-sweep — GPT-175B TP8/PP2/DP4/GA4, overlap on, C4P\n")
	rows := make([][]string, len(r.Arms))
	for i, a := range r.Arms {
		label := "whole gradient"
		if r.BucketsMiB[i] > 0 {
			label = fmt.Sprintf("%.0f MiB", r.BucketsMiB[i])
		}
		rows[i] = []string{
			label,
			fmt.Sprintf("%.2fs", a.AvgExposed.Seconds()),
			fmt.Sprintf("%.2fs", a.AvgIter.Seconds()),
			fmt.Sprintf("%.1f", a.SamplesPerSec),
		}
	}
	sb.WriteString(metrics.Table([]string{"bucket", "exposed", "iter", "samples/s"}, rows))
	return sb.String()
}

// CheckShape asserts the overlap benefit curve and its cost: smaller
// buckets can only start syncing earlier, so exposed communication must
// fall monotonically with a strict win at the small end — but the early
// sync traffic contends with the pipeline drain's gradient transfers, so
// throughput peaks at some bucketed arm rather than improving forever.
// The tuning lesson is that the curve has two regimes, not one.
func (r *PlanBucketSweep) CheckShape() error {
	for i, a := range r.Arms {
		if a.SamplesPerSec <= 0 {
			return fmt.Errorf("bucket-sweep: arm %d made no progress", i)
		}
		if i > 0 && a.AvgExposed > r.Arms[i-1].AvgExposed {
			return fmt.Errorf("bucket-sweep: exposed %v at %.0f MiB above %v at the coarser bucket",
				a.AvgExposed, r.BucketsMiB[i], r.Arms[i-1].AvgExposed)
		}
	}
	first, last := r.Arms[0], r.Arms[len(r.Arms)-1]
	if last.AvgExposed >= first.AvgExposed {
		return fmt.Errorf("bucket-sweep: smallest bucket exposed %v, want strictly below single-bucket %v",
			last.AvgExposed, first.AvgExposed)
	}
	best := 0
	for i, a := range r.Arms {
		if a.SamplesPerSec > r.Arms[best].SamplesPerSec {
			best = i
		}
	}
	if best == 0 {
		return fmt.Errorf("bucket-sweep: no bucketed arm beats the whole-gradient %.1f samples/s",
			first.SamplesPerSec)
	}
	return nil
}

// Metrics feeds the bench-regression guard.
func (r *PlanBucketSweep) Metrics() map[string]float64 {
	out := map[string]float64{}
	for i, mib := range r.BucketsMiB {
		key := "whole"
		if mib > 0 {
			key = fmt.Sprintf("%.0fmib", mib)
		}
		out["exposed_s_"+key] = r.Arms[i].AvgExposed.Seconds()
		out["sps_"+key] = r.Arms[i].SamplesPerSec
	}
	return out
}

// ---------------------------------------------------------------------------
// plan/overlap-ablation

// PlanOverlapAblation is the on/off comparison at a fixed strategy and
// bucket size: what DDP-style comm/compute overlap is worth.
type PlanOverlapAblation struct {
	On, Off PlanArm
}

// Fired implements scenario.EventCounter.
func (r *PlanOverlapAblation) Fired() uint64 { return r.On.Fired + r.Off.Fired }

// HiddenFrac is the share of formerly exposed communication that overlap
// hides.
func (r *PlanOverlapAblation) HiddenFrac() float64 {
	if r.Off.AvgExposed <= 0 {
		return 0
	}
	return 1 - float64(r.On.AvgExposed)/float64(r.Off.AvgExposed)
}

// RunPlanOverlapAblation executes both arms.
func RunPlanOverlapAblation(ctx *scenario.Ctx) *PlanOverlapAblation {
	res := &PlanOverlapAblation{}
	spec := planSpec(workload.GPT175B, workload.Parallelism{PP: 2, DP: 4}, 4, 550*sim.Millisecond)
	arms := []*PlanArm{&res.Off, &res.On}
	scenario.ForEach(len(arms), ctx.Workers, func(i int) {
		*arms[i] = runPlanJob(C4PStatic, spec, plan.Options{
			Overlap:     i == 1,
			BucketBytes: 256 << 20,
		}, ctx.Seed, 5)
	})
	ctx.Track(res)
	return res
}

func (r *PlanOverlapAblation) String() string {
	var sb strings.Builder
	sb.WriteString("plan/overlap-ablation — GPT-175B TP8/PP2/DP4/GA4, 256 MiB buckets, C4P\n")
	rows := [][]string{
		{"off", fmt.Sprintf("%.2fs", r.Off.AvgExposed.Seconds()),
			fmt.Sprintf("%.2fs", r.Off.AvgIter.Seconds()), fmt.Sprintf("%.1f", r.Off.SamplesPerSec)},
		{"on", fmt.Sprintf("%.2fs", r.On.AvgExposed.Seconds()),
			fmt.Sprintf("%.2fs", r.On.AvgIter.Seconds()), fmt.Sprintf("%.1f", r.On.SamplesPerSec)},
	}
	sb.WriteString(metrics.Table([]string{"overlap", "exposed", "iter", "samples/s"}, rows))
	fmt.Fprintf(&sb, "overlap hides %.0f%% of exposed communication\n", r.HiddenFrac()*100)
	return sb.String()
}

// CheckShape asserts overlap's whole point: launching buckets inside the
// backward pass strictly reduces exposed communication and iteration
// time.
func (r *PlanOverlapAblation) CheckShape() error {
	if r.On.SamplesPerSec <= 0 || r.Off.SamplesPerSec <= 0 {
		return fmt.Errorf("overlap-ablation: an arm made no progress")
	}
	if r.On.AvgExposed >= r.Off.AvgExposed {
		return fmt.Errorf("overlap-ablation: exposed %v with overlap, want strictly below %v without",
			r.On.AvgExposed, r.Off.AvgExposed)
	}
	if r.On.SamplesPerSec <= r.Off.SamplesPerSec {
		return fmt.Errorf("overlap-ablation: %.1f samples/s with overlap, want above %.1f without",
			r.On.SamplesPerSec, r.Off.SamplesPerSec)
	}
	return nil
}

// Metrics feeds the bench-regression guard.
func (r *PlanOverlapAblation) Metrics() map[string]float64 {
	return map[string]float64{
		"exposed_on_s":  r.On.AvgExposed.Seconds(),
		"exposed_off_s": r.Off.AvgExposed.Seconds(),
		"sps_on":        r.On.SamplesPerSec,
		"sps_off":       r.Off.SamplesPerSec,
		"hidden_frac":   r.HiddenFrac(),
	}
}

// registerPlan is invoked from the main registration init (register.go)
// so the plan family lists after the online family.
func registerPlan() {
	reg := scenario.Register

	reg(scenario.Scenario{
		Name: "plan/strategy-sweep", Group: "plan", Slow: true,
		Description: "DP×PP split sweep at 16 nodes: ECMP vs C4P, exposed-comm share vs goodput delta",
		Paper:       "C4's gains track the communication:compute ratio; GA/PP dilution removes them (Fig 14)",
		Params:      map[string]string{"world": "16 nodes", "strategies": "pp1,pp2,pp4,pp8", "ga": "8"},
		Run:         func(c *scenario.Ctx) scenario.Result { return RunPlanStrategySweep(c) },
		Summarize: func(r scenario.Result) string {
			s := r.(*PlanStrategySweep)
			n := len(s.Strategies) - 1
			return fmt.Sprintf("delta %s at %.0f%% share -> %s at %.0f%% share",
				pct(s.Delta(0)), s.ECMP[0].ExposedShare*100,
				pct(s.Delta(n)), s.ECMP[n].ExposedShare*100)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(*PlanStrategySweep).Metrics()
		},
	})
	reg(scenario.Scenario{
		Name: "plan/bucket-sweep", Group: "plan",
		Description: "gradient bucket-size sweep with overlap on: exposed comm falls, throughput peaks interior",
		Paper:       "bucketed sync launched inside backward hides DP volume behind compute — until it contends with the pipeline drain",
		Params:      map[string]string{"strategy": "gpt175b tp8/pp2/dp4/ga4", "buckets": "whole,2048,512,128 MiB"},
		Run:         func(c *scenario.Ctx) scenario.Result { return RunPlanBucketSweep(c) },
		Summarize: func(r scenario.Result) string {
			s := r.(*PlanBucketSweep)
			last := len(s.Arms) - 1
			return fmt.Sprintf("exposed %.2fs whole -> %.2fs at %.0f MiB",
				s.Arms[0].AvgExposed.Seconds(), s.Arms[last].AvgExposed.Seconds(), s.BucketsMiB[last])
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(*PlanBucketSweep).Metrics()
		},
	})
	reg(scenario.Scenario{
		Name: "plan/overlap-ablation", Group: "plan",
		Description: "comm/compute overlap on vs off at fixed strategy and bucket size",
		Paper:       "overlap strictly reduces exposed communication and iteration time",
		Params:      map[string]string{"strategy": "gpt175b tp8/pp2/dp4/ga4", "bucket": "256 MiB"},
		Run:         func(c *scenario.Ctx) scenario.Result { return RunPlanOverlapAblation(c) },
		Summarize: func(r scenario.Result) string {
			s := r.(*PlanOverlapAblation)
			return fmt.Sprintf("exposed %.2fs -> %.2fs (%.0f%% hidden)",
				s.Off.AvgExposed.Seconds(), s.On.AvgExposed.Seconds(), s.HiddenFrac()*100)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(*PlanOverlapAblation).Metrics()
		},
	})
}
