package harness

import (
	"fmt"
	"strings"

	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/topo"
)

// Fig9Result reproduces Fig 9: single-job allreduce bus bandwidth with and
// without C4P's dual-port balance, swept over 16–128 GPUs. Without C4P the
// fabric may deliver both of a bond's flows to the same receive port,
// halving the effective bandwidth; C4P's same-plane rule prevents it.
type Fig9Result struct {
	GPUs     []int
	Baseline []float64 // mean busbw, Gbps
	C4P      []float64
}

// RunFig9 executes the sweep. Each point is a fresh fabric so runs are
// independent; the baseline is averaged over several ECMP seeds because a
// single job either collides or not for its whole lifetime.
func RunFig9(seed int64) Fig9Result { return runFig9(scenario.NewCtx(seed)) }

func runFig9(ctx *scenario.Ctx) Fig9Result {
	seed := ctx.Seed
	res := Fig9Result{}
	const bytes = 512 << 20
	for _, m := range []int{2, 4, 8, 16} {
		res.GPUs = append(res.GPUs, m*8)

		// Baseline: average over ECMP hash draws.
		var base float64
		const draws = 5
		for d := int64(0); d < draws; d++ {
			e := newEnv(ctx, topo.MultiJobTestbed(8))
			b, err := StartBench(e, BenchConfig{
				Nodes: InterleavedNodes(m), Bytes: bytes, Iters: 4,
				Provider: e.NewProvider(Baseline, seed+100*d), QPsPerConn: 2, Seed: seed + d,
			})
			if err != nil {
				panic(err)
			}
			e.Eng.Run()
			base += b.MeanBusGbps()
		}
		res.Baseline = append(res.Baseline, base/draws)

		e := newEnv(ctx, topo.MultiJobTestbed(8))
		b, err := StartBench(e, BenchConfig{
			Nodes: InterleavedNodes(m), Bytes: bytes, Iters: 4,
			Provider: e.NewProvider(C4PStatic, seed), QPsPerConn: 2, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		e.Eng.Run()
		res.C4P = append(res.C4P, b.MeanBusGbps())
	}
	return res
}

// String renders the figure as a table plus bars.
func (r Fig9Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 9 — allreduce busbw (Gbps), dual-port balance\n")
	rows := make([][]string, len(r.GPUs))
	for i := range r.GPUs {
		rows[i] = []string{
			fmt.Sprintf("GPU=%d", r.GPUs[i]),
			fmt.Sprintf("%.1f", r.Baseline[i]),
			fmt.Sprintf("%.1f", r.C4P[i]),
			pct(r.C4P[i]/r.Baseline[i] - 1),
		}
	}
	sb.WriteString(metrics.Table([]string{"scale", "baseline", "C4P", "gain"}, rows))
	return sb.String()
}

// CheckShape validates the paper's qualitative claims: baseline stuck well
// below line rate (<240 Gbps beyond trivial scale), C4P close to the
// ~360 Gbps NVLink-bounded peak, ≈50% gain.
func (r Fig9Result) CheckShape() error {
	for i, g := range r.GPUs {
		if r.C4P[i] < 330 || r.C4P[i] > 370 {
			return fmt.Errorf("fig9: C4P busbw at %d GPUs = %.1f, want ≈360", g, r.C4P[i])
		}
		if g >= 32 {
			if r.Baseline[i] > 300 {
				return fmt.Errorf("fig9: baseline busbw at %d GPUs = %.1f, want <300 (rx imbalance)", g, r.Baseline[i])
			}
			if gain := r.C4P[i]/r.Baseline[i] - 1; gain < 0.25 {
				return fmt.Errorf("fig9: gain at %d GPUs = %.2f, want ≳0.5", g, gain)
			}
		}
	}
	return nil
}
