package harness

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"c4/internal/scenario"
	"c4/internal/telemetry"
	"c4/internal/topo"
)

// testScenarios returns the registered set under test, honoring -short by
// dropping the slow sweeps (scale/time-horizon scenarios) consistently.
func testScenarios(t *testing.T) []scenario.Scenario {
	t.Helper()
	var out []scenario.Scenario
	for _, s := range scenario.All() {
		if testing.Short() && s.Slow {
			continue
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		t.Fatal("no scenarios registered")
	}
	return out
}

// TestScenarios is the harness's main test: every registered experiment
// must satisfy its own shape check — the paper's qualitative claims — and
// the parallel runner must reproduce a serial execution bit for bit.
//
// Both arms run concurrently: the worker-pool runner executes the whole
// set while each subtest independently re-runs its scenario serially with
// the same seed, then the renderings are compared byte for byte. The
// engine's seq-ordered event queue promises this equality; this test
// proves it (run with -race to also prove the runner shares no state).
func TestScenarios(t *testing.T) {
	const seed = 1
	scns := testScenarios(t)

	var reports []scenario.Report
	parallelDone := make(chan struct{})
	go func() {
		defer close(parallelDone)
		r := &scenario.Runner{Workers: runtime.GOMAXPROCS(0)}
		reports = r.Run(context.Background(), seed, scns)
	}()

	serial := make([]string, len(scns))
	t.Run("serial", func(t *testing.T) {
		for i, s := range scns {
			i, s := i, s
			t.Run(s.Name, func(t *testing.T) {
				t.Parallel()
				res := s.Run(scenario.NewCtx(seed))
				if err := res.CheckShape(); err != nil {
					t.Fatalf("shape check: %v\n%s", err, res)
				}
				if check := extraChecks[s.Name]; check != nil {
					check(t, res)
				}
				serial[i] = res.String()
			})
		}
	})

	<-parallelDone
	for i, rep := range reports {
		if rep.Err != nil {
			t.Errorf("parallel runner: %v", rep.Err)
			continue
		}
		if rep.ShapeErr != nil {
			t.Errorf("parallel runner: %s shape check: %v", rep.Name, rep.ShapeErr)
		}
		if got := rep.Result.String(); got != serial[i] {
			t.Errorf("scenario %s: parallel run diverged from serial run\nparallel:\n%s\nserial:\n%s",
				rep.Name, got, serial[i])
		}
		if serial[i] == "" {
			t.Errorf("scenario %s: empty rendering", rep.Name)
		}
	}
}

// extraChecks holds per-experiment assertions stricter than the shape
// checks: rendering content the CLIs rely on, sampling density, and
// magnitude bounds the paper claims but CheckShape only loosely enforces.
var extraChecks = map[string]func(*testing.T, scenario.Result){
	"tableI": func(t *testing.T, r scenario.Result) {
		if !strings.Contains(r.String(), "NCCL Error") {
			t.Fatal("rendering missing user-view column")
		}
	},
	"tableIII": func(t *testing.T, r scenario.Result) {
		out := r.String()
		for _, want := range []string{"Post-Checkpoint", "Diagnosis", "reduction"} {
			if !strings.Contains(out, want) {
				t.Fatalf("rendering missing %q", want)
			}
		}
	},
	"fig11": func(t *testing.T, r scenario.Result) {
		f := r.(Fig11Result)
		if len(f.Ports) != 16 {
			t.Fatalf("ports = %d, want 16", len(f.Ports))
		}
		for _, s := range f.Ports {
			if s.Len() < 40 {
				t.Fatalf("series %s too short: %d samples", s.Name, s.Len())
			}
		}
	},
	"fig12": func(t *testing.T, r scenario.Result) {
		f := r.(Fig12Result)
		// Static must be clearly hurt relative to dynamic (paper: 62.3%).
		if f.Dynamic.PostFailAvg/f.Static.PostFailAvg < 1.2 {
			t.Fatalf("dynamic/static post-failure ratio too small:\n%s", f)
		}
	},
	// The tentpole claim of the streaming subsystem, asserted beyond the
	// shape check: every fault kind must be detected online strictly
	// before the batch master, by a real margin on the slow syndromes.
	"online/detection-latency": func(t *testing.T, r scenario.Result) {
		res := r.(*telemetry.DetectionLatencyResult)
		if len(res.Trials) != 3 {
			t.Fatalf("trials = %d, want 3", len(res.Trials))
		}
		for _, tr := range res.Trials {
			if s := tr.Speedup(); s <= 1 {
				t.Fatalf("%s: online speedup %.2fx, want > 1x", tr.Kind, s)
			}
			if tr.Kind != "spine-outage" && tr.Speedup() < 2 {
				t.Fatalf("%s: sub-tick detection should beat the 5s window handily, got %.2fx",
					tr.Kind, tr.Speedup())
			}
			if tr.OnlineFalseAlarms != 0 {
				t.Fatalf("%s: %d online false alarms", tr.Kind, tr.OnlineFalseAlarms)
			}
		}
	},
}

// TestRunnerStats checks the runner's per-scenario accounting on a real
// event-driven scenario: wall time is measured and every engine the run
// builds feeds the event counter.
func TestRunnerStats(t *testing.T) {
	s, ok := scenario.Get("fig9")
	if !ok {
		t.Fatal("fig9 not registered")
	}
	rep := scenario.RunOne(context.Background(), s, 1)
	if rep.Err != nil || rep.ShapeErr != nil {
		t.Fatalf("fig9: err=%v shape=%v", rep.Err, rep.ShapeErr)
	}
	if rep.Events == 0 {
		t.Fatal("fig9 fired no counted events")
	}
	if rep.Wall <= 0 {
		t.Fatal("wall time not measured")
	}
}

// TestRegistryCoversHarness pins the registry contents: every paper
// experiment must be runnable by name.
func TestRegistryCoversHarness(t *testing.T) {
	for _, name := range []string{
		"tableI", "tableIII", "fig3", "fig9", "fig10a", "fig10b", "fig11",
		"fig12", "fig13", "fig14", "pipeline", "nccltest", "analyzer-demo",
		"ablation-plane", "ablation-algo", "ablation-ckpt", "ablation-kappa",
		"ablation-qp", "campaign/flap-sweep", "campaign/degrade-sweep",
		"campaign/outage-sweep", "campaign/straggler-sweep", "campaign/mixed",
		"online/detection-latency", "online/cadence-sweep", "online/scale-sweep",
		"netsim/scale-aggregate", "netsim/scale-parallel", "netsim/scale-sweep",
	} {
		if _, ok := scenario.Get(name); !ok {
			t.Errorf("scenario %q not registered", name)
		}
	}
	for _, s := range scenario.All() {
		if s.Group == "" || s.Description == "" || s.Paper == "" {
			t.Errorf("scenario %q missing metadata", s.Name)
		}
		if s.Summarize == nil {
			t.Errorf("scenario %q has no summarizer", s.Name)
		}
	}
}

// TestSummarizersMatchResults runs one cheap scenario end to end and
// checks its one-line headline renders from the typed result.
func TestSummarizersMatchResults(t *testing.T) {
	s, _ := scenario.Get("tableI")
	rep := scenario.RunOne(context.Background(), s, 1)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if line := s.Summarize(rep.Result); !strings.Contains(line, "local") {
		t.Fatalf("tableI headline = %q", line)
	}
}

// TestMetricsExtractors runs two cheap tracked scenarios end to end and
// checks their bench-guard metrics render from the typed results.
func TestMetricsExtractors(t *testing.T) {
	for _, name := range []string{"tableI", "nccltest"} {
		s, ok := scenario.Get(name)
		if !ok || s.Metrics == nil {
			t.Fatalf("scenario %q missing or untracked", name)
		}
		rep := scenario.RunOne(context.Background(), s, 1)
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		m := s.Metrics(rep.Result)
		if len(m) == 0 {
			t.Fatalf("scenario %q produced no metrics", name)
		}
		for k, v := range m {
			if v != v { // NaN
				t.Fatalf("scenario %q metric %q is NaN", name, k)
			}
		}
	}
}

func TestSeedsAreDeterministic(t *testing.T) {
	a, b := RunFig9(7), RunFig9(7)
	for i := range a.GPUs {
		if a.Baseline[i] != b.Baseline[i] || a.C4P[i] != b.C4P[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestDifferentSeedsVaryBaseline(t *testing.T) {
	// Two ECMP draws on the collision-prone interleaved placement: with
	// different seeds the hash outcomes (and hence busbw) must differ.
	run := func(seed int64) float64 {
		e := NewEnv(topo.MultiJobTestbed(8))
		b, err := StartBench(e, BenchConfig{
			Nodes: InterleavedNodes(8), Bytes: 64 << 20, Iters: 2,
			Provider: e.NewProvider(Baseline, seed), QPsPerConn: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Eng.Run()
		return b.MeanBusGbps()
	}
	a, b, c := run(3), run(4), run(5)
	if a == b && b == c {
		t.Fatalf("three seeds produced identical ECMP baselines (%.1f)", a)
	}
}

func TestInterleavedNodes(t *testing.T) {
	got := InterleavedNodes(4)
	want := []int{0, 8, 1, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InterleavedNodes(4) = %v", got)
		}
	}
	spec := topo.MultiJobTestbed(8)
	tp := topo.MustNew(spec)
	nodes := InterleavedNodes(16)
	for i := 0; i+1 < len(nodes); i++ {
		if tp.Group(nodes[i]) == tp.Group(nodes[i+1]) {
			t.Fatalf("adjacent ring nodes %d,%d share a group", nodes[i], nodes[i+1])
		}
	}
}

func TestProviderKinds(t *testing.T) {
	e := NewEnv(topo.MultiJobTestbed(8))
	for _, k := range []ProviderKind{Baseline, C4PStatic, C4PDynamic} {
		if e.NewProvider(k, 1) == nil {
			t.Fatalf("provider %v is nil", k)
		}
		if k.String() == "unknown" {
			t.Fatalf("provider %v has no label", k)
		}
	}
}
