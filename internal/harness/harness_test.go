package harness

import (
	"strings"
	"testing"

	"c4/internal/topo"
)

// Every experiment must pass its own shape check: these are the paper's
// qualitative claims (who wins, by roughly what factor, where crossovers
// fall) asserted against the simulated reproduction.

func TestTableIShape(t *testing.T) {
	r := RunTableI(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
	if !strings.Contains(r.String(), "NCCL Error") {
		t.Fatal("rendering missing user-view column")
	}
}

func TestTableIIIShape(t *testing.T) {
	r := RunTableIII(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
	out := r.String()
	for _, want := range []string{"Post-Checkpoint", "Diagnosis", "reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q", want)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep is slow")
	}
	r := RunFig3(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}

func TestFig9Shape(t *testing.T) {
	r := RunFig9(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}

func TestFig10Shapes(t *testing.T) {
	for _, spines := range []int{8, 4} {
		r := RunFig10(1, spines)
		if err := r.CheckShape(); err != nil {
			t.Fatalf("spines=%d: %v\n%s", spines, err, r)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r := RunFig11(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
	if len(r.Ports) != 16 {
		t.Fatalf("ports = %d, want 16", len(r.Ports))
	}
	for _, s := range r.Ports {
		if s.Len() < 40 {
			t.Fatalf("series %s too short: %d samples", s.Name, s.Len())
		}
	}
}

func TestFig12Shape(t *testing.T) {
	r := RunFig12(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
	// Static must be clearly hurt relative to dynamic (the paper's 62.3%).
	if r.Dynamic.PostFailAvg/r.Static.PostFailAvg < 1.2 {
		t.Fatalf("dynamic/static post-failure ratio too small:\n%s", r)
	}
}

func TestFig13Shape(t *testing.T) {
	r := RunFig13(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("job sweep is slow")
	}
	r := RunFig14(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}

func TestPipelineShape(t *testing.T) {
	r := RunPipeline(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}

func TestSeedsAreDeterministic(t *testing.T) {
	a, b := RunFig9(7), RunFig9(7)
	for i := range a.GPUs {
		if a.Baseline[i] != b.Baseline[i] || a.C4P[i] != b.C4P[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestDifferentSeedsVaryBaseline(t *testing.T) {
	a, b := RunFig10(3, 8), RunFig10(4, 8)
	same := true
	for i := range a.Baseline {
		if a.Baseline[i] != b.Baseline[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical ECMP baselines")
	}
}

func TestInterleavedNodes(t *testing.T) {
	got := interleavedNodes(4)
	want := []int{0, 8, 1, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleavedNodes(4) = %v", got)
		}
	}
	spec := topo.MultiJobTestbed(8)
	tp := topo.MustNew(spec)
	nodes := interleavedNodes(16)
	for i := 0; i+1 < len(nodes); i++ {
		if tp.Group(nodes[i]) == tp.Group(nodes[i+1]) {
			t.Fatalf("adjacent ring nodes %d,%d share a group", nodes[i], nodes[i+1])
		}
	}
}

func TestProviderKinds(t *testing.T) {
	e := NewEnv(topo.MultiJobTestbed(8))
	for _, k := range []ProviderKind{Baseline, C4PStatic, C4PDynamic} {
		if e.NewProvider(k, 1) == nil {
			t.Fatalf("provider %v is nil", k)
		}
		if k.String() == "unknown" {
			t.Fatalf("provider %v has no label", k)
		}
	}
}

func TestPlaneRuleAblationShape(t *testing.T) {
	r := RunPlaneRuleAblation(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}

func TestAlgoCrossoverShape(t *testing.T) {
	r := RunAlgoCrossover(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}

func TestCkptSweepShape(t *testing.T) {
	r := RunCkptSweep(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}

func TestKappaSweepShape(t *testing.T) {
	r := RunKappaSweep(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}

func TestQPSweepShape(t *testing.T) {
	r := RunQPSweep(1)
	if err := r.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
}
