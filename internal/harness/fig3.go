package harness

import (
	"fmt"
	"strings"

	"c4/internal/job"
	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
	"c4/internal/workload"
)

// Fig3Result reproduces Fig 3 (§II-D): actual vs ideal throughput of a
// GPT-22B training job as the system scales from 16 to 512 GPUs on the
// baseline (ECMP) fabric. "Ideal" is linear scaling from the smallest
// configuration, the paper's definition; the widening gap is caused by
// ECMP traffic collisions, whose worst edge governs the whole ring.
type Fig3Result struct {
	GPUs   []int
	Actual []float64 // samples/sec
	Ideal  []float64
}

// fig3Spec is a 64-node (512-GPU) pod with the standard 8-node leaf
// groups and 1:1 oversubscription.
func fig3Spec() topo.Spec {
	s := topo.MultiJobTestbed(8)
	s.Nodes = 64
	return s
}

// fig3Job builds the GPT-22B TP8×DP(m) job used for the sweep. Compute is
// calibrated so communication is ≈30% of an ideal iteration, the regime
// the paper identifies for its jobs.
func fig3Job(nodes []int) workload.JobSpec {
	return workload.JobSpec{
		Name:                 "GPT-22B-scale",
		Model:                workload.GPT22B,
		Par:                  workload.Parallelism{TP: 8, DP: len(nodes), GA: 1},
		Nodes:                nodes,
		ComputePerMicroBatch: 600 * sim.Millisecond,
		ComputeJitter:        0.01,
		SamplesPerIter:       8 * float64(len(nodes)), // weak scaling
	}
}

// RunFig3 sweeps 2..64 nodes, averaging the baseline over ECMP hash draws
// (a job's QP placement is fixed for its lifetime, so single runs are
// bimodal at small scale).
func RunFig3(seed int64) Fig3Result { return runFig3(scenario.NewCtx(seed)) }

func runFig3(ctx *scenario.Ctx) Fig3Result {
	seed := ctx.Seed
	res := Fig3Result{}
	scales := []int{2, 4, 8, 16, 32, 64}
	var basePerGPU float64
	for _, m := range scales {
		res.GPUs = append(res.GPUs, m*8)
		const draws = 3
		var sps float64
		for d := int64(0); d < draws; d++ {
			e := newEnv(ctx, fig3Spec())
			nodes := make([]int, m)
			for i := range nodes {
				nodes[i] = i
			}
			j, err := job.New(job.Config{
				Engine: e.Eng, Net: e.Net,
				Provider: e.NewProvider(Baseline, seed+31*d),
				Rails:    []int{0},
				Spec:     fig3Job(nodes),
				Rand:     sim.NewRand(seed + d),
			})
			if err != nil {
				panic(err)
			}
			var rep job.Report
			j.Run(5, func(r job.Report) { rep = r })
			e.Eng.Run()
			sps += rep.SamplesPerSec
		}
		sps /= draws
		res.Actual = append(res.Actual, sps)
		if basePerGPU == 0 {
			basePerGPU = sps / float64(m*8)
		}
		res.Ideal = append(res.Ideal, basePerGPU*float64(m*8))
	}
	return res
}

// String renders the sweep.
func (r Fig3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 3 — GPT-22B throughput vs scale (samples/sec), ECMP baseline\n")
	rows := make([][]string, len(r.GPUs))
	for i := range r.GPUs {
		loss := 1 - r.Actual[i]/r.Ideal[i]
		rows[i] = []string{
			fmt.Sprintf("GPU=%d", r.GPUs[i]),
			fmt.Sprintf("%.1f", r.Actual[i]),
			fmt.Sprintf("%.1f", r.Ideal[i]),
			fmt.Sprintf("%.0f%%", loss*100),
		}
	}
	sb.WriteString(metrics.Table([]string{"scale", "actual", "ideal", "loss"}, rows))
	return sb.String()
}

// CheckShape validates the paper's claim: the loss versus linear scaling
// grows with system size and reaches roughly 30% at 512 GPUs.
func (r Fig3Result) CheckShape() error {
	n := len(r.GPUs)
	lossAt := func(i int) float64 { return 1 - r.Actual[i]/r.Ideal[i] }
	finalLoss := lossAt(n - 1)
	if finalLoss < 0.15 || finalLoss > 0.5 {
		return fmt.Errorf("fig3: loss at 512 GPUs = %.0f%%, want ≈30%%", finalLoss*100)
	}
	if lossAt(n-1) <= lossAt(1) {
		return fmt.Errorf("fig3: loss should grow with scale (%.2f at %d GPUs vs %.2f at %d)",
			lossAt(1), r.GPUs[1], lossAt(n-1), r.GPUs[n-1])
	}
	for i := range r.GPUs {
		if r.Actual[i] > r.Ideal[i]*1.02 {
			return fmt.Errorf("fig3: actual exceeds ideal at %d GPUs", r.GPUs[i])
		}
	}
	return nil
}
