package harness

import (
	"fmt"
	"strings"

	"c4/internal/metrics"
	"c4/internal/netsim"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
)

// This file registers the netsim/scale-* family: the flow-class kernel
// rebuild measured at datacenter scale. Each scenario drives the same
// gang-partitioned world — groups of 8 nodes running ring traffic, the
// communication shape of pure-DP training with gang scheduling — through
// two or more kernel configurations and holds them to the rebuild's oath:
// the aggregated and parallel kernels must reproduce the per-flow
// reference bit for bit while doing an order of magnitude less work.
// Work is scored in KernelStats link visits, a deterministic step count
// safe for the bench-regression baseline.

// scaleSpec is the gang-partitioned datacenter slice the family runs on:
// groups of 8 nodes on a 2-rail, 4-spine fabric.
func scaleSpec(nodes int) topo.Spec {
	return topo.Spec{
		Nodes:         nodes,
		GPUsPerNode:   8,
		Rails:         2,
		NodesPerGroup: 8,
		Spines:        4,
		PortGbps:      200,
		NVLinkGbps:    362,
	}
}

// scaleFlowsPerPair models one ring edge's transfer as 2 QPs with 16
// chunks in flight each: 32 equal-path flows that collapse into a single
// flow class.
const scaleFlowsPerPair = 32

// scaleComponents is how many independent link components the gang world
// decomposes into: ring edge i of each gang runs on (plane i%2, spine
// i%4), so edges sharing both coordinates chain through the same leaf-up
// link — lcm(planes, spines) = 4 components per gang.
func scaleComponents(nodes int) int { return scaleSpec(nodes).Groups() * 4 }

// ScaleArm is one kernel configuration's complete run of the gang world:
// the observables that must match across kernels (makespan, probe bytes,
// event count) plus the work counters that must not.
type ScaleArm struct {
	Kernel     string
	Flows      int
	Completed  int
	Makespan   sim.Time
	Probe0     float64 // carried bits on node 0's rail-0/plane-0 uplink
	Probe1     float64 // carried bits on node 1's rail-0/plane-1 uplink
	Events     uint64
	Recomputes uint64
	LinkVisits uint64
	Classes    int // live flow classes mid-run (0 under per-flow)
	Components int // link components mid-run (0 under per-flow)
}

// runScaleArm builds a fresh engine, fabric and network under cfg, starts
// flowsPerPair flows on every ring edge of every gang, and runs to
// completion. Sizes vary per edge and member — not per group — so
// completions arrive in many deterministic waves, each one a recompute,
// and matching flows of different gangs finish at the same instant.
func runScaleArm(ctx *scenario.Ctx, nodes, flowsPerPair int, cfg netsim.Config, kernel string) ScaleArm {
	eng := sim.NewEngine()
	tp := topo.MustNew(scaleSpec(nodes))
	n := netsim.New(eng, tp, cfg)
	ctx.Track(eng)

	arm := ScaleArm{Kernel: kernel}
	finish := func(f *netsim.Flow) {
		arm.Completed++
		arm.Makespan = eng.Now()
	}
	spec := tp.Spec
	for g := 0; g < spec.Groups(); g++ {
		for i := 0; i < spec.NodesPerGroup; i++ {
			src := g*spec.NodesPerGroup + i
			dst := g*spec.NodesPerGroup + (i+1)%spec.NodesPerGroup
			plane := i % topo.Planes
			p, err := tp.PathFor(src, dst, 0, plane, i%spec.Spines, plane)
			if err != nil {
				panic(err)
			}
			for k := 0; k < flowsPerPair; k++ {
				size := 20e9 * (1 + 0.11*float64(k) + 0.013*float64(i))
				n.StartFlow(p, size, fmt.Sprintf("g%d-e%d-m%d", g, i, k), finish)
				arm.Flows++
			}
		}
	}
	// Sample the class/component census mid-run, after every flow has been
	// admitted and long before the first completion.
	eng.Schedule(sim.Second, func() {
		arm.Classes = n.ClassCount()
		arm.Components = n.ComponentCount()
	})
	eng.Run()

	st := n.Stats()
	arm.Recomputes = st.Recomputes
	arm.LinkVisits = st.LinkVisits
	arm.Probe0 = n.CarriedBits(tp.PortAt(0, 0, 0).Up)
	arm.Probe1 = n.CarriedBits(tp.PortAt(1, 0, 1).Up)
	arm.Events = eng.Fired()
	return arm
}

// armDiverged compares the observables of two arms; any difference is a
// kernel-equivalence bug, not tolerance-worthy noise.
func armDiverged(ref, a ScaleArm) error {
	if a.Makespan != ref.Makespan {
		return fmt.Errorf("%s makespan %v != %s %v", a.Kernel, a.Makespan, ref.Kernel, ref.Makespan)
	}
	if a.Probe0 != ref.Probe0 || a.Probe1 != ref.Probe1 {
		return fmt.Errorf("%s probe bits (%g, %g) != %s (%g, %g)",
			a.Kernel, a.Probe0, a.Probe1, ref.Kernel, ref.Probe0, ref.Probe1)
	}
	if a.Events != ref.Events {
		return fmt.Errorf("%s fired %d events != %s %d", a.Kernel, a.Events, ref.Kernel, ref.Events)
	}
	return nil
}

// ScaleKernelResult compares kernel arms on one world: every arm after the
// first must match the first bit for bit, and optionally the last arm must
// beat the first by WantRatio in link visits or decompose the fabric into
// WantComponents independent filling problems.
type ScaleKernelResult struct {
	Nodes          int
	Arms           []ScaleArm
	WantRatio      float64
	WantComponents int
}

// WorkRatio is reference work over rebuilt-kernel work in link visits.
func (r ScaleKernelResult) WorkRatio() float64 {
	last := r.Arms[len(r.Arms)-1]
	if last.LinkVisits == 0 {
		return 0
	}
	return float64(r.Arms[0].LinkVisits) / float64(last.LinkVisits)
}

// String renders the per-kernel table.
func (r ScaleKernelResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "netsim kernels on the %d-node gang world (%d flows)\n", r.Nodes, r.Arms[0].Flows)
	rows := make([][]string, len(r.Arms))
	for i, a := range r.Arms {
		rows[i] = []string{
			a.Kernel,
			fmt.Sprintf("%.3f s", a.Makespan.Seconds()),
			fmt.Sprintf("%d", a.Recomputes),
			fmt.Sprintf("%d", a.LinkVisits),
			fmt.Sprintf("%d", a.Classes),
			fmt.Sprintf("%d", a.Components),
		}
	}
	sb.WriteString(metrics.Table([]string{"kernel", "makespan", "recomputes", "link visits", "classes", "components"}, rows))
	if r.WantRatio > 0 {
		fmt.Fprintf(&sb, "work ratio %.1fx (want >= %.0fx)\n", r.WorkRatio(), r.WantRatio)
	}
	return sb.String()
}

// CheckShape holds the family's oath: bit-identical observables across
// kernels, full completion, and the promised work reduction.
func (r ScaleKernelResult) CheckShape() error {
	ref := r.Arms[0]
	for _, a := range r.Arms {
		if a.Completed != a.Flows {
			return fmt.Errorf("%s completed %d of %d flows", a.Kernel, a.Completed, a.Flows)
		}
		if err := armDiverged(ref, a); err != nil {
			return err
		}
	}
	last := r.Arms[len(r.Arms)-1]
	if r.WantRatio > 0 && r.WorkRatio() < r.WantRatio {
		return fmt.Errorf("work ratio %.1fx below the promised %.0fx (%d vs %d link visits)",
			r.WorkRatio(), r.WantRatio, ref.LinkVisits, last.LinkVisits)
	}
	if r.WantComponents > 0 && last.Components != r.WantComponents {
		return fmt.Errorf("%s saw %d link components, want %d (four per gang)",
			last.Kernel, last.Components, r.WantComponents)
	}
	return nil
}

// Metrics feeds the bench-regression baseline; every number is a
// deterministic step count or virtual time.
func (r ScaleKernelResult) Metrics() map[string]float64 {
	last := r.Arms[len(r.Arms)-1]
	return map[string]float64{
		"makespan_s":     r.Arms[0].Makespan.Seconds(),
		"work_ratio":     r.WorkRatio(),
		"ref_linkvisits": float64(r.Arms[0].LinkVisits),
		"new_linkvisits": float64(last.LinkVisits),
		"classes":        float64(last.Classes),
		"components":     float64(last.Components),
	}
}

// runScaleAggregate races the per-flow reference against the flow-class
// kernel on a 256-node world and demands a >= 10x work reduction with
// bit-identical results.
func runScaleAggregate(ctx *scenario.Ctx) ScaleKernelResult {
	const nodes = 256
	base := netsim.DefaultConfig()
	agg := base
	agg.Aggregate = true
	return ScaleKernelResult{
		Nodes: nodes,
		Arms: []ScaleArm{
			runScaleArm(ctx, nodes, scaleFlowsPerPair, base, "per-flow"),
			runScaleArm(ctx, nodes, scaleFlowsPerPair, agg, "aggregated"),
		},
		WantRatio:      10,
		WantComponents: scaleComponents(nodes),
	}
}

// runScaleParallel races serial component settle against the 8-worker
// parallel settle on the same world: byte-identical by construction, with
// one component per gang available to fill concurrently.
func runScaleParallel(ctx *scenario.Ctx) ScaleKernelResult {
	const nodes = 256
	agg := netsim.DefaultConfig()
	agg.Aggregate = true
	par := agg
	par.SettleWorkers = 8
	return ScaleKernelResult{
		Nodes: nodes,
		Arms: []ScaleArm{
			runScaleArm(ctx, nodes, scaleFlowsPerPair, agg, "agg-serial"),
			runScaleArm(ctx, nodes, scaleFlowsPerPair, par, "agg-parallel-8"),
		},
		WantComponents: scaleComponents(nodes),
	}
}

// ScaleSweepResult tracks the work ratio as the aggregation factor grows.
// The gang world is embarrassingly parallel, so world size alone scales
// both kernels linearly; what the class kernel actually wins on is the
// number of flows per identical chain — QPs times in-flight chunks, the
// axis real workloads scale along. More members per class means the
// per-flow kernel revisits ever more flows per recompute while the class
// kernel's pass stays one visit per chain.
type ScaleSweepResult struct {
	Members  []int // flows per ring edge
	Flows    []int
	Ratio    []float64
	Mismatch string
}

// runScaleSweep runs both kernels at three aggregation factors on the
// 256-node world.
func runScaleSweep(ctx *scenario.Ctx) ScaleSweepResult {
	const nodes = 256
	res := ScaleSweepResult{}
	base := netsim.DefaultConfig()
	agg := base
	agg.Aggregate = true
	agg.SettleWorkers = 4
	for _, members := range []int{8, 32, 128} {
		pf := runScaleArm(ctx, nodes, members, base, "per-flow")
		ag := runScaleArm(ctx, nodes, members, agg, "aggregated")
		if err := armDiverged(pf, ag); err != nil && res.Mismatch == "" {
			res.Mismatch = fmt.Sprintf("%d members: %v", members, err)
		}
		res.Members = append(res.Members, members)
		res.Flows = append(res.Flows, pf.Flows)
		res.Ratio = append(res.Ratio, float64(pf.LinkVisits)/float64(ag.LinkVisits))
	}
	return res
}

// String renders the sweep.
func (r ScaleSweepResult) String() string {
	var sb strings.Builder
	sb.WriteString("netsim kernel work ratio vs flows per chain (256-node world)\n")
	rows := make([][]string, len(r.Members))
	for i := range r.Members {
		rows[i] = []string{
			fmt.Sprintf("%d flows/chain", r.Members[i]),
			fmt.Sprintf("%d", r.Flows[i]),
			fmt.Sprintf("%.1fx", r.Ratio[i]),
		}
	}
	sb.WriteString(metrics.Table([]string{"aggregation", "flows", "work ratio"}, rows))
	if r.Mismatch != "" {
		fmt.Fprintf(&sb, "KERNEL DIVERGENCE: %s\n", r.Mismatch)
	}
	return sb.String()
}

// CheckShape: no divergence at any point, the advantage strictly grows
// with the aggregation factor, and the promised 10x holds from 32 flows
// per chain up.
func (r ScaleSweepResult) CheckShape() error {
	if r.Mismatch != "" {
		return fmt.Errorf("scale sweep: %s", r.Mismatch)
	}
	for i := 1; i < len(r.Ratio); i++ {
		if r.Ratio[i] <= r.Ratio[i-1] {
			return fmt.Errorf("scale sweep: ratio %.1fx at %d flows/chain not above %.1fx at %d",
				r.Ratio[i], r.Members[i], r.Ratio[i-1], r.Members[i-1])
		}
	}
	for i, members := range r.Members {
		if members >= 32 && r.Ratio[i] < 10 {
			return fmt.Errorf("scale sweep: ratio %.1fx at %d flows/chain, want >= 10x", r.Ratio[i], members)
		}
	}
	return nil
}

// Metrics feeds the bench-regression baseline.
func (r ScaleSweepResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for i, members := range r.Members {
		m[fmt.Sprintf("ratio_m%d", members)] = r.Ratio[i]
	}
	return m
}

// registerScale is invoked from the main registration init (register.go)
// so the netsim family lists after the planner.
func registerScale() {
	reg := scenario.Register

	reg(scenario.Scenario{
		Name: "netsim/scale-aggregate", Group: "netsim",
		Description: "flow-class kernel vs per-flow reference on a 256-node gang world",
		Paper:       "kernel cost per recompute drops from O(flows x links) to O(classes + touched links), bit-identically",
		Params:      map[string]string{"nodes": "256", "flows_per_pair": "32", "shape": "gang rings"},
		Run:         func(c *scenario.Ctx) scenario.Result { return runScaleAggregate(c) },
		Summarize: func(r scenario.Result) string {
			res := r.(ScaleKernelResult)
			return fmt.Sprintf("%.1fx less kernel work on %d flows, bit-identical makespan %.3fs",
				res.WorkRatio(), res.Arms[0].Flows, res.Arms[0].Makespan.Seconds())
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(ScaleKernelResult).Metrics()
		},
	})
	reg(scenario.Scenario{
		Name: "netsim/scale-parallel", Group: "netsim",
		Description: "serial vs 8-worker parallel component settle on a 256-node gang world",
		Paper:       "max-min filling decomposes along link components; the parallel settle is byte-identical to serial",
		Params:      map[string]string{"nodes": "256", "workers": "8"},
		Run:         func(c *scenario.Ctx) scenario.Result { return runScaleParallel(c) },
		Summarize: func(r scenario.Result) string {
			res := r.(ScaleKernelResult)
			last := res.Arms[len(res.Arms)-1]
			return fmt.Sprintf("%d components fill on 8 workers, byte-identical to serial", last.Components)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			res := r.(ScaleKernelResult)
			last := res.Arms[len(res.Arms)-1]
			return map[string]float64{
				"components": float64(last.Components),
				"classes":    float64(last.Classes),
				"makespan_s": res.Arms[0].Makespan.Seconds(),
			}
		},
	})
	reg(scenario.Scenario{
		Name: "netsim/scale-sweep", Group: "netsim", Slow: true,
		Description: "kernel work ratio as flows per chain grow from 8 to 128 on 256 nodes",
		Paper:       "per-flow recompute cost grows with QPs x in-flight chunks; per-class cost does not",
		Params:      map[string]string{"nodes": "256", "flows_per_pair": "8,32,128"},
		Run:         func(c *scenario.Ctx) scenario.Result { return runScaleSweep(c) },
		Summarize: func(r scenario.Result) string {
			res := r.(ScaleSweepResult)
			last := len(res.Members) - 1
			return fmt.Sprintf("ratio %.1fx at %d flows/chain up to %.1fx at %d",
				res.Ratio[0], res.Members[0], res.Ratio[last], res.Members[last])
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(ScaleSweepResult).Metrics()
		},
	})
}
