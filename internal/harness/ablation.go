package harness

import (
	"fmt"
	"strings"

	"c4/internal/accl"
	"c4/internal/c4d"
	"c4/internal/c4p"
	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/steering"
	"c4/internal/topo"
)

// This file holds the ablation studies DESIGN.md commits to: each isolates
// one design choice the paper makes and shows what breaks without it.

// PlaneRuleAblation isolates C4P's dual-port constraint ("forbid paths
// from left ports to right, and vice versa", §III-B): full C4P versus C4P
// with everything except the plane rule.
type PlaneRuleAblation struct {
	WithRule    float64 // mean busbw, Gbps
	WithoutRule float64
}

// RunPlaneRuleAblation measures an 8-node allreduce under both variants.
func RunPlaneRuleAblation(seed int64) PlaneRuleAblation {
	return runPlaneRuleAblation(scenario.NewCtx(seed))
}

func runPlaneRuleAblation(ctx *scenario.Ctx) PlaneRuleAblation {
	seed := ctx.Seed
	run := func(disable bool) float64 {
		var total float64
		const draws = 5
		for d := int64(0); d < draws; d++ {
			e := newEnv(ctx, topo.MultiJobTestbed(8))
			m := c4p.NewMaster(e.Topo, c4p.Static, sim.NewRand(seed+d))
			m.DisablePlaneRule = disable
			b, err := StartBench(e, BenchConfig{
				Nodes: InterleavedNodes(8), Bytes: 512 << 20, Iters: 4,
				Provider: m, QPsPerConn: 2, Seed: seed + d,
			})
			if err != nil {
				panic(err)
			}
			e.Eng.Run()
			total += b.MeanBusGbps()
		}
		return total / draws
	}
	return PlaneRuleAblation{WithRule: run(false), WithoutRule: run(true)}
}

// String renders the comparison.
func (r PlaneRuleAblation) String() string {
	return fmt.Sprintf("Ablation — C4P dual-port plane rule\n  with rule:    %.1f Gbps\n  without rule: %.1f Gbps (%s)\n",
		r.WithRule, r.WithoutRule, pct(r.WithoutRule/r.WithRule-1))
}

// CheckShape: dropping the rule must reintroduce the Fig 9 rx-imbalance
// penalty even though spine placement stays perfectly balanced.
func (r PlaneRuleAblation) CheckShape() error {
	if r.WithRule < 330 {
		return fmt.Errorf("plane ablation: full C4P at %.1f, want ≈360", r.WithRule)
	}
	if r.WithoutRule > r.WithRule*0.9 {
		return fmt.Errorf("plane ablation: no penalty without the rule (%.1f vs %.1f)",
			r.WithoutRule, r.WithRule)
	}
	return nil
}

// AlgoCrossover compares ring and tree allreduce across message sizes.
// Ring is bandwidth-optimal but pays per-hop latency 2(M-1) times; a
// binary tree pays it ~2·log2(M) times at the cost of link bandwidth —
// which is why ACCL (Fig 6) keeps both algorithm families.
type AlgoCrossover struct {
	SizesMiB []float64
	RingSec  []float64
	TreeSec  []float64
}

// RunAlgoCrossover sweeps message sizes on an 8-node communicator with
// chunked (stepwise) ring execution so per-step latency is charged.
func RunAlgoCrossover(seed int64) AlgoCrossover {
	return runAlgoCrossover(scenario.NewCtx(seed))
}

func runAlgoCrossover(ctx *scenario.Ctx) AlgoCrossover {
	seed := ctx.Seed
	res := AlgoCrossover{}
	for _, mib := range []float64{0.25, 1, 4, 16, 64, 256} {
		res.SizesMiB = append(res.SizesMiB, mib)
		run := func(tree bool) float64 {
			e := newEnv(ctx, topo.MultiJobTestbed(8))
			comm, err := accl.NewCommunicator(accl.Config{
				Engine: e.Eng, Net: e.Net,
				Provider: e.NewProvider(C4PStatic, seed),
				Rails:    []int{0},
				Stepwise: !tree,
				Rand:     sim.NewRand(seed),
			}, InterleavedNodes(8))
			if err != nil {
				panic(err)
			}
			var dur sim.Time
			done := func(r accl.Result) { dur = r.End - r.Start }
			if tree {
				comm.AllReduceTree(mib*(1<<20), nil, done)
			} else {
				comm.AllReduce(mib*(1<<20), nil, done)
			}
			e.Eng.Run()
			return dur.Seconds()
		}
		res.RingSec = append(res.RingSec, run(false))
		res.TreeSec = append(res.TreeSec, run(true))
	}
	return res
}

// String renders the sweep.
func (r AlgoCrossover) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — ring vs tree allreduce (8 nodes, chunked ring)\n")
	rows := make([][]string, len(r.SizesMiB))
	for i := range r.SizesMiB {
		winner := "ring"
		if r.TreeSec[i] < r.RingSec[i] {
			winner = "tree"
		}
		rows[i] = []string{
			fmt.Sprintf("%.2f MiB", r.SizesMiB[i]),
			fmt.Sprintf("%.3gms", r.RingSec[i]*1e3),
			fmt.Sprintf("%.3gms", r.TreeSec[i]*1e3),
			winner,
		}
	}
	sb.WriteString(metrics.Table([]string{"size", "ring", "tree", "winner"}, rows))
	return sb.String()
}

// CheckShape: tree wins at the small end (latency-bound), ring at the
// large end (bandwidth-bound).
func (r AlgoCrossover) CheckShape() error {
	n := len(r.SizesMiB)
	if r.TreeSec[0] >= r.RingSec[0] {
		return fmt.Errorf("algo ablation: tree should win at %.2f MiB (ring %.4fs, tree %.4fs)",
			r.SizesMiB[0], r.RingSec[0], r.TreeSec[0])
	}
	if r.RingSec[n-1] >= r.TreeSec[n-1] {
		return fmt.Errorf("algo ablation: ring should win at %.0f MiB (ring %.4fs, tree %.4fs)",
			r.SizesMiB[n-1], r.RingSec[n-1], r.TreeSec[n-1])
	}
	return nil
}

// CkptSweep shows why the deployment moved to 10-minute checkpoints: the
// post-checkpoint share of downtime is linear in the interval, and with
// C4D having shrunk everything else it dominates total downtime.
type CkptSweep struct {
	IntervalsMin []float64
	PostCkptPct  []float64
	TotalPct     []float64
}

// RunCkptSweep Monte-Carlos the December regime at varying intervals.
func RunCkptSweep(seed int64) CkptSweep { return runCkptSweep(scenario.NewCtx(seed)) }

func runCkptSweep(ctx *scenario.Ctx) CkptSweep {
	seed := ctx.Seed
	res := CkptSweep{}
	for _, minutes := range []float64{5, 10, 30, 60, 160} {
		reg := steering.C4DRegime()
		reg.CkptInterval = sim.FromSeconds(minutes * 60)
		var post, total float64
		const months = 6
		for m := 0; m < months; m++ {
			b := steering.SimulateAvailability(steering.AvailabilityConfig{
				Rand: sim.NewRand(seed + int64(m)), Nodes: 300, Regime: reg,
			})
			post += b.PostCkpt / months
			total += b.Total() / months
		}
		res.IntervalsMin = append(res.IntervalsMin, minutes)
		res.PostCkptPct = append(res.PostCkptPct, post*100)
		res.TotalPct = append(res.TotalPct, total*100)
	}
	return res
}

// String renders the sweep.
func (r CkptSweep) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — checkpoint interval (Dec-2023 regime)\n")
	rows := make([][]string, len(r.IntervalsMin))
	for i := range r.IntervalsMin {
		rows[i] = []string{
			fmt.Sprintf("%.0f min", r.IntervalsMin[i]),
			fmt.Sprintf("%.2f%%", r.PostCkptPct[i]),
			fmt.Sprintf("%.2f%%", r.TotalPct[i]),
		}
	}
	sb.WriteString(metrics.Table([]string{"interval", "post-ckpt", "total downtime"}, rows))
	return sb.String()
}

// CheckShape: post-checkpoint loss grows monotonically with the interval
// and dominates total downtime at the June-style 160-minute setting.
func (r CkptSweep) CheckShape() error {
	for i := 1; i < len(r.PostCkptPct); i++ {
		if r.PostCkptPct[i] < r.PostCkptPct[i-1] {
			return fmt.Errorf("ckpt sweep: post-ckpt not monotone: %v", r.PostCkptPct)
		}
	}
	last := len(r.PostCkptPct) - 1
	if r.PostCkptPct[last] < r.TotalPct[last]/2 {
		return fmt.Errorf("ckpt sweep: at %v min post-ckpt (%.2f%%) should dominate total (%.2f%%)",
			r.IntervalsMin[last], r.PostCkptPct[last], r.TotalPct[last])
	}
	return nil
}

// KappaSweep evaluates C4D's comm-slow threshold: too low and healthy
// jitter raises false alarms; too high and mild degradations escape. The
// matrices are synthetic full-mesh bandwidth maps with multiplicative
// noise, plus an injected row fault.
type KappaSweep struct {
	Kappas        []float64
	FalsePositive []float64 // rate on healthy noisy matrices
	Detected      []float64 // rate on matrices with a 3x row fault
}

// RunKappaSweep Monte-Carlos both rates per threshold.
func RunKappaSweep(seed int64) KappaSweep { return runKappaSweep(scenario.NewCtx(seed)) }

func runKappaSweep(ctx *scenario.Ctx) KappaSweep {
	r := sim.NewRand(ctx.Seed)
	res := KappaSweep{}
	const trials = 200
	const n = 8
	genHealthy := func() map[[2]int]float64 {
		bw := map[[2]int]float64{}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					bw[[2]int{s, d}] = 360 * (1 + 0.10*r.NormFloat64())
				}
			}
		}
		return bw
	}
	for _, kappa := range []float64{1.2, 1.5, 2, 3, 5} {
		fp, det := 0, 0
		for i := 0; i < trials; i++ {
			if len(c4d.AnalyzeDelayMatrix(genHealthy(), kappa, 0.6)) > 0 {
				fp++
			}
			bad := genHealthy()
			victim := r.Intn(n)
			for d := 0; d < n; d++ {
				if d != victim {
					bad[[2]int{victim, d}] /= 3
				}
			}
			findings := c4d.AnalyzeDelayMatrix(bad, kappa, 0.6)
			for _, f := range findings {
				if f.Scope == c4d.ScopeNodeTx && f.Src == victim {
					det++
					break
				}
			}
		}
		res.Kappas = append(res.Kappas, kappa)
		res.FalsePositive = append(res.FalsePositive, float64(fp)/trials)
		res.Detected = append(res.Detected, float64(det)/trials)
	}
	return res
}

// String renders the sweep.
func (r KappaSweep) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — C4D comm-slow threshold κ (10% jitter, 3x row fault)\n")
	rows := make([][]string, len(r.Kappas))
	for i := range r.Kappas {
		rows[i] = []string{
			fmt.Sprintf("κ=%.1f", r.Kappas[i]),
			fmt.Sprintf("%.1f%%", r.FalsePositive[i]*100),
			fmt.Sprintf("%.1f%%", r.Detected[i]*100),
		}
	}
	sb.WriteString(metrics.Table([]string{"threshold", "false alarms", "detection"}, rows))
	return sb.String()
}

// CheckShape: the default κ=2 must detect the 3x fault essentially always
// with essentially no false alarms; κ=1.2 must be noisy; κ=5 must miss.
func (r KappaSweep) CheckShape() error {
	find := func(k float64) int {
		for i, v := range r.Kappas {
			if v == k {
				return i
			}
		}
		return -1
	}
	def := find(2)
	if r.FalsePositive[def] > 0.02 {
		return fmt.Errorf("kappa sweep: κ=2 false-alarm rate %.2f, want ≈0", r.FalsePositive[def])
	}
	if r.Detected[def] < 0.95 {
		return fmt.Errorf("kappa sweep: κ=2 detection %.2f, want ≈1", r.Detected[def])
	}
	if lo := find(1.2); r.FalsePositive[lo] < 0.5 {
		return fmt.Errorf("kappa sweep: κ=1.2 should be noisy, FP=%.2f", r.FalsePositive[lo])
	}
	if hi := find(5); r.Detected[hi] > 0.1 {
		return fmt.Errorf("kappa sweep: κ=5 should miss the 3x fault, det=%.2f", r.Detected[hi])
	}
	return nil
}

// QPSweep shows how the number of QPs per connection smooths ECMP: more
// hash draws per bond mean fewer catastrophic collisions — the knob that
// separates our harsh 2-QP microbenchmark baseline from the production
// jobs of Fig 14.
type QPSweep struct {
	QPs      []int
	Baseline []float64 // mean busbw across ECMP draws
}

// RunQPSweep measures a 8-node baseline allreduce at 1..8 QPs/connection.
func RunQPSweep(seed int64) QPSweep { return runQPSweep(scenario.NewCtx(seed)) }

func runQPSweep(ctx *scenario.Ctx) QPSweep {
	seed := ctx.Seed
	res := QPSweep{}
	for _, qps := range []int{2, 4, 8, 16} {
		var total float64
		const draws = 6
		for d := int64(0); d < draws; d++ {
			e := newEnv(ctx, topo.MultiJobTestbed(8))
			b, err := StartBench(e, BenchConfig{
				Nodes: InterleavedNodes(8), Bytes: 256 << 20, Iters: 3,
				Provider: e.NewProvider(Baseline, seed+100*d), QPsPerConn: qps, Seed: seed + d,
			})
			if err != nil {
				panic(err)
			}
			e.Eng.Run()
			total += b.MeanBusGbps()
		}
		res.QPs = append(res.QPs, qps)
		res.Baseline = append(res.Baseline, total/draws)
	}
	return res
}

// String renders the sweep.
func (r QPSweep) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — ECMP baseline vs QPs per connection\n")
	rows := make([][]string, len(r.QPs))
	for i := range r.QPs {
		rows[i] = []string{fmt.Sprintf("%d QPs", r.QPs[i]), fmt.Sprintf("%.1f Gbps", r.Baseline[i])}
	}
	sb.WriteString(metrics.Table([]string{"config", "baseline busbw"}, rows))
	return sb.String()
}

// CheckShape: more QPs must not hurt, and 16 QPs must clearly beat 2.
func (r QPSweep) CheckShape() error {
	first, last := r.Baseline[0], r.Baseline[len(r.Baseline)-1]
	if last < first*1.1 {
		return fmt.Errorf("qp sweep: smoothing absent (%.1f at %d QPs vs %.1f at %d)",
			first, r.QPs[0], last, r.QPs[len(r.QPs)-1])
	}
	return nil
}
