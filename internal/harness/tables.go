package harness

import (
	"fmt"
	"math"
	"strings"

	"c4/internal/cluster"
	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/steering"
)

// TableIResult reproduces Table I: the crash-cause distribution of a
// month of a representative 4096-GPU job — the evidence that ~82.5% of
// failures are node-local and therefore isolatable.
type TableIResult struct {
	steering.CrashTable
}

// RunTableI samples a year of the fault process (12 months shrinks
// Monte-Carlo noise; proportions are month-invariant).
func RunTableI(seed int64) TableIResult { return runTableI(scenario.NewCtx(seed)) }

func runTableI(ctx *scenario.Ctx) TableIResult {
	return TableIResult{steering.SimulateCrashCauses(sim.NewRand(ctx.Seed), 512, 12*30*sim.Day)}
}

// String renders the paper's table.
func (r TableIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table I — crash causes (4096-GPU job)\n")
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.UserView,
			row.RootCause.String(),
			fmt.Sprintf("%.1f%%", row.Proportion*100),
			fmt.Sprintf("%.1f%%", row.LocalFrac*100),
		}
	}
	sb.WriteString(metrics.Table([]string{"users' view", "root cause", "proportion", "local"}, rows))
	fmt.Fprintf(&sb, "overall local: %.1f%% of %d crashes\n", r.LocalFraction()*100, r.Total)
	return sb.String()
}

// CheckShape validates the distribution against the paper's columns. The
// tolerance scales with the sample: a Monte-Carlo proportion over N
// crashes is binomial, so each row gets a 4σ band (plus a small floor for
// tiny samples).
func (r TableIResult) CheckShape() error {
	if r.Total == 0 {
		return fmt.Errorf("tableI: no crashes sampled")
	}
	want := map[cluster.FaultKind]float64{
		cluster.FaultCUDAError:    0.125,
		cluster.FaultECCNVLink:    0.275,
		cluster.FaultNCCLTimeout:  0.20,
		cluster.FaultACKTimeout:   0.275,
		cluster.FaultNetworkOther: 0.125,
	}
	n := float64(r.Total)
	for _, row := range r.Rows {
		w := want[row.RootCause]
		tol := 4*math.Sqrt(w*(1-w)/n) + 0.005
		if math.Abs(row.Proportion-w) > tol {
			return fmt.Errorf("tableI: %v proportion %.3f, want %.3f ± %.3f (N=%d)",
				row.RootCause, row.Proportion, w, tol, r.Total)
		}
	}
	lfTol := 4*math.Sqrt(0.825*0.175/n) + 0.005
	if lf := r.LocalFraction(); math.Abs(lf-0.825) > lfTol {
		return fmt.Errorf("tableI: local fraction %.3f, want 0.825 ± %.3f", lf, lfTol)
	}
	return nil
}

// TableIIIResult reproduces Table III: error-induced downtime of the
// 2400-GPU GPT-175B job before (June 2023, manual operations) and after
// (December 2023, C4D) deployment.
type TableIIIResult struct {
	Jun steering.Breakdown
	Dec steering.Breakdown
}

// RunTableIII Monte-Carlos both regimes, averaging across months to table
// precision.
func RunTableIII(seed int64) TableIIIResult { return runTableIII(scenario.NewCtx(seed)) }

func runTableIII(ctx *scenario.Ctx) TableIIIResult {
	seed := ctx.Seed
	avg := func(reg steering.Regime) steering.Breakdown {
		const months = 12
		agg := steering.Breakdown{Regime: reg.Name, Diagnosis: map[cluster.FaultKind]float64{}}
		for mth := 0; mth < months; mth++ {
			b := steering.SimulateAvailability(steering.AvailabilityConfig{
				Rand:   sim.NewRand(seed + int64(mth)),
				Nodes:  300,
				Regime: reg,
			})
			agg.Faults += b.Faults
			agg.PostCkpt += b.PostCkpt / months
			agg.Detection += b.Detection / months
			agg.Reinit += b.Reinit / months
			for k, v := range b.Diagnosis {
				agg.Diagnosis[k] += v / months
			}
		}
		agg.Faults /= months
		return agg
	}
	return TableIIIResult{Jun: avg(steering.ManualRegime()), Dec: avg(steering.C4DRegime())}
}

// String renders both halves of the paper's table.
func (r TableIIIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table III — error-induced downtime (fraction of wall time)\n")
	render := func(b steering.Breakdown) {
		fmt.Fprintf(&sb, "%s (%d crashes/month):\n", b.Regime, b.Faults)
		rows := [][]string{
			{"Post-Checkpoint", fmt.Sprintf("%.2f%%", b.PostCkpt*100)},
			{"Detection", fmt.Sprintf("%.2f%%", b.Detection*100)},
			{"Diagnosis & Isolation", fmt.Sprintf("%.2f%%", b.DiagnosisTotal()*100)},
		}
		for _, k := range b.Causes() {
			rows = append(rows, []string{"  " + k.String(), fmt.Sprintf("%.2f%%", b.Diagnosis[k]*100)})
		}
		rows = append(rows,
			[]string{"Re-Initialization", fmt.Sprintf("%.2f%%", b.Reinit*100)},
			[]string{"Total", fmt.Sprintf("%.2f%%", b.Total()*100)},
		)
		sb.WriteString(metrics.Table([]string{"phase", "downtime"}, rows))
	}
	render(r.Jun)
	render(r.Dec)
	fmt.Fprintf(&sb, "reduction: %.1fx\n", r.Jun.Total()/r.Dec.Total())
	return sb.String()
}

// CheckShape validates the paper's headline numbers: ≈31% before, ≈1.2%
// after, a ≈30x reduction with diagnosis dominating both columns.
func (r TableIIIResult) CheckShape() error {
	if t := r.Jun.Total(); t < 0.24 || t > 0.40 {
		return fmt.Errorf("tableIII: June total %.1f%%, want ≈31%%", t*100)
	}
	if t := r.Dec.Total(); t < 0.005 || t > 0.025 {
		return fmt.Errorf("tableIII: December total %.2f%%, want ≈1.2%%", t*100)
	}
	if f := r.Jun.Total() / r.Dec.Total(); f < 15 || f > 45 {
		return fmt.Errorf("tableIII: reduction %.1fx, want ≈30x", f)
	}
	for _, b := range []steering.Breakdown{r.Jun, r.Dec} {
		if b.DiagnosisTotal() < b.PostCkpt || b.DiagnosisTotal() < b.Detection {
			return fmt.Errorf("tableIII: %s diagnosis should dominate", b.Regime)
		}
	}
	return nil
}
