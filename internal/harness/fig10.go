package harness

import (
	"fmt"
	"strings"

	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
)

// Fig10Result reproduces Fig 10: eight concurrent 2-node allreduce jobs,
// each spanning the two leaf groups, with and without C4P global traffic
// engineering, at 1:1 (8 spines) and 2:1 (4 spines) oversubscription.
type Fig10Result struct {
	Oversub  string
	Spines   int
	Baseline []float64 // mean busbw per task, Gbps
	C4P      []float64
	// AvgGain is the relative improvement of aggregate throughput.
	AvgGain float64
}

// runConcurrentJobs launches the 8 jobs and runs until the deadline,
// returning each task's mean bus bandwidth. The env outlives the call so
// callers can sample counters (Fig 11/13 reuse this).
func runConcurrentJobs(e *Env, kind ProviderKind, seed int64, until sim.Time, qps int, adaptive bool) []*Bench {
	prov := e.NewProvider(kind, seed)
	benches := make([]*Bench, 8)
	for i := 0; i < 8; i++ {
		b, err := StartBench(e, BenchConfig{
			Nodes: fig10JobNodes(i), Bytes: 512 << 20, Until: until,
			Provider: prov, QPsPerConn: qps, Adaptive: adaptive, Seed: seed + int64(i),
		})
		if err != nil {
			panic(err)
		}
		benches[i] = b
	}
	return benches
}

// RunFig10 executes one oversubscription setting.
func RunFig10(seed int64, spines int) Fig10Result {
	return runFig10(scenario.NewCtx(seed), spines)
}

func runFig10(ctx *scenario.Ctx, spines int) Fig10Result {
	seed := ctx.Seed
	res := Fig10Result{Spines: spines}
	if spines >= 8 {
		res.Oversub = "1:1"
	} else {
		res.Oversub = "2:1"
	}
	const horizon = 60 * sim.Second
	var sums [2]float64
	for pi, kind := range []ProviderKind{Baseline, C4PStatic} {
		e := newEnv(ctx, topo.MultiJobTestbed(spines))
		benches := runConcurrentJobs(e, kind, seed, horizon, 2, false)
		e.Eng.RunUntil(horizon + 30*sim.Second) // let in-flight iterations drain
		for _, b := range benches {
			m := b.MeanBusGbps()
			if kind == Baseline {
				res.Baseline = append(res.Baseline, m)
			} else {
				res.C4P = append(res.C4P, m)
			}
			sums[pi] += m
		}
	}
	if sums[0] > 0 {
		res.AvgGain = sums[1]/sums[0] - 1
	}
	return res
}

// String renders the per-task bars.
func (r Fig10Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 10 (%s oversubscription) — 8 concurrent allreduce tasks, busbw (Gbps)\n", r.Oversub)
	rows := make([][]string, 8)
	for i := 0; i < 8; i++ {
		rows[i] = []string{
			fmt.Sprintf("Task%d", i+1),
			fmt.Sprintf("%.1f", r.Baseline[i]),
			fmt.Sprintf("%.1f", r.C4P[i]),
		}
	}
	sb.WriteString(metrics.Table([]string{"task", "baseline", "C4P-GTE"}, rows))
	fmt.Fprintf(&sb, "aggregate gain: %s\n", pct(r.AvgGain))
	return sb.String()
}

// CheckShape validates the paper's claims: with C4P all tasks are tight
// and near the achievable peak; without it the spread is wide and the
// average much lower (paper: +70.3% at 1:1, +65.55% at 2:1).
func (r Fig10Result) CheckShape() error {
	c4pMin, c4pMax := metrics.Min(r.C4P), metrics.Max(r.C4P)
	baseMin := metrics.Min(r.Baseline)
	if r.Oversub == "1:1" {
		if c4pMin < 330 {
			return fmt.Errorf("fig10 1:1: C4P min task = %.1f, want ≈355+", c4pMin)
		}
		if c4pMax-c4pMin > 25 {
			return fmt.Errorf("fig10 1:1: C4P spread = %.1f, want tight", c4pMax-c4pMin)
		}
		if baseMin > 300 {
			return fmt.Errorf("fig10 1:1: baseline min task = %.1f, want degraded (<300)", baseMin)
		}
		if r.AvgGain < 0.2 {
			return fmt.Errorf("fig10 1:1: aggregate gain = %.2f, want large (paper 0.70)", r.AvgGain)
		}
		return nil
	}
	// 2:1: the fabric itself caps ≈200 Gbps/task; C4P should sit near the
	// cap with a small spread, baseline below with a long tail.
	if c4pMin < 150 || c4pMax > 250 {
		return fmt.Errorf("fig10 2:1: C4P range [%.1f,%.1f], want ≈200", c4pMin, c4pMax)
	}
	if r.AvgGain < 0.15 {
		return fmt.Errorf("fig10 2:1: aggregate gain = %.2f, want large (paper 0.66)", r.AvgGain)
	}
	return nil
}
