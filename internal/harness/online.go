package harness

import (
	"fmt"

	"c4/internal/scenario"
	"c4/internal/telemetry"
)

// This file registers the streaming-telemetry experiments under
// "online/<name>": the online detector (internal/telemetry) racing batch
// C4D on identical fault schedules through one fan-out instrumentation
// point. They probe the paper's headline direction — detection latency
// shrunk from the human scale to the hardware's — past the batch
// reporting quantum: sub-tick time-to-detect, the cadence/overhead
// tradeoff, and O(1)-per-record ingest versus full per-pass recompute.
// Their numbers feed the bench-regression guard.

// registerOnline is invoked from the main registration init (register.go)
// so the online family lists after campaigns and tenancy.
func registerOnline() {
	reg := scenario.Register

	reg(scenario.Scenario{
		Name: "online/detection-latency", Group: "online",
		Description: "streaming vs batch C4D time-to-detect across three fault archetypes",
		Paper:       "detection within seconds, not the reporting tick: C4D latency is bounded by evidence, not cadence (§III-A)",
		Params:      map[string]string{"faults": "nic-degrade,straggler,spine-outage", "job": "8 nodes spread"},
		Run:         func(c *scenario.Ctx) scenario.Result { return telemetry.RunDetectionLatency(c) },
		Summarize: func(r scenario.Result) string {
			res := r.(*telemetry.DetectionLatencyResult)
			worst := 0.0
			for _, tr := range res.Trials {
				if s := tr.Speedup(); worst == 0 || s < worst {
					worst = s
				}
			}
			return fmt.Sprintf("online beats batch on all %d faults (worst speedup %.1fx)",
				len(res.Trials), worst)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(*telemetry.DetectionLatencyResult).Metrics()
		},
	})
	reg(scenario.Scenario{
		Name: "online/cadence-sweep", Group: "online",
		Description: "collector drain cadence vs time-to-detect and drain overhead",
		Paper:       "reporting cadence is the latency/overhead knob; streaming collection removes the floor",
		Params:      map[string]string{"cadences": "streaming,0.5s,2s,5s", "fault": "nic-degrade"},
		Run:         func(c *scenario.Ctx) scenario.Result { return telemetry.RunCadenceSweep(c) },
		Summarize: func(r scenario.Result) string {
			res := r.(*telemetry.CadenceSweepResult)
			first, last := res.Arms[0], res.Arms[len(res.Arms)-1]
			return fmt.Sprintf("TTD %.3fs streaming vs %.3fs at %v cadence",
				first.TTD.Seconds(), last.TTD.Seconds(), last.Drain)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(*telemetry.CadenceSweepResult).Metrics()
		},
	})
	reg(scenario.Scenario{
		Name: "online/scale-sweep", Group: "online",
		Description: "incremental streaming ingest vs full batch recompute as the fleet grows",
		Paper:       "per-pass master cost grows with fleet size; per-record streaming cost is O(1)",
		Params:      map[string]string{"sizes": "2,4,8"},
		Run:         func(c *scenario.Ctx) scenario.Result { return telemetry.RunScaleSweep(c) },
		Summarize: func(r scenario.Result) string {
			res := r.(*telemetry.ScaleSweepResult)
			last := res.Points[len(res.Points)-1]
			return fmt.Sprintf("batch %.1f cells/pass at %d nodes vs online %.1f ops/record flat",
				last.BatchCellsPerPass(), last.JobN, last.OnlinePerRecord())
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return r.(*telemetry.ScaleSweepResult).Metrics()
		},
	})
}
