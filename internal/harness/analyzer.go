package harness

import (
	"fmt"
	"strings"

	"c4/internal/accl"
	"c4/internal/c4d"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
)

// AnalyzerDemoResult exercises the offline C4 Analyzer workflow of Fig 5:
// a monitored allreduce loop suffers a mid-run Rx degradation, the ACCL
// recorder archives the transport time series, and the same delay-matrix
// localizer the online master uses replays it per window. cmd/c4analyze
// runs this scenario to generate its demo stats files.
type AnalyzerDemoResult struct {
	Victim   int
	SlowedAt sim.Time
	// Recorder holds the archived comm/coll/rank/conn stats streams.
	Recorder *accl.Recorder
	// Findings are the offline per-window verdicts.
	Findings []c4d.OfflineFinding
}

// RunAnalyzerDemo runs the monitored loop and the offline analysis.
func RunAnalyzerDemo(seed int64) AnalyzerDemoResult {
	return runAnalyzerDemo(scenario.NewCtx(seed))
}

func runAnalyzerDemo(ctx *scenario.Ctx) AnalyzerDemoResult {
	res := AnalyzerDemoResult{Victim: 9, SlowedAt: 30 * sim.Second}
	env := newEnv(ctx, topo.MultiJobTestbed(8))
	rec := &accl.Recorder{}
	res.Recorder = rec
	comm, err := accl.NewCommunicator(accl.Config{
		Engine: env.Eng, Net: env.Net,
		Provider: env.NewProvider(C4PStatic, ctx.Seed),
		Sink:     rec, Rails: []int{0},
		Rand: sim.NewRand(ctx.Seed),
	}, []int{0, 8, 1, 9, 2, 10})
	if err != nil {
		panic(err)
	}
	var iterate func()
	iterate = func() {
		comm.AllReduce(64<<20, nil, func(accl.Result) { iterate() })
	}
	iterate()
	env.Eng.Schedule(res.SlowedAt, func() {
		// The victim's receive side degrades: the analyzer should localize
		// connections into node 9 in the affected windows.
		for p := 0; p < topo.Planes; p++ {
			env.Net.SetLinkCapacity(env.Topo.PortAt(res.Victim, 0, p).Down, 25)
		}
	})
	env.Eng.RunUntil(60 * sim.Second)

	res.Findings = c4d.AnalyzeOffline(rec.Messages, 10*sim.Second, 2, 0.6)
	return res
}

// String renders the per-window findings.
func (r AnalyzerDemoResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Offline analyzer demo — node %d Rx degraded at %v\n", r.Victim, r.SlowedAt)
	fmt.Fprintf(&sb, "%d transport records, %d findings\n", len(r.Recorder.Messages), len(r.Findings))
	for _, of := range r.Findings {
		f := of.Finding
		switch f.Scope {
		case c4d.ScopeNodeTx:
			fmt.Fprintf(&sb, "[%v..%v] comm %d: node %d Tx slow (x%.1f)\n",
				of.WindowStart, of.WindowEnd, of.Comm, f.Src, f.Slowdown)
		case c4d.ScopeNodeRx:
			fmt.Fprintf(&sb, "[%v..%v] comm %d: node %d Rx slow (x%.1f)\n",
				of.WindowStart, of.WindowEnd, of.Comm, f.Dst, f.Slowdown)
		default:
			fmt.Fprintf(&sb, "[%v..%v] comm %d: connection n%d->n%d slow (x%.1f)\n",
				of.WindowStart, of.WindowEnd, of.Comm, f.Src, f.Dst, f.Slowdown)
		}
	}
	return sb.String()
}

// CheckShape validates the offline localization: the degraded windows must
// blame the victim's receive side and no healthy pre-fault window may.
func (r AnalyzerDemoResult) CheckShape() error {
	if len(r.Recorder.Messages) == 0 {
		return fmt.Errorf("analyzer demo: no transport records archived")
	}
	blamed := false
	for _, of := range r.Findings {
		if of.Finding.Dst == r.Victim {
			blamed = true
		}
		if of.WindowEnd <= r.SlowedAt {
			return fmt.Errorf("analyzer demo: finding in healthy window [%v..%v]",
				of.WindowStart, of.WindowEnd)
		}
	}
	if !blamed {
		return fmt.Errorf("analyzer demo: no finding blames node %d Rx", r.Victim)
	}
	return nil
}
