package harness

import (
	"fmt"
	"strings"

	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
)

// Fig12Variant is one half of Fig 12: the 8-task run with a mid-run link
// failure, under either C4P static traffic engineering (failures handled
// by data-plane rehash, Fig 12a) or C4P dynamic load balance (master
// reallocation + QP re-weighting, Fig 12b).
type Fig12Variant struct {
	Mode        string
	Tasks       []*metrics.Series // per-iteration busbw over time
	PreFailAvg  float64           // mean busbw before the failure
	PostFailAvg float64           // mean busbw after (settled)
	IdealPost   float64           // 7/8 of pre-failure (1 of 8 uplinks dead)
}

// Fig12Result bundles both variants.
type Fig12Result struct {
	FailAt  sim.Time
	Static  Fig12Variant
	Dynamic Fig12Variant
}

// RunFig12 executes both variants on the 1:1 fabric, killing one of the
// affected leaf's 8 uplinks (both directions of the cable) mid-run.
func RunFig12(seed int64) Fig12Result { return runFig12(scenario.NewCtx(seed)) }

func runFig12(ctx *scenario.Ctx) Fig12Result {
	seed := ctx.Seed
	const (
		failAt  = 30 * sim.Second
		horizon = 90 * sim.Second
	)
	run := func(kind ProviderKind, qps int, adaptive bool, label string) Fig12Variant {
		e := newEnv(ctx, topo.MultiJobTestbed(8))
		benches := runConcurrentJobs(e, kind, seed, horizon, qps, adaptive)
		e.Eng.Schedule(failAt, func() {
			leaf := e.Topo.LeafAt(0, 0, 0)
			e.Net.SetLinkUp(leaf.Ups[2], false)
			e.Net.SetLinkUp(leaf.Downs[2], false)
			// The withdrawal changes the leaf's ECMP group: every flow
			// through this leaf gets re-resolved (static: uncoordinated
			// rehash; dynamic: master re-placement).
			for _, b := range benches {
				b.Comm.RefreshPaths(func(p *topo.Path) bool {
					return p.Spine != nil && (p.SrcPort.Leaf == leaf || p.DstPort.Leaf == leaf)
				})
			}
		})
		e.Eng.RunUntil(horizon + 30*sim.Second)
		v := Fig12Variant{Mode: label}
		var pre, post []float64
		for _, b := range benches {
			v.Tasks = append(v.Tasks, b.Series)
			for _, s := range b.Series.Samples {
				switch {
				case s.T < failAt.Seconds():
					pre = append(pre, s.V)
				case s.T > (failAt + 10*sim.Second).Seconds():
					post = append(post, s.V)
				}
			}
		}
		v.PreFailAvg = metrics.Mean(pre)
		v.PostFailAvg = metrics.Mean(post)
		v.IdealPost = v.PreFailAvg * 7 / 8
		return v
	}
	return Fig12Result{
		FailAt:  failAt,
		Static:  run(C4PStatic, 2, false, "static traffic engineering"),
		Dynamic: run(C4PDynamic, 8, true, "dynamic load balance"),
	}
}

// String renders both variants.
func (r Fig12Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 12 — link failure at t=%v during 8 concurrent tasks\n", r.FailAt)
	rows := [][]string{}
	for _, v := range []Fig12Variant{r.Static, r.Dynamic} {
		rows = append(rows, []string{
			v.Mode,
			fmt.Sprintf("%.1f", v.PreFailAvg),
			fmt.Sprintf("%.1f", v.PostFailAvg),
			fmt.Sprintf("%.1f", v.IdealPost),
		})
	}
	sb.WriteString(metrics.Table([]string{"mode", "pre-fail", "post-fail", "ideal 7/8"}, rows))
	gain := r.Dynamic.PostFailAvg/r.Static.PostFailAvg - 1
	fmt.Fprintf(&sb, "dynamic vs static after failure: %s\n", pct(gain))
	return sb.String()
}

// CheckShape validates the paper's claims: static degrades substantially
// after the failure; dynamic recovers close to the 7/8 ideal and clearly
// beats static (paper: 185.8 vs 301.5 Gbps, +62.3%, ideal 315).
func (r Fig12Result) CheckShape() error {
	if r.Static.PreFailAvg < 330 || r.Dynamic.PreFailAvg < 330 {
		return fmt.Errorf("fig12: pre-failure busbw %.1f/%.1f, want ≈360",
			r.Static.PreFailAvg, r.Dynamic.PreFailAvg)
	}
	if r.Static.PostFailAvg > r.Static.PreFailAvg*0.93 {
		return fmt.Errorf("fig12: static barely degraded (%.1f -> %.1f)",
			r.Static.PreFailAvg, r.Static.PostFailAvg)
	}
	if r.Dynamic.PostFailAvg < r.Static.PostFailAvg*1.05 {
		return fmt.Errorf("fig12: dynamic (%.1f) should clearly beat static (%.1f)",
			r.Dynamic.PostFailAvg, r.Static.PostFailAvg)
	}
	if r.Dynamic.PostFailAvg < r.Dynamic.IdealPost*0.85 {
		return fmt.Errorf("fig12: dynamic %.1f far from 7/8 ideal %.1f",
			r.Dynamic.PostFailAvg, r.Dynamic.IdealPost)
	}
	return nil
}
