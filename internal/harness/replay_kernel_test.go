package harness

import (
	"testing"

	"c4/internal/netsim"
	"c4/internal/scenario"
)

// TestAggregatedKernelReplaysFamilies is the whole-repo equivalence proof
// for the flow-class kernel rebuild: representative scenarios from the
// figure, tenancy and planner families — code that builds its own engines
// and networks internally — are replayed through the aggregated kernel
// (serial and parallel settle) via the ForceAggregate override, and their
// renderings must match the committed per-flow behavior byte for byte.
// The fault campaigns join in outside -short.
func TestAggregatedKernelReplaysFamilies(t *testing.T) {
	names := []string{
		"fig9", "fig12",
		"tenancy/collision-sweep", "tenancy/placement-compare",
		"plan/bucket-sweep", "plan/overlap-ablation",
	}
	if !testing.Short() {
		names = append(names, "campaign/mixed")
	}
	const seed = 1
	for _, name := range names {
		s, ok := scenario.Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		ref := s.Run(scenario.NewCtx(seed)).String()
		for _, workers := range []int{0, 4} {
			restore := netsim.ForceAggregate(workers)
			got := s.Run(scenario.NewCtx(seed)).String()
			restore()
			if got != ref {
				t.Errorf("scenario %s: aggregated kernel (workers=%d) diverged from per-flow\naggregated:\n%s\nper-flow:\n%s",
					name, workers, got, ref)
			}
		}
	}
}
