// Package harness reproduces every table and figure of the C4 paper's
// motivation and evaluation sections (§II, §IV). Each experiment is a
// RunXxx function returning a typed result with a String() rendering of
// the paper's rows/series and a CheckShape() method asserting the
// qualitative claims — who wins, by roughly what factor, where crossovers
// fall. Absolute numbers come from the simulated substrate (DESIGN.md §2)
// and are compared against the paper's in EXPERIMENTS.md.
//
// Every experiment is also registered by name in the scenario registry
// (register.go): cmd/c4sim, cmd/c4bench and cmd/c4analyze enumerate and
// run them through the worker-pool runner in internal/scenario, and the
// tests here prove a parallel sweep reproduces a serial one byte for
// byte. The RunXxx functions remain as thin wrappers over the registered
// implementations.
package harness

import (
	"fmt"

	"c4/internal/accl"
	"c4/internal/c4p"
	"c4/internal/netsim"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
)

// Env is one simulated cluster instance.
type Env struct {
	Eng  *sim.Engine
	Topo *topo.Topology
	Net  *netsim.Network
}

// NewEnv builds a fresh engine+fabric+network for a spec.
func NewEnv(spec topo.Spec) *Env {
	eng := sim.NewEngine()
	t := topo.MustNew(spec)
	return &Env{Eng: eng, Topo: t, Net: netsim.New(eng, t, netsim.DefaultConfig())}
}

// newEnv builds an Env for a scenario run and registers its engine with
// the context so the runner can report per-scenario event counts.
func newEnv(ctx *scenario.Ctx, spec topo.Spec) *Env {
	e := NewEnv(spec)
	ctx.Track(e.Eng)
	return e
}

// ProviderKind selects the path-control policy under test.
type ProviderKind int

// The three policies compared across the evaluation.
const (
	// Baseline is plain ECMP hashing with no coordination.
	Baseline ProviderKind = iota
	// C4PStatic is C4P global traffic engineering at connect time.
	C4PStatic
	// C4PDynamic adds master reallocation and QP load balance on failures.
	C4PDynamic
)

func (p ProviderKind) String() string {
	switch p {
	case Baseline:
		return "baseline"
	case C4PStatic:
		return "c4p-gte"
	case C4PDynamic:
		return "c4p-dynamic"
	}
	return "unknown"
}

// NewProvider instantiates the policy on an environment.
func (e *Env) NewProvider(kind ProviderKind, seed int64) accl.PathProvider {
	switch kind {
	case C4PStatic:
		return c4p.NewMaster(e.Topo, c4p.Static, sim.NewRand(seed))
	case C4PDynamic:
		return c4p.NewMaster(e.Topo, c4p.Dynamic, sim.NewRand(seed))
	default:
		return accl.NewECMPProvider(e.Topo, sim.NewRand(seed))
	}
}

// InterleavedNodes returns m nodes alternating between the two leaf groups
// of the multi-job testbed, so every ring edge crosses the spine layer
// (the paper's benchmark placement).
func InterleavedNodes(m int) []int {
	out := make([]int, 0, m)
	for i := 0; len(out) < m; i++ {
		out = append(out, i)
		if len(out) < m {
			out = append(out, i+8)
		}
	}
	return out
}

// fig10JobNodes returns the node pair of concurrent job i (i in [0,8)):
// one server per leaf group, as in Fig 10's setup.
func fig10JobNodes(i int) []int { return []int{i, i + 8} }

func pct(gain float64) string { return fmt.Sprintf("%+.1f%%", gain*100) }
