package harness

import (
	"fmt"

	"c4/internal/accl"
	"c4/internal/metrics"
	"c4/internal/sim"
)

// BenchConfig describes one "nccltest"-style collective benchmark: a ring
// allreduce repeated back-to-back, reporting per-iteration bus bandwidth —
// the tool behind Figs 9, 10 and 12.
type BenchConfig struct {
	Nodes      []int
	Bytes      float64 // payload per iteration
	Iters      int     // 0 = run until Until
	Until      sim.Time
	Provider   accl.PathProvider
	QPsPerConn int
	Adaptive   bool
	Seed       int64
}

// Bench is a running collective benchmark.
type Bench struct {
	Comm   *accl.Communicator
	Series *metrics.Series // busbw (Gbps) per iteration, timestamped at completion
	stop   bool
}

// StartBench launches the benchmark loop on the environment; iterations
// run back-to-back until the configured count or deadline.
func StartBench(e *Env, cfg BenchConfig) (*Bench, error) {
	comm, err := accl.NewCommunicator(accl.Config{
		Engine: e.Eng, Net: e.Net, Provider: cfg.Provider,
		Rails: []int{0}, QPsPerConn: cfg.QPsPerConn,
		AdaptiveWeights: cfg.Adaptive,
		Rand:            sim.NewRand(cfg.Seed),
	}, cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("harness: bench communicator: %w", err)
	}
	b := &Bench{Comm: comm, Series: &metrics.Series{Name: "busbw_gbps"}}
	done := 0
	var iterate func()
	iterate = func() {
		if b.stop {
			return
		}
		if cfg.Iters > 0 && done >= cfg.Iters {
			return
		}
		if cfg.Until > 0 && e.Eng.Now() >= cfg.Until {
			return
		}
		comm.AllReduce(cfg.Bytes, nil, func(r accl.Result) {
			done++
			b.Series.Add(r.End.Seconds(), r.BusGbps)
			iterate()
		})
	}
	iterate()
	return b, nil
}

// Stop halts the loop after the in-flight iteration.
func (b *Bench) Stop() { b.stop = true }

// MeanBusGbps is the benchmark's average bus bandwidth.
func (b *Bench) MeanBusGbps() float64 { return b.Series.Mean() }
