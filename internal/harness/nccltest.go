package harness

import (
	"fmt"
	"strings"

	"c4/internal/accl"
	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
)

// BenchConfig describes one "nccltest"-style collective benchmark: a ring
// allreduce repeated back-to-back, reporting per-iteration bus bandwidth —
// the tool behind Figs 9, 10 and 12.
type BenchConfig struct {
	Nodes      []int
	Bytes      float64 // payload per iteration
	Iters      int     // 0 = run until Until
	Until      sim.Time
	Provider   accl.PathProvider
	QPsPerConn int
	Adaptive   bool
	Seed       int64
}

// Bench is a running collective benchmark.
type Bench struct {
	Comm   *accl.Communicator
	Series *metrics.Series // busbw (Gbps) per iteration, timestamped at completion
	stop   bool
}

// StartBench launches the benchmark loop on the environment; iterations
// run back-to-back until the configured count or deadline.
func StartBench(e *Env, cfg BenchConfig) (*Bench, error) {
	comm, err := accl.NewCommunicator(accl.Config{
		Engine: e.Eng, Net: e.Net, Provider: cfg.Provider,
		Rails: []int{0}, QPsPerConn: cfg.QPsPerConn,
		AdaptiveWeights: cfg.Adaptive,
		Rand:            sim.NewRand(cfg.Seed),
	}, cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("harness: bench communicator: %w", err)
	}
	b := &Bench{Comm: comm, Series: &metrics.Series{Name: "busbw_gbps"}}
	done := 0
	var iterate func()
	iterate = func() {
		if b.stop {
			return
		}
		if cfg.Iters > 0 && done >= cfg.Iters {
			return
		}
		if cfg.Until > 0 && e.Eng.Now() >= cfg.Until {
			return
		}
		comm.AllReduce(cfg.Bytes, nil, func(r accl.Result) {
			done++
			b.Series.Add(r.End.Seconds(), r.BusGbps)
			iterate()
		})
	}
	iterate()
	return b, nil
}

// Stop halts the loop after the in-flight iteration.
func (b *Bench) Stop() { b.stop = true }

// MeanBusGbps is the benchmark's average bus bandwidth.
func (b *Bench) MeanBusGbps() float64 { return b.Series.Mean() }

// NCCLTestSpec parameterizes the standalone nccltest scenario: the
// simulated equivalent of one NVIDIA nccl-tests invocation.
type NCCLTestSpec struct {
	Nodes      int
	Spines     int
	MiB        float64
	Iters      int
	Kind       ProviderKind
	QPsPerConn int
}

// DefaultNCCLTest is the 8-node C4P configuration the paper's
// microbenchmarks run at.
func DefaultNCCLTest() NCCLTestSpec {
	return NCCLTestSpec{Nodes: 8, Spines: 8, MiB: 512, Iters: 8, Kind: C4PStatic, QPsPerConn: 2}
}

// NCCLTestResult is the per-iteration busbw log of one benchmark run.
type NCCLTestResult struct {
	Spec   NCCLTestSpec
	GPUs   int
	Series *metrics.Series
}

// RunNCCLTest executes one benchmark configuration.
func RunNCCLTest(seed int64, spec NCCLTestSpec) NCCLTestResult {
	return runNCCLTest(scenario.NewCtx(seed), spec)
}

func runNCCLTest(ctx *scenario.Ctx, spec NCCLTestSpec) NCCLTestResult {
	fab := topo.MultiJobTestbed(spec.Spines)
	if spec.Nodes > fab.Nodes {
		panic(fmt.Sprintf("at most %d nodes on this testbed, got %d", fab.Nodes, spec.Nodes))
	}
	e := newEnv(ctx, fab)
	b, err := StartBench(e, BenchConfig{
		Nodes: InterleavedNodes(spec.Nodes), Bytes: spec.MiB * (1 << 20), Iters: spec.Iters,
		Provider: e.NewProvider(spec.Kind, ctx.Seed), QPsPerConn: spec.QPsPerConn,
		Adaptive: spec.Kind == C4PDynamic, Seed: ctx.Seed,
	})
	if err != nil {
		panic(err)
	}
	e.Eng.Run()
	return NCCLTestResult{Spec: spec, GPUs: spec.Nodes * fab.GPUsPerNode, Series: b.Series}
}

// MeanBusGbps is the run's average bus bandwidth.
func (r NCCLTestResult) MeanBusGbps() float64 { return r.Series.Mean() }

// String renders the nccl-tests-style iteration log.
func (r NCCLTestResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# nccltest (simulated) — allreduce, ring, %d nodes (%d GPUs), %v, %.0f MiB\n",
		r.Spec.Nodes, r.GPUs, r.Spec.Kind, r.Spec.MiB)
	fmt.Fprintf(&sb, "%-6s %-12s %-12s\n", "iter", "t(s)", "busbw(Gbps)")
	for i, s := range r.Series.Samples {
		fmt.Fprintf(&sb, "%-6d %-12.3f %-12.1f\n", i, s.T, s.V)
	}
	fmt.Fprintf(&sb, "# mean busbw: %.1f Gbps\n", r.MeanBusGbps())
	return sb.String()
}

// CheckShape validates that the run completed every iteration and, for the
// planned C4P configurations, that busbw sits near the NVLink-bounded peak.
func (r NCCLTestResult) CheckShape() error {
	if r.Series.Len() != r.Spec.Iters {
		return fmt.Errorf("nccltest: %d iterations completed, want %d", r.Series.Len(), r.Spec.Iters)
	}
	if r.Spec.Kind != Baseline && r.Spec.Spines >= 8 {
		if m := r.MeanBusGbps(); m < 330 || m > 370 {
			return fmt.Errorf("nccltest: C4P busbw %.1f Gbps, want ≈360", m)
		}
	}
	return nil
}
