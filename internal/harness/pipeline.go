package harness

import (
	"fmt"
	"strings"

	"c4/internal/c4d"
	"c4/internal/cluster"
	"c4/internal/job"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/steering"
	"c4/internal/topo"
	"c4/internal/workload"
)

// PipelineResult exercises the full Fig 4 loop live: a training job runs
// under a C4D fleet; a fault is injected; C4D localizes it; the steering
// service isolates the node, draws a spare, and restarts the job, which
// then completes. This is the system-level integration the paper deploys,
// measured end to end in virtual time.
type PipelineResult struct {
	Fault       cluster.Fault
	InjectedAt  sim.Time
	DetectedAt  sim.Time
	RestartedAt sim.Time
	// Downtime is injection -> job running again.
	Downtime sim.Time
	// Detection is injection -> C4D event (the paper's "tens of seconds").
	Detection   sim.Time
	BlamedNode  int
	Replacement int
	Finished    bool
	Events      []c4d.Event
}

// RunPipeline injects one crash into a 16-node job and drives the live
// C4D -> steering -> restart loop to completion.
func RunPipeline(seed int64) PipelineResult { return runPipeline(scenario.NewCtx(seed)) }

func runPipeline(ctx *scenario.Ctx) PipelineResult {
	seed := ctx.Seed
	spec := topo.MultiJobTestbed(8)
	spec.Nodes = 24 // 16 primaries + 8 backups, the paper's spare ratio
	e := newEnv(ctx, spec)
	cl := cluster.NewCluster(16, 8, 8)

	master := c4d.NewMaster(c4d.Config{})
	fleet := c4d.NewFleet(e.Eng, master)

	jobSpec := workload.JobSpec{
		Name:                 "pipeline-GPT22B",
		Model:                workload.GPT22B,
		Par:                  workload.Parallelism{TP: 8, DP: 16, GA: 1},
		Nodes:                InterleavedNodes(16),
		ComputePerMicroBatch: 550 * sim.Millisecond,
		ComputeJitter:        0.02,
		SamplesPerIter:       64,
	}
	j, err := job.New(job.Config{
		Engine: e.Eng, Net: e.Net,
		Provider: e.NewProvider(C4PStatic, seed),
		Sink:     fleet,
		Rails:    []int{0},
		Spec:     jobSpec,
		Rand:     sim.NewRand(seed),
	})
	if err != nil {
		panic(err)
	}

	res := PipelineResult{BlamedNode: -1, Replacement: -1}
	victim := 6

	svc := steering.NewService(steering.Config{
		Engine:         e.Eng,
		Cluster:        cl,
		IsolationDelay: 30 * sim.Second,
		RestartDelay:   3 * sim.Minute,
		Isolate: func(node int) {
			j.Stop()
		},
		Restart: func(node, repl int) {
			res.RestartedAt = e.Eng.Now()
			res.Replacement = 16 + (repl-16)%8 // map spare machine to fabric node
			if err := j.ReplaceNode(node, res.Replacement); err != nil {
				panic(err)
			}
			j.Run(5, func(job.Report) { res.Finished = true })
		},
	})
	master.Subscribe(func(ev c4d.Event) {
		res.Events = append(res.Events, ev)
		if res.DetectedAt == 0 {
			res.DetectedAt = ev.Time
			res.BlamedNode = ev.Node
		}
		svc.Handle(ev)
	})

	j.Run(1000, nil)
	res.InjectedAt = 20 * sim.Second
	e.Eng.Schedule(res.InjectedAt, func() {
		res.Fault = cluster.Fault{Kind: cluster.FaultCUDAError, Node: victim, Time: e.Eng.Now(), Local: true}
		j.SetCrashed(victim, true)
	})
	e.Eng.RunUntil(30 * sim.Minute)
	fleet.Stop()

	if res.DetectedAt > 0 {
		res.Detection = res.DetectedAt - res.InjectedAt
	}
	if res.RestartedAt > 0 {
		res.Downtime = res.RestartedAt - res.InjectedAt
	}
	return res
}

// String narrates the recovery.
func (r PipelineResult) String() string {
	var sb strings.Builder
	sb.WriteString("Live C4D -> steering -> restart pipeline\n")
	fmt.Fprintf(&sb, "fault injected:  %v (%v on node %d)\n", r.InjectedAt, r.Fault.Kind, r.Fault.Node)
	fmt.Fprintf(&sb, "C4D detection:   +%v (blamed node %d)\n", r.Detection, r.BlamedNode)
	fmt.Fprintf(&sb, "job restarted:   +%v (replacement node %d)\n", r.Downtime, r.Replacement)
	fmt.Fprintf(&sb, "job completed:   %v\n", r.Finished)
	return sb.String()
}

// CheckShape validates the deployment claims: detection within tens of
// seconds, the right node blamed, recovery within minutes (versus the
// hours-to-days of the manual baseline).
func (r PipelineResult) CheckShape() error {
	if r.BlamedNode != r.Fault.Node {
		return fmt.Errorf("pipeline: blamed node %d, fault was on %d", r.BlamedNode, r.Fault.Node)
	}
	if r.Detection <= 0 || r.Detection > 2*sim.Minute {
		return fmt.Errorf("pipeline: detection took %v, want tens of seconds", r.Detection)
	}
	if r.Downtime <= 0 || r.Downtime > 10*sim.Minute {
		return fmt.Errorf("pipeline: downtime %v, want minutes", r.Downtime)
	}
	if !r.Finished {
		return fmt.Errorf("pipeline: job never completed after recovery")
	}
	return nil
}
