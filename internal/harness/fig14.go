package harness

import (
	"fmt"
	"strings"

	"c4/internal/job"
	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
	"c4/internal/workload"
)

// Fig14Result reproduces Fig 14: end-to-end throughput of three real-life
// training jobs with and without C4. Job1 (GPT-22B, TP8×DP16) and Job2
// (Llama-7B, ZeRO DP16) are communication-heavy and gain ≈15%; Job3
// (GPT-175B, TP8×PP8×DP2 with GA=16) amortizes communication over 16
// micro-batches and gains almost nothing — the paper's key lesson about
// when traffic engineering pays.
type Fig14Result struct {
	Jobs     []string
	Baseline []float64 // samples/sec
	C4P      []float64
	Gains    []float64
}

// RunFig14 measures each job alone on the testbed under both providers,
// averaging the baseline over ECMP draws.
func RunFig14(seed int64) Fig14Result { return runFig14(scenario.NewCtx(seed)) }

func runFig14(ctx *scenario.Ctx) Fig14Result {
	seed := ctx.Seed
	res := Fig14Result{}
	specs := workload.Fig14Jobs(InterleavedNodes(16))
	for _, spec := range specs {
		res.Jobs = append(res.Jobs, fmt.Sprintf("%s (%s, %s)", spec.Name, spec.Model.Name, spec.Par))
		run := func(kind ProviderKind, s int64) float64 {
			e := newEnv(ctx, topo.MultiJobTestbed(8))
			j, err := job.New(job.Config{
				Engine: e.Eng, Net: e.Net,
				Provider: e.NewProvider(kind, s),
				Rails:    []int{0},
				Spec:     spec,
				Rand:     sim.NewRand(s),
				// Production CCLs open several QPs per port, smoothing
				// hash collisions; without this the baseline degrades far
				// more than the paper's ~15%.
				QPsPerConn: 8,
			})
			if err != nil {
				panic(err)
			}
			var rep job.Report
			j.Run(6, func(r job.Report) { rep = r })
			e.Eng.Run()
			return rep.SamplesPerSec
		}
		const draws = 3
		var base float64
		for d := int64(0); d < draws; d++ {
			base += run(Baseline, seed+13*d)
		}
		base /= draws
		c4 := run(C4PStatic, seed)
		res.Baseline = append(res.Baseline, base)
		res.C4P = append(res.C4P, c4)
		res.Gains = append(res.Gains, c4/base-1)
	}
	return res
}

// String renders the comparison.
func (r Fig14Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 14 — real-life job throughput (samples/sec)\n")
	rows := make([][]string, len(r.Jobs))
	for i := range r.Jobs {
		rows[i] = []string{
			r.Jobs[i],
			fmt.Sprintf("%.1f", r.Baseline[i]),
			fmt.Sprintf("%.1f", r.C4P[i]),
			pct(r.Gains[i]),
		}
	}
	sb.WriteString(metrics.Table([]string{"job", "baseline", "C4", "gain"}, rows))
	return sb.String()
}

// CheckShape validates the paper's claims: meaningful gains for the
// communication-bound jobs (paper: +15.95% and +14.1%), negligible gain
// for the GA=16 job, and Job3's gain far below the others.
func (r Fig14Result) CheckShape() error {
	if len(r.Gains) != 3 {
		return fmt.Errorf("fig14: %d jobs, want 3", len(r.Gains))
	}
	for i := 0; i < 2; i++ {
		if r.Gains[i] < 0.06 || r.Gains[i] > 0.45 {
			return fmt.Errorf("fig14: %s gain = %s, want ≈+15%%", r.Jobs[i], pct(r.Gains[i]))
		}
	}
	if r.Gains[2] > 0.06 {
		return fmt.Errorf("fig14: Job3 gain = %s, want ≈0 (GA=16)", pct(r.Gains[2]))
	}
	if r.Gains[2] > r.Gains[0]/2 || r.Gains[2] > r.Gains[1]/2 {
		return fmt.Errorf("fig14: Job3 (%s) should gain far less than Job1/Job2", pct(r.Gains[2]))
	}
	return nil
}
