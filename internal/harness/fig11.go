package harness

import (
	"fmt"
	"strings"

	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sim"
	"c4/internal/topo"
)

// Fig11Result reproduces Fig 11: per-bonded-port congestion-notification
// (CNP) rates during the 2:1-oversubscription run of Fig 10b. The paper
// observes ≈15k CNPs/s per bonded port, fluctuating between 12.5k and
// 17.5k, which explains the residual spread between tasks under C4P.
type Fig11Result struct {
	// Ports holds one CNPs-per-second series per bonded NIC (node, rail 0).
	Ports []*metrics.Series
	Mean  float64
	Min   float64
	Max   float64
}

// RunFig11 repeats the Fig 10b C4P run and samples CNP counters once per
// virtual second. Sampling noise (±12%, seeded) models the burstiness of
// hardware CNP generation that the fluid model averages away.
func RunFig11(seed int64) Fig11Result { return runFig11(scenario.NewCtx(seed)) }

func runFig11(ctx *scenario.Ctx) Fig11Result {
	seed := ctx.Seed
	e := newEnv(ctx, topo.MultiJobTestbed(4))
	const horizon = 60 * sim.Second
	runConcurrentJobs(e, C4PStatic, seed, horizon, 2, false)

	res := Fig11Result{}
	noise := sim.NewRand(seed + 7)
	type state struct {
		series *metrics.Series
		last   float64
	}
	states := make([]*state, 16)
	for n := 0; n < 16; n++ {
		states[n] = &state{series: &metrics.Series{Name: fmt.Sprintf("node%d", n)}}
		res.Ports = append(res.Ports, states[n].series)
	}
	var sample func()
	warmup := 5 * sim.Second
	sample = func() {
		now := e.Eng.Now()
		for n := 0; n < 16; n++ {
			var total float64
			for p := 0; p < topo.Planes; p++ {
				total += e.Net.CNPCount(e.Topo.PortAt(n, 0, p))
			}
			st := states[n]
			rate := total - st.last
			st.last = total
			if now > warmup {
				st.series.Add(now.Seconds(), rate*(1+0.12*(2*noise.Float64()-1)))
			}
		}
		if now < horizon {
			e.Eng.After(sim.Second, sample)
		}
	}
	e.Eng.After(sim.Second, sample)
	e.Eng.RunUntil(horizon)

	var all []float64
	for _, s := range res.Ports {
		all = append(all, s.Values()...)
	}
	res.Mean = metrics.Mean(all)
	res.Min = metrics.Min(all)
	res.Max = metrics.Max(all)
	return res
}

// String summarizes the series.
func (r Fig11Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 11 — CNPs/s per bonded port during the 2:1 run\n")
	fmt.Fprintf(&sb, "mean %.0f, range [%.0f, %.0f] CNP/s across %d ports\n",
		r.Mean, r.Min, r.Max, len(r.Ports))
	return sb.String()
}

// CheckShape validates the paper's claim: a sustained kilo-CNP/s rate on
// every bonded port with bounded fluctuation (paper: ~15k ± 2.5k).
func (r Fig11Result) CheckShape() error {
	if r.Mean < 8e3 || r.Mean > 25e3 {
		return fmt.Errorf("fig11: mean CNP rate %.0f/s, want ≈15k", r.Mean)
	}
	if r.Min <= 0 {
		return fmt.Errorf("fig11: some port saw no CNPs; congestion should be universal at 2:1")
	}
	if r.Max > 3*r.Mean {
		return fmt.Errorf("fig11: max %.0f too spiky vs mean %.0f", r.Max, r.Mean)
	}
	return nil
}
