package harness

import (
	"fmt"

	"c4/internal/faults"
	"c4/internal/scenario"
)

// This file registers the fault-injection campaigns under
// "campaign/<name>": generated Monte-Carlo/grid sweeps of the fault model
// over topology scale and placement, each scoring C4D diagnosis
// precision/recall against the injected ground truth and the goodput
// delta from C4P steering versus pinned routes. They run through the same
// registry and worker-pool runner as the paper experiments
// (`c4sim -scenario 'campaign/*'`), and their aggregate numbers feed the
// bench-regression guard.

// registerCampaigns is invoked at the end of the main registration init
// (register.go) so campaigns list after the paper experiments.
func registerCampaigns() {
	for _, c := range faults.Campaigns() {
		c := c
		scenario.Register(scenario.Scenario{
			Name:        "campaign/" + c.Name,
			Group:       "campaign",
			Description: c.Description,
			Paper:       c.Paper,
			Slow:        true, // dozens of trials, two arms each
			Params: map[string]string{
				"trials":  fmt.Sprint(len(c.Gen(1))),
				"horizon": c.Horizon.String(),
			},
			Run: c.RunScenario,
			Summarize: func(r scenario.Result) string {
				res := r.(*faults.Result)
				agg := res.Aggregate()
				return fmt.Sprintf("P=%.2f R=%.2f rca=%.2f, steering %+.1f%%",
					agg.Precision(), agg.Recall(), agg.RCAAccuracy(), res.GoodputDelta()*100)
			},
			Metrics: func(r scenario.Result) map[string]float64 {
				return r.(*faults.Result).Metrics()
			},
		})
	}
}
