package harness

import (
	"testing"

	"c4/internal/sim"
	"c4/internal/topo"
)

func TestBenchIterCount(t *testing.T) {
	e := NewEnv(topo.MultiJobTestbed(8))
	b, err := StartBench(e, BenchConfig{
		Nodes: InterleavedNodes(4), Bytes: 64 << 20, Iters: 5,
		Provider: e.NewProvider(C4PStatic, 1), QPsPerConn: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Eng.Run()
	if b.Series.Len() != 5 {
		t.Fatalf("iterations = %d, want 5", b.Series.Len())
	}
	if b.MeanBusGbps() < 300 {
		t.Fatalf("mean busbw = %.1f", b.MeanBusGbps())
	}
}

func TestBenchDeadline(t *testing.T) {
	e := NewEnv(topo.MultiJobTestbed(8))
	b, err := StartBench(e, BenchConfig{
		Nodes: InterleavedNodes(4), Bytes: 512 << 20, Until: 3 * sim.Second,
		Provider: e.NewProvider(C4PStatic, 1), QPsPerConn: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Eng.RunUntil(10 * sim.Second)
	if b.Series.Len() == 0 {
		t.Fatal("no iterations before deadline")
	}
	// No new iterations start after the deadline; the in-flight one may
	// finish slightly past it.
	for _, s := range b.Series.Samples {
		if s.T > 3.5 {
			t.Fatalf("iteration completed at %.2fs, past the deadline", s.T)
		}
	}
}

func TestBenchStop(t *testing.T) {
	e := NewEnv(topo.MultiJobTestbed(8))
	b, err := StartBench(e, BenchConfig{
		Nodes: InterleavedNodes(4), Bytes: 512 << 20, Iters: 1000,
		Provider: e.NewProvider(C4PStatic, 1), QPsPerConn: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Eng.After(2*sim.Second, b.Stop)
	e.Eng.RunUntil(30 * sim.Second)
	count := b.Series.Len()
	if count == 0 || count >= 1000 {
		t.Fatalf("iterations after stop = %d", count)
	}
	e.Eng.RunUntil(60 * sim.Second)
	if b.Series.Len() != count {
		t.Fatal("bench kept running after Stop")
	}
}

func TestBenchValidation(t *testing.T) {
	e := NewEnv(topo.MultiJobTestbed(8))
	if _, err := StartBench(e, BenchConfig{
		Nodes:    nil,
		Provider: e.NewProvider(C4PStatic, 1),
	}); err == nil {
		t.Fatal("empty node list accepted")
	}
}
