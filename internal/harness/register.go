package harness

import (
	"fmt"

	"c4/internal/scenario"
)

// This file registers every experiment of the reproduction as a named
// scenario. Importing the harness package is enough to populate the
// registry; cmd/c4sim, cmd/c4bench and cmd/c4analyze enumerate and run
// experiments exclusively through it, and the harness tests prove that the
// parallel runner reproduces a serial sweep byte for byte.

func init() {
	reg := scenario.Register

	reg(scenario.Scenario{
		Name: "tableI", Group: "table",
		Description: "crash-cause distribution of a month of a 4096-GPU job",
		Paper:       "82.5% of failures are node-local and isolatable",
		Run:         func(c *scenario.Ctx) scenario.Result { return runTableI(c) },
		Summarize: func(r scenario.Result) string {
			t := r.(TableIResult)
			return fmt.Sprintf("%.1f%% local of %d crashes", t.LocalFraction()*100, t.Total)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			t := r.(TableIResult)
			return map[string]float64{"local_frac": t.LocalFraction(), "crashes": float64(t.Total)}
		},
	})
	reg(scenario.Scenario{
		Name: "tableIII", Group: "table",
		Description: "error-induced downtime before (manual ops) and after C4D",
		Paper:       "≈31% downtime before, ≈1.2% after (≈30x reduction)",
		Run:         func(c *scenario.Ctx) scenario.Result { return runTableIII(c) },
		Summarize: func(r scenario.Result) string {
			t := r.(TableIIIResult)
			return fmt.Sprintf("%.1f%% -> %.2f%% (%.0fx)",
				t.Jun.Total()*100, t.Dec.Total()*100, t.Jun.Total()/t.Dec.Total())
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			t := r.(TableIIIResult)
			return map[string]float64{"jun_downtime": t.Jun.Total(), "dec_downtime": t.Dec.Total()}
		},
	})
	reg(scenario.Scenario{
		Name: "fig3", Group: "figure", Slow: true,
		Description: "GPT-22B throughput vs ideal linear scaling, 16-512 GPUs on ECMP",
		Paper:       "loss vs ideal grows with scale, ≈30% at 512 GPUs",
		Run:         func(c *scenario.Ctx) scenario.Result { return runFig3(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(Fig3Result)
			n := len(f.GPUs) - 1
			return fmt.Sprintf("%.0f%% loss at %d GPUs", (1-f.Actual[n]/f.Ideal[n])*100, f.GPUs[n])
		},
	})
	reg(scenario.Scenario{
		Name: "fig9", Group: "figure",
		Description: "single-job allreduce busbw with/without dual-port balance, 16-128 GPUs",
		Paper:       "baseline stuck below line rate, C4P ≈360 Gbps (~+50%)",
		Run:         func(c *scenario.Ctx) scenario.Result { return runFig9(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(Fig9Result)
			n := len(f.GPUs) - 1
			return fmt.Sprintf("%.0f vs %.0f Gbps at %d GPUs", f.Baseline[n], f.C4P[n], f.GPUs[n])
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			f := r.(Fig9Result)
			n := len(f.GPUs) - 1
			return map[string]float64{"baseline_gbps": f.Baseline[n], "c4p_gbps": f.C4P[n]}
		},
	})
	for _, v := range []struct {
		name    string
		spines  int
		oversub string
		paper   string
	}{
		{"fig10a", 8, "1:1", "+70.3% aggregate gain over ECMP at 1:1"},
		{"fig10b", 4, "2:1", "+65.55% aggregate gain over ECMP at 2:1"},
	} {
		spines := v.spines
		reg(scenario.Scenario{
			Name: v.name, Group: "figure", Slow: true,
			Description: "8 concurrent cross-leaf allreduce jobs at " + v.oversub + " oversubscription",
			Paper:       v.paper,
			Params:      map[string]string{"spines": fmt.Sprint(spines), "oversub": v.oversub},
			Run:         func(c *scenario.Ctx) scenario.Result { return runFig10(c, spines) },
			Summarize: func(r scenario.Result) string {
				return fmt.Sprintf("%+.1f%% aggregate gain", r.(Fig10Result).AvgGain*100)
			},
		})
	}
	reg(scenario.Scenario{
		Name: "fig11", Group: "figure", Slow: true,
		Description: "per-bonded-port CNP rates during the 2:1 oversubscription run",
		Paper:       "≈15k CNPs/s per bonded port, fluctuating 12.5k-17.5k",
		Run:         func(c *scenario.Ctx) scenario.Result { return runFig11(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(Fig11Result)
			return fmt.Sprintf("mean %.0f CNP/s [%.0f, %.0f]", f.Mean, f.Min, f.Max)
		},
	})
	reg(scenario.Scenario{
		Name: "fig12", Group: "figure", Slow: true,
		Description: "mid-run link failure: static traffic engineering vs dynamic load balance",
		Paper:       "dynamic recovers near 7/8 ideal, +62.3% over static (301.5 vs 185.8 Gbps)",
		Run:         func(c *scenario.Ctx) scenario.Result { return runFig12(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(Fig12Result)
			return fmt.Sprintf("post-failure %.0f vs %.0f Gbps (%+.1f%%)",
				f.Static.PostFailAvg, f.Dynamic.PostFailAvg,
				(f.Dynamic.PostFailAvg/f.Static.PostFailAvg-1)*100)
		},
	})
	reg(scenario.Scenario{
		Name: "fig13", Group: "figure", Slow: true,
		Description: "leaf uplink bandwidth around the failure: survivor balance",
		Paper:       "static rehash concentrates orphaned traffic; dynamic spreads it evenly",
		Run:         func(c *scenario.Ctx) scenario.Result { return runFig13(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(Fig13Result)
			return fmt.Sprintf("survivor max/mean %.2f static vs %.2f dynamic",
				f.Static.PostImbalance, f.Dynamic.PostImbalance)
		},
	})
	reg(scenario.Scenario{
		Name: "fig14", Group: "figure", Slow: true,
		Description: "end-to-end throughput of three real-life training jobs with/without C4",
		Paper:       "+15.95% (GPT-22B) and +14.1% (Llama-7B); ≈0 for GA=16 GPT-175B",
		Run:         func(c *scenario.Ctx) scenario.Result { return runFig14(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(Fig14Result)
			return fmt.Sprintf("gains %+.1f%% / %+.1f%% / %+.1f%%",
				f.Gains[0]*100, f.Gains[1]*100, f.Gains[2]*100)
		},
	})
	reg(scenario.Scenario{
		Name: "pipeline", Group: "pipeline",
		Description: "live C4D detect -> steering isolate -> restart loop on an injected crash",
		Paper:       "detection within tens of seconds, recovery within minutes",
		Run:         func(c *scenario.Ctx) scenario.Result { return runPipeline(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(PipelineResult)
			return fmt.Sprintf("detect +%v, restart +%v", f.Detection, f.Downtime)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			f := r.(PipelineResult)
			return map[string]float64{
				"detection_s": f.Detection.Seconds(),
				"downtime_s":  f.Downtime.Seconds(),
			}
		},
	})
	reg(scenario.Scenario{
		Name: "nccltest", Group: "bench",
		Description: "nccl-tests-style ring allreduce microbenchmark (8 nodes, C4P)",
		Paper:       "planned paths sustain the ≈360 Gbps NVLink-bounded peak",
		Params:      map[string]string{"nodes": "8", "mib": "512", "iters": "8"},
		Run:         func(c *scenario.Ctx) scenario.Result { return runNCCLTest(c, DefaultNCCLTest()) },
		Summarize: func(r scenario.Result) string {
			return fmt.Sprintf("mean %.1f Gbps", r.(NCCLTestResult).MeanBusGbps())
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			return map[string]float64{"busbw_gbps": r.(NCCLTestResult).MeanBusGbps()}
		},
	})
	reg(scenario.Scenario{
		Name: "analyzer-demo", Group: "pipeline",
		Description: "offline C4 Analyzer replay localizing a mid-run Rx degradation",
		Paper:       "archived transport stats localize the faulty NIC post-hoc (Fig 5 workflow)",
		Run:         func(c *scenario.Ctx) scenario.Result { return runAnalyzerDemo(c) },
		Summarize: func(r scenario.Result) string {
			return fmt.Sprintf("%d findings", len(r.(AnalyzerDemoResult).Findings))
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			f := r.(AnalyzerDemoResult)
			return map[string]float64{
				"findings": float64(len(f.Findings)),
				"records":  float64(len(f.Recorder.Messages)),
			}
		},
	})
	reg(scenario.Scenario{
		Name: "ablation-plane", Group: "ablation",
		Description: "C4P with vs without the dual-port plane rule",
		Paper:       "dropping the rule reintroduces the rx-imbalance penalty",
		Run:         func(c *scenario.Ctx) scenario.Result { return runPlaneRuleAblation(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(PlaneRuleAblation)
			return fmt.Sprintf("%.0f with vs %.0f without", f.WithRule, f.WithoutRule)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			f := r.(PlaneRuleAblation)
			return map[string]float64{"with_rule_gbps": f.WithRule, "without_rule_gbps": f.WithoutRule}
		},
	})
	reg(scenario.Scenario{
		Name: "ablation-algo", Group: "ablation",
		Description: "ring vs tree allreduce across message sizes",
		Paper:       "tree wins small (latency-bound), ring wins large (bandwidth-bound)",
		Run:         func(c *scenario.Ctx) scenario.Result { return runAlgoCrossover(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(AlgoCrossover)
			return fmt.Sprintf("crossover between %.2f and %.0f MiB",
				f.SizesMiB[0], f.SizesMiB[len(f.SizesMiB)-1])
		},
	})
	reg(scenario.Scenario{
		Name: "ablation-ckpt", Group: "ablation",
		Description: "checkpoint-interval sweep under the December regime",
		Paper:       "post-checkpoint loss linear in interval, dominates at 160 min",
		Run:         func(c *scenario.Ctx) scenario.Result { return runCkptSweep(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(CkptSweep)
			n := len(f.IntervalsMin) - 1
			return fmt.Sprintf("%.2f%% post-ckpt at %.0f min", f.PostCkptPct[n], f.IntervalsMin[n])
		},
	})
	reg(scenario.Scenario{
		Name: "ablation-kappa", Group: "ablation",
		Description: "C4D comm-slow threshold sweep: false alarms vs detection",
		Paper:       "κ=2 detects 3x faults with ≈0 false alarms",
		Run:         func(c *scenario.Ctx) scenario.Result { return runKappaSweep(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(KappaSweep)
			return fmt.Sprintf("κ=2: %.0f%% det, %.1f%% FP", f.Detected[2]*100, f.FalsePositive[2]*100)
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			f := r.(KappaSweep)
			return map[string]float64{"kappa2_detected": f.Detected[2], "kappa2_fp": f.FalsePositive[2]}
		},
	})
	reg(scenario.Scenario{
		Name: "ablation-qp", Group: "ablation",
		Description: "ECMP baseline busbw vs QPs per connection",
		Paper:       "more hash draws per bond smooth collisions",
		Run:         func(c *scenario.Ctx) scenario.Result { return runQPSweep(c) },
		Summarize: func(r scenario.Result) string {
			f := r.(QPSweep)
			n := len(f.QPs) - 1
			return fmt.Sprintf("%.0f Gbps at %d QPs vs %.0f at %d",
				f.Baseline[0], f.QPs[0], f.Baseline[n], f.QPs[n])
		},
		Metrics: func(r scenario.Result) map[string]float64 {
			f := r.(QPSweep)
			n := len(f.QPs) - 1
			return map[string]float64{"qp1_gbps": f.Baseline[0], "qp_max_gbps": f.Baseline[n]}
		},
	})

	registerCampaigns()
	registerTenancy()
	registerOnline()
	registerPlan()
	registerScale()
}
