// Arrival traces: the replayable description of a multi-tenant workload.
// A trace is a time-ordered list of job arrivals (when, how many nodes,
// which model, how long the tenant keeps them); the engine in tenancy.go
// replays one against a shared fabric. Traces round-trip through JSON so a
// production arrival log can be replayed in simulation, and GenTrace
// derives one from a seeded Poisson arrival process so sweeps can
// synthesize load without hand-writing events.
package tenancy

import (
	"encoding/json"
	"fmt"
	"sort"

	"c4/internal/sim"
	"c4/internal/workload"
)

// TraceEvent is one job arrival.
type TraceEvent struct {
	// AtS is the arrival time in seconds of virtual time.
	AtS float64 `json:"at_s"`
	// Name labels the job in reports; defaults to "job<i>" when empty.
	Name string `json:"name,omitempty"`
	// Nodes is the job's size in compute nodes (8 GPUs each, TP8).
	Nodes int `json:"nodes"`
	// Model is a workload model short name ("gpt22b", "llama7b", ...);
	// empty defaults to gpt22b.
	Model string `json:"model,omitempty"`
	// DurationS is how long the tenant holds its nodes, in seconds; the
	// job departs (finishing its in-flight iteration) when it elapses.
	DurationS float64 `json:"duration_s"`
	// ComputeMS is the per-micro-batch compute time in milliseconds;
	// zero defaults to 200 ms. Smaller values make the job more
	// communication-bound and therefore more collision-sensitive.
	ComputeMS float64 `json:"compute_ms,omitempty"`
	// PP is the job's pipeline-parallel depth (must divide Nodes); 0 or 1
	// means pure data parallelism. Pipeline tenants put stage-to-stage
	// activation traffic on the shared fabric in addition to their DP
	// gradient sync — the mixed PP+DP load of the plan/* scenarios.
	PP int `json:"pp,omitempty"`
	// GA is the gradient-accumulation depth; 0 or 1 means one micro-batch
	// per optimizer step. GA>1 compiles to the full 1F1B schedule.
	GA int `json:"ga,omitempty"`
}

const defaultComputeMS = 200

// Spec materializes the workload the event describes on concrete nodes.
func (ev TraceEvent) Spec(nodes []int) workload.JobSpec {
	model := workload.GPT22B
	if ev.Model != "" {
		if m, ok := workload.ModelByName(ev.Model); ok {
			model = m
		}
	}
	ms := ev.ComputeMS
	if ms <= 0 {
		ms = defaultComputeMS
	}
	spec := workload.TenantSpec(ev.Name, model, nodes, sim.FromSeconds(ms/1e3))
	if ev.PP > 1 {
		par := workload.Parallelism{TP: 8, PP: ev.PP, DP: len(nodes) / ev.PP, GA: ev.GA}
		spec.Par = par.Normalize()
	} else if ev.GA > 1 {
		spec.Par.GA = ev.GA
	}
	return spec
}

// Trace is a replayable arrival schedule.
type Trace struct {
	Events []TraceEvent `json:"events"`
}

// Validate checks every event and reports the first problem.
func (t Trace) Validate() error {
	for i, ev := range t.Events {
		switch {
		case ev.AtS < 0:
			return fmt.Errorf("tenancy: event %d arrives at %v s, before the epoch", i, ev.AtS)
		case ev.Nodes <= 0:
			return fmt.Errorf("tenancy: event %d (%s) requests %d nodes", i, ev.Name, ev.Nodes)
		case ev.DurationS <= 0:
			return fmt.Errorf("tenancy: event %d (%s) has duration %v s", i, ev.Name, ev.DurationS)
		case ev.PP < 0 || ev.GA < 0:
			return fmt.Errorf("tenancy: event %d (%s) has negative pp/ga", i, ev.Name)
		case ev.PP > 1 && ev.Nodes%ev.PP != 0:
			return fmt.Errorf("tenancy: event %d (%s): pp %d does not divide %d nodes",
				i, ev.Name, ev.PP, ev.Nodes)
		}
		if ev.Model != "" {
			if _, ok := workload.ModelByName(ev.Model); !ok {
				return fmt.Errorf("tenancy: event %d (%s) names unknown model %q", i, ev.Name, ev.Model)
			}
		}
	}
	return nil
}

// normalized returns the trace sorted by arrival time (stable, so equal
// instants keep file order) with empty names filled in.
func (t Trace) normalized() Trace {
	out := Trace{Events: append([]TraceEvent(nil), t.Events...)}
	sort.SliceStable(out.Events, func(i, j int) bool { return out.Events[i].AtS < out.Events[j].AtS })
	for i := range out.Events {
		if out.Events[i].Name == "" {
			out.Events[i].Name = fmt.Sprintf("job%d", i)
		}
	}
	return out
}

// ParseTrace decodes and validates a JSON trace.
func ParseTrace(data []byte) (Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return Trace{}, fmt.Errorf("tenancy: bad trace JSON: %w", err)
	}
	if len(t.Events) == 0 {
		return Trace{}, fmt.Errorf("tenancy: trace has no events")
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

// JSON renders the trace in its canonical indented form.
func (t Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// ArrivalConfig parameterizes the synthetic Poisson workload generator.
type ArrivalConfig struct {
	// Window is the span over which arrivals are generated.
	Window sim.Time
	// MeanInterarrival is the Poisson process's mean gap between jobs.
	MeanInterarrival sim.Time
	// MeanDuration is the mean of the exponential job-duration draw;
	// durations are clamped to at least MinDuration.
	MeanDuration sim.Time
	// MinDuration floors the duration draw (default 10 s) so every job
	// lives long enough to complete iterations.
	MinDuration sim.Time
	// Sizes are the candidate node counts, drawn uniformly.
	Sizes []int
	// MaxJobs caps the trace length (0 = unlimited within Window).
	MaxJobs int
	// ComputeMS is the per-micro-batch compute time handed to every job.
	ComputeMS float64
}

// GenTrace draws a trace from the arrival process. Equal seeds yield
// byte-identical traces, so a generated workload is as replayable as a
// hand-written one.
func GenTrace(cfg ArrivalConfig, seed int64) Trace {
	r := sim.NewRand(seed)
	if cfg.Window <= 0 {
		return Trace{}
	}
	// A non-positive mean would make Exp draw 0 forever: the arrival clock
	// would never advance past Window and the loop would never terminate.
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = 5 * sim.Second
	}
	minDur := cfg.MinDuration
	if minDur <= 0 {
		minDur = 10 * sim.Second
	}
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = []int{2, 4}
	}
	var t Trace
	at := sim.Time(0)
	for {
		at += r.ExpTime(cfg.MeanInterarrival)
		if at > cfg.Window {
			break
		}
		if cfg.MaxJobs > 0 && len(t.Events) >= cfg.MaxJobs {
			break
		}
		dur := r.ExpTime(cfg.MeanDuration)
		if dur < minDur {
			dur = minDur
		}
		t.Events = append(t.Events, TraceEvent{
			AtS:       at.Seconds(),
			Nodes:     sizes[r.Intn(len(sizes))],
			DurationS: dur.Seconds(),
			ComputeMS: cfg.ComputeMS,
		})
	}
	return t
}
