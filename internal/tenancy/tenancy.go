// Package tenancy simulates a multi-tenant training cluster: N concurrent
// jobs arrive and depart under a replayable trace (hand-written JSON or a
// seeded Poisson process), are placed onto the shared fabric by a
// pluggable scheduling policy, and run their collective traffic through
// one shared netsim.Network — so cross-job link contention, the condition
// C4P's path steering exists to handle (HPCA'25 §II-D), is real rather
// than assumed.
//
// The engine reports per-job goodput, stretch (slowdown versus the job's
// compute-only iteration time) and cross-job fairness (Jain index), and
// backs the tenancy/* scenario family registered by internal/harness.
package tenancy

import (
	"fmt"
	"strings"

	"c4/internal/accl"
	"c4/internal/c4p"
	"c4/internal/cluster"
	"c4/internal/faults"
	"c4/internal/job"
	"c4/internal/metrics"
	"c4/internal/netsim"
	"c4/internal/sched"
	"c4/internal/sim"
	"c4/internal/topo"
)

// Arm selects the path-steering policy a run compares.
type Arm int

const (
	// ArmPinnedECMP is the no-coordination baseline: QPs hash onto spine
	// uplinks at connect time and stay pinned there.
	ArmPinnedECMP Arm = iota
	// ArmC4PStatic is C4P's global traffic engineering at connect time
	// only (the "c4p" provider of the other CLIs).
	ArmC4PStatic
	// ArmC4P is C4P in dynamic mode with adaptive QP weights: globally
	// planned paths plus message-completion-time load balance.
	ArmC4P
)

func (a Arm) String() string {
	switch a {
	case ArmC4PStatic:
		return "c4p-gte"
	case ArmC4P:
		return "c4p-dynamic"
	}
	return "ecmp"
}

// Config describes one multi-tenant simulation.
type Config struct {
	// Spines per rail: 8 = the 1:1 fabric, 4 = 2:1 oversubscription.
	Spines int
	// FabricNodes sizes the cluster (default 16: two leaf groups of 8).
	FabricNodes int
	// Policy places arriving jobs (packed / spread / random).
	Policy sched.Policy
	// Arm selects the steering policy shared by every tenant.
	Arm Arm
	// QPsPerConn is the per-connection QP fanout (default 2).
	QPsPerConn int
	// Horizon ends the simulation; jobs still running are measured up to
	// it.
	Horizon sim.Time
	// Seed roots every RNG stream of the run.
	Seed int64
	// Trace is the arrival schedule to replay.
	Trace Trace
}

// JobStat is one tenant's outcome.
type JobStat struct {
	Name  string
	Nodes []int // placement, ring order; nil when never admitted

	Arrive sim.Time // trace arrival
	Start  sim.Time // admission (= Arrive unless queued)
	End    sim.Time // departure, completion, or the horizon

	Admitted bool
	Rejected bool // larger than the whole fabric: can never run

	Iters   int
	AvgIter sim.Time
	// Goodput is training progress in samples/second of occupancy.
	Goodput float64
	// Stretch is AvgIter over the job's compute-only iteration time:
	// 1.0 would be free communication, larger means fabric time (and
	// collisions) dominate.
	Stretch float64
}

// PerNodeGoodput normalizes goodput by job size, the unit Jain fairness
// is computed over (a 2x job legitimately gets 2x the samples/sec).
func (s JobStat) PerNodeGoodput() float64 {
	if len(s.Nodes) == 0 {
		return 0
	}
	return s.Goodput / float64(len(s.Nodes))
}

// RunResult aggregates one multi-tenant simulation.
type RunResult struct {
	Arm     Arm
	Policy  sched.Policy
	Spines  int
	Horizon sim.Time
	Jobs    []JobStat

	Admitted      int
	Completed     int // departed (or finished) before the horizon
	NeverAdmitted int // queued until the end
	Rejected      int
	BeyondHorizon int // trace events arriving after the horizon: never simulated

	// AggGoodput sums samples/sec across jobs that made progress.
	AggGoodput float64
	// Jain is Jain's fairness index over per-node goodputs (1 = equal).
	Jain float64
	// MeanStretch averages stretch over jobs that made progress.
	MeanStretch float64

	// Fired is the engine's event count (scenario.EventCounter).
	Fired uint64
}

// Run replays the trace against a fresh fabric and returns the aggregate.
func Run(cfg Config) RunResult {
	if cfg.Spines <= 0 {
		cfg.Spines = 8
	}
	if cfg.FabricNodes <= 0 {
		cfg.FabricNodes = 16
	}
	if cfg.QPsPerConn <= 0 {
		cfg.QPsPerConn = 2
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = sim.Minute
	}

	eng := sim.NewEngine()
	spec := topo.MultiJobTestbed(cfg.Spines)
	spec.Nodes = cfg.FabricNodes
	fab := topo.MustNew(spec)
	net := netsim.New(eng, fab, netsim.DefaultConfig())

	var prov accl.PathProvider
	adaptive := false
	switch cfg.Arm {
	case ArmC4P:
		prov = c4p.NewMaster(fab, c4p.Dynamic, sim.NewRand(cfg.Seed))
		adaptive = true
	case ArmC4PStatic:
		prov = c4p.NewMaster(fab, c4p.Static, sim.NewRand(cfg.Seed))
	default:
		prov = faults.PinnedProvider{PathProvider: accl.NewECMPProvider(fab, sim.NewRand(cfg.Seed))}
	}

	st := &runState{
		cfg: cfg, eng: eng, net: net, prov: prov, adaptive: adaptive,
		sch:   sched.New(fab),
		cl:    cluster.NewCluster(cfg.FabricNodes, spec.GPUsPerNode, 0),
		place: sim.NewRand(cfg.Seed + 1),
	}
	trace := cfg.Trace.normalized()
	st.stats = make([]JobStat, len(trace.Events))
	st.events = trace.Events
	st.jobs = make([]*job.Job, len(trace.Events))
	for i, ev := range trace.Events {
		i, ev := i, ev
		st.stats[i] = JobStat{Name: ev.Name, Arrive: sim.FromSeconds(ev.AtS)}
		eng.Schedule(sim.FromSeconds(ev.AtS), func() { st.arrive(i) })
	}
	eng.RunUntil(cfg.Horizon)

	res := RunResult{
		Arm: cfg.Arm, Policy: cfg.Policy, Spines: cfg.Spines,
		Horizon: cfg.Horizon, Fired: eng.Fired(),
	}
	for i := range st.stats {
		st.finalize(i, cfg.Horizon)
		s := st.stats[i]
		switch {
		case s.Rejected:
			res.Rejected++
		case !s.Admitted && s.Arrive > cfg.Horizon:
			// The arrival event never fired; the job didn't queue, it
			// simply lies beyond the simulated window.
			res.BeyondHorizon++
		case !s.Admitted:
			res.NeverAdmitted++
		default:
			res.Admitted++
			if s.End < cfg.Horizon {
				res.Completed++
			}
		}
		res.Jobs = append(res.Jobs, s)
	}
	var perNode []float64
	var stretchSum float64
	progressed := 0
	for _, s := range res.Jobs {
		if s.Iters == 0 {
			continue
		}
		progressed++
		res.AggGoodput += s.Goodput
		perNode = append(perNode, s.PerNodeGoodput())
		stretchSum += s.Stretch
	}
	if progressed > 0 {
		res.MeanStretch = stretchSum / float64(progressed)
	}
	res.Jain = metrics.Jain(perNode)
	return res
}

// runState is the engine's mutable bookkeeping during a replay.
type runState struct {
	cfg      Config
	eng      *sim.Engine
	net      *netsim.Network
	prov     accl.PathProvider
	adaptive bool
	sch      *sched.Scheduler
	cl       *cluster.Cluster
	place    *sim.Rand

	events []TraceEvent
	stats  []JobStat
	jobs   []*job.Job
	queue  []int // arrived jobs waiting for capacity, FIFO
}

// arrive admits the job if it fits, otherwise queues it (strict FIFO, so
// a big job at the head is never starved by small late arrivals).
func (st *runState) arrive(i int) {
	if st.events[i].Nodes > st.cfg.FabricNodes {
		st.stats[i].Rejected = true
		return
	}
	st.queue = append(st.queue, i)
	st.drainQueue()
}

// drainQueue admits from the queue head while capacity allows.
func (st *runState) drainQueue() {
	for len(st.queue) > 0 {
		head := st.queue[0]
		if st.events[head].Nodes > st.sch.Free() {
			return
		}
		st.queue = st.queue[1:]
		st.admit(head)
	}
}

func (st *runState) admit(i int) {
	ev := st.events[i]
	nodes, err := st.sch.AllocatePolicy(ev.Nodes, st.cfg.Policy, st.place)
	if err != nil {
		panic(fmt.Sprintf("tenancy: admit %s: %v", ev.Name, err))
	}
	for _, n := range nodes {
		if !st.cl.Healthy(n) {
			panic(fmt.Sprintf("tenancy: scheduler handed out unhealthy node %d", n))
		}
	}
	st.stats[i].Admitted = true
	st.stats[i].Start = st.eng.Now()
	st.stats[i].Nodes = nodes

	j, err := job.New(job.Config{
		Engine: st.eng, Net: st.net, Provider: st.prov,
		Rails:           []int{0},
		Rand:            sim.NewRand(st.cfg.Seed + int64(i+1)*1_000_003),
		Spec:            ev.Spec(nodes),
		QPsPerConn:      st.cfg.QPsPerConn,
		AdaptiveWeights: st.adaptive,
	})
	if err != nil {
		panic(fmt.Sprintf("tenancy: job %s: %v", ev.Name, err))
	}
	st.jobs[i] = j
	j.Run(1<<30, func(job.Report) { st.depart(i) })
	st.eng.After(sim.FromSeconds(ev.DurationS), j.Stop)
}

// depart records the tenant's exit and hands its nodes to the queue.
func (st *runState) depart(i int) {
	st.finalize(i, st.eng.Now())
	st.jobs[i].Close()
	st.sch.Release(st.stats[i].Nodes)
	st.drainQueue()
}

// finalize freezes a job's measurements as of `end`. Jobs still running
// at the horizon are finalized there; departed jobs were finalized by
// depart and are left untouched.
func (st *runState) finalize(i int, end sim.Time) {
	s := &st.stats[i]
	if !s.Admitted || s.End != 0 {
		return
	}
	s.End = end
	iters := st.jobs[i].IterTimes()
	s.Iters = len(iters)
	if s.Iters == 0 {
		return
	}
	var sum sim.Time
	for _, d := range iters {
		sum += d
	}
	s.AvgIter = sum / sim.Time(s.Iters)
	spec := st.events[i].Spec(s.Nodes)
	// Ratio guards the zero-occupancy and zero-compute corners (a job
	// finalized the instant it was admitted): the metrics must stay 0,
	// never NaN/Inf, because they aggregate into c4bench -json baselines.
	s.Goodput = metrics.Ratio(float64(s.Iters)*spec.SamplesPerIter, (s.End - s.Start).Seconds())
	s.Stretch = metrics.Ratio(float64(s.AvgIter), float64(spec.IterComputeTime()))
}

// String renders the per-job table plus the aggregate line.
func (r RunResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tenancy — arm %v, placement %v, %d spines, horizon %v\n",
		r.Arm, r.Policy, r.Spines, r.Horizon)
	rows := make([][]string, 0, len(r.Jobs))
	for _, s := range r.Jobs {
		state := "ok"
		switch {
		case s.Rejected:
			state = "rejected"
		case !s.Admitted && s.Arrive > r.Horizon:
			state = "future"
		case !s.Admitted:
			state = "queued"
		case s.End >= r.Horizon:
			state = "running"
		}
		rows = append(rows, []string{
			s.Name,
			fmt.Sprint(len(s.Nodes)),
			fmt.Sprintf("%.1fs", s.Arrive.Seconds()),
			fmt.Sprintf("%.1fs", s.Start.Seconds()),
			fmt.Sprintf("%.1fs", s.End.Seconds()),
			fmt.Sprint(s.Iters),
			fmt.Sprintf("%.1f", s.Goodput),
			fmt.Sprintf("%.2f", s.Stretch),
			state,
		})
	}
	sb.WriteString(metrics.Table(
		[]string{"job", "nodes", "arrive", "start", "end", "iters", "goodput", "stretch", "state"}, rows))
	fmt.Fprintf(&sb, "admitted %d (completed %d, queued-out %d, rejected %d, beyond-horizon %d), aggregate %.1f samples/s, Jain %.3f, mean stretch %.2f\n",
		r.Admitted, r.Completed, r.NeverAdmitted, r.Rejected, r.BeyondHorizon, r.AggGoodput, r.Jain, r.MeanStretch)
	return sb.String()
}
