package tenancy

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"c4/internal/scenario"
	"c4/internal/sched"
	"c4/internal/sim"
)

func TestGenTraceDeterministicAndRoundTrips(t *testing.T) {
	cfg := ArrivalConfig{
		Window:           60 * sim.Second,
		MeanInterarrival: 5 * sim.Second,
		MeanDuration:     20 * sim.Second,
		Sizes:            []int{2, 4, 8},
		ComputeMS:        150,
	}
	a := GenTrace(cfg, 7)
	b := GenTrace(cfg, 7)
	if len(a.Events) == 0 {
		t.Fatal("generator produced no arrivals")
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := b.JSON()
	if string(aj) != string(bj) {
		t.Fatal("equal seeds generated different traces")
	}
	if cj, _ := GenTrace(cfg, 8).JSON(); string(cj) == string(aj) {
		t.Fatal("different seeds generated identical traces")
	}
	parsed, err := ParseTrace(aj)
	if err != nil {
		t.Fatalf("generated trace does not re-parse: %v", err)
	}
	if pj, _ := parsed.JSON(); string(pj) != string(aj) {
		t.Fatal("trace did not round-trip through JSON")
	}
}

func TestParseTraceRejectsBadEvents(t *testing.T) {
	cases := map[string]string{
		"no events":     `{"events": []}`,
		"zero nodes":    `{"events": [{"at_s": 0, "nodes": 0, "duration_s": 10}]}`,
		"zero duration": `{"events": [{"at_s": 0, "nodes": 2, "duration_s": 0}]}`,
		"bad arrival":   `{"events": [{"at_s": -1, "nodes": 2, "duration_s": 10}]}`,
		"bad model":     `{"events": [{"at_s": 0, "nodes": 2, "duration_s": 10, "model": "gpt9000"}]}`,
		"not json":      `{"events": [`,
	}
	for name, in := range cases {
		if _, err := ParseTrace([]byte(in)); err == nil {
			t.Errorf("%s: ParseTrace accepted %s", name, in)
		}
	}
}

func TestQueueingFIFOAndRejection(t *testing.T) {
	res := Run(Config{
		Horizon: 60 * sim.Second,
		Seed:    1,
		Trace: Trace{Events: []TraceEvent{
			{AtS: 0, Name: "big", Nodes: 12, DurationS: 10},
			{AtS: 1, Name: "queued", Nodes: 8, DurationS: 10},
			{AtS: 2, Name: "huge", Nodes: 32, DurationS: 10},
		}},
	})
	byName := map[string]JobStat{}
	for _, s := range res.Jobs {
		byName[s.Name] = s
	}
	big, queued, huge := byName["big"], byName["queued"], byName["huge"]
	if !big.Admitted || big.Start != big.Arrive {
		t.Fatalf("big not admitted immediately: %+v", big)
	}
	if !queued.Admitted {
		t.Fatalf("queued job never admitted: %+v", queued)
	}
	if queued.Start < big.End {
		t.Fatalf("queued started at %v before big departed at %v", queued.Start, big.End)
	}
	if !huge.Rejected || res.Rejected != 1 {
		t.Fatalf("oversized job not rejected: %+v (rejected=%d)", huge, res.Rejected)
	}
	if big.Iters == 0 || queued.Iters == 0 {
		t.Fatalf("admitted jobs made no progress: big=%d queued=%d iters", big.Iters, queued.Iters)
	}
}

func TestSharedFabricContention(t *testing.T) {
	// Two spread jobs on the shared network must each run slower than a
	// job alone — if cross-job contention weren't real, the whole tenancy
	// layer would be theater.
	solo := Run(Config{
		Spines: 4, Policy: sched.PolicySpread, Arm: ArmPinnedECMP,
		Horizon: 30 * sim.Second, Seed: 1,
		Trace: uniformTrace(1, 4, 60, 150),
	})
	pair := Run(Config{
		Spines: 4, Policy: sched.PolicySpread, Arm: ArmPinnedECMP,
		Horizon: 30 * sim.Second, Seed: 1,
		Trace: uniformTrace(2, 4, 60, 150),
	})
	if solo.Admitted != 1 || pair.Admitted != 2 {
		t.Fatalf("admissions: solo=%d pair=%d", solo.Admitted, pair.Admitted)
	}
	soloPerJob := solo.AggGoodput
	pairPerJob := pair.AggGoodput / 2
	if pairPerJob >= soloPerJob {
		t.Fatalf("no contention visible: %.1f samples/s per job alone vs %.1f sharing", soloPerJob, pairPerJob)
	}
}

// TestReplayDeterminism is the acceptance gate for the scenario family:
// every tenancy scenario must render byte-identically across repeated
// same-seed runs and between a serial (Workers=1) and a parallel
// (Workers=8) execution of its internal sweep.
func TestReplayDeterminism(t *testing.T) {
	runs := map[string]func(*scenario.Ctx) scenario.Result{
		"collision-sweep":   func(c *scenario.Ctx) scenario.Result { return RunCollisionSweep(c) },
		"churn":             func(c *scenario.Ctx) scenario.Result { return RunChurn(c) },
		"placement-compare": func(c *scenario.Ctx) scenario.Result { return RunPlacementCompare(c) },
	}
	for name, run := range runs {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) string {
				ctx := scenario.NewCtx(1)
				ctx.Workers = workers
				res := run(ctx)
				if err := res.CheckShape(); err != nil {
					t.Fatalf("shape check: %v\n%s", err, res)
				}
				return res.String()
			}
			serial := render(1)
			if again := render(1); again != serial {
				t.Fatalf("repeated same-seed run diverged:\n%s\nvs\n%s", serial, again)
			}
			if parallel := render(8); parallel != serial {
				t.Fatalf("parallel run diverged from serial:\n%s\nvs\n%s", parallel, serial)
			}
			if serial == "" || !strings.Contains(serial, "tenancy") {
				t.Fatalf("suspicious rendering:\n%s", serial)
			}
		})
	}
}

// TestCollisionSweepC4PWins pins the headline acceptance criterion
// directly: C4P beats pinned ECMP on aggregate goodput at >= 2 jobs.
func TestCollisionSweepC4PWins(t *testing.T) {
	res := RunCollisionSweep(scenario.NewCtx(1))
	for i, n := range res.JobCounts {
		if n < 2 {
			continue
		}
		if res.C4P[i].AggGoodput <= res.ECMP[i].AggGoodput {
			t.Errorf("%d jobs: C4P %.1f <= ECMP %.1f samples/s",
				n, res.C4P[i].AggGoodput, res.ECMP[i].AggGoodput)
		}
	}
}

func TestGenTraceDegenerateConfigs(t *testing.T) {
	// A zero mean interarrival must not spin forever (Exp(0) draws 0).
	tr := GenTrace(ArrivalConfig{Window: 30 * sim.Second}, 1)
	if len(tr.Events) == 0 {
		t.Fatal("defaulted config generated no arrivals")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("defaulted trace invalid: %v", err)
	}
	if got := GenTrace(ArrivalConfig{}, 1); len(got.Events) != 0 {
		t.Fatalf("zero window generated %d events, want none", len(got.Events))
	}
}

func TestBeyondHorizonArrivalsNotCountedAsQueued(t *testing.T) {
	res := Run(Config{
		Horizon: 30 * sim.Second,
		Seed:    1,
		Trace: Trace{Events: []TraceEvent{
			{AtS: 0, Name: "now", Nodes: 2, DurationS: 10},
			{AtS: 120, Name: "later", Nodes: 2, DurationS: 10},
		}},
	})
	if res.Admitted != 1 || res.BeyondHorizon != 1 || res.NeverAdmitted != 0 {
		t.Fatalf("admitted=%d beyond=%d queued-out=%d, want 1/1/0",
			res.Admitted, res.BeyondHorizon, res.NeverAdmitted)
	}
	if !strings.Contains(res.String(), "future") {
		t.Fatalf("rendering should mark the unarrived job as future:\n%s", res)
	}
}

func TestArmProviders(t *testing.T) {
	// All three arms must run the same workload; the static and dynamic
	// C4P arms must both beat pinned ECMP under spread contention.
	goodput := map[Arm]float64{}
	for _, arm := range []Arm{ArmPinnedECMP, ArmC4PStatic, ArmC4P} {
		res := Run(Config{
			Spines: 4, Policy: sched.PolicySpread, Arm: arm,
			Horizon: 30 * sim.Second, Seed: 1,
			Trace: uniformTrace(2, 4, 60, 150),
		})
		if res.Admitted != 2 {
			t.Fatalf("arm %v admitted %d jobs", arm, res.Admitted)
		}
		goodput[arm] = res.AggGoodput
	}
	if goodput[ArmC4PStatic] <= goodput[ArmPinnedECMP] || goodput[ArmC4P] <= goodput[ArmPinnedECMP] {
		t.Fatalf("C4P arms should beat pinned ECMP: %v", goodput)
	}
}

func TestChurnExercisesLifecycle(t *testing.T) {
	res := RunChurn(scenario.NewCtx(1))
	if err := res.CheckShape(); err != nil {
		t.Fatalf("churn shape: %v\n%s", err, res)
	}
	if res.Completed == 0 {
		t.Fatal("no job departed: churn without churn")
	}
	if res.Fired() == 0 {
		t.Fatal("event counter not wired")
	}
}

// TestDegenerateRunsProduceFiniteMetrics guards the c4bench -json path:
// empty traces and zero-duration tenants must yield finite, serializable
// aggregates (Jain/goodput/stretch are 0, never NaN).
func TestDegenerateRunsProduceFiniteMetrics(t *testing.T) {
	runs := []RunResult{
		Run(Config{Horizon: 10 * sim.Second, Seed: 1, Trace: Trace{}}),
		Run(Config{Horizon: 10 * sim.Second, Seed: 1, Trace: Trace{Events: []TraceEvent{
			{AtS: 1, Name: "blink", Nodes: 2, DurationS: 0, ComputeMS: 150},
		}}}),
	}
	for i, res := range runs {
		for name, v := range map[string]float64{
			"agg_goodput": res.AggGoodput, "jain": res.Jain, "mean_stretch": res.MeanStretch,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("run %d: %s = %v", i, name, v)
			}
		}
		if _, err := json.Marshal(map[string]float64{
			"agg": res.AggGoodput, "jain": res.Jain, "stretch": res.MeanStretch,
		}); err != nil {
			t.Fatalf("run %d: metrics not serializable: %v", i, err)
		}
		for _, s := range res.Jobs {
			if math.IsNaN(s.Goodput) || math.IsNaN(s.Stretch) {
				t.Fatalf("run %d: job %s leaked NaN: %+v", i, s.Name, s)
			}
		}
	}
}

func TestPipelineTenantRunsThePlannedSchedule(t *testing.T) {
	// A PP2/GA2 tenant next to a pure-DP one: both must progress, and the
	// pipeline tenant's spec must compile to stages rather than pure DP.
	trace := Trace{Events: []TraceEvent{
		{AtS: 0, Name: "pipe", Nodes: 4, DurationS: 30, PP: 2, GA: 2, ComputeMS: 150},
		{AtS: 0.5, Name: "flat", Nodes: 4, DurationS: 30, ComputeMS: 150},
	}}
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	spec := trace.Events[0].Spec([]int{0, 1, 2, 3})
	if spec.Par.PP != 2 || spec.Par.DP != 2 || spec.Par.GA != 2 {
		t.Fatalf("pipeline spec parallelism = %v, want TP8/PP2/DP2/GA2", spec.Par)
	}
	res := Run(Config{Horizon: 40 * sim.Second, Seed: 3, Trace: trace})
	for _, s := range res.Jobs {
		if !s.Admitted || s.Iters == 0 {
			t.Fatalf("%s made no progress: %+v", s.Name, s)
		}
	}
}

func TestTraceValidateRejectsBadParallelism(t *testing.T) {
	cases := map[string]TraceEvent{
		"pp not dividing": {AtS: 0, Nodes: 3, DurationS: 5, PP: 2},
		"negative pp":     {AtS: 0, Nodes: 4, DurationS: 5, PP: -1},
		"negative ga":     {AtS: 0, Nodes: 4, DurationS: 5, GA: -2},
	}
	for name, ev := range cases {
		if err := (Trace{Events: []TraceEvent{ev}}).Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, ev)
		}
	}
}
