// The tenancy/* scenario family: parameterized multi-tenant experiments
// registered by internal/harness and executed through the scenario
// registry. Each scenario derives every engine and RNG from its Ctx seed,
// so the parallel runner reproduces a serial sweep byte for byte.
package tenancy

import (
	"fmt"
	"strings"

	"c4/internal/metrics"
	"c4/internal/scenario"
	"c4/internal/sched"
	"c4/internal/sim"
)

// uniformTrace builds n identical jobs of the given size arriving shortly
// after the epoch and holding their nodes past the horizon — the fixed
// concurrent-jobs load of the collision and placement experiments.
func uniformTrace(n, nodes int, durationS, computeMS float64) Trace {
	var t Trace
	for i := 0; i < n; i++ {
		t.Events = append(t.Events, TraceEvent{
			AtS:       float64(i) * 0.5,
			Name:      fmt.Sprintf("job%d", i),
			Nodes:     nodes,
			DurationS: durationS,
			ComputeMS: computeMS,
		})
	}
	return t
}

// CollisionSweepResult compares pinned ECMP against C4P as concurrent
// jobs pile onto the shared 2:1 fabric.
type CollisionSweepResult struct {
	JobCounts []int
	// ECMP and C4P hold one RunResult per job count, same order.
	ECMP []RunResult
	C4P  []RunResult
}

// Fired implements scenario.EventCounter.
func (r *CollisionSweepResult) Fired() uint64 {
	var n uint64
	for _, rr := range r.ECMP {
		n += rr.Fired
	}
	for _, rr := range r.C4P {
		n += rr.Fired
	}
	return n
}

// RunCollisionSweep executes the sweep: job count x steering arm on the
// 2:1 oversubscribed fabric with spread placement, so every ring edge
// crosses the spine layer and jobs genuinely collide.
func RunCollisionSweep(ctx *scenario.Ctx) *CollisionSweepResult {
	res := &CollisionSweepResult{JobCounts: []int{1, 2, 4}}
	res.ECMP = make([]RunResult, len(res.JobCounts))
	res.C4P = make([]RunResult, len(res.JobCounts))
	type cell struct {
		count int
		arm   Arm
		out   *RunResult
	}
	var cells []cell
	for i, n := range res.JobCounts {
		cells = append(cells,
			cell{n, ArmPinnedECMP, &res.ECMP[i]},
			cell{n, ArmC4P, &res.C4P[i]})
	}
	scenario.ForEach(len(cells), ctx.Workers, func(i int) {
		c := cells[i]
		*c.out = Run(Config{
			Spines:  4,
			Policy:  sched.PolicySpread,
			Arm:     c.arm,
			Horizon: 45 * sim.Second,
			Seed:    ctx.Seed + int64(c.count)*101,
			Trace:   uniformTrace(c.count, 4, 60, 150),
		})
	})
	ctx.Track(res)
	return res
}

// Gain reports C4P's aggregate-goodput gain over ECMP at job count index i.
func (r *CollisionSweepResult) Gain(i int) float64 {
	if r.ECMP[i].AggGoodput <= 0 {
		return 0
	}
	return r.C4P[i].AggGoodput/r.ECMP[i].AggGoodput - 1
}

func (r *CollisionSweepResult) String() string {
	var sb strings.Builder
	sb.WriteString("tenancy/collision-sweep — concurrent 4-node jobs, spread placement, 2:1 fabric\n")
	rows := make([][]string, len(r.JobCounts))
	for i, n := range r.JobCounts {
		rows[i] = []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.1f", r.ECMP[i].AggGoodput),
			fmt.Sprintf("%.1f", r.C4P[i].AggGoodput),
			fmt.Sprintf("%+.1f%%", r.Gain(i)*100),
			fmt.Sprintf("%.3f", r.ECMP[i].Jain),
			fmt.Sprintf("%.3f", r.C4P[i].Jain),
			fmt.Sprintf("%.2f", r.ECMP[i].MeanStretch),
			fmt.Sprintf("%.2f", r.C4P[i].MeanStretch),
		}
	}
	sb.WriteString(metrics.Table([]string{
		"jobs", "ecmp", "c4p", "gain", "jain(ecmp)", "jain(c4p)", "stretch(ecmp)", "stretch(c4p)"}, rows))
	return sb.String()
}

// CheckShape asserts the multi-tenant half of the paper's claim: path
// steering pays off exactly when jobs share the fabric — C4P must beat
// pinned ECMP on aggregate goodput at every count >= 2.
func (r *CollisionSweepResult) CheckShape() error {
	for i, n := range r.JobCounts {
		for _, rr := range [2]RunResult{r.ECMP[i], r.C4P[i]} {
			if rr.Admitted != n {
				return fmt.Errorf("collision-sweep: %d jobs, arm %v admitted %d", n, rr.Arm, rr.Admitted)
			}
			for _, s := range rr.Jobs {
				if s.Iters == 0 {
					return fmt.Errorf("collision-sweep: %d jobs, arm %v: %s made no progress", n, rr.Arm, s.Name)
				}
			}
		}
		if n >= 2 && r.Gain(i) <= 0 {
			return fmt.Errorf("collision-sweep: %d jobs: C4P gain %.1f%%, want > 0 (steering must win under contention)",
				n, r.Gain(i)*100)
		}
	}
	return nil
}

// Metrics feeds the bench-regression guard.
func (r *CollisionSweepResult) Metrics() map[string]float64 {
	out := map[string]float64{}
	for i, n := range r.JobCounts {
		out[fmt.Sprintf("ecmp_goodput_%dj", n)] = r.ECMP[i].AggGoodput
		out[fmt.Sprintf("c4p_goodput_%dj", n)] = r.C4P[i].AggGoodput
	}
	out["gain_max_jobs"] = r.Gain(len(r.JobCounts) - 1)
	return out
}

// ChurnResult is the Poisson arrive/depart experiment.
type ChurnResult struct {
	TraceJobs int
	RunResult
}

// RunChurn replays a generated Poisson trace on the 1:1 fabric under C4P
// with packed placement: jobs arrive, queue when the cluster is full,
// depart mid-run, and the freed nodes immediately seat the queue head —
// the lifecycle churn that exposed the netsim admission/cancel bugs.
func RunChurn(ctx *scenario.Ctx) *ChurnResult {
	trace := GenTrace(ArrivalConfig{
		Window:           60 * sim.Second,
		MeanInterarrival: 6 * sim.Second,
		MeanDuration:     25 * sim.Second,
		Sizes:            []int{2, 4},
		MaxJobs:          12,
		ComputeMS:        150,
	}, ctx.Seed)
	res := &ChurnResult{
		TraceJobs: len(trace.Events),
		RunResult: Run(Config{
			Spines:  8,
			Policy:  sched.PolicyPacked,
			Arm:     ArmC4P,
			Horizon: 90 * sim.Second,
			Seed:    ctx.Seed,
			Trace:   trace,
		}),
	}
	ctx.Track(res)
	return res
}

// Fired implements scenario.EventCounter.
func (r *ChurnResult) Fired() uint64 { return r.RunResult.Fired }

func (r *ChurnResult) String() string {
	return fmt.Sprintf("tenancy/churn — %d trace arrivals\n%s", r.TraceJobs, r.RunResult.String())
}

// CheckShape asserts the churn run exercised real multi-tenant lifecycle:
// several tenants admitted, several departures observed, everyone who got
// nodes made progress, and nobody was starved outright.
func (r *ChurnResult) CheckShape() error {
	if r.Admitted < 3 {
		return fmt.Errorf("churn: only %d jobs admitted, want >= 3", r.Admitted)
	}
	if r.Completed < 2 {
		return fmt.Errorf("churn: only %d departures before the horizon, want >= 2", r.Completed)
	}
	if r.Rejected > 0 {
		return fmt.Errorf("churn: %d jobs rejected on a fabric that fits every size", r.Rejected)
	}
	for _, s := range r.Jobs {
		if s.Admitted && s.Iters == 0 {
			return fmt.Errorf("churn: %s held nodes but made no progress", s.Name)
		}
	}
	if r.Jain <= 0 || r.Jain > 1+1e-9 {
		return fmt.Errorf("churn: Jain index %.3f out of (0,1]", r.Jain)
	}
	return nil
}

// Metrics feeds the bench-regression guard.
func (r *ChurnResult) Metrics() map[string]float64 {
	return map[string]float64{
		"admitted":     float64(r.Admitted),
		"completed":    float64(r.Completed),
		"agg_goodput":  r.AggGoodput,
		"jain":         r.Jain,
		"mean_stretch": r.MeanStretch,
	}
}

// PlacementCompareResult runs one fixed workload under each placement
// policy on the oversubscribed fabric.
type PlacementCompareResult struct {
	Policies []sched.Policy
	Runs     []RunResult
}

// Fired implements scenario.EventCounter.
func (r *PlacementCompareResult) Fired() uint64 {
	var n uint64
	for _, rr := range r.Runs {
		n += rr.Fired
	}
	return n
}

// RunPlacementCompare replays three concurrent 4-node jobs under every
// placement policy with pinned ECMP on the 2:1 fabric — the setting where
// placement alone decides how much traffic fights over the spines.
func RunPlacementCompare(ctx *scenario.Ctx) *PlacementCompareResult {
	res := &PlacementCompareResult{Policies: sched.Policies()}
	res.Runs = make([]RunResult, len(res.Policies))
	scenario.ForEach(len(res.Policies), ctx.Workers, func(i int) {
		res.Runs[i] = Run(Config{
			Spines:  4,
			Policy:  res.Policies[i],
			Arm:     ArmPinnedECMP,
			Horizon: 40 * sim.Second,
			Seed:    ctx.Seed + int64(i)*7,
			Trace:   uniformTrace(3, 4, 60, 150),
		})
	})
	ctx.Track(res)
	return res
}

func (r *PlacementCompareResult) String() string {
	var sb strings.Builder
	sb.WriteString("tenancy/placement-compare — 3 concurrent 4-node jobs, pinned ECMP, 2:1 fabric\n")
	rows := make([][]string, len(r.Policies))
	for i, rr := range r.Runs {
		rows[i] = []string{
			r.Policies[i].String(),
			fmt.Sprintf("%.1f", rr.AggGoodput),
			fmt.Sprintf("%.3f", rr.Jain),
			fmt.Sprintf("%.2f", rr.MeanStretch),
		}
	}
	sb.WriteString(metrics.Table([]string{"placement", "agg goodput", "jain", "mean stretch"}, rows))
	return sb.String()
}

// CheckShape asserts §III-B's premise: topology-aware packing beats the
// spine-crossing spread placement.
func (r *PlacementCompareResult) CheckShape() error {
	byPolicy := map[sched.Policy]RunResult{}
	for i, p := range r.Policies {
		byPolicy[p] = r.Runs[i]
		if r.Runs[i].Admitted != 3 {
			return fmt.Errorf("placement-compare: %v admitted %d jobs, want 3", p, r.Runs[i].Admitted)
		}
	}
	packed, spread := byPolicy[sched.PolicyPacked], byPolicy[sched.PolicySpread]
	if packed.AggGoodput <= spread.AggGoodput {
		return fmt.Errorf("placement-compare: packed %.1f <= spread %.1f samples/s, want packing to win",
			packed.AggGoodput, spread.AggGoodput)
	}
	return nil
}

// Metrics feeds the bench-regression guard.
func (r *PlacementCompareResult) Metrics() map[string]float64 {
	out := map[string]float64{}
	for i, p := range r.Policies {
		out[p.String()+"_goodput"] = r.Runs[i].AggGoodput
	}
	return out
}
