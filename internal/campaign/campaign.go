// Package campaign is the scale-out experiment runner of the C4
// reproduction: manifest-driven Monte-Carlo campaigns sharded across
// processes (or machines) with a deterministic merge.
//
// A manifest is a small versioned JSON document naming fault-campaign
// families (internal/faults), seed ranges, trial counts and knob grids.
// Expansion turns it into a numbered trial list — deterministically, so
// every process holding the same manifest agrees on what trial i is and
// which seed it runs under. A shard executes the stride i, i+n, i+2n, ...
// of that list on the existing faults.Trial machinery and emits a
// partial-result artifact stamped with the manifest's content hash; the
// reducer merges partials into output byte-identical to a serial
// single-shard run, computing mean/stddev and seeded bootstrap confidence
// intervals over the per-trial statistics. Interrupted shards resume from
// a per-shard checkpoint file, re-running only missing trials.
//
// Where the scenario registry reproduces the paper's fixed experiments
// and internal/faults generates dozens of trials in one process, this
// package is the 10k-trial substrate: fleet-scale statistics with
// confidence intervals instead of single seeds.
package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"c4/internal/faults"
	"c4/internal/sim"
)

// Version is the manifest schema version this package reads and writes.
const Version = 1

// Manifest is the versioned experiment description. Everything a run
// produces derives deterministically from this document plus the shard
// coordinates, which is why its content hash stamps every artifact.
type Manifest struct {
	// Version pins the schema; readers refuse other versions.
	Version int `json:"version"`
	// Name labels the experiment in artifacts and reports.
	Name string `json:"name"`
	// Seed is the root seed: the default campaign seed when an entry has
	// no seed range, and the seed of the merge-time bootstrap RNG.
	// Defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// Entries are the campaign instantiations; expansion concatenates
	// them in order.
	Entries []Entry `json:"entries"`
}

// Entry instantiates one fault-campaign family across a seed range and a
// knob grid.
type Entry struct {
	// Family is the faults campaign short name ("mixed", "flap-sweep", ...).
	Family string `json:"family"`
	// Trials overrides the family's sample count (sampled families only;
	// 0 keeps the family default). This is the 10k knob.
	Trials int `json:"trials,omitempty"`
	// HorizonS overrides the campaign horizon in virtual seconds (0 keeps
	// the family default). Shorter horizons buy trial volume.
	HorizonS float64 `json:"horizon_s,omitempty"`
	// Seeds runs the instantiation once per seed in [From, From+Count).
	// Nil means one instance at the manifest seed.
	Seeds *SeedRange `json:"seeds,omitempty"`
	// Knobs is the override grid; the entry expands once per combination
	// (cartesian product in listed order).
	Knobs Knobs `json:"knobs,omitempty"`
}

// SeedRange is a contiguous range of campaign seeds.
type SeedRange struct {
	From  int64 `json:"from"`
	Count int   `json:"count"`
}

// Knobs are the trial-field override axes. An empty axis keeps the
// generated value; a non-empty axis multiplies the grid.
type Knobs struct {
	// Placement overrides the placement policy: "spread" or "packed".
	Placement []string `json:"placement,omitempty"`
	// Spines overrides the spine count (8 = 1:1 fabric, 4 = 2:1).
	Spines []int `json:"spines,omitempty"`
	// JobN overrides the job size in nodes.
	JobN []int `json:"job_n,omitempty"`
}

// axes returns the grid as (label, apply) combinations, cartesian over
// the specified axes in listed order. An all-empty Knobs yields the
// single identity combination with an empty label.
func (k Knobs) axes() []knobCombo {
	combos := []knobCombo{{}}
	expand := func(n int, f func(i int, c knobCombo) knobCombo) {
		if n == 0 {
			return
		}
		next := make([]knobCombo, 0, len(combos)*n)
		for _, c := range combos {
			for i := 0; i < n; i++ {
				next = append(next, f(i, c))
			}
		}
		combos = next
	}
	expand(len(k.Placement), func(i int, c knobCombo) knobCombo {
		pl, _ := ParsePlacement(k.Placement[i])
		c.placement = &pl
		c.label = appendLabel(c.label, "placement="+k.Placement[i])
		return c
	})
	expand(len(k.Spines), func(i int, c knobCombo) knobCombo {
		s := k.Spines[i]
		c.spines = &s
		c.label = appendLabel(c.label, fmt.Sprintf("spines=%d", s))
		return c
	})
	expand(len(k.JobN), func(i int, c knobCombo) knobCombo {
		n := k.JobN[i]
		c.jobN = &n
		c.label = appendLabel(c.label, fmt.Sprintf("job_n=%d", n))
		return c
	})
	return combos
}

type knobCombo struct {
	label     string
	placement *faults.Placement
	spines    *int
	jobN      *int
}

func appendLabel(label, term string) string {
	if label == "" {
		return term
	}
	return label + "," + term
}

// ParsePlacement maps the manifest placement knob onto faults.Placement.
func ParsePlacement(s string) (faults.Placement, error) {
	switch s {
	case "spread":
		return faults.Spread, nil
	case "packed":
		return faults.Packed, nil
	}
	return 0, fmt.Errorf("campaign: unknown placement %q (want spread or packed)", s)
}

// ReadManifest parses, normalizes and validates a manifest document.
func ReadManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("campaign: bad manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadManifest reads a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	m, err := ReadManifest(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil
}

// Validate checks the manifest against the schema and the campaign
// registry, applying defaults (Seed, seed ranges) in place so equal
// manifests normalize to equal hashes.
func (m *Manifest) Validate() error {
	if m.Version != Version {
		return fmt.Errorf("campaign: manifest version %d, this build reads version %d", m.Version, Version)
	}
	if m.Name == "" {
		return fmt.Errorf("campaign: manifest has no name")
	}
	if m.Seed == 0 {
		m.Seed = 1
	}
	if len(m.Entries) == 0 {
		return fmt.Errorf("campaign: manifest %s has no entries", m.Name)
	}
	for i := range m.Entries {
		e := &m.Entries[i]
		c, ok := faults.ByName(e.Family)
		if !ok {
			return fmt.Errorf("campaign: entry %d: unknown family %q (have: %s)",
				i, e.Family, strings.Join(familyNames(), ", "))
		}
		if e.Trials < 0 {
			return fmt.Errorf("campaign: entry %d (%s): negative trial count %d", i, e.Family, e.Trials)
		}
		if e.Trials > 0 && c.GenN == nil {
			return fmt.Errorf("campaign: entry %d: family %s is a fixed grid; it does not take a trial-count override",
				i, e.Family)
		}
		if e.HorizonS < 0 {
			return fmt.Errorf("campaign: entry %d (%s): negative horizon %v", i, e.Family, e.HorizonS)
		}
		if e.Seeds == nil {
			e.Seeds = &SeedRange{From: m.Seed, Count: 1}
		}
		if e.Seeds.Count <= 0 {
			return fmt.Errorf("campaign: entry %d (%s): seed range count %d, want >= 1", i, e.Family, e.Seeds.Count)
		}
		for _, p := range e.Knobs.Placement {
			if _, err := ParsePlacement(p); err != nil {
				return fmt.Errorf("campaign: entry %d (%s): %w", i, e.Family, err)
			}
		}
		for _, s := range e.Knobs.Spines {
			if s <= 0 {
				return fmt.Errorf("campaign: entry %d (%s): spines %d, want > 0", i, e.Family, s)
			}
		}
		for _, n := range e.Knobs.JobN {
			if n <= 0 {
				return fmt.Errorf("campaign: entry %d (%s): job_n %d, want > 0", i, e.Family, n)
			}
		}
	}
	return nil
}

func familyNames() []string {
	var names []string
	for _, c := range faults.Campaigns() {
		names = append(names, c.Name)
	}
	return names
}

// Hash is the manifest's content hash: SHA-256 over the canonical JSON
// encoding of the normalized document. Every artifact a run emits is
// stamped with it, and the reducer refuses to merge partials whose
// hashes disagree — results from different experiments (or different
// revisions of one) must never silently mix. Hashing the normalized
// struct rather than the file bytes makes the stamp robust to
// whitespace and key order.
func (m *Manifest) Hash() string {
	b, err := json.Marshal(m)
	if err != nil {
		// Manifest is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("campaign: hashing manifest: %v", err))
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(b))
}

// TrialSpec is one expanded, numbered trial: everything a shard needs to
// execute it and everything the merge needs to attribute it.
type TrialSpec struct {
	// Index is the global 0-based trial number; shard i of n owns the
	// indices congruent to i mod n.
	Index int
	// Family and Seed name the campaign instance the trial came from;
	// Knobs is the override-combination label ("" when the entry has no
	// knob grid).
	Family string
	Seed   int64
	Knobs  string
	// TrialSeed is the derived per-trial root seed, identical to what an
	// in-process faults.Campaign.Run of the same instance would use.
	TrialSeed int64
	// Horizon is the resolved virtual-time horizon.
	Horizon sim.Time
	// Trial is the fully resolved fault trial.
	Trial faults.Trial
}

// Run executes the trial's two arms on the faults machinery.
func (ts TrialSpec) Run() faults.TrialResult {
	return faults.RunTrial(ts.Trial, ts.TrialSeed, ts.Horizon)
}

// Expand turns the manifest into its numbered trial list. The expansion
// is pure: entries in order, seeds ascending, knob combinations in
// listed order, trials in generation order — so every holder of an
// equal-hash manifest derives the identical list.
func (m *Manifest) Expand() ([]TrialSpec, error) {
	var out []TrialSpec
	for ei, e := range m.Entries {
		fam, ok := faults.ByName(e.Family)
		if !ok {
			return nil, fmt.Errorf("campaign: entry %d: unknown family %q", ei, e.Family)
		}
		horizon := fam.Horizon
		if e.HorizonS > 0 {
			horizon = sim.FromSeconds(e.HorizonS)
		}
		for s := 0; s < e.Seeds.Count; s++ {
			seed := e.Seeds.From + int64(s)
			trials, err := fam.Trials(seed, e.Trials)
			if err != nil {
				return nil, fmt.Errorf("campaign: entry %d: %w", ei, err)
			}
			for _, combo := range e.Knobs.axes() {
				for ti, tr := range trials {
					if combo.placement != nil {
						tr.Placement = *combo.placement
					}
					if combo.spines != nil {
						tr.Spines = *combo.spines
					}
					if combo.jobN != nil {
						tr.JobN = *combo.jobN
					}
					out = append(out, TrialSpec{
						Index:     len(out),
						Family:    e.Family,
						Seed:      seed,
						Knobs:     combo.label,
						TrialSeed: faults.TrialSeed(seed, ti),
						Horizon:   horizon,
						Trial:     tr,
					})
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: manifest %s expands to zero trials", m.Name)
	}
	return out, nil
}
