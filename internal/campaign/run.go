package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"c4/internal/faults"
	"c4/internal/scenario"
)

// Record is one completed trial: the attribution fields from the
// expansion plus the two-arm measurement.
type Record struct {
	Index  int                `json:"index"`
	Family string             `json:"family"`
	Seed   int64              `json:"seed"`
	Knobs  string             `json:"knobs,omitempty"`
	Result faults.TrialResult `json:"result"`
}

// record builds the Record for a completed TrialSpec.
func record(ts TrialSpec, res faults.TrialResult) Record {
	return Record{Index: ts.Index, Family: ts.Family, Seed: ts.Seed, Knobs: ts.Knobs, Result: res}
}

// Partial is one shard's result artifact. The manifest hash stamps which
// experiment it belongs to; Trials is the full expanded count so the
// reducer can prove completeness without re-expanding.
type Partial struct {
	Version      int      `json:"version"`
	Name         string   `json:"name"`
	ManifestHash string   `json:"manifest_hash"`
	Seed         int64    `json:"seed"`
	Trials       int      `json:"trials"`
	Shard        int      `json:"shard"`
	Of           int      `json:"of"`
	Records      []Record `json:"records"`
}

// WriteJSON emits the canonical (index-sorted, indented) form.
func (p *Partial) WriteJSON(w io.Writer) error {
	sort.Slice(p.Records, func(i, j int) bool { return p.Records[i].Index < p.Records[j].Index })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPartial parses a shard artifact.
func ReadPartial(r io.Reader) (*Partial, error) {
	var p Partial
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("campaign: bad partial: %w", err)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("campaign: partial version %d, this build reads version %d", p.Version, Version)
	}
	return &p, nil
}

// LoadPartial reads a shard artifact file.
func LoadPartial(path string) (*Partial, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	p, err := ReadPartial(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

// ShardRun executes one shard of a manifest: the trials whose index is
// congruent to Shard mod Of, on a bounded worker pool, with optional
// checkpoint-based resumption.
type ShardRun struct {
	Manifest *Manifest
	// Shard/Of are the stride coordinates; Of >= 1, 0 <= Shard < Of.
	Shard, Of int
	// Workers bounds the trial pool (0 = GOMAXPROCS). Concurrency cannot
	// affect results: every trial builds isolated engines from its own
	// derived seed.
	Workers int
	// Checkpoint is a per-shard JSONL progress file ("" disables). Each
	// completed trial appends one line as it finishes, so an interrupted
	// run re-executes only the missing trials. The file must not be
	// shared between shards.
	Checkpoint string
	// Log receives one-line progress notes (nil discards).
	Log io.Writer
}

func (sr *ShardRun) logf(format string, args ...any) {
	if sr.Log != nil {
		fmt.Fprintf(sr.Log, format+"\n", args...)
	}
}

// Run expands the manifest, restores checkpointed progress, executes the
// missing trials of this shard and returns the completed Partial. The
// returned artifact is independent of worker count, checkpoint state and
// interruption history: a resumed run emits the same bytes a clean run
// would.
func (sr *ShardRun) Run() (*Partial, error) {
	if sr.Of < 1 || sr.Shard < 0 || sr.Shard >= sr.Of {
		return nil, fmt.Errorf("campaign: shard %d/%d out of range", sr.Shard, sr.Of)
	}
	specs, err := sr.Manifest.Expand()
	if err != nil {
		return nil, err
	}
	hash := sr.Manifest.Hash()
	var mine []TrialSpec
	for _, ts := range specs {
		if ts.Index%sr.Of == sr.Shard {
			mine = append(mine, ts)
		}
	}

	done := map[int]Record{}
	if sr.Checkpoint != "" {
		done, err = loadCheckpoint(sr.Checkpoint, hash, sr.Shard, sr.Of)
		if err != nil {
			return nil, err
		}
	}
	var todo []TrialSpec
	for _, ts := range mine {
		if _, ok := done[ts.Index]; !ok {
			todo = append(todo, ts)
		}
	}
	sr.logf("campaign %s shard %d/%d: %d/%d trials owned, %d from checkpoint, %d to run",
		sr.Manifest.Name, sr.Shard, sr.Of, len(mine), len(specs), len(done), len(todo))

	var ckpt *checkpointWriter
	if sr.Checkpoint != "" && len(todo) > 0 {
		ckpt, err = openCheckpoint(sr.Checkpoint, hash, sr.Shard, sr.Of, len(done) > 0)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}

	recs := make([]Record, len(todo))
	scenario.ForEach(len(todo), sr.Workers, func(i int) {
		recs[i] = record(todo[i], todo[i].Run())
		if ckpt != nil {
			// Appended on completion, so checkpoint line order is
			// scheduling-dependent; the checkpoint is a set, and the
			// Partial below re-sorts by index.
			ckpt.Append(recs[i])
		}
	})
	if ckpt != nil {
		if err := ckpt.Close(); err != nil {
			return nil, err
		}
	}

	p := &Partial{
		Version: Version, Name: sr.Manifest.Name, ManifestHash: hash,
		Seed: sr.Manifest.Seed, Trials: len(specs), Shard: sr.Shard, Of: sr.Of,
	}
	for _, r := range done {
		p.Records = append(p.Records, r)
	}
	p.Records = append(p.Records, recs...)
	sort.Slice(p.Records, func(i, j int) bool { return p.Records[i].Index < p.Records[j].Index })
	return p, nil
}

// checkpointHeader is the first line of a checkpoint file: the identity
// of the run the progress belongs to.
type checkpointHeader struct {
	Version      int    `json:"version"`
	ManifestHash string `json:"manifest_hash"`
	Shard        int    `json:"shard"`
	Of           int    `json:"of"`
}

// loadCheckpoint restores completed records from a checkpoint file,
// refusing one written for a different manifest or shard. A missing file
// is an empty checkpoint. A torn final line (the process died mid-write)
// is tolerated: parsing stops there and the trial re-runs.
func loadCheckpoint(path, hash string, shard, of int) (map[int]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[int]Record{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return map[int]Record{}, nil // empty file: no progress
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: bad header: %w", path, err)
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("campaign: checkpoint %s: version %d, this build reads version %d", path, hdr.Version, Version)
	}
	if hdr.ManifestHash != hash {
		return nil, fmt.Errorf("campaign: checkpoint %s was written for manifest %s, not %s; delete it to start over",
			path, hdr.ManifestHash, hash)
	}
	if hdr.Shard != shard || hdr.Of != of {
		return nil, fmt.Errorf("campaign: checkpoint %s belongs to shard %d/%d, not %d/%d",
			path, hdr.Shard, hdr.Of, shard, of)
	}
	done := map[int]Record{}
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			break // torn tail from an interrupted write; re-run from here
		}
		done[r.Index] = r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	return done, nil
}

// checkpointWriter appends completed-trial lines, one synced line per
// record, safe for the concurrent trial pool.
type checkpointWriter struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// openCheckpoint opens the progress file for appending, writing the
// identity header first when the file is fresh.
func openCheckpoint(path, hash string, shard, of int, resuming bool) (*checkpointWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	w := &checkpointWriter{f: f}
	if !resuming {
		st, err := f.Stat()
		if err == nil && st.Size() == 0 {
			hdr, _ := json.Marshal(checkpointHeader{Version: Version, ManifestHash: hash, Shard: shard, Of: of})
			if _, err := f.Write(append(hdr, '\n')); err != nil {
				f.Close()
				return nil, fmt.Errorf("campaign: checkpoint: %w", err)
			}
		}
	}
	return w, nil
}

// Append records one completed trial. Errors are sticky and surfaced by
// Close: a failing checkpoint must not kill the in-flight trial pool,
// but it must fail the run before the partial is trusted.
func (w *checkpointWriter) Append(r Record) {
	line, err := json.Marshal(r)
	if err != nil {
		err = fmt.Errorf("campaign: checkpoint: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		w.err = fmt.Errorf("campaign: checkpoint: %w", err)
		return
	}
	// One fsync per trial: a trial is minutes of simulated work, the
	// sync is what makes kill -9 lose at most the in-flight trials.
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("campaign: checkpoint: %w", err)
	}
}

// Close flushes and reports the sticky error. Safe to call twice (the
// deferred close after an explicit one).
func (w *checkpointWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = fmt.Errorf("campaign: checkpoint: %w", err)
		}
		w.f = nil
	}
	return w.err
}
