package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"c4/internal/faults"
	"c4/internal/metrics"
	"c4/internal/sim"
)

// Bootstrap parameters of the merge summary. Fixed, not knobs: merged
// artifacts are byte-compared across shardings and re-runs, so the
// resample count and confidence level are part of the format.
const (
	bootResamples = 1000
	bootConf      = 0.95
)

// Stat is one summary statistic over per-trial values: the first two
// moments plus a seeded percentile-bootstrap confidence interval on the
// mean. N is the number of trials the value is defined for.
type Stat struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CILo float64 `json:"ci_lo"`
	CIHi float64 `json:"ci_hi"`
}

// Summary is the fleet-scale statistics block of a merged campaign:
// distributional statistics over per-trial values, plus the exact
// count-based aggregate the in-process campaign reports, so the two
// views can be cross-checked.
type Summary struct {
	// Precision is over trials that emitted at least one finding;
	// Recall over trials with at least one relevant injected fault;
	// RCAAccuracy over trials with at least one classified finding;
	// GoodputDelta over trials with a relevant fault (the irrelevant-
	// fault trials would only dilute the steering signal — the same
	// rule faults.Result.GoodputDelta applies).
	Precision    Stat `json:"precision"`
	Recall       Stat `json:"recall"`
	RCAAccuracy  Stat `json:"rca_accuracy"`
	GoodputDelta Stat `json:"goodput_delta"`
	// Aggregate is the exact pooled view: confusion-count ratios and the
	// goodput-sum delta, as an in-process faults campaign would report.
	Aggregate map[string]float64 `json:"aggregate"`
}

// Merged is the reducer's output artifact: every record of the
// experiment in trial order plus the summary. Byte-identical for any
// sharding of the same manifest.
type Merged struct {
	Version      int      `json:"version"`
	Name         string   `json:"name"`
	ManifestHash string   `json:"manifest_hash"`
	Seed         int64    `json:"seed"`
	Trials       int      `json:"trials"`
	Summary      Summary  `json:"summary"`
	Records      []Record `json:"records"`
}

// WriteJSON emits the canonical indented form.
func (m *Merged) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadMerged parses a merged artifact.
func ReadMerged(r io.Reader) (*Merged, error) {
	var m Merged
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("campaign: bad merged report: %w", err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("campaign: merged report version %d, this build reads version %d", m.Version, Version)
	}
	return &m, nil
}

// LoadMerged reads a merged artifact file.
func LoadMerged(path string) (*Merged, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	m, err := ReadMerged(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil
}

// Merge combines shard partials into the experiment's merged artifact.
// It refuses mismatched manifest hashes, duplicate trial indices and
// gaps: the output either covers every expanded trial exactly once or
// the merge fails. The result is a pure function of the record set —
// partials from a 1-shard run and a 4-shard run of the same manifest
// merge to identical bytes.
func Merge(partials []*Partial) (*Merged, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("campaign: nothing to merge")
	}
	ref := partials[0]
	byIndex := map[int]Record{}
	for _, p := range partials {
		if p.ManifestHash != ref.ManifestHash {
			return nil, fmt.Errorf("campaign: manifest hash mismatch: shard %d/%d ran %s, shard %d/%d ran %s",
				ref.Shard, ref.Of, ref.ManifestHash, p.Shard, p.Of, p.ManifestHash)
		}
		if p.Trials != ref.Trials || p.Name != ref.Name || p.Seed != ref.Seed {
			return nil, fmt.Errorf("campaign: partial metadata mismatch: %s/%d trials/seed %d vs %s/%d trials/seed %d",
				ref.Name, ref.Trials, ref.Seed, p.Name, p.Trials, p.Seed)
		}
		for _, r := range p.Records {
			if dup, ok := byIndex[r.Index]; ok {
				return nil, fmt.Errorf("campaign: trial %d appears in more than one partial (%s and %s)",
					r.Index, dup.Result.ID, r.Result.ID)
			}
			if r.Index < 0 || r.Index >= ref.Trials {
				return nil, fmt.Errorf("campaign: trial index %d outside manifest's %d trials", r.Index, ref.Trials)
			}
			byIndex[r.Index] = r
		}
	}
	if len(byIndex) != ref.Trials {
		var missing []string
		for i := 0; i < ref.Trials && len(missing) < 10; i++ {
			if _, ok := byIndex[i]; !ok {
				missing = append(missing, fmt.Sprint(i))
			}
		}
		return nil, fmt.Errorf("campaign: %d of %d trials missing (first: %s); run the absent shards or resume from their checkpoints",
			ref.Trials-len(byIndex), ref.Trials, strings.Join(missing, ", "))
	}
	records := make([]Record, 0, ref.Trials)
	for i := 0; i < ref.Trials; i++ {
		records = append(records, byIndex[i])
	}
	return &Merged{
		Version: Version, Name: ref.Name, ManifestHash: ref.ManifestHash,
		Seed: ref.Seed, Trials: ref.Trials,
		Summary: summarize(records, ref.Seed),
		Records: records,
	}, nil
}

// MergeHash verifies the partials against a manifest before merging —
// the belt-and-braces path the CLI uses when the manifest file is at
// hand.
func MergeHash(m *Manifest, partials []*Partial) (*Merged, error) {
	hash := m.Hash()
	for _, p := range partials {
		if p.ManifestHash != hash {
			return nil, fmt.Errorf("campaign: shard %d/%d ran manifest %s, not %s (%s)",
				p.Shard, p.Of, p.ManifestHash, hash, m.Name)
		}
	}
	return Merge(partials)
}

// summarize computes the statistics block. All inputs arrive in trial
// order and every bootstrap draws from one RNG seeded by the manifest
// seed, consumed in fixed metric order — determinism is load-bearing:
// merged artifacts are byte-compared in CI.
func summarize(records []Record, seed int64) Summary {
	var precision, recall, rcaAcc, delta []float64
	var agg faults.Score
	var base, steered float64
	for _, r := range records {
		sc := r.Result.Score
		agg = agg.Add(sc)
		if sc.Events > 0 {
			precision = append(precision, sc.Precision())
		}
		if sc.Relevant > 0 {
			recall = append(recall, sc.Recall())
			delta = append(delta, r.Result.Delta())
			base += r.Result.BaseGoodput
			steered += r.Result.SteeredGoodput
		}
		if sc.RCAEvents > 0 {
			rcaAcc = append(rcaAcc, sc.RCAAccuracy())
		}
	}
	// The delta is steered/base - 1 when any relevant goodput was
	// measured, 0 otherwise — mirroring faults.Result.GoodputDelta.
	aggDelta := 0.0
	if base > 0 {
		aggDelta = steered/base - 1
	}
	r := sim.NewRand(seed*1_000_003 + 17)
	stat := func(xs []float64) Stat {
		mean, std := metrics.MeanStd(xs)
		lo, hi := metrics.BootstrapCI(xs, bootResamples, bootConf, r)
		return Stat{N: len(xs), Mean: mean, Std: std, CILo: lo, CIHi: hi}
	}
	return Summary{
		Precision:    stat(precision),
		Recall:       stat(recall),
		RCAAccuracy:  stat(rcaAcc),
		GoodputDelta: stat(delta),
		Aggregate: map[string]float64{
			"precision":     agg.Precision(),
			"recall":        agg.Recall(),
			"rca_accuracy":  agg.RCAAccuracy(),
			"goodput_delta": aggDelta,
		},
	}
}

// Check validates a merged artifact's internal consistency: complete
// trial coverage in order, finite summary statistics, well-formed
// intervals. It is the CI gate run by `c4campaign check`.
func (m *Merged) Check() error {
	if m.Trials != len(m.Records) {
		return fmt.Errorf("campaign: merged report has %d records for %d trials", len(m.Records), m.Trials)
	}
	for i, r := range m.Records {
		if r.Index != i {
			return fmt.Errorf("campaign: record %d has index %d; merged reports are trial-ordered", i, r.Index)
		}
		if r.Result.BaseIters <= 0 || r.Result.SteeredIters <= 0 {
			return fmt.Errorf("campaign: trial %d (%s) made no progress (base %d, steered %d iters)",
				r.Index, r.Result.ID, r.Result.BaseIters, r.Result.SteeredIters)
		}
	}
	for name, st := range map[string]Stat{
		"precision": m.Summary.Precision, "recall": m.Summary.Recall,
		"rca_accuracy": m.Summary.RCAAccuracy, "goodput_delta": m.Summary.GoodputDelta,
	} {
		for field, v := range map[string]float64{
			"mean": st.Mean, "std": st.Std, "ci_lo": st.CILo, "ci_hi": st.CIHi,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("campaign: summary %s.%s is non-finite", name, field)
			}
		}
		if st.CILo > st.CIHi {
			return fmt.Errorf("campaign: summary %s interval inverted (%v > %v)", name, st.CILo, st.CIHi)
		}
		if st.N > 0 && (st.Mean < st.CILo-3*st.Std-1e-9 || st.Mean > st.CIHi+3*st.Std+1e-9) {
			return fmt.Errorf("campaign: summary %s mean %v far outside its interval (%v, %v)",
				name, st.Mean, st.CILo, st.CIHi)
		}
	}
	for k, v := range m.Summary.Aggregate {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("campaign: aggregate %s is non-finite", k)
		}
	}
	return nil
}

// String renders the merged report headline: one line per summary metric
// plus the aggregate, the human-facing view `c4campaign merge` prints.
func (m *Merged) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign %s — %d trials, manifest %s, seed %d\n",
		m.Name, m.Trials, shortHash(m.ManifestHash), m.Seed)
	rows := [][]string{
		statRow("precision", m.Summary.Precision),
		statRow("recall", m.Summary.Recall),
		statRow("rca_accuracy", m.Summary.RCAAccuracy),
		statRow("goodput_delta", m.Summary.GoodputDelta),
	}
	sb.WriteString(metrics.Table([]string{"metric", "n", "mean", "std", "95% CI"}, rows))
	agg := m.Summary.Aggregate
	fmt.Fprintf(&sb, "aggregate: precision %.3f, recall %.3f, rca %.3f, steering goodput %+.1f%%\n",
		agg["precision"], agg["recall"], agg["rca_accuracy"], agg["goodput_delta"]*100)
	return sb.String()
}

func statRow(name string, st Stat) []string {
	return []string{
		name, fmt.Sprint(st.N),
		fmt.Sprintf("%.4f", st.Mean), fmt.Sprintf("%.4f", st.Std),
		fmt.Sprintf("[%.4f, %.4f]", st.CILo, st.CIHi),
	}
}

func shortHash(h string) string {
	if len(h) > 19 {
		return h[:19]
	}
	return h
}
