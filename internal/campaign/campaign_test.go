package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"c4/internal/faults"
)

// testManifest parses a manifest literal, failing the test on error.
func testManifest(t *testing.T, src string) *Manifest {
	t.Helper()
	m, err := ReadManifest(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	return m
}

// tinyManifest is the workhorse of these tests: a short-horizon sampled
// campaign small enough that sharded runs finish in test time.
const tinyManifest = `{
  "version": 1,
  "name": "tiny",
  "seed": 1,
  "entries": [{"family": "mixed", "trials": 5, "horizon_s": 90}]
}`

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"bad-version", `{"version": 2, "name": "x", "entries": [{"family": "mixed"}]}`, "version 2"},
		{"no-name", `{"version": 1, "entries": [{"family": "mixed"}]}`, "no name"},
		{"no-entries", `{"version": 1, "name": "x", "entries": []}`, "no entries"},
		{"unknown-family", `{"version": 1, "name": "x", "entries": [{"family": "nope"}]}`, "unknown family"},
		{"unknown-field", `{"version": 1, "name": "x", "trialz": 3, "entries": [{"family": "mixed"}]}`, "unknown field"},
		{"negative-trials", `{"version": 1, "name": "x", "entries": [{"family": "mixed", "trials": -1}]}`, "negative trial count"},
		{"fixed-grid-override", `{"version": 1, "name": "x", "entries": [{"family": "flap-sweep", "trials": 9}]}`, "fixed grid"},
		{"negative-horizon", `{"version": 1, "name": "x", "entries": [{"family": "mixed", "horizon_s": -2}]}`, "negative horizon"},
		{"empty-seed-range", `{"version": 1, "name": "x", "entries": [{"family": "mixed", "seeds": {"from": 1, "count": 0}}]}`, "seed range"},
		{"bad-placement", `{"version": 1, "name": "x", "entries": [{"family": "mixed", "knobs": {"placement": ["diagonal"]}}]}`, "unknown placement"},
		{"bad-spines", `{"version": 1, "name": "x", "entries": [{"family": "mixed", "knobs": {"spines": [0]}}]}`, "spines"},
		{"bad-job-n", `{"version": 1, "name": "x", "entries": [{"family": "mixed", "knobs": {"job_n": [-4]}}]}`, "job_n"},
	}
	for _, tc := range cases {
		_, err := ReadManifest(strings.NewReader(tc.src))
		if err == nil {
			t.Fatalf("%s: ReadManifest accepted invalid manifest", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestManifestHashNormalized checks the content hash sees the normalized
// document: formatting and key order are irrelevant, while any semantic
// difference changes the stamp.
func TestManifestHashNormalized(t *testing.T) {
	a := testManifest(t, tinyManifest)
	b := testManifest(t, `{"entries":[{"horizon_s":90,"trials":5,"family":"mixed"}],"seed":1,"name":"tiny","version":1}`)
	if a.Hash() != b.Hash() {
		t.Fatalf("reformatted manifest hashes differ: %s vs %s", a.Hash(), b.Hash())
	}
	// Defaults normalize: an explicit seed range equal to the default one
	// hashes the same as leaving it out.
	c := testManifest(t, `{"version":1,"name":"tiny","seed":1,"entries":[{"family":"mixed","trials":5,"horizon_s":90,"seeds":{"from":1,"count":1}}]}`)
	if a.Hash() != c.Hash() {
		t.Fatalf("default seed range changes the hash: %s vs %s", a.Hash(), c.Hash())
	}
	d := testManifest(t, strings.Replace(tinyManifest, `"trials": 5`, `"trials": 6`, 1))
	if a.Hash() == d.Hash() {
		t.Fatalf("semantically different manifests share hash %s", a.Hash())
	}
}

// TestExpand pins the expansion layout: entries in order, seeds
// ascending, knob grid cartesian in listed order, trial seeds identical
// to the in-process campaign derivation.
func TestExpand(t *testing.T) {
	m := testManifest(t, `{
	  "version": 1, "name": "grid", "seed": 7,
	  "entries": [{
	    "family": "mixed", "trials": 2, "horizon_s": 60,
	    "seeds": {"from": 7, "count": 2},
	    "knobs": {"placement": ["spread", "packed"], "spines": [8, 4]}
	  }]
	}`)
	specs, err := m.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// 2 seeds × (2 placements × 2 spines) × 2 trials.
	if len(specs) != 16 {
		t.Fatalf("Expand: %d trials, want 16", len(specs))
	}
	for i, ts := range specs {
		if ts.Index != i {
			t.Fatalf("spec %d has index %d", i, ts.Index)
		}
	}
	if specs[0].Seed != 7 || specs[15].Seed != 8 {
		t.Fatalf("seed order: first %d, last %d, want 7..8", specs[0].Seed, specs[15].Seed)
	}
	if specs[0].Knobs != "placement=spread,spines=8" {
		t.Fatalf("first combo label %q", specs[0].Knobs)
	}
	if specs[0].Trial.Placement != faults.Spread || specs[0].Trial.Spines != 8 {
		t.Fatalf("knob overrides not applied: %+v", specs[0].Trial)
	}
	// Trial seed must match what faults.Campaign.Run derives for trial i.
	if want := faults.TrialSeed(7, 0); specs[0].TrialSeed != want {
		t.Fatalf("trial seed %d, want %d", specs[0].TrialSeed, want)
	}
	if want := faults.TrialSeed(7, 1); specs[1].TrialSeed != want {
		t.Fatalf("trial seed %d, want %d", specs[1].TrialSeed, want)
	}

	again, err := m.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	for i := range specs {
		if fmt.Sprintf("%+v", specs[i]) != fmt.Sprintf("%+v", again[i]) {
			t.Fatalf("expansion not deterministic at trial %d", i)
		}
	}
}

// runShard is a test helper executing one shard without checkpointing.
func runShard(t *testing.T, m *Manifest, shard, of int) *Partial {
	t.Helper()
	sr := &ShardRun{Manifest: m, Shard: shard, Of: of}
	p, err := sr.Run()
	if err != nil {
		t.Fatalf("shard %d/%d: %v", shard, of, err)
	}
	return p
}

func mergedBytes(t *testing.T, m *Merged) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestShardMergeDeterminism is the subsystem's headline invariant: a
// 4-way sharded run merges to bytes identical to the serial single-shard
// run of the same manifest.
func TestShardMergeDeterminism(t *testing.T) {
	m := testManifest(t, tinyManifest)

	serial, err := Merge([]*Partial{runShard(t, m, 0, 1)})
	if err != nil {
		t.Fatalf("serial merge: %v", err)
	}
	var sharded []*Partial
	for i := 0; i < 4; i++ {
		sharded = append(sharded, runShard(t, m, i, 4))
	}
	// Merge order of the partials must not matter either.
	shuffled := []*Partial{sharded[2], sharded[0], sharded[3], sharded[1]}
	merged, err := MergeHash(m, shuffled)
	if err != nil {
		t.Fatalf("sharded merge: %v", err)
	}

	sb, mb := mergedBytes(t, serial), mergedBytes(t, merged)
	if !bytes.Equal(sb, mb) {
		t.Fatalf("serial and 4-shard merges differ:\n--- serial ---\n%s\n--- sharded ---\n%s", sb, mb)
	}
	if err := merged.Check(); err != nil {
		t.Fatalf("merged.Check: %v", err)
	}
	if merged.ManifestHash != m.Hash() {
		t.Fatalf("merged stamped %s, manifest is %s", merged.ManifestHash, m.Hash())
	}
}

// TestMergeRefusals locks in the reducer's refusal conditions: gaps,
// duplicates, and mixed manifests must fail loudly, never silently
// produce a partial report.
func TestMergeRefusals(t *testing.T) {
	m := testManifest(t, tinyManifest)
	p0, p1 := runShard(t, m, 0, 2), runShard(t, m, 1, 2)

	if _, err := Merge([]*Partial{p0}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("merge with a missing shard: err = %v, want gap refusal", err)
	}
	if _, err := Merge([]*Partial{p0, p0, p1}); err == nil || !strings.Contains(err.Error(), "more than one partial") {
		t.Fatalf("merge with duplicate shard: err = %v, want duplicate refusal", err)
	}
	other := testManifest(t, strings.Replace(tinyManifest, `"seed": 1`, `"seed": 2`, 1))
	q0 := runShard(t, other, 0, 2)
	if _, err := Merge([]*Partial{p0, q0}); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("merge across manifests: err = %v, want hash refusal", err)
	}
	if _, err := MergeHash(other, []*Partial{p0, p1}); err == nil || !strings.Contains(err.Error(), "not") {
		t.Fatalf("MergeHash against wrong manifest: err = %v, want refusal", err)
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("merge of nothing succeeded")
	}
}

// TestCheckpointResume is the kill-and-resume path: a shard interrupted
// mid-run (simulated by truncating its checkpoint to a strict prefix)
// re-executes only the missing trials and still produces the exact bytes
// of an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	m := testManifest(t, tinyManifest)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "shard0.ckpt")

	var log bytes.Buffer
	sr := &ShardRun{Manifest: m, Shard: 0, Of: 2, Checkpoint: ckpt, Log: &log}
	clean, err := sr.Run()
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	// Truncate the checkpoint to header + first record: the state after a
	// kill -9 that landed between trials.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("checkpoint has %d lines, want header + >=2 records", len(lines))
	}
	if err := os.WriteFile(ckpt, []byte(lines[0]+lines[1]), 0o644); err != nil {
		t.Fatalf("truncate checkpoint: %v", err)
	}

	log.Reset()
	resumed, err := (&ShardRun{Manifest: m, Shard: 0, Of: 2, Checkpoint: ckpt, Log: &log}).Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !strings.Contains(log.String(), "1 from checkpoint") {
		t.Fatalf("resume log %q does not report checkpointed progress", log.String())
	}
	if !bytes.Equal(partialBytes(t, clean), partialBytes(t, resumed)) {
		t.Fatal("resumed partial differs from clean run")
	}

	// A torn tail (kill mid-write) is tolerated: that trial re-runs.
	if err := os.WriteFile(ckpt, append(data, []byte(`{"index": 4, "family": "mix`)...), 0o644); err != nil {
		t.Fatalf("tear checkpoint: %v", err)
	}
	torn, err := (&ShardRun{Manifest: m, Shard: 0, Of: 2, Checkpoint: ckpt}).Run()
	if err != nil {
		t.Fatalf("run over torn checkpoint: %v", err)
	}
	if !bytes.Equal(partialBytes(t, clean), partialBytes(t, torn)) {
		t.Fatal("torn-tail partial differs from clean run")
	}
}

// TestCheckpointIdentity checks a checkpoint is refused when it belongs
// to a different manifest or shard — resuming someone else's progress
// would corrupt the experiment silently.
func TestCheckpointIdentity(t *testing.T) {
	m := testManifest(t, tinyManifest)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "shard.ckpt")
	if _, err := (&ShardRun{Manifest: m, Shard: 0, Of: 2, Checkpoint: ckpt}).Run(); err != nil {
		t.Fatalf("seed run: %v", err)
	}

	if _, err := (&ShardRun{Manifest: m, Shard: 1, Of: 2, Checkpoint: ckpt}).Run(); err == nil || !strings.Contains(err.Error(), "belongs to shard") {
		t.Fatalf("wrong-shard resume: err = %v, want shard refusal", err)
	}
	other := testManifest(t, strings.Replace(tinyManifest, `"trials": 5`, `"trials": 4`, 1))
	if _, err := (&ShardRun{Manifest: other, Shard: 0, Of: 2, Checkpoint: ckpt}).Run(); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("wrong-manifest resume: err = %v, want manifest refusal", err)
	}
	if _, err := (&ShardRun{Manifest: m, Shard: 2, Of: 2}).Run(); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

func partialBytes(t *testing.T, p *Partial) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestPartialRoundTrip pins the artifact read/write cycle and its
// version gate.
func TestPartialRoundTrip(t *testing.T) {
	m := testManifest(t, tinyManifest)
	p := runShard(t, m, 1, 2)
	b := partialBytes(t, p)
	rt, err := ReadPartial(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("ReadPartial: %v", err)
	}
	if !bytes.Equal(b, partialBytes(t, rt)) {
		t.Fatal("partial does not round-trip")
	}
	if _, err := ReadPartial(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("future partial version accepted")
	}

	merged, err := Merge([]*Partial{runShard(t, m, 0, 2), p})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	mb := mergedBytes(t, merged)
	mrt, err := ReadMerged(bytes.NewReader(mb))
	if err != nil {
		t.Fatalf("ReadMerged: %v", err)
	}
	if !bytes.Equal(mb, mergedBytes(t, mrt)) {
		t.Fatal("merged report does not round-trip")
	}
	if _, err := ReadMerged(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("future merged version accepted")
	}
	if s := merged.String(); !strings.Contains(s, "precision") || !strings.Contains(s, "aggregate:") {
		t.Fatalf("merged String() missing summary lines:\n%s", s)
	}
}
