package trace

import (
	"bytes"
	"reflect"
	"testing"

	"c4/internal/sim"
)

func testTracer() *Tracer {
	tr := New()
	tr.Bind(sim.NewEngine())
	return tr
}

func TestNilTracerIsSafeAndAllocationFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	allocs := testing.AllocsPerRun(200, func() {
		s := tr.Start(nil, "kind", "name")
		s.Annotate("k", "v")
		tr.Event(s, "kind", "evt")
		restore := tr.Scope(s)
		if tr.Current() != nil {
			t.Fatal("nil tracer has a current span")
		}
		restore()
		s.FinishAt(10)
		s.Finish()
		tr.SetMark("fault", s)
		if tr.Mark("fault") != nil {
			t.Fatal("nil tracer stored a mark")
		}
		if tr.Spans() != nil {
			t.Fatal("nil tracer has spans")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per op; want 0", allocs)
	}
}

func TestUnboundTracerRecordsNothing(t *testing.T) {
	tr := New()
	if tr.Enabled() {
		t.Fatal("unbound tracer reports Enabled")
	}
	if s := tr.Start(nil, "k", "n"); s != nil {
		t.Fatal("unbound tracer recorded a span")
	}
}

func TestSpanRecordingAndScope(t *testing.T) {
	tr := testTracer()
	root := tr.StartAt(nil, "iter", "iter-0", 0)
	restore := tr.Scope(root)
	child := tr.Start(nil, "slot", "d0/s0") // parent from scope
	restore()
	other := tr.Start(nil, "slot", "d0/s1") // no scope → root span

	if root.ID != 1 || child.ID != 2 || other.ID != 3 {
		t.Fatalf("IDs = %d,%d,%d; want 1,2,3", root.ID, child.ID, other.ID)
	}
	if child.Parent != root.ID {
		t.Fatalf("child.Parent = %d; want %d", child.Parent, root.ID)
	}
	if other.Parent != 0 {
		t.Fatalf("unscoped span parent = %d; want 0", other.Parent)
	}
	if !child.Open() {
		t.Fatal("child already closed")
	}
	child.FinishAt(50)
	child.FinishAt(99) // first close wins
	if child.End != 50 {
		t.Fatalf("child.End = %d; want 50 (first close wins)", child.End)
	}
	root.Annotate("mb", "4")
	if got := root.Attr("mb"); got != "4" {
		t.Fatalf("Attr(mb) = %q; want 4", got)
	}
	if got := root.Attr("absent"); got != "" {
		t.Fatalf("Attr(absent) = %q; want empty", got)
	}
}

func TestNestedScopeSkipsNilFrames(t *testing.T) {
	tr := testTracer()
	outer := tr.StartAt(nil, "op", "allreduce", 0)
	r1 := tr.Scope(outer)
	r2 := tr.Scope(nil) // a disabled layer pushed nothing useful
	if cur := tr.Current(); cur != outer {
		t.Fatalf("Current() = %v; want outer", cur)
	}
	r2()
	r1()
	if tr.Current() != nil {
		t.Fatal("scope stack not empty after restores")
	}
}

func TestMarks(t *testing.T) {
	tr := testTracer()
	f := tr.StartAt(nil, "fault", "nic-degrade", 10)
	tr.SetMark("fault", f)
	if tr.Mark("fault") != f {
		t.Fatal("mark not retrievable")
	}
	tr.SetMark("fault", nil)
	if tr.Mark("fault") != nil {
		t.Fatal("mark not cleared")
	}
}

// buildTree constructs the reference tree used by the profile and
// critical-path tests:
//
//	iter-0 [0,100]
//	  ├ slot A [0,40]   └ flow f1 [5,35]
//	  ├ slot B [10,60]
//	  └ dpsync D [50,95]
func buildTree(t *testing.T) (*Tracer, *Span) {
	t.Helper()
	tr := testTracer()
	root := tr.StartAt(nil, "iter", "iter-0", 0)
	a := tr.StartAt(root, "slot", "A", 0)
	f1 := tr.StartAt(a, "flow", "f1", 5)
	f1.FinishAt(35)
	a.FinishAt(40)
	b := tr.StartAt(root, "slot", "B", 10)
	b.FinishAt(60)
	d := tr.StartAt(root, "dpsync", "D", 50)
	d.FinishAt(95)
	root.FinishAt(100)
	return tr, root
}

func TestProfileSelfAndTotal(t *testing.T) {
	tr, _ := buildTree(t)
	rows := Profile(tr.Spans())
	want := map[string]ProfileRow{
		"iter":   {Kind: "iter", Count: 1, Total: 100, Self: 5},
		"slot":   {Kind: "slot", Count: 2, Total: 90, Self: 60},
		"dpsync": {Kind: "dpsync", Count: 1, Total: 45, Self: 45},
		"flow":   {Kind: "flow", Count: 1, Total: 30, Self: 30},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows; want %d: %+v", len(rows), len(want), rows)
	}
	for _, r := range rows {
		if w := want[r.Kind]; r != w {
			t.Errorf("row %s = %+v; want %+v", r.Kind, r, w)
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Self < rows[i].Self {
			t.Fatalf("rows not sorted by Self desc: %+v", rows)
		}
	}
}

func TestCriticalPathTilesRoot(t *testing.T) {
	tr, root := buildTree(t)
	segs := CriticalPath(tr.Spans(), root)
	type want struct {
		name     string
		from, to sim.Time
	}
	wants := []want{
		{"A", 0, 5}, {"f1", 5, 10}, {"B", 10, 50}, {"D", 50, 95}, {"iter-0", 95, 100},
	}
	if len(segs) != len(wants) {
		t.Fatalf("got %d segments %+v; want %d", len(segs), segs, len(wants))
	}
	var covered sim.Time
	for i, g := range segs {
		w := wants[i]
		if g.Span.Name != w.name || g.From != w.from || g.To != w.to {
			t.Errorf("seg %d = %s [%d,%d); want %s [%d,%d)", i, g.Span.Name, g.From, g.To, w.name, w.from, w.to)
		}
		covered += g.To - g.From
		if i > 0 && segs[i-1].To != g.From {
			t.Errorf("segments not contiguous at %d: %d != %d", i, segs[i-1].To, g.From)
		}
	}
	if covered != 100 {
		t.Fatalf("path covers %d; want the full root duration 100", covered)
	}
}

func TestPathProfileSharesSumToOne(t *testing.T) {
	tr, root := buildTree(t)
	rows := PathProfile(CriticalPath(tr.Spans(), root))
	var share float64
	var self sim.Time
	for _, r := range rows {
		share += r.Share
		self += r.Self
	}
	if self != 100 {
		t.Fatalf("summed Self = %d; want 100", self)
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("summed Share = %f; want 1", share)
	}
	if rows[0].Kind != "dpsync" || rows[0].Self != 45 {
		t.Fatalf("top row = %+v; want dpsync with Self=45", rows[0])
	}
}

func TestChromeRoundTripAndDeterminism(t *testing.T) {
	tr, _ := buildTree(t)
	open := tr.Start(nil, "fault", "window")
	open.Annotate("node", "n3")
	_ = open // left open on purpose

	var b1, b2 bytes.Buffer
	if err := WriteChrome(&b1, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b2, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two exports of the same spans differ")
	}

	got, err := ParseChrome(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr.Spans()) {
		t.Fatalf("parsed %d spans; want %d", len(got), len(tr.Spans()))
	}
	for i, s := range tr.Spans() {
		g := got[i]
		if g.ID != s.ID || g.Parent != s.Parent || g.Kind != s.Kind ||
			g.Name != s.Name || g.Start != s.Start || g.End != s.End {
			t.Errorf("span %d round-trip mismatch:\n got %+v\nwant %+v", i, g, s)
		}
		if len(s.Attrs) > 0 && !reflect.DeepEqual(g.Attrs, s.Attrs) {
			t.Errorf("span %d attrs = %+v; want %+v", i, g.Attrs, s.Attrs)
		}
	}
}

func TestParseChromeRejectsForeignJSON(t *testing.T) {
	if _, err := ParseChrome(bytes.NewReader([]byte(`{"traceEvents":[{"ph":"X","name":"x","cat":"y","args":{}}]}`))); err == nil {
		t.Fatal("want error for trace events without c4 id args")
	}
	if _, err := ParseChrome(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Fatal("want error for non-JSON input")
	}
}

func TestHorizon(t *testing.T) {
	tr := testTracer()
	if Horizon(tr.Spans()) != 0 {
		t.Fatal("empty trace horizon != 0")
	}
	a := tr.StartAt(nil, "k", "a", 10)
	a.FinishAt(30)
	tr.StartAt(nil, "k", "b", 40) // open
	if h := Horizon(tr.Spans()); h != 40 {
		t.Fatalf("Horizon = %d; want 40", h)
	}
}
