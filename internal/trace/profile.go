package trace

import (
	"sort"

	"c4/internal/sim"
)

// ProfileRow is the per-kind aggregate of a trace: how many spans of the
// kind exist, their total duration, and their self time (duration not
// covered by child spans). Self sums to the union of root activity, so it
// is the number to rank by when asking "where did the time go".
type ProfileRow struct {
	Kind  string
	Count int
	Total sim.Time
	Self  sim.Time
}

// Profile aggregates spans by kind. Rows are sorted by Self descending,
// ties broken by kind name, so the report is deterministic.
func Profile(spans []*Span) []ProfileRow {
	horizon := Horizon(spans)
	kids := childIndex(spans)
	agg := make(map[string]*ProfileRow)
	order := make([]string, 0, 8)
	for _, s := range spans {
		row := agg[s.Kind]
		if row == nil {
			row = &ProfileRow{Kind: s.Kind}
			agg[s.Kind] = row
			order = append(order, s.Kind)
		}
		row.Count++
		d := s.Dur(horizon)
		row.Total += d
		row.Self += d - coveredByChildren(s, kids[s.ID], horizon)
	}
	rows := make([]ProfileRow, 0, len(order))
	for _, k := range order {
		rows = append(rows, *agg[k])
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Self != rows[j].Self {
			return rows[i].Self > rows[j].Self
		}
		return rows[i].Kind < rows[j].Kind
	})
	return rows
}

// childIndex maps span ID → children in creation order.
func childIndex(spans []*Span) map[int][]*Span {
	kids := make(map[int][]*Span, len(spans))
	for _, s := range spans {
		if s.Parent != 0 {
			kids[s.Parent] = append(kids[s.Parent], s)
		}
	}
	return kids
}

// coveredByChildren returns the length of the union of the children's
// intervals clipped to the parent's window.
func coveredByChildren(s *Span, children []*Span, horizon sim.Time) sim.Time {
	if len(children) == 0 {
		return 0
	}
	pEnd := s.End
	if pEnd < 0 {
		pEnd = horizon
	}
	type iv struct{ a, b sim.Time }
	ivs := make([]iv, 0, len(children))
	for _, c := range children {
		a, b := c.Start, c.End
		if b < 0 {
			b = horizon
		}
		if a < s.Start {
			a = s.Start
		}
		if b > pEnd {
			b = pEnd
		}
		if b > a {
			ivs = append(ivs, iv{a, b})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].a != ivs[j].a {
			return ivs[i].a < ivs[j].a
		}
		return ivs[i].b < ivs[j].b
	})
	var covered, hi sim.Time
	hi = -1
	var lo sim.Time
	started := false
	for _, v := range ivs {
		if !started || v.a > hi {
			if started {
				covered += hi - lo
			}
			lo, hi = v.a, v.b
			started = true
		} else if v.b > hi {
			hi = v.b
		}
	}
	if started {
		covered += hi - lo
	}
	return covered
}

// PathSeg is one segment of a critical path: the span that was the
// deepest active cause over [From, To).
type PathSeg struct {
	Span *Span
	From sim.Time
	To   sim.Time
}

// CriticalPath walks backward from root's end, at each instant descending
// into the child whose (clipped) end is latest — the child that gated
// progress — and attributes uncovered gaps to the parent itself. The
// returned segments are chronological, disjoint, and tile [root.Start,
// root end] exactly, so summing by span kind answers "what was iteration
// N actually waiting on".
//
// Ties (two children ending at the same instant) break toward the later
// created span (higher ID), i.e. the one scheduled last, which is the
// deterministic analogue of "most recently blocked".
func CriticalPath(spans []*Span, root *Span) []PathSeg {
	horizon := Horizon(spans)
	kids := childIndex(spans)
	var segs []PathSeg
	var walk func(s *Span, upTo sim.Time)
	walk = func(s *Span, upTo sim.Time) {
		t := upTo
		for t > s.Start {
			var best *Span
			var bestEnd sim.Time
			for _, c := range kids[s.ID] {
				ce := c.End
				if ce < 0 {
					ce = horizon
				}
				if ce > t {
					ce = t
				}
				cs := c.Start
				if cs < s.Start {
					cs = s.Start
				}
				if ce <= cs || ce <= s.Start {
					continue
				}
				if best == nil || ce > bestEnd || (ce == bestEnd && c.ID > best.ID) {
					best, bestEnd = c, ce
				}
			}
			if best == nil {
				break
			}
			if bestEnd < t {
				segs = append(segs, PathSeg{Span: s, From: bestEnd, To: t})
			}
			walk(best, bestEnd)
			t = best.Start
			if t < s.Start {
				t = s.Start
			}
		}
		if t > s.Start {
			segs = append(segs, PathSeg{Span: s, From: s.Start, To: t})
		}
	}
	end := root.End
	if end < 0 {
		end = horizon
	}
	if end > root.Start {
		walk(root, end)
	}
	// Segments were discovered in reverse chronological order.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

// PathRow aggregates critical-path segments by (kind, name): Self is the
// summed path time attributed to spans with that identity, Share its
// fraction of the whole path.
type PathRow struct {
	Kind  string
	Name  string
	Self  sim.Time
	Share float64
}

// PathProfile aggregates path segments into rows sorted by Self
// descending (ties by kind then name).
func PathProfile(segs []PathSeg) []PathRow {
	type key struct{ kind, name string }
	agg := make(map[key]*PathRow)
	order := make([]key, 0, 16)
	var total sim.Time
	for _, g := range segs {
		k := key{g.Span.Kind, g.Span.Name}
		row := agg[k]
		if row == nil {
			row = &PathRow{Kind: k.kind, Name: k.name}
			agg[k] = row
			order = append(order, k)
		}
		d := g.To - g.From
		row.Self += d
		total += d
	}
	rows := make([]PathRow, 0, len(order))
	for _, k := range order {
		r := *agg[k]
		if total > 0 {
			r.Share = float64(r.Self) / float64(total)
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Self != rows[j].Self {
			return rows[i].Self > rows[j].Self
		}
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// ByKind returns the spans of one kind, in creation order.
func ByKind(spans []*Span, kind string) []*Span {
	var out []*Span
	for _, s := range spans {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// Children returns the direct children of the span with the given ID, in
// creation order.
func Children(spans []*Span, id int) []*Span {
	var out []*Span
	for _, s := range spans {
		if s.Parent == id {
			out = append(out, s)
		}
	}
	return out
}
