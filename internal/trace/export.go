package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"c4/internal/sim"
)

// WriteChrome writes the spans as Chrome trace-event JSON, viewable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Layout: one process,
// one named thread per span kind (kinds sorted), complete ("X") events in
// span-ID order with ts/dur in microseconds. args carries the lossless
// raw fields (id, parent, start_ns, end_ns) plus every span attribute, so
// ParseChrome round-trips exactly and diffing two exports is meaningful.
//
// Output is byte-deterministic: same spans in, same bytes out. Open spans
// are drawn up to the trace horizon and keep end_ns=-1 in args.
func WriteChrome(w io.Writer, spans []*Span) error {
	bw := bufio.NewWriter(w)
	horizon := Horizon(spans)

	kinds := make([]string, 0, 8)
	seen := make(map[string]bool)
	for _, s := range spans {
		if !seen[s.Kind] {
			seen[s.Kind] = true
			kinds = append(kinds, s.Kind)
		}
	}
	sort.Strings(kinds)
	tid := make(map[string]int, len(kinds))
	for i, k := range kinds {
		tid[k] = i + 1
	}

	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	emit(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"c4sim"}}`)
	for _, k := range kinds {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tid[k], jstr(k)))
	}
	for _, s := range spans {
		end := s.End
		if end < 0 {
			end = horizon
		}
		line := fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%s,"cat":%s,"args":{"id":%d,"parent":%d,"start_ns":%d,"end_ns":%d`,
			tid[s.Kind], usec(int64(s.Start)), usec(int64(end-s.Start)),
			jstr(s.Name), jstr(s.Kind), s.ID, s.Parent, int64(s.Start), int64(s.End))
		for _, a := range s.Attrs {
			line += "," + jstr(a.Key) + ":" + jstr(a.Val)
		}
		line += "}}"
		emit(line)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// usec renders nanoseconds as a decimal microsecond literal ("1234.567")
// without float formatting, keeping the writer byte-deterministic.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// jstr renders s as a JSON string via encoding/json, which is
// deterministic for strings.
func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Ph   string                     `json:"ph"`
	Name string                     `json:"name"`
	Cat  string                     `json:"cat"`
	Args map[string]json.RawMessage `json:"args"`
}

// ParseChrome reads a trace previously written by WriteChrome and
// reconstructs the spans from the lossless args fields. Attribute order
// within a span is not preserved by JSON objects, so attrs come back
// key-sorted; everything else round-trips exactly. Spans are returned in
// ID order (which is creation order for a single-engine trace).
func ParseChrome(r io.Reader) ([]*Span, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	var spans []*Span
	for i, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		s := &Span{Kind: ev.Cat, Name: ev.Name, End: -1}
		var attrs []Attr
		for k, raw := range ev.Args {
			switch k {
			case "id", "parent", "start_ns", "end_ns":
				n, err := strconv.ParseInt(string(raw), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: event %d: bad %s: %w", i, k, err)
				}
				switch k {
				case "id":
					s.ID = int(n)
				case "parent":
					s.Parent = int(n)
				case "start_ns":
					s.Start = sim.Time(n)
				case "end_ns":
					s.End = sim.Time(n)
				}
			default:
				var v string
				if err := json.Unmarshal(raw, &v); err != nil {
					return nil, fmt.Errorf("trace: event %d: attr %s: %w", i, k, err)
				}
				attrs = append(attrs, Attr{Key: k, Val: v})
			}
		}
		if s.ID == 0 {
			return nil, fmt.Errorf("trace: event %d (%s/%s): missing id — not a c4 trace?", i, ev.Cat, ev.Name)
		}
		sort.Slice(attrs, func(a, b int) bool { return attrs[a].Key < attrs[b].Key })
		s.Attrs = attrs
		spans = append(spans, s)
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].ID < spans[b].ID })
	return spans, nil
}
