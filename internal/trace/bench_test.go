package trace

import "testing"

// BenchmarkTraceDisabled pins the cost of the disabled tracer: every
// instrumented hot path (netsim flow starts, accl transfers, plan slots)
// pays this on each call when no tracer is attached, so it must stay at
// zero allocations and a few nanoseconds.
func BenchmarkTraceDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			b.Fatal("nil tracer enabled")
		}
		s := tr.Start(nil, "flow", "bench")
		s.Annotate("path", "0=>1")
		restore := tr.Scope(s)
		restore()
		s.Finish()
	}
}

// BenchmarkTraceEnabled is the paired measurement for the enabled path,
// so regressions in recording cost are visible next to the no-op cost.
func BenchmarkTraceEnabled(b *testing.B) {
	tr := testTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start(nil, "flow", "bench")
		restore := tr.Scope(s)
		restore()
		s.FinishAt(s.Start + 1)
	}
}
