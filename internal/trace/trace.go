// Package trace is the simulation's causal span recorder. A span is an
// interval of simulated time ({kind, name, start, end, parent, attrs})
// recorded by the layer that knows the causality: the planner records
// iterations and stage slots, accl records collective ops and member
// transfers, netsim records flow lifetimes, faults records injected fault
// windows, and c4d/steering record the detection→action chain as children
// of the fault that caused them.
//
// Everything is deterministic by construction: span IDs come from
// sim.Engine.NextID, timestamps are sim.Time, and attributes are ordered
// slices rather than maps, so a serial run and a parallel run of the same
// scenario export byte-identical traces.
//
// A nil *Tracer is the disabled recorder: every method is nil-safe and
// returns immediately, and call sites additionally guard span-name
// formatting behind Enabled() so the disabled path allocates nothing.
package trace

import "c4/internal/sim"

// Attr is one key/value annotation on a span. Attrs are an ordered slice,
// never a map, so export order is deterministic.
type Attr struct {
	Key string
	Val string
}

// Span is one recorded interval of simulated time. Start and End are
// engine timestamps; End is -1 while the span is open. Parent is the ID of
// the enclosing span (0 = root). Spans are created by Tracer.Start and
// finished by Finish/FinishAt; both ends may be scheduled in the simulated
// future (the planner knows slot begin/end at schedule time).
type Span struct {
	ID     int
	Parent int
	Kind   string
	Name   string
	Start  sim.Time
	End    sim.Time
	Attrs  []Attr

	tr *Tracer
}

// Annotate appends a key/value attribute and returns the span for
// chaining. Nil-safe: annotating a nil span (tracing disabled) is a no-op.
func (s *Span) Annotate(key, val string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
	return s
}

// FinishAt closes the span at the given simulated time. Closing an already
// closed span keeps the first end: collective completion paths may race a
// cancellation path, and first-close-wins keeps the interval meaningful.
// Nil-safe.
func (s *Span) FinishAt(at sim.Time) {
	if s == nil || s.End >= 0 {
		return
	}
	if at < s.Start {
		at = s.Start
	}
	s.End = at
}

// Finish closes the span at the tracer's current simulated time. Nil-safe.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.FinishAt(s.tr.eng.Now())
}

// Open reports whether the span has not been finished yet.
func (s *Span) Open() bool { return s.End < 0 }

// Dur returns the span's duration, treating an open span as ending at
// upTo (exporters pass the trace horizon).
func (s *Span) Dur(upTo sim.Time) sim.Time {
	end := s.End
	if end < 0 {
		end = upTo
	}
	if end < s.Start {
		return 0
	}
	return end - s.Start
}

// Attr returns the value of the named attribute, or "" when absent.
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Tracer records spans for one simulation. The zero value is unusable;
// construct with New and attach to an engine with Bind before the first
// span. A nil *Tracer is the disabled recorder: every method no-ops.
//
// Tracer is not safe for concurrent use. That is by design: each
// simulation is single-threaded over one engine, and parallelism in this
// codebase is always across engines, never within one.
type Tracer struct {
	eng   *sim.Engine
	spans []*Span
	// scope is the stack of implicit parents. Layers that launch work
	// synchronously under a span (accl starting netsim flows) push it here
	// so the lower layer can parent correctly without an API dependency.
	scope []*Span
	// marks are named cross-layer anchors ("fault", "detect"): the fault
	// injector marks its window so c4d can parent detections under it, and
	// c4d marks detections so steering can parent its actions.
	marks map[string]*Span
}

// New returns an empty tracer. It must be Bound to an engine before spans
// are recorded.
func New() *Tracer {
	return &Tracer{marks: make(map[string]*Span)}
}

// Bind attaches the tracer to the engine that provides timestamps and
// span IDs. Sessions construct their engine after the caller attaches the
// tracer, so binding is a separate step from New.
func (t *Tracer) Bind(eng *sim.Engine) {
	if t == nil {
		return
	}
	t.eng = eng
}

// Enabled reports whether spans will actually be recorded. Call sites use
// it to skip span-name formatting on the disabled path.
func (t *Tracer) Enabled() bool { return t != nil && t.eng != nil }

// Spans returns every recorded span in creation order. The slice is the
// tracer's own backing store; callers must not mutate it.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// StartAt opens a span beginning at the given simulated time. parent nil
// means "use the current scope" (which may itself be empty → root span).
// Returns nil when tracing is disabled.
func (t *Tracer) StartAt(parent *Span, kind, name string, at sim.Time) *Span {
	if !t.Enabled() {
		return nil
	}
	if parent == nil {
		parent = t.Current()
	}
	pid := 0
	if parent != nil {
		pid = parent.ID
	}
	s := &Span{
		ID:     t.eng.NextID("trace"),
		Parent: pid,
		Kind:   kind,
		Name:   name,
		Start:  at,
		End:    -1,
		tr:     t,
	}
	t.spans = append(t.spans, s)
	return s
}

// Start opens a span beginning now.
func (t *Tracer) Start(parent *Span, kind, name string) *Span {
	if !t.Enabled() {
		return nil
	}
	return t.StartAt(parent, kind, name, t.eng.Now())
}

// Event records an instantaneous span (start == end == now): reroutes,
// path-down notifications, detection verdicts.
func (t *Tracer) Event(parent *Span, kind, name string) *Span {
	if !t.Enabled() {
		return nil
	}
	s := t.StartAt(parent, kind, name, t.eng.Now())
	s.End = s.Start
	return s
}

// Scope pushes s as the implicit parent for spans started with a nil
// parent, and returns the function that pops it. Usage:
//
//	defer tr.Scope(op.span)()
//
// Nil-safe in both the tracer and the span: a nil tracer returns a no-op
// restore, and scoping a nil span still pushes (and pops) so restore
// functions always pair.
func (t *Tracer) Scope(s *Span) func() {
	if t == nil {
		return func() {}
	}
	t.scope = append(t.scope, s)
	return func() { t.scope = t.scope[:len(t.scope)-1] }
}

// Current returns the innermost non-nil scoped span, or nil.
func (t *Tracer) Current() *Span {
	if t == nil {
		return nil
	}
	for i := len(t.scope) - 1; i >= 0; i-- {
		if t.scope[i] != nil {
			return t.scope[i]
		}
	}
	return nil
}

// SetMark publishes s under a well-known name for cross-layer parenting.
// The fault layer marks "fault"; c4d parents detections under it and marks
// "detect"; steering parents actions under that. A nil span clears the
// mark. Nil-safe.
func (t *Tracer) SetMark(name string, s *Span) {
	if t == nil {
		return
	}
	if s == nil {
		delete(t.marks, name)
		return
	}
	t.marks[name] = s
}

// Mark returns the span published under name, or nil.
func (t *Tracer) Mark(name string) *Span {
	if t == nil {
		return nil
	}
	return t.marks[name]
}

// Horizon returns the latest timestamp mentioned by any span (end when
// closed, start when open), used as the effective end for open spans at
// export time. Returns 0 for an empty trace.
func Horizon(spans []*Span) sim.Time {
	var h sim.Time
	for _, s := range spans {
		if s.Start > h {
			h = s.Start
		}
		if s.End > h {
			h = s.End
		}
	}
	return h
}
