package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"c4/internal/sim"
	"c4/internal/topo"
)

func testbed() (*sim.Engine, *Network) {
	eng := sim.NewEngine()
	t := topo.MustNew(topo.PaperTestbed())
	return eng, New(eng, t, DefaultConfig())
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowCompletionTime(t *testing.T) {
	eng, n := testbed()
	path, err := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	size := 200e9 * 1.0 // 200 Gb -> 1 s at 200 Gbps
	n.StartFlow(path, size, "t", func(f *Flow) { doneAt = eng.Now() })
	eng.Run()
	want := n.Cfg.BaseLatency + sim.Second
	if doneAt < want-sim.Millisecond || doneAt > want+sim.Millisecond {
		t.Fatalf("completion at %v, want ~%v", doneAt, want)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	eng, n := testbed()
	// Two flows from different source nodes converging on the same
	// destination port: bottleneck is the dst node-down link (200 Gbps).
	p1, _ := n.Topo.PathFor(0, 4, 0, 0, 0, 0)
	p2, _ := n.Topo.PathFor(2, 4, 0, 0, 1, 0)
	var t1, t2 sim.Time
	size := 200e9 // 1 s alone
	n.StartFlow(p1, size, "a", func(f *Flow) { t1 = eng.Now() })
	n.StartFlow(p2, size, "b", func(f *Flow) { t2 = eng.Now() })
	eng.Run()
	// Shared at 100 Gbps each -> ~2 s.
	if !almostEqual(t1.Seconds(), 2.0, 0.01) || !almostEqual(t2.Seconds(), 2.0, 0.01) {
		t.Fatalf("completions %v %v, want ~2s", t1, t2)
	}
}

func TestEarlyFinisherReleasesBandwidth(t *testing.T) {
	eng, n := testbed()
	p1, _ := n.Topo.PathFor(0, 4, 0, 0, 0, 0)
	p2, _ := n.Topo.PathFor(2, 4, 0, 0, 1, 0)
	var tShort, tLong sim.Time
	n.StartFlow(p1, 100e9, "short", func(f *Flow) { tShort = eng.Now() })
	n.StartFlow(p2, 200e9, "long", func(f *Flow) { tLong = eng.Now() })
	eng.Run()
	// Both at 100 Gbps until short finishes at 1 s; long then has 100 Gb
	// left at 200 Gbps -> finishes at ~1.5 s.
	if !almostEqual(tShort.Seconds(), 1.0, 0.01) {
		t.Fatalf("short done at %v, want ~1s", tShort)
	}
	if !almostEqual(tLong.Seconds(), 1.5, 0.01) {
		t.Fatalf("long done at %v, want ~1.5s", tLong)
	}
}

func TestDisjointFlowsDontInterfere(t *testing.T) {
	eng, n := testbed()
	p1, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	p2, _ := n.Topo.PathFor(4, 6, 1, 1, 1, 1)
	var t1, t2 sim.Time
	n.StartFlow(p1, 200e9, "a", func(f *Flow) { t1 = eng.Now() })
	n.StartFlow(p2, 200e9, "b", func(f *Flow) { t2 = eng.Now() })
	eng.Run()
	if !almostEqual(t1.Seconds(), 1.0, 0.01) || !almostEqual(t2.Seconds(), 1.0, 0.01) {
		t.Fatalf("disjoint flows slowed down: %v %v", t1, t2)
	}
}

func TestNVLinkCapsIntraNode(t *testing.T) {
	eng, n := testbed()
	p := n.Topo.IntraNodePath(0)
	var done sim.Time
	n.StartFlow(p, 362e9, "nv", func(f *Flow) { done = eng.Now() })
	eng.Run()
	if !almostEqual(done.Seconds(), 1.0, 0.01) {
		t.Fatalf("NVLink transfer took %v, want ~1s at 362 Gbps", done)
	}
}

func TestLinkFailureStallsAndRecovers(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 3, 0)
	var done sim.Time
	notified := false
	f := n.StartFlow(path, 200e9, "x", func(f *Flow) { done = eng.Now() })
	f.OnPathDown = func(*Flow) { notified = true }
	up := path.SrcPort.Leaf.Ups[3]
	eng.After(500*sim.Millisecond, func() { n.SetLinkUp(up, false) })
	eng.After(1500*sim.Millisecond, func() { n.SetLinkUp(up, true) })
	eng.Run()
	if !notified {
		t.Fatal("OnPathDown not called")
	}
	// ~0.5 s transferred before failure, stalled 1 s, ~0.5 s after.
	if !almostEqual(done.Seconds(), 2.0, 0.02) {
		t.Fatalf("done at %v, want ~2s", done)
	}
}

func TestRerouteOnFailure(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 3, 0)
	var done sim.Time
	f := n.StartFlow(path, 200e9, "x", func(f *Flow) { done = eng.Now() })
	f.OnPathDown = func(fl *Flow) {
		alt, err := n.Topo.PathFor(0, 2, 0, 0, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		n.Reroute(fl, alt)
	}
	eng.After(500*sim.Millisecond, func() {
		n.SetLinkUp(path.SrcPort.Leaf.Ups[3], false)
	})
	eng.Run()
	if !almostEqual(done.Seconds(), 1.0, 0.02) {
		t.Fatalf("rerouted flow done at %v, want ~1s", done)
	}
}

func TestCancel(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	fired := false
	f := n.StartFlow(path, 200e9, "x", func(*Flow) { fired = true })
	eng.After(100*sim.Millisecond, func() { n.Cancel(f) })
	eng.Run()
	if fired {
		t.Fatal("cancelled flow completed")
	}
	if !f.Done() {
		t.Fatal("cancelled flow not marked done")
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("flows remain: %d", n.ActiveFlows())
	}
}

func TestCarriedBitsAccounting(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	n.StartFlow(path, 100e9, "x", nil)
	eng.Run()
	for _, l := range path.Links {
		got := n.CarriedBits(l)
		if !almostEqual(got, 100e9, 1e6) {
			t.Fatalf("link %s carried %.3g bits, want 1e11", l.Name, got)
		}
	}
}

func TestCNPOnSaturatedSharedLink(t *testing.T) {
	eng, n := testbed()
	p1, _ := n.Topo.PathFor(0, 4, 0, 0, 0, 0)
	p2, _ := n.Topo.PathFor(2, 4, 0, 0, 1, 0)
	n.StartFlow(p1, 400e9, "a", nil)
	n.StartFlow(p2, 400e9, "b", nil)
	eng.RunUntil(2 * sim.Second)
	c1 := n.CNPCount(p1.SrcPort)
	c2 := n.CNPCount(p2.SrcPort)
	if c1 <= 0 || c2 <= 0 {
		t.Fatalf("expected CNPs on both senders, got %v %v", c1, c2)
	}
	// Contention factor (2-1)/2 = 0.5 -> 3.75k/s over ~2s ≈ 7.5k.
	if c1 < 5e3 || c1 > 10e3 {
		t.Fatalf("CNP count %v, want ≈7.5k", c1)
	}
}

func TestNoCNPWithoutContention(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	n.StartFlow(path, 400e9, "solo", nil)
	eng.RunUntil(1 * sim.Second)
	if got := n.CNPCount(path.SrcPort); got != 0 {
		t.Fatalf("solo flow received %v CNPs", got)
	}
}

func TestRouteDeterminismAndValidity(t *testing.T) {
	top := topo.MustNew(topo.PaperTestbed())
	p1, err := Route(top, 0, 5, 2, 0, 1234)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Route(top, 0, 5, 2, 0, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Fatalf("same sport routed differently: %v vs %v", p1, p2)
	}
	if p1.SrcPort.Plane != 0 {
		t.Fatal("source plane not honored")
	}
}

func TestRouteSpreadsOverSpines(t *testing.T) {
	top := topo.MustNew(topo.PaperTestbed())
	seen := map[int]bool{}
	for sport := 0; sport < 256; sport++ {
		p, err := Route(top, 0, 5, 0, 0, uint16(sport))
		if err != nil {
			t.Fatal(err)
		}
		seen[p.Spine.Index] = true
	}
	if len(seen) < top.Spec.Spines {
		t.Fatalf("256 sports hit only %d/%d spines", len(seen), top.Spec.Spines)
	}
}

func TestRouteAvoidsDeadUplink(t *testing.T) {
	top := topo.MustNew(topo.PaperTestbed())
	leaf := top.PortAt(0, 0, 0).Leaf
	leaf.Ups[0].SetUp(false)
	for sport := 0; sport < 128; sport++ {
		p, err := Route(top, 0, 5, 0, 0, uint16(sport))
		if err != nil {
			t.Fatal(err)
		}
		if p.Spine.Index == 0 {
			t.Fatal("routed over a dead uplink")
		}
	}
}

func TestRouteSameGroupDirect(t *testing.T) {
	top := topo.MustNew(topo.PaperTestbed())
	p, err := Route(top, 0, 1, 0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SameLeaf() || p.DstPort.Plane != 1 {
		t.Fatalf("same-group route should stay under the leaf: %v", p)
	}
}

func TestRouteErrors(t *testing.T) {
	top := topo.MustNew(topo.PaperTestbed())
	if _, err := Route(top, 3, 3, 0, 0, 0); err == nil {
		t.Fatal("route to self should fail")
	}
	leaf := top.PortAt(0, 0, 0).Leaf
	for _, up := range leaf.Ups {
		up.SetUp(false)
	}
	if _, err := Route(top, 0, 5, 0, 0, 0); err == nil {
		t.Fatal("route with no healthy uplinks should fail")
	}
}

// Property: max-min allocation never oversubscribes a link and never gives
// a flow zero when its path is healthy and shared fairly.
func TestMaxMinFairnessProperty(t *testing.T) {
	f := func(seed int64, flowCount uint8) bool {
		eng := sim.NewEngine()
		top := topo.MustNew(topo.PaperTestbed())
		n := New(eng, top, DefaultConfig())
		r := sim.NewRand(seed)
		count := int(flowCount%12) + 2
		var flows []*Flow
		for i := 0; i < count; i++ {
			src := r.Intn(top.Spec.Nodes)
			dst := r.Intn(top.Spec.Nodes)
			if dst == src {
				dst = (dst + 1) % top.Spec.Nodes
			}
			p, err := Route(top, src, dst, r.Intn(top.Spec.Rails), r.Intn(2), uint16(r.Intn(65536)))
			if err != nil {
				return false
			}
			flows = append(flows, n.StartFlow(p, 1e15, "f", nil))
		}
		eng.RunUntil(sim.Millisecond) // admit + allocate
		// No link oversubscribed.
		util := map[int]float64{}
		for _, fl := range flows {
			if fl.Rate() <= 0 {
				return false // healthy shared paths must get bandwidth
			}
			for _, l := range fl.Path.Links {
				util[l.ID] += fl.Rate()
			}
		}
		for id, u := range util {
			if u > top.Links[id].Gbps*Gbps*(1+1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: total bits delivered equals flow size regardless of competing
// traffic (conservation).
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		top := topo.MustNew(topo.PaperTestbed())
		n := New(eng, top, DefaultConfig())
		r := sim.NewRand(seed)
		total := 0.0
		delivered := 0.0
		for i := 0; i < 6; i++ {
			src := r.Intn(top.Spec.Nodes)
			dst := (src + 1 + r.Intn(top.Spec.Nodes-1)) % top.Spec.Nodes
			p, err := Route(top, src, dst, 0, r.Intn(2), uint16(r.Intn(65536)))
			if err != nil {
				return false
			}
			size := 1e9 * (1 + r.Float64()*10)
			total += size
			n.StartFlow(p, size, "f", func(fl *Flow) { delivered += fl.SizeBits() })
		}
		eng.Run()
		return almostEqual(delivered, total, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStartFlowOntoDownPathNotifies(t *testing.T) {
	eng, n := testbed()
	// The path's spine uplink is already dead when the flow is submitted:
	// admission must still fire OnPathDown (SetLinkUp only notifies flows
	// that exist at failure time), so the handler can reroute instead of
	// the flow silently stalling at rate zero forever.
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 3, 0)
	n.SetLinkUp(path.SrcPort.Leaf.Ups[3], false)
	var done sim.Time
	f := n.StartFlow(path, 200e9, "x", func(*Flow) { done = eng.Now() })
	notified := false
	f.OnPathDown = func(fl *Flow) {
		notified = true
		alt, err := n.Topo.PathFor(0, 2, 0, 0, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		n.Reroute(fl, alt)
	}
	eng.Run()
	if !notified {
		t.Fatal("OnPathDown not fired for a flow admitted onto a down path")
	}
	if done == 0 {
		t.Fatal("rerouted flow never completed")
	}
}

func TestStartFlowOntoDownPathCancelInHandler(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 3, 0)
	n.SetLinkUp(path.SrcPort.Leaf.Ups[3], false)
	completed := false
	f := n.StartFlow(path, 200e9, "x", func(*Flow) { completed = true })
	f.OnPathDown = func(fl *Flow) { n.Cancel(fl) }
	eng.Run()
	if completed {
		t.Fatal("cancelled flow completed")
	}
	if !f.Done() || n.ActiveFlows() != 0 {
		t.Fatalf("done=%v active=%d, want cancelled and removed", f.Done(), n.ActiveFlows())
	}
}

func TestCancelMidWindowSettlesCarriedBits(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	f := n.StartFlow(path, 200e9, "x", nil)
	eng.After(500*sim.Millisecond, func() { n.Cancel(f) })
	eng.Run()
	// The flow ran alone at 200 Gbps from admission (BaseLatency) until the
	// mid-window cancellation at 500 ms. Cancel must settle that window
	// before removing the flow, or the delivered bits vanish from the
	// per-link counters.
	want := 200e9 * (0.5 - n.Cfg.BaseLatency.Seconds())
	for _, l := range path.Links {
		if got := n.CarriedBits(l); !almostEqual(got, want, 1e6) {
			t.Fatalf("link %s carried %.6g bits after mid-window cancel, want %.6g",
				l.Name, got, want)
		}
	}
}

func TestCancelFromOnCompleteSuppressesBatchmate(t *testing.T) {
	eng, n := testbed()
	// Two identical flows complete at the same instant; the first flow's
	// completion handler cancels the second. The cancelled flow must not
	// have its own OnComplete invoked — the contract per-flow completion
	// events used to give, preserved by the batched completion event.
	path, err := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var second *Flow
	secondFired := false
	firstFired := false
	first := n.StartFlow(path, 1e9, "first", func(*Flow) {
		firstFired = true
		n.Cancel(second)
	})
	second = n.StartFlow(path, 1e9, "second", func(*Flow) { secondFired = true })
	eng.Run()
	if !firstFired {
		t.Fatal("first flow never completed")
	}
	if !first.Done() || !second.Done() {
		t.Fatal("both flows should be done (one completed, one cancelled)")
	}
	if secondFired {
		t.Fatal("cancelled flow's OnComplete fired")
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("active flows = %d, want 0", n.ActiveFlows())
	}
}
