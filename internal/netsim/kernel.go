package netsim

import (
	"math"

	"c4/internal/sim"
)

// This file holds the reference per-flow rate kernel. It is the oracle the
// aggregated kernel (class.go) is proven against: every scenario family in
// bench/baseline.json runs through this code, and the aggregated kernel
// must reproduce its allocations byte for byte on those workloads. Change
// the two together or not at all.

// KernelStats counts deterministic units of algorithmic work performed by
// rate recomputation. LinkVisits counts per-link steps (bottleneck scans,
// capacity updates, CNP bookkeeping); FlowVisits counts per-flow steps
// under the per-flow kernel and per-class steps under the aggregated one —
// which is exactly the quantity flow-class aggregation shrinks from
// O(members) to O(classes). The counters are pure step counts, no
// wall-clock, so they are byte-for-byte reproducible across runs and safe
// to track in bench baselines.
type KernelStats struct {
	Recomputes uint64
	LinkVisits uint64
	FlowVisits uint64
}

// recomputePerFlow allocates rates flow by flow. All bookkeeping lives in
// slice-indexed scratch buffers reused across calls: this routine runs
// once per flow-set change and dominates the simulator's CPU profile, so
// it must not hash or allocate per link.
func (n *Network) recomputePerFlow() {
	n.scTouched = n.scTouched[:0]
	unfrozen := 0
	for _, f := range n.flows {
		n.stats.FlowVisits++
		n.stats.LinkVisits += uint64(len(f.Path.Links))
		f.rate = 0
		alive := true
		for _, l := range f.Path.Links {
			if !l.Up() {
				alive = false
				break
			}
		}
		if !alive {
			f.frozen = true // stalled at rate 0
			continue
		}
		f.frozen = false
		unfrozen++
		for _, l := range f.Path.Links {
			if !n.scSeen[l.ID] {
				n.scSeen[l.ID] = true
				n.scCap[l.ID] = l.Gbps * Gbps
				n.scCount[l.ID] = 0
				n.scFlows[l.ID] = n.scFlows[l.ID][:0]
				n.scTouched = append(n.scTouched, l.ID)
			}
			n.scCount[l.ID]++
			n.scFlows[l.ID] = append(n.scFlows[l.ID], f)
		}
	}

	// Bottleneck scanning must visit links in a deterministic order; link
	// IDs are dense indices, so walking the whole ID space ascending and
	// skipping untouched entries is both ordered and cheaper than sorting
	// the touched list on every recompute.
	nl := len(n.scSeen)
	for unfrozen > 0 {
		// Find the tightest link.
		best := math.Inf(1)
		n.stats.LinkVisits += uint64(nl)
		for id := 0; id < nl; id++ {
			if !n.scSeen[id] || n.scCount[id] <= 0 {
				continue
			}
			share := n.scCap[id] / float64(n.scCount[id])
			if share < best {
				best = share
			}
		}
		if math.IsInf(best, 1) {
			break // remaining flows cross no capacity-bearing links
		}
		// Freeze every unfrozen flow on links at the bottleneck share.
		progressed := false
		n.stats.LinkVisits += uint64(nl)
		for id := 0; id < nl; id++ {
			if !n.scSeen[id] || n.scCount[id] <= 0 {
				continue
			}
			share := n.scCap[id] / float64(n.scCount[id])
			if share > best*(1+rateEpsilon) {
				continue
			}
			for _, f := range n.scFlows[id] {
				if f.frozen {
					continue
				}
				n.stats.FlowVisits++
				n.stats.LinkVisits += uint64(len(f.Path.Links))
				f.rate = best
				f.frozen = true
				unfrozen--
				progressed = true
				for _, l := range f.Path.Links {
					n.scCap[l.ID] -= best
					if n.scCap[l.ID] < 0 {
						n.scCap[l.ID] = 0
					}
					n.scCount[l.ID]--
				}
			}
		}
		if !progressed {
			break
		}
	}

	// CNP rates: saturated links with contention emit notifications toward
	// every sender crossing them. A single flow at line rate builds no
	// queue in the fluid model, so saturation requires ≥2 competing flows.
	for _, id := range n.scTouched {
		n.scLoad[id] = 0
		n.scLoadCnt[id] = 0
	}
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		n.stats.FlowVisits++
		n.stats.LinkVisits += uint64(len(f.Path.Links))
		for _, l := range f.Path.Links {
			n.scLoad[l.ID] += f.rate
			n.scLoadCnt[l.ID]++
		}
	}
	n.stats.LinkVisits += uint64(len(n.scTouched))
	for _, id := range n.scTouched {
		n.scFactor[id] = 0
		capBits := n.linkCap(id)
		if n.scLoadCnt[id] >= 2 && capBits > 0 && n.scLoad[id] >= capBits*(1-1e-6) {
			n.scFactor[id] = float64(n.scLoadCnt[id]-1) / float64(n.scLoadCnt[id])
		}
	}
	for _, f := range n.flows {
		n.stats.FlowVisits++
		n.stats.LinkVisits += uint64(len(f.Path.Links))
		f.cnpRate = 0
		loss := 1.0
		for _, l := range f.Path.Links {
			if factor := n.scFactor[l.ID]; factor > 0 {
				f.cnpRate += n.Cfg.CNPPerSecond * factor
			}
			if fr := n.lossFrac[l.ID]; fr > 0 {
				loss *= 1 - fr
			}
		}
		f.goodRate = f.rate * loss
	}
	n.snapshotUtil()
	// Restore the between-calls invariant: scSeen and scFactor all zero, so
	// links untouched by the next flow set read as absent, not stale.
	for _, id := range n.scTouched {
		n.scSeen[id] = false
		n.scFactor[id] = 0
	}

	// Reschedule the next completion: the earliest ETA across all moving
	// flows. Round up by 1 ns: FromSeconds truncates, and an ETA that
	// lands a sub-nanosecond early would re-fire at the same instant with
	// zero progress. Overshoot is harmless — settle clamps delivery to the
	// remaining bits, so at the scheduled instant the finishing flows sit
	// at exactly zero remaining.
	minEta := sim.MaxTime
	for _, f := range n.flows {
		n.stats.FlowVisits++
		if f.goodRate <= 0 {
			continue
		}
		eta := sim.FromSeconds(f.remaining/f.goodRate) + 1
		if eta < 1 {
			eta = 1
		}
		if eta < minEta {
			minEta = eta
		}
	}
	n.rearmCompletion(minEta)
}

// snapshotUtil copies the aggregate allocated rate per touched link out of
// the CNP-pass scratch into the persistent utilization snapshot that
// Utilization serves, clearing links touched by the previous flow set but
// not this one. Both kernels call it with scLoad/scTouched populated.
func (n *Network) snapshotUtil() {
	for _, id := range n.utilLinks {
		n.utilRate[id] = 0
	}
	n.utilLinks = append(n.utilLinks[:0], n.scTouched...)
	for _, id := range n.utilLinks {
		n.utilRate[id] = n.scLoad[id]
	}
}

// rearmCompletion points the network's single completion event at minEta
// from now. The event is moved in place (Engine.Reschedule) whenever it is
// still queued: recompute runs on every flow-set change, and under the old
// cancel-and-recreate pattern each run leaked one dead event into the
// engine heap — a reroute-heavy run accumulated them faster than pops
// drained them.
func (n *Network) rearmCompletion(minEta sim.Time) {
	if minEta == sim.MaxTime {
		if n.completeEv != nil {
			n.completeEv.Cancel()
			n.completeEv = nil
		}
		return
	}
	if n.Engine.Reschedule(n.completeEv, n.Engine.Now()+minEta) {
		return
	}
	n.completeEv = n.Engine.After(minEta, n.completions)
}
