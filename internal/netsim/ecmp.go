package netsim

import (
	"fmt"
	"hash/fnv"

	"c4/internal/topo"
)

// Route resolves the fabric's ECMP forwarding decision for a connection
// identified by its endpoints and UDP source port, mirroring how RoCE
// fabrics hash the 5-tuple. The mapping is deterministic in sport, which is
// exactly the property C4P's path probing exploits: by trying source ports
// and observing the route each one takes, the master can steer any QP onto
// any healthy (spine, destination-plane) combination.
//
// Forwarding rules:
//   - same leaf group and the source plane's leaf also serves the
//     destination: deliver directly (no spine hop);
//   - otherwise hash over the source leaf's *healthy* uplinks to pick a
//     spine, then hash over that spine's healthy downlinks toward the
//     destination node's two planes to pick the receive port.
//
// Routing around failed links models the underlay's routing protocol
// withdrawing dead links from the ECMP group. If no healthy route exists,
// Route returns an error.
func Route(t *topo.Topology, srcNode, dstNode, rail, srcPlane int, sport uint16) (*topo.Path, error) {
	if srcNode == dstNode {
		return nil, fmt.Errorf("netsim: route from node %d to itself", srcNode)
	}
	src := t.PortAt(srcNode, rail, srcPlane)
	if t.Group(srcNode) == t.Group(dstNode) {
		// The same-plane leaf serves both nodes: direct delivery.
		return t.PathFor(srcNode, dstNode, rail, srcPlane, -1, srcPlane)
	}

	// Stage 1: leaf picks a healthy uplink (spine).
	var spines []int
	for s, up := range src.Leaf.Ups {
		if up.Up() {
			spines = append(spines, s)
		}
	}
	if len(spines) == 0 {
		return nil, fmt.Errorf("netsim: leaf %s has no healthy uplinks", src.Leaf.Name())
	}
	spine := spines[int(hash5(srcNode, dstNode, rail, srcPlane, int(sport), 1)%uint64(len(spines)))]

	// Stage 2: spine picks a healthy downlink toward one of the
	// destination node's two planes.
	dstGroup := t.Group(dstNode)
	var planes []int
	for q := 0; q < topo.Planes; q++ {
		leaf := t.LeafAt(rail, q, dstGroup)
		if leaf.Downs[spine].Up() && t.PortAt(dstNode, rail, q).Down.Up() {
			planes = append(planes, q)
		}
	}
	if len(planes) == 0 {
		return nil, fmt.Errorf("netsim: spine %d has no healthy downlink to node %d", spine, dstNode)
	}
	dstPlane := planes[int(hash5(srcNode, dstNode, rail, srcPlane, int(sport), 2)%uint64(len(planes)))]
	return t.PathFor(srcNode, dstNode, rail, srcPlane, spine, dstPlane)
}

// hash5 is a deterministic FNV-1a hash over the flow identity plus a salt
// distinguishing the two ECMP decision stages. The salt is mixed in first:
// placed last, the two stages' hashes would differ only by a final
// sport-independent transformation and their low bits would be perfectly
// correlated, collapsing the reachable (spine, plane) combinations.
func hash5(a, b, c, d, e, salt int) uint64 {
	h := fnv.New64a()
	var buf [48]byte
	put := func(i int, v int) {
		for k := 0; k < 8; k++ {
			buf[i*8+k] = byte(v >> (8 * k))
		}
	}
	put(0, salt)
	put(1, a)
	put(2, b)
	put(3, c)
	put(4, d)
	put(5, e)
	h.Write(buf[:])
	// FNV-1a's low bit is linear in the input bits (multiplying by an odd
	// prime preserves bit 0), so taking the sum modulo a small ECMP group
	// size directly would make the two decision stages perfectly
	// correlated. A murmur3-style finalizer avalanches the state first.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
