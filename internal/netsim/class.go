package netsim

import (
	"math"
	"sync/atomic"

	"c4/internal/sim"
	"c4/internal/topo"
	"c4/internal/trace"
)

// Flow-class aggregation: the paper's workloads are N-rank collectives, so
// at any instant the flow set is dominated by transfers whose paths are
// literally identical — the same QP pipelining chunks, ECMP hashing two
// sibling QPs onto one spine, tenants sharing a planned route. Max-min
// filling treats equal-path flows identically (they see the same links, so
// they freeze in the same round at the same share), which means the kernel
// only needs one representative per distinct link chain plus a member
// count. This file groups admitted flows into such classes and runs the
// filling, CNP, and ETA passes over classes instead of flows.
//
// The aggregation is strictly behind the per-flow semantics: StartFlow,
// Cancel, Reroute, OnPathDown and per-member OnComplete callbacks are
// untouched, settle still advances each member's remaining bits
// individually (members may differ in size), and the arithmetic is
// arranged so the allocations match the per-flow kernel bit for bit —
// per-member capacity subtraction with per-step clamping rather than one
// fused multiply, so repeated subtraction of the same bottleneck share
// rounds exactly like the reference loop.

// flowClass is the unit of aggregated allocation: every admitted flow
// whose path has an identical link chain.
type flowClass struct {
	key     string
	links   []*topo.Link // the shared chain, in path order
	members []*Flow      // admission order

	// Kernel scratch, valid during one recompute. When components fill in
	// parallel each class belongs to exactly one component, so there is no
	// cross-goroutine sharing.
	alive  bool
	frozen bool
	rate   float64

	span *trace.Span // class-lifetime span; nil when tracing is off
}

// forcedKernel, when nonzero, overrides Config.Aggregate in New: bit 0 set
// means aggregate, bits 8+ carry SettleWorkers. It exists for the
// deterministic-replay tests, which rerun whole scenario families —
// code that builds its own Network internally — through the aggregated
// kernel and compare renderings byte for byte against the committed
// per-flow behavior.
var forcedKernel atomic.Int64

// ForceAggregate turns the flow-class kernel on for every Network created
// until the returned restore function is called, with the given parallel
// settle width (<= 1 serial). It is test plumbing, not API: production
// callers select the kernel per-Network via Config.
func ForceAggregate(workers int) (restore func()) {
	prev := forcedKernel.Swap(1 | int64(workers)<<8)
	return func() { forcedKernel.Store(prev) }
}

// classAdmit joins f to the class of its link chain, creating the class if
// it is the chain's first member. No-op under the per-flow kernel. The
// aggregation key is the path's dense link IDs packed little-endian: two
// paths with equal keys cross exactly the same resources in the same order
// and are indistinguishable to the kernel. The key is built in a reusable
// byte buffer; Go's map lookup on string(buf) does not allocate, so only
// the first member of a new chain pays for a string.
func (n *Network) classAdmit(f *Flow) {
	if n.classIndex == nil {
		return
	}
	b := n.classKey[:0]
	for _, l := range f.Path.Links {
		id := uint32(l.ID)
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	n.classKey = b
	fc := n.classIndex[string(b)]
	if fc == nil {
		fc = &flowClass{key: string(b), links: append([]*topo.Link(nil), f.Path.Links...)}
		n.classIndex[fc.key] = fc
		n.classes = append(n.classes, fc)
		if n.Trace.Enabled() {
			fc.span = n.Trace.Start(nil, "class", classLabel(fc))
		}
	}
	fc.members = append(fc.members, f)
	f.class = fc
}

// classLabel names a class span by its shared link chain's endpoints.
func classLabel(fc *flowClass) string {
	if len(fc.links) == 0 {
		return "empty"
	}
	return fc.links[0].Name + ".." + fc.links[len(fc.links)-1].Name
}

// classRemove detaches f from its class, dropping the class when f was the
// last member. Removal preserves member admission order and the class
// creation order of n.classes, which the kernel iterates.
func (n *Network) classRemove(f *Flow) {
	fc := f.class
	if fc == nil {
		return
	}
	f.class = nil
	for i, m := range fc.members {
		if m == f {
			fc.members = append(fc.members[:i], fc.members[i+1:]...)
			break
		}
	}
	if len(fc.members) == 0 {
		fc.span.FinishAt(n.Engine.Now())
		delete(n.classIndex, fc.key)
		for i, c := range n.classes {
			if c == fc {
				n.classes = append(n.classes[:i], n.classes[i+1:]...)
				break
			}
		}
	}
}

// recomputeAggregated is the flow-class counterpart of recomputePerFlow:
// classes register their links once, the touched links are partitioned
// into connected components (parallel.go), and each component runs
// progressive filling, the CNP pass, and the ETA pass independently —
// serially or on a bounded worker pool, byte-identically either way.
func (n *Network) recomputeAggregated() {
	n.scTouched = n.scTouched[:0]
	for _, fc := range n.classes {
		n.stats.FlowVisits++
		n.stats.LinkVisits += uint64(len(fc.links))
		fc.alive = true
		for _, l := range fc.links {
			if !l.Up() {
				fc.alive = false
				break
			}
		}
		if !fc.alive {
			// Stalled at rate 0, like the per-flow kernel's dead-path case:
			// no capacity, no CNPs, no goodput until the path heals.
			fc.frozen = true
			fc.rate = 0
			for _, f := range fc.members {
				f.rate = 0
				f.cnpRate = 0
				f.goodRate = 0
				f.frozen = true
			}
			continue
		}
		fc.frozen = false
		m := len(fc.members)
		for _, l := range fc.links {
			id := l.ID
			if !n.scSeen[id] {
				n.scSeen[id] = true
				n.scCap[id] = l.Gbps * Gbps
				n.scCount[id] = 0
				n.scClasses[id] = n.scClasses[id][:0]
				n.scTouched = append(n.scTouched, id)
			}
			n.scCount[id] += m
			n.scClasses[id] = append(n.scClasses[id], fc)
		}
	}

	comps := n.partition()
	minEta := n.settleComponents(comps)

	n.snapshotUtil()
	// Restore the between-calls invariant: scSeen and scFactor all zero, so
	// links untouched by the next flow set read as absent, not stale.
	for _, id := range n.scTouched {
		n.scSeen[id] = false
		n.scFactor[id] = 0
	}
	n.rearmCompletion(minEta)
}

// fillComponent runs the three kernel passes over one link component. It
// may execute on a worker goroutine: it touches only the component's own
// links (disjoint scratch indices by construction), its own classes and
// their members, and read-only shared state (topology, config, loss
// fractions). Work counters accumulate in the component and are folded
// into the network's stats during the deterministic merge.
func (n *Network) fillComponent(c *component) {
	// Progressive filling over classes. The inner per-member subtraction
	// loop is deliberately NOT fused into one multiply: the reference
	// kernel subtracts the bottleneck share once per flow with a clamp at
	// zero, and only the same sequence of operations reproduces its
	// floating-point results exactly.
	unfrozen := 0
	for _, fc := range c.classes {
		if !fc.frozen {
			unfrozen += len(fc.members)
		}
	}
	for unfrozen > 0 {
		best := math.Inf(1)
		c.linkVisits += uint64(len(c.links))
		for _, id := range c.links {
			if n.scCount[id] <= 0 {
				continue
			}
			share := n.scCap[id] / float64(n.scCount[id])
			if share < best {
				best = share
			}
		}
		if math.IsInf(best, 1) {
			break // remaining classes cross no capacity-bearing links
		}
		progressed := false
		c.linkVisits += uint64(len(c.links))
		for _, id := range c.links {
			if n.scCount[id] <= 0 {
				continue
			}
			share := n.scCap[id] / float64(n.scCount[id])
			if share > best*(1+rateEpsilon) {
				continue
			}
			for _, fc := range n.scClasses[id] {
				if fc.frozen {
					continue
				}
				c.flowVisits++
				c.linkVisits += uint64(len(fc.links))
				fc.rate = best
				fc.frozen = true
				m := len(fc.members)
				unfrozen -= m
				progressed = true
				for _, l := range fc.links {
					capLeft := n.scCap[l.ID]
					for k := 0; k < m; k++ {
						capLeft -= best
						if capLeft < 0 {
							capLeft = 0
						}
					}
					n.scCap[l.ID] = capLeft
					n.scCount[l.ID] -= m
				}
			}
		}
		if !progressed {
			break
		}
	}

	// CNP pass, class-wise. Adding a class's rate once per member mirrors
	// the reference kernel's per-flow accumulation order closely enough to
	// stay inside the saturation threshold's 1e-6 relative slack.
	for _, id := range c.links {
		n.scLoad[id] = 0
		n.scLoadCnt[id] = 0
	}
	for _, fc := range c.classes {
		if fc.rate <= 0 {
			continue
		}
		c.flowVisits++
		c.linkVisits += uint64(len(fc.links))
		m := len(fc.members)
		for _, l := range fc.links {
			v := n.scLoad[l.ID]
			for k := 0; k < m; k++ {
				v += fc.rate
			}
			n.scLoad[l.ID] = v
			n.scLoadCnt[l.ID] += m
		}
	}
	c.linkVisits += uint64(len(c.links))
	for _, id := range c.links {
		n.scFactor[id] = 0
		capBits := n.linkCap(id)
		if n.scLoadCnt[id] >= 2 && capBits > 0 && n.scLoad[id] >= capBits*(1-1e-6) {
			n.scFactor[id] = float64(n.scLoadCnt[id]-1) / float64(n.scLoadCnt[id])
		}
	}

	// Fan the class results out to the members and find the component's
	// earliest completion ETA. Members share rate, CNP rate, and goodput;
	// only remaining bits differ, and min(remaining)/goodRate is the same
	// monotone transform the per-flow kernel applies member-wise.
	c.eta = sim.MaxTime
	for _, fc := range c.classes {
		c.flowVisits++
		c.linkVisits += uint64(len(fc.links))
		cnp := 0.0
		loss := 1.0
		for _, l := range fc.links {
			if factor := n.scFactor[l.ID]; factor > 0 {
				cnp += n.Cfg.CNPPerSecond * factor
			}
			if fr := n.lossFrac[l.ID]; fr > 0 {
				loss *= 1 - fr
			}
		}
		good := fc.rate * loss
		minRem := math.Inf(1)
		for _, f := range fc.members {
			f.rate = fc.rate
			f.frozen = fc.frozen
			f.cnpRate = cnp
			f.goodRate = good
			if f.remaining < minRem {
				minRem = f.remaining
			}
		}
		if good > 0 {
			eta := sim.FromSeconds(minRem/good) + 1
			if eta < 1 {
				eta = 1
			}
			if eta < c.eta {
				c.eta = eta
			}
		}
	}
}
