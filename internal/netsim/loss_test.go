package netsim

import (
	"testing"

	"c4/internal/sim"
)

func TestLinkLossStretchesCompletion(t *testing.T) {
	eng, n := testbed()
	path, err := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half the packets silently vanish on the first fabric hop: the flow
	// still occupies 200 Gbps of wire, but delivers at 100 Gbps.
	n.SetLinkLoss(path.Links[1], 0.5)
	var doneAt sim.Time
	n.StartFlow(path, 200e9, "lossy", func(f *Flow) { doneAt = eng.Now() })
	eng.Run()
	if !almostEqual(doneAt.Seconds(), 2.0, 0.01) {
		t.Fatalf("completion at %v, want ~2s (1s payload at 50%% loss)", doneAt)
	}
}

func TestLinkLossCompoundsAcrossHops(t *testing.T) {
	eng, n := testbed()
	path, err := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.SetLinkLoss(path.Links[1], 0.5)
	n.SetLinkLoss(path.Links[2], 0.5)
	var doneAt sim.Time
	n.StartFlow(path, 200e9, "lossy", func(f *Flow) { doneAt = eng.Now() })
	eng.Run()
	// Goodput factor (1-0.5)^2 = 0.25 -> ~4 s.
	if !almostEqual(doneAt.Seconds(), 4.0, 0.01) {
		t.Fatalf("completion at %v, want ~4s", doneAt)
	}
}

func TestLinkLossClearedMidFlight(t *testing.T) {
	eng, n := testbed()
	path, err := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lossy := path.Links[1]
	n.SetLinkLoss(lossy, 0.5)
	var doneAt sim.Time
	n.StartFlow(path, 200e9, "healing", func(f *Flow) { doneAt = eng.Now() })
	// After 1 s the link heals: 100 Gb delivered, 100 Gb to go at full rate.
	eng.Schedule(sim.Second, func() { n.SetLinkLoss(lossy, 0) })
	eng.Run()
	if got := n.LinkLoss(lossy); got != 0 {
		t.Fatalf("LinkLoss after clear = %v, want 0", got)
	}
	if !almostEqual(doneAt.Seconds(), 1.5, 0.01) {
		t.Fatalf("completion at %v, want ~1.5s", doneAt)
	}
}

func TestLinkLossDoesNotAffectOtherPaths(t *testing.T) {
	eng, n := testbed()
	lossy, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	clean, _ := n.Topo.PathFor(4, 6, 0, 0, 1, 0)
	n.SetLinkLoss(lossy.Links[1], 0.9)
	var doneAt sim.Time
	n.StartFlow(clean, 200e9, "clean", func(f *Flow) { doneAt = eng.Now() })
	eng.Run()
	if !almostEqual(doneAt.Seconds(), 1.0, 0.01) {
		t.Fatalf("clean flow finished at %v, want ~1s", doneAt)
	}
}

func TestLinkLossClamped(t *testing.T) {
	_, n := testbed()
	l := n.Topo.Links[0]
	n.SetLinkLoss(l, -0.5)
	if got := n.LinkLoss(l); got != 0 {
		t.Fatalf("negative loss clamped to %v, want 0", got)
	}
	n.SetLinkLoss(l, 1.5)
	if got := n.LinkLoss(l); got != 0.99 {
		t.Fatalf("excess loss clamped to %v, want 0.99", got)
	}
}

func TestGoodputReporting(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	n.SetLinkLoss(path.Links[1], 0.25)
	f := n.StartFlow(path, 1e12, "g", nil)
	eng.RunUntil(sim.Second)
	if f.Rate() <= 0 {
		t.Fatal("flow has no rate")
	}
	if !almostEqual(f.Goodput(), f.Rate()*0.75, 1) {
		t.Fatalf("goodput %v, rate %v, want 0.75 ratio", f.Goodput(), f.Rate())
	}
}
