// Package netsim is a deterministic flow-level (fluid) network simulator.
//
// Flows traverse a topo.Path and share each unidirectional link max-min
// fairly, the standard fidelity level for traffic-engineering studies: N
// greedy flows crossing one 200 Gbps link each progress at 200/N Gbps, which
// is exactly the traffic-collision behaviour C4 (HPCA'25) sets out to avoid.
//
// The simulator is event-driven: whenever the flow set or link state
// changes, rates are recomputed once (batched per virtual instant) and each
// flow's completion event is rescheduled analytically. Per-link carried-bit
// counters feed the switch-port bandwidth figures, and a congestion-
// notification (CNP) process on saturated links feeds Fig 11.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"c4/internal/sim"
	"c4/internal/topo"
)

// Gbps converts gigabits per second to bits per second.
const Gbps = 1e9

const rateEpsilon = 1e-6

// Config tunes simulator-wide constants.
type Config struct {
	// BaseLatency is the fixed per-flow setup+propagation delay applied
	// before a flow starts moving data.
	BaseLatency sim.Time
	// CNPPerSecond is the congestion-notification rate a sender receives
	// for each fully-contended link on its path, scaled by the contention
	// factor (flows-1)/flows. At 2:1 oversubscription a flow crosses two
	// saturated stages (leaf-up and spine-down) at factor 1/2 each, and a
	// bonded port sums its two plane flows, so 7.5e3 reproduces the ~15k
	// CNP/s per bonded port of the paper's Fig 11.
	CNPPerSecond float64
}

// DefaultConfig returns the calibration used throughout the repository.
func DefaultConfig() Config {
	return Config{
		BaseLatency:  10 * sim.Microsecond,
		CNPPerSecond: 7.5e3,
	}
}

// Flow is one in-flight transfer.
type Flow struct {
	ID    int
	Label string
	Path  *topo.Path

	// OnComplete fires when the last bit is delivered.
	OnComplete func(*Flow)
	// OnPathDown fires when a link on the flow's path fails. The handler
	// may Reroute or Cancel the flow; if it does neither the flow stalls
	// at rate zero until the link recovers.
	OnPathDown func(*Flow)

	sizeBits   float64
	remaining  float64
	rate       float64 // bits per second, current allocation
	cnpRate    float64 // CNPs per second currently being received
	started    sim.Time
	admitted   bool
	done       bool
	completeEv *sim.Event
	admitEv    *sim.Event
}

// Rate reports the flow's current bandwidth allocation in bits/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining reports undelivered bits.
func (f *Flow) Remaining() float64 { return f.remaining }

// SizeBits reports the flow's total size.
func (f *Flow) SizeBits() float64 { return f.sizeBits }

// Done reports whether the flow has completed or been cancelled.
func (f *Flow) Done() bool { return f.done }

// Started reports when the flow was submitted.
func (f *Flow) Started() sim.Time { return f.started }

// Network is the fluid simulator. All methods must be called from the
// simulation goroutine (inside engine callbacks).
type Network struct {
	Engine *sim.Engine
	Topo   *topo.Topology
	Cfg    Config

	flows   []*Flow // active flows, insertion order (stable IDs)
	nextID  int
	pending *sim.Event // scheduled recompute, nil if none

	// carriedBits accumulates delivered bits per link for bandwidth
	// sampling (Fig 13); cnpCount accumulates CNPs per physical source
	// port (Fig 11).
	carriedBits map[int]float64
	cnpCount    map[*topo.Port]float64
	lastSettle  sim.Time
}

// New creates a simulator bound to an engine and fabric.
func New(eng *sim.Engine, t *topo.Topology, cfg Config) *Network {
	return &Network{
		Engine:      eng,
		Topo:        t,
		Cfg:         cfg,
		carriedBits: make(map[int]float64),
		cnpCount:    make(map[*topo.Port]float64),
	}
}

// StartFlow submits a transfer of sizeBits along path. onComplete may be
// nil. The returned flow can be rerouted or cancelled.
func (n *Network) StartFlow(path *topo.Path, sizeBits float64, label string, onComplete func(*Flow)) *Flow {
	if sizeBits <= 0 {
		sizeBits = 1 // zero-size control message: deliver after latency
	}
	n.nextID++
	f := &Flow{
		ID:         n.nextID,
		Label:      label,
		Path:       path,
		OnComplete: onComplete,
		sizeBits:   sizeBits,
		remaining:  sizeBits,
		started:    n.Engine.Now(),
	}
	f.admitEv = n.Engine.After(n.Cfg.BaseLatency, func() {
		f.admitted = true
		n.flows = append(n.flows, f)
		n.invalidate()
	})
	return f
}

// Cancel removes a flow without completing it.
func (n *Network) Cancel(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	if f.admitEv != nil {
		f.admitEv.Cancel()
	}
	if f.completeEv != nil {
		f.completeEv.Cancel()
	}
	if f.admitted {
		n.remove(f)
		n.invalidate()
	}
}

// Reroute moves a live flow onto a new path; remaining bits carry over.
func (n *Network) Reroute(f *Flow, path *topo.Path) {
	if f.done {
		return
	}
	n.settle()
	f.Path = path
	n.invalidate()
}

// SetLinkCapacity changes a link's capacity (in Gbps), modeling partial
// degradations such as a NIC renegotiating to a lower rate or a PCIe width
// downgrade. Active flows are re-allocated immediately.
func (n *Network) SetLinkCapacity(l *topo.Link, gbps float64) {
	if gbps < 0 {
		gbps = 0
	}
	n.settle()
	l.Gbps = gbps
	n.invalidate()
}

// SetLinkUp changes a link's health and notifies affected flows.
func (n *Network) SetLinkUp(l *topo.Link, up bool) {
	if l.Up() == up {
		return
	}
	n.settle()
	l.SetUp(up)
	if !up {
		// Copy: handlers may reroute/cancel, mutating n.flows.
		var hit []*Flow
		for _, f := range n.flows {
			for _, pl := range f.Path.Links {
				if pl == l {
					hit = append(hit, f)
					break
				}
			}
		}
		for _, f := range hit {
			if !f.done && f.OnPathDown != nil {
				f.OnPathDown(f)
			}
		}
	}
	n.invalidate()
}

// ActiveFlows reports the number of admitted, unfinished flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// CarriedBits reports cumulative bits delivered over a link.
func (n *Network) CarriedBits(l *topo.Link) float64 {
	n.settle()
	return n.carriedBits[l.ID]
}

// CNPCount reports cumulative congestion notifications received by the
// sender behind the given physical port.
func (n *Network) CNPCount(p *topo.Port) float64 {
	n.settle()
	return n.cnpCount[p]
}

// FlowsOn reports how many active flows traverse the link.
func (n *Network) FlowsOn(l *topo.Link) int {
	c := 0
	for _, f := range n.flows {
		for _, pl := range f.Path.Links {
			if pl == l {
				c++
				break
			}
		}
	}
	return c
}

// Utilization reports the current aggregate rate on a link in bits/second.
func (n *Network) Utilization(l *topo.Link) float64 {
	n.settle() // keep carried-bit counters consistent with the rates
	var u float64
	for _, f := range n.flows {
		for _, pl := range f.Path.Links {
			if pl == l {
				u += f.rate
				break
			}
		}
	}
	return u
}

func (n *Network) remove(f *Flow) {
	for i, g := range n.flows {
		if g == f {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			return
		}
	}
}

// invalidate schedules a single rate recomputation at the current instant.
func (n *Network) invalidate() {
	if n.pending != nil && !n.pending.Cancelled() && n.pending.At() == n.Engine.Now() {
		return
	}
	n.pending = n.Engine.After(0, n.recompute)
}

// settle advances all flows to the current instant at their current rates,
// updating remaining bits, per-link carried-bit counters, and CNP counters.
func (n *Network) settle() {
	now := n.Engine.Now()
	dt := (now - n.lastSettle).Seconds()
	n.lastSettle = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		delta := f.rate * dt
		if delta > f.remaining {
			delta = f.remaining
		}
		f.remaining -= delta
		for _, l := range f.Path.Links {
			n.carriedBits[l.ID] += delta
		}
		if f.cnpRate > 0 && f.Path.SrcPort != nil {
			n.cnpCount[f.Path.SrcPort] += f.cnpRate * dt
		}
	}
}

// recompute performs max-min fair allocation (progressive filling) across
// all admitted flows and reschedules completion events.
func (n *Network) recompute() {
	n.settle()
	n.pending = nil

	type linkState struct {
		cap   float64
		count int
		flows []*Flow
	}
	links := make(map[int]*linkState)
	frozen := make(map[*Flow]bool, len(n.flows))

	for _, f := range n.flows {
		f.rate = 0
		alive := true
		for _, l := range f.Path.Links {
			if !l.Up() {
				alive = false
				break
			}
		}
		if !alive {
			frozen[f] = true // stalled at rate 0
			continue
		}
		for _, l := range f.Path.Links {
			ls := links[l.ID]
			if ls == nil {
				ls = &linkState{cap: l.Gbps * Gbps}
				links[l.ID] = ls
			}
			ls.count++
			ls.flows = append(ls.flows, f)
		}
	}

	// Deterministic order over links for bottleneck scanning.
	linkIDs := make([]int, 0, len(links))
	for id := range links {
		linkIDs = append(linkIDs, id)
	}
	sort.Ints(linkIDs)

	unfrozen := 0
	for _, f := range n.flows {
		if !frozen[f] {
			unfrozen++
		}
	}
	for unfrozen > 0 {
		// Find the tightest link.
		best := math.Inf(1)
		for _, id := range linkIDs {
			ls := links[id]
			if ls.count <= 0 {
				continue
			}
			share := ls.cap / float64(ls.count)
			if share < best {
				best = share
			}
		}
		if math.IsInf(best, 1) {
			break // remaining flows cross no capacity-bearing links
		}
		// Freeze every unfrozen flow on links at the bottleneck share.
		progressed := false
		for _, id := range linkIDs {
			ls := links[id]
			if ls.count <= 0 {
				continue
			}
			share := ls.cap / float64(ls.count)
			if share > best*(1+rateEpsilon) {
				continue
			}
			for _, f := range ls.flows {
				if frozen[f] {
					continue
				}
				f.rate = best
				frozen[f] = true
				unfrozen--
				progressed = true
				for _, l := range f.Path.Links {
					fls := links[l.ID]
					fls.cap -= best
					if fls.cap < 0 {
						fls.cap = 0
					}
					fls.count--
				}
			}
		}
		if !progressed {
			break
		}
	}

	// CNP rates: saturated links with contention emit notifications toward
	// every sender crossing them. A single flow at line rate builds no
	// queue in the fluid model, so saturation requires ≥2 competing flows.
	type load struct {
		total float64
		count int
	}
	loads := make(map[int]*load)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		for _, l := range f.Path.Links {
			ld := loads[l.ID]
			if ld == nil {
				ld = &load{}
				loads[l.ID] = ld
			}
			ld.total += f.rate
			ld.count++
		}
	}
	saturated := make(map[int]float64) // linkID -> contention factor
	for id, ld := range loads {
		capBits := n.linkCap(id)
		if ld.count >= 2 && capBits > 0 && ld.total >= capBits*(1-1e-6) {
			saturated[id] = float64(ld.count-1) / float64(ld.count)
		}
	}
	for _, f := range n.flows {
		f.cnpRate = 0
		for _, l := range f.Path.Links {
			if factor, ok := saturated[l.ID]; ok {
				f.cnpRate += n.Cfg.CNPPerSecond * factor
			}
		}
	}

	// Reschedule completions.
	for _, f := range n.flows {
		if f.completeEv != nil {
			f.completeEv.Cancel()
			f.completeEv = nil
		}
		if f.rate <= 0 {
			continue
		}
		// Round up by 1 ns: FromSeconds truncates, and an ETA that lands
		// a sub-nanosecond early would re-fire at the same instant with
		// zero progress. Overshoot is harmless — settle clamps delivery
		// to the remaining bits.
		eta := sim.FromSeconds(f.remaining/f.rate) + 1
		if eta < 1 {
			eta = 1
		}
		ff := f
		f.completeEv = n.Engine.After(eta, func() { n.complete(ff) })
	}
}

func (n *Network) linkCap(id int) float64 {
	return n.Topo.Links[id].Gbps * Gbps
}

func (n *Network) complete(f *Flow) {
	if f.done {
		return
	}
	n.settle()
	if f.remaining > f.sizeBits*1e-9+1 {
		// Rate changed since scheduling; recompute will reschedule.
		n.invalidate()
		return
	}
	f.remaining = 0
	f.done = true
	n.remove(f)
	n.invalidate()
	if f.OnComplete != nil {
		f.OnComplete(f)
	}
}

// String summarizes the simulator state; useful in debugging sessions.
func (n *Network) String() string {
	return fmt.Sprintf("netsim{t=%v flows=%d}", n.Engine.Now(), len(n.flows))
}
