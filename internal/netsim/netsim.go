// Package netsim is a deterministic flow-level (fluid) network simulator.
//
// Flows traverse a topo.Path and share each unidirectional link max-min
// fairly, the standard fidelity level for traffic-engineering studies: N
// greedy flows crossing one 200 Gbps link each progress at 200/N Gbps, which
// is exactly the traffic-collision behaviour C4 (HPCA'25) sets out to avoid.
//
// The simulator is event-driven: whenever the flow set or link state
// changes, rates are recomputed once (batched per virtual instant) and each
// flow's completion event is rescheduled analytically. Per-link carried-bit
// counters feed the switch-port bandwidth figures, and a congestion-
// notification (CNP) process on saturated links feeds Fig 11. Read paths
// (Utilization, CarriedBits, CNPCount) flush any pending same-instant
// recompute first, so observers inside event callbacks never see stale
// rates.
//
// Two interchangeable kernels implement the recompute. The per-flow kernel
// is the reference: progressive filling over every flow and the dense link
// space. The flow-class kernel (Config.Aggregate) collapses flows with
// identical link chains into one fluid class with a member count and
// partitions the touched links into independent components that can settle
// on a worker pool (Config.SettleWorkers). Both knobs are pure performance:
// every kernel configuration must reproduce the reference bit for bit —
// same rates, same completion instants, same event counts — a rule the
// package's equivalence tests, the accl collective tests, and the harness
// family replays enforce, and the committed bench baseline pins.
package netsim

import (
	"fmt"

	"c4/internal/sim"
	"c4/internal/topo"
	"c4/internal/trace"
)

// Gbps converts gigabits per second to bits per second.
const Gbps = 1e9

const rateEpsilon = 1e-6

// Config tunes simulator-wide constants.
type Config struct {
	// BaseLatency is the fixed per-flow setup+propagation delay applied
	// before a flow starts moving data.
	BaseLatency sim.Time
	// CNPPerSecond is the congestion-notification rate a sender receives
	// for each fully-contended link on its path, scaled by the contention
	// factor (flows-1)/flows. At 2:1 oversubscription a flow crosses two
	// saturated stages (leaf-up and spine-down) at factor 1/2 each, and a
	// bonded port sums its two plane flows, so 7.5e3 reproduces the ~15k
	// CNP/s per bonded port of the paper's Fig 11.
	CNPPerSecond float64

	// Aggregate selects the flow-class kernel: concurrent flows sharing an
	// identical link chain are allocated as one fluid class with a member
	// count, so recompute cost scales with the number of distinct paths
	// instead of the number of flows (see class.go). Off by default; the
	// per-flow kernel remains the reference implementation and the
	// allocations are identical either way, so this is purely a
	// performance knob for large worlds.
	Aggregate bool
	// SettleWorkers bounds the goroutines used to run progressive filling
	// over independent link components concurrently (see parallel.go).
	// Values <= 1 mean serial. Only the aggregated kernel consults it;
	// results are byte-identical to a serial run because components share
	// no links, classes, or scratch entries.
	SettleWorkers int
}

// DefaultConfig returns the calibration used throughout the repository.
func DefaultConfig() Config {
	return Config{
		BaseLatency:  10 * sim.Microsecond,
		CNPPerSecond: 7.5e3,
	}
}

// Flow is one in-flight transfer.
type Flow struct {
	ID    int
	Label string
	Path  *topo.Path

	// OnComplete fires when the last bit is delivered.
	OnComplete func(*Flow)
	// OnPathDown fires when a link on the flow's path fails. The handler
	// may Reroute or Cancel the flow; if it does neither the flow stalls
	// at rate zero until the link recovers.
	OnPathDown func(*Flow)

	sizeBits  float64
	remaining float64
	rate      float64 // bits per second, current allocation
	goodRate  float64 // bits per second actually delivered (rate minus loss)
	cnpRate   float64 // CNPs per second currently being received
	started   sim.Time
	admitted  bool
	done      bool
	frozen    bool       // scratch flag used during max-min filling
	class     *flowClass // aggregation class; nil under the per-flow kernel
	admitEv   *sim.Event
	span      *trace.Span // flow-lifetime span; nil when tracing is off
}

// Rate reports the flow's current bandwidth allocation in bits/second.
func (f *Flow) Rate() float64 { return f.rate }

// Goodput reports the flow's current delivered bandwidth in bits/second:
// the allocation scaled down by silent packet loss on the path. Equal to
// Rate when every link on the path is loss-free.
func (f *Flow) Goodput() float64 { return f.goodRate }

// Remaining reports undelivered bits.
func (f *Flow) Remaining() float64 { return f.remaining }

// SizeBits reports the flow's total size.
func (f *Flow) SizeBits() float64 { return f.sizeBits }

// Done reports whether the flow has completed or been cancelled.
func (f *Flow) Done() bool { return f.done }

// Started reports when the flow was submitted.
func (f *Flow) Started() sim.Time { return f.started }

// Network is the fluid simulator. All methods must be called from the
// simulation goroutine (inside engine callbacks).
type Network struct {
	Engine *sim.Engine
	Topo   *topo.Topology
	Cfg    Config

	// Trace, when non-nil, records a span per flow lifetime (submission to
	// completion, base latency included) plus instant events for reroutes
	// and path-down notifications as children of the flow span. Parentage
	// comes from the tracer's current scope, so flows started by a traced
	// collective op nest under it. Purely observational: no simulation
	// state reads it.
	Trace *trace.Tracer

	flows   []*Flow // active flows, insertion order (stable IDs)
	nextID  int
	pending *sim.Event // scheduled recompute, nil if none
	dirty   bool       // flow set or link state changed since last recompute

	// Flow-class aggregation state (aggregated kernel only, see class.go):
	// classes in creation order for deterministic kernel iteration, plus a
	// key index for O(1) membership on admit/reroute.
	classes    []*flowClass
	classIndex map[string]*flowClass
	classKey   []byte // scratch for key building

	// completeEv is the single next-completion event. Flows complete when
	// their remaining bits reach zero at the scheduled instant; keeping one
	// event for the whole network (instead of one per flow rescheduled on
	// every rate change) keeps the engine's queue small and cheap.
	completeEv *sim.Event
	completed  []*Flow // scratch for collecting finished flows

	// carriedBits accumulates delivered bits per link (indexed by link ID)
	// for bandwidth sampling (Fig 13); cnpCount accumulates CNPs per
	// physical source port, indexed by the port's up-link ID (Fig 11).
	carriedBits []float64
	cnpCount    []float64
	lastSettle  sim.Time

	// lossFrac is the silent packet-drop fraction per link (indexed by
	// link ID). A lossy link stays Up and keeps its capacity — senders
	// burn wire bandwidth on retransmissions — but goodput across it
	// shrinks by the loss factor, which is exactly the failure mode only
	// transport-level statistics (C4D) can see.
	lossFrac []float64

	// Scratch state reused across recompute calls. Link IDs are dense
	// (indices into Topo.Links), so slice-indexed accumulators replace the
	// per-call maps that otherwise dominate the simulator's CPU profile.
	scCap     []float64      // remaining capacity during progressive filling
	scCount   []int          // unfrozen flows on the link
	scFlows   [][]*Flow      // flows crossing the link (per-flow kernel)
	scClasses [][]*flowClass // classes crossing the link (aggregated kernel)
	scSeen    []bool         // link appears in scTouched
	scLoad    []float64      // aggregate allocated rate (CNP pass)
	scLoadCnt []int          // allocated flows on the link (CNP pass)
	scFactor  []float64      // CNP contention factor; 0 = not saturated
	scTouched []int          // link IDs referenced by the current flow set

	// Incremental read-path counters: flowsOn tracks active-flow membership
	// per link (maintained at admit/remove/reroute), and utilRate snapshots
	// the aggregate allocated rate per link at the end of each recompute
	// (utilLinks lists the links holding a nonzero snapshot so the next
	// recompute can clear them). Together they make FlowsOn and Utilization
	// O(1) instead of scans over every active flow.
	flowsOn   []int
	utilRate  []float64
	utilLinks []int

	// Union-find and component scratch for the parallel settle partition
	// (see parallel.go).
	ufParent  []int32
	compSlot  []int32
	sortedIDs []int
	compPool  []*component
	lastComps int

	stats KernelStats
}

// New creates a simulator bound to an engine and fabric.
func New(eng *sim.Engine, t *topo.Topology, cfg Config) *Network {
	if v := forcedKernel.Load(); v != 0 {
		cfg.Aggregate = true
		cfg.SettleWorkers = int(v >> 8)
	}
	nl := len(t.Links)
	n := &Network{
		Engine:      eng,
		Topo:        t,
		Cfg:         cfg,
		carriedBits: make([]float64, nl),
		cnpCount:    make([]float64, nl),
		lossFrac:    make([]float64, nl),
		scCap:       make([]float64, nl),
		scCount:     make([]int, nl),
		scFlows:     make([][]*Flow, nl),
		scSeen:      make([]bool, nl),
		scLoad:      make([]float64, nl),
		scLoadCnt:   make([]int, nl),
		scFactor:    make([]float64, nl),
		flowsOn:     make([]int, nl),
		utilRate:    make([]float64, nl),
	}
	if n.Cfg.Aggregate {
		n.classIndex = make(map[string]*flowClass)
		n.scClasses = make([][]*flowClass, nl)
		n.ufParent = make([]int32, nl)
		n.compSlot = make([]int32, nl)
	}
	return n
}

// StartFlow submits a transfer of sizeBits along path. onComplete may be
// nil. The returned flow can be rerouted or cancelled.
func (n *Network) StartFlow(path *topo.Path, sizeBits float64, label string, onComplete func(*Flow)) *Flow {
	if sizeBits <= 0 {
		sizeBits = 1 // zero-size control message: deliver after latency
	}
	n.nextID++
	f := &Flow{
		ID:         n.nextID,
		Label:      label,
		Path:       path,
		OnComplete: onComplete,
		sizeBits:   sizeBits,
		remaining:  sizeBits,
		started:    n.Engine.Now(),
	}
	if n.Trace.Enabled() {
		f.span = n.Trace.Start(nil, "flow", label).Annotate("path", pathLabel(path))
	}
	f.admitEv = n.Engine.After(n.Cfg.BaseLatency, func() {
		f.admitted = true
		n.flows = append(n.flows, f)
		for _, l := range f.Path.Links {
			n.flowsOn[l.ID]++
		}
		n.classAdmit(f)
		n.invalidate()
		// A flow submitted onto an already-failed path would otherwise be
		// admitted silently at rate zero: SetLinkUp only notifies flows that
		// exist when the link goes down, so nothing would ever fire
		// OnPathDown and a pinned-route sender would wait on OnComplete
		// forever. Health is checked post-admission so the handler may
		// Reroute or Cancel the flow like any other down-path notification.
		if !f.done && f.OnPathDown != nil && !f.Path.Up() {
			n.Trace.Event(f.span, "path-down", "admitted-on-down-path")
			f.OnPathDown(f)
		}
	})
	return f
}

// Cancel removes a flow without completing it.
func (n *Network) Cancel(f *Flow) {
	if f.done {
		return
	}
	// Settle before mutating the flow set, exactly like Reroute and the
	// SetLink* mutators: the window since lastSettle was carried by the old
	// flow set, and removing the flow first would drop its delivered bits
	// (and CNPs) from the per-link counters for that window.
	if f.admitted {
		n.settle()
	}
	f.done = true
	f.span.Annotate("cancelled", "1")
	f.span.FinishAt(n.Engine.Now())
	if f.admitEv != nil {
		f.admitEv.Cancel()
	}
	if f.admitted {
		n.remove(f)
		n.invalidate()
	}
}

// Reroute moves a live flow onto a new path; remaining bits carry over.
// Under the aggregated kernel the flow leaves its current class and joins
// (or creates) the class of the new link chain.
func (n *Network) Reroute(f *Flow, path *topo.Path) {
	if f.done {
		return
	}
	if n.Trace.Enabled() {
		n.Trace.Event(f.span, "reroute", pathLabel(path))
	}
	n.settle()
	if f.admitted {
		for _, l := range f.Path.Links {
			n.flowsOn[l.ID]--
		}
		n.classRemove(f)
	}
	f.Path = path
	if f.admitted {
		for _, l := range f.Path.Links {
			n.flowsOn[l.ID]++
		}
		n.classAdmit(f)
	}
	n.invalidate()
}

// SetLinkCapacity changes a link's capacity (in Gbps), modeling partial
// degradations such as a NIC renegotiating to a lower rate or a PCIe width
// downgrade. Active flows are re-allocated immediately.
func (n *Network) SetLinkCapacity(l *topo.Link, gbps float64) {
	if gbps < 0 {
		gbps = 0
	}
	n.settle()
	l.Gbps = gbps
	n.invalidate()
}

// SetLinkLoss sets a link's silent packet-drop fraction in [0, 0.99]. The
// link stays healthy and keeps its wire capacity; flows crossing it deliver
// only a (1-frac) share of their allocated rate. Losses on multiple links
// of one path compound multiplicatively.
func (n *Network) SetLinkLoss(l *topo.Link, frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 0.99 {
		frac = 0.99 // total silence would be a down link, not a lossy one
	}
	n.settle()
	n.lossFrac[l.ID] = frac
	n.invalidate()
}

// LinkLoss reports a link's current silent packet-drop fraction.
func (n *Network) LinkLoss(l *topo.Link) float64 { return n.lossFrac[l.ID] }

// SetLinkUp changes a link's health and notifies affected flows.
func (n *Network) SetLinkUp(l *topo.Link, up bool) {
	if l.Up() == up {
		return
	}
	n.settle()
	l.SetUp(up)
	if !up {
		// Copy: handlers may reroute/cancel, mutating n.flows.
		var hit []*Flow
		for _, f := range n.flows {
			for _, pl := range f.Path.Links {
				if pl == l {
					hit = append(hit, f)
					break
				}
			}
		}
		for _, f := range hit {
			if !f.done && f.OnPathDown != nil {
				n.Trace.Event(f.span, "path-down", l.Name)
				f.OnPathDown(f)
			}
		}
	}
	n.invalidate()
}

// ActiveFlows reports the number of admitted, unfinished flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// CarriedBits reports cumulative bits delivered over a link.
func (n *Network) CarriedBits(l *topo.Link) float64 {
	n.flush()
	return n.carriedBits[l.ID]
}

// CNPCount reports cumulative congestion notifications received by the
// sender behind the given physical port.
func (n *Network) CNPCount(p *topo.Port) float64 {
	n.flush()
	return n.cnpCount[p.Up.ID]
}

// FlowsOn reports how many active flows traverse the link. Membership is
// maintained incrementally at admit/remove/reroute, so this is O(1).
func (n *Network) FlowsOn(l *topo.Link) int {
	return n.flowsOn[l.ID]
}

// Utilization reports the current aggregate rate on a link in bits/second,
// from the per-link snapshot taken at the end of the last recompute (O(1),
// no flow scan). flush first runs any recompute pending at this instant,
// so a reader in the same callback as a SetLink*/StartFlow mutation sees
// post-mutation rates.
func (n *Network) Utilization(l *topo.Link) float64 {
	n.flush()
	return n.utilRate[l.ID]
}

// Stats reports cumulative deterministic work counters for the rate
// kernel. They count algorithmic steps, not wall-clock, so they are
// byte-for-byte reproducible and safe to track in bench baselines.
func (n *Network) Stats() KernelStats { return n.stats }

// ClassCount reports the number of live flow classes (0 under the
// per-flow kernel).
func (n *Network) ClassCount() int { return len(n.classes) }

// ComponentCount reports how many independent link components the last
// aggregated recompute partitioned the traffic into (0 under the per-flow
// kernel) — the available parallelism for SettleWorkers.
func (n *Network) ComponentCount() int { return n.lastComps }

func (n *Network) remove(f *Flow) {
	for i, g := range n.flows {
		if g == f {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			for _, l := range f.Path.Links {
				n.flowsOn[l.ID]--
			}
			n.classRemove(f)
			return
		}
	}
}

// invalidate schedules a single rate recomputation at the current instant.
func (n *Network) invalidate() {
	n.dirty = true
	if n.pending != nil && !n.pending.Cancelled() && n.pending.At() == n.Engine.Now() {
		return
	}
	n.pending = n.Engine.After(0, n.recompute)
}

// flush brings every observable up to the current instant. Mutators
// (StartFlow admission, SetLink*, Cancel, Reroute) batch their rate
// recomputation into a single After(0) event, so between a mutation and
// that event firing the flow rates are stale; a reader in that window —
// same virtual instant, later callback — must not see pre-mutation rates.
// flush runs the pending recomputation early (the event itself then fires
// as a no-op, keeping the engine's event accounting unchanged) and settles
// the carried-bit/CNP counters.
func (n *Network) flush() {
	if n.dirty && n.pending != nil && !n.pending.Cancelled() && n.pending.At() == n.Engine.Now() {
		n.recomputeNow()
		return
	}
	n.settle()
}

// settle advances all flows to the current instant at their current rates,
// updating remaining bits, per-link carried-bit counters, and CNP counters.
func (n *Network) settle() {
	now := n.Engine.Now()
	dt := (now - n.lastSettle).Seconds()
	n.lastSettle = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		if f.goodRate <= 0 {
			continue
		}
		delta := f.goodRate * dt
		if delta > f.remaining {
			delta = f.remaining
		}
		f.remaining -= delta
		for _, l := range f.Path.Links {
			n.carriedBits[l.ID] += delta
		}
		if f.cnpRate > 0 && f.Path.SrcPort != nil {
			n.cnpCount[f.Path.SrcPort.Up.ID] += f.cnpRate * dt
		}
	}
}

// recompute is the deferred After(0) rate-recomputation event. The dirty
// check lets a read-path flush run the work early in the same instant: the
// event then fires as a no-op, so engine event accounting is independent
// of whether (and when) anyone read an observable.
func (n *Network) recompute() {
	n.pending = nil
	if !n.dirty {
		return
	}
	n.recomputeNow()
}

// recomputeNow performs max-min fair allocation (progressive filling)
// across all admitted flows and reschedules the completion event, through
// one of two kernels producing identical allocations: the reference
// per-flow kernel (kernel.go) or the flow-class kernel (class.go,
// parallel.go) selected by Config.Aggregate.
func (n *Network) recomputeNow() {
	n.settle()
	n.dirty = false
	n.stats.Recomputes++
	if n.Cfg.Aggregate {
		n.recomputeAggregated()
	} else {
		n.recomputePerFlow()
	}
}

func (n *Network) linkCap(id int) float64 {
	return n.Topo.Links[id].Gbps * Gbps
}

// completions fires at the earliest completion ETA: it settles flows to
// the current instant and finishes every flow that has no bits left. Flows
// whose rate changed since the ETA was computed simply are not at zero yet;
// the recompute scheduled here re-arms the event for them.
func (n *Network) completions() {
	n.completeEv = nil
	n.settle()
	n.completed = n.completed[:0]
	for _, f := range n.flows {
		if f.remaining <= 0 {
			n.completed = append(n.completed, f)
		}
	}
	n.invalidate()
	// Finish flows one at a time, callback included, exactly as the old
	// per-flow completion events did: an OnComplete handler may Cancel a
	// same-instant batchmate, and that flow must then neither complete nor
	// see its callback fire.
	for _, f := range n.completed {
		if f.done {
			continue // cancelled by an earlier handler in this batch
		}
		f.remaining = 0
		f.done = true
		f.span.FinishAt(n.Engine.Now())
		n.remove(f)
		if f.OnComplete != nil {
			f.OnComplete(f)
		}
	}
}

// pathLabel renders a path for span attributes. topo.Path.String assumes
// fabric endpoints; intra-node (NVLink) paths have no ports, so fall back
// to the link chain's first name.
func pathLabel(p *topo.Path) string {
	if p == nil {
		return ""
	}
	if p.SrcPort == nil || p.DstPort == nil {
		if len(p.Links) > 0 {
			return p.Links[0].Name
		}
		return "local"
	}
	return p.String()
}

// String summarizes the simulator state; useful in debugging sessions.
func (n *Network) String() string {
	return fmt.Sprintf("netsim{t=%v flows=%d}", n.Engine.Now(), len(n.flows))
}
