package netsim

import (
	"testing"

	"c4/internal/sim"
)

func TestSetLinkCapacityReallocates(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	var done sim.Time
	n.StartFlow(path, 200e9, "x", func(f *Flow) { done = eng.Now() })
	// Halve the source port's capacity halfway through: 0.5 s at 200 Gbps
	// moves 100 Gb, the remaining 100 Gb drains at 100 Gbps in 1 s.
	eng.After(500*sim.Millisecond, func() {
		n.SetLinkCapacity(path.SrcPort.Up, 100)
	})
	eng.Run()
	if !almostEqual(done.Seconds(), 1.5, 0.02) {
		t.Fatalf("done at %v, want ~1.5s", done)
	}
}

func TestSetLinkCapacityZeroStalls(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	done := false
	n.StartFlow(path, 200e9, "x", func(*Flow) { done = true })
	eng.After(100*sim.Millisecond, func() {
		n.SetLinkCapacity(path.SrcPort.Up, -5) // clamps to 0
	})
	eng.RunUntil(10 * sim.Second)
	if done {
		t.Fatal("flow completed through a zero-capacity link")
	}
	// Restoring capacity lets it finish.
	n.SetLinkCapacity(path.SrcPort.Up, 200)
	eng.RunUntil(20 * sim.Second)
	if !done {
		t.Fatal("flow did not resume after capacity restore")
	}
}

func TestUtilizationAndFlowsOn(t *testing.T) {
	eng, n := testbed()
	p1, _ := n.Topo.PathFor(0, 4, 0, 0, 0, 0)
	p2, _ := n.Topo.PathFor(2, 4, 0, 0, 1, 0)
	n.StartFlow(p1, 1e12, "a", nil)
	n.StartFlow(p2, 1e12, "b", nil)
	eng.RunUntil(10 * sim.Millisecond)
	shared := p1.DstPort.Down
	if got := n.FlowsOn(shared); got != 2 {
		t.Fatalf("FlowsOn = %d, want 2", got)
	}
	if got := n.Utilization(shared); !almostEqual(got, 200e9, 1e6) {
		t.Fatalf("utilization = %.3g, want 200e9", got)
	}
	// A link carrying nothing reports zero.
	idle := n.Topo.PortAt(6, 3, 1).Up
	if n.FlowsOn(idle) != 0 || n.Utilization(idle) != 0 {
		t.Fatal("idle link reports traffic")
	}
}

func TestZeroSizeControlMessage(t *testing.T) {
	eng, n := testbed()
	path, _ := n.Topo.PathFor(0, 2, 0, 0, 0, 0)
	var done sim.Time
	n.StartFlow(path, 0, "ctl", func(*Flow) { done = eng.Now() })
	eng.Run()
	if done == 0 {
		t.Fatal("control message never delivered")
	}
	if done > sim.Millisecond {
		t.Fatalf("control message took %v, want ≈latency", done)
	}
}
