package netsim

import (
	"testing"

	"c4/internal/sim"
	"c4/internal/topo"
)

// Regression test for the read-path staleness bug: SetLinkCapacity batches
// its rate recomputation into an After(0) event, so a reader in the same
// virtual instant — but a later callback — used to observe pre-mutation
// rates. Utilization must reflect the new capacity immediately.
func TestUtilizationFreshAfterSameInstantCapacityChange(t *testing.T) {
	eng, n := testbed()
	p1, _ := n.Topo.PathFor(0, 4, 0, 0, 0, 0)
	p2, _ := n.Topo.PathFor(2, 4, 0, 0, 1, 0)
	shared := p1.DstPort.Down // both flows converge on node 4's down-link
	n.StartFlow(p1, 800e9, "a", nil)
	n.StartFlow(p2, 800e9, "b", nil)
	var before, after float64
	eng.Schedule(sim.Second, func() {
		before = n.Utilization(shared)
		n.SetLinkCapacity(shared, 100)
		after = n.Utilization(shared)
	})
	eng.RunUntil(sim.Second)
	if !almostEqual(before, 200e9, 1e6) {
		t.Fatalf("pre-mutation utilization = %g, want 200e9", before)
	}
	if !almostEqual(after, 100e9, 1e6) {
		t.Fatalf("same-instant post-mutation utilization = %g, want 100e9 (stale read)", after)
	}
}

// A same-instant reader after a link failure must see the stalled rates,
// and after StartFlow admission must see the admitted flow's allocation.
func TestObservablesFreshAcrossSameInstantMutations(t *testing.T) {
	eng, n := testbed()
	p, _ := n.Topo.PathFor(0, 4, 0, 0, 0, 0)
	up := p.SrcPort.Up
	n.StartFlow(p, 800e9, "a", nil)
	// Readback at the admission instant: the flow is admitted in an earlier
	// callback of the same instant, its recompute still pending.
	var atAdmit float64
	eng.Schedule(n.Cfg.BaseLatency, func() { atAdmit = n.Utilization(up) })
	var atFail float64
	eng.Schedule(sim.Second, func() {
		n.SetLinkUp(up, false)
		atFail = n.Utilization(up)
	})
	eng.RunUntil(sim.Second)
	if !almostEqual(atAdmit, 200e9, 1e6) {
		t.Fatalf("utilization at admission instant = %g, want 200e9", atAdmit)
	}
	if atFail != 0 {
		t.Fatalf("utilization in the failure callback = %g, want 0", atFail)
	}
}

// CarriedBits read in the same instant as a capacity change must agree
// with the (unchanged) pre-mutation delivery, and the flush that makes
// that true must not disturb the run: a run with same-instant readers is
// byte-identical (completion times and event counts) to one without.
func TestReadPathFlushDoesNotPerturbRun(t *testing.T) {
	run := func(withReaders bool) (done []sim.Time, fired uint64, bits float64) {
		eng, n := testbed()
		p1, _ := n.Topo.PathFor(0, 4, 0, 0, 0, 0)
		p2, _ := n.Topo.PathFor(2, 4, 0, 0, 1, 0)
		shared := p1.DstPort.Down
		specs := []struct {
			p    *topo.Path
			size float64
		}{{p1, 400e9}, {p2, 700e9}}
		done = make([]sim.Time, len(specs))
		for i, s := range specs {
			i := i
			n.StartFlow(s.p, s.size, "f", func(f *Flow) { done[i] = eng.Now() })
		}
		eng.Schedule(sim.Second, func() {
			n.SetLinkCapacity(shared, 150)
			if withReaders {
				bits = n.CarriedBits(shared)
				_ = n.Utilization(shared)
				_ = n.CNPCount(p1.SrcPort)
			}
		})
		eng.Run()
		return done, eng.Fired(), bits
	}
	d1, f1, bits := run(true)
	d2, f2, _ := run(false)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("flow %d completion %v with readers vs %v without", i, d1[i], d2[i])
		}
	}
	if f1 != f2 {
		t.Fatalf("fired %d events with readers vs %d without", f1, f2)
	}
	// 2 flows at 100 Gbps each for ~1s minus 10µs admission latency.
	if !almostEqual(bits, 200e9, 1e7) {
		t.Fatalf("carried bits at mutation instant = %g, want ~200e9", bits)
	}
}

// Regression test for event-heap churn: every recompute used to cancel and
// recreate the completion event, so a reroute-heavy run (C4P's dynamic
// load balance reroutes constantly) leaked one dead event per recompute
// into the engine heap. With in-place rescheduling the queue stays bounded
// by the handful of genuinely live events.
func TestRerouteChurnKeepsQueueBounded(t *testing.T) {
	eng, n := testbed()
	pa, _ := n.Topo.PathFor(0, 4, 0, 0, 0, 0)
	pb, _ := n.Topo.PathFor(0, 4, 0, 0, 1, 0)
	f := n.StartFlow(pa, 1e15, "churn", nil) // far from completing
	maxPending := 0
	const reroutes = 5000
	var step func(i int)
	step = func(i int) {
		if p := eng.Pending(); p > maxPending {
			maxPending = p
		}
		if i >= reroutes || f.Done() {
			n.Cancel(f)
			return
		}
		if i%2 == 0 {
			n.Reroute(f, pb)
		} else {
			n.Reroute(f, pa)
		}
		eng.After(sim.Millisecond, func() { step(i + 1) })
	}
	eng.After(sim.Millisecond, func() { step(0) })
	eng.Run()
	if maxPending > 16 {
		t.Fatalf("pending events peaked at %d during %d reroutes, want a bounded handful", maxPending, reroutes)
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after run", eng.Pending())
	}
}
