package netsim

import (
	"fmt"
	"testing"

	"c4/internal/sim"
	"c4/internal/topo"
)

// benchSpec is a gang-partitioned datacenter slice: groups of 8 nodes,
// ring traffic inside each group, nothing between groups — the communication
// shape of pure-DP training with gang scheduling, and the best case for
// both flow-class aggregation (16 flows per ring edge collapse into one
// class) and parallel settle (each gang splits into independent link
// components, one per (plane, spine) coordinate its ring edges use).
func benchSpec(nodes int) topo.Spec {
	return topo.Spec{
		Nodes:         nodes,
		GPUsPerNode:   8,
		Rails:         2,
		NodesPerGroup: 8,
		Spines:        4,
		PortGbps:      200,
		NVLinkGbps:    362,
	}
}

// startGangRings launches flowsPerPair flows on every ring edge of every
// group. Sizes vary per edge and member — not per group — so completions
// arrive in many deterministic waves, each wave triggering a recompute.
func startGangRings(n *Network, tp *topo.Topology, flowsPerPair int) int {
	spec := tp.Spec
	groups := spec.Groups()
	flows := 0
	for g := 0; g < groups; g++ {
		for i := 0; i < spec.NodesPerGroup; i++ {
			src := g*spec.NodesPerGroup + i
			dst := g*spec.NodesPerGroup + (i+1)%spec.NodesPerGroup
			plane := i % topo.Planes
			spine := i % spec.Spines
			p, err := tp.PathFor(src, dst, 0, plane, spine, plane)
			if err != nil {
				panic(err)
			}
			for k := 0; k < flowsPerPair; k++ {
				size := 20e9 * (1 + 0.11*float64(k) + 0.013*float64(i))
				n.StartFlow(p, size, fmt.Sprintf("g%d-e%d-m%d", g, i, k), nil)
				flows++
			}
		}
	}
	return flows
}

func runGangWorld(b *testing.B, cfg Config, nodes, flowsPerPair int) {
	b.ReportAllocs()
	var visits uint64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		tp := topo.MustNew(benchSpec(nodes))
		n := New(eng, tp, cfg)
		startGangRings(n, tp, flowsPerPair)
		eng.Run()
		if n.ActiveFlows() != 0 {
			b.Fatalf("%d flows never completed", n.ActiveFlows())
		}
		visits += n.Stats().LinkVisits
	}
	b.ReportMetric(float64(visits)/float64(b.N), "linkvisits/run")
}

// BenchmarkRecomputePerFlow is the reference kernel on a 64-node world:
// every recompute scans all flows and the dense link-ID space.
func BenchmarkRecomputePerFlow(b *testing.B) {
	runGangWorld(b, DefaultConfig(), 64, 16)
}

// BenchmarkRecomputeAggregated is the same workload through the
// flow-class kernel: 16 flows per ring edge cost one class.
func BenchmarkRecomputeAggregated(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Aggregate = true
	runGangWorld(b, cfg, 64, 16)
}

// BenchmarkSettleParallel adds parallel component settle on top of
// aggregation: the 8 gangs fill on 4 workers.
func BenchmarkSettleParallel(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Aggregate = true
	cfg.SettleWorkers = 4
	runGangWorld(b, cfg, 64, 16)
}
