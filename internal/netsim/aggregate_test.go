package netsim

import (
	"fmt"
	"testing"

	"c4/internal/sim"
	"c4/internal/topo"
)

// kernelConfigs are the three kernel variants every equivalence test runs:
// the reference per-flow kernel, the flow-class kernel serial, and the
// flow-class kernel with parallel component settle. All three must produce
// bit-identical simulations.
func kernelConfigs() []struct {
	name string
	cfg  Config
} {
	base := DefaultConfig()
	agg := base
	agg.Aggregate = true
	par := agg
	par.SettleWorkers = 4
	return []struct {
		name string
		cfg  Config
	}{
		{"per-flow", base},
		{"aggregated", agg},
		{"parallel", par},
	}
}

// wtrace is the observable outcome of one simulated workload: completion
// instants per flow label, cumulative carried bits and CNPs on probe
// points, and the engine's event count. Two kernels are equivalent iff
// their traces are identical.
type wtrace struct {
	done  map[string]sim.Time
	bits  map[string]float64
	cnps  float64
	fired uint64
}

func (tr *wtrace) equal(other *wtrace) error {
	for k, v := range tr.done {
		if other.done[k] != v {
			return fmt.Errorf("flow %s completed at %v vs %v", k, v, other.done[k])
		}
	}
	for k, v := range tr.bits {
		if other.bits[k] != v {
			return fmt.Errorf("link %s carried %v vs %v bits", k, v, other.bits[k])
		}
	}
	if tr.cnps != other.cnps {
		return fmt.Errorf("cnp count %v vs %v", tr.cnps, other.cnps)
	}
	if tr.fired != other.fired {
		return fmt.Errorf("fired %d vs %d events", tr.fired, other.fired)
	}
	return nil
}

// runWorkload drives a mixed workload exercising every lifecycle edge the
// kernel has — multi-member classes, shared bottlenecks, loss, capacity
// degradation, a link failure with reroute, and a mid-flight cancel — and
// returns its trace.
func runWorkload(cfg Config) *wtrace {
	eng := sim.NewEngine()
	tp := topo.MustNew(topo.PaperTestbed())
	n := New(eng, tp, cfg)
	tr := &wtrace{done: map[string]sim.Time{}, bits: map[string]float64{}}

	finish := func(f *Flow) { tr.done[f.Label] = eng.Now() }

	// Three classes of four members each converging on node 4: two spine
	// routes from node 0 and one from node 2. Member sizes differ, so the
	// classes shed members over time.
	for k := 0; k < 4; k++ {
		p0, _ := tp.PathFor(0, 4, 0, 0, 0, 0)
		p1, _ := tp.PathFor(0, 4, 0, 0, 1, 0)
		p2, _ := tp.PathFor(2, 4, 0, 1, 0, 1)
		n.StartFlow(p0, 40e9*float64(k+1), fmt.Sprintf("a%d", k), finish)
		n.StartFlow(p1, 30e9*float64(k+1), fmt.Sprintf("b%d", k), finish)
		n.StartFlow(p2, 50e9*float64(k+1), fmt.Sprintf("c%d", k), finish)
	}
	// A disjoint gang on rail 1 between nodes 8..11 (second leaf group
	// pairs), forming separate components.
	for k := 0; k < 3; k++ {
		p, _ := tp.PathFor(8, 10, 1, 0, 2, 0)
		q, _ := tp.PathFor(9, 11, 1, 1, 3, 1)
		n.StartFlow(p, 60e9+7e9*float64(k), fmt.Sprintf("d%d", k), finish)
		n.StartFlow(q, 55e9+9e9*float64(k), fmt.Sprintf("e%d", k), finish)
	}

	// Mid-run churn: degrade a shared link, make another lossy, fail a
	// spine path (rerouting one member of the class, stalling none), and
	// cancel a flow outright.
	var rerouted *Flow
	pr, _ := tp.PathFor(6, 12, 2, 0, 1, 0)
	rerouted = n.StartFlow(pr, 500e9, "reroute-me", finish)
	rerouted.OnPathDown = func(f *Flow) {
		alt, _ := tp.PathFor(6, 12, 2, 0, 4, 0)
		n.Reroute(f, alt)
	}
	victim := n.StartFlow(func() *topo.Path { p, _ := tp.PathFor(5, 13, 3, 1, 2, 1); return p }(), 900e9, "victim", finish)

	down := pr.Links[2] // the leaf-up link of spine 1 on rail 2
	eng.Schedule(200*sim.Millisecond, func() { n.SetLinkCapacity(tp.PortAt(4, 0, 0).Down, 120) })
	eng.Schedule(300*sim.Millisecond, func() { n.SetLinkLoss(tp.PortAt(10, 1, 0).Down, 0.05) })
	eng.Schedule(400*sim.Millisecond, func() { n.SetLinkUp(down, false) })
	eng.Schedule(600*sim.Millisecond, func() { n.SetLinkUp(down, true) })
	eng.Schedule(700*sim.Millisecond, func() { n.Cancel(victim) })
	eng.Run()

	tr.bits["n4-down"] = n.CarriedBits(tp.PortAt(4, 0, 0).Down)
	tr.bits["n10-down"] = n.CarriedBits(tp.PortAt(10, 1, 0).Down)
	tr.bits["n0-up"] = n.CarriedBits(tp.PortAt(0, 0, 0).Up)
	tr.cnps = n.CNPCount(tp.PortAt(0, 0, 0))
	tr.fired = eng.Fired()
	return tr
}

// TestKernelsEquivalentOnMixedWorkload is the core oath of the flow-class
// rebuild: the aggregated kernel — serial or parallel — replays the
// per-flow kernel byte for byte.
func TestKernelsEquivalentOnMixedWorkload(t *testing.T) {
	var ref *wtrace
	for _, kc := range kernelConfigs() {
		tr := runWorkload(kc.cfg)
		if ref == nil {
			ref = tr
			continue
		}
		if err := tr.equal(ref); err != nil {
			t.Fatalf("%s kernel diverged from per-flow: %v", kc.name, err)
		}
	}
}

func aggTestbed(workers int) (*sim.Engine, *Network) {
	eng := sim.NewEngine()
	tp := topo.MustNew(topo.PaperTestbed())
	cfg := DefaultConfig()
	cfg.Aggregate = true
	cfg.SettleWorkers = workers
	return eng, New(eng, tp, cfg)
}

// Cancelling one member mid-flight must shrink the class, not kill it:
// the survivors keep flowing and the freed share speeds them up exactly
// like the per-flow kernel says it should.
func TestClassMemberCancelMidClass(t *testing.T) {
	for _, kc := range kernelConfigs() {
		eng := sim.NewEngine()
		tp := topo.MustNew(topo.PaperTestbed())
		n := New(eng, tp, kc.cfg)
		p, _ := tp.PathFor(0, 4, 0, 0, 0, 0)
		var survivorDone sim.Time
		doomed := n.StartFlow(p, 400e9, "doomed", func(f *Flow) { t.Error("cancelled flow completed") })
		n.StartFlow(p, 400e9, "survivor", func(f *Flow) { survivorDone = eng.Now() })
		eng.Schedule(sim.Second, func() { n.Cancel(doomed) })
		eng.Run()
		// 100 Gbps for 1s (200 shared by 2), then 200 Gbps for the last
		// 300 Gb: done at ~2.5s.
		if !almostEqual(survivorDone.Seconds(), 2.5, 0.01) {
			t.Fatalf("[%s] survivor done at %v, want ~2.5s", kc.name, survivorDone)
		}
		if n.ActiveFlows() != 0 {
			t.Fatalf("[%s] %d active flows left", kc.name, n.ActiveFlows())
		}
	}
}

// Rerouting a member must split it out of its class into the class of the
// new chain (created on demand) and merge it with any existing one.
func TestRerouteSplitsClass(t *testing.T) {
	eng, n := aggTestbed(0)
	tp := n.Topo
	p, _ := tp.PathFor(0, 4, 0, 0, 0, 0)
	alt, _ := tp.PathFor(0, 4, 0, 0, 1, 0)
	a := n.StartFlow(p, 800e9, "a", nil)
	n.StartFlow(p, 800e9, "b", nil)
	eng.RunUntil(100 * sim.Millisecond)
	if n.ClassCount() != 1 {
		t.Fatalf("classes = %d, want 1 before the split", n.ClassCount())
	}
	n.Reroute(a, alt)
	eng.RunUntil(200 * sim.Millisecond)
	if n.ClassCount() != 2 {
		t.Fatalf("classes = %d, want 2 after rerouting one member", n.ClassCount())
	}
	if a.class == nil || len(a.class.members) != 1 {
		t.Fatal("rerouted flow must sit alone in the new chain's class")
	}
	// Rerouting back merges it into the surviving class again.
	n.Reroute(a, p)
	if n.ClassCount() != 1 || len(a.class.members) != 2 {
		t.Fatalf("classes = %d (members %d), want the original class re-merged",
			n.ClassCount(), len(a.class.members))
	}
}

// A link failure must fan OnPathDown out to every member of every class
// crossing it, in flow admission order, exactly like the per-flow path.
func TestOnPathDownFansOutToMembers(t *testing.T) {
	for _, kc := range kernelConfigs() {
		eng := sim.NewEngine()
		tp := topo.MustNew(topo.PaperTestbed())
		n := New(eng, tp, kc.cfg)
		p, _ := tp.PathFor(0, 4, 0, 0, 0, 0)
		var notified []string
		for i := 0; i < 5; i++ {
			f := n.StartFlow(p, 1e12, fmt.Sprintf("m%d", i), nil)
			f.OnPathDown = func(f *Flow) { notified = append(notified, f.Label) }
		}
		eng.Schedule(sim.Second, func() { n.SetLinkUp(p.SrcPort.Up, false) })
		eng.RunUntil(2 * sim.Second)
		want := []string{"m0", "m1", "m2", "m3", "m4"}
		if len(notified) != len(want) {
			t.Fatalf("[%s] %d notifications, want %d", kc.name, len(notified), len(want))
		}
		for i := range want {
			if notified[i] != want[i] {
				t.Fatalf("[%s] notification order %v, want %v", kc.name, notified, want)
			}
		}
	}
}

// Classes must die with their last member: after everything completes or
// is cancelled the class table is empty, not leaking one entry per chain
// ever seen.
func TestClassLifecycle(t *testing.T) {
	eng, n := aggTestbed(0)
	tp := n.Topo
	p, _ := tp.PathFor(0, 2, 0, 0, 0, 0)
	q, _ := tp.PathFor(4, 6, 1, 1, 1, 1)
	n.StartFlow(p, 10e9, "a", nil)
	n.StartFlow(p, 20e9, "b", nil)
	c := n.StartFlow(q, 1e12, "c", nil)
	eng.RunUntil(50 * sim.Millisecond)
	if n.ClassCount() != 2 {
		t.Fatalf("classes = %d, want 2 mid-run", n.ClassCount())
	}
	n.Cancel(c)
	eng.Run()
	if n.ClassCount() != 0 {
		t.Fatalf("classes = %d after all flows ended, want 0", n.ClassCount())
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("%d active flows left", n.ActiveFlows())
	}
}

// ForceAggregate is the replay-test plumbing: it must override the kernel
// selection of every subsequently built Network until restored.
func TestForceAggregate(t *testing.T) {
	restore := ForceAggregate(3)
	eng := sim.NewEngine()
	n := New(eng, topo.MustNew(topo.PaperTestbed()), DefaultConfig())
	if !n.Cfg.Aggregate || n.Cfg.SettleWorkers != 3 {
		t.Fatalf("forced kernel not applied: %+v", n.Cfg)
	}
	restore()
	n2 := New(sim.NewEngine(), topo.MustNew(topo.PaperTestbed()), DefaultConfig())
	if n2.Cfg.Aggregate {
		t.Fatal("restore did not clear the forced kernel")
	}
}
