package netsim

import (
	"sort"
	"sync"

	"c4/internal/sim"
)

// Per-plane parallel settle. Max-min filling decomposes exactly along the
// connected components of the bipartite class/link graph: a bottleneck
// round in one component never reads or writes capacity in another, so the
// components can fill on separate goroutines and merge deterministically.
// Components generalize "per plane": leaf-up/spine-down links are per
// (plane, leaf, spine), so plane- and gang-partitioned traffic falls apart
// into many components naturally — but a node's NVLink injection/delivery
// links sit on every path the node originates or terminates, coupling its
// planes, and only component analysis handles that soundly. When the
// whole fabric is one traffic web there is one component and the kernel
// degrades to the serial order, never to a wrong answer.

// component is one independent filling problem: a set of links no class
// crosses out of, and the classes confined to it.
type component struct {
	links   []int // dense link IDs, ascending
	classes []*flowClass

	// Per-component outputs, folded into Network state serially after the
	// parallel phase so worker goroutines never share scratch.
	eta        sim.Time
	linkVisits uint64
	flowVisits uint64
}

// partition groups the touched links into connected components via
// union-find, attaching each alive class to the component of its links.
// Component identity and internal ordering are deterministic: the
// representative is the smallest link ID, components are numbered in
// ascending-representative order, links are listed ascending, and classes
// keep creation order.
func (n *Network) partition() []*component {
	for _, id := range n.scTouched {
		n.ufParent[id] = int32(id)
	}
	for _, fc := range n.classes {
		if !fc.alive {
			continue
		}
		r := n.ufFind(int32(fc.links[0].ID))
		for _, l := range fc.links[1:] {
			s := n.ufFind(int32(l.ID))
			if s == r {
				continue
			}
			if s < r {
				r, s = s, r
			}
			n.ufParent[s] = r
		}
	}

	n.sortedIDs = append(n.sortedIDs[:0], n.scTouched...)
	sort.Ints(n.sortedIDs)
	comps := n.compPool[:0]
	for _, id := range n.sortedIDs {
		n.compSlot[id] = -1
	}
	for _, id := range n.sortedIDs {
		root := n.ufFind(int32(id))
		slot := n.compSlot[root]
		if slot < 0 {
			slot = int32(len(comps))
			n.compSlot[root] = slot
			if len(comps) < cap(comps) {
				// Recycle the pooled component and its slice capacity.
				comps = comps[:len(comps)+1]
				if c := comps[slot]; c != nil {
					c.links = c.links[:0]
					c.classes = c.classes[:0]
					c.eta = 0
					c.linkVisits, c.flowVisits = 0, 0
				} else {
					comps[slot] = &component{}
				}
			} else {
				comps = append(comps, &component{})
			}
		}
		c := comps[slot]
		c.links = append(c.links, id)
	}
	for _, fc := range n.classes {
		if !fc.alive {
			continue
		}
		slot := n.compSlot[n.ufFind(int32(fc.links[0].ID))]
		comps[slot].classes = append(comps[slot].classes, fc)
	}
	n.compPool = comps
	return comps
}

// ufFind resolves a link's component representative with path halving.
func (n *Network) ufFind(x int32) int32 {
	for n.ufParent[x] != x {
		n.ufParent[x] = n.ufParent[n.ufParent[x]]
		x = n.ufParent[x]
	}
	return x
}

// settleComponents fills every component and returns the earliest
// completion ETA across all of them. With SettleWorkers > 1 the components
// run on a bounded goroutine pool; each worker takes a static stride so no
// channel or lock sits on the hot path, and because components are
// memory-disjoint the schedule cannot affect the results. Outputs merge in
// component order, so the parallel run is byte-identical to the serial
// one — the property the replay tests and the -race CI lane pin down.
func (n *Network) settleComponents(comps []*component) sim.Time {
	n.lastComps = len(comps)
	workers := n.Cfg.SettleWorkers
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(comps); i += workers {
					n.fillComponent(comps[i])
				}
			}(w)
		}
		wg.Wait()
	} else {
		for _, c := range comps {
			n.fillComponent(c)
		}
	}
	minEta := sim.MaxTime
	for _, c := range comps {
		n.stats.LinkVisits += c.linkVisits
		n.stats.FlowVisits += c.flowVisits
		if c.eta < minEta {
			minEta = c.eta
		}
	}
	return minEta
}
