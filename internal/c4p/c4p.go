// Package c4p implements the C4P (C4 Performance) subsystem of the paper
// (§III-B): a cluster-scale traffic-engineering master that plans the
// network path of every RDMA QP. Because training traffic is a small number
// of long-lived elephant flows, the master can:
//
//  1. identify and avoid faulty leaf–spine links at task start-up
//     (path probing),
//  2. balance QPs across healthy spines and across the two bonded NIC
//     ports — forbidding cross-plane paths so receive-side load stays
//     balanced (Fig 9), and
//  3. react to link failures either statically (data-plane ECMP rehash,
//     Fig 12a) or dynamically (master reallocation plus ACCL's
//     completion-time-driven QP re-weighting, Fig 12b).
//
// The master implements accl.PathProvider, so enabling C4P for a job is a
// one-line provider swap — mirroring how the production deployment slots
// under ACCL without framework changes.
package c4p

import (
	"fmt"
	"sort"

	"c4/internal/accl"
	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
)

// Mode selects the failure-response policy.
type Mode int

const (
	// Static plans paths at connect time only; failures fall back to the
	// fabric's ECMP rehash with no master involvement (Fig 12a).
	Static Mode = iota
	// Dynamic additionally reallocates failed QPs through the master,
	// keeping the global load balanced after topology changes (Fig 12b).
	Dynamic
)

func (m Mode) String() string {
	if m == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Master is the C4P control plane. It is shared by all jobs in the cluster
// — the paper's key difference from the per-job C4D master.
type Master struct {
	Topo *topo.Topology
	Mode Mode
	// DisablePlaneRule drops the "forbid left→right" dual-port constraint
	// (ablation only): QPs may then descend onto either receive port, and
	// two of a bond's flows can converge on one port exactly like the
	// baseline in Fig 9.
	DisablePlaneRule bool

	rand *sim.Rand
	// load counts allocated QPs per fabric link (leaf-up and spine-down).
	load map[int]int
	// sportCache remembers which source port the prober found to steer a
	// given (src,dst,rail,plane,spine,dstPlane) route.
	sportCache map[routeKey]uint16

	allocs   int
	releases int
	repairs  int
}

type routeKey struct {
	src, dst, rail, plane, spine, dstPlane int
}

// NewMaster creates a C4P master for the fabric.
func NewMaster(t *topo.Topology, mode Mode, r *sim.Rand) *Master {
	if r == nil {
		r = sim.NewRand(3)
	}
	return &Master{
		Topo:       t,
		Mode:       mode,
		rand:       r,
		load:       make(map[int]int),
		sportCache: make(map[routeKey]uint16),
	}
}

// Stats reports allocation counters, for tests and dashboards.
func (m *Master) Stats() (allocs, releases, repairs int) {
	return m.allocs, m.releases, m.repairs
}

// LinkLoad reports the number of QPs currently allocated to a link.
func (m *Master) LinkLoad(l *topo.Link) int { return m.load[l.ID] }

// Connect implements accl.PathProvider: plane-balanced, least-loaded,
// healthy-only path allocation.
func (m *Master) Connect(req accl.ConnRequest) (*accl.Assignment, error) {
	// Dual-port balance: spread the connection's QPs across the two
	// physical ports, and forbid cross-plane descent (left stays left).
	plane := req.QPIndex % topo.Planes
	return m.allocate(req, plane)
}

// Repair implements accl.PathProvider.
func (m *Master) Repair(req accl.ConnRequest, old *accl.Assignment) (*accl.Assignment, error) {
	m.repairs++
	plane := req.QPIndex % topo.Planes
	if old != nil && old.Path != nil {
		plane = old.Path.SrcPort.Plane
	}
	m.Release(old)
	if m.Mode == Static {
		// No master involvement after start-up: the underlay rehashes
		// onto a random surviving link, exactly like the ECMP baseline.
		sport := uint16(m.rand.Intn(1 << 16))
		path, err := netsim.Route(m.Topo, req.SrcNode, req.DstNode, req.Rail, plane, sport)
		if err != nil {
			return nil, fmt.Errorf("c4p static repair: %w", err)
		}
		return &accl.Assignment{Path: path, Sport: sport}, nil
	}
	return m.allocate(req, plane)
}

// Release implements accl.PathProvider.
func (m *Master) Release(as *accl.Assignment) {
	if as == nil {
		return
	}
	ids, ok := as.Token.([]int)
	if !ok {
		return // not master-tracked (e.g. a static-repair rehash)
	}
	m.releases++
	for _, id := range ids {
		if m.load[id] > 0 {
			m.load[id]--
		}
	}
	as.Token = nil
}

// allocate picks the least-loaded healthy spine for a same-plane route and
// registers the QP load.
func (m *Master) allocate(req accl.ConnRequest, plane int) (*accl.Assignment, error) {
	t := m.Topo
	if req.SrcNode < 0 || req.SrcNode >= t.Spec.Nodes ||
		req.DstNode < 0 || req.DstNode >= t.Spec.Nodes {
		return nil, fmt.Errorf("c4p: nodes %d->%d outside fabric of %d nodes",
			req.SrcNode, req.DstNode, t.Spec.Nodes)
	}
	if t.Group(req.SrcNode) == t.Group(req.DstNode) {
		path, err := t.PathFor(req.SrcNode, req.DstNode, req.Rail, plane, -1, plane)
		if err != nil {
			return nil, err
		}
		if !path.Up() {
			return nil, fmt.Errorf("c4p: same-leaf route for %d->%d is down", req.SrcNode, req.DstNode)
		}
		m.allocs++
		return &accl.Assignment{Path: path, Token: []int{}}, nil
	}

	dstPlane := plane
	if m.DisablePlaneRule {
		dstPlane = m.rand.Intn(topo.Planes)
	}
	srcLeaf := t.PortAt(req.SrcNode, req.Rail, plane).Leaf
	dstLeaf := t.LeafAt(req.Rail, dstPlane, t.Group(req.DstNode))
	type cand struct {
		spine int
		worst int
		sum   int
	}
	var best *cand
	for s := 0; s < t.Spec.Spines; s++ {
		up, down := srcLeaf.Ups[s], dstLeaf.Downs[s]
		if !up.Up() || !down.Up() {
			continue // erroneous-link elimination
		}
		lu, ld := m.load[up.ID], m.load[down.ID]
		c := cand{spine: s, worst: max(lu, ld), sum: lu + ld}
		if best == nil || c.worst < best.worst ||
			(c.worst == best.worst && c.sum < best.sum) {
			cc := c
			best = &cc
		}
	}
	if best == nil {
		return nil, fmt.Errorf("c4p: no healthy spine between %s and %s",
			srcLeaf.Name(), dstLeaf.Name())
	}
	path, err := t.PathFor(req.SrcNode, req.DstNode, req.Rail, plane, best.spine, dstPlane)
	if err != nil {
		return nil, err
	}
	sport := m.findSport(req.SrcNode, req.DstNode, req.Rail, plane, best.spine)
	m.load[srcLeaf.Ups[best.spine].ID]++
	m.load[dstLeaf.Downs[best.spine].ID]++
	m.allocs++
	return &accl.Assignment{
		Path:  path,
		Sport: sport,
		Token: []int{srcLeaf.Ups[best.spine].ID, dstLeaf.Downs[best.spine].ID},
	}, nil
}

// findSport searches for a source port whose ECMP hash steers the flow
// onto the chosen spine and plane — the paper's path-probing mechanism: by
// probing sports and observing routes, the master learns the inverse of the
// fabric's hash and can express any path decision as a sport choice.
func (m *Master) findSport(src, dst, rail, plane, spine int) uint16 {
	key := routeKey{src, dst, rail, plane, spine, plane}
	if sp, ok := m.sportCache[key]; ok {
		return sp
	}
	for sp := 0; sp < 1<<13; sp++ {
		path, err := netsim.Route(m.Topo, src, dst, rail, plane, uint16(sp))
		if err != nil {
			break
		}
		if path.Spine != nil && path.Spine.Index == spine && path.DstPort.Plane == plane {
			m.sportCache[key] = uint16(sp)
			return uint16(sp)
		}
	}
	// The fabric's hash never produced this combination within the search
	// budget (vanishingly rare with healthy links); the assignment still
	// pins the path explicitly, so return a sentinel sport.
	m.sportCache[key] = 0
	return 0
}

// ProbeReport summarizes a full-mesh path probe (start-up link screening).
type ProbeReport struct {
	Rail         int
	HealthyPaths int
	DeadLinks    []string
}

// Probe performs the start-up full-mesh probe for one rail: every
// (leaf, spine) link in both directions is exercised and dead links are
// cataloged so allocation avoids them.
func (m *Master) Probe(rail int) ProbeReport {
	rep := ProbeReport{Rail: rail}
	t := m.Topo
	groups := t.Spec.Groups()
	for p := 0; p < topo.Planes; p++ {
		for g := 0; g < groups; g++ {
			leaf := t.LeafAt(rail, p, g)
			for s := 0; s < t.Spec.Spines; s++ {
				if leaf.Ups[s].Up() {
					rep.HealthyPaths++
				} else {
					rep.DeadLinks = append(rep.DeadLinks, leaf.Ups[s].Name)
				}
				if leaf.Downs[s].Up() {
					rep.HealthyPaths++
				} else {
					rep.DeadLinks = append(rep.DeadLinks, leaf.Downs[s].Name)
				}
			}
		}
	}
	sort.Strings(rep.DeadLinks)
	return rep
}

// ProbeAll probes every rail and aggregates.
func (m *Master) ProbeAll() []ProbeReport {
	out := make([]ProbeReport, m.Topo.Spec.Rails)
	for r := range out {
		out[r] = m.Probe(r)
	}
	return out
}
