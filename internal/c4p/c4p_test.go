package c4p

import (
	"testing"

	"c4/internal/accl"
	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
)

func req(src, dst, qpIdx int) accl.ConnRequest {
	return accl.ConnRequest{SrcNode: src, DstNode: dst, Rail: 0, QPN: 100 + qpIdx, QPIndex: qpIdx, QPCount: 2}
}

func TestConnectSamePlaneAndSpineSpread(t *testing.T) {
	tp := topo.MustNew(topo.PaperTestbed())
	m := NewMaster(tp, Static, sim.NewRand(1))
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		as, err := m.Connect(req(0, 2+2*(i%4), i%2))
		if err != nil {
			t.Fatal(err)
		}
		p := as.Path
		if p.CrossPlane() {
			t.Fatalf("C4P produced a cross-plane path: %v", p)
		}
		if p.SrcPort.Plane != i%2 {
			t.Fatalf("QP %d not balanced across bonded ports: plane %d", i, p.SrcPort.Plane)
		}
		if p.Spine != nil {
			seen[p.Spine.Index]++
		}
	}
	// 4 allocations per plane from the same leaf must spread over 4
	// distinct spines each.
	for s, c := range seen {
		if c > 2 {
			t.Fatalf("spine %d carries %d QPs; allocation not balanced: %v", s, c, seen)
		}
	}
}

func TestConnectAvoidsDeadLinks(t *testing.T) {
	tp := topo.MustNew(topo.PaperTestbed())
	m := NewMaster(tp, Static, sim.NewRand(1))
	leaf := tp.PortAt(0, 0, 0).Leaf
	leaf.Ups[0].SetUp(false)
	leaf.Ups[1].SetUp(false)
	for i := 0; i < 12; i++ {
		as, err := m.Connect(req(0, 4, 0))
		if err != nil {
			t.Fatal(err)
		}
		if s := as.Path.Spine.Index; s == 0 || s == 1 {
			t.Fatalf("allocated over dead uplink to spine %d", s)
		}
		m.Release(as)
	}
}

func TestConnectNoHealthySpine(t *testing.T) {
	tp := topo.MustNew(topo.PaperTestbed())
	m := NewMaster(tp, Static, sim.NewRand(1))
	leaf := tp.PortAt(0, 0, 0).Leaf
	for _, up := range leaf.Ups {
		up.SetUp(false)
	}
	if _, err := m.Connect(req(0, 4, 0)); err == nil {
		t.Fatal("expected error with all uplinks dead")
	}
	// The other plane still works.
	if _, err := m.Connect(req(0, 4, 1)); err != nil {
		t.Fatalf("plane 1 should still allocate: %v", err)
	}
}

func TestReleaseDecrementsLoad(t *testing.T) {
	tp := topo.MustNew(topo.PaperTestbed())
	m := NewMaster(tp, Static, sim.NewRand(1))
	as, err := m.Connect(req(0, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	up := as.Path.SrcPort.Leaf.Ups[as.Path.Spine.Index]
	if m.LinkLoad(up) != 1 {
		t.Fatalf("load = %d after connect", m.LinkLoad(up))
	}
	m.Release(as)
	if m.LinkLoad(up) != 0 {
		t.Fatalf("load = %d after release", m.LinkLoad(up))
	}
	m.Release(as) // double release is a no-op
	if m.LinkLoad(up) != 0 {
		t.Fatal("double release corrupted load")
	}
	m.Release(nil) // nil release is a no-op
}

func TestSameGroupDirectPath(t *testing.T) {
	tp := topo.MustNew(topo.PaperTestbed())
	m := NewMaster(tp, Static, sim.NewRand(1))
	as, err := m.Connect(req(0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !as.Path.SameLeaf() {
		t.Fatalf("same-group allocation should stay under the leaf: %v", as.Path)
	}
	if as.Path.CrossPlane() {
		t.Fatal("same-leaf path crossed planes")
	}
}

func TestStaticRepairUsesECMPFallback(t *testing.T) {
	tp := topo.MustNew(topo.PaperTestbed())
	m := NewMaster(tp, Static, sim.NewRand(1))
	as, err := m.Connect(req(0, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	spine := as.Path.Spine.Index
	up := as.Path.SrcPort.Leaf.Ups[spine]
	up.SetUp(false)
	re, err := m.Repair(req(0, 4, 0), as)
	if err != nil {
		t.Fatal(err)
	}
	if re.Path.Spine.Index == spine {
		t.Fatal("repair reused the dead spine")
	}
	// Static repairs are untracked: the master's load map must be clean.
	if _, ok := re.Token.([]int); ok && len(re.Token.([]int)) > 0 {
		t.Fatal("static repair should not be master-tracked")
	}
	_, _, repairs := m.Stats()
	if repairs != 1 {
		t.Fatalf("repairs = %d", repairs)
	}
}

func TestDynamicRepairReallocatesLeastLoaded(t *testing.T) {
	tp := topo.MustNew(topo.PaperTestbed())
	m := NewMaster(tp, Dynamic, sim.NewRand(1))
	// Fill spines 1..7 with one QP each from the same leaf pair; spine 0
	// holds the victim.
	victim, err := m.Connect(req(0, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	var others []*accl.Assignment
	for i := 0; i < 6; i++ {
		as, err := m.Connect(req(0, 4, 0))
		if err != nil {
			t.Fatal(err)
		}
		others = append(others, as)
	}
	// Kill the victim's uplink; dynamic repair must pick the one spine
	// with no allocation yet (the 8th).
	used := map[int]bool{victim.Path.Spine.Index: true}
	for _, as := range others {
		used[as.Path.Spine.Index] = true
	}
	free := -1
	for s := 0; s < tp.Spec.Spines; s++ {
		if !used[s] {
			free = s
		}
	}
	if free < 0 {
		t.Fatal("setup: expected a free spine")
	}
	victim.Path.SrcPort.Leaf.Ups[victim.Path.Spine.Index].SetUp(false)
	re, err := m.Repair(req(0, 4, 0), victim)
	if err != nil {
		t.Fatal(err)
	}
	if re.Path.Spine.Index != free {
		t.Fatalf("dynamic repair chose spine %d, want least-loaded %d", re.Path.Spine.Index, free)
	}
}

func TestSportSteersChosenPath(t *testing.T) {
	tp := topo.MustNew(topo.PaperTestbed())
	m := NewMaster(tp, Static, sim.NewRand(1))
	as, err := m.Connect(req(0, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Feeding the discovered sport back through the fabric's own ECMP
	// must land on the allocated path: that is the probing contract.
	routed, err := netsim.Route(tp, 0, 4, 0, 0, as.Sport)
	if err != nil {
		t.Fatal(err)
	}
	if routed.String() != as.Path.String() {
		t.Fatalf("sport %d routes to %v, allocation says %v", as.Sport, routed, as.Path)
	}
}

func TestProbeFindsDeadLinks(t *testing.T) {
	tp := topo.MustNew(topo.PaperTestbed())
	m := NewMaster(tp, Static, sim.NewRand(1))
	rep := m.Probe(0)
	if len(rep.DeadLinks) != 0 {
		t.Fatalf("healthy fabric reported dead links: %v", rep.DeadLinks)
	}
	wantHealthy := topo.Planes * tp.Spec.Groups() * tp.Spec.Spines * 2
	if rep.HealthyPaths != wantHealthy {
		t.Fatalf("healthy paths = %d, want %d", rep.HealthyPaths, wantHealthy)
	}
	dead := tp.LeafAt(0, 0, 3).Ups[5]
	dead.SetUp(false)
	rep = m.Probe(0)
	if len(rep.DeadLinks) != 1 || rep.DeadLinks[0] != dead.Name {
		t.Fatalf("probe missed the dead link: %v", rep.DeadLinks)
	}
	if got := len(m.ProbeAll()); got != tp.Spec.Rails {
		t.Fatalf("ProbeAll reports = %d", got)
	}
}

func TestModeString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("mode labels wrong")
	}
}
