package cluster

import (
	"c4/internal/sim"
)

// CauseProb is one row of the fault-cause mixture.
type CauseProb struct {
	Kind FaultKind
	// Weight is the relative arrival probability.
	Weight float64
	// LocalProb is the probability the instance is confined to one node.
	LocalProb float64
}

// TableIMix returns the crash-cause distribution measured over one month of
// a representative 4096-GPU job (Table I): CUDA 12.5% (100% local),
// ECC/NVLink 27.5% (100%), NCCL timeout 20% (75%), ACK timeout 27.5%
// (81.8%), other network errors 12.5% (40%). Expected locality: 82.5%.
func TableIMix() []CauseProb {
	return []CauseProb{
		{FaultCUDAError, 0.125, 1.0},
		{FaultECCNVLink, 0.275, 1.0},
		{FaultNCCLTimeout, 0.20, 0.75},
		{FaultACKTimeout, 0.275, 0.818},
		{FaultNetworkOther, 0.125, 0.40},
	}
}

// InjectorConfig parameterizes the fault process.
type InjectorConfig struct {
	Rand  *sim.Rand
	Nodes int
	// GPUsPerNode scales the fleet-size-dependent arrival rate.
	GPUsPerNode int
	// CrashesPerMonthPer4096 is the fleet-normalized crash rate; the
	// paper's representative job saw 40 crashes/month on 4096 GPUs.
	CrashesPerMonthPer4096 float64
	// Mix is the cause distribution (default TableIMix).
	Mix []CauseProb
}

// Injector draws fault arrivals as a Poisson process whose rate scales
// with fleet size, assigning each fault a cause, locality and victim node.
type Injector struct {
	cfg  InjectorConfig
	mean sim.Time // mean inter-arrival
}

// NewInjector validates the config and returns an injector.
func NewInjector(cfg InjectorConfig) *Injector {
	if cfg.Rand == nil {
		cfg.Rand = sim.NewRand(11)
	}
	if cfg.GPUsPerNode <= 0 {
		cfg.GPUsPerNode = 8
	}
	if cfg.CrashesPerMonthPer4096 <= 0 {
		cfg.CrashesPerMonthPer4096 = 40
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = TableIMix()
	}
	gpus := float64(cfg.Nodes * cfg.GPUsPerNode)
	perMonth := cfg.CrashesPerMonthPer4096 * gpus / 4096
	month := 30 * sim.Day
	inj := &Injector{cfg: cfg}
	if perMonth > 0 {
		inj.mean = sim.Time(float64(month) / perMonth)
	} else {
		inj.mean = sim.MaxTime
	}
	return inj
}

// MeanInterarrival reports the expected time between faults.
func (in *Injector) MeanInterarrival() sim.Time { return in.mean }

// Next draws the next fault, `after` the given instant.
func (in *Injector) Next(after sim.Time) Fault {
	r := in.cfg.Rand
	at := after + r.ExpTime(in.mean)
	weights := make([]float64, len(in.cfg.Mix))
	for i, m := range in.cfg.Mix {
		weights[i] = m.Weight
	}
	row := in.cfg.Mix[r.Pick(weights)]
	return Fault{
		Kind:  row.Kind,
		Node:  r.Intn(in.cfg.Nodes),
		Time:  at,
		Local: r.Float64() < row.LocalProb,
	}
}

// Drive schedules faults onto the engine until `until`, invoking handle for
// each. The handler runs at the fault's virtual time.
func (in *Injector) Drive(eng *sim.Engine, until sim.Time, handle func(Fault)) {
	var schedule func(prev sim.Time)
	schedule = func(prev sim.Time) {
		f := in.Next(prev)
		if f.Time > until {
			return
		}
		eng.Schedule(f.Time, func() {
			handle(f)
			schedule(f.Time)
		})
	}
	schedule(eng.Now())
}

// Sample draws n faults back-to-back starting at t=0; used by the
// availability Monte-Carlo, which does not need an engine.
func (in *Injector) Sample(n int) []Fault {
	out := make([]Fault, 0, n)
	var t sim.Time
	for i := 0; i < n; i++ {
		f := in.Next(t)
		t = f.Time
		out = append(out, f)
	}
	return out
}

// SampleWindow draws all faults arriving within the window [0, span).
func (in *Injector) SampleWindow(span sim.Time) []Fault {
	var out []Fault
	var t sim.Time
	for {
		f := in.Next(t)
		if f.Time >= span {
			return out
		}
		t = f.Time
		out = append(out, f)
	}
}
