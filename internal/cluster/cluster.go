// Package cluster models the compute-side hardware of an AI training
// cluster — machines, GPUs, NICs and their failure modes — and provides the
// fault injector that reproduces the error population of the paper's
// production deployment (Table I: cause mix, locality, and user-visible
// symptom).
package cluster

import (
	"fmt"

	"c4/internal/sim"
)

// FaultKind is a root cause, matching Table I's rows plus the non-critical
// degradation modes analyzed in §III-A (slow nodes / slow NICs).
type FaultKind int

// Root causes.
const (
	// FaultCUDAError is a GPU driver/runtime error; crashes the worker.
	FaultCUDAError FaultKind = iota
	// FaultECCNVLink is a GPU memory ECC or NVLink error; crashes the worker.
	FaultECCNVLink
	// FaultNCCLTimeout is a collective-library timeout.
	FaultNCCLTimeout
	// FaultACKTimeout is an RDMA transport acknowledgment timeout.
	FaultACKTimeout
	// FaultNetworkOther covers link/switch failures and other network errors.
	FaultNetworkOther
	// FaultGPUDegrade is a non-critical slow GPU (straggler source).
	FaultGPUDegrade
	// FaultNICTxDegrade halves a NIC's effective transmit bandwidth.
	FaultNICTxDegrade
	// FaultNICRxDegrade halves a NIC's effective receive bandwidth.
	FaultNICRxDegrade
	numFaultKinds
)

// String returns the root-cause label used in the paper's tables.
func (k FaultKind) String() string {
	switch k {
	case FaultCUDAError:
		return "CUDA Error"
	case FaultECCNVLink:
		return "ECC/NVLink Error"
	case FaultNCCLTimeout:
		return "NCCL timeout"
	case FaultACKTimeout:
		return "ACK timeout"
	case FaultNetworkOther:
		return "Others"
	case FaultGPUDegrade:
		return "GPU degrade"
	case FaultNICTxDegrade:
		return "NIC Tx degrade"
	case FaultNICRxDegrade:
		return "NIC Rx degrade"
	}
	return "unknown"
}

// UserView is the symptom the user sees, which Table I shows is nearly
// useless for root-causing: almost everything surfaces as "NCCL Error".
func (k FaultKind) UserView() string {
	switch k {
	case FaultNetworkOther:
		return "Network Error"
	case FaultGPUDegrade, FaultNICTxDegrade, FaultNICRxDegrade:
		return "Slow Iterations"
	default:
		return "NCCL Error"
	}
}

// Critical reports whether the fault crashes the job (vs degrading it).
func (k FaultKind) Critical() bool {
	switch k {
	case FaultGPUDegrade, FaultNICTxDegrade, FaultNICRxDegrade:
		return false
	}
	return true
}

// Fault is one injected hardware/software event.
type Fault struct {
	Kind FaultKind
	Node int
	Time sim.Time
	// Local reports whether the root cause is confined to the node (and so
	// can be fixed by isolating it). Matches Table I's "Local" column.
	Local bool
}

func (f Fault) String() string {
	return fmt.Sprintf("%v@n%d t=%v local=%v", f.Kind, f.Node, f.Time, f.Local)
}

// GPU is one accelerator's health state.
type GPU struct {
	Healthy bool
	// Perf scales compute speed; 1.0 is nominal, lower is a straggler.
	Perf float64
}

// Machine is one compute node.
type Machine struct {
	ID       int
	GPUs     []GPU
	Healthy  bool
	Isolated bool
}

// Perf reports the machine's effective compute factor: the slowest healthy
// GPU gates BSP compute.
func (m *Machine) Perf() float64 {
	p := 1.0
	for _, g := range m.GPUs {
		if g.Healthy && g.Perf < p {
			p = g.Perf
		}
	}
	return p
}

// Cluster is the fleet plus the backup pool: the paper provisions 64 spare
// GPUs per 1024 (8 spare servers per 128) so an isolated node can be
// replaced without shrinking the job.
type Cluster struct {
	Machines []*Machine
	spares   []int
}

// NewCluster builds n healthy machines with g GPUs each, plus `spares`
// backup machines appended after the primaries.
func NewCluster(n, g, spares int) *Cluster {
	c := &Cluster{}
	for i := 0; i < n+spares; i++ {
		m := &Machine{ID: i, Healthy: true, GPUs: make([]GPU, g)}
		for j := range m.GPUs {
			m.GPUs[j] = GPU{Healthy: true, Perf: 1}
		}
		c.Machines = append(c.Machines, m)
		if i >= n {
			c.spares = append(c.spares, i)
		}
	}
	return c
}

// SpareCount reports remaining backup machines.
func (c *Cluster) SpareCount() int { return len(c.spares) }

// Healthy reports whether a machine is in service: built, healthy and not
// isolated. The multi-tenant scheduler gates admission on it so jobs never
// land on machines a fault campaign has taken down.
func (c *Cluster) Healthy(node int) bool {
	if node < 0 || node >= len(c.Machines) {
		return false
	}
	m := c.Machines[node]
	return m.Healthy && !m.Isolated
}

// Isolate removes a machine from service and returns a replacement from
// the backup pool, or -1 if the pool is empty.
func (c *Cluster) Isolate(node int) (replacement int) {
	m := c.Machines[node]
	m.Isolated = true
	m.Healthy = false
	if len(c.spares) == 0 {
		return -1
	}
	r := c.spares[0]
	c.spares = c.spares[1:]
	return r
}

// Restore returns a repaired machine to the backup pool.
func (c *Cluster) Restore(node int) {
	m := c.Machines[node]
	m.Isolated = false
	m.Healthy = true
	for j := range m.GPUs {
		m.GPUs[j] = GPU{Healthy: true, Perf: 1}
	}
	c.spares = append(c.spares, node)
}
