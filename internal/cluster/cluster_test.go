package cluster

import (
	"math"
	"testing"

	"c4/internal/sim"
)

func TestMachinePerf(t *testing.T) {
	m := &Machine{Healthy: true, GPUs: []GPU{{true, 1}, {true, 0.6}, {false, 0.1}}}
	if got := m.Perf(); got != 0.6 {
		t.Fatalf("perf = %v, want 0.6 (slowest healthy GPU)", got)
	}
}

func TestIsolateAndRestore(t *testing.T) {
	c := NewCluster(4, 8, 2)
	if c.SpareCount() != 2 {
		t.Fatalf("spares = %d", c.SpareCount())
	}
	r := c.Isolate(1)
	if r != 4 {
		t.Fatalf("replacement = %d, want first spare (4)", r)
	}
	if !c.Machines[1].Isolated || c.Machines[1].Healthy {
		t.Fatal("machine 1 not isolated")
	}
	if c.SpareCount() != 1 {
		t.Fatalf("spares = %d after isolate", c.SpareCount())
	}
	c.Restore(1)
	if c.Machines[1].Isolated || !c.Machines[1].Healthy {
		t.Fatal("machine 1 not restored")
	}
	if c.SpareCount() != 2 {
		t.Fatalf("spares = %d after restore", c.SpareCount())
	}
	// Exhaust the pool.
	c.Isolate(0)
	c.Isolate(2)
	if got := c.Isolate(3); got != -1 {
		t.Fatalf("empty pool returned %d, want -1", got)
	}
}

func TestHealthy(t *testing.T) {
	c := NewCluster(4, 8, 1)
	if !c.Healthy(0) || !c.Healthy(4) {
		t.Fatal("fresh machines should be healthy")
	}
	if c.Healthy(-1) || c.Healthy(5) {
		t.Fatal("out-of-range nodes reported healthy")
	}
	c.Isolate(2)
	if c.Healthy(2) {
		t.Fatal("isolated machine reported healthy")
	}
	c.Restore(2)
	if !c.Healthy(2) {
		t.Fatal("restored machine reported unhealthy")
	}
}

func TestFaultKindMetadata(t *testing.T) {
	for k := FaultKind(0); k < numFaultKinds; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no label", k)
		}
		if k.UserView() == "" {
			t.Fatalf("kind %d has no user view", k)
		}
	}
	if !FaultCUDAError.Critical() || FaultGPUDegrade.Critical() {
		t.Fatal("criticality misclassified")
	}
	if FaultCUDAError.UserView() != "NCCL Error" {
		t.Fatalf("CUDA errors surface as %q, want NCCL Error", FaultCUDAError.UserView())
	}
	if FaultNetworkOther.UserView() != "Network Error" {
		t.Fatal("network-other user view wrong")
	}
}

func TestTableIMixSumsToOne(t *testing.T) {
	var sum float64
	for _, m := range TableIMix() {
		sum += m.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mix weights sum to %v", sum)
	}
}

func TestInjectorRateScalesWithFleet(t *testing.T) {
	small := NewInjector(InjectorConfig{Rand: sim.NewRand(1), Nodes: 512, GPUsPerNode: 8})
	big := NewInjector(InjectorConfig{Rand: sim.NewRand(1), Nodes: 1024, GPUsPerNode: 8})
	if small.MeanInterarrival() <= big.MeanInterarrival() {
		t.Fatal("bigger fleet should fail more often")
	}
	// 4096 GPUs at 40/month -> mean inter-arrival 18 h.
	ref := NewInjector(InjectorConfig{Rand: sim.NewRand(1), Nodes: 512, GPUsPerNode: 8})
	want := 30 * sim.Day / 40
	if ref.MeanInterarrival() != want {
		t.Fatalf("mean = %v, want %v", ref.MeanInterarrival(), want)
	}
}

func TestInjectorReproducesTableI(t *testing.T) {
	in := NewInjector(InjectorConfig{Rand: sim.NewRand(42), Nodes: 512, GPUsPerNode: 8})
	const n = 20000
	counts := map[FaultKind]int{}
	local := 0
	for _, f := range in.Sample(n) {
		counts[f.Kind]++
		if f.Local {
			local++
		}
		if f.Node < 0 || f.Node >= 512 {
			t.Fatalf("victim node %d out of range", f.Node)
		}
	}
	check := func(kind FaultKind, want float64) {
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("%v proportion = %.3f, want %.3f", kind, got, want)
		}
	}
	check(FaultCUDAError, 0.125)
	check(FaultECCNVLink, 0.275)
	check(FaultNCCLTimeout, 0.20)
	check(FaultACKTimeout, 0.275)
	check(FaultNetworkOther, 0.125)
	if got := float64(local) / n; math.Abs(got-0.825) > 0.01 {
		t.Fatalf("locality = %.3f, want 0.825", got)
	}
}

func TestInjectorSampleWindow(t *testing.T) {
	in := NewInjector(InjectorConfig{Rand: sim.NewRand(7), Nodes: 512, GPUsPerNode: 8})
	month := 30 * sim.Day
	faults := in.SampleWindow(month)
	// Expect ~40; Poisson sd ~6.3.
	if len(faults) < 15 || len(faults) > 75 {
		t.Fatalf("faults in month = %d, want ≈40", len(faults))
	}
	var prev sim.Time
	for _, f := range faults {
		if f.Time < prev || f.Time >= month {
			t.Fatalf("fault time %v out of order/window", f.Time)
		}
		prev = f.Time
	}
}

func TestInjectorDrive(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(InjectorConfig{Rand: sim.NewRand(3), Nodes: 4096, GPUsPerNode: 8})
	var seen []Fault
	in.Drive(eng, 10*sim.Day, func(f Fault) { seen = append(seen, f) })
	eng.Run()
	if len(seen) == 0 {
		t.Fatal("no faults driven")
	}
	for i, f := range seen {
		if f.Time > 10*sim.Day {
			t.Fatalf("fault %d after deadline: %v", i, f.Time)
		}
		if i > 0 && f.Time < seen[i-1].Time {
			t.Fatal("faults out of order")
		}
	}
}

func TestInjectorDefaults(t *testing.T) {
	in := NewInjector(InjectorConfig{Nodes: 10})
	f := in.Next(0)
	if f.Node < 0 || f.Node >= 10 {
		t.Fatalf("node %d out of range", f.Node)
	}
	if in.MeanInterarrival() <= 0 {
		t.Fatal("mean inter-arrival must be positive")
	}
}
