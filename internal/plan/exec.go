package plan

import (
	"context"
	"fmt"

	"c4/internal/sim"
	"c4/internal/trace"
)

// Fabric is the transport surface the executor drives. The job layer
// implements it over ACCL communicators (point-to-point SendRecv between
// adjacent stages, ring allreduce per DP group); tests implement it with
// arithmetic stubs.
type Fabric struct {
	Engine *sim.Engine
	// P2P ships bytes between the adjacent stages `from` and `to` of one
	// pipeline replica, starting at the absolute instant `ready`; done
	// fires with the delivery time.
	P2P func(replica, from, to int, bytes float64, ready sim.Time, done func(end sim.Time))
	// DPSync synchronizes one gradient bucket of `stage` across replicas;
	// arrivals[d] is replica d's bucket-ready instant. done fires with
	// the synchronization's completion time.
	DPSync func(stage int, bytes float64, arrivals []sim.Time, done func(end sim.Time))

	// Trace, when enabled, records a span per compute slot ("slot",
	// d/s/fwd|bwd), per stage-to-stage transfer ("p2p") and per gradient
	// bucket sync ("dpsync", stage/bucket), all parented under Span (the
	// job's iteration span). The fabric's P2P/DPSync launches run inside
	// the matching span's scope, so the underlying collective op and flow
	// spans nest under it.
	Trace *trace.Tracer
	Span  *trace.Span
}

// IterTiming carries this iteration's per-node compute perturbations,
// drawn by the caller (the job owns the RNG stream).
type IterTiming struct {
	// Scale[d][s] multiplies every compute slot of (replica d, stage s);
	// 1 is nominal. Values are clamped at 0.
	Scale [][]float64
	// Extra[d][s] is added to every compute slot of the node — the
	// straggler injection, pre-divided across the iteration's 2*GA slots.
	Extra [][]sim.Time
}

// IterStats is the measured breakdown of one executed iteration:
//
//	IterTime = MaxBusy + Bubble + Exposed
//
// MaxBusy is the busiest node's total compute time, Bubble is the
// pipeline idle before compute finished (warmup/drain slots plus any
// stall waiting on activation transfers), and Exposed is the tail after
// the last compute slot that only data-parallel synchronization occupies
// — the share of the iteration that comm/compute overlap failed to hide,
// the quantity the paper's Fig 14 gains track.
type IterStats struct {
	Start      sim.Time
	End        sim.Time
	ComputeEnd sim.Time // end of the last compute slot
	MaxBusy    sim.Time // busiest node's summed slot durations
	Bubble     sim.Time // ComputeEnd - Start - MaxBusy
	Exposed    sim.Time // End - ComputeEnd
}

// IterTime is the iteration's wall duration.
func (s IterStats) IterTime() sim.Time { return s.End - s.Start }

// exec is the mutable state of one iteration in flight.
type exec struct {
	p     *Plan
	f     Fabric
	ctx   context.Context
	tm    IterTiming
	start sim.Time

	st [][]*stageState // [replica][stage]

	// bucketReady[s][i] collects per-replica ready instants for bucket i
	// of stage s; the sync launches when the last replica reports in.
	bucketReady [][][]sim.Time
	bucketSeen  [][]int

	computeLeft int
	syncLeft    int
	computeEnd  sim.Time
	onDone      func(IterStats)
	finished    bool
}

type stageState struct {
	idx       int      // next task in Order[s]
	busyUntil sim.Time // end of the last scheduled compute slot
	busy      sim.Time // summed slot durations
	// actAt[m] is the arrival instant of micro-batch m's activation from
	// the upstream stage; -1 until delivered. Stage 0 needs none.
	actAt []sim.Time
	// gradAt[m] is the arrival of m's gradient from the downstream stage;
	// -1 until delivered. The last stage needs none.
	gradAt []sim.Time
}

// ExecIter runs one iteration of the plan starting at the engine's
// current instant; onDone fires at the iteration's completion with the
// measured breakdown. The caller must not start a second iteration of
// the same plan before the first completes (stages are serial).
//
// ctx is a cooperative cancellation signal: once it is cancelled the
// executor stops scheduling new compute slots and transfers, so the
// iteration's event cascade dies out and the engine queue drains instead
// of running the schedule to completion (onDone then never fires). A nil
// ctx — or one that is never cancelled — leaves execution bit-identical
// to the pre-context behavior.
func (p *Plan) ExecIter(ctx context.Context, f Fabric, tm IterTiming, onDone func(IterStats)) {
	if f.Engine == nil || f.P2P == nil || f.DPSync == nil {
		panic("plan: ExecIter needs Engine, P2P and DPSync")
	}
	e := &exec{
		p: p, f: f, ctx: ctx, tm: tm,
		start:       f.Engine.Now(),
		computeLeft: p.DP * p.PP * 2 * p.GA,
		syncLeft:    p.PP * len(p.Buckets),
		onDone:      onDone,
	}
	e.st = make([][]*stageState, p.DP)
	for d := range e.st {
		e.st[d] = make([]*stageState, p.PP)
		for s := range e.st[d] {
			st := &stageState{busyUntil: e.start}
			st.actAt = unknownTimes(p.GA)
			st.gradAt = unknownTimes(p.GA)
			e.st[d][s] = st
		}
	}
	e.bucketReady = make([][][]sim.Time, p.PP)
	e.bucketSeen = make([][]int, p.PP)
	for s := range e.bucketReady {
		e.bucketReady[s] = make([][]sim.Time, len(p.Buckets))
		for i := range e.bucketReady[s] {
			e.bucketReady[s][i] = make([]sim.Time, p.DP)
		}
		e.bucketSeen[s] = make([]int, len(p.Buckets))
	}
	for d := 0; d < p.DP; d++ {
		for s := 0; s < p.PP; s++ {
			e.try(d, s)
		}
	}
}

func unknownTimes(n int) []sim.Time {
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = -1
	}
	return out
}

// slotDur is the perturbed duration of one compute slot on (d, s).
func (e *exec) slotDur(kind TaskKind, d, s int) sim.Time {
	nominal := e.p.FwdTime
	if kind == Bwd {
		nominal = e.p.BwdTime
	}
	scale := 1.0
	if d < len(e.tm.Scale) && s < len(e.tm.Scale[d]) {
		scale = e.tm.Scale[d][s]
	}
	if scale < 0 {
		scale = 0
	}
	dur := sim.Time(float64(nominal) * scale)
	if d < len(e.tm.Extra) && s < len(e.tm.Extra[d]) {
		dur += e.tm.Extra[d][s]
	}
	if dur < 0 {
		dur = 0
	}
	return dur
}

// cancelled reports whether the iteration's context was cancelled; the
// executor then freezes the DAG by refusing to schedule further work.
func (e *exec) cancelled() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

// try schedules stage (d, s)'s next tasks for as long as their data
// dependencies are already determined. Every dependency's arrival
// callback re-invokes try, so the stage resumes the moment it unblocks.
func (e *exec) try(d, s int) {
	if e.cancelled() {
		return
	}
	st := e.st[d][s]
	order := e.p.Order[s]
	for st.idx < len(order) {
		t := order[st.idx]
		dep := e.start
		switch {
		case t.Kind == Fwd && s > 0:
			if st.actAt[t.MB] < 0 {
				return // activation still in flight (or not yet sent)
			}
			dep = st.actAt[t.MB]
		case t.Kind == Bwd && s < e.p.PP-1:
			if st.gradAt[t.MB] < 0 {
				return // downstream gradient still in flight
			}
			dep = st.gradAt[t.MB]
		}
		begin := st.busyUntil
		if dep > begin {
			begin = dep
		}
		end := begin + e.slotDur(t.Kind, d, s)
		st.busyUntil = end
		st.busy += end - begin
		st.idx++
		if e.f.Trace.Enabled() {
			// Slot begin/end are known at schedule time; record the span
			// whole so micro-batch attribution needs no completion hook.
			sp := e.f.Trace.StartAt(e.f.Span, "slot",
				fmt.Sprintf("d%d/s%d %s", d, s, kindLabel(t.Kind)), begin)
			sp.Annotate("mb", fmt.Sprintf("%d", t.MB))
			sp.FinishAt(end)
		}
		// The final backward pass's bucket-ready instants are known the
		// moment the slot is scheduled; record them now so the DP sync
		// can launch with future arrival times, exactly as the fused
		// model posts its allreduce at iteration start.
		if t.Kind == Bwd && t.MB == e.p.GA-1 {
			e.recordBuckets(d, s, begin, end)
		}
		e.f.Engine.Schedule(end, func() { e.completeSlot(d, s, t, begin, end) })
	}
}

// recordBuckets marks replica d's gradient buckets of stage s ready
// within its final backward slot [begin, end] (overlap on) or at its end
// (overlap off), launching each bucket's sync once every replica has
// reported.
func (e *exec) recordBuckets(d, s int, begin, end sim.Time) {
	nb := len(e.p.Buckets)
	span := end - begin
	for i := 0; i < nb; i++ {
		at := end
		if e.p.Opts.Overlap {
			at = begin + sim.Time(float64(span)*float64(i+1)/float64(nb))
		}
		e.bucketReady[s][i][d] = at
		e.bucketSeen[s][i]++
		if e.bucketSeen[s][i] == e.p.DP {
			var sp *trace.Span
			if e.f.Trace.Enabled() {
				first := e.bucketReady[s][i][0]
				for _, t := range e.bucketReady[s][i][1:] {
					if t < first {
						first = t
					}
				}
				sp = e.f.Trace.StartAt(e.f.Span, "dpsync",
					fmt.Sprintf("stage%d/bucket%d", s, i), first)
			}
			restore := e.f.Trace.Scope(sp)
			e.f.DPSync(s, e.p.Buckets[i], e.bucketReady[s][i], func(at sim.Time) {
				sp.FinishAt(at)
				e.syncLeft--
				e.maybeFinish(at)
			})
			restore()
		}
	}
}

// completeSlot runs at a compute slot's end instant: it ships the slot's
// output tensor, wakes the neighbor stage, and closes the iteration's
// compute accounting.
func (e *exec) completeSlot(d, s int, t Task, begin, end sim.Time) {
	if e.cancelled() {
		return
	}
	if end > e.computeEnd {
		e.computeEnd = end
	}
	switch {
	case t.Kind == Fwd && s < e.p.PP-1:
		mb := t.MB
		sp := e.p2pSpan(d, s, s+1, end)
		restore := e.f.Trace.Scope(sp)
		e.f.P2P(d, s, s+1, e.p.ActBytes, end, func(at sim.Time) {
			sp.FinishAt(at)
			e.st[d][s+1].actAt[mb] = at
			e.try(d, s+1)
		})
		restore()
	case t.Kind == Bwd && s > 0:
		mb := t.MB
		sp := e.p2pSpan(d, s, s-1, end)
		restore := e.f.Trace.Scope(sp)
		e.f.P2P(d, s, s-1, e.p.ActBytes, end, func(at sim.Time) {
			sp.FinishAt(at)
			e.st[d][s-1].gradAt[mb] = at
			e.try(d, s-1)
		})
		restore()
	}
	e.computeLeft--
	e.maybeFinish(end)
}

// p2pSpan opens the span for a stage-to-stage transfer launched at
// `ready`; nil when tracing is off.
func (e *exec) p2pSpan(d, from, to int, ready sim.Time) *trace.Span {
	if !e.f.Trace.Enabled() {
		return nil
	}
	return e.f.Trace.StartAt(e.f.Span, "p2p",
		fmt.Sprintf("d%d s%d->s%d", d, from, to), ready)
}

func kindLabel(k TaskKind) string {
	if k == Bwd {
		return "bwd"
	}
	return "fwd"
}

// maybeFinish closes the iteration when compute and synchronization have
// both drained.
func (e *exec) maybeFinish(at sim.Time) {
	if e.finished || e.computeLeft > 0 || e.syncLeft > 0 {
		return
	}
	e.finished = true
	var maxBusy sim.Time
	for _, row := range e.st {
		for _, st := range row {
			if st.idx != len(e.p.Order[0]) {
				panic(fmt.Sprintf("plan: iteration finished with stage at task %d/%d",
					st.idx, len(e.p.Order[0])))
			}
			if st.busy > maxBusy {
				maxBusy = st.busy
			}
		}
	}
	end := at
	if e.computeEnd > end {
		end = e.computeEnd
	}
	stats := IterStats{
		Start:      e.start,
		End:        end,
		ComputeEnd: e.computeEnd,
		MaxBusy:    maxBusy,
		Bubble:     e.computeEnd - e.start - maxBusy,
		Exposed:    end - e.computeEnd,
	}
	if stats.Bubble < 0 {
		stats.Bubble = 0
	}
	if e.onDone != nil {
		e.onDone(stats)
	}
}
