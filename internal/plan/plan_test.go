package plan

import (
	"testing"

	"c4/internal/sim"
	"c4/internal/workload"
)

func testSpec(pp, dp, ga int, nodes int) workload.JobSpec {
	ns := make([]int, nodes)
	for i := range ns {
		ns[i] = i
	}
	return workload.JobSpec{
		Name:                 "t",
		Model:                workload.GPT22B,
		Par:                  workload.Parallelism{TP: 8, PP: pp, DP: dp, GA: ga},
		Nodes:                ns,
		ComputePerMicroBatch: 300 * sim.Millisecond,
		SamplesPerIter:       64,
	}
}

func mustCompile(t *testing.T, spec workload.JobSpec, opts Options) *Plan {
	t.Helper()
	p, err := Compile(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// stubFabric resolves every transfer analytically: p2p after a fixed
// latency, DP sync after a byte-proportional latency (nsPerByte), so
// schedule timing is checkable without a network model.
func stubFabric(eng *sim.Engine, p2pLat sim.Time, nsPerByte float64) Fabric {
	return Fabric{
		Engine: eng,
		P2P: func(_, _, _ int, _ float64, ready sim.Time, done func(sim.Time)) {
			eng.Schedule(ready+p2pLat, func() { done(ready + p2pLat) })
		},
		DPSync: func(_ int, bytes float64, arrivals []sim.Time, done func(sim.Time)) {
			at := eng.Now()
			for _, a := range arrivals {
				if a > at {
					at = a
				}
			}
			end := at + sim.Time(nsPerByte*bytes)
			eng.Schedule(end, func() { done(end) })
		},
	}
}

func TestCompileValidates(t *testing.T) {
	spec := testSpec(2, 2, 4, 4)
	spec.Nodes = spec.Nodes[:3]
	if _, err := Compile(spec, Options{}); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	if _, err := Compile(testSpec(1, 1, 1, 1), Options{FwdFraction: 1.5}); err == nil {
		t.Fatal("FwdFraction >= 1 accepted")
	}
}

func TestCompileDegenerate(t *testing.T) {
	cases := []struct {
		pp, dp, ga int
		opts       Options
		want       bool
	}{
		{1, 4, 1, Options{}, true},
		{1, 4, 1, Options{Overlap: true}, false},
		{1, 4, 1, Options{BucketBytes: 64 << 20}, false},
		{2, 2, 1, Options{}, false},
		{1, 4, 4, Options{}, false},
	}
	for _, c := range cases {
		p := mustCompile(t, testSpec(c.pp, c.dp, c.ga, c.pp*c.dp), c.opts)
		if p.Degenerate != c.want {
			t.Errorf("PP%d/DP%d/GA%d %+v: Degenerate = %v, want %v",
				c.pp, c.dp, c.ga, c.opts, p.Degenerate, c.want)
		}
	}
}

func TestStageOrderIs1F1B(t *testing.T) {
	// PP=4, GA=8: stage 0 does 3 warmup forwards; last stage alternates
	// from the start; every stage runs 2*GA slots covering each
	// micro-batch exactly once per direction.
	p := mustCompile(t, testSpec(4, 1, 8, 4), Options{})
	for s, order := range p.Order {
		if len(order) != 16 {
			t.Fatalf("stage %d: %d slots, want 16", s, len(order))
		}
		seen := map[Task]bool{}
		bwdSeen := 0
		for i, task := range order {
			if seen[task] {
				t.Fatalf("stage %d repeats %v", s, task)
			}
			seen[task] = true
			if task.Kind == Bwd {
				bwdSeen++
				// 1F1B invariant: bwd(m) only after fwd(m) on this stage.
				if !seen[Task{Fwd, task.MB}] {
					t.Fatalf("stage %d: bwd(%d) before fwd(%d) at slot %d", s, task.MB, task.MB, i)
				}
			}
		}
		if bwdSeen != 8 {
			t.Fatalf("stage %d: %d backwards, want 8", s, bwdSeen)
		}
	}
	// Warmup depth: stage s starts with min(GA, PP-1-s) forwards.
	for s, warm := range []int{3, 2, 1, 0} {
		for i := 0; i < warm; i++ {
			if p.Order[s][i].Kind != Fwd {
				t.Fatalf("stage %d slot %d: %v, want warmup fwd", s, i, p.Order[s][i])
			}
		}
		if warm < len(p.Order[s]) && s == len(p.Order)-1 && p.Order[s][1].Kind != Bwd {
			t.Fatalf("last stage must alternate immediately: %v", p.Order[s][:2])
		}
	}
}

func TestSplitBuckets(t *testing.T) {
	cases := []struct {
		total, bucket float64
		n             int
	}{
		{100, 0, 1},
		{100, 200, 1},
		{100, 25, 4},
		{100, 30, 4}, // 30+30+30+10
	}
	for _, c := range cases {
		got := splitBuckets(c.total, c.bucket)
		if len(got) != c.n {
			t.Fatalf("splitBuckets(%v, %v) = %v, want %d buckets", c.total, c.bucket, got, c.n)
		}
		var sum float64
		for _, b := range got {
			sum += b
		}
		if sum != c.total {
			t.Fatalf("splitBuckets(%v, %v) sums to %v", c.total, c.bucket, sum)
		}
	}
}

func TestExecPurePipelineMatchesBubbleFormula(t *testing.T) {
	// DP=1, no jitter, instant transfers: the 1F1B iteration must last
	// exactly (GA + PP - 1) micro-batch slots, the textbook bubble.
	eng := sim.NewEngine()
	p := mustCompile(t, testSpec(4, 1, 8, 4), Options{})
	var stats IterStats
	p.ExecIter(nil, stubFabric(eng, 0, 0), IterTiming{}, func(s IterStats) { stats = s })
	eng.Run()
	if stats.End == 0 {
		t.Fatal("iteration never completed")
	}
	want := sim.Time(8+4-1) * 300 * sim.Millisecond
	if stats.IterTime() != want {
		t.Fatalf("iter = %v, want %v (GA+PP-1 slots)", stats.IterTime(), want)
	}
	if stats.MaxBusy != 8*300*sim.Millisecond {
		t.Fatalf("busy = %v, want GA slots", stats.MaxBusy)
	}
	if stats.Bubble != 3*300*sim.Millisecond {
		t.Fatalf("bubble = %v, want (PP-1) slots", stats.Bubble)
	}
	if stats.Exposed != 0 {
		t.Fatalf("exposed = %v, want 0 without DP traffic", stats.Exposed)
	}
}

func TestExecOverlapHidesSyncTail(t *testing.T) {
	// One stage, GA=2, a sync that costs 100 ms for the full gradient.
	// With a single bucket the sync starts at backward-drain end and is
	// fully exposed; with overlap and four buckets the early buckets
	// hide behind the remaining backward compute.
	grad := workload.GPT22B.GradBytesPerRank(workload.Parallelism{TP: 8})
	nsPerByte := float64(100*sim.Millisecond) / grad
	run := func(opts Options) IterStats {
		eng := sim.NewEngine()
		p := mustCompile(t, testSpec(1, 2, 2, 2), opts)
		var stats IterStats
		p.ExecIter(nil, stubFabric(eng, 0, nsPerByte), IterTiming{}, func(s IterStats) { stats = s })
		eng.Run()
		return stats
	}
	off := run(Options{})
	on := run(Options{Overlap: true, BucketBytes: grad / 4})
	if want := sim.Time(nsPerByte * grad); off.Exposed != want {
		t.Fatalf("exposed(off) = %v, want the full sync latency %v", off.Exposed, want)
	}
	if on.Exposed >= off.Exposed {
		t.Fatalf("exposed(on) = %v, want < %v", on.Exposed, off.Exposed)
	}
	if on.IterTime() >= off.IterTime() {
		t.Fatalf("iter(on) = %v, want < iter(off) = %v", on.IterTime(), off.IterTime())
	}
}

func TestExecP2PLatencyStallsPipeline(t *testing.T) {
	// A slow activation path inflates the bubble, not the busy time.
	run := func(lat sim.Time) IterStats {
		eng := sim.NewEngine()
		p := mustCompile(t, testSpec(2, 1, 2, 2), Options{})
		var stats IterStats
		p.ExecIter(nil, stubFabric(eng, lat, 0), IterTiming{}, func(s IterStats) { stats = s })
		eng.Run()
		return stats
	}
	fast, slow := run(0), run(50*sim.Millisecond)
	if slow.MaxBusy != fast.MaxBusy {
		t.Fatalf("busy changed with p2p latency: %v vs %v", slow.MaxBusy, fast.MaxBusy)
	}
	if slow.Bubble <= fast.Bubble {
		t.Fatalf("bubble = %v, want > %v under slow activations", slow.Bubble, fast.Bubble)
	}
}

func TestExecStragglerExtraSlowsIteration(t *testing.T) {
	run := func(extra sim.Time) IterStats {
		eng := sim.NewEngine()
		p := mustCompile(t, testSpec(2, 2, 2, 4), Options{})
		tm := IterTiming{Scale: [][]float64{{1, 1}, {1, 1}}, Extra: [][]sim.Time{{extra, 0}, {0, 0}}}
		var stats IterStats
		p.ExecIter(nil, stubFabric(eng, 0, 0), tm, func(s IterStats) { stats = s })
		eng.Run()
		return stats
	}
	base, slow := run(0), run(40*sim.Millisecond)
	// The straggler adds extra per slot on one node: 2*GA slots' worth
	// lands on the critical path.
	if slow.IterTime() <= base.IterTime() {
		t.Fatalf("iter = %v, want > %v with a straggler", slow.IterTime(), base.IterTime())
	}
	if slow.MaxBusy <= base.MaxBusy {
		t.Fatalf("busy = %v, want > %v with a straggler", slow.MaxBusy, base.MaxBusy)
	}
}

func TestDefaultActivationBytesScale(t *testing.T) {
	par := workload.Parallelism{TP: 8, PP: 4, DP: 2, GA: 8}
	act := DefaultActivationBytes(workload.GPT175B, par)
	grad := workload.GPT175B.GradBytesPerRank(par)
	// One iteration's pipeline traffic per cut (GA fwd + GA bwd tensors)
	// must stay a minority of the DP volume.
	if total := act * float64(2*8); total >= grad {
		t.Fatalf("pipeline traffic %.0f >= DP volume %.0f", total, grad)
	}
	if act <= 0 {
		t.Fatal("activation bytes must be positive")
	}
}
