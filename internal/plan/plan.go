// Package plan compiles a training iteration — (workload.Model,
// Parallelism, gradient accumulation) — into a timed micro-batch schedule
// and executes it on the simulated fabric. It is the layer the paper's
// Fig 14 lesson lives in: what traffic a job puts on the network, and how
// much of it compute can hide, is decided entirely by the parallelization
// strategy, and C4P's gains track the exposed-communication share.
//
// The compiler expands the strategy into a 1F1B pipeline schedule: per
// stage, GA forward and GA backward compute slots in the canonical
// one-forward-one-backward order; activation tensors shipped stage s ->
// s+1 after each forward and gradient tensors s -> s-1 after each
// backward (point-to-point accl.SendRecv traffic); and the data-parallel
// gradient synchronization split into buckets that launch as the final
// backward pass produces their gradients (overlap on) or all at once when
// the stage drains (overlap off). The executor (exec.go) runs the
// schedule as a dependency-driven DAG on the discrete-event engine and
// reports the iteration breakdown — compute, pipeline bubble, exposed
// communication — that the plan/* scenario family sweeps.
//
// The package deliberately depends only on sim and workload: the job
// layer adapts it onto ACCL communicators, so plan <- job remains
// acyclic and the executor is unit-testable with arithmetic stubs.
package plan

import (
	"fmt"

	"c4/internal/sim"
	"c4/internal/workload"
)

// Options tunes the compiled schedule.
type Options struct {
	// BucketBytes splits each stage's DP gradient volume into buckets of
	// at most this many bytes, each synchronized by an independent
	// allreduce; 0 or negative means one bucket (the whole gradient).
	BucketBytes float64
	// Overlap launches each bucket the moment the final backward pass has
	// produced its slice of the gradient, hiding allreduce time behind the
	// remaining backward compute (DDP-style comm/compute overlap). Off,
	// every bucket waits for the stage's backward drain to finish — the
	// fully exposed baseline.
	Overlap bool
	// FwdFraction is the forward pass's share of ComputePerMicroBatch;
	// the backward pass takes the rest. 0 means the conventional 1/3.
	FwdFraction float64
	// ActivationBytes is the per-micro-batch activation tensor crossing
	// one pipeline cut (already tensor-parallel sharded); the backward
	// gradient tensor is the same size. 0 derives a default from the
	// model: GradBytesPerRank/(8*GA), keeping pipeline traffic a visible
	// minority next to the DP volume, as in the paper's testbed jobs.
	ActivationBytes float64
}

// TaskKind distinguishes the two compute slots of a micro-batch.
type TaskKind int8

// The compute slot kinds of the 1F1B schedule.
const (
	Fwd TaskKind = iota
	Bwd
)

func (k TaskKind) String() string {
	if k == Fwd {
		return "fwd"
	}
	return "bwd"
}

// Task is one compute slot: the forward or backward pass of micro-batch
// MB on whichever stage's order it appears in.
type Task struct {
	Kind TaskKind
	MB   int
}

// Plan is a compiled training iteration.
type Plan struct {
	Spec workload.JobSpec
	Opts Options

	PP, DP, GA int

	// FwdTime and BwdTime are the nominal per-micro-batch slot durations
	// (before per-node jitter).
	FwdTime, BwdTime sim.Time
	// ActBytes is the activation (and backward gradient) tensor shipped
	// across each pipeline cut per micro-batch.
	ActBytes float64
	// GradBytes is the per-rank DP synchronization volume per stage.
	GradBytes float64
	// Buckets are the gradient bucket sizes (sum == GradBytes).
	Buckets []float64

	// Order[s] is stage s's serial compute order: the canonical 1F1B
	// interleaving (warmup forwards, steady one-forward-one-backward,
	// backward drain).
	Order [][]Task

	// Degenerate marks the schedule that collapses to the pre-plan
	// lump-sum model: a single micro-batch on a single stage with one
	// bucket and no overlap. The job layer executes it on its fused
	// compute-then-allreduce path, which is byte-identical to the
	// historical behavior — every pure-DP GA=1 workload in the repo
	// (tenancy, campaigns, telemetry races) compiles to this.
	Degenerate bool
}

// Compile expands the spec's parallelization strategy into a schedule.
func Compile(spec workload.JobSpec, opts Options) (*Plan, error) {
	par := spec.Par.Normalize()
	if want := par.PP * par.DP; len(spec.Nodes) != want {
		return nil, fmt.Errorf("plan: job %q has %d nodes, needs PP*DP = %d",
			spec.Name, len(spec.Nodes), want)
	}
	if spec.ComputePerMicroBatch < 0 {
		return nil, fmt.Errorf("plan: job %q has negative compute time", spec.Name)
	}
	frac := opts.FwdFraction
	if frac <= 0 {
		frac = 1.0 / 3
	}
	if frac >= 1 {
		return nil, fmt.Errorf("plan: FwdFraction %.2f leaves no backward pass", frac)
	}
	p := &Plan{
		Spec: spec, Opts: opts,
		PP: par.PP, DP: par.DP, GA: par.GA,
		FwdTime:   sim.Time(float64(spec.ComputePerMicroBatch) * frac),
		GradBytes: spec.Model.GradBytesPerRank(par),
	}
	p.BwdTime = spec.ComputePerMicroBatch - p.FwdTime
	p.ActBytes = opts.ActivationBytes
	if p.ActBytes <= 0 {
		p.ActBytes = DefaultActivationBytes(spec.Model, par)
	}
	p.Buckets = splitBuckets(p.GradBytes, opts.BucketBytes)
	for s := 0; s < p.PP; s++ {
		p.Order = append(p.Order, stageOrder(s, p.PP, p.GA))
	}
	p.Degenerate = p.PP == 1 && p.GA == 1 && len(p.Buckets) == 1 && !opts.Overlap
	return p, nil
}

// DefaultActivationBytes is the per-micro-batch, per-cut pipeline tensor
// used when Options.ActivationBytes is zero: the stage's gradient shard
// diluted by 8*GA, so one iteration's total pipeline traffic per cut
// (GA activations forward + GA gradients backward) is a quarter of the
// DP volume — pipeline traffic visible on the fabric, DP still dominant,
// matching the proportions of the paper's Megatron jobs.
func DefaultActivationBytes(m workload.Model, par workload.Parallelism) float64 {
	par = par.Normalize()
	return m.GradBytesPerRank(par) / float64(8*par.GA)
}

// splitBuckets cuts `total` bytes into buckets of at most `bucket` bytes.
func splitBuckets(total, bucket float64) []float64 {
	if bucket <= 0 || bucket >= total || total <= 0 {
		return []float64{total}
	}
	n := int(total / bucket)
	if float64(n)*bucket < total {
		n++
	}
	out := make([]float64, 0, n)
	left := total
	for left > 0 {
		b := bucket
		if left < b {
			b = left
		}
		out = append(out, b)
		left -= b
	}
	return out
}

// stageOrder emits stage s's canonical 1F1B order: w = min(GA, PP-1-s)
// warmup forwards, then alternating fwd(k)/bwd(k-w) through the steady
// state, then the backward drain. Every stage runs 2*GA slots.
func stageOrder(s, pp, ga int) []Task {
	w := pp - 1 - s
	if w > ga {
		w = ga
	}
	order := make([]Task, 0, 2*ga)
	for m := 0; m < w; m++ {
		order = append(order, Task{Fwd, m})
	}
	for k := w; k < ga; k++ {
		order = append(order, Task{Fwd, k}, Task{Bwd, k - w})
	}
	for m := ga - w; m < ga; m++ {
		order = append(order, Task{Bwd, m})
	}
	return order
}

// String summarizes the compiled schedule.
func (p *Plan) String() string {
	return fmt.Sprintf("plan %s %v: %d stages x %d micro-batches, %d bucket(s), overlap=%v, act %.0f MiB, grad %.0f MiB/stage",
		p.Spec.Name, p.Spec.Par, p.PP, p.GA, len(p.Buckets), p.Opts.Overlap,
		p.ActBytes/(1<<20), p.GradBytes/(1<<20))
}
