package accl

import (
	"testing"

	"c4/internal/sim"
)

func TestSendRecvDeliversAtLinkRate(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 8})
	var res Result
	c.SendRecv(0, 1, 256*MiB, 0, func(r Result) { res = r })
	h.eng.Run()
	if res.End == 0 {
		t.Fatal("sendrecv never completed")
	}
	if res.Op != OpSendRecv || res.Algo != "p2p" {
		t.Fatalf("result = %+v, want sendrecv/p2p", res)
	}
	// One cross-leaf message striped over two 200 Gbps planes: the
	// bonded-port 400 Gbps ceiling, minus nothing (no contention).
	if res.AlgGbps < 350 || res.AlgGbps > 410 {
		t.Fatalf("algbw = %.1f Gbps, want ≈400", res.AlgGbps)
	}
}

func TestSendRecvHonorsReadyInstant(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 8})
	ready := 3 * sim.Second
	var res Result
	c.SendRecv(0, 1, 64*MiB, ready, func(r Result) { res = r })
	h.eng.Run()
	if res.Start != ready {
		t.Fatalf("start = %v, want %v (the sender's data-ready instant)", res.Start, ready)
	}
	if res.End <= ready {
		t.Fatalf("end = %v, want after %v", res.End, ready)
	}
}

func TestSendRecvScopesRecordsToEndpoints(t *testing.T) {
	h := newHarness()
	// A 4-member communicator, but only ranks 1 -> 2 exchange data.
	c := h.comm(t, Config{}, []int{0, 2, 8, 10})
	done := false
	c.SendRecv(1, 2, 32*MiB, 0, func(Result) { done = true })
	h.eng.Run()
	if !done {
		t.Fatal("sendrecv never completed")
	}
	seen := map[int]int{}
	for _, ev := range h.rec.Collectives {
		if ev.Op != OpSendRecv {
			continue
		}
		seen[ev.Node]++
	}
	if len(seen) != 2 || seen[2] != 2 || seen[8] != 2 {
		t.Fatalf("records per node = %v, want arrive+complete on nodes 2 and 8 only", seen)
	}
}

func TestSendRecvCrashedEndpointHangs(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 8})
	c.SetCrashed(8, true)
	op := c.SendRecv(0, 1, 32*MiB, 0, func(Result) {
		t.Fatal("sendrecv completed despite a crashed receiver")
	})
	h.eng.Run()
	if op.Done() {
		t.Fatal("op reports done")
	}
	// No completion records either.
	for _, ev := range h.rec.Collectives {
		if ev.Op == OpSendRecv && ev.Phase == PhaseComplete {
			t.Fatalf("completion record emitted: %+v", ev)
		}
	}
}

func TestSendRecvBadRankPanics(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 8})
	for _, ranks := range [][2]int{{0, 0}, {-1, 1}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SendRecv(%d, %d) did not panic", ranks[0], ranks[1])
				}
			}()
			c.SendRecv(ranks[0], ranks[1], 1, 0, nil)
		}()
	}
}
