package accl

import (
	"fmt"

	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
)

// ConnRequest asks a provider to route one QP.
type ConnRequest struct {
	Comm    int
	SrcNode int
	DstNode int
	Rail    int
	QPN     int
	QPIndex int // index of this QP within its connection
	QPCount int // QPs per connection
}

// PathProvider decides where each QP's traffic goes. The baseline is ECMP
// hashing (ECMPProvider); the C4P master implements the same interface with
// global traffic engineering.
type PathProvider interface {
	// Connect allocates a route for a new QP.
	Connect(req ConnRequest) (*Assignment, error)
	// Repair replaces a route whose path failed. old may be nil.
	Repair(req ConnRequest, old *Assignment) (*Assignment, error)
	// Release returns a route's resources.
	Release(as *Assignment)
}

// ECMPProvider models the baseline behaviour without C4P: the bonding
// driver spreads QPs across the two physical ports round-robin, the fabric
// hashes each QP's 5-tuple onto an uplink, and nothing coordinates across
// connections or jobs — so two QPs can land on the same spine uplink or
// converge onto one receive port (§II-D).
type ECMPProvider struct {
	Topo *topo.Topology
	Rand *sim.Rand
}

// NewECMPProvider builds the baseline provider.
func NewECMPProvider(t *topo.Topology, r *sim.Rand) *ECMPProvider {
	if r == nil {
		r = sim.NewRand(2)
	}
	return &ECMPProvider{Topo: t, Rand: r}
}

// Connect implements PathProvider using hash-based routing.
func (p *ECMPProvider) Connect(req ConnRequest) (*Assignment, error) {
	// Bonding driver: alternate tx ports across the connection's QPs.
	srcPlane := req.QPIndex % topo.Planes
	// The OS picks an ephemeral source port; the fabric hashes it.
	sport := uint16(p.Rand.Intn(1 << 16))
	path, err := netsim.Route(p.Topo, req.SrcNode, req.DstNode, req.Rail, srcPlane, sport)
	if err != nil {
		return nil, fmt.Errorf("ecmp connect: %w", err)
	}
	return &Assignment{Path: path, Sport: sport}, nil
}

// Repair implements PathProvider: the routing protocol withdraws the dead
// link and the flow rehashes onto a surviving ECMP member. No global
// coordination happens, so repaired flows can pile onto already-loaded
// links — the Fig 12a behaviour.
func (p *ECMPProvider) Repair(req ConnRequest, old *Assignment) (*Assignment, error) {
	srcPlane := req.QPIndex % topo.Planes
	if old != nil && old.Path != nil {
		srcPlane = old.Path.SrcPort.Plane
	}
	sport := uint16(p.Rand.Intn(1 << 16))
	path, err := netsim.Route(p.Topo, req.SrcNode, req.DstNode, req.Rail, srcPlane, sport)
	if err != nil {
		return nil, fmt.Errorf("ecmp repair: %w", err)
	}
	return &Assignment{Path: path, Sport: sport}, nil
}

// Release implements PathProvider; ECMP tracks no state.
func (p *ECMPProvider) Release(*Assignment) {}
