package accl

import "c4/internal/sim"

// The monitoring schema mirrors the paper's Fig 6: ACCL is instrumented at
// the communicator, operation, and transport layers, emitting time-series
// records that the per-worker C4 agents forward to the C4D master.

// CommInfo describes a communicator at creation (comm-stats).
type CommInfo struct {
	Comm  int
	Nodes []int
}

// OpType labels a collective operation.
type OpType string

// Collective operation types supported by the simulated ACCL.
const (
	OpAllReduce     OpType = "allreduce"
	OpAllGather     OpType = "allgather"
	OpReduceScatter OpType = "reducescatter"
	OpBroadcast     OpType = "broadcast"
	// OpSendRecv is the point-to-point transfer pipeline parallelism
	// exchanges between adjacent stages (activations forward, gradients
	// backward) — NCCL's send/recv pair.
	OpSendRecv OpType = "sendrecv"
)

// CollPhase distinguishes records within one collective (coll-stats /
// rank-stats): a worker arriving at the operation (communication kernel
// launched) and the operation completing on that worker.
type CollPhase int

const (
	// PhaseArrive is recorded when a worker enters the collective.
	PhaseArrive CollPhase = iota
	// PhaseComplete is recorded when the collective finishes on a worker.
	PhaseComplete
)

// CollEvent is one operation-layer record.
type CollEvent struct {
	Time  sim.Time
	Comm  int
	Seq   int // per-communicator operation sequence number
	Node  int
	Op    OpType
	Algo  string
	Bytes float64
	Phase CollPhase
}

// MsgEvent is one transport-layer record: a message (or message share on
// one QP) completing between two workers (conn-stats).
type MsgEvent struct {
	Comm    int
	Seq     int
	SrcNode int
	DstNode int
	Rail    int
	Plane   int // physical source port used
	Sport   uint16
	QPN     int
	Bytes   float64
	Start   sim.Time
	End     sim.Time
}

// Duration reports the message's transfer time.
func (m MsgEvent) Duration() sim.Time { return m.End - m.Start }

// WaitEvent records receiver-driven blocking: Waiter was ready to send but
// had to wait for On to post its receive buffer. Chains of these events are
// what C4D's non-communication-slow detector walks (§III-A).
type WaitEvent struct {
	Time   sim.Time // when the wait ended
	Comm   int
	Seq    int
	Waiter int // node that was blocked
	On     int // node it waited for
	Dur    sim.Time
}

// StatsSink receives monitoring records. Implementations must not retain
// slices passed in events. The zero-cost NullSink discards everything.
type StatsSink interface {
	OnCommCreate(CommInfo)
	OnCommClose(comm int)
	OnCollective(CollEvent)
	OnMessage(MsgEvent)
	OnWait(WaitEvent)
}

// NullSink discards all records.
type NullSink struct{}

// OnCommCreate implements StatsSink.
func (NullSink) OnCommCreate(CommInfo) {}

// OnCommClose implements StatsSink.
func (NullSink) OnCommClose(int) {}

// OnCollective implements StatsSink.
func (NullSink) OnCollective(CollEvent) {}

// OnMessage implements StatsSink.
func (NullSink) OnMessage(MsgEvent) {}

// OnWait implements StatsSink.
func (NullSink) OnWait(WaitEvent) {}

// fanoutSink forwards every record to each member in order.
type fanoutSink []StatsSink

// Fanout returns a StatsSink that forwards every record to each sink in
// order (nil sinks are dropped). It is the single instrumentation point
// that lets one communicator feed several monitoring pipelines at once —
// the batch C4D agent fleet and the streaming telemetry pipeline racing it.
func Fanout(sinks ...StatsSink) StatsSink {
	kept := make(fanoutSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	if len(kept) == 1 {
		return kept[0]
	}
	return kept
}

// OnCommCreate implements StatsSink.
func (f fanoutSink) OnCommCreate(ci CommInfo) {
	for _, s := range f {
		s.OnCommCreate(ci)
	}
}

// OnCommClose implements StatsSink.
func (f fanoutSink) OnCommClose(comm int) {
	for _, s := range f {
		s.OnCommClose(comm)
	}
}

// OnCollective implements StatsSink.
func (f fanoutSink) OnCollective(ev CollEvent) {
	for _, s := range f {
		s.OnCollective(ev)
	}
}

// OnMessage implements StatsSink.
func (f fanoutSink) OnMessage(ev MsgEvent) {
	for _, s := range f {
		s.OnMessage(ev)
	}
}

// OnWait implements StatsSink.
func (f fanoutSink) OnWait(ev WaitEvent) {
	for _, s := range f {
		s.OnWait(ev)
	}
}

// Recorder is an in-memory StatsSink used by tests and by the C4 agent.
type Recorder struct {
	Comms       []CommInfo
	Closed      []int
	Collectives []CollEvent
	Messages    []MsgEvent
	Waits       []WaitEvent
}

// OnCommCreate implements StatsSink.
func (r *Recorder) OnCommCreate(ci CommInfo) { r.Comms = append(r.Comms, ci) }

// OnCommClose implements StatsSink.
func (r *Recorder) OnCommClose(comm int) { r.Closed = append(r.Closed, comm) }

// OnCollective implements StatsSink.
func (r *Recorder) OnCollective(ev CollEvent) { r.Collectives = append(r.Collectives, ev) }

// OnMessage implements StatsSink.
func (r *Recorder) OnMessage(ev MsgEvent) { r.Messages = append(r.Messages, ev) }

// OnWait implements StatsSink.
func (r *Recorder) OnWait(ev WaitEvent) { r.Waits = append(r.Waits, ev) }

// Reset clears all recorded events.
func (r *Recorder) Reset() {
	r.Comms, r.Collectives, r.Messages, r.Waits, r.Closed = nil, nil, nil, nil, nil
}

func (c *Communicator) emitColl(ev CollEvent) {
	if c.cfg.Sink != nil {
		c.cfg.Sink.OnCollective(ev)
	}
}

func (c *Communicator) emitMsg(ev MsgEvent) {
	if c.cfg.Sink != nil {
		c.cfg.Sink.OnMessage(ev)
	}
}

func (c *Communicator) emitWait(ev WaitEvent) {
	if c.cfg.Sink != nil {
		c.cfg.Sink.OnWait(ev)
	}
}
