package accl

import (
	"fmt"

	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
	"c4/internal/trace"
)

// transfer moves `bytes` from src node to dst node, striped across the
// communicator's rails. Within each rail the bytes are split evenly
// between the NIC's two planes (the bonding driver transmits half per
// physical port — C4P's "dual-port balance" keeps this true end to end),
// and within a plane across that plane's QPs by weight (uniform by
// default; throughput-proportional under C4P dynamic load balance).
// onDone fires with the completion time of the last share.
//
// If no QP on a rail can obtain a healthy path the rail's share stalls and
// retries; in the meantime the operation hangs, which is exactly the
// communication-hang syndrome C4D observes.
func (c *Communicator) transfer(o *Op, src, dst int, bytes float64, onDone func(end sim.Time)) {
	// The edge span covers the whole member send/recv (all rails, all QP
	// shares) as a child of the collective op span. A transfer that never
	// finds transport leaves it open — the hang is visible in the trace.
	var sp *trace.Span
	if tr := c.tracer(); tr.Enabled() {
		sp = tr.Start(o.span, "xfer", fmt.Sprintf("n%d->n%d", src, dst))
	}
	rails := c.cfg.Rails
	perRail := bytes / float64(len(rails))
	pending := 0
	var lastEnd sim.Time
	finish := func(end sim.Time) {
		if end > lastEnd {
			lastEnd = end
		}
		pending--
		if pending == 0 {
			sp.FinishAt(lastEnd)
			onDone(lastEnd)
		}
	}
	for _, rail := range rails {
		conn, err := c.getConn(src, dst, rail)
		if err != nil {
			continue
		}
		pending++
		c.sendOnConn(o, conn, perRail, sp, finish)
	}
	if pending == 0 {
		// No transport anywhere: the operation hangs, as it would in RoCE.
		return
	}
}

// sendOnConn ships railBytes over one connection, retrying while the
// connection has no healthy path at all.
func (c *Communicator) sendOnConn(o *Op, conn *Conn, railBytes float64, sp *trace.Span, finish func(sim.Time)) {
	// Flows started here (including after a retry) nest under the edge
	// span, which the retry closure carries across the delay.
	defer c.tracer().Scope(sp)()
	shares := c.planShares(conn, railBytes)
	if len(shares) == 0 {
		c.cfg.Engine.After(sim.Second, func() {
			c.sendOnConn(o, conn, railBytes, sp, finish)
		})
		return
	}
	pending := len(shares)
	var lastEnd sim.Time
	start := c.cfg.Engine.Now()
	for _, sh := range shares {
		sh := sh
		flow := c.cfg.Net.StartFlow(sh.qp.assign.Path, sh.bits, string(o.Type), func(f *netsim.Flow) {
			end := c.cfg.Engine.Now()
			c.emitMsg(MsgEvent{
				Comm: c.ID, Seq: o.Seq,
				SrcNode: conn.Src, DstNode: conn.Dst,
				Rail: conn.Rail, Plane: sh.plane,
				Sport: sh.qp.assign.Sport, QPN: sh.qp.QPN,
				Bytes: sh.bits / 8, Start: start, End: end,
			})
			c.recordThroughput(conn, sh.qp, sh.bits, end-start)
			if end > lastEnd {
				lastEnd = end
			}
			pending--
			if pending == 0 {
				finish(lastEnd)
			}
		})
		flow.OnPathDown = func(fl *netsim.Flow) {
			c.repairFlow(conn, sh.qp, fl)
		}
	}
}

type share struct {
	qp    *QP
	bits  float64
	plane int
}

// planShares splits a rail's bytes: half per plane that has at least one
// healthy QP (all to one plane only if the other is completely dark), then
// within each plane proportionally to QP weights.
func (c *Communicator) planShares(conn *Conn, railBytes float64) []share {
	qps := c.healthyQPs(conn)
	if len(qps) == 0 {
		return nil
	}
	byPlane := make([][]*QP, topo.Planes)
	for _, qp := range qps {
		p := qp.assign.Path.SrcPort.Plane
		byPlane[p] = append(byPlane[p], qp)
	}
	livePlanes := 0
	for _, qs := range byPlane {
		if len(qs) > 0 {
			livePlanes++
		}
	}
	var out []share
	for p, qs := range byPlane {
		if len(qs) == 0 {
			continue
		}
		planeBits := railBytes * 8 / float64(livePlanes)
		var wsum float64
		for _, qp := range qs {
			wsum += qp.weight
		}
		for _, qp := range qs {
			w := 1.0 / float64(len(qs))
			if wsum > 0 {
				w = qp.weight / wsum
			}
			out = append(out, share{qp: qp, bits: planeBits * w, plane: p})
		}
	}
	return out
}

// repairFlow asks the provider for a replacement path after a failure. On
// success the in-flight data is rerouted; on failure the flow stays
// stalled and resumes if the link recovers.
func (c *Communicator) repairFlow(conn *Conn, qp *QP, fl *netsim.Flow) {
	var idx int
	for i, q := range conn.QPs {
		if q == qp {
			idx = i
			break
		}
	}
	req := ConnRequest{
		Comm: c.ID, SrcNode: conn.Src, DstNode: conn.Dst, Rail: conn.Rail,
		QPN: qp.QPN, QPIndex: idx, QPCount: len(conn.QPs),
	}
	as, err := c.cfg.Provider.Repair(req, qp.assign)
	if err != nil {
		qp.broken = true
		return
	}
	qp.assign = as
	qp.broken = false
	c.cfg.Net.Reroute(fl, as.Path)
}
