package accl

import (
	"fmt"
	"testing"

	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
)

// TestCollectivesEquivalentAcrossKernels runs a multi-op collective
// workload — a cross-group ring allreduce, an allgather, and a broadcast
// tree racing on one fabric — under the per-flow, aggregated, and
// parallel-settle netsim kernels. The collective layer sees the network
// only through flow completion instants, so every result (start, end,
// busbw) and the engine's fired-event count must be bit-identical across
// kernels.
func TestCollectivesEquivalentAcrossKernels(t *testing.T) {
	type outcome struct {
		results string
		fired   uint64
	}
	run := func(cfg netsim.Config) outcome {
		eng := sim.NewEngine()
		tp := topo.MustNew(topo.PaperTestbed())
		net := netsim.New(eng, tp, cfg)
		rec := &Recorder{}
		mk := func(nodes []int) *Communicator {
			c, err := NewCommunicator(Config{
				Engine: eng, Net: net, Provider: newPlannedProvider(tp), Sink: rec,
			}, nodes)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		var results string
		done := func(op string) func(Result) {
			return func(r Result) {
				results += fmt.Sprintf("%s: start=%d end=%d bus=%v\n", op, r.Start, r.End, r.BusGbps)
			}
		}
		mk([]int{0, 2, 4, 6}).AllReduce(256*MiB, nil, done("allreduce"))
		mk([]int{1, 3, 5, 7}).AllGather(64*MiB, nil, done("allgather"))
		mk([]int{8, 10, 12, 14}).Broadcast(128*MiB, nil, done("broadcast"))
		eng.Run()
		return outcome{results: results, fired: eng.Fired()}
	}

	base := netsim.DefaultConfig()
	agg := base
	agg.Aggregate = true
	par := agg
	par.SettleWorkers = 4

	ref := run(base)
	if ref.results == "" {
		t.Fatal("no collective completed")
	}
	for _, kc := range []struct {
		name string
		cfg  netsim.Config
	}{{"aggregated", agg}, {"parallel", par}} {
		got := run(kc.cfg)
		if got.results != ref.results {
			t.Errorf("%s kernel diverged:\n%s\nper-flow:\n%s", kc.name, got.results, ref.results)
		}
		if got.fired != ref.fired {
			t.Errorf("%s kernel fired %d events, per-flow fired %d", kc.name, got.fired, ref.fired)
		}
	}
}
