package accl

import (
	"math"
	"testing"

	"c4/internal/sim"
	"c4/internal/topo"
)

func TestStepwiseEmitsPerStepMessages(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{Stepwise: true}, []int{0, 2, 4, 6})
	c.AllReduce(64*MiB, nil, nil)
	h.eng.Run()
	// 4 edges × 2(M-1)=6 steps × 2 QPs = 48 transport records.
	if got := len(h.rec.Messages); got != 48 {
		t.Fatalf("messages = %d, want 48", got)
	}
	// Sequence numbers all belong to op 1; per (edge,QP) the records are
	// time-ordered.
	type key struct{ src, dst, qpn int }
	last := map[key]sim.Time{}
	for _, m := range h.rec.Messages {
		if m.Seq != 1 {
			t.Fatalf("unexpected seq %d", m.Seq)
		}
		k := key{m.SrcNode, m.DstNode, m.QPN}
		if m.End < last[k] {
			t.Fatalf("per-QP records out of order for %+v", k)
		}
		last[k] = m.End
	}
}

func TestStepwiseCustomChunks(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{Stepwise: true, StepChunks: 3}, []int{0, 2, 4, 6})
	c.AllReduce(64*MiB, nil, nil)
	h.eng.Run()
	// 4 edges × 3 steps × 2 QPs.
	if got := len(h.rec.Messages); got != 24 {
		t.Fatalf("messages = %d, want 24", got)
	}
}

func TestStepwiseConservesBytes(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{Stepwise: true}, []int{0, 2, 4, 6})
	size := float64(64 * MiB)
	var res Result
	c.AllReduce(size, nil, func(r Result) { res = r })
	h.eng.Run()
	if res.End == 0 {
		t.Fatal("stepwise allreduce never completed")
	}
	var total float64
	for _, m := range h.rec.Messages {
		total += m.Bytes
	}
	n := c.TotalGPUs()
	want := size * 2 * float64(n-1) / float64(n) * 4
	if math.Abs(total-want)/want > 1e-6 {
		t.Fatalf("stepwise carried %.0f bytes, want %.0f", total, want)
	}
}

func TestStepwiseCrashedNodeStallsRing(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{Stepwise: true}, []int{0, 2, 4, 6})
	c.SetCrashed(2, true)
	done := false
	c.AllReduce(64*MiB, nil, func(Result) { done = true })
	h.eng.RunUntil(time30s())
	if done {
		t.Fatal("stepwise op completed with crashed member")
	}
	// Edges not touching node 2 may progress a bounded number of steps
	// (pipeline depth), then the dependency chain stalls everyone.
	for _, m := range h.rec.Messages {
		if m.SrcNode == 2 || m.DstNode == 2 {
			t.Fatalf("crashed node moved data: %+v", m)
		}
	}
}

func time30s() sim.Time { return 30 * sim.Second }

func TestStepwiseStragglerPropagatesThroughChain(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{Stepwise: true}, []int{0, 2, 4, 6})
	delay := 300 * sim.Millisecond
	arr := []sim.Time{0, delay, 0, 0}
	var res Result
	c.AllReduce(64*MiB, arr, func(r Result) { res = r })
	h.eng.Run()
	if res.End < delay {
		t.Fatalf("op finished before straggler arrived: %v", res.End)
	}
	// The wait chain must blame node 2 (communicator index 1).
	blamed := false
	for _, w := range h.rec.Waits {
		if w.On == 2 {
			blamed = true
		}
	}
	if !blamed {
		t.Fatalf("no wait event blames the straggler: %+v", h.rec.Waits)
	}
}

func TestStepwiseReduceScatterAndAllGather(t *testing.T) {
	for _, op := range []string{"rs", "ag"} {
		h := newHarness()
		c := h.comm(t, Config{Stepwise: true}, []int{0, 2, 4, 6})
		var res Result
		switch op {
		case "rs":
			c.ReduceScatter(64*MiB, nil, func(r Result) { res = r })
		case "ag":
			c.AllGather(64*MiB, nil, func(r Result) { res = r })
		}
		h.eng.Run()
		if res.End == 0 {
			t.Fatalf("%s never completed", op)
		}
		if res.BusGbps <= 0 || res.BusGbps > 370 {
			t.Fatalf("%s busbw = %.1f", op, res.BusGbps)
		}
	}
}

func TestCommCloseNotifiesSink(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2})
	c.AllReduce(MiB, nil, nil)
	h.eng.Run()
	c.Close()
	if len(h.rec.Closed) != 1 || h.rec.Closed[0] != c.ID {
		t.Fatalf("close notifications = %v", h.rec.Closed)
	}
}

func TestRefreshPathsRespectsPredicate(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2})
	c.AllReduce(MiB, nil, nil)
	h.eng.Run()
	conn, err := c.getConn(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[int]string)
	for _, qp := range conn.QPs {
		before[qp.QPN] = qp.Path().String()
	}
	// Predicate matches nothing: no path may change.
	c.RefreshPaths(func(*topo.Path) bool { return false })
	for _, qp := range conn.QPs {
		if qp.Path().String() != before[qp.QPN] {
			t.Fatal("RefreshPaths changed an unmatched QP")
		}
	}
}
