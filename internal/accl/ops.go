package accl

import (
	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/trace"
)

// Result summarizes a completed collective.
type Result struct {
	Op    OpType
	Algo  string
	Seq   int
	Bytes float64 // payload bytes per rank (nccl-tests "size")
	Start sim.Time
	End   sim.Time
	// BusGbps is the nccl-tests bus bandwidth: the hardware-utilization
	// metric the paper plots in Figs 9, 10 and 12.
	BusGbps float64
	// AlgGbps is the algorithmic bandwidth (size / time).
	AlgGbps float64
}

// Op is an in-flight collective.
type Op struct {
	comm    *Communicator
	Type    OpType
	Algo    string
	Seq     int
	Bytes   float64
	onDone  func(Result)
	started sim.Time // earliest arrival

	// members are the nodes participating in the operation; nil means the
	// whole communicator (every collective). Point-to-point operations
	// scope it to their two endpoints so completion records are not
	// attributed to bystander ranks.
	members []int

	pendingEdges int
	lastEnd      sim.Time
	completed    bool

	span *trace.Span // op-lifetime span; nil when tracing is off
}

// tracer returns the simulation's tracer, which rides the network the
// communicator is bound to: one wiring point (Network.Trace) covers both
// layers, and flow spans nest under op spans via the tracer's scope.
func (c *Communicator) tracer() *trace.Tracer { return c.cfg.Net.Trace }

// Done reports whether the collective has finished.
func (o *Op) Done() bool { return o.completed }

// busFactor returns busbw = algbw * factor for the op type, following the
// nccl-tests conventions.
func busFactor(op OpType, n int) float64 {
	if n <= 1 {
		return 1
	}
	switch op {
	case OpAllReduce:
		return 2 * float64(n-1) / float64(n)
	case OpAllGather, OpReduceScatter:
		return float64(n-1) / float64(n)
	default: // broadcast, sendrecv
		return 1
	}
}

// edgeFactor returns the bytes each ring edge carries per payload byte.
func edgeFactor(op OpType, n int) float64 {
	// For ring algorithms the per-edge traffic equals busFactor * size:
	// allreduce moves 2S(N-1)/N per edge, allgather/reducescatter S(N-1)/N.
	return busFactor(op, n)
}

// AllReduce starts a ring allreduce of `bytes` per rank. arrivals[i] is the
// absolute time the i-th member node enters the operation (BSP workers
// arrive when their compute finishes); nil means every node is ready now.
// onDone may be nil. Crashed nodes never arrive, so the op never completes
// — the hang syndrome C4D detects.
func (c *Communicator) AllReduce(bytes float64, arrivals []sim.Time, onDone func(Result)) *Op {
	return c.startRing(OpAllReduce, bytes, arrivals, onDone)
}

// AllGather starts a ring allgather of `bytes` output per rank.
func (c *Communicator) AllGather(bytes float64, arrivals []sim.Time, onDone func(Result)) *Op {
	return c.startRing(OpAllGather, bytes, arrivals, onDone)
}

// ReduceScatter starts a ring reduce-scatter of `bytes` input per rank.
func (c *Communicator) ReduceScatter(bytes float64, arrivals []sim.Time, onDone func(Result)) *Op {
	return c.startRing(OpReduceScatter, bytes, arrivals, onDone)
}

func (c *Communicator) startRing(op OpType, bytes float64, arrivals []sim.Time, onDone func(Result)) *Op {
	c.seq++
	o := &Op{comm: c, Type: op, Algo: "ring", Seq: c.seq, Bytes: bytes, onDone: onDone}
	arr := c.resolveArrivals(arrivals)
	c.announceArrivals(o, arr)
	o.startSpan()
	if c.cfg.Stepwise {
		c.runRingStepwise(o, arr)
	} else {
		c.runRingFluid(o, arr)
	}
	return o
}

// resolveArrivals normalizes the arrival vector; crashed nodes get MaxTime.
func (c *Communicator) resolveArrivals(arrivals []sim.Time) []sim.Time {
	now := c.cfg.Engine.Now()
	arr := make([]sim.Time, len(c.nodes))
	for i := range c.nodes {
		at := now
		if i < len(arrivals) {
			at = arrivals[i]
			if at < now {
				at = now
			}
		}
		if c.crashed[c.nodes[i]] {
			at = sim.MaxTime
		}
		arr[i] = at
	}
	return arr
}

// announceArrivals emits the operation-layer kernel-start records.
func (c *Communicator) announceArrivals(o *Op, arr []sim.Time) {
	o.started = sim.MaxTime
	for i, at := range arr {
		if at == sim.MaxTime {
			continue // crashed: no kernel launch ever observed
		}
		if at < o.started {
			o.started = at
		}
		i := i
		at := at
		c.cfg.Engine.Schedule(at, func() {
			c.emitColl(CollEvent{
				Time: at, Comm: c.ID, Seq: o.Seq, Node: c.nodes[i],
				Op: o.Type, Algo: o.Algo, Bytes: o.Bytes, Phase: PhaseArrive,
			})
		})
	}
}

// startSpan opens the op's trace span at its earliest arrival, parented
// on the tracer's current scope (the iteration or dpsync context that
// launched the collective). Must run after announceArrivals resolved
// o.started; an op whose every member crashed gets "now" so the span is
// still well-formed.
func (o *Op) startSpan() {
	tr := o.comm.tracer()
	if !tr.Enabled() {
		return
	}
	at := o.started
	if at == sim.MaxTime {
		at = o.comm.cfg.Engine.Now()
	}
	o.span = tr.StartAt(nil, "op", string(o.Type), at)
	o.span.Annotate("algo", o.Algo)
}

// finishEdge accounts one completed ring edge (or tree branch).
func (o *Op) finishEdge(end sim.Time) {
	if end > o.lastEnd {
		o.lastEnd = end
	}
	o.pendingEdges--
	if o.pendingEdges == 0 {
		o.complete()
	}
}

func (o *Op) complete() {
	if o.completed {
		return
	}
	o.completed = true
	c := o.comm
	end := o.lastEnd
	if end < c.cfg.Engine.Now() {
		end = c.cfg.Engine.Now()
	}
	o.span.FinishAt(end)
	nodes := o.members
	if nodes == nil {
		nodes = c.nodes
	}
	for _, node := range nodes {
		if c.crashed[node] {
			continue
		}
		c.emitColl(CollEvent{
			Time: end, Comm: c.ID, Seq: o.Seq, Node: node,
			Op: o.Type, Algo: o.Algo, Bytes: o.Bytes, Phase: PhaseComplete,
		})
	}
	if o.onDone != nil {
		dur := end - o.started
		res := Result{
			Op: o.Type, Algo: o.Algo, Seq: o.Seq, Bytes: o.Bytes,
			Start: o.started, End: end,
		}
		if dur > 0 {
			n := c.TotalGPUs()
			bits := o.Bytes * 8
			res.AlgGbps = bits / dur.Seconds() / 1e9
			res.BusGbps = res.AlgGbps * busFactor(o.Type, n)
		}
		o.onDone(res)
	}
}

// runRingFluid models a perfectly pipelined ring: every inter-node edge
// carries its full traffic as one continuous transfer starting when both
// endpoints are ready; the op completes when the slowest edge drains. This
// is the steady-state fluid limit of the chunked ring and matches how
// traffic-engineering papers reason about collective throughput.
func (c *Communicator) runRingFluid(o *Op, arr []sim.Time) {
	m := len(c.nodes)
	if m == 1 {
		c.runSingleNode(o, arr[0])
		return
	}
	n := c.TotalGPUs()
	edgeBytes := o.Bytes * edgeFactor(o.Type, n)
	o.pendingEdges = m
	for i := 0; i < m; i++ {
		src, dst := i, (i+1)%m
		start := arr[src]
		if arr[dst] > start {
			start = arr[dst]
		}
		if start == sim.MaxTime {
			continue // a crashed endpoint: this edge never starts
		}
		c.scheduleWait(o, arr, src, dst, start)
		c.cfg.Engine.Schedule(start, func() {
			c.transfer(o, c.nodes[src], c.nodes[dst], edgeBytes, func(end sim.Time) {
				o.finishEdge(end)
			})
		})
	}
}

// scheduleWait emits a receiver-driven wait record when a sender was ready
// before its receiver.
func (c *Communicator) scheduleWait(o *Op, arr []sim.Time, src, dst int, start sim.Time) {
	if arr[dst] > arr[src] && arr[dst] != sim.MaxTime {
		dur := arr[dst] - arr[src]
		c.cfg.Engine.Schedule(start, func() {
			c.emitWait(WaitEvent{
				Time: start, Comm: c.ID, Seq: o.Seq,
				Waiter: c.nodes[src], On: c.nodes[dst], Dur: dur,
			})
		})
	}
}

// runSingleNode models an intra-node collective: a single transfer across
// the node's NVLink fabric.
func (c *Communicator) runSingleNode(o *Op, arrive sim.Time) {
	if arrive == sim.MaxTime {
		return
	}
	g := c.cfg.GPUsPerNode
	bits := o.Bytes * 8 * busFactor(o.Type, g)
	node := c.nodes[0]
	o.pendingEdges = 1
	c.cfg.Engine.Schedule(arrive, func() {
		path := c.cfg.Net.Topo.IntraNodePath(node)
		restore := c.tracer().Scope(o.span)
		c.cfg.Net.StartFlow(path, bits, string(o.Type), func(f *netsim.Flow) {
			o.finishEdge(c.cfg.Engine.Now())
		})
		restore()
	})
}

// runRingStepwise executes the ring chunk by chunk with receiver-driven
// hand-offs: step s of edge i starts only when (a) edge i finished step
// s-1, (b) the data from upstream edge i-1 arrived, and (c) the receiver
// finished its own step s-1 and re-posted buffers. The resulting per-step
// message stream is what C4D's transport-layer monitoring analyzes.
func (c *Communicator) runRingStepwise(o *Op, arr []sim.Time) {
	m := len(c.nodes)
	if m == 1 {
		c.runSingleNode(o, arr[0])
		return
	}
	n := c.TotalGPUs()
	steps := c.cfg.StepChunks
	if steps <= 0 {
		steps = 2 * (m - 1)
	}
	edgeBytes := o.Bytes * edgeFactor(o.Type, n)
	chunk := edgeBytes / float64(steps)

	// ends[i] holds the completion time of each finished step of edge i;
	// inFlight guards against double-launching a step.
	ends := make([][]sim.Time, m)
	inFlight := make([]bool, m)
	o.pendingEdges = m

	// readyAt reports when the dependencies of (edge i, next step) are all
	// met, or false if some dependency has not completed yet. Step s of
	// edge i needs: both endpoints arrived; edge i's own step s-1 done
	// (serialized sends); upstream edge i-1's step s-1 done (the data to
	// forward); receiver edge i+1's step s-1 done (buffers re-posted).
	readyAt := func(i int) (sim.Time, bool) {
		s := len(ends[i])
		src, dst := i, (i+1)%m
		if arr[src] == sim.MaxTime || arr[dst] == sim.MaxTime {
			return 0, false
		}
		at := arr[src]
		if arr[dst] > at {
			at = arr[dst]
		}
		if s > 0 {
			for _, j := range []int{i, (i - 1 + m) % m, (i + 1) % m} {
				if len(ends[j]) < s {
					return 0, false
				}
				if t := ends[j][s-1]; t > at {
					at = t
				}
			}
		}
		return at, true
	}

	var try func(i int)
	try = func(i int) {
		if inFlight[i] || len(ends[i]) >= steps {
			return
		}
		at, ok := readyAt(i)
		if !ok {
			return
		}
		s := len(ends[i])
		src, dst := i, (i+1)%m
		if s == 0 {
			c.scheduleWait(o, arr, src, dst, at)
		}
		inFlight[i] = true
		c.cfg.Engine.Schedule(at, func() {
			c.transfer(o, c.nodes[src], c.nodes[dst], chunk, func(end sim.Time) {
				inFlight[i] = false
				ends[i] = append(ends[i], end)
				if len(ends[i]) == steps {
					o.finishEdge(end)
				} else {
					try(i)
				}
				try((i + 1) % m)
				try((i - 1 + m) % m)
			})
		})
	}
	for i := 0; i < m; i++ {
		try(i)
	}
}
