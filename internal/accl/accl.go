// Package accl simulates the Alibaba Collective Communication Library as
// extended by C4 (HPCA'25 §III): collective operations over RDMA QPs whose
// paths are controlled by a pluggable provider (baseline ECMP hashing or
// the C4P traffic-engineering master), with the runtime monitoring hooks —
// communicator, operation and transport statistics — that C4D's detectors
// consume.
//
// Granularity: one simulated worker per node. The paper's delay matrix and
// isolation decisions operate on nodes/NICs, and intra-node GPU hops ride
// dedicated NVLink pairs, so collapsing the 8 local GPUs preserves every
// syndrome C4D must observe while keeping flow counts tractable. GPU
// counts still matter for bus-bandwidth arithmetic and enter through
// Config.GPUsPerNode.
package accl

import (
	"fmt"
	"sort"

	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
)

// Config wires a communicator to the simulated fabric.
type Config struct {
	Engine   *sim.Engine
	Net      *netsim.Network
	Provider PathProvider
	Sink     StatsSink // nil disables monitoring
	Rand     *sim.Rand

	// Rails lists the NIC rails this communicator stripes traffic across.
	// Empty means rail 0 only.
	Rails []int
	// QPsPerConn is the number of QPs opened per (edge, rail); the paper's
	// deployment uses one per physical port. Default 2.
	QPsPerConn int
	// GPUsPerNode feeds the bus-bandwidth formula. Default from topology.
	GPUsPerNode int
	// AdaptiveWeights enables ACCL's message-completion-time feedback: the
	// share of each transfer sent on a QP follows the measured throughput
	// of its path (C4P dynamic load balance, §III-B).
	AdaptiveWeights bool
	// Stepwise runs ring collectives chunk-by-chunk with receiver-driven
	// hand-offs instead of the fluid single-shot approximation. Slower but
	// produces the per-step message series C4D's detectors analyze.
	Stepwise bool
	// StepChunks is the number of pipeline steps per direction in
	// stepwise mode; 0 means the algorithmic 2(M-1) ring steps.
	StepChunks int
}

// Communicator executes collectives among a fixed set of nodes.
type Communicator struct {
	ID    int
	cfg   Config
	nodes []int // member nodes, ring order
	conns map[connKey]*Conn
	seq   int
	rand  *sim.Rand

	// crashed nodes never arrive at collectives.
	crashed map[int]bool
}

type connKey struct {
	src, dst, rail int
}

// NewCommunicator creates a communicator over the given nodes (ring order
// as listed). Nodes must be distinct.
func NewCommunicator(cfg Config, nodes []int) (*Communicator, error) {
	if cfg.Engine == nil || cfg.Net == nil || cfg.Provider == nil {
		return nil, fmt.Errorf("accl: Engine, Net and Provider are required")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("accl: communicator needs at least one node")
	}
	seen := map[int]bool{}
	for _, n := range nodes {
		if seen[n] {
			return nil, fmt.Errorf("accl: duplicate node %d", n)
		}
		seen[n] = true
	}
	if len(cfg.Rails) == 0 {
		cfg.Rails = []int{0}
	}
	if cfg.QPsPerConn <= 0 {
		cfg.QPsPerConn = 2
	}
	if cfg.GPUsPerNode <= 0 {
		cfg.GPUsPerNode = cfg.Net.Topo.Spec.GPUsPerNode
	}
	if cfg.Rand == nil {
		cfg.Rand = sim.NewRand(1)
	}
	c := &Communicator{
		ID:      cfg.Engine.NextID("comm"),
		cfg:     cfg,
		nodes:   append([]int(nil), nodes...),
		conns:   make(map[connKey]*Conn),
		rand:    cfg.Rand.Fork(),
		crashed: make(map[int]bool),
	}
	if cfg.Sink != nil {
		cfg.Sink.OnCommCreate(CommInfo{Comm: c.ID, Nodes: append([]int(nil), nodes...)})
	}
	return c, nil
}

// Nodes returns the member nodes in ring order.
func (c *Communicator) Nodes() []int { return append([]int(nil), c.nodes...) }

// Size reports the number of member nodes.
func (c *Communicator) Size() int { return len(c.nodes) }

// TotalGPUs reports the GPU count behind the communicator.
func (c *Communicator) TotalGPUs() int { return len(c.nodes) * c.cfg.GPUsPerNode }

// SetCrashed marks a node as crashed: it will never arrive at subsequent
// collectives, which is the non-communication-hang syndrome.
func (c *Communicator) SetCrashed(node int, crashed bool) { c.crashed[node] = crashed }

// Close releases all transport resources and tells the monitoring sink the
// communicator is gone, so C4D stops tracking its (possibly stalled) state.
func (c *Communicator) Close() {
	for _, conn := range c.sortedConns() {
		for _, qp := range conn.QPs {
			if qp.assign != nil {
				c.cfg.Provider.Release(qp.assign)
			}
		}
	}
	c.conns = map[connKey]*Conn{}
	if c.cfg.Sink != nil {
		c.cfg.Sink.OnCommClose(c.ID)
	}
}

func (c *Communicator) sortedConns() []*Conn {
	keys := make([]connKey, 0, len(c.conns))
	for k := range c.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.rail < b.rail
	})
	out := make([]*Conn, len(keys))
	for i, k := range keys {
		out[i] = c.conns[k]
	}
	return out
}

// Conn is the transport between two nodes on one rail: a bundle of QPs
// whose paths the provider controls.
type Conn struct {
	Src, Dst, Rail int
	QPs            []*QP
}

// QP is one simulated RDMA queue pair.
type QP struct {
	QPN    int
	assign *Assignment
	weight float64
	ewma   float64 // measured bits/s of recent messages
	broken bool    // no healthy path obtainable
}

// Assignment is a provider's routing decision for a QP.
type Assignment struct {
	Path  *topo.Path
	Sport uint16
	// Token is provider-private state used on Release/Repair.
	Token any
}

// Weight reports the QP's current share of its connection's traffic.
func (q *QP) Weight() float64 { return q.weight }

// Path reports the QP's current route (nil when broken).
func (q *QP) Path() *topo.Path {
	if q.assign == nil {
		return nil
	}
	return q.assign.Path
}

// getConn returns (creating if needed) the transport src -> dst on rail.
func (c *Communicator) getConn(src, dst, rail int) (*Conn, error) {
	key := connKey{src, dst, rail}
	if conn, ok := c.conns[key]; ok {
		return conn, nil
	}
	conn := &Conn{Src: src, Dst: dst, Rail: rail}
	for i := 0; i < c.cfg.QPsPerConn; i++ {
		qp := &QP{QPN: 1000 + c.cfg.Engine.NextID("qpn"), weight: 1 / float64(c.cfg.QPsPerConn)}
		req := ConnRequest{
			Comm: c.ID, SrcNode: src, DstNode: dst, Rail: rail,
			QPN: qp.QPN, QPIndex: i, QPCount: c.cfg.QPsPerConn,
		}
		as, err := c.cfg.Provider.Connect(req)
		if err != nil {
			qp.broken = true
		} else {
			qp.assign = as
		}
		conn.QPs = append(conn.QPs, qp)
	}
	c.conns[key] = conn
	return conn, nil
}

// RefreshPaths pushes every QP whose current path matches pred back
// through the provider's Repair. It models an ECMP group-membership
// change: when a link is withdrawn, the switch remaps hash buckets and
// every flow on that leaf may land somewhere new — under C4P static mode
// the repair is exactly that uncoordinated rehash, under dynamic mode the
// master re-places the QP on the least-loaded healthy path. Subsequent
// messages use the new routes; in-flight transfers finish on their old
// (still healthy) paths, as on real hardware where established connections
// drain.
func (c *Communicator) RefreshPaths(pred func(*topo.Path) bool) {
	for _, conn := range c.sortedConns() {
		for i, qp := range conn.QPs {
			if qp.assign == nil || !pred(qp.assign.Path) {
				continue
			}
			req := ConnRequest{
				Comm: c.ID, SrcNode: conn.Src, DstNode: conn.Dst, Rail: conn.Rail,
				QPN: qp.QPN, QPIndex: i, QPCount: len(conn.QPs),
			}
			as, err := c.cfg.Provider.Repair(req, qp.assign)
			if err != nil {
				qp.broken = true
				continue
			}
			qp.assign = as
			qp.broken = false
		}
	}
}

// healthyQPs returns QPs with a live path, attempting repair of broken ones.
func (c *Communicator) healthyQPs(conn *Conn) []*QP {
	var out []*QP
	for i, qp := range conn.QPs {
		if qp.assign == nil || !qp.assign.Path.Up() {
			req := ConnRequest{
				Comm: c.ID, SrcNode: conn.Src, DstNode: conn.Dst, Rail: conn.Rail,
				QPN: qp.QPN, QPIndex: i, QPCount: len(conn.QPs),
			}
			as, err := c.cfg.Provider.Repair(req, qp.assign)
			if err != nil {
				qp.broken = true
				continue
			}
			qp.assign = as
			qp.broken = false
		}
		out = append(out, qp)
	}
	return out
}

// recordThroughput feeds ACCL's adaptive path selection: each message's
// measured bandwidth updates the QP's EWMA, and the QPs sharing the same
// physical plane re-weight toward the faster paths. Weights never shift
// load *between* planes — the dual-port 50/50 balance is C4P's invariant —
// only across the spines within a plane (the paper's "evaluates message
// completion times on various paths and prioritizes the fastest").
func (c *Communicator) recordThroughput(conn *Conn, qp *QP, bits float64, dur sim.Time) {
	if dur <= 0 {
		return
	}
	bps := bits / dur.Seconds()
	const alpha = 0.5
	if qp.ewma == 0 {
		qp.ewma = bps
	} else {
		qp.ewma = alpha*bps + (1-alpha)*qp.ewma
	}
	if !c.cfg.AdaptiveWeights || qp.assign == nil {
		return
	}
	plane := qp.assign.Path.SrcPort.Plane
	var total float64
	var peers []*QP
	for _, q := range conn.QPs {
		if q.broken || q.assign == nil || q.ewma <= 0 {
			continue
		}
		if q.assign.Path.SrcPort.Plane != plane {
			continue
		}
		peers = append(peers, q)
		total += q.ewma
	}
	if total <= 0 {
		return
	}
	for _, q := range peers {
		q.weight = q.ewma / total
	}
}
