package accl

import "c4/internal/sim"

// SendRecv starts a point-to-point transfer of `bytes` from member rank
// src to member rank dst — the pipeline-parallel exchange between
// adjacent stages (activations forward, gradients backward). ready is the
// absolute instant the sender's data exists (its producing compute slot's
// end); the transfer starts then and rides the communicator's rails,
// planes and QPs exactly like a collective edge, so it contends on (and
// is steered across) the same fabric. onDone may be nil.
//
// Monitoring semantics mirror the collectives: both endpoints emit
// kernel-arrive records at `ready`, completion records fire at delivery,
// and a crashed endpoint makes the operation hang forever — the same
// syndrome C4D observes on a stalled collective. Unlike ring collectives
// the message is always a single transfer (no chunked stepwise mode):
// stage-to-stage tensors ship as one RDMA write in ACCL.
func (c *Communicator) SendRecv(src, dst int, bytes float64, ready sim.Time, onDone func(Result)) *Op {
	if src < 0 || src >= len(c.nodes) || dst < 0 || dst >= len(c.nodes) {
		panic("accl: SendRecv rank out of range")
	}
	if src == dst {
		panic("accl: SendRecv with src == dst")
	}
	c.seq++
	o := &Op{
		comm: c, Type: OpSendRecv, Algo: "p2p", Seq: c.seq, Bytes: bytes,
		onDone:  onDone,
		members: []int{c.nodes[src], c.nodes[dst]},
	}
	// Arrival vector over the whole communicator, with only the two
	// endpoints participating; announceArrivals skips MaxTime entries, so
	// bystander ranks (and crashed endpoints) emit nothing.
	arr := make([]sim.Time, len(c.nodes))
	for i := range arr {
		arr[i] = sim.MaxTime
	}
	at := ready
	if now := c.cfg.Engine.Now(); at < now {
		at = now
	}
	for _, r := range []int{src, dst} {
		if !c.crashed[c.nodes[r]] {
			arr[r] = at
		}
	}
	c.announceArrivals(o, arr)
	o.startSpan()
	if arr[src] == sim.MaxTime || arr[dst] == sim.MaxTime {
		return o // a crashed endpoint: the transfer never starts, the op hangs
	}
	o.pendingEdges = 1
	c.cfg.Engine.Schedule(at, func() {
		c.transfer(o, c.nodes[src], c.nodes[dst], bytes, func(end sim.Time) {
			o.finishEdge(end)
		})
	})
	return o
}
