package accl

import (
	"math"
	"testing"

	"c4/internal/netsim"
	"c4/internal/sim"
	"c4/internal/topo"
)

// plannedProvider is a miniature traffic engineer for tests: same-plane
// paths, spines assigned round-robin per QP, so allocations never collide.
type plannedProvider struct {
	topo *topo.Topology
	next int
	// forceDstPlane, when >= 0, routes every QP to that receive plane —
	// used to manufacture the Fig 9 rx-imbalance pathology on demand.
	forceDstPlane int
}

func newPlannedProvider(t *topo.Topology) *plannedProvider {
	return &plannedProvider{topo: t, forceDstPlane: -1}
}

func (p *plannedProvider) Connect(req ConnRequest) (*Assignment, error) {
	plane := req.QPIndex % topo.Planes
	dstPlane := plane
	if p.forceDstPlane >= 0 {
		dstPlane = p.forceDstPlane
	}
	if p.topo.Group(req.SrcNode) == p.topo.Group(req.DstNode) {
		path, err := p.topo.PathFor(req.SrcNode, req.DstNode, req.Rail, plane, -1, plane)
		if err != nil {
			return nil, err
		}
		return &Assignment{Path: path, Sport: uint16(p.next)}, nil
	}
	spine := p.next % p.topo.Spec.Spines
	p.next++
	path, err := p.topo.PathFor(req.SrcNode, req.DstNode, req.Rail, plane, spine, dstPlane)
	if err != nil {
		return nil, err
	}
	return &Assignment{Path: path, Sport: uint16(spine)}, nil
}

func (p *plannedProvider) Repair(req ConnRequest, old *Assignment) (*Assignment, error) {
	return p.Connect(req)
}

func (p *plannedProvider) Release(*Assignment) {}

type harness struct {
	eng  *sim.Engine
	net  *netsim.Network
	topo *topo.Topology
	rec  *Recorder
}

func newHarness() *harness {
	eng := sim.NewEngine()
	tp := topo.MustNew(topo.PaperTestbed())
	return &harness{
		eng:  eng,
		net:  netsim.New(eng, tp, netsim.DefaultConfig()),
		topo: tp,
		rec:  &Recorder{},
	}
}

func (h *harness) comm(t *testing.T, cfg Config, nodes []int) *Communicator {
	t.Helper()
	cfg.Engine = h.eng
	cfg.Net = h.net
	if cfg.Provider == nil {
		cfg.Provider = newPlannedProvider(h.topo)
	}
	if cfg.Sink == nil {
		cfg.Sink = h.rec
	}
	c, err := NewCommunicator(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const MiB = 1 << 20

func TestAllReduceFluidReachesNVLinkCeiling(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2, 4, 6})
	var res Result
	c.AllReduce(256*MiB, nil, func(r Result) { res = r })
	h.eng.Run()
	if res.End == 0 {
		t.Fatal("allreduce never completed")
	}
	// Planned paths: every edge runs at min(NVLink 362, bonded 400).
	if res.BusGbps < 330 || res.BusGbps > 365 {
		t.Fatalf("busbw = %.1f Gbps, want ≈362", res.BusGbps)
	}
}

func TestAllReduceRxCollisionHalvesBandwidth(t *testing.T) {
	h := newHarness()
	p := newPlannedProvider(h.topo)
	p.forceDstPlane = 0 // both QPs converge on the receiver's left port
	c := h.comm(t, Config{Provider: p}, []int{0, 2, 4, 6})
	var res Result
	c.AllReduce(256*MiB, nil, func(r Result) { res = r })
	h.eng.Run()
	// Receive port is 200 Gbps shared by two flows -> busbw ≈ 200.
	if res.BusGbps < 170 || res.BusGbps > 240 {
		t.Fatalf("busbw = %.1f Gbps, want <240 (rx imbalance)", res.BusGbps)
	}
}

func TestSingleNodeAllReduce(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{5})
	var res Result
	c.AllReduce(128*MiB, nil, func(r Result) { res = r })
	h.eng.Run()
	if res.End == 0 {
		t.Fatal("single-node allreduce never completed")
	}
	if math.Abs(res.BusGbps-362) > 20 {
		t.Fatalf("intra-node busbw = %.1f, want ≈362", res.BusGbps)
	}
}

func TestStepwiseMatchesFluidApproximately(t *testing.T) {
	run := func(stepwise bool) Result {
		h := newHarness()
		c := h.comm(t, Config{Stepwise: stepwise}, []int{0, 2, 4, 6})
		var res Result
		c.AllReduce(512*MiB, nil, func(r Result) { res = r })
		h.eng.Run()
		return res
	}
	fluid, step := run(false), run(true)
	if fluid.End == 0 || step.End == 0 {
		t.Fatal("an allreduce never completed")
	}
	ratio := step.BusGbps / fluid.BusGbps
	if ratio < 0.7 || ratio > 1.1 {
		t.Fatalf("stepwise busbw %.1f vs fluid %.1f (ratio %.2f)", step.BusGbps, fluid.BusGbps, ratio)
	}
}

func TestAllGatherBusFactor(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2, 4, 6})
	var ag, ar Result
	c.AllGather(256*MiB, nil, func(r Result) { ag = r })
	h.eng.Run()
	h2 := newHarness()
	c2 := h2.comm(t, Config{}, []int{0, 2, 4, 6})
	c2.AllReduce(256*MiB, nil, func(r Result) { ar = r })
	h2.eng.Run()
	// Allgather moves half the per-edge bytes of allreduce, so takes about
	// half the time; both should report the same bus bandwidth.
	if math.Abs(ag.BusGbps-ar.BusGbps) > 30 {
		t.Fatalf("allgather busbw %.1f vs allreduce %.1f", ag.BusGbps, ar.BusGbps)
	}
	if ag.End-ag.Start > (ar.End-ar.Start)*3/4 {
		t.Fatalf("allgather (%v) should be ~half of allreduce (%v)", ag.End-ag.Start, ar.End-ar.Start)
	}
}

func TestLateArrivalDelaysEdgeAndEmitsWait(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2, 4, 6})
	arr := []sim.Time{0, 0, 500 * sim.Millisecond, 0}
	var res Result
	c.AllReduce(64*MiB, arr, func(r Result) { res = r })
	h.eng.Run()
	if res.End < 500*sim.Millisecond {
		t.Fatalf("op finished before straggler arrived: %v", res.End)
	}
	// Node 2 (index 2, the straggler) must be blamed by a wait event.
	found := false
	for _, w := range h.rec.Waits {
		if w.On == 4 && w.Waiter == 2 {
			found = true
			if w.Dur != 500*sim.Millisecond {
				t.Fatalf("wait dur = %v, want 500ms", w.Dur)
			}
		}
		if w.On != 4 {
			t.Fatalf("unexpected wait on node %d", w.On)
		}
	}
	if !found {
		t.Fatalf("no wait event blaming the straggler; got %+v", h.rec.Waits)
	}
}

func TestCrashedNodeHangsOperation(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2, 4, 6})
	c.SetCrashed(4, true)
	done := false
	op := c.AllReduce(64*MiB, nil, func(Result) { done = true })
	h.eng.RunUntil(10 * sim.Second)
	if done || op.Done() {
		t.Fatal("op completed despite crashed member")
	}
	// Survivors' kernel launches are still observed (the C4D signal).
	arrivals := map[int]bool{}
	for _, ev := range h.rec.Collectives {
		if ev.Phase == PhaseArrive {
			arrivals[ev.Node] = true
		}
	}
	if arrivals[4] {
		t.Fatal("crashed node reported a kernel launch")
	}
	for _, n := range []int{0, 2, 6} {
		if !arrivals[n] {
			t.Fatalf("survivor %d missing arrival record", n)
		}
	}
}

func TestMessageEventsConserveBytes(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2, 4, 6})
	size := float64(64 * MiB)
	c.AllReduce(size, nil, nil)
	h.eng.Run()
	var total float64
	for _, m := range h.rec.Messages {
		total += m.Bytes
	}
	n := c.TotalGPUs()
	want := size * 2 * float64(n-1) / float64(n) * 4 // 4 ring edges
	if math.Abs(total-want)/want > 1e-6 {
		t.Fatalf("messages carried %.0f bytes, want %.0f", total, want)
	}
}

func TestBroadcastTree(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2, 4, 6, 8})
	var res Result
	c.Broadcast(128*MiB, nil, func(r Result) { res = r })
	h.eng.Run()
	if res.End == 0 {
		t.Fatal("broadcast never completed")
	}
	if res.Algo != "tree" || res.Op != OpBroadcast {
		t.Fatalf("result metadata wrong: %+v", res)
	}
	// Two tree levels of full-size transfers at ~362 Gbps, plus latency.
	minT := sim.FromSeconds(2 * 128 * MiB * 8 / (400e9))
	if res.End-res.Start < minT {
		t.Fatalf("broadcast too fast: %v < %v", res.End-res.Start, minT)
	}
}

func TestAllReduceTreeCompletes(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2, 4, 6})
	var res Result
	c.AllReduceTree(64*MiB, nil, func(r Result) { res = r })
	h.eng.Run()
	if res.End == 0 {
		t.Fatal("tree allreduce never completed")
	}
	if res.Algo != "tree" {
		t.Fatalf("algo = %q", res.Algo)
	}
	// Ring is bandwidth-optimal at large sizes: tree busbw must not exceed
	// ring's ceiling.
	if res.BusGbps > 365 {
		t.Fatalf("tree busbw %.1f exceeds fabric ceiling", res.BusGbps)
	}
}

func TestAdaptiveWeightsShiftWithinPlane(t *testing.T) {
	h := newHarness()
	// 4 QPs per connection: two per plane, so load balance has room to
	// move within a plane.
	c := h.comm(t, Config{AdaptiveWeights: true, QPsPerConn: 4}, []int{0, 2})
	// Warm up once so the connection (and its spine choices) exist.
	c.AllReduce(16*MiB, nil, nil)
	h.eng.RunUntil(sim.Second)
	conn, err := c.getConn(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Congest the first plane-0 QP's spine with a hog sharing its uplink
	// (source node 1 sits under the same leaf as node 0).
	var victim, sibling *QP
	for _, qp := range conn.QPs {
		if qp.Path().SrcPort.Plane != 0 {
			continue
		}
		if victim == nil {
			victim = qp
		} else {
			sibling = qp
		}
	}
	if victim == nil || sibling == nil {
		t.Fatal("expected two plane-0 QPs")
	}
	// Three hogs drop the victim's uplink share to ~50 Gbps — well below
	// what the NVLink injection cap leaves the sibling (~100 Gbps), so the
	// congestion is visible through the intra-node bottleneck.
	// Hogs share the victim's leaf uplink (same source leaf, same spine)
	// but terminate at node 3, so the victim's destination port — which
	// the sibling also crosses — stays out of the blast radius.
	hog, err := h.topo.PathFor(1, 3, 0, 0, victim.Path().Spine.Index, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h.net.StartFlow(hog, 1e18, "hog", nil)
	}
	// Serialized iterations (BSP-style) so per-op throughput measurements
	// are clean.
	remaining := 12
	var next func(Result)
	next = func(Result) {
		if remaining == 0 {
			return
		}
		remaining--
		c.AllReduce(16*MiB, nil, next)
	}
	next(Result{})
	h.eng.RunUntil(60 * sim.Second)
	if victim.Weight() >= sibling.Weight() {
		t.Fatalf("weights did not shift off the congested spine: victim=%.3f sibling=%.3f",
			victim.Weight(), sibling.Weight())
	}
	// The dual-port invariant: plane sums stay balanced (weights only
	// renormalize within a plane).
	w0, w1 := 0.0, 0.0
	for _, qp := range conn.QPs {
		if qp.Path().SrcPort.Plane == 0 {
			w0 += qp.Weight()
		} else {
			w1 += qp.Weight()
		}
	}
	if math.Abs(w0-1) > 1e-9 || math.Abs(w1-1) > 1e-9 {
		t.Fatalf("per-plane weight sums = %.3f/%.3f, want 1/1", w0, w1)
	}
}

func TestCommunicatorValidation(t *testing.T) {
	h := newHarness()
	base := Config{Engine: h.eng, Net: h.net, Provider: newPlannedProvider(h.topo)}
	if _, err := NewCommunicator(base, nil); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewCommunicator(base, []int{1, 1}); err == nil {
		t.Fatal("duplicate nodes accepted")
	}
	if _, err := NewCommunicator(Config{}, []int{0}); err == nil {
		t.Fatal("missing dependencies accepted")
	}
}

func TestCloseReleasesConnections(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2})
	c.AllReduce(MiB, nil, nil)
	h.eng.Run()
	if len(c.conns) == 0 {
		t.Fatal("expected live connections before Close")
	}
	c.Close()
	if len(c.conns) != 0 {
		t.Fatal("Close left connections behind")
	}
}

func TestECMPProviderProducesValidPaths(t *testing.T) {
	h := newHarness()
	prov := NewECMPProvider(h.topo, sim.NewRand(7))
	c := h.comm(t, Config{Provider: prov}, []int{0, 2, 4, 6})
	var res Result
	c.AllReduce(64*MiB, nil, func(r Result) { res = r })
	h.eng.Run()
	if res.End == 0 {
		t.Fatal("ECMP allreduce never completed")
	}
	if res.BusGbps <= 0 || res.BusGbps > 365 {
		t.Fatalf("busbw = %.1f out of range", res.BusGbps)
	}
}

func TestRepairAfterLinkFailureCompletesTransfer(t *testing.T) {
	h := newHarness()
	c := h.comm(t, Config{}, []int{0, 2})
	var res Result
	c.AllReduce(256*MiB, nil, func(r Result) { res = r })
	// Fail one spine uplink used by the transfer shortly after start.
	h.eng.After(sim.Millisecond, func() {
		leaf := h.topo.PortAt(0, 0, 0).Leaf
		h.net.SetLinkUp(leaf.Ups[0], false)
	})
	h.eng.Run()
	if res.End == 0 {
		t.Fatal("transfer never recovered from link failure")
	}
}

func TestMultiRailStripingScalesThroughput(t *testing.T) {
	// Rails are independent subnetworks. On the paper testbed the shared
	// 362 Gbps NVLink injection ceiling binds before even one bonded NIC,
	// so striping cannot speed completion there; raise the ceiling and the
	// 4-rail transfer must approach 4x one rail.
	run := func(rails []int) sim.Time {
		eng := sim.NewEngine()
		spec := topo.PaperTestbed()
		spec.NVLinkGbps = 1e4 // NIC-bound regime
		tp := topo.MustNew(spec)
		net := netsim.New(eng, tp, netsim.DefaultConfig())
		c, err := NewCommunicator(Config{
			Engine: eng, Net: net, Provider: newPlannedProvider(tp),
			Rails: rails, Rand: sim.NewRand(1),
		}, []int{0, 2})
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		c.AllReduce(512*MiB, nil, func(r Result) { res = r })
		eng.Run()
		if res.End == 0 {
			t.Fatalf("allreduce on rails %v never completed", rails)
		}
		return res.End - res.Start
	}
	one := run([]int{0})
	four := run([]int{0, 1, 2, 3})
	speedup := float64(one) / float64(four)
	if speedup < 3.5 || speedup > 4.5 {
		t.Fatalf("4-rail speedup = %.2fx (1 rail %v, 4 rails %v), want ≈4x", speedup, one, four)
	}
	// Striping must also be even across rails.
	h := newHarness()
	c := h.comm(t, Config{Rails: []int{0, 1, 2, 3}}, []int{0, 2})
	c.AllReduce(512*MiB, nil, nil)
	h.eng.Run()
	perRail := map[int]float64{}
	for _, m := range h.rec.Messages {
		perRail[m.Rail] += m.Bytes
	}
	if len(perRail) != 4 {
		t.Fatalf("rails used = %d, want 4", len(perRail))
	}
	var first float64
	for _, rail := range []int{0, 1, 2, 3} {
		if first == 0 {
			first = perRail[rail]
		}
		if math.Abs(perRail[rail]-first)/first > 1e-9 {
			t.Fatalf("rail striping uneven: %v", perRail)
		}
	}
}

func TestFanoutDeliversToEverySink(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	sink := Fanout(a, nil, b)
	sink.OnCommCreate(CommInfo{Comm: 1, Nodes: []int{0, 1}})
	sink.OnCollective(CollEvent{Comm: 1, Node: 0})
	sink.OnMessage(MsgEvent{Comm: 1, SrcNode: 0, DstNode: 1, Bytes: 8})
	sink.OnWait(WaitEvent{Comm: 1, Waiter: 1, On: 0})
	sink.OnCommClose(1)
	for i, rec := range []*Recorder{a, b} {
		if len(rec.Comms) != 1 || len(rec.Collectives) != 1 ||
			len(rec.Messages) != 1 || len(rec.Waits) != 1 || len(rec.Closed) != 1 {
			t.Fatalf("sink %d missed records: %+v", i, rec)
		}
	}
	// A single non-nil sink is returned unwrapped (no fan-out overhead).
	if got := Fanout(nil, a); got != StatsSink(a) {
		t.Fatalf("Fanout(nil, a) = %T, want the sink itself", got)
	}
}

func TestFanoutDrivesTwoLiveSinks(t *testing.T) {
	// End to end: one communicator, two recorders, byte-identical streams.
	h := newHarness()
	other := &Recorder{}
	c := h.comm(t, Config{Sink: Fanout(h.rec, other)}, []int{0, 2})
	c.AllReduce(64*MiB, nil, nil)
	h.eng.Run()
	if len(h.rec.Messages) == 0 || len(h.rec.Messages) != len(other.Messages) {
		t.Fatalf("fanout diverged: %d vs %d messages", len(h.rec.Messages), len(other.Messages))
	}
	for i := range h.rec.Messages {
		if h.rec.Messages[i] != other.Messages[i] {
			t.Fatalf("message %d diverged: %+v vs %+v", i, h.rec.Messages[i], other.Messages[i])
		}
	}
}
