package accl

import (
	"c4/internal/sim"
)

// Broadcast distributes `bytes` from the root member (index 0) to all other
// members over a binary tree, the latency-optimal alternative ACCL keeps
// alongside ring (paper Fig 6 lists both algorithm families). Each tree
// edge carries the full payload; a node forwards to its children only after
// fully receiving from its parent.
func (c *Communicator) Broadcast(bytes float64, arrivals []sim.Time, onDone func(Result)) *Op {
	c.seq++
	o := &Op{comm: c, Type: OpBroadcast, Algo: "tree", Seq: c.seq, Bytes: bytes, onDone: onDone}
	arr := c.resolveArrivals(arrivals)
	c.announceArrivals(o, arr)
	c.runTreeBroadcast(o, arr)
	return o
}

// AllReduceTree performs allreduce as reduce-to-root followed by broadcast,
// the tree variant used for the algorithm ablation benchmarks. Each tree
// edge carries the payload once per phase.
func (c *Communicator) AllReduceTree(bytes float64, arrivals []sim.Time, onDone func(Result)) *Op {
	c.seq++
	o := &Op{comm: c, Type: OpAllReduce, Algo: "tree", Seq: c.seq, Bytes: bytes, onDone: onDone}
	arr := c.resolveArrivals(arrivals)
	c.announceArrivals(o, arr)
	c.runTreeReduce(o, arr, func(rootDone sim.Time) {
		// Phase 2: broadcast the reduced buffer back down the tree.
		arr2 := make([]sim.Time, len(c.nodes))
		for i := range arr2 {
			arr2[i] = rootDone
			if arr[i] == sim.MaxTime {
				arr2[i] = sim.MaxTime
			}
		}
		c.runTreeBroadcast(o, arr2)
	})
	return o
}

// children returns the binary-heap children of member index i.
func treeChildren(i, m int) []int {
	var out []int
	for _, ch := range []int{2*i + 1, 2*i + 2} {
		if ch < m {
			out = append(out, ch)
		}
	}
	return out
}

func (c *Communicator) runTreeBroadcast(o *Op, arr []sim.Time) {
	m := len(c.nodes)
	if m == 1 {
		c.runSingleNode(o, arr[0])
		return
	}
	// Pending edges: every non-root member must receive once.
	o.pendingEdges += m - 1

	var send func(parent, child int, readyAt sim.Time)
	send = func(parent, child int, readyAt sim.Time) {
		if arr[parent] == sim.MaxTime || arr[child] == sim.MaxTime {
			return // crashed endpoint: subtree never completes
		}
		start := readyAt
		if arr[child] > start {
			start = arr[child]
		}
		c.cfg.Engine.Schedule(start, func() {
			c.transfer(o, c.nodes[parent], c.nodes[child], o.Bytes, func(end sim.Time) {
				o.finishEdge(end)
				for _, gc := range treeChildren(child, m) {
					send(child, gc, end)
				}
			})
		})
	}
	for _, ch := range treeChildren(0, m) {
		send(0, ch, arr[0])
	}
}

// runTreeReduce pushes data leaf-to-root; done fires when the root holds
// the fully reduced buffer.
func (c *Communicator) runTreeReduce(o *Op, arr []sim.Time, done func(sim.Time)) {
	m := len(c.nodes)
	if m == 1 {
		if arr[0] != sim.MaxTime {
			done(arr[0])
		}
		return
	}
	recvRemaining := make([]int, m)
	recvReady := make([]sim.Time, m)
	for i := range recvReady {
		recvReady[i] = arr[i]
	}
	for i := 0; i < m; i++ {
		recvRemaining[i] = len(treeChildren(i, m))
	}

	var sendUp func(child int)
	sendUp = func(child int) {
		parent := (child - 1) / 2
		if arr[child] == sim.MaxTime || arr[parent] == sim.MaxTime {
			return
		}
		start := recvReady[child]
		if arr[parent] > start {
			start = arr[parent]
		}
		c.cfg.Engine.Schedule(start, func() {
			c.transfer(o, c.nodes[child], c.nodes[parent], o.Bytes, func(end sim.Time) {
				recvRemaining[parent]--
				if end > recvReady[parent] {
					recvReady[parent] = end
				}
				if recvRemaining[parent] > 0 {
					return
				}
				if parent == 0 {
					done(recvReady[0])
					return
				}
				sendUp(parent)
			})
		})
	}
	for i := 0; i < m; i++ {
		if recvRemaining[i] == 0 && i != 0 {
			sendUp(i) // leaves start immediately
		}
	}
	if recvRemaining[0] == 0 {
		// Root is a leaf only when m == 1, handled above.
		done(arr[0])
	}
}
