package scenario

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Report is the outcome of one scenario execution.
type Report struct {
	Name   string
	Seed   int64
	Result Result // nil when Err is set
	// Err is a panic converted to an error; shape-check failures are
	// reported separately so a failed claim still yields its rendering.
	Err error
	// ShapeErr is the Result's CheckShape verdict (nil = claim holds).
	ShapeErr error
	// Wall is host time spent executing the scenario.
	Wall time.Duration
	// Events is the number of simulation events fired across every engine
	// the scenario built.
	Events uint64
}

// Runner executes a set of scenarios on a bounded worker pool. Each
// scenario runs on its own goroutine with its own Ctx (seed, engines,
// RNGs), so execution order and concurrency cannot affect results: a
// Runner with Workers=N produces byte-identical Reports to Workers=1.
type Runner struct {
	// Workers bounds concurrent scenario executions; 0 means GOMAXPROCS.
	Workers int
}

// Run executes every scenario with the given root seed and returns one
// report per scenario, in input order. Panics inside a scenario are
// captured into the report rather than killing sibling workers.
//
// ctx bounds the sweep: scenarios not yet started when it is cancelled
// report the cancellation error instead of running, and the context is
// exposed to scenario code through Ctx.Context. A run that completes is
// byte-identical regardless of the context used.
func (r *Runner) Run(ctx context.Context, seed int64, scns []Scenario) []Report {
	reports := make([]Report, len(scns))
	// When the scenario pool itself runs wide, nested pools (campaign
	// trials) get one worker each so total concurrency stays at the
	// scenario bound instead of squaring it; a single-scenario or
	// explicitly serial run passes the caller's bound straight through.
	outer := resolveWorkers(r.Workers, len(scns))
	nested := r.Workers
	if outer > 1 {
		nested = 1
	}
	// ForEach receives the already-resolved bound: the nested throttle above
	// was derived from it, and handing ForEach the raw r.Workers would let
	// the two disagree if either clamp ever changes.
	ForEach(len(scns), outer, func(i int) {
		reports[i] = runOne(ctx, scns[i], seed, nested)
	})
	return reports
}

// resolveWorkers maps a configured worker bound (<=0 means GOMAXPROCS)
// onto the effective pool size for n items. It is the single clamping rule
// shared by Run's nested-throttle decision and ForEach's pool sizing.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForEach invokes fn(i) for every i in [0,n) on a bounded worker pool
// (workers <= 0 means GOMAXPROCS) and returns once every call completed.
// It is the scheduling core shared by the scenario runner and the
// fault-campaign trial runner: callers own output slots by index, so
// execution order cannot affect results.
func ForEach(n, workers int, fn func(int)) {
	workers = resolveWorkers(workers, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// RunOne executes a single scenario with the given seed, capturing wall
// time, event counts, panics and the shape-check verdict. Both Run and
// CheckShape are scenario-author code, so both execute under the panic
// guard; a Run that returns nil without panicking is reported as an error
// rather than a silent success.
func RunOne(ctx context.Context, s Scenario, seed int64) Report {
	return runOne(ctx, s, seed, 0)
}

func runOne(cctx context.Context, s Scenario, seed int64, workers int) Report {
	rep := Report{Name: s.Name, Seed: seed}
	if cctx == nil {
		cctx = context.Background()
	}
	if err := cctx.Err(); err != nil {
		rep.Err = fmt.Errorf("scenario %s not started: %w", s.Name, err)
		return rep
	}
	ctx := NewCtx(seed)
	ctx.Context = cctx
	ctx.Workers = workers
	//c4vet:allow wallclock Report.Wall is an operator-facing duration measured at the edge; no simulation state depends on it
	start := time.Now()
	func() {
		defer func() {
			if p := recover(); p != nil {
				rep.Err = fmt.Errorf("scenario %s panicked: %v", s.Name, p)
			}
		}()
		rep.Result = s.Run(ctx)
		if rep.Result == nil {
			rep.Err = fmt.Errorf("scenario %s returned no result", s.Name)
			return
		}
		rep.ShapeErr = rep.Result.CheckShape()
	}()
	rep.Wall = time.Since(start) //c4vet:allow wallclock pairs with the Report.Wall measurement above; never feeds simulation state
	rep.Events = ctx.Events()
	return rep
}
