package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	regMu    sync.Mutex
	registry = map[string]Scenario{}
	regOrder []string
)

// Register adds a scenario to the global registry. It panics on an empty
// name, a nil Run, or a duplicate name: registration happens in package
// init functions, where a bad entry is a programming error.
func Register(s Scenario) {
	if s.Name == "" {
		panic("scenario: Register with empty name")
	}
	if s.Run == nil {
		panic(fmt.Sprintf("scenario: Register(%q) with nil Run", s.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
	regOrder = append(regOrder, s.Name)
}

// Get returns the scenario registered under name.
func Get(name string) (Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns all registered names in registration order.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	return append([]string(nil), regOrder...)
}

// All returns every registered scenario in registration order.
func All() []Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Scenario, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, registry[name])
	}
	return out
}

// Select resolves a comma-separated selection into scenarios. Each term
// is an exact name, a "prefix*" glob, or "all"; terms accumulate in
// registration order without duplicates. Unknown terms are an error that
// lists the available names.
func Select(selection string) ([]Scenario, error) {
	terms := strings.Split(selection, ",")
	want := map[string]bool{}
	for _, term := range terms {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		matched := false
		for _, name := range Names() {
			switch {
			case term == "all", term == name,
				strings.HasSuffix(term, "*") && strings.HasPrefix(name, strings.TrimSuffix(term, "*")):
				want[name] = true
				matched = true
			}
		}
		if !matched {
			sorted := Names()
			sort.Strings(sorted)
			return nil, fmt.Errorf("scenario: no scenario matches %q (have: %s)",
				term, strings.Join(sorted, ", "))
		}
	}
	var out []Scenario
	for _, s := range All() {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: empty selection %q", selection)
	}
	return out, nil
}
