package scenario

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"c4/internal/sim"
)

// fakeResult is a minimal Result for runner/registry tests.
type fakeResult struct {
	text  string
	shape error
}

func (f fakeResult) String() string    { return f.text }
func (f fakeResult) CheckShape() error { return f.shape }

// fake builds a deterministic scenario whose output depends only on the
// seed, mimicking how real scenarios derive everything from the Ctx.
func fake(name string) Scenario {
	return Scenario{
		Name: name, Group: "test", Description: "fake", Paper: "n/a",
		Run: func(c *Ctx) Result {
			r := sim.NewRand(c.Seed)
			eng := sim.NewEngine()
			c.Track(eng)
			total := 0.0
			for i := 0; i < 10; i++ {
				i := i
				eng.Schedule(sim.Time(i), func() { total += r.Float64() })
			}
			eng.Run()
			return fakeResult{text: fmt.Sprintf("%s: %.12f", name, total)}
		},
		Summarize: func(r Result) string { return r.String() },
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(s Scenario, why string) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register should panic: %s", why)
			}
		}()
		Register(s)
	}
	mustPanic(Scenario{}, "empty name")
	mustPanic(Scenario{Name: "x"}, "nil Run")
	ok := fake("register-validation-ok")
	registerOnce(ok)
	mustPanic(ok, "duplicate name")
	if _, found := Get("register-validation-ok"); !found {
		t.Fatal("registered scenario not retrievable")
	}
}

// registerOnce tolerates test-binary reruns in one process (-count=N):
// the registry is process-global, so a second run would otherwise hit the
// duplicate-name panic.
func registerOnce(s Scenario) {
	if _, dup := Get(s.Name); !dup {
		Register(s)
	}
}

func TestSelect(t *testing.T) {
	registerOnce(fake("select-a"))
	registerOnce(fake("select-b"))
	registerOnce(fake("other-c"))

	got, err := Select("select-b,select-a")
	if err != nil {
		t.Fatal(err)
	}
	// Registration order, not selection order.
	if len(got) != 2 || got[0].Name != "select-a" || got[1].Name != "select-b" {
		t.Fatalf("Select = %v", names(got))
	}

	got, err = Select("select-*")
	if err != nil || len(got) != 2 {
		t.Fatalf("glob Select = %v, %v", names(got), err)
	}

	if all, err := Select("all"); err != nil || len(all) != len(All()) {
		t.Fatalf("Select(all) = %d scenarios, want %d (%v)", len(all), len(All()), err)
	}

	if _, err := Select("definitely-missing"); err == nil ||
		!strings.Contains(err.Error(), "definitely-missing") {
		t.Fatalf("unknown selection error = %v", err)
	}
}

func TestRunnerParallelMatchesSerial(t *testing.T) {
	scns := []Scenario{}
	for i := 0; i < 12; i++ {
		scns = append(scns, fake(fmt.Sprintf("runner-fake-%d", i)))
	}
	serial := (&Runner{Workers: 1}).Run(context.Background(), 42, scns)
	parallel := (&Runner{Workers: 8}).Run(context.Background(), 42, scns)
	for i := range scns {
		if serial[i].Name != scns[i].Name {
			t.Fatalf("report %d out of order: %s", i, serial[i].Name)
		}
		if serial[i].Result.String() != parallel[i].Result.String() {
			t.Fatalf("%s: parallel diverged from serial", scns[i].Name)
		}
		if serial[i].Events != 10 || parallel[i].Events != 10 {
			t.Fatalf("%s: events = %d/%d, want 10", scns[i].Name, serial[i].Events, parallel[i].Events)
		}
	}
}

func TestRunnerCapturesPanics(t *testing.T) {
	var survivors atomic.Int32
	scns := []Scenario{
		{Name: "panics", Run: func(*Ctx) Result { panic("boom") }},
		{Name: "survives", Run: func(*Ctx) Result {
			survivors.Add(1)
			return fakeResult{text: "ok"}
		}},
		{Name: "bad-shape", Run: func(*Ctx) Result {
			return fakeResult{text: "r", shape: fmt.Errorf("claim violated")}
		}},
	}
	reps := (&Runner{Workers: 2}).Run(context.Background(), 1, scns)
	if reps[0].Err == nil || !strings.Contains(reps[0].Err.Error(), "boom") {
		t.Fatalf("panic not captured: %v", reps[0].Err)
	}
	if reps[1].Err != nil || reps[1].ShapeErr != nil || survivors.Load() != 1 {
		t.Fatalf("sibling scenario disturbed by panic: %+v", reps[1])
	}
	if reps[2].Err != nil || reps[2].ShapeErr == nil {
		t.Fatalf("shape failure must be reported separately: %+v", reps[2])
	}
	if reps[2].Result == nil {
		t.Fatal("failed shape check must still deliver the rendering")
	}
}

// TestRunnerWorkerResolution pins the worker-bound contract: Run resolves
// one effective pool size and both the pool and the nested throttle derive
// from it. A single-scenario Workers=0 run must pass the caller's bound
// through to the scenario's Ctx (0 = GOMAXPROCS for any nested pool),
// while a wide run throttles nested pools to one worker each.
func TestRunnerWorkerResolution(t *testing.T) {
	observe := func(name string, sink *int) Scenario {
		return Scenario{
			Name: name, Group: "test",
			Run: func(c *Ctx) Result {
				*sink = c.Workers
				return fakeResult{text: name}
			},
		}
	}

	var single int
	reps := (&Runner{Workers: 0}).Run(context.Background(), 1, []Scenario{observe("single", &single)})
	if len(reps) != 1 || reps[0].Err != nil {
		t.Fatalf("single-scenario run failed: %+v", reps)
	}
	if single != 0 {
		t.Fatalf("single scenario saw nested bound %d, want 0 (caller's bound passed through)", single)
	}

	nested := make([]int, 3)
	scns := make([]Scenario, 3)
	for i := range scns {
		scns[i] = observe(fmt.Sprintf("wide-%d", i), &nested[i])
	}
	for _, rep := range (&Runner{Workers: 3}).Run(context.Background(), 1, scns) {
		if rep.Err != nil {
			t.Fatalf("wide run failed: %v", rep.Err)
		}
	}
	for i, w := range nested {
		if w != 1 {
			t.Fatalf("wide run scenario %d saw nested bound %d, want 1", i, w)
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(0, 1); got != 1 {
		t.Fatalf("resolveWorkers(0, 1) = %d, want 1", got)
	}
	if got := resolveWorkers(8, 3); got != 3 {
		t.Fatalf("resolveWorkers(8, 3) = %d, want 3", got)
	}
	if got := resolveWorkers(2, 5); got != 2 {
		t.Fatalf("resolveWorkers(2, 5) = %d, want 2", got)
	}
}

type panicShapeResult struct{}

func (panicShapeResult) String() string    { return "r" }
func (panicShapeResult) CheckShape() error { panic("shape blew up") }

func TestRunOneGuardsAuthorCode(t *testing.T) {
	// CheckShape is scenario-author code too: a panic there must land in
	// the report, not kill the worker pool.
	rep := RunOne(context.Background(), Scenario{
		Name: "panic-shape",
		Run:  func(*Ctx) Result { return panicShapeResult{} },
	}, 1)
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "shape blew up") {
		t.Fatalf("CheckShape panic not captured: %v", rep.Err)
	}

	// A nil Result without a panic is a broken scenario, not a success.
	rep = RunOne(context.Background(), Scenario{
		Name: "nil-result",
		Run:  func(*Ctx) Result { return nil },
	}, 1)
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "no result") {
		t.Fatalf("nil result not reported as an error: %+v", rep)
	}
}

func TestCtxEventAccounting(t *testing.T) {
	ctx := NewCtx(5)
	if ctx.Seed != 5 {
		t.Fatalf("seed = %d", ctx.Seed)
	}
	if ctx.Events() != 0 {
		t.Fatal("fresh ctx should count zero events")
	}
	a, b := sim.NewEngine(), sim.NewEngine()
	ctx.Track(a)
	ctx.Track(b)
	a.Schedule(1, func() {})
	a.Schedule(2, func() {})
	b.Schedule(1, func() {})
	a.Run()
	b.Run()
	if ctx.Events() != 3 {
		t.Fatalf("events = %d, want 3 across engines", ctx.Events())
	}
}

func names(scns []Scenario) []string {
	out := make([]string, len(scns))
	for i, s := range scns {
		out[i] = s.Name
	}
	return out
}
