// Package scenario turns the C4 reproduction's experiments into an open
// registry of named, parameterized scenarios plus a worker-pool runner
// that executes any selection concurrently.
//
// Every experiment — each paper figure/table, every ablation, the live
// recovery pipeline, the nccltest benchmark — registers itself once under
// a stable name. Each scenario builds its own isolated sim.Engine, fabric
// and network from its own seeded RNG inside Run, so scenarios share no
// state and the parallel runner produces results byte-identical to a
// serial sweep (the engine's seq-ordered event queue guarantees each
// individual run is deterministic; the registry guarantees isolation).
package scenario

import (
	"context"
	"fmt"
)

// Result is what every scenario produces: a printable rendering of the
// paper's rows/series plus a shape check asserting the paper's
// qualitative claims against the measured numbers.
type Result interface {
	fmt.Stringer
	// CheckShape reports nil when the measurement matches the paper's
	// qualitative claim (who wins, by roughly what factor).
	CheckShape() error
}

// EventCounter is the slice of a sim.Engine a Ctx needs for accounting.
type EventCounter interface {
	Fired() uint64
}

// Ctx is the execution context handed to a scenario's Run: the seed all
// randomness must derive from, and an event-count accumulator fed by
// every engine the scenario builds. A Ctx belongs to exactly one run on
// one goroutine.
type Ctx struct {
	// Seed is the root seed; scenarios derive all RNG streams from it so
	// equal seeds give bit-identical results.
	Seed int64
	// Context carries the caller's cancellation signal. Long-running
	// scenario code may poll it and abandon work early; the runner also
	// refuses to start new scenarios once it is cancelled. It never
	// affects results of runs that complete: a scenario either finishes
	// bit-identically or reports a cancellation error.
	Context context.Context
	// Workers bounds any nested worker pool the scenario spawns (the
	// fault campaigns run trials concurrently); 0 means GOMAXPROCS. The
	// runner propagates its own bound here so `-workers 1` really is a
	// serial run.
	Workers int

	counters []EventCounter
}

// NewCtx returns a context for one scenario execution.
func NewCtx(seed int64) *Ctx { return &Ctx{Seed: seed, Context: context.Background()} }

// Track registers an engine (or anything that counts fired events) so the
// runner can report per-scenario event totals.
func (c *Ctx) Track(ec EventCounter) { c.counters = append(c.counters, ec) }

// Events sums fired events across every tracked engine.
func (c *Ctx) Events() uint64 {
	var total uint64
	for _, ec := range c.counters {
		total += ec.Fired()
	}
	return total
}

// Scenario is one named, parameterized experiment.
type Scenario struct {
	// Name is the stable identifier used by -scenario flags and tests
	// (e.g. "fig12", "ablation-kappa").
	Name string
	// Group classifies the scenario: "table", "figure", "ablation",
	// "pipeline" or "bench".
	Group string
	// Description is a one-line summary of what the scenario reproduces.
	Description string
	// Paper states the source paper's quantitative claim, for the
	// paper-vs-measured table in EXPERIMENTS.md.
	Paper string
	// Params documents the fixed parameters this registration binds
	// (e.g. {"spines": "4"} for the 2:1 oversubscription variant).
	Params map[string]string
	// Slow marks scenarios skipped under `go test -short`.
	Slow bool
	// Run executes the experiment. It must build every engine, fabric and
	// RNG from the Ctx so concurrent executions cannot interact.
	Run func(*Ctx) Result
	// Summarize renders a one-line measured headline from a Result
	// produced by Run (optional; used for EXPERIMENTS.md).
	Summarize func(Result) string
	// Metrics extracts the deterministic key numbers tracked by the
	// bench-regression guard (optional). Scenarios with a Metrics
	// extractor are included in `c4bench -json` baselines; CI fails when
	// a tracked number drifts from the committed baseline.
	Metrics func(Result) map[string]float64
}
