package scenario

import (
	"fmt"
	"io"
	"sort"
)

// FprintList writes the one-line-per-scenario enumeration shared by the
// CLIs' -list flags: grouped, alphabetical, slow sweeps marked.
func FprintList(w io.Writer, scns []Scenario) {
	sorted := append([]Scenario(nil), scns...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Group != sorted[j].Group {
			return sorted[i].Group < sorted[j].Group
		}
		return sorted[i].Name < sorted[j].Name
	})
	for _, s := range sorted {
		slow := ""
		if s.Slow {
			slow = " [slow]"
		}
		fmt.Fprintf(w, "%-16s %-9s %s%s\n", s.Name, s.Group, s.Description, slow)
	}
}

// FprintReport writes one scenario outcome — rendering plus shape verdict
// and execution stats — and reports whether it counts as a failure.
func FprintReport(w io.Writer, rep Report) (failed bool) {
	fmt.Fprintf(w, "=== %s (seed %d, %v, %d events)\n",
		rep.Name, rep.Seed, rep.Wall.Round(1e6), rep.Events)
	switch {
	case rep.Err != nil:
		fmt.Fprintf(w, "run failed: %v\n", rep.Err)
		return true
	case rep.ShapeErr != nil:
		fmt.Fprintln(w, rep.Result)
		fmt.Fprintf(w, "shape check FAILED: %v\n", rep.ShapeErr)
		return true
	default:
		fmt.Fprintln(w, rep.Result)
		fmt.Fprintln(w, "shape check: OK")
		return false
	}
}
