package metrics

import (
	"math"
	"testing"

	"c4/internal/sim"
)

// TestMeanStd pins the campaign-summary moment helper against the same
// NaN firewall the Jain/Ratio guards enforce: non-finite inputs drop out
// instead of poisoning the summary.
func TestMeanStd(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name     string
		in       []float64
		mean, sd float64
	}{
		{"nil", nil, 0, 0},
		{"empty", []float64{}, 0, 0},
		{"single", []float64{7}, 7, 0},
		{"pair", []float64{2, 4}, 3, 1},
		{"constant", []float64{5, 5, 5, 5}, 5, 0},
		{"spread", []float64{1, 2, 3, 4, 5}, 3, math.Sqrt(2)},
		{"nan-skipped", []float64{math.NaN(), 2, 4}, 3, 1},
		{"inf-skipped", []float64{inf, 2, 4}, 3, 1},
		{"neg-inf-skipped", []float64{math.Inf(-1), 2, 4}, 3, 1},
		{"only-nonfinite", []float64{math.NaN(), inf}, 0, 0},
		{"nonfinite-leaves-single", []float64{math.NaN(), 9}, 9, 0},
	}
	for _, tc := range cases {
		mean, sd := MeanStd(tc.in)
		if math.IsNaN(mean) || math.IsInf(mean, 0) || math.IsNaN(sd) || math.IsInf(sd, 0) {
			t.Fatalf("%s: MeanStd = (%v, %v), non-finite leaked", tc.name, mean, sd)
		}
		if math.Abs(mean-tc.mean) > 1e-12 || math.Abs(sd-tc.sd) > 1e-12 {
			t.Fatalf("%s: MeanStd = (%v, %v), want (%v, %v)", tc.name, mean, sd, tc.mean, tc.sd)
		}
	}
}

// TestMeanStdMatchesStddev ties the combined helper to the existing
// single-purpose functions so the two paths can never drift.
func TestMeanStdMatchesStddev(t *testing.T) {
	xs := []float64{3.2, 1.5, 8.8, 4.4, 0.1, 7.7}
	mean, sd := MeanStd(xs)
	if math.Abs(mean-Mean(xs)) > 1e-12 || math.Abs(sd-Stddev(xs)) > 1e-12 {
		t.Fatalf("MeanStd = (%v, %v), want (%v, %v)", mean, sd, Mean(xs), Stddev(xs))
	}
}

// TestBootstrapCI checks the interval behaves like a confidence interval:
// deterministic under equal seeds, bracketing the sample mean, tighter at
// lower confidence and wider at higher, shrinking with sample size.
func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 200)
	r := sim.NewRand(11)
	for i := range xs {
		xs[i] = 10 + 2*r.NormFloat64()
	}

	lo, hi := BootstrapCI(xs, 1000, 0.95, sim.NewRand(42))
	lo2, hi2 := BootstrapCI(xs, 1000, 0.95, sim.NewRand(42))
	if lo != lo2 || hi != hi2 {
		t.Fatalf("equal seeds: (%v,%v) vs (%v,%v), want bit-identical", lo, hi, lo2, hi2)
	}

	mean, _ := MeanStd(xs)
	if !(lo < mean && mean < hi) {
		t.Fatalf("interval (%v, %v) does not bracket the sample mean %v", lo, hi, mean)
	}

	lo80, hi80 := BootstrapCI(xs, 1000, 0.80, sim.NewRand(42))
	if hi80-lo80 >= hi-lo {
		t.Fatalf("80%% interval (%v, %v) not tighter than 95%% (%v, %v)", lo80, hi80, lo, hi)
	}

	lo50, hi50 := BootstrapCI(xs[:50], 1000, 0.95, sim.NewRand(42))
	if hi-lo >= hi50-lo50 {
		t.Fatalf("200-sample interval (%v, %v) not tighter than 50-sample (%v, %v)", lo, hi, lo50, hi50)
	}
}

// TestBootstrapCIHardened is the NaN-firewall table: degenerate and
// non-finite inputs must collapse the interval, never emit NaN.
func TestBootstrapCIHardened(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name   string
		in     []float64
		lo, hi float64
		exact  bool
	}{
		{"nil", nil, 0, 0, true},
		{"empty", []float64{}, 0, 0, true},
		{"single", []float64{3.5}, 3.5, 3.5, true},
		{"only-nonfinite", []float64{math.NaN(), inf, math.Inf(-1)}, 0, 0, true},
		{"nonfinite-leaves-single", []float64{math.NaN(), 4}, 4, 4, true},
		{"constant", []float64{2, 2, 2, 2}, 2, 2, true},
		{"nan-skipped", []float64{math.NaN(), 1, 2, 3}, 1, 3, false},
	}
	for _, tc := range cases {
		lo, hi := BootstrapCI(tc.in, 200, 0.95, sim.NewRand(1))
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
			t.Fatalf("%s: CI = (%v, %v), non-finite leaked", tc.name, lo, hi)
		}
		if lo > hi {
			t.Fatalf("%s: inverted interval (%v, %v)", tc.name, lo, hi)
		}
		if tc.exact && (lo != tc.lo || hi != tc.hi) {
			t.Fatalf("%s: CI = (%v, %v), want (%v, %v)", tc.name, lo, hi, tc.lo, tc.hi)
		}
		if !tc.exact && (lo < tc.lo || hi > tc.hi) {
			t.Fatalf("%s: CI = (%v, %v) outside data range (%v, %v)", tc.name, lo, hi, tc.lo, tc.hi)
		}
	}

	// Default arguments: resamples <= 0 and conf outside (0,1) fall back
	// rather than degenerate.
	lo, hi := BootstrapCI([]float64{1, 2, 3, 4}, 0, 0, sim.NewRand(1))
	if !(lo <= hi && lo >= 1 && hi <= 4) {
		t.Fatalf("default-arg CI = (%v, %v), want inside data range", lo, hi)
	}
}
