package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVWriter emits the time-series CSV files that the paper's C4a agents
// ship to the master (comm-stats.csv, coll-stats.csv, rank-stats.csv,
// conn-stats.csv). The schema is column-ordered and stable so the analyzer
// side can be tested against golden rows.
type CSVWriter struct {
	w      *csv.Writer
	header []string
	wrote  bool
}

// NewCSVWriter wraps an io.Writer with the given header.
func NewCSVWriter(w io.Writer, header ...string) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w), header: header}
}

// Write emits one row; the header is written lazily before the first row.
// Values are formatted with %v except float64, which uses full precision.
func (c *CSVWriter) Write(values ...any) error {
	if !c.wrote {
		if err := c.w.Write(c.header); err != nil {
			return err
		}
		c.wrote = true
	}
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = strconv.FormatFloat(x, 'g', -1, 64)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	if len(row) != len(c.header) {
		return fmt.Errorf("metrics: row has %d cells, header has %d", len(row), len(c.header))
	}
	return c.w.Write(row)
}

// Flush flushes buffered rows and reports any write error.
func (c *CSVWriter) Flush() error {
	c.w.Flush()
	return c.w.Error()
}

// WriteSeries emits a (t,v) series as CSV.
func WriteSeries(w io.Writer, s *Series) error {
	cw := NewCSVWriter(w, "t_seconds", s.Name)
	for _, p := range s.Samples {
		if err := cw.Write(p.T, p.V); err != nil {
			return err
		}
	}
	return cw.Flush()
}
