// Package metrics provides the measurement plumbing shared by the C4
// reproduction: time series, histograms, robust statistics (median/MAD, the
// basis of C4D's slow-detection thresholds), CSV emission matching the
// paper's comm/coll/rank/conn stats files, and ASCII rendering for the
// experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is one (time, value) observation. Time is in seconds of virtual
// time so series stay unit-agnostic.
type Sample struct {
	T float64
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name    string
	Samples []Sample
}

// Add appends an observation.
func (s *Series) Add(t, v float64) { s.Samples = append(s.Samples, Sample{T: t, V: v}) }

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Values returns just the observation values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, p := range s.Samples {
		out[i] = p.V
	}
	return out
}

// Last returns the most recent value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].V
}

// Mean reports the arithmetic mean of the values (0 when empty).
func (s *Series) Mean() float64 { return Mean(s.Values()) }

// Min reports the minimum value (0 when empty).
func (s *Series) Min() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	m := s.Samples[0].V
	for _, p := range s.Samples[1:] {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Max reports the maximum value (0 when empty).
func (s *Series) Max() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	m := s.Samples[0].V
	for _, p := range s.Samples[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Window returns the samples with from <= T < to.
func (s *Series) Window(from, to float64) []Sample {
	var out []Sample
	for _, p := range s.Samples {
		if p.T >= from && p.T < to {
			out = append(out, p)
		}
	}
	return out
}

// Mean reports the arithmetic mean (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min reports the smallest element (0 when empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max reports the largest element (0 when empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum reports the total of the elements.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Jain reports Jain's fairness index (Σx)²/(n·Σx²) over non-negative
// allocations: 1.0 when every tenant gets an equal share, approaching 1/n
// when one tenant starves the rest. 0 when the input is empty or all-zero.
// Non-finite inputs (NaN, ±Inf — e.g. a goodput computed over a zero
// span upstream) are skipped rather than poisoning the index: its output
// lands in `c4bench -json` baselines, where NaN is both meaningless and
// unserializable.
func Jain(xs []float64) float64 {
	var sum, sq float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		n++
		sum += x
		sq += x * x
	}
	if n == 0 || sq <= 0 {
		return 0
	}
	return sum * sum / (float64(n) * sq)
}

// Ratio is the guarded division shared by the goodput and gain
// extractors: num/den, but 0 whenever the denominator is zero/negative or
// either side is non-finite — the NaN/Inf firewall in front of every
// tracked metric.
func Ratio(num, den float64) float64 {
	if den <= 0 || math.IsNaN(num) || math.IsInf(num, 0) ||
		math.IsNaN(den) || math.IsInf(den, 0) {
		return 0
	}
	return num / den
}

// MeanStd reports the mean and population standard deviation over the
// finite elements of xs, with the same NaN/Inf firewall as Jain and
// Ratio: non-finite inputs (a ratio computed over a zero span upstream)
// are skipped rather than poisoning both moments, because the output
// lands in campaign summaries and `c4bench -json` baselines where NaN is
// meaningless and unserializable. Empty (or all-non-finite) input yields
// (0, 0); a single sample yields (x, 0).
func MeanStd(xs []float64) (mean, std float64) {
	var sum float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		n++
		sum += x
	}
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(n))
}

// Stddev reports the population standard deviation (0 when len < 2).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median reports the middle value (0 when empty). The input is not mutated.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MAD reports the median absolute deviation, the robust dispersion measure
// C4D's analyzers use so a single faulty worker cannot poison the baseline.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// Percentile reports the p-th percentile (p in [0,100]) using linear
// interpolation. The input is not mutated.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	pos := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Histogram is a fixed-bucket histogram.
type Histogram struct {
	Bounds []float64 // ascending upper bounds; final bucket is +Inf
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	h.total++
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Total reports the observation count.
func (h *Histogram) Total() int { return h.total }

// Table renders rows of cells with a header, padded for terminals; it is
// how the harness prints each reproduced paper table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Bars renders a labeled horizontal bar chart scaled to maxWidth columns;
// used for figure-shaped results.
func Bars(labels []string, values []float64, maxWidth int) string {
	maxV := Max(values)
	if maxV <= 0 {
		maxV = 1
	}
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := int(v / maxV * float64(maxWidth))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s | %s %.2f\n", lw, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}
