// Bootstrap confidence intervals for campaign statistics. A 10k-trial
// Monte-Carlo sweep reports not just a mean goodput delta but how sure
// the sweep is of it; the percentile bootstrap makes no distributional
// assumption, which matters because per-trial deltas are multi-modal
// (fault cocktails that steering can dodge vs ones it cannot).

package metrics

import (
	"math"

	"c4/internal/sim"
)

// BootstrapCI estimates a two-sided percentile-bootstrap confidence
// interval for the mean of xs at the given confidence level (e.g. 0.95):
// resamples bootstrap replicates are drawn with replacement from the
// finite elements of xs using the seeded RNG, and the interval is the
// (alpha/2, 1-alpha/2) percentile pair of the replicate means.
//
// Determinism contract: equal (xs, resamples, conf, seed of r) produce
// bit-identical intervals — the RNG is the caller-seeded sim.Rand, the
// resample loop is sequential, and the percentile is the deterministic
// sorted-interpolation in Percentile. Campaign merge outputs are
// byte-compared across shardings, so this function must never consult
// any other entropy source.
//
// The NaN firewall mirrors MeanStd: non-finite inputs are dropped first.
// Degenerate inputs collapse the interval: empty input yields (0, 0) and
// a single sample yields (x, x). The RNG is consumed even for resamples
// over degenerate input only when sampling actually happens, so callers
// sharing one RNG across metrics must compute them in a fixed order.
func BootstrapCI(xs []float64, resamples int, conf float64, r *sim.Rand) (lo, hi float64) {
	var finite []float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		finite = append(finite, x)
	}
	if len(finite) == 0 {
		return 0, 0
	}
	if len(finite) == 1 {
		return finite[0], finite[0]
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	means := make([]float64, resamples)
	for i := range means {
		var sum float64
		for j := 0; j < len(finite); j++ {
			sum += finite[r.Intn(len(finite))]
		}
		means[i] = sum / float64(len(finite))
	}
	alpha := (1 - conf) / 2
	return Percentile(means, alpha*100), Percentile(means, (1-alpha)*100)
}
