package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func sampleReport() BenchReport {
	return BenchReport{
		Seed: 1,
		Scenarios: []BenchScenario{
			{Name: "fig9", Events: 1000, Metrics: map[string]float64{"busbw": 360.0}},
			{Name: "campaign/flap", Events: 5000, Metrics: map[string]float64{"recall": 1.0, "delta": 0.5}},
		},
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffBenchReports(rep, got, 0.0001); len(diffs) != 0 {
		t.Fatalf("round trip drifted: %v", diffs)
	}
	// Canonical form: scenarios sorted by name.
	if got.Scenarios[0].Name != "campaign/flap" {
		t.Fatalf("report not sorted: %v", got.Scenarios)
	}
}

func TestBenchReportCanonicalBytes(t *testing.T) {
	var a, b bytes.Buffer
	rep := sampleReport()
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	// Reversed input order must serialize identically.
	rev := sampleReport()
	rev.Scenarios[0], rev.Scenarios[1] = rev.Scenarios[1], rev.Scenarios[0]
	if err := rev.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("serialization not canonical:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestDiffDetectsDrift(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Scenarios[0].Metrics["busbw"] = 360 * 1.08 // +8% > 5%
	diffs := DiffBenchReports(base, cur, 0.05)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "busbw") {
		t.Fatalf("diffs = %v, want one busbw drift", diffs)
	}
	// Within tolerance: no complaint.
	cur.Scenarios[0].Metrics["busbw"] = 360 * 1.04
	if diffs := DiffBenchReports(base, cur, 0.05); len(diffs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", diffs)
	}
}

func TestDiffDetectsEventDrift(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Scenarios[1].Events = 6000 // +20%
	diffs := DiffBenchReports(base, cur, 0.05)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "events") {
		t.Fatalf("diffs = %v, want one event-count drift", diffs)
	}
}

func TestDiffDetectsMissingAndNew(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Scenarios = cur.Scenarios[:1] // drop campaign/flap
	cur.Scenarios = append(cur.Scenarios, BenchScenario{Name: "novel", Events: 1})
	diffs := DiffBenchReports(base, cur, 0.05)
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "campaign/flap: missing") {
		t.Fatalf("missing scenario not reported: %v", diffs)
	}
	if !strings.Contains(joined, "novel: not in baseline") {
		t.Fatalf("new scenario not reported: %v", diffs)
	}
}

func TestDiffDetectsMetricChanges(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	delete(cur.Scenarios[1].Metrics, "recall")
	cur.Scenarios[1].Metrics["novel_metric"] = 1
	diffs := DiffBenchReports(base, cur, 0.05)
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, `metric "recall" missing`) {
		t.Fatalf("dropped metric not reported: %v", diffs)
	}
	if !strings.Contains(joined, `new metric "novel_metric"`) {
		t.Fatalf("new metric not reported: %v", diffs)
	}
}

func TestDiffSeedMismatch(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Seed = 2
	if diffs := DiffBenchReports(base, cur, 0.05); len(diffs) == 0 {
		t.Fatal("seed mismatch not reported")
	}
}

func TestRelDriftNearZero(t *testing.T) {
	// A metric moving off a zero baseline must trip the guard even though
	// the relative change is undefined — including moves smaller than the
	// relative tolerance (a 0 -> 0.01 false-alarm rate is a regression).
	if _, bad := relDrift(0, 0.2, 0.05); !bad {
		t.Fatal("zero-baseline drift not flagged")
	}
	if _, bad := relDrift(0, 0.01, 0.05); !bad {
		t.Fatal("sub-tolerance zero-baseline drift not flagged")
	}
	if _, bad := relDrift(0, 0, 0.05); bad {
		t.Fatal("zero-to-zero flagged")
	}
}

func TestReadBenchReportRejectsGarbage(t *testing.T) {
	if _, err := ReadBenchReport(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
