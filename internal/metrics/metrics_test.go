package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "bw"}
	for i := 0; i < 5; i++ {
		s.Add(float64(i), float64(i*10))
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Last() != 40 {
		t.Fatalf("last = %v", s.Last())
	}
	if s.Mean() != 20 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 0 || s.Max() != 40 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	w := s.Window(1, 3)
	if len(w) != 2 || w[0].V != 10 || w[1].V != 20 {
		t.Fatalf("window = %v", w)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := &Series{}
	if s.Last() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestMedianAndMAD(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if got := Median(xs); got != 3 {
		t.Fatalf("median = %v", got)
	}
	// Deviations from 3: 2,1,0,1,97 -> median 1.
	if got := MAD(xs); got != 1 {
		t.Fatalf("MAD = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	if Median(nil) != 0 || MAD(nil) != 0 {
		t.Fatal("empty robust stats should be 0")
	}
	// Median must not mutate its input.
	orig := []float64{3, 1, 2}
	Median(orig)
	if orig[0] != 3 {
		t.Fatal("Median mutated its input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {150, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
	if Stddev([]float64{1}) != 0 {
		t.Fatal("single-element stddev should be 0")
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: Jain = %v, want 1", got)
	}
	// One tenant hogs everything: index collapses toward 1/n.
	if got := Jain([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("starved shares: Jain = %v, want 0.25", got)
	}
	if Jain(nil) != 0 || Jain([]float64{0, 0}) != 0 {
		t.Fatal("empty/all-zero input should yield 0")
	}
	got := Jain([]float64{4, 2})
	want := 36.0 / (2 * 20)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Jain(4,2) = %v, want %v", got, want)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	want := []int{1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"x", "1"}, {"yyyy", "2"}})
	if !strings.Contains(out, "long-header") {
		t.Fatal("missing header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// All lines padded to the same visual width structure.
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatal("missing separator")
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"a", "b"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Fatalf("max bar should be full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Fatalf("half bar wrong: %q", lines[0])
	}
	if Bars([]string{"z"}, []float64{0}, 5) == "" {
		t.Fatal("zero values should still render")
	}
}

func TestCSVWriter(t *testing.T) {
	var b strings.Builder
	w := NewCSVWriter(&b, "t", "v")
	if err := w.Write(1.5, "x"); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(2, 3.25); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "t,v\n1.5,x\n2,3.25\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
	if err := w.Write(1, 2, 3); err == nil {
		t.Fatal("mismatched row width should error")
	}
}

func TestWriteSeries(t *testing.T) {
	s := &Series{Name: "bw"}
	s.Add(0, 100)
	s.Add(1, 200)
	var b strings.Builder
	if err := WriteSeries(&b, s); err != nil {
		t.Fatal(err)
	}
	if b.String() != "t_seconds,bw\n0,100\n1,200\n" {
		t.Fatalf("series csv = %q", b.String())
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(xs, p1), Percentile(xs, p2)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return lo <= hi+1e-9 && lo >= sorted[0]-1e-9 && hi <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MAD is invariant under shifting all values by a constant.
func TestMADShiftInvariantProperty(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		shift := math.Mod(shiftRaw, 1e6)
		if math.IsNaN(shift) {
			shift = 0
		}
		shifted := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + shift
		}
		return math.Abs(MAD(xs)-MAD(shifted)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestJainHardened is the table-driven guard for the bench-JSON firewall:
// no input shape — empty, all-zero, single, skewed, or polluted with
// non-finite values — may ever produce NaN/Inf.
func TestJainHardened(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"nil", nil, 0},
		{"empty", []float64{}, 0},
		{"all-zero", []float64{0, 0, 0}, 0},
		{"single", []float64{7}, 1},
		{"equal", []float64{3, 3, 3}, 1},
		{"starved", []float64{10, 0, 0, 0}, 0.25},
		{"nan-skipped", []float64{math.NaN(), 5, 5}, 1},
		{"inf-skipped", []float64{inf, 5, 5}, 1},
		{"neg-inf-skipped", []float64{math.Inf(-1), 5, 5}, 1},
		{"only-nonfinite", []float64{math.NaN(), inf}, 0},
	}
	for _, tc := range cases {
		got := Jain(tc.in)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: Jain = %v, non-finite leaked", tc.name, got)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("%s: Jain = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRatio pins the shared goodput-extractor guard.
func TestRatio(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name     string
		num, den float64
		want     float64
	}{
		{"normal", 10, 4, 2.5},
		{"zero-den", 10, 0, 0},
		{"negative-den", 10, -1, 0},
		{"zero-num", 0, 4, 0},
		{"nan-num", math.NaN(), 4, 0},
		{"inf-num", inf, 4, 0},
		{"nan-den", 10, math.NaN(), 0},
		{"inf-den", 10, inf, 0},
	}
	for _, tc := range cases {
		got := Ratio(tc.num, tc.den)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: Ratio = %v, non-finite leaked", tc.name, got)
		}
		if got != tc.want {
			t.Fatalf("%s: Ratio(%v, %v) = %v, want %v", tc.name, tc.num, tc.den, got, tc.want)
		}
	}
}
