// Bench-regression baselines: the JSON report `c4bench -json` emits and
// `benchdiff` compares. Every number in a report is deterministic (the
// simulator is seed-stable), so any drift beyond tolerance is a behavioral
// change — intended ones regenerate the committed baseline, unintended
// ones fail CI.

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// BenchScenario is one tracked scenario's numbers.
type BenchScenario struct {
	Name string `json:"name"`
	// Events is the simulation-event count, a cheap whole-run fingerprint.
	Events uint64 `json:"events"`
	// Metrics are the scenario's headline numbers (busbw, precision, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// BenchReport is a full baseline.
type BenchReport struct {
	Seed      int64           `json:"seed"`
	Scenarios []BenchScenario `json:"scenarios"`
}

// Sort orders scenarios by name so reports serialize canonically.
func (r *BenchReport) Sort() {
	sort.Slice(r.Scenarios, func(i, j int) bool {
		return r.Scenarios[i].Name < r.Scenarios[j].Name
	})
}

// WriteJSON emits the canonical (sorted, indented) form.
func (r BenchReport) WriteJSON(w io.Writer) error {
	r.Sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport parses a report.
func ReadBenchReport(rd io.Reader) (BenchReport, error) {
	var r BenchReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return BenchReport{}, fmt.Errorf("metrics: bad bench report: %w", err)
	}
	r.Sort()
	return r, nil
}

// DiffBenchReports compares a current report against a committed baseline
// and returns one human-readable line per violation: a tracked metric (or
// event count) drifting beyond tol (relative, e.g. 0.05 = 5%), a scenario
// missing from the current report, or an untracked newcomer (which should
// regenerate the baseline instead of slipping in silently).
func DiffBenchReports(base, cur BenchReport, tol float64) []string {
	var out []string
	if base.Seed != cur.Seed {
		out = append(out, fmt.Sprintf("seed mismatch: baseline %d vs current %d", base.Seed, cur.Seed))
	}
	curBy := map[string]BenchScenario{}
	for _, s := range cur.Scenarios {
		curBy[s.Name] = s
	}
	baseNames := map[string]bool{}
	for _, b := range base.Scenarios {
		baseNames[b.Name] = true
		c, ok := curBy[b.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from current report", b.Name))
			continue
		}
		if drift, bad := relDrift(float64(b.Events), float64(c.Events), tol); bad {
			out = append(out, fmt.Sprintf("%s: events %d -> %d (%+.1f%%, tol %.0f%%)",
				b.Name, b.Events, c.Events, drift*100, tol*100))
		}
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cv, ok := c.Metrics[k]
			if !ok {
				out = append(out, fmt.Sprintf("%s: metric %q missing from current report", b.Name, k))
				continue
			}
			if drift, bad := relDrift(b.Metrics[k], cv, tol); bad {
				out = append(out, fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%, tol %.0f%%)",
					b.Name, k, b.Metrics[k], cv, drift*100, tol*100))
			}
		}
		newKeys := make([]string, 0, len(c.Metrics))
		for k := range c.Metrics {
			if _, ok := b.Metrics[k]; !ok {
				newKeys = append(newKeys, k)
			}
		}
		sort.Strings(newKeys)
		for _, k := range newKeys {
			out = append(out, fmt.Sprintf("%s: new metric %q not in baseline (regenerate it)", b.Name, k))
		}
	}
	for _, c := range cur.Scenarios {
		if !baseNames[c.Name] {
			out = append(out, fmt.Sprintf("%s: not in baseline (regenerate it)", c.Name))
		}
	}
	return out
}

// relDrift reports the relative change and whether it exceeds tolerance.
// A zero baseline is special: every tracked metric is deterministic, so a
// metric pinned at exactly zero (e.g. a false-alarm rate) moving off zero
// at all is a behavioral change — no relative tolerance can express that,
// and granting it the relative tolerance as an absolute budget would let
// real regressions slide. Anything beyond float noise trips the guard.
func relDrift(base, cur, tol float64) (float64, bool) {
	denom := math.Abs(base)
	if denom < 1e-9 {
		return cur - base, math.Abs(cur-base) > 1e-9
	}
	d := (cur - base) / denom
	return d, math.Abs(d) > tol
}
