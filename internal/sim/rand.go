package sim

import "math/rand"

// Rand is a seeded random source used by all stochastic model components.
// It wraps math/rand.Rand with the handful of distributions the simulator
// needs, so models never reach for the global source (which would break
// determinism).
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform int in [0,n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (r *Rand) Int63() int64 { return r.r.Int63() }

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// NormFloat64 returns a standard normal sample.
func (r *Rand) NormFloat64() float64 { return r.r.NormFloat64() }

// Exp returns an exponential sample with the given mean. A non-positive
// mean yields zero, which models a deterministic "immediately" arrival.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.r.ExpFloat64() * mean
}

// ExpTime returns an exponentially distributed virtual-time span with the
// given mean span.
func (r *Rand) ExpTime(mean Time) Time {
	return Time(r.Exp(float64(mean)))
}

// Normal returns a normal sample with the given mean and stddev, clamped
// to be non-negative (durations and sizes cannot go below zero).
func (r *Rand) Normal(mean, stddev float64) float64 {
	v := mean + stddev*r.r.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// NormalTime returns a clamped normal virtual-time span.
func (r *Rand) NormalTime(mean, stddev Time) Time {
	return Time(r.Normal(float64(mean), float64(stddev)))
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
func (r *Rand) Jitter(d Time, frac float64) Time {
	if frac <= 0 {
		return d
	}
	f := 1 + frac*(2*r.r.Float64()-1)
	return Time(float64(d) * f)
}

// Pick returns a uniformly chosen index weighted by the given
// non-negative weights. If all weights are zero it falls back to uniform.
func (r *Rand) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Fork derives an independent deterministic sub-source, so components can
// consume randomness without perturbing each other's streams.
func (r *Rand) Fork() *Rand {
	return NewRand(r.r.Int63())
}
