// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which — together with the seeded random source in rand.go —
// makes every simulation in this repository reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. It intentionally mirrors time.Duration semantics so
// durations and instants compose naturally.
type Time int64

// Common time constants, re-exported so callers do not need to juggle
// conversions between time.Duration and sim.Time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
	Day              = 24 * Hour

	// MaxTime is the largest representable instant; used as "never".
	MaxTime Time = math.MaxInt64
)

// Seconds reports the instant as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the virtual instant to a time.Duration offset.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromSeconds converts floating-point seconds to a virtual time offset.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromDuration converts a time.Duration to a virtual time offset.
func FromDuration(d time.Duration) Time { return Time(d) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. It is returned by the Schedule methods so
// callers can cancel pending events.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	eng    *Engine
	index  int // heap index; -1 when not queued
	cancel bool
}

// At reports the instant the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 && e.eng != nil {
		e.eng.dead++
		e.eng.stats.cancelled++
		e.eng.maybeCompact()
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on the caller's
// goroutine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	dead    int // cancelled events still sitting in the queue
	ids     map[string]int
	stats   queueCounters
}

// queueCounters is the engine's lifetime accounting, surfaced via
// QueueStats. Counters only ever increase; the high-water marks record the
// worst pressure the queue has seen, which is what capacity planning and
// the compaction heuristic regressions care about.
type queueCounters struct {
	scheduled   uint64
	cancelled   uint64
	rescheduled uint64
	compactions uint64
	hiLive      int // max Pending() observed
	hiHeap      int // max physical heap length observed
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// NextID returns the next identifier in the named sequence, starting at 1.
// Model components allocate their identifiers (communicator IDs, queue-pair
// numbers) here rather than from package globals, so IDs are stable per
// simulation regardless of what else ran in the process — a requirement for
// deterministic replay — and race-free when simulations run concurrently.
func (e *Engine) NextID(seq string) int {
	if e.ids == nil {
		e.ids = make(map[string]int)
	}
	e.ids[seq]++
	return e.ids[seq]
}

// Fired reports how many events have executed so far. Useful for tests and
// for detecting runaway simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of live (non-cancelled) events currently
// queued. Cancelled events may physically linger until lazily discarded or
// compacted, but they never count here and never fire.
func (e *Engine) Pending() int { return len(e.queue) - e.dead }

// QueueStats is a snapshot of event-queue pressure and lifetime churn.
// Len is the physical heap length, Dead the cancelled events still parked
// in it, and Live their difference — always equal to Pending(). The two
// can disagree transiently between a Cancel and the next compaction or
// head-pop; exposing both makes that window observable instead of a
// source of confusion.
type QueueStats struct {
	Len           int    // physical heap length right now
	Dead          int    // cancelled events still occupying heap slots
	Live          int    // Len - Dead; identical to Pending()
	HighWater     int    // maximum Live ever observed at schedule time
	HeapHighWater int    // maximum Len ever observed (includes dead weight)
	Scheduled     uint64 // total events ever scheduled
	Cancelled     uint64 // total queued events cancelled
	Rescheduled   uint64 // total in-place Reschedule moves
	Compactions   uint64 // times the dead-majority compaction ran
}

// QueueStats reports the current queue pressure and lifetime counters.
func (e *Engine) QueueStats() QueueStats {
	return QueueStats{
		Len:           len(e.queue),
		Dead:          e.dead,
		Live:          len(e.queue) - e.dead,
		HighWater:     e.stats.hiLive,
		HeapHighWater: e.stats.hiHeap,
		Scheduled:     e.stats.scheduled,
		Cancelled:     e.stats.cancelled,
		Rescheduled:   e.stats.rescheduled,
		Compactions:   e.stats.compactions,
	}
}

// maybeCompact physically removes cancelled events once they make up the
// majority of a non-trivial queue. Long-running models that cancel and
// re-arm timers constantly (flow reroutes, hang-alarm pushback) would
// otherwise grow the heap without bound between pops. Compaction preserves
// every live event's (at, seq) key, so the fire order — and therefore every
// downstream measurement — is unchanged.
func (e *Engine) maybeCompact() {
	if e.dead < 64 || e.dead*2 <= len(e.queue) {
		return
	}
	live := e.queue[:0]
	for _, ev := range e.queue {
		if ev.cancel {
			ev.index = -1
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live
	for i, ev := range e.queue {
		ev.index = i
	}
	heap.Init(&e.queue)
	e.dead = 0
	e.stats.compactions++
}

// Reschedule moves a still-queued event to a new instant in place
// (container/heap Fix) instead of cancelling it and allocating a
// replacement. The event is assigned a fresh scheduling sequence number, so
// among same-instant events it fires exactly where a newly created event
// would — rescheduling is behaviorally indistinguishable from
// cancel-plus-Schedule, minus the garbage and heap churn. It reports false
// when the event is nil, already fired, or cancelled; callers then fall
// back to scheduling a new event.
func (e *Engine) Reschedule(ev *Event, at Time) bool {
	if ev == nil || ev.cancel || ev.index < 0 {
		return false
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	ev.at = at
	e.seq++
	ev.seq = e.seq
	heap.Fix(&e.queue, ev.index)
	e.stats.rescheduled++
	return true
}

// Schedule queues fn to run at the absolute instant at. Scheduling in the
// past panics: it always indicates a model bug, and silently reordering
// time would corrupt every downstream measurement.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, eng: e, index: -1}
	heap.Push(&e.queue, ev)
	e.stats.scheduled++
	if n := len(e.queue); n > e.stats.hiHeap {
		e.stats.hiHeap = n
	}
	if live := len(e.queue) - e.dead; live > e.stats.hiLive {
		e.stats.hiLive = live
	}
	return ev
}

// After queues fn to run delay after the current instant.
func (e *Engine) After(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.Schedule(e.now+delay, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// step executes the next event. It reports false when the queue is empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			e.dead--
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to exactly deadline (if it is in the future).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		next := e.peek()
		if next.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for the given span of virtual time from now.
func (e *Engine) RunFor(span Time) { e.RunUntil(e.now + span) }

func (e *Engine) peek() *Event {
	// Cancelled events may sit at the head; skip them without firing.
	for len(e.queue) > 0 && e.queue[0].cancel {
		heap.Pop(&e.queue)
		e.dead--
	}
	if len(e.queue) == 0 {
		return &Event{at: MaxTime}
	}
	return e.queue[0]
}

// NextEventAt reports the instant of the next pending event, or MaxTime if
// the queue is empty.
func (e *Engine) NextEventAt() Time { return e.peek().at }
