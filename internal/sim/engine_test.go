package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false")
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.After(10, func() {
		at = append(at, e.Now())
		e.After(5, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Fatalf("times = %v", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i*Second, func() { count++ })
	}
	e.RunUntil(5 * Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5*Second {
		t.Fatalf("now = %v", e.Now())
	}
	e.RunUntil(20 * Second)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 20*Second {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine()
	if e.NextEventAt() != MaxTime {
		t.Fatal("empty queue should report MaxTime")
	}
	ev := e.Schedule(42, func() {})
	if e.NextEventAt() != 42 {
		t.Fatalf("next = %v", e.NextEventAt())
	}
	ev.Cancel()
	if e.NextEventAt() != MaxTime {
		t.Fatal("cancelled head should be skipped")
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	e := NewEngine()
	var fired []int
	head := e.Schedule(10, func() { fired = append(fired, 1) })
	e.Schedule(20, func() { fired = append(fired, 2) })
	head.Cancel()
	e.RunUntil(30)
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want only the live event", fired)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30 (clock advances past cancelled head)", e.Now())
	}
}

func TestNextEventAtDiscardsCancelledRun(t *testing.T) {
	e := NewEngine()
	// A stack of cancelled events at the head must all be skipped without
	// firing, exposing the first live timestamp behind them.
	for i := Time(1); i <= 5; i++ {
		e.Schedule(i, func() {}).Cancel()
	}
	live := e.Schedule(9, func() {})
	if at := e.NextEventAt(); at != 9 {
		t.Fatalf("next = %v, want 9", at)
	}
	live.Cancel()
	if at := e.NextEventAt(); at != MaxTime {
		t.Fatalf("next = %v, want MaxTime after cancelling all", at)
	}
	if e.Fired() != 0 {
		t.Fatalf("peeking fired %d events", e.Fired())
	}
}

func TestSchedulePastPanicsDirectly(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run() // clock now at 10
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling before now")
		}
	}()
	e.Schedule(5, func() {})
}

func TestFiredAndPendingAccounting(t *testing.T) {
	e := NewEngine()
	evs := make([]*Event, 4)
	for i := range evs {
		evs[i] = e.Schedule(Time(i+1)*10, func() {})
	}
	if e.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", e.Pending())
	}
	evs[1].Cancel()
	// A cancelled event may stay physically queued (lazily discarded), but
	// Pending counts only live events.
	if e.Pending() != 3 {
		t.Fatalf("pending after cancel = %d, want 3 (cancelled events are not pending)", e.Pending())
	}
	e.Run()
	if e.Fired() != 3 {
		t.Fatalf("fired = %d, want 3 (cancelled event must not count)", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d, want 0", e.Pending())
	}
	if !evs[1].Cancelled() {
		t.Fatal("cancelled flag lost")
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine()
	var got []int
	ev := e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if !e.Reschedule(ev, 30) {
		t.Fatal("Reschedule of a queued event must succeed")
	}
	if ev.At() != 30 {
		t.Fatalf("At = %v, want 30", ev.At())
	}
	e.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("order = %v, want [2 1]", got)
	}
	if e.Fired() != 2 {
		t.Fatalf("fired = %d, want 2 (rescheduling must not double-fire)", e.Fired())
	}
}

// Reschedule must be ordering-equivalent to cancel-plus-Schedule: among
// same-instant events the rescheduled one gets a fresh sequence number and
// fires last, exactly like a newly created event would.
func TestRescheduleFreshSeqOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	ev := e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 2) })
	e.Reschedule(ev, 10)
	e.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("order = %v, want [2 1] (rescheduled event must fire like a fresh one)", got)
	}
}

func TestRescheduleDeadEvents(t *testing.T) {
	e := NewEngine()
	fired := e.Schedule(5, func() {})
	cancelled := e.Schedule(6, func() {})
	cancelled.Cancel()
	e.Run()
	if e.Reschedule(fired, 10) {
		t.Fatal("Reschedule of a fired event must fail")
	}
	if e.Reschedule(cancelled, 10) {
		t.Fatal("Reschedule of a cancelled event must fail")
	}
	if e.Reschedule(nil, 10) {
		t.Fatal("Reschedule of nil must fail")
	}
}

func TestReschedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	ev := e.Schedule(20, func() {})
	e.RunUntil(15)
	defer func() {
		if recover() == nil {
			t.Error("expected panic rescheduling before now")
		}
	}()
	e.Reschedule(ev, 5)
}

// A cancel-heavy run must not accumulate dead events: once cancelled events
// dominate the queue they are compacted away, keeping both Pending and the
// physical heap bounded by the live set.
func TestCancelledEventsCompacted(t *testing.T) {
	e := NewEngine()
	evs := make([]*Event, 2000)
	for i := range evs {
		evs[i] = e.Schedule(Time(i+1), func() {})
	}
	for i, ev := range evs {
		if i%20 != 0 { // cancel 95%, keep 100 live
			ev.Cancel()
		}
	}
	if e.Pending() != 100 {
		t.Fatalf("pending = %d, want 100", e.Pending())
	}
	if len(e.queue) >= 2000 {
		t.Fatalf("queue len = %d, want compacted below the scheduled total", len(e.queue))
	}
	if len(e.queue) > 2*100+64 {
		t.Fatalf("queue len = %d, dead events dominate after compaction", len(e.queue))
	}
	e.Run()
	if e.Fired() != 100 {
		t.Fatalf("fired = %d, want 100", e.Fired())
	}
	if e.Pending() != 0 || e.dead != 0 {
		t.Fatalf("pending=%d dead=%d after run, want 0/0", e.Pending(), e.dead)
	}
}

// Compaction must not disturb the deterministic fire order of the
// surviving events.
func TestCompactionPreservesOrder(t *testing.T) {
	e := NewEngine()
	var want, got []Time
	evs := make([]*Event, 1000)
	for i := range evs {
		at := Time((i*37)%997 + 1) // scrambled but deterministic
		evs[i] = e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	for i, ev := range evs {
		if i%4 == 0 {
			ev.Cancel()
		} else {
			want = append(want, ev.At())
		}
	}
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("fire order went backwards at %d: %v < %v", i, got[i], got[i-1])
		}
	}
}

func TestRunForAdvancesEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.RunFor(5 * Second)
	if e.Now() != 5*Second {
		t.Fatalf("now = %v, want 5s with an empty queue", e.Now())
	}
	count := 0
	e.Schedule(7*Second, func() { count++ })
	e.RunFor(1 * Second) // to 6s: nothing fires
	if count != 0 || e.Now() != 6*Second {
		t.Fatalf("count=%d now=%v, want 0 at 6s", count, e.Now())
	}
	e.RunFor(10 * Second) // past the event and beyond the queue
	if count != 1 || e.Now() != 16*Second {
		t.Fatalf("count=%d now=%v, want 1 at 16s", count, e.Now())
	}
}

func TestNextIDSequences(t *testing.T) {
	e := NewEngine()
	if e.NextID("comm") != 1 || e.NextID("comm") != 2 {
		t.Fatal("sequence not monotonically increasing from 1")
	}
	if e.NextID("qpn") != 1 {
		t.Fatal("sequences must be independent per name")
	}
	// A fresh engine restarts every sequence: identifiers are simulation-
	// scoped, never process-scoped.
	if NewEngine().NextID("comm") != 1 {
		t.Fatal("new engine must restart sequences")
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v", got)
	}
	if (3 * Second).String() != "3s" {
		t.Fatalf("String = %q", (3 * Second).String())
	}
}

// Property: events always fire in non-decreasing time order regardless of
// the scheduling order.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, o := range offsets {
			at := Time(o)
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandPick(t *testing.T) {
	r := NewRand(1)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[r.Pick([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket picked %d times", counts[1])
	}
	if counts[2] < counts[0] {
		t.Fatalf("weights not respected: %v", counts)
	}
	// All-zero weights fall back to uniform without panicking.
	_ = r.Pick([]float64{0, 0})
}

func TestRandClamps(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if r.Normal(0.001, 10) < 0 {
			t.Fatal("Normal returned negative")
		}
	}
	if r.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestRandJitter(t *testing.T) {
	r := NewRand(4)
	for i := 0; i < 1000; i++ {
		d := r.Jitter(1000, 0.1)
		if d < 900 || d > 1100 {
			t.Fatalf("jitter out of range: %v", d)
		}
	}
	if r.Jitter(123, 0) != 123 {
		t.Fatal("zero jitter should be identity")
	}
}

// TestQueueStatsCompactionEdge pins the window where Pending() and the
// physical heap disagree: cancelled events keep their heap slots until the
// dead-majority compaction (or a head pop) reclaims them, so Len > Live
// transiently while Pending() stays correct throughout.
func TestQueueStatsCompactionEdge(t *testing.T) {
	e := NewEngine()
	evs := make([]*Event, 100)
	for i := range evs {
		evs[i] = e.Schedule(Time(i+1), func() {})
	}
	st := e.QueueStats()
	if st.Len != 100 || st.Dead != 0 || st.Live != 100 {
		t.Fatalf("after scheduling: %+v", st)
	}
	if st.HighWater != 100 || st.HeapHighWater != 100 || st.Scheduled != 100 {
		t.Fatalf("high-water marks wrong: %+v", st)
	}

	// 63 cancels: below the dead>=64 compaction floor, so the heap keeps
	// the corpses and Len disagrees with Live — the transient edge.
	for i := 0; i < 63; i++ {
		evs[i].Cancel()
	}
	st = e.QueueStats()
	if st.Dead != 63 || st.Len != 100 || st.Live != 37 {
		t.Fatalf("pre-compaction: %+v", st)
	}
	if got := e.Pending(); got != st.Live {
		t.Fatalf("Pending() = %d, QueueStats().Live = %d; must agree", got, st.Live)
	}
	if st.Compactions != 0 {
		t.Fatalf("compaction ran too early: %+v", st)
	}

	// The 64th cancel crosses both thresholds (dead >= 64 and
	// dead*2 > len): the heap compacts, Len snaps back to Live.
	evs[63].Cancel()
	st = e.QueueStats()
	if st.Compactions != 1 {
		t.Fatalf("compaction did not run: %+v", st)
	}
	if st.Dead != 0 || st.Len != 36 || st.Live != 36 {
		t.Fatalf("post-compaction: %+v", st)
	}
	if st.Cancelled != 64 {
		t.Fatalf("cancelled counter = %d; want 64", st.Cancelled)
	}
	// High-water marks are lifetime maxima: unaffected by the shrink.
	if st.HighWater != 100 || st.HeapHighWater != 100 {
		t.Fatalf("high-water marks moved: %+v", st)
	}

	// Cancelled head events are also reclaimed lazily by peek: that path
	// shrinks Len without a compaction and must keep Live == Pending().
	next := evs[64]
	next.Cancel() // head of the queue, dead=1 < 64: stays parked
	st = e.QueueStats()
	if st.Dead != 1 || st.Len != 36 {
		t.Fatalf("head cancel not parked: %+v", st)
	}
	if at := e.NextEventAt(); at != Time(66) {
		t.Fatalf("NextEventAt = %v; want 66 (cancelled head skipped)", at)
	}
	st = e.QueueStats()
	if st.Dead != 0 || st.Len != 35 || st.Live != 35 || st.Compactions != 1 {
		t.Fatalf("peek did not reclaim the cancelled head: %+v", st)
	}

	// The surviving events still fire, exactly once each.
	e.Run()
	if fired := int(e.Fired()); fired != 35 {
		t.Fatalf("fired %d events; want the 35 survivors", fired)
	}
	st = e.QueueStats()
	if st.Len != 0 || st.Dead != 0 || st.Live != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
}

// TestQueueStatsReschedule pins that Reschedule counts moves without
// disturbing the dead/live accounting.
func TestQueueStatsReschedule(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(10, func() {})
	if !e.Reschedule(ev, 20) {
		t.Fatal("reschedule refused a queued event")
	}
	st := e.QueueStats()
	if st.Rescheduled != 1 || st.Scheduled != 1 || st.Len != 1 || st.Dead != 0 {
		t.Fatalf("after reschedule: %+v", st)
	}
	ev.Cancel()
	if !e.Reschedule(ev, 30) {
		// expected: cancelled events cannot be rescheduled
	} else {
		t.Fatal("rescheduled a cancelled event")
	}
	if st := e.QueueStats(); st.Rescheduled != 1 {
		t.Fatalf("failed reschedule counted: %+v", st)
	}
}
